package main

import (
	"fmt"
	"time"

	"gupcxx"
	"gupcxx/internal/gups"
	"gupcxx/internal/worker"
)

// maybeWorker runs this process as one rank of a gupcxxrun-launched
// world: a single timed GUPS pass of the amo-promises variant — remote
// atomics with promise completion, a fully wire-encodable update stream
// — sized by the usual -log-table / -updates-per-rank / -batch flags.
// Rank 0 reports GUP/s. Never returns when GUPCXX_WORLD is set.
func maybeWorker() {
	worker.Maybe("gups", func(ranks int) gupcxx.Config {
		return gupcxx.Config{SegmentBytes: (8<<*logTable)/ranks*2 + 1<<20}
	}, gupsWorker)
}

func gupsWorker(r *gupcxx.Rank) {
	gcfg := gups.Config{
		LogTableSize:   *logTable,
		UpdatesPerRank: *updatesPer,
		Batch:          *batch,
	}
	if gcfg.UpdatesPerRank == 0 {
		gcfg.UpdatesPerRank = (int64(1) << *logTable) / int64(r.N())
	}
	b, err := gups.New(r, gcfg)
	if err != nil {
		panic(err)
	}
	r.Barrier()
	start := time.Now()
	if err := b.Run(gups.AMOPromise); err != nil {
		panic(err)
	}
	r.Barrier()
	if r.Me() == 0 {
		elapsed := time.Since(start)
		total := float64(gcfg.UpdatesPerRank) * float64(r.N())
		fmt.Printf("gups worker: %d ranks (process-per-rank), table 2^%d words, %s: %.4f GUP/s (%.0f updates in %v)\n",
			r.N(), *logTable, gups.AMOPromise, total/elapsed.Seconds()/1e9, total, elapsed.Round(time.Millisecond))
	}
	r.Barrier()
}
