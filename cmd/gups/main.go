// Command gups regenerates the paper's GUPS figures (Figs. 5–7 and the
// §IV-B process-count sweep, experiments E2/E3): single-node runs of the
// HPC Challenge RandomAccess benchmark in six variants across the three
// library versions, reported in GUP/s (giga-updates per second, higher is
// better).
//
// Methodology follows §IV: -samples timed runs per configuration, mean of
// the best -topk reported. The paper uses the SMP conduit on Intel and a
// UDP conduit with process-shared memory elsewhere; -conduit smp|pshm
// selects the analogous substrate (smp enables the constexpr is_local
// optimization visible in the manual-localization variant).
//
// Usage:
//
//	gups [-procs 16] [-sweep] [-log-table 22] [-samples 20] [-topk 10]
//	     [-conduit pshm] [-updates-per-rank N] [-sample-ms 300] [-verify]
//
// Samples are interleaved across the three library versions and scaled to
// at least -sample-ms of wall time each (calibrated against a probe run),
// which keeps version comparisons fair under environmental drift; the ±
// column reports per-configuration sample spread.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"gupcxx"
	"gupcxx/internal/gups"
	"gupcxx/internal/stats"
)

var (
	procs       = flag.String("procs", "16", "comma-separated process counts")
	sweep       = flag.Bool("sweep", false, "shorthand for -procs 1,2,4,8,16 (the paper's sweep)")
	logTable    = flag.Int("log-table", 22, "log2 of total table words")
	updatesPer  = flag.Int64("updates-per-rank", 0, "updates per rank (0 = table/ranks, a 4x-reduced HPCC count)")
	samples     = flag.Int("samples", 20, "samples per configuration")
	topk        = flag.Int("topk", 10, "best samples averaged")
	conduitFlag = flag.String("conduit", "pshm", "conduit (smp or pshm)")
	batch       = flag.Int("batch", gups.DefaultBatch, "update look-ahead depth")
	verify      = flag.Bool("verify", false, "verify each configuration after timing (slow)")
	sampleMs    = flag.Int("sample-ms", 300, "minimum wall time per sample (update count is scaled up to this)")
	metricsAddr = flag.String("metrics", "", "bind a /metrics + /debug/gupcxx listener per world (use port 0; each bound address is logged to stderr)")
)

func main() {
	flag.Parse()
	maybeWorker() // gupcxxrun rank process: join the world, never return
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gups:", err)
		os.Exit(1)
	}
}

func parseProcs() ([]int, error) {
	if *sweep {
		return []int{1, 2, 4, 8, 16}, nil
	}
	var out []int
	for _, f := range strings.Split(*procs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad process count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func run() error {
	procList, err := parseProcs()
	if err != nil {
		return err
	}
	conduit, err := gupcxx.ParseConduit(*conduitFlag)
	if err != nil {
		return err
	}
	versions := []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6}

	fmt.Printf("gupcxx GUPS — table 2^%d words, conduit %s, best %d of %d samples\n",
		*logTable, conduit, *topk, *samples)
	fmt.Printf("(reproduces Figs. 5–7; GUP/s, higher is better)\n\n")

	for _, np := range procList {
		fmt.Printf("== %d processes ==\n", np)
		table := stats.NewTable("variant", "version", "GUP/s", "±", "vs defer", "errors")
		for _, variant := range gups.Variants() {
			results, err := measureVariant(np, conduit, versions, variant)
			if err != nil {
				if variant == gups.Raw && strings.Contains(err.Error(), "single-node") {
					for _, ver := range versions {
						table.AddRow(variant.String(), ver.Name, "n/a")
					}
					continue
				}
				return err
			}
			var deferGups float64
			for i, ver := range versions {
				g := results[i].gups
				rel := ""
				if ver.Name == gupcxx.Defer2021_3_6.Name {
					deferGups = g
				} else if deferGups > 0 {
					rel = fmt.Sprintf("%.2fx", g/deferGups)
				}
				errStr := ""
				if *verify {
					errStr = strconv.FormatInt(results[i].errs, 10)
				}
				table.AddRow(variant.String(), ver.Name, fmt.Sprintf("%.4f", g),
					fmt.Sprintf("%.0f%%", 100*results[i].spread), rel, errStr)
			}
		}
		table.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Println("expected shape: raw ≥ manual-localization ≥ rma-promises(eager);")
	fmt.Println("eager ≫ defer for the future-conjoining variants; manual unaffected by version")
	return nil
}

// result is one version's measurement of a variant.
type result struct {
	gups   float64
	spread float64 // relative sample standard deviation
	errs   int64
}

// versionRun is one live world collecting samples on demand: closing
// starts[s] releases all ranks into sample s; its duration arrives on
// dones[s]. Idle worlds block on channels and consume no CPU.
type versionRun struct {
	starts []chan struct{}
	dones  chan time.Duration
	errs   chan error
	errCnt chan int64
	scale  chan int64
}

// measureVariant measures one variant under every version with
// *interleaved* sampling — sample s of every version runs back-to-back
// before sample s+1 of any — so slow system phases (GC, frequency drift,
// scheduler modes) hit all versions alike instead of biasing whole
// version blocks. This matters acutely when ranks outnumber cores.
func measureVariant(np int, conduit gupcxx.Conduit, versions []gupcxx.Version, variant gups.Variant) ([]result, error) {
	gcfg := gups.Config{
		LogTableSize:   *logTable,
		UpdatesPerRank: *updatesPer,
		Batch:          *batch,
	}
	if gcfg.UpdatesPerRank == 0 {
		// One update per table word total (a 4× reduction of the HPCC
		// count, keeping 20-sample runs tractable at library scale).
		gcfg.UpdatesPerRank = (int64(1) << *logTable) / int64(np)
	}

	runs := make([]*versionRun, len(versions))
	var wg sync.WaitGroup
	for i, ver := range versions {
		w, err := gupcxx.NewWorld(gupcxx.Config{
			Ranks:        np,
			Conduit:      conduit,
			Version:      ver,
			SegmentBytes: (8 << *logTable) / np * 2,
			MetricsAddr:  *metricsAddr,
		})
		if err != nil {
			return nil, err
		}
		if *metricsAddr != "" {
			fmt.Fprintf(os.Stderr, "gups: %s world serving http://%s/metrics\n", ver.Name, w.MetricsAddr())
		}
		vr := &versionRun{
			dones:  make(chan time.Duration, *samples),
			errs:   make(chan error, 1),
			errCnt: make(chan int64, 1),
			scale:  make(chan int64, 1),
		}
		for s := 0; s < *samples; s++ {
			vr.starts = append(vr.starts, make(chan struct{}))
		}
		runs[i] = vr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			err := w.Run(func(r *gupcxx.Rank) {
				b, err := gups.New(r, gcfg)
				if err != nil {
					fail(r, vr, err)
					return
				}
				if *verify {
					// Verification is meaningful after exactly one pass
					// (the undo stream inverts one application), so run
					// it standalone and reset before the timed samples.
					r.Barrier()
					if err := b.Run(variant); err != nil {
						fail(r, vr, err)
						return
					}
					errs := r.SumU64(uint64(b.Verify()))
					if r.Me() == 0 {
						vr.errCnt <- int64(errs)
					}
					b.Reset()
					r.Barrier()
				} else if r.Me() == 0 {
					vr.errCnt <- -1
				}
				// Probe run: surfaces variant/world incompatibilities
				// (raw on a multi-node world) before sampling begins, and
				// calibrates the sample length — short samples are
				// hopelessly noisy when ranks outnumber cores, so scale
				// the update count until one sample spans -sample-ms.
				r.Barrier()
				probeStart := time.Now()
				if err := b.Run(variant); err != nil {
					fail(r, vr, err)
					return
				}
				r.Barrier()
				var scale uint64 = 1
				if r.Me() == 0 {
					probe := time.Since(probeStart)
					target := time.Duration(*sampleMs) * time.Millisecond
					if probe > 0 && probe < target {
						scale = uint64(target/probe) + 1
					}
					if scale > 4096 {
						scale = 4096
					}
				}
				scale = r.BroadcastU64(0, scale)
				b.SetUpdatesPerRank(gcfg.UpdatesPerRank * int64(scale))
				if r.Me() == 0 {
					vr.scale <- int64(scale)
					vr.errs <- nil
				}
				for s := 0; s < *samples; s++ {
					<-vr.starts[s]
					r.Barrier()
					start := time.Now()
					if err := b.Run(variant); err != nil {
						fail(r, vr, err)
						return
					}
					r.Barrier()
					if r.Me() == 0 {
						vr.dones <- time.Since(start)
					}
				}
			})
			if err != nil {
				select {
				case vr.errs <- err:
				default:
				}
			}
		}()
	}

	out := make([]result, len(versions))
	scales := make([]int64, len(versions))
	var firstErr error
	for i := range runs {
		out[i].errs = <-runs[i].errCnt
		scales[i] = <-runs[i].scale
		if err := <-runs[i].errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Release every world so its goroutines exit.
		for _, vr := range runs {
			for _, c := range vr.starts {
				close(c)
			}
		}
		wg.Wait()
		return nil, firstErr
	}
	durations := make([][]time.Duration, len(versions))
	for s := 0; s < *samples; s++ {
		for i, vr := range runs {
			close(vr.starts[s])
			durations[i] = append(durations[i], <-vr.dones)
		}
	}
	wg.Wait()
	for i := range out {
		sum := stats.Summarize(durations[i], *topk)
		totalUpdates := float64(gcfg.UpdatesPerRank*scales[i]) * float64(np)
		out[i].gups = totalUpdates / sum.TopKMean.Seconds() / 1e9
		if sum.Mean > 0 {
			out[i].spread = float64(sum.StdDev) / float64(sum.Mean)
		}
	}
	return out, nil
}

// fail reports a rank-level error once (rank 0 owns the channels) and
// unblocks the collector.
func fail(r *gupcxx.Rank, vr *versionRun, err error) {
	if r.Me() == 0 {
		select {
		case vr.errCnt <- -1:
		default:
		}
		select {
		case vr.scale <- 1:
		default:
		}
		select {
		case vr.errs <- err:
		default:
		}
	}
}
