package main

import (
	"flag"
	"testing"
)

func TestParseProcs(t *testing.T) {
	restore := *procs
	defer func() { *procs = restore; *sweep = false }()

	*procs = "1, 4,16"
	got, err := parseProcs()
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Errorf("parseProcs = %v, %v", got, err)
	}

	*procs = "0"
	if _, err := parseProcs(); err == nil {
		t.Error("zero process count accepted")
	}
	*procs = "two"
	if _, err := parseProcs(); err == nil {
		t.Error("non-numeric accepted")
	}

	*procs = "8"
	*sweep = true
	got, err = parseProcs()
	if err != nil || len(got) != 5 || got[4] != 16 {
		t.Errorf("sweep = %v, %v", got, err)
	}
}

func TestFlagsRegistered(t *testing.T) {
	for _, name := range []string{"procs", "sweep", "log-table", "samples", "topk", "conduit", "batch", "verify", "sample-ms", "updates-per-rank"} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag %q not registered", name)
		}
	}
}
