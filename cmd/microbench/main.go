// Command microbench regenerates the paper's microbenchmark figures
// (Figs. 2–4): per-operation latency of on-node RMA and atomic operations
// with future completion, across the three library versions. With
// -offnode it instead runs the §IV-A off-node study (experiment E5),
// where eager and deferred notification must be indistinguishable.
//
// Methodology follows §IV: each sample times -iters back-to-back
// initiate-then-wait operations; -samples samples are taken and the mean
// of the best -topk is reported.
//
// Usage:
//
//	microbench [-iters N] [-samples N] [-topk N] [-conduit smp|pshm] [-offnode]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"gupcxx"
	"gupcxx/internal/stats"
)

var (
	iters   = flag.Int("iters", 1_000_000, "operations per sample")
	samples = flag.Int("samples", 20, "samples per configuration")
	topk    = flag.Int("topk", 10, "best samples averaged")
	conduit = flag.String("conduit", "pshm", "conduit for on-node runs (smp or pshm)")
	offnode = flag.Bool("offnode", false, "run the off-node (SIM conduit) study instead")
	metrics = flag.String("metrics", "", "bind a /metrics + /debug/gupcxx listener per world (use port 0; each bound address is logged to stderr)")
)

// op is one measured operation: a closure factory bound to a world.
type op struct {
	name   string
	legacy bool // exists under 2021.3.0
	run    func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], iters int)
}

var ops = []op{
	{"rput", true, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		for i := 0; i < n; i++ {
			gupcxx.Rput(r, uint64(i), t).Wait()
		}
	}},
	{"rget (value)", true, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		var sink uint64
		for i := 0; i < n; i++ {
			sink += gupcxx.Rget(r, t).Wait()
		}
		_ = sink
	}},
	{"rget (bulk1)", true, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		var buf [1]uint64
		for i := 0; i < n; i++ {
			gupcxx.RgetBulk(r, t, buf[:]).Wait()
		}
	}},
	{"amo fadd (value)", true, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		ad := gupcxx.NewAtomicDomain[uint64](r)
		var sink uint64
		for i := 0; i < n; i++ {
			sink += ad.FetchAdd(t, 1).Wait()
		}
		_ = sink
	}},
	{"amo fadd (memory)", false, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		ad := gupcxx.NewAtomicDomain[uint64](r)
		var old uint64
		for i := 0; i < n; i++ {
			ad.FetchAddInto(t, 1, &old).Wait()
		}
	}},
	{"amo add (no value)", true, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64], n int) {
		ad := gupcxx.NewAtomicDomain[uint64](r)
		for i := 0; i < n; i++ {
			ad.Add(t, 1).Wait()
		}
	}},
}

func main() {
	flag.Parse()
	maybeWorker() // gupcxxrun rank process: join the world, never return
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run() error {
	versions := []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6}

	cfg := gupcxx.Config{Ranks: 2, SegmentBytes: 1 << 16}
	mode := "on-node (co-located target)"
	switch {
	case *offnode:
		cfg.Conduit = gupcxx.SIM
		cfg.RanksPerNode = 1
		cfg.SimLatency = time.Nanosecond // isolate CPU path, not wire time
		mode = "off-node (SIM conduit)"
	default:
		c, err := gupcxx.ParseConduit(*conduit)
		if err != nil {
			return err
		}
		cfg.Conduit = c
	}

	fmt.Printf("gupcxx microbenchmarks — %s, %d iters/sample, best %d of %d samples\n",
		mode, *iters, *topk, *samples)
	fmt.Printf("(reproduces Figs. 2–4; one host CPU stands in for the paper's three systems)\n\n")

	table := stats.NewTable("operation", "version", "ns/op", "±", "vs defer")
	for _, o := range ops {
		vers := versions
		if !o.legacy {
			vers = versions[1:] // operation introduced by this work (§III-B)
			table.AddRow(o.name, gupcxx.Legacy2021_3_0.Name, "n/a (introduced by this work)")
		}
		sums, err := measureOp(cfg, vers, o)
		if err != nil {
			return err
		}
		var deferNs float64
		for i, ver := range vers {
			sum := sums[i]
			nsPerOp := float64(sum.TopKMean) / float64(*iters)
			rel := ""
			if ver.Name == gupcxx.Defer2021_3_6.Name {
				deferNs = nsPerOp
			} else if deferNs > 0 {
				rel = fmt.Sprintf("%.2fx", deferNs/nsPerOp)
			}
			spread := ""
			if sum.Mean > 0 {
				spread = fmt.Sprintf("%.0f%%", 100*float64(sum.StdDev)/float64(sum.Mean))
			}
			table.AddRow(o.name, ver.Name, fmt.Sprintf("%.1f", nsPerOp), spread, rel)
		}
	}
	table.Render(os.Stdout)
	if *offnode {
		fmt.Println("\nexpected shape: eager ≈ defer (the extra locality branch is free off-node)")
	} else {
		fmt.Println("\nexpected shape: eager ≫ defer ≥ 2021.3.0; non-value ops beat value ops under eager")
	}
	return nil
}

// measureOp times one operation under every version with interleaved
// sampling: sample s of every version runs back-to-back before sample
// s+1 of any, so environmental drift (frequency scaling, background
// load) hits all versions alike instead of biasing whole version blocks.
// Idle worlds block on channels between their turns.
func measureOp(cfg gupcxx.Config, versions []gupcxx.Version, o op) ([]stats.Summary, error) {
	type versionRun struct {
		starts []chan struct{}
		dones  chan time.Duration
	}
	runs := make([]*versionRun, len(versions))
	var wg sync.WaitGroup
	errCh := make(chan error, len(versions))
	for i, ver := range versions {
		c := cfg
		c.Version = ver
		c.MetricsAddr = *metrics
		w, err := gupcxx.NewWorld(c)
		if err != nil {
			return nil, err
		}
		if *metrics != "" {
			fmt.Fprintf(os.Stderr, "microbench: %s/%s world serving http://%s/metrics\n", o.name, ver.Name, w.MetricsAddr())
		}
		vr := &versionRun{dones: make(chan time.Duration, *samples)}
		for s := 0; s < *samples; s++ {
			vr.starts = append(vr.starts, make(chan struct{}))
		}
		runs[i] = vr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			err := w.Run(func(r *gupcxx.Rank) {
				target := gupcxx.New[uint64](r)
				targets := gupcxx.ExchangePtr(r, target)
				r.Barrier()
				if r.Me() == 0 {
					// Warm up outside the samples.
					o.run(r, targets[1], *iters/10+1)
					for s := 0; s < *samples; s++ {
						<-vr.starts[s]
						start := time.Now()
						o.run(r, targets[1], *iters)
						vr.dones <- time.Since(start)
					}
				}
				r.Barrier()
			})
			if err != nil {
				errCh <- err
			}
		}()
	}
	durations := make([][]time.Duration, len(versions))
	for s := 0; s < *samples; s++ {
		for i, vr := range runs {
			close(vr.starts[s])
			select {
			case d := <-vr.dones:
				durations[i] = append(durations[i], d)
			case err := <-errCh:
				return nil, err
			}
		}
	}
	wg.Wait()
	out := make([]stats.Summary, len(versions))
	for i := range out {
		out[i] = stats.Summarize(durations[i], *topk)
	}
	return out, nil
}
