package main

import (
	"fmt"
	"os"
	"time"

	"gupcxx"
	"gupcxx/internal/stats"
	"gupcxx/internal/worker"
)

// wireIterCap bounds per-sample iterations in worker mode: every
// operation is a real UDP round trip (tens of microseconds, not the
// nanoseconds of the in-process paths the default -iters is sized for),
// so the on-node default of a million would run for minutes.
const wireIterCap = 20_000

// maybeWorker runs this process as one rank of a gupcxxrun-launched
// world: per-operation latency of put/get/fetch-add against the next
// rank — real sockets, real kernels, the loopback-multiproc numbers to
// hold against the in-process UDP conduit (BENCH_7). Rank 0 drives and
// reports; other ranks serve progress inside the closing barrier.
// Never returns when GUPCXX_WORLD is set.
func maybeWorker() {
	worker.Maybe("microbench", func(int) gupcxx.Config {
		return gupcxx.Config{SegmentBytes: 1 << 16}
	}, microbenchWorker)
}

func microbenchWorker(r *gupcxx.Rank) {
	n := *iters
	if n > wireIterCap {
		n = wireIterCap
	}
	target := gupcxx.New[uint64](r)
	targets := gupcxx.ExchangePtr(r, target)
	peer := targets[(r.Me()+1)%r.N()]
	r.Barrier()
	if r.Me() == 0 {
		fmt.Printf("microbench worker: %d ranks (process-per-rank), %d iters/sample, best %d of %d samples\n",
			r.N(), n, *topk, *samples)
		table := stats.NewTable("operation", "ns/op", "±")
		for _, o := range ops {
			o.run(r, peer, n/10+1) // warm up
			var durations []time.Duration
			for s := 0; s < *samples; s++ {
				start := time.Now()
				o.run(r, peer, n)
				durations = append(durations, time.Since(start))
			}
			sum := stats.Summarize(durations, *topk)
			spread := ""
			if sum.Mean > 0 {
				spread = fmt.Sprintf("%.0f%%", 100*float64(sum.StdDev)/float64(sum.Mean))
			}
			table.AddRow(o.name, fmt.Sprintf("%.0f", float64(sum.TopKMean)/float64(n)), spread)
		}
		table.Render(os.Stdout)
	}
	r.Barrier()
}
