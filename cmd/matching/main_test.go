package main

import (
	"testing"

	"gupcxx/internal/graph"
)

// TestInputsGenerateAndSpanLocality: the five Fig. 8 inputs build at a
// small scale, validate, and span the locality axis in the intended
// order under a 16-rank distribution.
func TestInputsGenerateAndSpanLocality(t *testing.T) {
	const s = 0.05
	locs := make(map[string]float64, len(inputs))
	for _, in := range inputs {
		g := in.gen(s)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
		if g.N == 0 || g.M() == 0 {
			t.Fatalf("%s: degenerate graph", in.name)
		}
		locs[in.name] = graph.MeasureLocality(g, graph.NewDist(g.N, 16)).SameRank
	}
	if !(locs["channel"] > locs["random"] && locs["random"] > locs["youtube"]) {
		t.Errorf("locality ordering violated: %v", locs)
	}
}

// TestInputsDeterministic: the generators are seeded, so repeated builds
// are identical (required for cross-version comparability).
func TestInputsDeterministic(t *testing.T) {
	for _, in := range inputs {
		a := in.gen(0.05)
		b := in.gen(0.05)
		if a.N != b.N || a.M() != b.M() {
			t.Fatalf("%s: size differs across builds", in.name)
		}
		for i := range a.W {
			if a.W[i] != b.W[i] || a.Adj[i] != b.Adj[i] {
				t.Fatalf("%s: content differs at %d", in.name, i)
			}
		}
	}
}
