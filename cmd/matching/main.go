// Command matching regenerates the paper's graph-matching figure
// (Fig. 8, experiment E4): solve time of the distributed half-approximate
// maximum-weight matching on five inputs spanning the locality spectrum,
// across the three library versions.
//
// The paper's SuiteSparse inputs are replaced by synthetic generators
// matched on the property that drives the result — the fraction of edges
// crossing ranks under block distribution (see DESIGN.md):
//
//	channel  → 3-D mesh (grid3d), nearly all edges rank-local
//	delaunay → random geometric graph, spatially ordered ids
//	venturi  → sparser random geometric graph
//	random   → geometric + 15 long-range edges per 100 (the paper's own
//	           synthetic input, --p 15)
//	youtube  → preferential-attachment (power-law), highly non-local
//
// Usage:
//
//	matching [-ranks 16] [-scale 1.0] [-samples 20] [-topk 10] [-conduit pshm]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"gupcxx"
	"gupcxx/internal/graph"
	"gupcxx/internal/matching"
	"gupcxx/internal/stats"
)

var (
	ranks       = flag.Int("ranks", 16, "number of ranks")
	scale       = flag.Float64("scale", 1.0, "graph size multiplier (1.0 ≈ 64k-vertex inputs)")
	samples     = flag.Int("samples", 20, "samples per configuration")
	topk        = flag.Int("topk", 10, "best samples averaged")
	conduitFlag = flag.String("conduit", "pshm", "conduit (smp or pshm)")
	checkOracle = flag.Bool("check", false, "verify each result against the sequential greedy oracle")
	metricsAddr = flag.String("metrics", "", "bind a /metrics + /debug/gupcxx listener per world (use port 0; each bound address is logged to stderr)")
)

// input describes one Fig. 8 graph.
type input struct {
	name string
	gen  func(scale float64) *graph.Graph
}

var inputs = []input{
	{"channel", func(s float64) *graph.Graph {
		side := int(16 * math.Cbrt(s))
		return graph.Grid3D(side, side, side*16, 1001)
	}},
	{"delaunay", func(s float64) *graph.Graph {
		return graph.Geometric(int(65536*s), 6, 1002)
	}},
	{"venturi", func(s float64) *graph.Graph {
		return graph.Geometric(int(65536*s), 4, 1003)
	}},
	{"random", func(s float64) *graph.Graph {
		return graph.GeometricNoise(int(65536*s), 6, 15, 1004)
	}},
	{"youtube", func(s float64) *graph.Graph {
		return graph.PowerLaw(int(65536*s), 5, 1005)
	}},
}

func main() {
	flag.Parse()
	maybeWorker() // gupcxxrun rank process: join the world, never return
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "matching:", err)
		os.Exit(1)
	}
}

func run() error {
	conduit, err := gupcxx.ParseConduit(*conduitFlag)
	if err != nil {
		return err
	}
	versions := []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6}

	fmt.Printf("gupcxx graph matching — %d ranks, conduit %s, best %d of %d samples\n",
		*ranks, conduit, *topk, *samples)
	fmt.Printf("(reproduces Fig. 8; solve time, lower is better)\n\n")

	table := stats.NewTable("graph", "locality", "version", "solve ms", "±", "vs defer", "weight")
	for _, in := range inputs {
		g := in.gen(*scale)
		d := graph.NewDist(g.N, *ranks)
		loc := graph.MeasureLocality(g, d)
		var oracleW float64
		if *checkOracle {
			_, oracleW = matching.Greedy(g)
		}
		results, err := measureVersions(g, d, conduit, versions)
		if err != nil {
			return err
		}
		var deferMs float64
		for i, ver := range versions {
			ms, weight := results[i].ms, results[i].weight
			if *checkOracle && math.Abs(weight-oracleW) > 1e-6*math.Max(1, oracleW) {
				return fmt.Errorf("%s/%s: weight %.6f != greedy %.6f", in.name, ver.Name, weight, oracleW)
			}
			rel := ""
			if ver.Name == gupcxx.Defer2021_3_6.Name {
				deferMs = ms
			} else if deferMs > 0 {
				rel = fmt.Sprintf("%.2fx", deferMs/ms)
			}
			table.AddRow(in.name, fmt.Sprintf("%.2f", loc.SameRank), ver.Name,
				fmt.Sprintf("%.2f", ms), fmt.Sprintf("%.0f%%", 100*results[i].spread),
				rel, fmt.Sprintf("%.1f", weight))
		}
	}
	table.Render(os.Stdout)
	fmt.Println("\nexpected shape: eager speedup grows as locality falls (channel ≈ none, youtube largest)")
	return nil
}

// result is one version's measurement on one input graph.
type result struct {
	ms     float64
	spread float64
	weight float64
}

// measureVersions runs the distributed matching under every version with
// interleaved sampling (sample s of each version runs back-to-back), so
// slow system phases affect all versions alike; see cmd/gups for the
// same technique.
func measureVersions(g *graph.Graph, d graph.Dist, conduit gupcxx.Conduit, versions []gupcxx.Version) ([]result, error) {
	type versionRun struct {
		starts  []chan struct{}
		dones   chan time.Duration
		weights chan float64
		errs    chan error
	}
	// Each Run bump-allocates two per-vertex arrays from the segment, once
	// per sample; size segments for exactly that (three worlds of *ranks
	// segments are live at once, so over-sizing costs real memory).
	segBytes := d.BlockSize()*8*2*(*samples+4) + (1 << 20)
	runs := make([]*versionRun, len(versions))
	var wg sync.WaitGroup
	for i, ver := range versions {
		w, err := gupcxx.NewWorld(gupcxx.Config{
			Ranks:        *ranks,
			Conduit:      conduit,
			Version:      ver,
			SegmentBytes: segBytes,
			MetricsAddr:  *metricsAddr,
		})
		if err != nil {
			return nil, err
		}
		if *metricsAddr != "" {
			fmt.Fprintf(os.Stderr, "matching: %s world serving http://%s/metrics\n", ver.Name, w.MetricsAddr())
		}
		vr := &versionRun{
			dones:   make(chan time.Duration, *samples),
			weights: make(chan float64, *samples),
			errs:    make(chan error, 1),
		}
		for s := 0; s < *samples; s++ {
			vr.starts = append(vr.starts, make(chan struct{}))
		}
		runs[i] = vr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			err := w.Run(func(r *gupcxx.Rank) {
				for s := 0; s < *samples; s++ {
					<-vr.starts[s]
					r.Barrier()
					start := time.Now()
					res, err := matching.Run(r, g, d)
					if err != nil {
						if r.Me() == 0 {
							vr.errs <- err
						}
						return
					}
					r.Barrier()
					if r.Me() == 0 {
						vr.dones <- time.Since(start)
						vr.weights <- res.Weight
					}
				}
			})
			if err != nil {
				select {
				case vr.errs <- err:
				default:
				}
			}
		}()
	}
	out := make([]result, len(versions))
	durations := make([][]time.Duration, len(versions))
	for s := 0; s < *samples; s++ {
		for i, vr := range runs {
			close(vr.starts[s])
			select {
			case d := <-vr.dones:
				durations[i] = append(durations[i], d)
				out[i].weight = <-vr.weights
			case err := <-vr.errs:
				return nil, err
			}
		}
	}
	wg.Wait()
	for i := range out {
		sum := stats.Summarize(durations[i], *topk)
		out[i].ms = float64(sum.TopKMean) / float64(time.Millisecond)
		if sum.Mean > 0 {
			out[i].spread = float64(sum.StdDev) / float64(sum.Mean)
		}
	}
	return out, nil
}
