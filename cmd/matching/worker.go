package main

import (
	"fmt"
	"time"

	"gupcxx"
	"gupcxx/internal/graph"
	"gupcxx/internal/matching"
	"gupcxx/internal/worker"
)

// maybeWorker runs this process as one rank of a gupcxxrun-launched
// world: one solve of the distributed half-approximate matching on the
// "random" input (geometric + long-range noise, the paper's own
// synthetic), scaled by -scale. The solver is pure one-sided RMA
// (RgetBulk), so it crosses process boundaries unchanged. Every rank
// generates the same graph from the fixed seed; rank 0 reports solve
// time and weight. Never returns when GUPCXX_WORLD is set.
func maybeWorker() {
	worker.Maybe("matching", func(ranks int) gupcxx.Config {
		n := int(65536 * *scale)
		block := (n + ranks - 1) / ranks
		// Run bump-allocates two per-vertex arrays per solve; one solve
		// plus generous slack.
		return gupcxx.Config{SegmentBytes: block*8*2*8 + 1<<20}
	}, matchingWorker)
}

func matchingWorker(r *gupcxx.Rank) {
	g := graph.GeometricNoise(int(65536**scale), 6, 15, 1004)
	d := graph.NewDist(g.N, r.N())
	r.Barrier()
	start := time.Now()
	res, err := matching.Run(r, g, d)
	if err != nil {
		panic(err)
	}
	r.Barrier()
	if r.Me() == 0 {
		loc := graph.MeasureLocality(g, d)
		fmt.Printf("matching worker: %d ranks (process-per-rank), random graph n=%d (locality %.2f): %.2f ms, weight %.1f\n",
			r.N(), g.N, loc.SameRank, float64(time.Since(start))/float64(time.Millisecond), res.Weight)
	}
	r.Barrier()
}
