// Command benchall regenerates every experiment in EXPERIMENTS.md in one
// run: the microbenchmarks (Figs. 2–4), the off-node study (§IV-A), GUPS
// (Figs. 5–7), and graph matching (Fig. 8). It shells out to the sibling
// commands so each experiment runs exactly the code documented for it;
// run it from the repository root.
//
// Usage:
//
//	go run ./cmd/benchall [-quick] [-out results.txt]
//
// -quick reduces iteration counts and sample counts roughly 10× for a
// fast smoke pass; the default parameters are the ones EXPERIMENTS.md
// records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

var (
	quick = flag.Bool("quick", false, "reduced iteration/sample counts (~10x faster)")
	out   = flag.String("out", "", "also append output to this file")
)

// experiment is one sub-command invocation.
type experiment struct {
	title string
	args  []string
	quick []string // replacement args under -quick
}

func main() {
	flag.Parse()
	experiments := []experiment{
		{
			title: "E1 — microbenchmarks, on-node (Figs. 2–4)",
			args:  []string{"run", "./cmd/microbench", "-iters", "300000", "-samples", "20", "-topk", "10"},
			quick: []string{"run", "./cmd/microbench", "-iters", "100000", "-samples", "6", "-topk", "3"},
		},
		{
			title: "E5 — microbenchmarks, off-node (§IV-A)",
			args:  []string{"run", "./cmd/microbench", "-offnode", "-iters", "100000", "-samples", "20", "-topk", "10"},
			quick: []string{"run", "./cmd/microbench", "-offnode", "-iters", "20000", "-samples", "6", "-topk", "3"},
		},
		{
			title: "E2 — GUPS, 16 processes (Figs. 5–7)",
			args:  []string{"run", "./cmd/gups", "-procs", "16", "-log-table", "20", "-samples", "30", "-topk", "10"},
			quick: []string{"run", "./cmd/gups", "-procs", "16", "-log-table", "18", "-samples", "6", "-topk", "3"},
		},
		{
			title: "E3 — GUPS process sweep (§IV-B)",
			args:  []string{"run", "./cmd/gups", "-sweep", "-log-table", "18", "-samples", "10", "-topk", "5"},
			quick: []string{"run", "./cmd/gups", "-procs", "1,4", "-log-table", "16", "-samples", "4", "-topk", "2"},
		},
		{
			title: "E2b — GUPS on the SMP conduit (Fig. 5's constexpr is_local effect)",
			args:  []string{"run", "./cmd/gups", "-procs", "16", "-log-table", "20", "-samples", "30", "-topk", "10", "-conduit", "smp"},
			quick: []string{"run", "./cmd/gups", "-procs", "16", "-log-table", "18", "-samples", "6", "-topk", "3", "-conduit", "smp"},
		},
		{
			title: "E4 — graph matching, 16 ranks (Fig. 8)",
			args:  []string{"run", "./cmd/matching", "-ranks", "16", "-scale", "0.5", "-samples", "16", "-topk", "8"},
			quick: []string{"run", "./cmd/matching", "-ranks", "16", "-scale", "0.25", "-samples", "6", "-topk", "3"},
		},
	}

	var sinks []io.Writer
	sinks = append(sinks, os.Stdout)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "gupcxx benchall (%s mode) — %s\n", mode, time.Now().Format(time.RFC3339))
	start := time.Now()
	for _, ex := range experiments {
		args := ex.args
		if *quick {
			args = ex.quick
		}
		fmt.Fprintf(w, "\n──── %s ────\n$ go %v\n\n", ex.title, args)
		cmd := exec.Command("go", args...)
		cmd.Stdout = w
		cmd.Stderr = w
		t0 := time.Now()
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(w, "benchall: %s failed: %v\n", ex.title, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "(%s in %v)\n", ex.title, time.Since(t0).Round(time.Second))
	}
	fmt.Fprintf(w, "\nbenchall: all experiments complete in %v\n", time.Since(start).Round(time.Second))
}
