package gupcxx_test

import (
	"testing"

	"gupcxx"
)

// TestPromiseModeFactories exercises the full §III-A factory matrix on a
// real operation: eager/defer promise variants override the version
// default in both directions.
func TestPromiseModeFactories(t *testing.T) {
	pairWorld(t, gupcxx.Config{Conduit: gupcxx.PSHM, Version: gupcxx.Defer2021_3_6},
		func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
			// Eager promise under the defer library: promise untouched.
			prom := r.NewPromise()
			gupcxx.Rput(r, 1, p, gupcxx.OpEagerPromise(prom))
			if prom.Pending() != 1 { // just the finalize dependency
				t.Errorf("as_eager_promise modified the promise: %d", prom.Pending())
			}
			if !prom.Finalize().Ready() {
				t.Error("promise not ready at finalize")
			}
		})
	pairWorld(t, gupcxx.Config{Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6},
		func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
			// Defer promise under the eager library: counted and queued.
			prom := r.NewPromise()
			gupcxx.Rput(r, 1, p, gupcxx.OpDeferPromise(prom))
			if prom.Pending() != 2 {
				t.Errorf("as_defer_promise did not register: %d", prom.Pending())
			}
			if prom.Finalized() {
				t.Error("Finalized before Finalize")
			}
			f := prom.Finalize()
			if !prom.Finalized() {
				t.Error("Finalized not set")
			}
			if f.Ready() {
				t.Error("deferred promise ready before progress")
			}
			f.Wait()
		})
}

// TestSourceFactories exercises the source-event factory set on a bulk
// put.
func TestSourceFactories(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Defer2021_3_6, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[int64](r, 8)
		ptrs := gupcxx.ExchangePtr(r, arr)
		r.Barrier()
		if r.Me() == 0 {
			src := make([]int64, 8)

			res := gupcxx.RputBulk(r, src, ptrs[1], gupcxx.SourceEagerFuture(), gupcxx.OpFuture())
			if !res.Source.Ready() {
				t.Error("as_eager source future not ready (copy-at-injection)")
			}
			res.Wait()

			res = gupcxx.RputBulk(r, src, ptrs[1], gupcxx.SourceDeferFuture(), gupcxx.OpFuture())
			if res.Source.Ready() {
				t.Error("as_defer source future ready at initiation")
			}
			res.Source.Wait()
			res.Wait()

			sp := r.NewPromise()
			lpcRan := false
			res = gupcxx.RputBulk(r, src, ptrs[1],
				gupcxx.SourcePromise(sp),
				gupcxx.SourceLPC(func() { lpcRan = true }),
				gupcxx.OpFuture())
			res.Wait()
			sp.Finalize().Wait()
			r.Progress()
			if !lpcRan {
				t.Error("source LPC never ran")
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRemoteRPCOnReceivesTargetRank: the ctx-carrying remote completion
// observes the target's rank, both co-located and cross-node.
func TestRemoteRPCOnReceivesTargetRank(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 14}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			cell := gupcxx.New[int64](r)
			seen := gupcxx.New[int64](r)
			*seen.Local(r) = -1
			cells := gupcxx.ExchangePtr(r, cell)
			seens := gupcxx.ExchangePtr(r, seen)
			r.Barrier()
			if r.Me() == 0 {
				gupcxx.Rput(r, 5, cells[1],
					gupcxx.OpFuture(),
					gupcxx.RemoteRPCOn(func(tr *gupcxx.Rank) {
						// Runs on rank 1: record its identity locally.
						gupcxx.Rput(tr, int64(tr.Me()), seens[1]).Wait()
					}),
				).Wait()
				for gupcxx.Rget(r, seens[1]).Wait() != 1 {
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTeamExchange covers the public allgather and min/max reductions on
// teams and the world.
func TestTeamExchange(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 3, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			team := r.WorldTeam()
			vec := team.ExchangeU64(uint64(r.Me() * 7))
			for i, v := range vec {
				if v != uint64(i*7) {
					t.Errorf("vec[%d] = %d", i, v)
				}
			}
			if team.String() == "" || team.ID() == 0 {
				t.Error("team identity accessors broken")
			}
			got := team.ReduceU64(uint64(r.Me()+1), func(a, b uint64) uint64 { return a * b })
			if got != 1*2*3 {
				t.Errorf("product reduce = %d, want 6", got)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResultWaitAndValid covers Result.Wait and FutureV.Valid.
func TestResultWaitAndValid(t *testing.T) {
	pairWorld(t, gupcxx.Config{}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		res := gupcxx.Rput(r, 2, p)
		res.Wait()
		f := gupcxx.Rget(r, p)
		if !f.Valid() {
			t.Error("produced future invalid")
		}
		var zero gupcxx.FutureV[int64]
		if zero.Valid() {
			t.Error("zero FutureV claims valid")
		}
		f.Wait()
	})
}
