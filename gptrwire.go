package gupcxx

import (
	"fmt"

	"gupcxx/internal/gasnet"
)

// Wire encoding for global pointers: the form a GlobalPtr takes whenever
// it crosses the conduit as data (ExchangePtr, RPCWire arguments,
// RputNotify arguments, application payloads). In one address space a
// pointer could travel as anything the ranks agreed on; between
// processes it must be segment-relative and self-describing, and the
// decode side must treat it as untrusted input.
//
// The encoding packs one uint64:
//
//	[ rank u16 ][ segment id u16 ][ offset u32 ]
//	  63..48      47..32            31..0
//
// The segment id stamps which incarnation of the TARGET rank allocated
// the pointer — it is derived from that rank's epoch-stamped incarnation
// as this rank currently knows it (forced to 1 for epoch 0, so no live
// pointer ever encodes a zero segment field). A pointer into a rank that
// has since restarted (its readmitted incarnation carries a bumped
// epoch) decodes as a reject, not as a silent reference into a
// reincarnated segment whose allocations moved; a pointer into a rank
// this process has not yet heard from decodes permissively (its
// incarnation is still unknown) and is caught on first use by the
// conduit's stale-incarnation frame filtering instead. The null pointer
// encodes as 0 and decodes back to null unconditionally.
//
// DecodePtr validates rank range, segment id, and that the full object
// [off, off+sizeof(T)) lies inside the target's segment bounds; failures
// are counted (Stats.GptrRejects) and returned as errors — counted
// drops, never panics, the same discipline the substrate applies to
// every other untrusted wire field.

// worldSegID derives the 16-bit segment-id stamp from a world epoch.
// Epochs wider than 16 bits wrap; zero (no epoch distributed — the
// in-process conduits) maps to 1 so a valid pointer never encodes a zero
// segment field.
func worldSegID(epoch uint32) uint16 {
	id := uint16(epoch)
	if id == 0 {
		id = 1
	}
	return id
}

// segIDOf derives the segment-id stamp for pointers into rank's segment:
// the target's incarnation as this rank currently knows it. For self and
// for in-process worlds this is the world epoch (so nothing changes for
// single-address-space deployments); for a remote rank it is the
// incarnation recorded by the liveness layer, which a readmission
// advances.
func (r *Rank) segIDOf(rank int) uint16 {
	return worldSegID(r.w.dom.IncarnationOf(r.Me(), rank))
}

// EncodePtr packs p into the wire form, stamped with the target rank's
// current incarnation. The null pointer encodes as 0.
func EncodePtr[T any](r *Rank, p GlobalPtr[T]) uint64 {
	if p.Null() {
		return 0
	}
	return uint64(uint16(p.rank))<<48 | uint64(r.segIDOf(int(p.rank)))<<32 | uint64(p.off)
}

// DecodePtr unpacks a wire-form global pointer, validating it against
// r's world: the rank must exist, the segment id must match that rank's
// current incarnation stamp (unknown incarnations — a peer never heard
// from — decode permissively), and the whole object must lie inside the
// target rank's segment. 0 decodes to the null pointer. Failures are
// counted (Stats.GptrRejects) and described in the returned error; the
// zero GlobalPtr is returned alongside.
func DecodePtr[T any](r *Rank, w uint64) (GlobalPtr[T], error) {
	if w == 0 {
		return GlobalPtr[T]{}, nil
	}
	rank := int(w >> 48)
	segid := uint16(w >> 32)
	off := uint32(w)
	if rank >= r.N() {
		r.w.dom.NoteGptrReject()
		return GlobalPtr[T]{}, fmt.Errorf("gupcxx: gptr names rank %d of %d", rank, r.N())
	}
	if rec := r.w.dom.IncarnationOf(r.Me(), rank); rec != 0 && segid != worldSegID(rec) {
		r.w.dom.NoteGptrReject()
		return GlobalPtr[T]{}, fmt.Errorf("gupcxx: gptr segment id %#x, want %#x (stale incarnation of rank %d?)",
			segid, worldSegID(rec), rank)
	}
	size := uint64(gasnet.SizeOf[T]())
	segBytes := uint64(r.w.dom.Config().SegmentBytes)
	if end := uint64(off) + size; end < uint64(off) || end > segBytes {
		r.w.dom.NoteGptrReject()
		return GlobalPtr[T]{}, fmt.Errorf("gupcxx: gptr offset %d+%d outside %d-byte segment of rank %d",
			off, size, segBytes, rank)
	}
	return GlobalPtr[T]{rank: int32(rank), off: off}, nil
}
