//go:build !race

package gupcxx_test

// raceEnabled reports whether the race detector is active; allocation-
// count guards skip under it (instrumentation heap-allocates closures
// the plain build keeps on the stack).
const raceEnabled = false
