package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Word is the constraint for atomic-domain element types: 64-bit integers
// (signed or unsigned). Arithmetic is two's-complement, so all operations
// are bit-identical across the signed and unsigned instantiations.
type Word interface {
	~int64 | ~uint64
}

// AtomicDomain provides remote atomic memory operations over objects of
// type T, the analogue of upcxx::atomic_domain<T>. Unlike RMA, atomics
// admit no manual-localization bypass: every operation must go through the
// runtime (and, off-node, the substrate's atomic engine) to remain
// coherent with concurrent accesses from other nodes — which is exactly
// why the paper's eager notifications matter for atomics (§II-B).
//
// The fetching operations come in three forms, following §III-B:
//
//   - FetchAdd etc.: the classic form, producing the old value through a
//     value-carrying future (one unavoidable cell allocation even when
//     eager);
//   - FetchAddInto etc.: the paper's new fetch-to-memory form, writing the
//     old value to a local address so the notification stays value-less
//     (allocation-free when eager);
//   - Add etc.: non-fetching, side-effect only.
//
// The value-less forms accept completion requests (cxs), so OpContinue
// composes here like everywhere else in the pipeline: a non-fetching or
// fetch-to-memory atomic with a continuation completes without
// allocating even off-node.
type AtomicDomain[T Word] struct {
	r *Rank
}

// NewAtomicDomain constructs rank r's handle on the atomic domain for T.
// Like upcxx::atomic_domain, it is a collective concept; each rank
// constructs its own handle.
func NewAtomicDomain[T Word](r *Rank) *AtomicDomain[T] {
	return &AtomicDomain[T]{r: r}
}

// apply runs a value-less atomic op through the unified pipeline.
func (ad *AtomicDomain[T]) apply(p GlobalPtr[T], op gasnet.AmoOp, o1, o2 T, cxs []Cx) Result {
	r := ad.r
	cxs = cxsOrDefault(cxs)
	if r.localTo(p.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpAtomic,
			Local: true,
			Move: func() {
				gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, uint64(o1), uint64(o2))
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpAtomic,
		Peer:  int(p.rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, uint64(o1), uint64(o2), func(_ uint64, err error) { done(err) })
		},
	}, cxs)
}

// fetch runs a fetching atomic op, producing the old value via a future.
func (ad *AtomicDomain[T]) fetch(p GlobalPtr[T], op gasnet.AmoOp, o1, o2 T, mode []Mode) FutureV[T] {
	r := ad.r
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	return core.InitiateV(r.eng, core.OpDescV[T]{
		Kind:  core.OpAtomic,
		Local: r.localTo(p.rank),
		Mode:  m,
		Peer:  int(p.rank),
		Admit: true,
		MoveV: func() T {
			return T(gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, uint64(o1), uint64(o2)))
		},
		Inject: func(slot *T, done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, uint64(o1), uint64(o2), func(old uint64, err error) {
				if err == nil {
					*slot = T(old)
				}
				done(err)
			})
		},
	})
}

// fetchInto runs a fetching atomic op that writes the old value to the
// local address dst instead of producing it (§III-B). Completion is
// value-less: dst is guaranteed written when operation completion is
// delivered.
func (ad *AtomicDomain[T]) fetchInto(p GlobalPtr[T], op gasnet.AmoOp, o1, o2 T, dst *T, cxs []Cx) Result {
	r := ad.r
	cxs = cxsOrDefault(cxs)
	if r.localTo(p.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpAtomic,
			Local: true,
			Move: func() {
				*dst = T(gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, uint64(o1), uint64(o2)))
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpAtomic,
		Peer:  int(p.rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, uint64(o1), uint64(o2), func(old uint64, err error) {
				if err == nil {
					*dst = T(old)
				}
				done(err)
			})
		},
	}, cxs)
}

// fetchPromise runs a fetching atomic op delivering the old value through
// a value-carrying promise; off-node, the substrate writes the old value
// straight into the promise's value slot.
func (ad *AtomicDomain[T]) fetchPromise(p GlobalPtr[T], op gasnet.AmoOp, o1, o2 T, pv *PromiseV[T], mode []Mode) {
	r := ad.r
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	core.InitiateVPromise(r.eng, core.OpDescV[T]{
		Kind:  core.OpAtomic,
		Local: r.localTo(p.rank),
		Mode:  m,
		Peer:  int(p.rank),
		Admit: true,
		MoveV: func() T {
			return T(gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, uint64(o1), uint64(o2)))
		},
		Inject: func(slot *T, done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, uint64(o1), uint64(o2), func(old uint64, err error) {
				if err == nil {
					*slot = T(old)
				}
				done(err)
			})
		},
	}, pv)
}

// Load atomically reads the value at p.
func (ad *AtomicDomain[T]) Load(p GlobalPtr[T], mode ...Mode) FutureV[T] {
	return ad.fetch(p, gasnet.AmoLoad, 0, 0, mode)
}

// Store atomically writes v to p (value-less completion).
func (ad *AtomicDomain[T]) Store(p GlobalPtr[T], v T, cxs ...Cx) Result {
	return ad.apply(p, gasnet.AmoStore, v, 0, cxs)
}

// Add atomically adds v to the value at p — non-fetching (§III-B).
func (ad *AtomicDomain[T]) Add(p GlobalPtr[T], v T, cxs ...Cx) Result {
	return ad.apply(p, gasnet.AmoAdd, v, 0, cxs)
}

// Xor atomically xors v into the value at p — non-fetching.
func (ad *AtomicDomain[T]) Xor(p GlobalPtr[T], v T, cxs ...Cx) Result {
	return ad.apply(p, gasnet.AmoXor, v, 0, cxs)
}

// And atomically ands v into the value at p — non-fetching.
func (ad *AtomicDomain[T]) And(p GlobalPtr[T], v T, cxs ...Cx) Result {
	return ad.apply(p, gasnet.AmoAnd, v, 0, cxs)
}

// Or atomically ors v into the value at p — non-fetching.
func (ad *AtomicDomain[T]) Or(p GlobalPtr[T], v T, cxs ...Cx) Result {
	return ad.apply(p, gasnet.AmoOr, v, 0, cxs)
}

// FetchAdd atomically adds v to the value at p, producing the old value.
func (ad *AtomicDomain[T]) FetchAdd(p GlobalPtr[T], v T, mode ...Mode) FutureV[T] {
	return ad.fetch(p, gasnet.AmoAdd, v, 0, mode)
}

// FetchXor atomically xors v into the value at p, producing the old value.
func (ad *AtomicDomain[T]) FetchXor(p GlobalPtr[T], v T, mode ...Mode) FutureV[T] {
	return ad.fetch(p, gasnet.AmoXor, v, 0, mode)
}

// Exchange atomically replaces the value at p with v, producing the old
// value.
func (ad *AtomicDomain[T]) Exchange(p GlobalPtr[T], v T, mode ...Mode) FutureV[T] {
	return ad.fetch(p, gasnet.AmoSwap, v, 0, mode)
}

// CompareExchange atomically replaces the value at p with desired if it
// equals expected, producing the previous value.
func (ad *AtomicDomain[T]) CompareExchange(p GlobalPtr[T], expected, desired T, mode ...Mode) FutureV[T] {
	return ad.fetch(p, gasnet.AmoCAS, expected, desired, mode)
}

// FetchAddInto atomically adds v to the value at p and writes the old
// value to the local address dst — the paper's fetch-to-memory form.
func (ad *AtomicDomain[T]) FetchAddInto(p GlobalPtr[T], v T, dst *T, cxs ...Cx) Result {
	return ad.fetchInto(p, gasnet.AmoAdd, v, 0, dst, cxs)
}

// FetchXorInto atomically xors v into the value at p and writes the old
// value to dst.
func (ad *AtomicDomain[T]) FetchXorInto(p GlobalPtr[T], v T, dst *T, cxs ...Cx) Result {
	return ad.fetchInto(p, gasnet.AmoXor, v, 0, dst, cxs)
}

// ExchangeInto atomically replaces the value at p with v and writes the
// old value to dst.
func (ad *AtomicDomain[T]) ExchangeInto(p GlobalPtr[T], v T, dst *T, cxs ...Cx) Result {
	return ad.fetchInto(p, gasnet.AmoSwap, v, 0, dst, cxs)
}

// CompareExchangeInto performs CompareExchange and writes the previous
// value to dst.
func (ad *AtomicDomain[T]) CompareExchangeInto(p GlobalPtr[T], expected, desired T, dst *T, cxs ...Cx) Result {
	return ad.fetchInto(p, gasnet.AmoCAS, expected, desired, dst, cxs)
}

// FetchAddPromise performs FetchAdd, delivering the old value through pv.
func (ad *AtomicDomain[T]) FetchAddPromise(p GlobalPtr[T], v T, pv *PromiseV[T], mode ...Mode) {
	ad.fetchPromise(p, gasnet.AmoAdd, v, 0, pv, mode)
}

// FetchXorPromise performs FetchXor, delivering the old value through pv.
func (ad *AtomicDomain[T]) FetchXorPromise(p GlobalPtr[T], v T, pv *PromiseV[T], mode ...Mode) {
	ad.fetchPromise(p, gasnet.AmoXor, v, 0, pv, mode)
}
