package gupcxx

import (
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Wire-safe RPC: procedures registered by identifier with byte-slice
// arguments and results, so the invocation is fully serializable — the
// form a multi-process conduit requires (closures cannot cross address
// spaces; see DESIGN.md). On the UDP conduit, registered RPC invocations
// travel through the kernel as datagrams end-to-end; closure RPC remains
// available for in-memory conduits.
//
// Handlers must be registered on the World before Run, in the same order
// everywhere handler IDs are used (they are matched by registration
// index, like dist-object instances).

// RPCHandler processes one wire RPC on the target rank's progress
// goroutine: it receives the target rank and the request payload and
// returns the reply payload. It must not block.
//
// args is valid only for the duration of the call and must be treated as
// read-only: it aliases a pooled conduit buffer that is recycled after the
// handler returns. A handler that retains the bytes must copy them.
//
// A panic in the handler is contained: the target recovers it, counts it
// (Stats.HandlerPanics), and serializes the panic text into an error
// reply frame, so the initiator's future resolves with a *RemoteError
// while the target keeps running.
type RPCHandler func(r *Rank, args []byte) []byte

// RPCHandlerID names a registered wire-RPC procedure.
type RPCHandlerID uint32

// RegisterRPC registers fn and returns its identifier. Must be called
// before Run; every rank resolves the same ID to the same procedure.
func (w *World) RegisterRPC(fn RPCHandler) RPCHandlerID {
	w.rpcHandlers = append(w.rpcHandlers, fn)
	return RPCHandlerID(len(w.rpcHandlers) - 1)
}

// Wire-reply status codes, carried in the reply's A1.
const (
	wireRepOK           uint64 = iota // payload = reply bytes
	wireRepPanic                      // payload = serialized panic text
	wireRepUnregistered               // handler ID unknown at the target
)

// pendingWire tracks this rank's outstanding wire-RPC calls. Owner
// goroutine only: replies are dispatched during this rank's progress.
// Retired wireCall records recycle through pool, so a steady-state
// wire-RPC stream allocates no per-call tracking state.
type pendingWire struct {
	slots []*wireCall
	free  []uint32
	pool  []*wireCall
}

// wireCall is one outstanding wire RPC. Exactly one of vp (future form:
// the reply is copied into the future's value slot) or cont
// (continuation form: the reply is handed to the callback zero-copy) is
// set. bridge and inject cache method values on the pooled record, and
// contCx caches the one-element completion set around bridge, so the
// continuation form's hot path allocates nothing per call.
type wireCall struct {
	vp   *[]byte
	cont func(reply []byte, err error)
	// reply stages the continuation form's reply bytes between the
	// reply handler and the progress engine's continuation delivery;
	// they alias a pooled conduit buffer, hence the call-duration
	// contract on the callback.
	reply  []byte
	done   func(error)
	bridge func(error)
	inject func(rfn func(ctx any), done func(error))
	contCx []Cx
	r      *Rank
	args   []byte
	id     RPCHandlerID
	peer   int32
	// gen is the target's death generation at registration; the peer-down
	// sweep fails only calls from generations older than the death it is
	// sweeping, so calls issued against a readmitted incarnation survive a
	// sweep still reporting its predecessor's death.
	gen uint32
	// sent marks that inject registered the call; when false after
	// Initiate returns (admission refused, peer down), the error was
	// already delivered inline and the record goes straight back to the
	// pool.
	sent bool
}

// deliver is the continuation form's completion bridge, run by the
// progress engine as the operation's OpContinue sink: it hands the
// staged reply (nil on failure) to the user callback, clearing the
// pooled-buffer reference first.
func (c *wireCall) deliver(err error) {
	reply := c.reply
	c.reply = nil
	c.cont(reply, err)
}

// injectCont is the continuation form's substrate injection, cached as a
// method value so initiation ships no per-call closure.
func (c *wireCall) injectCont(_ func(ctx any), done func(error)) {
	r := c.r
	target := int(c.peer)
	if r.ep.PeerDown(target) {
		done(ErrPeerUnreachable)
		return
	}
	c.done = done
	c.sent = true
	c.gen = r.ep.DownGen(target)
	cookie := r.wire.add(c)
	r.ep.Send(target, gasnet.Msg{
		Handler: hRPCWireReq,
		A0:      cookie,
		A1:      uint64(c.id),
		Payload: c.args,
	})
}

// get takes a recycled wireCall (or builds one, caching its method-value
// bridges — the only allocations, amortized to zero by the pool).
func (p *pendingWire) get() *wireCall {
	if n := len(p.pool); n > 0 {
		c := p.pool[n-1]
		p.pool[n-1] = nil
		p.pool = p.pool[:n-1]
		return c
	}
	c := &wireCall{}
	c.bridge = c.deliver
	c.inject = c.injectCont
	c.contCx = []Cx{core.OpContinue(c.bridge)}
	return c
}

// put clears a retired call's per-invocation state and returns it to the
// pool. Callers must ensure the record is out of slots (or was never
// added) and its completion has been delivered.
func (p *pendingWire) put(c *wireCall) {
	c.vp = nil
	c.cont = nil
	c.reply = nil
	c.done = nil
	c.r = nil
	c.args = nil
	c.id = 0
	c.peer = 0
	c.gen = 0
	c.sent = false
	p.pool = append(p.pool, c)
}

func (p *pendingWire) add(c *wireCall) uint64 {
	if len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.slots[id] = c
		return uint64(id)
	}
	p.slots = append(p.slots, c)
	return uint64(len(p.slots) - 1)
}

// take removes and returns the call registered under cookie; ok is false
// for cookies that are out of range or already retired (a duplicated or
// straggling reply — e.g. one racing the peer-down sweep that failed the
// call). Such replies are dropped and counted, never crash.
func (p *pendingWire) take(cookie uint64) (*wireCall, bool) {
	if cookie >= uint64(len(p.slots)) || p.slots[cookie] == nil {
		return nil, false
	}
	c := p.slots[cookie]
	p.slots[cookie] = nil
	p.free = append(p.free, uint32(cookie))
	return c, true
}

// failPeer retires every pending call targeting peer whose registration
// generation predates gen (the death generation being swept), resolving
// each with err. Called from the endpoint's peer-down hook (owner
// goroutine) when the liveness detector declares the peer unreachable.
// Calls registered after the death — against the readmitted incarnation —
// have gen equal to the sweep's and are left alone.
func (p *pendingWire) failPeer(peer int, gen uint32, err error) int {
	n := 0
	for id, c := range p.slots {
		if c != nil && int(c.peer) == peer && c.gen < gen {
			p.slots[id] = nil
			p.free = append(p.free, uint32(id))
			c.done(err)
			p.put(c)
			n++
		}
	}
	return n
}

// RPCWire invokes registered procedure id on the target rank with the
// given argument bytes, returning a future carrying the reply bytes. The
// entire exchange is wire-encoded (request and reply both cross the
// conduit as data, never as closures).
//
// The future resolves with an error instead of reply bytes when the
// procedure is not registered (here or at the target), the target panics
// executing it (*RemoteError), the target is or becomes unreachable
// (ErrPeerUnreachable), or an OpDeadline in cxs expires first.
func RPCWire(r *Rank, target int, id RPCHandlerID, args []byte, cxs ...Cx) FutureV[[]byte] {
	if int(id) >= len(r.w.rpcHandlers) {
		return core.FailedFutureV[[]byte](r.eng,
			fmt.Errorf("gupcxx: wire RPC to unregistered handler %d", id))
	}
	return core.InitiateV(r.eng, core.OpDescV[[]byte]{
		Kind:     core.OpRPC,
		Deadline: core.DeadlineOf(cxs),
		Peer:     target,
		Admit:    true,
		Inject: func(slot *[]byte, done func(error)) {
			if r.ep.PeerDown(target) {
				done(ErrPeerUnreachable)
				return
			}
			c := r.wire.get()
			c.vp, c.done, c.peer = slot, done, int32(target)
			c.gen = r.ep.DownGen(target)
			cookie := r.wire.add(c)
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCWireReq,
				A0:      cookie,
				A1:      uint64(id),
				Payload: args,
			})
		},
	})
}

// RPCWireContinue invokes registered procedure id on the target rank,
// delivering the reply through cont instead of a future — the cell-free
// wire-RPC form. cont runs on this rank's progress goroutine the moment
// the reply (or failure) is known: on success err is nil and reply
// carries the handler's bytes; on failure reply is nil and err is the
// *RemoteError / ErrPeerUnreachable / deadline error the future form
// would have carried.
//
// reply is valid only for the duration of the callback and must be
// treated as read-only: it aliases a pooled conduit buffer that is
// recycled after dispatch (the same contract as RPCHandler args). A
// callback that retains the bytes must copy them. This is what removes
// the future form's per-reply allocation pair (future cell + reply
// copy): steady-state, the continuation form's call tracking, reply
// delivery, and completion state are all recycled.
//
// cont must not block; it may initiate communication (including further
// wire RPCs). A panic in cont is contained and counted
// (ContinuationPanics). cxs may carry OpDeadline requests bounding the
// completion time; other completion kinds are ignored (the continuation
// is the only sink).
func RPCWireContinue(r *Rank, target int, id RPCHandlerID, args []byte, cont func(reply []byte, err error), cxs ...Cx) {
	if int(id) >= len(r.w.rpcHandlers) {
		cont(nil, fmt.Errorf("gupcxx: wire RPC to unregistered handler %d", id))
		return
	}
	c := r.wire.get()
	c.r, c.id, c.args, c.peer, c.cont = r, id, args, int32(target), cont
	r.eng.Initiate(core.OpDesc{
		Kind:     core.OpRPC,
		Deadline: core.DeadlineOf(cxs),
		Peer:     target,
		Admit:    true,
		Inject:   c.inject,
	}, c.contCx)
	if !c.sent {
		// Admission refused or peer already down: the error was delivered
		// through the continuation inline and the call never entered the
		// pending table.
		r.wire.put(c)
	}
}

// handleRPCWireReq executes a registered procedure and ships the reply —
// or, when the procedure is missing or panics, a status frame carrying
// the failure.
func handleRPCWireReq(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	id := RPCHandlerID(m.A1)
	if int(id) >= len(r.w.rpcHandlers) {
		ep.Send(int(m.From), gasnet.Msg{Handler: hRPCWireRep, A0: m.A0, A1: wireRepUnregistered})
		return
	}
	// Zero-copy: the payload is handed to the handler directly under the
	// RPCHandler contract (read-only, call duration only) — the pooled
	// buffer it aliases is recycled after dispatch.
	var reply []byte
	err := r.runContained(func(hr *Rank) { reply = r.w.rpcHandlers[id](hr, m.Payload) })
	if err != nil {
		ep.Send(int(m.From), gasnet.Msg{
			Handler: hRPCWireRep,
			A0:      m.A0,
			A1:      wireRepPanic,
			Payload: []byte(err.(*RemoteError).Msg),
		})
		return
	}
	ep.Send(int(m.From), gasnet.Msg{
		Handler: hRPCWireRep,
		A0:      m.A0,
		A1:      wireRepOK,
		Payload: reply,
	})
}

// handleRPCWireRep completes the initiator's pending call and recycles
// its tracking record. The future form copies the reply out (the future
// may be read long after the conduit buffer recycles); the continuation
// form stages the payload zero-copy — the callback runs synchronously
// inside done's completion delivery, within the reply's call-duration
// window.
func handleRPCWireRep(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	c, ok := r.wire.take(m.A0)
	if !ok {
		r.w.dom.NoteBadCookie()
		return
	}
	var err error
	switch m.A1 {
	case wireRepOK:
	case wireRepPanic:
		err = &RemoteError{Rank: int(m.From), Msg: string(m.Payload)}
	default:
		err = &RemoteError{Rank: int(m.From), Msg: "wire RPC handler not registered at target"}
	}
	if c.cont != nil {
		if err == nil {
			c.reply = m.Payload
		}
		c.done(err)
	} else {
		if err == nil {
			*c.vp = append([]byte(nil), m.Payload...)
		}
		c.done(err)
	}
	r.wire.put(c)
}
