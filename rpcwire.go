package gupcxx

import (
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Wire-safe RPC: procedures registered by identifier with byte-slice
// arguments and results, so the invocation is fully serializable — the
// form a multi-process conduit requires (closures cannot cross address
// spaces; see DESIGN.md). On the UDP conduit, registered RPC invocations
// travel through the kernel as datagrams end-to-end; closure RPC remains
// available for in-memory conduits.
//
// Handlers must be registered on the World before Run, in the same order
// everywhere handler IDs are used (they are matched by registration
// index, like dist-object instances).

// RPCHandler processes one wire RPC on the target rank's progress
// goroutine: it receives the target rank and the request payload and
// returns the reply payload. It must not block.
//
// args is valid only for the duration of the call and must be treated as
// read-only: it aliases a pooled conduit buffer that is recycled after the
// handler returns. A handler that retains the bytes must copy them.
//
// A panic in the handler is contained: the target recovers it, counts it
// (Stats.HandlerPanics), and serializes the panic text into an error
// reply frame, so the initiator's future resolves with a *RemoteError
// while the target keeps running.
type RPCHandler func(r *Rank, args []byte) []byte

// RPCHandlerID names a registered wire-RPC procedure.
type RPCHandlerID uint32

// RegisterRPC registers fn and returns its identifier. Must be called
// before Run; every rank resolves the same ID to the same procedure.
func (w *World) RegisterRPC(fn RPCHandler) RPCHandlerID {
	w.rpcHandlers = append(w.rpcHandlers, fn)
	return RPCHandlerID(len(w.rpcHandlers) - 1)
}

// Wire-reply status codes, carried in the reply's A1.
const (
	wireRepOK           uint64 = iota // payload = reply bytes
	wireRepPanic                      // payload = serialized panic text
	wireRepUnregistered               // handler ID unknown at the target
)

// pendingWire tracks this rank's outstanding wire-RPC calls. Owner
// goroutine only: replies are dispatched during this rank's progress.
type pendingWire struct {
	slots []*wireCall
	free  []uint32
}

type wireCall struct {
	vp   *[]byte
	done func(error)
	peer int32
}

func (p *pendingWire) add(c *wireCall) uint64 {
	if len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.slots[id] = c
		return uint64(id)
	}
	p.slots = append(p.slots, c)
	return uint64(len(p.slots) - 1)
}

// take removes and returns the call registered under cookie; ok is false
// for cookies that are out of range or already retired (a duplicated or
// straggling reply — e.g. one racing the peer-down sweep that failed the
// call). Such replies are dropped and counted, never crash.
func (p *pendingWire) take(cookie uint64) (*wireCall, bool) {
	if cookie >= uint64(len(p.slots)) || p.slots[cookie] == nil {
		return nil, false
	}
	c := p.slots[cookie]
	p.slots[cookie] = nil
	p.free = append(p.free, uint32(cookie))
	return c, true
}

// failPeer retires every pending call targeting peer, resolving each with
// err. Called from the endpoint's peer-down hook (owner goroutine) when
// the liveness detector declares the peer unreachable.
func (p *pendingWire) failPeer(peer int, err error) int {
	n := 0
	for id, c := range p.slots {
		if c != nil && int(c.peer) == peer {
			p.slots[id] = nil
			p.free = append(p.free, uint32(id))
			c.done(err)
			n++
		}
	}
	return n
}

// RPCWire invokes registered procedure id on the target rank with the
// given argument bytes, returning a future carrying the reply bytes. The
// entire exchange is wire-encoded (request and reply both cross the
// conduit as data, never as closures).
//
// The future resolves with an error instead of reply bytes when the
// procedure is not registered (here or at the target), the target panics
// executing it (*RemoteError), the target is or becomes unreachable
// (ErrPeerUnreachable), or an OpDeadline in cxs expires first.
func RPCWire(r *Rank, target int, id RPCHandlerID, args []byte, cxs ...Cx) FutureV[[]byte] {
	if int(id) >= len(r.w.rpcHandlers) {
		return core.FailedFutureV[[]byte](r.eng,
			fmt.Errorf("gupcxx: wire RPC to unregistered handler %d", id))
	}
	return core.InitiateV(r.eng, core.OpDescV[[]byte]{
		Kind:     core.OpRPC,
		Deadline: core.DeadlineOf(cxs),
		Peer:     target,
		Admit:    true,
		Inject: func(slot *[]byte, done func(error)) {
			if r.ep.PeerDown(target) {
				done(ErrPeerUnreachable)
				return
			}
			cookie := r.wire.add(&wireCall{vp: slot, done: done, peer: int32(target)})
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCWireReq,
				A0:      cookie,
				A1:      uint64(id),
				Payload: args,
			})
		},
	})
}

// handleRPCWireReq executes a registered procedure and ships the reply —
// or, when the procedure is missing or panics, a status frame carrying
// the failure.
func handleRPCWireReq(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	id := RPCHandlerID(m.A1)
	if int(id) >= len(r.w.rpcHandlers) {
		ep.Send(int(m.From), gasnet.Msg{Handler: hRPCWireRep, A0: m.A0, A1: wireRepUnregistered})
		return
	}
	// Zero-copy: the payload is handed to the handler directly under the
	// RPCHandler contract (read-only, call duration only) — the pooled
	// buffer it aliases is recycled after dispatch.
	var reply []byte
	err := r.runContained(func(hr *Rank) { reply = r.w.rpcHandlers[id](hr, m.Payload) })
	if err != nil {
		ep.Send(int(m.From), gasnet.Msg{
			Handler: hRPCWireRep,
			A0:      m.A0,
			A1:      wireRepPanic,
			Payload: []byte(err.(*RemoteError).Msg),
		})
		return
	}
	ep.Send(int(m.From), gasnet.Msg{
		Handler: hRPCWireRep,
		A0:      m.A0,
		A1:      wireRepOK,
		Payload: reply,
	})
}

// handleRPCWireRep completes the initiator's pending call.
func handleRPCWireRep(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	c, ok := r.wire.take(m.A0)
	if !ok {
		r.w.dom.NoteBadCookie()
		return
	}
	switch m.A1 {
	case wireRepOK:
		*c.vp = append([]byte(nil), m.Payload...)
		c.done(nil)
	case wireRepPanic:
		c.done(&RemoteError{Rank: int(m.From), Msg: string(m.Payload)})
	default:
		c.done(&RemoteError{Rank: int(m.From), Msg: "wire RPC handler not registered at target"})
	}
}
