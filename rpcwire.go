package gupcxx

import (
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Wire-safe RPC: procedures registered by identifier with byte-slice
// arguments and results, so the invocation is fully serializable — the
// form a multi-process conduit requires (closures cannot cross address
// spaces; see DESIGN.md). On the UDP conduit, registered RPC invocations
// travel through the kernel as datagrams end-to-end; closure RPC remains
// available for in-memory conduits.
//
// Handlers must be registered on the World before Run, in the same order
// everywhere handler IDs are used (they are matched by registration
// index, like dist-object instances).

// RPCHandler processes one wire RPC on the target rank's progress
// goroutine: it receives the target rank and the request payload and
// returns the reply payload. It must not block.
//
// args is valid only for the duration of the call and must be treated as
// read-only: it aliases a pooled conduit buffer that is recycled after the
// handler returns. A handler that retains the bytes must copy them.
type RPCHandler func(r *Rank, args []byte) []byte

// RPCHandlerID names a registered wire-RPC procedure.
type RPCHandlerID uint32

// RegisterRPC registers fn and returns its identifier. Must be called
// before Run; every rank resolves the same ID to the same procedure.
func (w *World) RegisterRPC(fn RPCHandler) RPCHandlerID {
	w.rpcHandlers = append(w.rpcHandlers, fn)
	return RPCHandlerID(len(w.rpcHandlers) - 1)
}

// pendingWire tracks this rank's outstanding wire-RPC calls. Owner
// goroutine only: replies are dispatched during this rank's progress.
type pendingWire struct {
	slots []*wireCall
	free  []uint32
}

type wireCall struct {
	vp   *[]byte
	done func()
}

func (p *pendingWire) add(c *wireCall) uint64 {
	if len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.slots[id] = c
		return uint64(id)
	}
	p.slots = append(p.slots, c)
	return uint64(len(p.slots) - 1)
}

func (p *pendingWire) take(cookie uint64) *wireCall {
	c := p.slots[cookie]
	if c == nil {
		panic(fmt.Sprintf("gupcxx: wire RPC reply for unknown cookie %d", cookie))
	}
	p.slots[cookie] = nil
	p.free = append(p.free, uint32(cookie))
	return c
}

// RPCWire invokes registered procedure id on the target rank with the
// given argument bytes, returning a future carrying the reply bytes. The
// entire exchange is wire-encoded (request and reply both cross the
// conduit as data, never as closures).
func RPCWire(r *Rank, target int, id RPCHandlerID, args []byte) FutureV[[]byte] {
	if int(id) >= len(r.w.rpcHandlers) {
		panic(fmt.Sprintf("gupcxx: wire RPC to unregistered handler %d", id))
	}
	return core.InitiateV(r.eng, core.OpDescV[[]byte]{
		Kind: core.OpRPC,
		Inject: func(slot *[]byte, done func()) {
			cookie := r.wire.add(&wireCall{vp: slot, done: done})
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCWireReq,
				A0:      cookie,
				A1:      uint64(id),
				Payload: args,
			})
		},
	})
}

// handleRPCWireReq executes a registered procedure and ships the reply.
func handleRPCWireReq(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	id := RPCHandlerID(m.A1)
	if int(id) >= len(r.w.rpcHandlers) {
		panic(fmt.Sprintf("gupcxx: wire RPC for unregistered handler %d on rank %d", id, r.Me()))
	}
	// Zero-copy: the payload is handed to the handler directly under the
	// RPCHandler contract (read-only, call duration only) — the pooled
	// buffer it aliases is recycled after dispatch.
	reply := r.w.rpcHandlers[id](r, m.Payload)
	ep.Send(int(m.From), gasnet.Msg{
		Handler: hRPCWireRep,
		A0:      m.A0,
		Payload: reply,
	})
}

// handleRPCWireRep completes the initiator's pending call.
func handleRPCWireRep(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	c := r.wire.take(m.A0)
	*c.vp = append([]byte(nil), m.Payload...)
	c.done()
}
