package gupcxx

import (
	"fmt"

	"gupcxx/internal/gasnet"
)

// GlobalPtr is a typed global address: a (rank, segment offset) pair
// referring to an object of type T in some rank's shared segment. It is the
// analogue of UPC++'s global_ptr<T>. The zero value is the null global
// pointer.
//
// T must be a fixed-layout value type (integers, floats, or structs/arrays
// thereof); global memory cannot hold Go pointers, slices, or maps, since
// co-located ranks access it as raw shared words.
type GlobalPtr[T any] struct {
	rank int32
	off  uint32
}

// Null reports whether the pointer is the null global pointer.
//
// Offset 0 of rank 0's segment is intentionally never handed out by the
// allocator, so the zero GlobalPtr is unambiguous.
func (p GlobalPtr[T]) Null() bool { return p.rank == 0 && p.off == 0 }

// Rank returns the rank whose segment the pointer refers into.
func (p GlobalPtr[T]) Rank() int { return int(p.rank) }

// Offset returns the byte offset within the owning rank's segment.
func (p GlobalPtr[T]) Offset() uint32 { return p.off }

// String formats the pointer for diagnostics.
func (p GlobalPtr[T]) String() string {
	var z T
	return fmt.Sprintf("gptr[%T]{rank %d, off %d}", z, p.rank, p.off)
}

// IsLocal reports whether rank r has direct load/store access to the
// referenced memory — the paper's is_local query.
func (p GlobalPtr[T]) IsLocal(r *Rank) bool { return r.localTo(p.rank) }

// Local downcasts the global pointer to a raw pointer, valid only when
// IsLocal(r); it panics otherwise. This is the manual-localization
// primitive of §II-C: dereferencing the result bypasses the runtime
// entirely.
func (p GlobalPtr[T]) Local(r *Rank) *T {
	if !r.localTo(p.rank) {
		panic(fmt.Sprintf("gupcxx: Local() on non-local %v from rank %d", p, r.Me()))
	}
	return gasnet.ViewAs[T](r.w.dom.Segment(int(p.rank)), p.off)
}

// LocalSlice views n elements starting at the pointer as a slice; the
// pointer must be local to r.
func (p GlobalPtr[T]) LocalSlice(r *Rank, n int) []T {
	if !r.localTo(p.rank) {
		panic(fmt.Sprintf("gupcxx: LocalSlice() on non-local %v from rank %d", p, r.Me()))
	}
	return gasnet.ViewSlice[T](r.w.dom.Segment(int(p.rank)), p.off, n)
}

// Element returns a pointer to the i'th element of the array the pointer
// heads — global pointer arithmetic.
func (p GlobalPtr[T]) Element(i int) GlobalPtr[T] {
	size := gasnet.SizeOf[T]()
	off := int64(p.off) + int64(i)*int64(size)
	if off < 0 || off > int64(^uint32(0)) {
		panic(fmt.Sprintf("gupcxx: element offset %d out of range for %v", i, p))
	}
	return GlobalPtr[T]{rank: p.rank, off: uint32(off)}
}

// Alloc reserves space for one T in rank r's own shared segment.
func Alloc[T any](r *Rank) (GlobalPtr[T], error) {
	return AllocArray[T](r, 1)
}

// AllocArray reserves space for n contiguous Ts in rank r's own shared
// segment.
func AllocArray[T any](r *Rank, n int) (GlobalPtr[T], error) {
	seg := r.ep.Segment()
	size := gasnet.SizeOf[T]()
	if r.Me() == 0 && seg.Used() == 0 {
		// Reserve offset 0 of rank 0 so the zero GlobalPtr stays null.
		if _, err := seg.Alloc(8); err != nil {
			return GlobalPtr[T]{}, err
		}
	}
	off, err := seg.Alloc(n * size)
	if err != nil {
		return GlobalPtr[T]{}, fmt.Errorf("rank %d: %w", r.Me(), err)
	}
	return GlobalPtr[T]{rank: int32(r.Me()), off: off}, nil
}

// New allocates one T in rank r's shared segment, panicking on segment
// exhaustion (the analogue of upcxx::new_<T>, which throws).
func New[T any](r *Rank) GlobalPtr[T] {
	p, err := Alloc[T](r)
	if err != nil {
		panic(err)
	}
	return p
}

// NewArray allocates n contiguous Ts in rank r's shared segment, panicking
// on exhaustion (the analogue of upcxx::new_array<T>).
func NewArray[T any](r *Rank, n int) GlobalPtr[T] {
	p, err := AllocArray[T](r, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Delete releases the allocation at p. The segment arena is bump-allocated
// (see gasnet.Segment.Free), so this records intent rather than recycling.
func Delete[T any](r *Rank, p GlobalPtr[T]) {
	r.w.dom.Segment(int(p.rank)).Free(p.off)
}
