package gupcxx

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gupcxx/internal/gasnet"
)

// Team is an ordered subset of the world's ranks with its own collective
// operations, the analogue of upcxx::team. The world team contains every
// rank; Split carves sub-teams by color, MPI-communicator style.
//
// A Team value is rank-local (each member holds its own handle); team
// collectives must be called by every member, in the same order.
type Team struct {
	r       *Rank
	id      uint64 // identical on all members, distinct across live teams
	members []int  // world ranks, sorted by (key, world rank)
	myIdx   int    // position of r in members
	splits  int    // number of Split calls performed on this team

	barrierSeq uint64
	bcastSeq   uint64
	gatherSeq  uint64
}

// WorldTeam returns the team of all ranks. The handle is cached on the
// Rank so repeated calls share one sequence space (the world team is a
// singleton, as in UPC++).
func (r *Rank) WorldTeam() *Team {
	if r.teamWorld == nil {
		members := make([]int, r.N())
		for i := range members {
			members[i] = i
		}
		r.teamWorld = &Team{r: r, id: 1, members: members, myIdx: r.Me()}
	}
	return r.teamWorld
}

// Rank returns the caller's rank within the team.
func (t *Team) Rank() int { return t.myIdx }

// N returns the team size.
func (t *Team) N() int { return len(t.members) }

// WorldRank converts a team rank to a world rank.
func (t *Team) WorldRank(teamRank int) int { return t.members[teamRank] }

// ID returns the team identity (diagnostics).
func (t *Team) ID() uint64 { return t.id }

// String formats the team for diagnostics.
func (t *Team) String() string {
	return fmt.Sprintf("team{id %#x, %d ranks, me %d}", t.id, len(t.members), t.myIdx)
}

// childID derives the identity of the (splits-th, color) child of team
// id. All members of a parent have performed the same number of splits
// on it (Split is collective), so the derivation agrees on every member.
func childID(parent uint64, splits int, color int) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, parent)
	put(8, uint64(splits))
	put(16, uint64(int64(color)))
	h.Write(buf[:])
	return h.Sum64()
}

// Split partitions the team: members passing the same color form a new
// team, ordered by (key, world rank). Collective over the team. A
// negative color opts the caller out, returning nil.
func (t *Team) Split(color, key int) *Team {
	type entry struct {
		color, key, world int
	}
	// Allgather (color, key) over the current team.
	packed := uint64(uint32(color))<<32 | uint64(uint32(key))
	words := t.exchange(packed)
	entries := make([]entry, len(words))
	for i, w := range words {
		entries[i] = entry{
			color: int(int32(w >> 32)),
			key:   int(int32(w)),
			world: t.members[i],
		}
	}
	splits := t.splits
	t.splits++
	if color < 0 {
		return nil
	}
	var mine []entry
	for _, e := range entries {
		if e.color == color {
			mine = append(mine, e)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].world < mine[j].world
	})
	child := &Team{
		r:  t.r,
		id: childID(t.id, splits, color),
	}
	for i, e := range mine {
		child.members = append(child.members, e.world)
		if e.world == t.r.Me() {
			child.myIdx = i
		}
	}
	return child
}

// --- team collectives ---
// These mirror the world collectives in collectives.go but key their
// matching state by team identity, so collectives on different teams
// never cross-match.

// key builds the collective matching key for this team. Team kinds live
// at 8k+3..8k+5 in the kind space, so they can never collide with the
// world collectives in collectives.go (kinds 0–2) regardless of team id.
func (t *Team) key(kind uint64, seq uint64, round uint32) collKey {
	return collKey{kind: t.id*8 + 3 + kind, seq: seq, round: round}
}

// send ships a collective token to a team-rank peer.
func (t *Team) send(teamRank int, kind uint64, seq uint64, round uint32, a0 uint64, payload []byte) {
	t.r.ep.Send(t.members[teamRank], gasnet.Msg{
		Handler: hColl,
		A1:      t.id*8 + 3 + kind,
		A2:      seq,
		A3:      uint64(round),
		A0:      a0,
		Payload: payload,
	})
}

// Barrier blocks until every team member has entered (dissemination over
// the team).
func (t *Team) Barrier() {
	collOp(t.r, t.barrier)
}

func (t *Team) barrier() {
	n := t.N()
	seq := t.barrierSeq
	t.barrierSeq++
	if n == 1 {
		return
	}
	me := t.myIdx
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		t.send((me+dist)%n, collBarrier, seq, uint32(k), 0, nil)
		// This round's token comes from the mirror-image member.
		t.r.waitColl(t.key(collBarrier, seq, uint32(k)), 1, depOn(t.members[(me-dist+n)%n]))
	}
}

// BroadcastU64 distributes one word from the team-rank root to all
// members.
func (t *Team) BroadcastU64(root int, v uint64) uint64 {
	var out uint64
	collOp(t.r, func() { out = t.broadcastU64(root, v) })
	return out
}

func (t *Team) broadcastU64(root int, v uint64) uint64 {
	seq := t.bcastSeq
	t.bcastSeq++
	if t.N() == 1 {
		return v
	}
	if t.myIdx == root {
		for i := 0; i < t.N(); i++ {
			if i != root {
				t.send(i, collBcast, seq, 0, v, nil)
			}
		}
		return v
	}
	msgs := t.r.waitColl(t.key(collBcast, seq, 0), 1, depOn(t.members[root]))
	return msgs[0].A0
}

// exchange allgathers one word per member, indexed by team rank. It is
// the pipeline entry for every team allgather-shaped collective
// (ExchangeU64, ReduceU64, Split all funnel through it).
func (t *Team) exchange(v uint64) []uint64 {
	var out []uint64
	collOp(t.r, func() { out = t.exchangeProtocol(v) })
	return out
}

func (t *Team) exchangeProtocol(v uint64) []uint64 {
	n := t.N()
	seq := t.gatherSeq
	t.gatherSeq++
	out := make([]uint64, n)
	out[t.myIdx] = v
	if n == 1 {
		return out
	}
	for i := 0; i < n; i++ {
		if i != t.myIdx {
			t.send(i, collGather, seq, 0, v, nil)
		}
	}
	// Direct all-to-all: the wait depends on exactly the members whose
	// contribution has not yet been filed.
	key := t.key(collGather, seq, 0)
	deps := func() []int {
		arrived := make(map[int32]bool, len(t.r.coll.inbox[key]))
		for _, m := range t.r.coll.inbox[key] {
			arrived[m.From] = true
		}
		var missing []int
		for i, wr := range t.members {
			if i != t.myIdx && !arrived[int32(wr)] {
				missing = append(missing, wr)
			}
		}
		return missing
	}
	msgs := t.r.waitColl(key, n-1, deps)
	worldToTeam := make(map[int32]int, n)
	for i, wr := range t.members {
		worldToTeam[int32(wr)] = i
	}
	for _, m := range msgs {
		idx, ok := worldToTeam[m.From]
		if !ok {
			panic(fmt.Sprintf("gupcxx: allgather contribution from non-member rank %d", m.From))
		}
		out[idx] = m.A0
	}
	return out
}

// ExchangeU64 allgathers one word per member; the i'th element is team
// rank i's contribution.
func (t *Team) ExchangeU64(v uint64) []uint64 { return t.exchange(v) }

// ReduceU64 combines one word from every member with op (associative and
// commutative) and returns the result on every member.
func (t *Team) ReduceU64(v uint64, op func(a, b uint64) uint64) uint64 {
	words := t.exchange(v)
	acc := words[0]
	for _, w := range words[1:] {
		acc = op(acc, w)
	}
	return acc
}

// SumU64 returns the team-wide sum of v.
func (t *Team) SumU64(v uint64) uint64 {
	return t.ReduceU64(v, func(a, b uint64) uint64 { return a + b })
}
