package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Runtime-level active-message handler IDs (user range of the substrate's
// handler table).
const (
	hRPCExec    uint8 = gasnet.HandlerUserBase + iota // execute Msg.Fn on the target
	hColl                                             // collective token/payload
	hRPCWireReq                                       // wire RPC request (registered handler)
	hRPCWireRep                                       // wire RPC reply
)

// handleRPCExec runs a shipped procedure on the receiving rank's progress
// goroutine.
func handleRPCExec(ep *gasnet.Endpoint, m *gasnet.Msg) {
	m.Fn(ep)
}

// rankOf recovers the runtime Rank attached to a substrate endpoint.
func rankOf(ep *gasnet.Endpoint) *Rank {
	return ep.Ctx.(*Rank)
}

// wireOnly reports whether target is reachable only through wire-encoded
// messages from this rank: in a Multiproc world every rank but self lives
// in another address space, so a closure cannot travel there. The closure
// RPC family and closure-built remote completions gate on this at
// initiation, failing eagerly with ErrNotWireEncodable instead of
// tripping the substrate's delivery backstop.
func (r *Rank) wireOnly(target int) bool {
	return r.w.multiproc && target != r.Me()
}

// runContained executes user code under the panic-containment boundary:
// a panic is recovered (the progress engine keeps running), counted in
// the substrate statistics, and returned as a *RemoteError.
func (r *Rank) runContained(fn func(*Rank)) error {
	err := contain(r.Me(), func() { fn(r) })
	if err != nil {
		r.w.dom.NoteHandlerPanic()
	}
	return err
}

// RPC ships fn for execution on the target rank's progress goroutine and
// returns a future that readies (on the initiator) once fn has executed
// and the acknowledgment has returned — the analogue of upcxx::rpc with a
// void-returning function.
//
// fn runs inside the target's progress engine and must not block; it may
// initiate communication and use promises/LPCs for follow-up work. If fn
// panics, the panic is contained on the target and the future resolves
// with a *RemoteError instead of crashing the target rank.
//
// cxs optionally overrides the completion-request set (default: one
// operation future). Compose a deadline with the default sink as
// RPC(r, t, fn, OpFuture(), OpDeadline(d)). Passing OpContinue(cb)
// instead of the future sink drops the acknowledgment's future cell —
// the cheapest acknowledged RPC form (see also RPCWireContinue for the
// wire-encoded analogue).
//
// An RPC is never Local in the pipeline's sense: even a self-RPC runs fn
// from the progress engine, not inline at initiation, so its completion is
// always asynchronous.
func RPC(r *Rank, target int, fn func(*Rank), cxs ...Cx) Future {
	cxs = cxsOrDefault(cxs)
	if target == r.Me() {
		return r.eng.Initiate(core.OpDesc{
			Kind: core.OpRPC,
			Inject: func(_ func(ctx any), done func(error)) {
				r.eng.EnqueueLPC(func() {
					done(r.runContained(fn))
				})
			},
		}, cxs).Op
	}
	if r.wireOnly(target) {
		// A closure cannot cross a process boundary: fail every requested
		// completion with ErrNotWireEncodable at initiation. RPCWire is the
		// cross-process form.
		return r.eng.Initiate(core.OpDesc{
			Kind: core.OpRPC,
			Peer: target,
			Inject: func(_ func(ctx any), done func(error)) {
				done(ErrNotWireEncodable)
			},
		}, cxs).Op
	}
	me := r.Me()
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRPC,
		Peer:  target,
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn: func(tep *gasnet.Endpoint) {
					err := rankOf(tep).runContained(fn)
					tep.Send(me, gasnet.Msg{
						Handler: hRPCExec,
						Fn:      func(*gasnet.Endpoint) { done(err) },
					})
				},
			})
		},
	}, cxs).Op
}

// RPCCall ships fn for execution on the target rank and returns a future
// carrying fn's result — the analogue of upcxx::rpc with a returning
// function. The result is written straight into the future's value slot by
// the acknowledgment handler. A panic in fn is contained on the target and
// resolves the future with a *RemoteError (and a zero value).
//
// cxs may carry OpDeadline requests bounding the completion time; other
// completion kinds are ignored (the value future is the only sink).
func RPCCall[T any](r *Rank, target int, fn func(*Rank) T, cxs ...Cx) FutureV[T] {
	dl := core.DeadlineOf(cxs)
	if target == r.Me() {
		return core.InitiateV(r.eng, core.OpDescV[T]{
			Kind:     core.OpRPC,
			Deadline: dl,
			Inject: func(slot *T, done func(error)) {
				r.eng.EnqueueLPC(func() {
					done(r.runContained(func(sr *Rank) { *slot = fn(sr) }))
				})
			},
		})
	}
	if r.wireOnly(target) {
		return core.FailedFutureV[T](r.eng, ErrNotWireEncodable)
	}
	me := r.Me()
	return core.InitiateV(r.eng, core.OpDescV[T]{
		Kind:     core.OpRPC,
		Deadline: dl,
		Peer:     target,
		Admit:    true,
		Inject: func(slot *T, done func(error)) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn: func(tep *gasnet.Endpoint) {
					var v T
					err := rankOf(tep).runContained(func(tr *Rank) { v = fn(tr) })
					tep.Send(me, gasnet.Msg{
						Handler: hRPCExec,
						Fn: func(*gasnet.Endpoint) {
							if err == nil {
								*slot = v
							}
							done(err)
						},
					})
				},
			})
		},
	})
}

// RPCFireAndForget ships fn for execution on the target rank with no
// completion notification (the analogue of upcxx::rpc_ff). It is the
// cheapest RPC form: no acknowledgment message is generated and the
// pipeline registers no completion state. A panic in fn is contained and
// counted on the target (Stats.HandlerPanics) — with no reply path, that
// tally is the only trace.
//
// In a Multiproc world a remote target is an error: with no completion
// to resolve, the rank is aborted with ErrNotWireEncodable (Run converts
// the abort into an ordinary error) — failing loudly rather than
// dropping the closure on the floor.
func RPCFireAndForget(r *Rank, target int, fn func(*Rank)) {
	if r.wireOnly(target) {
		abortRank(ErrNotWireEncodable)
	}
	if target == r.Me() {
		r.eng.Initiate(core.OpDesc{
			Kind: core.OpRPC,
			Inject: func(_ func(ctx any), _ func(error)) {
				r.eng.EnqueueLPC(func() { r.runContained(fn) })
			},
		}, nil)
		return
	}
	r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRPC,
		Peer:  target,
		Admit: true,
		Inject: func(_ func(ctx any), _ func(error)) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn:      func(tep *gasnet.Endpoint) { rankOf(tep).runContained(fn) },
			})
		},
	}, nil)
}
