package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Runtime-level active-message handler IDs (user range of the substrate's
// handler table).
const (
	hRPCExec    uint8 = gasnet.HandlerUserBase + iota // execute Msg.Fn on the target
	hColl                                             // collective token/payload
	hRPCWireReq                                       // wire RPC request (registered handler)
	hRPCWireRep                                       // wire RPC reply
)

// handleRPCExec runs a shipped procedure on the receiving rank's progress
// goroutine.
func handleRPCExec(ep *gasnet.Endpoint, m *gasnet.Msg) {
	m.Fn(ep)
}

// rankOf recovers the runtime Rank attached to a substrate endpoint.
func rankOf(ep *gasnet.Endpoint) *Rank {
	return ep.Ctx.(*Rank)
}

// RPC ships fn for execution on the target rank's progress goroutine and
// returns a future that readies (on the initiator) once fn has executed
// and the acknowledgment has returned — the analogue of upcxx::rpc with a
// void-returning function.
//
// fn runs inside the target's progress engine and must not block; it may
// initiate communication and use promises/LPCs for follow-up work.
//
// An RPC is never Local in the pipeline's sense: even a self-RPC runs fn
// from the progress engine, not inline at initiation, so its completion is
// always asynchronous.
func RPC(r *Rank, target int, fn func(*Rank)) Future {
	if target == r.Me() {
		return r.eng.Initiate(core.OpDesc{
			Kind: core.OpRPC,
			Inject: func(_ func(ctx any), done func()) {
				r.eng.EnqueueLPC(func() {
					fn(r)
					done()
				})
			},
		}, defaultCx).Op
	}
	me := r.Me()
	return r.eng.Initiate(core.OpDesc{
		Kind: core.OpRPC,
		Inject: func(_ func(ctx any), done func()) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn: func(tep *gasnet.Endpoint) {
					fn(rankOf(tep))
					tep.Send(me, gasnet.Msg{
						Handler: hRPCExec,
						Fn:      func(*gasnet.Endpoint) { done() },
					})
				},
			})
		},
	}, defaultCx).Op
}

// RPCCall ships fn for execution on the target rank and returns a future
// carrying fn's result — the analogue of upcxx::rpc with a returning
// function. The result is written straight into the future's value slot by
// the acknowledgment handler.
func RPCCall[T any](r *Rank, target int, fn func(*Rank) T) FutureV[T] {
	if target == r.Me() {
		return core.InitiateV(r.eng, core.OpDescV[T]{
			Kind: core.OpRPC,
			Inject: func(slot *T, done func()) {
				r.eng.EnqueueLPC(func() {
					*slot = fn(r)
					done()
				})
			},
		})
	}
	me := r.Me()
	return core.InitiateV(r.eng, core.OpDescV[T]{
		Kind: core.OpRPC,
		Inject: func(slot *T, done func()) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn: func(tep *gasnet.Endpoint) {
					v := fn(rankOf(tep))
					tep.Send(me, gasnet.Msg{
						Handler: hRPCExec,
						Fn: func(*gasnet.Endpoint) {
							*slot = v
							done()
						},
					})
				},
			})
		},
	})
}

// RPCFireAndForget ships fn for execution on the target rank with no
// completion notification (the analogue of upcxx::rpc_ff). It is the
// cheapest RPC form: no acknowledgment message is generated and the
// pipeline registers no completion state.
func RPCFireAndForget(r *Rank, target int, fn func(*Rank)) {
	if target == r.Me() {
		r.eng.Initiate(core.OpDesc{
			Kind: core.OpRPC,
			Inject: func(_ func(ctx any), _ func()) {
				r.eng.EnqueueLPC(func() { fn(r) })
			},
		}, nil)
		return
	}
	r.eng.Initiate(core.OpDesc{
		Kind: core.OpRPC,
		Inject: func(_ func(ctx any), _ func()) {
			r.ep.Send(target, gasnet.Msg{
				Handler: hRPCExec,
				Fn:      func(tep *gasnet.Endpoint) { fn(rankOf(tep)) },
			})
		},
	}, nil)
}
