package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Runtime-level active-message handler IDs (user range of the substrate's
// handler table).
const (
	hRPCExec    uint8 = gasnet.HandlerUserBase + iota // execute Msg.Fn on the target
	hColl                                             // collective token/payload
	hRPCWireReq                                       // wire RPC request (registered handler)
	hRPCWireRep                                       // wire RPC reply
)

// handleRPCExec runs a shipped procedure on the receiving rank's progress
// goroutine.
func handleRPCExec(ep *gasnet.Endpoint, m *gasnet.Msg) {
	m.Fn(ep)
}

// rankOf recovers the runtime Rank attached to a substrate endpoint.
func rankOf(ep *gasnet.Endpoint) *Rank {
	return ep.Ctx.(*Rank)
}

// RPC ships fn for execution on the target rank's progress goroutine and
// returns a future that readies (on the initiator) once fn has executed
// and the acknowledgment has returned — the analogue of upcxx::rpc with a
// void-returning function.
//
// fn runs inside the target's progress engine and must not block; it may
// initiate communication and use promises/LPCs for follow-up work.
func RPC(r *Rank, target int, fn func(*Rank)) Future {
	if target == r.Me() {
		// Self-RPC still runs from the progress engine, not inline.
		fut, h := r.eng.NewOpFuture()
		r.eng.EnqueueLPC(func() {
			fn(r)
			h.Fulfill()
		})
		return fut
	}
	fut, h := r.eng.NewOpFuture()
	me := r.Me()
	r.ep.Send(target, gasnet.Msg{
		Handler: hRPCExec,
		Fn: func(tep *gasnet.Endpoint) {
			fn(rankOf(tep))
			tep.Send(me, gasnet.Msg{
				Handler: hRPCExec,
				Fn:      func(*gasnet.Endpoint) { h.Fulfill() },
			})
		},
	})
	return fut
}

// RPCCall ships fn for execution on the target rank and returns a future
// carrying fn's result — the analogue of upcxx::rpc with a returning
// function.
func RPCCall[T any](r *Rank, target int, fn func(*Rank) T) FutureV[T] {
	fut, vp, h := core.NewFutureV[T](r.eng)
	if target == r.Me() {
		r.eng.EnqueueLPC(func() {
			*vp = fn(r)
			h.Fulfill()
		})
		return fut
	}
	me := r.Me()
	r.ep.Send(target, gasnet.Msg{
		Handler: hRPCExec,
		Fn: func(tep *gasnet.Endpoint) {
			v := fn(rankOf(tep))
			tep.Send(me, gasnet.Msg{
				Handler: hRPCExec,
				Fn: func(*gasnet.Endpoint) {
					*vp = v
					h.Fulfill()
				},
			})
		},
	})
	return fut
}

// RPCFireAndForget ships fn for execution on the target rank with no
// completion notification (the analogue of upcxx::rpc_ff). It is the
// cheapest RPC form: no acknowledgment message is generated.
func RPCFireAndForget(r *Rank, target int, fn func(*Rank)) {
	if target == r.Me() {
		r.eng.EnqueueLPC(func() { fn(r) })
		return
	}
	r.ep.Send(target, gasnet.Msg{
		Handler: hRPCExec,
		Fn:      func(tep *gasnet.Endpoint) { fn(rankOf(tep)) },
	})
}
