package gupcxx_test

import (
	"sync/atomic"
	"testing"

	"gupcxx"
)

func TestRPCVoidAndValue(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 3, Conduit: conduit, SegmentBytes: 1 << 12}
		var hits atomic.Int64
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			target := (r.Me() + 1) % r.N()
			gupcxx.RPC(r, target, func(tr *gupcxx.Rank) {
				hits.Add(int64(tr.Me()) + 1)
			}).Wait()
			v := gupcxx.RPCCall(r, target, func(tr *gupcxx.Rank) string {
				return "from " + string(rune('0'+tr.Me()))
			}).Wait()
			want := "from " + string(rune('0'+target))
			if v != want {
				t.Errorf("%v: rpc value %q, want %q", conduit, v, want)
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		if hits.Load() != 1+2+3 {
			t.Errorf("%v: hits = %d", conduit, hits.Load())
		}
	}
}

func TestSelfRPCRunsAtProgressNotInline(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12}, func(r *gupcxx.Rank) {
		ran := false
		f := gupcxx.RPC(r, 0, func(*gupcxx.Rank) { ran = true })
		if ran {
			t.Error("self-RPC ran inline at initiation")
		}
		f.Wait()
		if !ran {
			t.Error("self-RPC never ran")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRPCFireAndForget(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		flag := gupcxx.New[int64](r)
		*flag.Local(r) = 0
		flags := gupcxx.ExchangePtr(r, flag)
		r.Barrier()
		if r.Me() == 0 {
			gupcxx.RPCFireAndForget(r, 1, func(tr *gupcxx.Rank) {
				// Store through the runtime (atomic word write) since
				// rank 0 concurrently polls the flag with Rget.
				gupcxx.Rput(tr, 1, flags[1]).Wait()
			})
			// No completion to wait on; poll the flag remotely.
			for gupcxx.Rget(r, flags[1]).Wait() != 1 {
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRPCInitiatesCommunication: an RPC body may itself perform RMA on
// the target rank (nested progress restrictions permitting).
func TestRPCInitiatesCommunication(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		cell := gupcxx.New[int64](r)
		*cell.Local(r) = 0
		cells := gupcxx.ExchangePtr(r, cell)
		r.Barrier()
		if r.Me() == 0 {
			// Ask rank 1 to rput into rank 0's cell (local for rank 1?
			// no — cross-rank but co-located, so synchronous there).
			gupcxx.RPC(r, 1, func(tr *gupcxx.Rank) {
				gupcxx.Rput(tr, 55, cells[0]).Wait()
			}).Wait()
			if *cells[0].Local(r) != 55 {
				t.Errorf("cell = %d", *cells[0].Local(r))
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRPCChain: an RPC whose body fires an RPC back to the initiator.
func TestRPCChain(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		got := gupcxx.New[int64](r)
		*got.Local(r) = 0
		gots := gupcxx.ExchangePtr(r, got)
		r.Barrier()
		if r.Me() == 0 {
			gupcxx.RPC(r, 1, func(r1 *gupcxx.Rank) {
				gupcxx.RPCFireAndForget(r1, 0, func(r0 *gupcxx.Rank) {
					*gots[0].Local(r0) = 77
				})
			}).Wait()
			// The return RPC lands during our progress; poll for it.
			for *gots[0].Local(r) != 77 {
				r.Progress()
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
