package gupcxx_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gupcxx"
)

// TestWireRPCHandlerPanicContained: a panicking registered handler must
// not crash the target rank — the panic is recovered, serialized into the
// reply frame, and resolves the initiator's future as a *RemoteError; the
// target keeps serving afterwards.
func TestWireRPCHandlerPanicContained(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	boom := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		panic("kaboom: " + string(args))
	})
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	err = w.Run(func(r *gupcxx.Rank) {
		target := (r.Me() + 1) % r.N()
		_, werr := gupcxx.RPCWire(r, target, boom, []byte("x")).WaitErr()
		var re *gupcxx.RemoteError
		if !errors.As(werr, &re) {
			t.Errorf("handler panic resolved as %v, want *RemoteError", werr)
		} else if re.Rank != target || !strings.Contains(re.Msg, "kaboom: x") {
			t.Errorf("RemoteError = %+v", re)
		}
		// The target survived its handler's panic.
		got, werr2 := gupcxx.RPCWire(r, target, echo, []byte("alive")).WaitErr()
		if werr2 != nil || string(got) != "alive" {
			t.Errorf("target dead after contained panic: %q, %v", got, werr2)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Domain().Stats().HandlerPanics; got != 2 {
		t.Errorf("HandlerPanics = %d, want 2", got)
	}
}

// TestClosureRPCPanicContained: the closure RPC forms (remote, returning,
// self) contain panics the same way.
func TestClosureRPCPanicContained(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			target := (r.Me() + 1) % r.N()
			werr := gupcxx.RPC(r, target, func(*gupcxx.Rank) { panic("rpc boom") }).WaitErr()
			var re *gupcxx.RemoteError
			if !errors.As(werr, &re) || re.Rank != target {
				t.Errorf("RPC panic resolved as %v", werr)
			}

			v, cerr := gupcxx.RPCCall(r, target, func(*gupcxx.Rank) int { panic("call boom") }).WaitErr()
			if v != 0 || !errors.As(cerr, &re) || !strings.Contains(re.Msg, "call boom") {
				t.Errorf("RPCCall panic resolved as %v, %v", v, cerr)
			}

			serr := gupcxx.RPC(r, r.Me(), func(*gupcxx.Rank) { panic("self boom") }).WaitErr()
			if !errors.As(serr, &re) || re.Rank != r.Me() {
				t.Errorf("self-RPC panic resolved as %v", serr)
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpDeadlineOnSlowWire: an OpDeadline far below the wire latency must
// resolve the future with ErrDeadlineExceeded long before the
// acknowledgment arrives, and a when_all conjunction over a failed and a
// pending future must short-circuit on the failure.
func TestOpDeadlineOnSlowWire(t *testing.T) {
	defer leakCheck(t)()
	lat := 200 * time.Millisecond
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, SimLatency: lat, SegmentBytes: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		ptr := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, ptr)
		dst := ptrs[(r.Me()+1)%r.N()]

		start := time.Now()
		res := gupcxx.Rput(r, int64(7), dst,
			gupcxx.OpFuture(), gupcxx.OpDeadline(5*time.Millisecond))
		if werr := res.Op.WaitErr(); !errors.Is(werr, gupcxx.ErrDeadlineExceeded) {
			t.Errorf("Err = %v, want ErrDeadlineExceeded", werr)
		}
		if waited := time.Since(start); waited > lat {
			t.Errorf("deadline took %v to fire, longer than the %v wire latency", waited, lat)
		}

		// when_all error short-circuit: the conjunction resolves on the
		// deadline failure while the healthy put is still in flight.
		slow := gupcxx.Rput(r, int64(8), dst)
		doomed := gupcxx.Rput(r, int64(9), dst,
			gupcxx.OpFuture(), gupcxx.OpDeadline(5*time.Millisecond))
		conj := r.WhenAll(slow.Op, doomed.Op)
		if werr := conj.WaitErr(); !errors.Is(werr, gupcxx.ErrDeadlineExceeded) {
			t.Errorf("conjunction Err = %v", werr)
		}
		if slow.Op.Ready() {
			t.Log("slow put already acked; short-circuit not observable this run")
		}
		slow.Op.Wait() // drain the healthy put before tearing down
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPeerKilledMidRun is the acceptance scenario: a healthy exchange,
// then one rank's outbound path dies (100% drop — the process-kill
// analogue). Operations targeting it must resolve with
// ErrPeerUnreachable within the detection budget, with zero process
// panics.
func TestPeerKilledMidRun(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
		Fault:          &gupcxx.FaultConfig{}, // shield from any GUPCXX_UDP_FAULT preset
		RelMaxAttempts: 4,
		HeartbeatEvery: time.Millisecond,
		SuspectAfter:   10 * time.Millisecond,
		DownAfter:      40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	var victimMayExit atomic.Bool
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 1 {
			// The victim serves until the healthy phase is over, then its
			// sends stop reaching anyone (its goroutine idles; the "kill"
			// is the fault shim, armed by rank 0 below).
			for !victimMayExit.Load() {
				r.Progress()
			}
			return
		}
		got, werr := gupcxx.RPCWire(r, 1, echo, []byte("hi")).WaitErr()
		if werr != nil || string(got) != "hi" {
			t.Errorf("healthy phase failed: %q, %v", got, werr)
		}
		if err := w.SetFault(1, gupcxx.FaultConfig{Drop: 1.0}); err != nil {
			t.Error(err)
		}
		victimMayExit.Store(true)

		// Calls must start failing within the detection budget.
		start := time.Now()
		for {
			_, werr := gupcxx.RPCWire(r, 1, echo, []byte("ping")).WaitErr()
			if werr != nil {
				if !errors.Is(werr, gupcxx.ErrPeerUnreachable) {
					t.Errorf("kill resolved as %v, want ErrPeerUnreachable", werr)
				}
				break
			}
			if time.Since(start) > 20*time.Second {
				t.Error("operations to the killed peer never failed")
				return
			}
		}
		if !r.PeerDown(1) {
			t.Error("victim not marked down")
		}
		if down := r.DownPeers(); len(down) != 1 || down[0] != 1 {
			t.Errorf("DownPeers = %v", down)
		}
		// Everything initiated from here fails immediately.
		if _, werr := gupcxx.RPCWire(r, 1, echo, nil).WaitErr(); !errors.Is(werr, gupcxx.ErrPeerUnreachable) {
			t.Errorf("post-down call resolved as %v", werr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Domain().Stats()
	if s.PeersDown == 0 {
		t.Error("PeersDown = 0")
	}
	if s.HeartbeatsSent == 0 {
		t.Error("HeartbeatsSent = 0")
	}
}

// TestBarrierAbortsOnPeerDeath: a collective must not hang on a dead
// participant — the waiting rank unwinds and Run surfaces an error
// wrapping ErrPeerUnreachable.
func TestBarrierAbortsOnPeerDeath(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
		Fault:          &gupcxx.FaultConfig{},
		HeartbeatEvery: time.Millisecond,
		SuspectAfter:   10 * time.Millisecond,
		DownAfter:      40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 1 {
			// Die without entering the barrier.
			if err := w.SetFault(1, gupcxx.FaultConfig{Drop: 1.0}); err != nil {
				t.Error(err)
			}
			return
		}
		r.Barrier() // must abort, not hang
		t.Error("barrier returned despite a dead participant")
	})
	if err == nil {
		t.Fatal("Run returned nil; want a collective-abort error")
	}
	if !errors.Is(err, gupcxx.ErrPeerUnreachable) {
		t.Errorf("Run error %v does not wrap ErrPeerUnreachable", err)
	}
	if !strings.Contains(err.Error(), "collective aborted") {
		t.Errorf("Run error %v lacks the collective-abort context", err)
	}
}
