package gupcxx

import (
	"math"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// AtomicDomainF64 provides remote atomic operations over float64 objects,
// the analogue of upcxx::atomic_domain<double>. The substrate executes
// floating-point AMOs as compare-and-swap loops on the word's bit pattern
// at the owning node (one traversal per operation, like a GASNet-EX
// software AMO target), so the same completion rules apply as for the
// integer domains: co-located targets complete synchronously and are
// eager-eligible; cross-node targets go through the AM protocol.
type AtomicDomainF64 struct {
	r *Rank
}

// NewAtomicDomainF64 constructs rank r's handle on the float64 atomic
// domain.
func NewAtomicDomainF64(r *Rank) *AtomicDomainF64 {
	return &AtomicDomainF64{r: r}
}

// applyF runs a value-less float atomic op through the unified pipeline.
func (ad *AtomicDomainF64) applyF(p GlobalPtr[float64], op gasnet.AmoOp, v float64, cxs []Cx) Result {
	r := ad.r
	cxs = cxsOrDefault(cxs)
	bits := math.Float64bits(v)
	if r.localTo(p.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpAtomic,
			Local: true,
			Move: func() {
				gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, bits, 0)
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpAtomic,
		Peer:  int(p.rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, bits, 0, func(_ uint64, err error) { done(err) })
		},
	}, cxs)
}

// fetchF runs a fetching float atomic op, producing the old value.
func (ad *AtomicDomainF64) fetchF(p GlobalPtr[float64], op gasnet.AmoOp, v float64, mode []Mode) FutureV[float64] {
	r := ad.r
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	bits := math.Float64bits(v)
	return core.InitiateV(r.eng, core.OpDescV[float64]{
		Kind:  core.OpAtomic,
		Local: r.localTo(p.rank),
		Mode:  m,
		Peer:  int(p.rank),
		Admit: true,
		MoveV: func() float64 {
			return math.Float64frombits(gasnet.ApplyAmo(r.w.dom.Segment(int(p.rank)), p.off, op, bits, 0))
		},
		Inject: func(slot *float64, done func(error)) {
			r.ep.AmoRemote(int(p.rank), p.off, op, bits, 0, func(old uint64, err error) {
				if err == nil {
					*slot = math.Float64frombits(old)
				}
				done(err)
			})
		},
	})
}

// Load atomically reads the value at p.
func (ad *AtomicDomainF64) Load(p GlobalPtr[float64], mode ...Mode) FutureV[float64] {
	return ad.fetchF(p, gasnet.AmoLoad, 0, mode)
}

// Store atomically writes v to p (value-less completion).
func (ad *AtomicDomainF64) Store(p GlobalPtr[float64], v float64, cxs ...Cx) Result {
	return ad.applyF(p, gasnet.AmoStore, v, cxs)
}

// Add atomically adds v to the value at p — non-fetching.
func (ad *AtomicDomainF64) Add(p GlobalPtr[float64], v float64, cxs ...Cx) Result {
	return ad.applyF(p, gasnet.AmoFAdd, v, cxs)
}

// Min atomically stores min(current, v) at p — non-fetching.
func (ad *AtomicDomainF64) Min(p GlobalPtr[float64], v float64, cxs ...Cx) Result {
	return ad.applyF(p, gasnet.AmoFMin, v, cxs)
}

// Max atomically stores max(current, v) at p — non-fetching.
func (ad *AtomicDomainF64) Max(p GlobalPtr[float64], v float64, cxs ...Cx) Result {
	return ad.applyF(p, gasnet.AmoFMax, v, cxs)
}

// FetchAdd atomically adds v, producing the old value.
func (ad *AtomicDomainF64) FetchAdd(p GlobalPtr[float64], v float64, mode ...Mode) FutureV[float64] {
	return ad.fetchF(p, gasnet.AmoFAdd, v, mode)
}

// FetchMin atomically stores min(current, v), producing the old value.
func (ad *AtomicDomainF64) FetchMin(p GlobalPtr[float64], v float64, mode ...Mode) FutureV[float64] {
	return ad.fetchF(p, gasnet.AmoFMin, v, mode)
}

// FetchMax atomically stores max(current, v), producing the old value.
func (ad *AtomicDomainF64) FetchMax(p GlobalPtr[float64], v float64, mode ...Mode) FutureV[float64] {
	return ad.fetchF(p, gasnet.AmoFMax, v, mode)
}
