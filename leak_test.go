package gupcxx_test

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and returns a closure that
// asserts the count settled back to (at most) the snapshot. Call it first
// thing and defer the closure, so it runs after every other deferred
// teardown (World.Close included): a conduit that leaves its ticker,
// socket readers, or a window-blocked sender behind fails here instead of
// silently accumulating goroutines across the suite. The check retries
// with GC pauses because exiting goroutines unwind asynchronously.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			runtime.GC()
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after teardown\n%s", before, after, buf[:n])
	}
}
