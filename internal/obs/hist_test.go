package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1023, 10}, {1024, 11},
		{-5, 0}, // clamped
		{int64(time.Hour), 39},
	}
	for _, c := range cases {
		h.Observe(c.ns)
	}
	counts := map[int]int64{}
	for _, c := range cases {
		counts[c.bucket]++
	}
	for b, want := range counts {
		if got := h.Bucket(b); got != want {
			t.Errorf("bucket %d = %d, want %d", b, got, want)
		}
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
	var wantSum int64
	for _, c := range cases {
		if c.ns > 0 {
			wantSum += c.ns
		}
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %d, want %d", got, wantSum)
	}
	if got := BucketUpperNanos(10); got != 1024 {
		t.Errorf("BucketUpperNanos(10) = %d, want 1024", got)
	}
}

func TestHistObserveAllocFree(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Observe allocates %.1f/op, want 0", n)
	}
}

func TestHistVec(t *testing.T) {
	v := NewHistVec(3, 4)
	v.Observe(1, 2, 100)
	v.Observe(1, 2, 200)
	v.Observe(2, 0, 5)
	// Out-of-range coordinates are silent no-ops.
	v.Observe(-1, 0, 1)
	v.Observe(3, 0, 1)
	v.Observe(0, 4, 1)

	if h := v.At(1, 2); h == nil || h.Count() != 2 || h.Sum() != 300 {
		t.Errorf("At(1,2) = %+v", h)
	}
	if h := v.At(2, 0); h == nil || h.Count() != 1 {
		t.Errorf("At(2,0) count wrong")
	}
	if h := v.At(0, 0); h == nil || h.Count() != 0 {
		t.Errorf("untouched cell not zero")
	}
	if v.At(3, 0) != nil || v.At(0, 4) != nil || v.At(-1, -1) != nil {
		t.Error("out-of-range At returned a cell")
	}
}

func TestPromWriterOutput(t *testing.T) {
	var sb strings.Builder
	w := NewPromWriter(&sb)
	w.Meta("gupcxx_ops_total", "ops by family and phase", "counter")
	w.Int("gupcxx_ops_total", `family="rma",phase="initiated"`, 7)
	w.Meta("gupcxx_ops_total", "dup meta must not repeat", "counter")
	w.Int("gupcxx_ops_total", `family="rpc",phase="initiated"`, 3)
	w.Meta("gupcxx_up", "", "gauge")
	w.Sample("gupcxx_up", "", 1)

	var h Hist
	h.Observe(100) // bucket 7: (64,128]
	h.Observe(100)
	w.Meta("gupcxx_lat_seconds", "latency", "histogram")
	w.Histogram("gupcxx_lat_seconds", `family="rma"`, &h)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if strings.Count(out, "# TYPE gupcxx_ops_total counter") != 1 {
		t.Errorf("TYPE line not emitted exactly once:\n%s", out)
	}
	for _, want := range []string{
		`gupcxx_ops_total{family="rma",phase="initiated"} 7`,
		`gupcxx_ops_total{family="rpc",phase="initiated"} 3`,
		"gupcxx_up 1",
		`gupcxx_lat_seconds_bucket{family="rma",le="+Inf"} 2`,
		`gupcxx_lat_seconds_count{family="rma"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the le boundary at 128ns already counts both.
	if !strings.Contains(out, `le="1.28e-07"} 2`) {
		t.Errorf("cumulative bucket at 128ns missing:\n%s", out)
	}
	// Every line is newline-terminated and no label block is empty-braced.
	if strings.Contains(out, "{}") {
		t.Errorf("empty label braces in:\n%s", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("output not newline-terminated")
	}
}
