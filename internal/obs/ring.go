package obs

import "sync/atomic"

// evRing is a bounded MPMC ring of events after Vyukov's array queue —
// the same sequence-stamped-cell design as the substrate's MPSC inbox
// ring, extended with a CAS on the consumer cursor so that *producers*
// may also dequeue: the bus implements drop-oldest by having a publisher
// that finds the ring full steal the oldest entry to make room. Both
// sides are lock-free and never spin unboundedly (each try* call makes
// one reservation attempt per CAS win/loss and returns on full/empty).
type evRing struct {
	mask  uint64
	_     [56]byte // keep the hot cursors on separate cache lines
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
	_     [56]byte
	cells []evCell
}

type evCell struct {
	seq atomic.Uint64
	ev  Event
}

// newEvRing sizes the ring to the next power of two ≥ depth (minimum 2).
func newEvRing(depth int) *evRing {
	capa := 2
	for capa < depth {
		capa <<= 1
	}
	r := &evRing{mask: uint64(capa - 1), cells: make([]evCell, capa)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush reserves the next slot and publishes ev into it. It reports
// false when the ring is full; the caller decides the shed policy.
func (r *evRing) tryPush(ev Event) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.ev = ev
				cell.seq.Store(pos + 1) // release: consumers may read ev
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			return false // a full lap behind: ring is full
		default:
			pos = r.enq.Load() // another producer advanced past us
		}
	}
}

// tryPop claims the oldest published entry. It reports false when the
// ring is empty.
func (r *evRing) tryPop() (Event, bool) {
	pos := r.deq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				ev := cell.ev
				cell.seq.Store(pos + r.mask + 1) // release slot for the next lap
				return ev, true
			}
			pos = r.deq.Load()
		case diff < 0:
			return Event{}, false // not yet published: ring is empty
		default:
			pos = r.deq.Load() // another consumer advanced past us
		}
	}
}
