package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultDepth is the per-subscription ring depth a World-owned bus uses.
// At the substrate's transition-edge event rates (events fire on state
// *changes*, never per frame) this absorbs multi-second subscriber stalls
// before drop-oldest engages.
const DefaultDepth = 1024

// dropRetries bounds how many shed-and-retry rounds a publisher attempts
// against a full ring before abandoning the event. The bound is what
// makes Publish hard-non-blocking: a publisher racing a stalled consumer
// and other publishers does a handful of CAS attempts, then counts a
// drop and returns.
const dropRetries = 4

// Bus is a bounded, non-blocking, multi-subscriber event bus. Each
// subscriber owns an independent Vyukov ring, so a stalled subscriber
// sheds its own oldest events (counted in Dropped) without slowing
// publishers or other subscribers. With no subscriber attached, Publish
// is one atomic increment plus one atomic load and no allocation — cheap
// enough to leave wired into the progress path unconditionally.
type Bus struct {
	subs      atomic.Pointer[[]*Subscription]
	published atomic.Int64
	dropped   atomic.Int64
	depth     int
	mu        sync.Mutex // serializes subscriber-list copy-on-write
}

// NewBus creates a bus whose future subscriptions buffer depth events
// each (rounded up to a power of two; depth ≤ 0 selects DefaultDepth).
func NewBus(depth int) *Bus {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Bus{depth: depth}
}

// Publish offers ev to every current subscriber. It never blocks and
// never allocates: full rings shed their oldest entry (or, past the
// retry bound, the new event) and count the shed in Dropped. A zero
// ev.Time is stamped here, after the no-subscriber early-out, so idle
// buses never read the clock.
func (b *Bus) Publish(ev Event) {
	b.published.Add(1)
	subsp := b.subs.Load()
	if subsp == nil {
		return
	}
	subs := *subsp
	if len(subs) == 0 {
		return
	}
	if ev.Time == 0 {
		ev.Time = time.Now().UnixNano()
	}
	for _, s := range subs {
		s.offer(ev, b)
	}
}

// Subscribe attaches a new subscription with its own ring. Subscribers
// drain with Poll and must Close when done to stop receiving.
func (b *Bus) Subscribe() *Subscription {
	s := &Subscription{bus: b, ring: newEvRing(b.depth)}
	b.mu.Lock()
	defer b.mu.Unlock()
	var next []*Subscription
	if old := b.subs.Load(); old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
	return s
}

// Published reports the total Publish calls, with or without a live
// subscriber (shed events are included — they were published, then
// dropped).
func (b *Bus) Published() int64 { return b.published.Load() }

// Dropped reports the total events shed across all subscriptions.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// Subscribers reports the current subscription count.
func (b *Bus) Subscribers() int {
	if sp := b.subs.Load(); sp != nil {
		return len(*sp)
	}
	return 0
}

// Subscription is one subscriber's view of a Bus: a private bounded ring
// plus a shed counter. Poll may be called from any goroutine (the ring
// is MPMC), though one draining goroutine is the expected shape.
type Subscription struct {
	bus     *Bus
	ring    *evRing
	dropped atomic.Int64
	closed  atomic.Bool
}

// offer pushes ev, shedding the oldest entry on a full ring. Bounded:
// after dropRetries shed-and-retry rounds the *new* event is dropped
// instead, so a publisher never spins against a pathological consumer.
func (s *Subscription) offer(ev Event, b *Bus) {
	for range dropRetries {
		if s.ring.tryPush(ev) {
			return
		}
		if _, ok := s.ring.tryPop(); ok {
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	s.dropped.Add(1)
	b.dropped.Add(1)
}

// Poll appends every currently-queued event to dst and returns the
// extended slice. One call drains at most one ring lap, so a concurrent
// publisher cannot pin the poller in the loop.
func (s *Subscription) Poll(dst []Event) []Event {
	for range len(s.ring.cells) {
		ev, ok := s.ring.tryPop()
		if !ok {
			break
		}
		dst = append(dst, ev)
	}
	return dst
}

// Dropped reports how many events this subscription shed.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription from the bus. Idempotent. Events
// already queued remain drainable via Poll.
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load()
	if old == nil {
		return
	}
	next := make([]*Subscription, 0, len(*old))
	for _, o := range *old {
		if o != s {
			next = append(next, o)
		}
	}
	b.subs.Store(&next)
}
