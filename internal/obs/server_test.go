package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	h := Handler(
		func(w io.Writer) {
			p := NewPromWriter(w)
			p.Meta("gupcxx_up", "", "gauge")
			p.Sample("gupcxx_up", "", 1)
		},
		func() any { return map[string]any{"ranks": 4, "conduit": "udp"} },
	)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "gupcxx_up 1") {
		t.Errorf("metrics body missing sample:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/debug/gupcxx")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("debug Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("debug snapshot is not JSON: %v", err)
	}
	if snap["conduit"] != "udp" {
		t.Errorf("debug snapshot = %v", snap)
	}
}

func TestServerLifecycle(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(w io.Writer) {
		io.WriteString(w, "gupcxx_up 1\n")
	}, func() any { return nil })
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape against live server: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "gupcxx_up 1") {
		t.Errorf("scrape body = %q", body)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("scrape succeeded after Close")
	}

	// A bad address fails construction, not a later scrape.
	if _, err := NewServer("256.0.0.1:bogus", nil, nil); err == nil {
		t.Error("NewServer accepted an unbindable address")
	}
}

func TestSamplerRates(t *testing.T) {
	var v atomic.Int64
	s := NewSampler(10*time.Millisecond, func() []Counter {
		return []Counter{{Name: "ops", Value: v.Load()}}
	})
	defer s.Close()
	if s.Rates() != nil {
		t.Error("rates available before the second sample")
	}
	// Grow the counter and wait for a delta to land.
	deadline := time.Now().Add(5 * time.Second)
	var rates []Rate
	for time.Now().Before(deadline) {
		v.Add(100)
		rates = s.Rates()
		if len(rates) == 1 && rates[0].PerSec > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(rates) != 1 || rates[0].Name != "ops" || rates[0].PerSec <= 0 {
		t.Fatalf("rates = %+v, want positive ops rate", rates)
	}
	s.Close()
	s.Close() // idempotent
}
