package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(8)
	if b.Subscribers() != 0 {
		t.Fatalf("fresh bus has %d subscribers", b.Subscribers())
	}
	// Publishing with nobody listening is counted but goes nowhere.
	b.Publish(Event{Kind: EvPeerSuspect})
	if got := b.Published(); got != 1 {
		t.Errorf("Published = %d, want 1", got)
	}

	s1 := b.Subscribe()
	s2 := b.Subscribe()
	defer s1.Close()
	defer s2.Close()
	if b.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want 2", b.Subscribers())
	}

	b.Publish(Event{Kind: EvPeerDown, Rank: 3, Peer: 7, A: 42})
	for _, s := range []*Subscription{s1, s2} {
		evs := s.Poll(nil)
		if len(evs) != 1 {
			t.Fatalf("subscriber drained %d events, want 1", len(evs))
		}
		ev := evs[0]
		if ev.Kind != EvPeerDown || ev.Rank != 3 || ev.Peer != 7 || ev.A != 42 {
			t.Errorf("event round-trip mangled: %+v", ev)
		}
		if ev.Time == 0 {
			t.Error("Publish did not stamp a zero Time")
		}
	}
	// A second poll finds nothing.
	if evs := s1.Poll(nil); len(evs) != 0 {
		t.Errorf("re-poll drained %d events, want 0", len(evs))
	}

	s2.Close()
	if b.Subscribers() != 1 {
		t.Errorf("Subscribers after close = %d, want 1", b.Subscribers())
	}
	s2.Close() // idempotent
	if b.Subscribers() != 1 {
		t.Errorf("double close changed subscriber count")
	}
}

// A subscriber that never drains loses the OLDEST events — the ring
// keeps the newest window — and the loss is counted on both the
// subscription and the bus, while Publish itself never blocks.
func TestBusDropOldest(t *testing.T) {
	const depth = 8
	b := NewBus(depth)
	s := b.Subscribe()
	defer s.Close()

	const n = 100
	for i := 0; i < n; i++ {
		b.Publish(Event{Kind: EvBackpressureOn, A: int64(i)})
	}
	if got := b.Published(); got != n {
		t.Errorf("Published = %d, want %d", got, n)
	}
	if s.Dropped() == 0 || b.Dropped() == 0 {
		t.Fatalf("no drops counted: sub=%d bus=%d", s.Dropped(), b.Dropped())
	}
	evs := s.Poll(nil)
	if len(evs) == 0 || len(evs) > depth {
		t.Fatalf("drained %d events from a depth-%d ring", len(evs), depth)
	}
	if int64(len(evs))+s.Dropped() != n {
		t.Errorf("drained %d + dropped %d != published %d", len(evs), s.Dropped(), n)
	}
	// Survivors are the newest window, in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].A <= evs[i-1].A {
			t.Fatalf("events out of order: %d then %d", evs[i-1].A, evs[i].A)
		}
	}
	if evs[len(evs)-1].A != n-1 {
		t.Errorf("newest surviving event is %d, want %d", evs[len(evs)-1].A, n-1)
	}
}

// One stalled subscriber must not slow the publisher or starve a healthy
// one: drops land on the stalled ring only, and concurrent publishers
// stay race-free.
func TestBusStalledSubscriber(t *testing.T) {
	b := NewBus(16)
	stalled := b.Subscribe()
	defer stalled.Close()
	healthy := b.Subscribe()

	var drained int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // healthy consumer keeps its ring near-empty
		defer wg.Done()
		var buf []Event
		for {
			buf = healthy.Poll(buf[:0])
			drained += int64(len(buf))
			select {
			case <-stop:
				return
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const producers, perProducer = 4, 2000
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				b.Publish(Event{Kind: EvWindowShrink, Rank: int32(p), A: int64(i)})
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	drained += int64(len(healthy.Poll(nil)))
	healthy.Close()

	const total = producers * perProducer
	if got := b.Published(); got != total {
		t.Errorf("Published = %d, want %d", got, total)
	}
	if stalled.Dropped() == 0 {
		t.Error("stalled subscriber dropped nothing despite never draining")
	}
	if leftover := int64(len(stalled.Poll(nil))); drained+leftover+stalled.Dropped() < total {
		// healthy's accounting: everything published is either drained or
		// still rung; the stalled sub accounts for the rest via drops.
		t.Errorf("event accounting leak: healthy drained %d, stalled leftover %d + dropped %d, published %d",
			drained, leftover, stalled.Dropped(), total)
	}
}

// Publishing with no subscriber attached must not allocate: the progress
// goroutine calls this on every emission point in an unobserved job.
func TestBusPublishNoSubscriberAllocFree(t *testing.T) {
	b := NewBus(0)
	ev := Event{Kind: EvDeadlineExpired, Time: 1}
	if n := testing.AllocsPerRun(1000, func() { b.Publish(ev) }); n != 0 {
		t.Errorf("Publish with no subscribers allocates %.1f/op, want 0", n)
	}
	s := b.Subscribe()
	defer s.Close()
	if n := testing.AllocsPerRun(1000, func() { b.Publish(ev) }); n != 0 {
		t.Errorf("Publish with a subscriber allocates %.1f/op, want 0", n)
	}
}

func TestEventKindStringsComplete(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(0); k < NumEventKinds; k++ {
		s := k.String()
		if s == "" || s == "event(?)" {
			t.Errorf("EventKind(%d) has no label: %q", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("EventKind(%d) and EventKind(%d) share label %q", k, prev, s)
		}
		seen[s] = k
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newEvRing(4)
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 4; i++ {
			if !r.tryPush(Event{A: int64(lap*4 + i)}) {
				t.Fatalf("push %d/%d failed on empty slot", lap, i)
			}
		}
		if r.tryPush(Event{}) {
			t.Fatal("push into a full ring succeeded")
		}
		for i := 0; i < 4; i++ {
			ev, ok := r.tryPop()
			if !ok || ev.A != int64(lap*4+i) {
				t.Fatalf("pop %d/%d = (%v, %v)", lap, i, ev.A, ok)
			}
		}
		if _, ok := r.tryPop(); ok {
			t.Fatal("pop from an empty ring succeeded")
		}
	}
}
