package obs

import (
	"io"
	"strconv"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4):
// one # HELP / # TYPE preamble per metric name, then samples. It keeps
// no registry — the caller drives the full scrape each time, which fits
// a runtime whose counters already live elsewhere.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter wraps w. Write errors are latched and surfaced by Err;
// subsequent calls become no-ops so scrape code needs no per-line checks.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err reports the first underlying write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) raw(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// Meta writes the HELP/TYPE preamble for name once; repeated calls for
// the same name are ignored so loops can declare lazily.
func (p *PromWriter) Meta(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	p.raw("# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n")
}

// Sample writes one sample line: name{labels} value. labels is the
// preformatted inner label list (`family="rma",phase="initiated"`) or ""
// for an unlabelled metric.
func (p *PromWriter) Sample(name, labels string, value float64) {
	p.raw(name)
	if labels != "" {
		p.raw("{" + labels + "}")
	}
	p.raw(" " + strconv.FormatFloat(value, 'g', -1, 64) + "\n")
}

// Int writes one integer-valued sample line.
func (p *PromWriter) Int(name, labels string, value int64) {
	p.raw(name)
	if labels != "" {
		p.raw("{" + labels + "}")
	}
	p.raw(" " + strconv.FormatInt(value, 10) + "\n")
}

// Histogram writes h in Prometheus histogram convention under name:
// cumulative <name>_bucket{...,le="<seconds>"} lines ending at le="+Inf",
// then <name>_sum (seconds) and <name>_count. The log₂-nanosecond
// buckets surface as power-of-two second boundaries.
func (p *PromWriter) Histogram(name, labels string, h *Hist) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i := 0; i < HistBuckets-1; i++ {
		cum += h.Bucket(i)
		le := strconv.FormatFloat(float64(BucketUpperNanos(i))/1e9, 'g', -1, 64)
		p.Int(name+"_bucket", labels+sep+`le="`+le+`"`, cum)
	}
	cum += h.Bucket(HistBuckets - 1)
	p.Int(name+"_bucket", labels+sep+`le="+Inf"`, cum)
	p.Sample(name+"_sum", labels, float64(h.Sum())/1e9)
	p.Int(name+"_count", labels, h.Count())
}
