// Package obs is the runtime's operations plane: a bounded non-blocking
// event bus for substrate health transitions, per-family latency
// histograms fed by the op pipeline's phase hook, a delta-sampling rate
// ticker, and the HTTP export surface (/metrics Prometheus text,
// /debug/gupcxx JSON snapshot).
//
// The package deliberately depends on nothing but the standard library:
// internal/gasnet publishes events into a Bus it is handed, and the root
// runtime package composes the exposition from the other layers'
// counters. Nothing here may block or allocate on a progress goroutine —
// publishing with no subscriber attached is one atomic load, and
// publishing to a full subscription sheds the oldest event instead of
// waiting (Dropped counts the shed).
package obs

// EventKind identifies one class of substrate health event.
type EventKind uint8

const (
	// EvPeerSuspect: the observing rank's liveness detector moved a peer
	// Alive→Suspect (silence past SuspectAfter, or sustained receive-side
	// shedding).
	EvPeerSuspect EventKind = iota
	// EvPeerDown: a peer was declared Down — silence past DownAfter or an
	// exhausted retransmission budget. Down holds until the peer's next
	// incarnation rejoins (EvPeerReadmitted); within one incarnation it is
	// sticky.
	EvPeerDown
	// EvPeerRecovered: a Suspect peer was heard from again and returned
	// to Alive.
	EvPeerRecovered
	// EvBackpressureOn: admission toward Peer transitioned idle→blocked
	// (the send window filled). A holds the in-flight count, B the window.
	EvBackpressureOn
	// EvBackpressureOff: admission toward Peer obtained credit again
	// after a blocked spell. A holds the in-flight count, B the window.
	EvBackpressureOff
	// EvWindowShrink: an RTO expiry halved the congestion window toward
	// Peer. A holds the old window, B the new one.
	EvWindowShrink
	// EvWindowGrow: the congestion window toward Peer recovered all the
	// way back to its configured ceiling (emitted on the transition, not
	// per additive increase, to bound event volume). A holds the ceiling.
	EvWindowGrow
	// EvRetransmitExhausted: a datagram toward Peer spent its
	// retransmission budget, declaring the peer down. A holds the
	// sequence number that exhausted.
	EvRetransmitExhausted
	// EvDeadlineExpired: a per-op deadline fired before the substrate
	// acknowledged. Peer is -1 (the op table does not thread the target
	// here); A holds the operation family (core.OpKind).
	EvDeadlineExpired
	// EvInMemFallback: a UDP-conduit world delivered a closure-carrying
	// message through the in-memory handoff because the wire cannot
	// encode it — the run is not fully exercising the wire it claims to.
	// Emitted once per Domain (the first fallback; Stats.InMemFallbacks
	// counts them all). A holds the handler id of the first fallback.
	EvInMemFallback
	// EvPeerReadmitted: a Down (or freshly restarted) peer rejoined under
	// a new incarnation and was readmitted with reset reliability state.
	// A holds the new incarnation, B the previously recorded one (0 when
	// the peer had never been heard).
	EvPeerReadmitted
	// EvStaleIncarnation: a frame stamped with a dead incarnation of Peer
	// was rejected (edge-triggered per stale episode;
	// Stats.StaleIncarnationDrops counts every drop). A holds the stale
	// incarnation on the frame, B the currently recorded one.
	EvStaleIncarnation
	// EvPartitionSuspected: a peer was declared Down through SILENCE
	// (heartbeat timeout or retransmit exhaustion, as opposed to a goodbye
	// frame) with healing enabled — indistinguishable from a network
	// partition, so the detector begins probing the pair for recovery.
	// Emitted alongside the EvPeerDown of the same transition.
	EvPartitionSuspected
	// EvPeerHealed: a silence-declared Down peer answered a partition
	// probe under the SAME incarnation and returned to Alive with its
	// parked reliability state re-armed — recovery without readmission.
	// A holds the (unchanged) incarnation.
	EvPeerHealed

	// NumEventKinds bounds the EventKind space.
	NumEventKinds
)

// String names the event kind for metric labels and log lines.
func (k EventKind) String() string {
	switch k {
	case EvPeerSuspect:
		return "peer-suspect"
	case EvPeerDown:
		return "peer-down"
	case EvPeerRecovered:
		return "peer-recovered"
	case EvBackpressureOn:
		return "backpressure-on"
	case EvBackpressureOff:
		return "backpressure-off"
	case EvWindowShrink:
		return "window-shrink"
	case EvWindowGrow:
		return "window-grow"
	case EvRetransmitExhausted:
		return "retransmit-exhausted"
	case EvDeadlineExpired:
		return "deadline-expired"
	case EvInMemFallback:
		return "in-mem-fallback"
	case EvPeerReadmitted:
		return "peer-readmitted"
	case EvStaleIncarnation:
		return "stale-incarnation"
	case EvPartitionSuspected:
		return "partition-suspected"
	case EvPeerHealed:
		return "peer-healed"
	default:
		return "event(?)"
	}
}

// Event is one bus entry: a flat value type (no pointers, no interfaces)
// so publishing copies a few words and never allocates.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Time is the observation instant, UnixNano. Publishers may stamp it
	// (the substrate uses its cached clock); the bus stamps a zero Time
	// itself, after the no-subscriber early-out.
	Time int64
	// Rank is the observing rank.
	Rank int32
	// Peer is the peer rank the event concerns, or -1 when there is none.
	Peer int32
	// A and B carry kind-specific payload (see the EventKind docs).
	A, B int64
}
