package obs

import (
	"sync"
	"time"
)

// Counter is one named cumulative counter handed to the sampler by its
// collect callback.
type Counter struct {
	Name  string
	Value int64
}

// Rate is one per-second rate derived by delta-sampling a Counter.
type Rate struct {
	Name   string
	PerSec float64
}

// Sampler turns cumulative counters into rates by polling a collect
// callback on a ticker and differencing consecutive samples. It owns one
// goroutine; Close stops it and blocks until it has exited, so leak
// checks can assert a clean teardown.
type Sampler struct {
	collect func() []Counter

	mu     sync.Mutex
	prev   map[string]int64
	prevAt time.Time
	rates  []Rate

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewSampler starts sampling collect every interval (≤ 0 selects 1s).
// The first tick seeds the baseline; rates appear from the second on.
func NewSampler(every time.Duration, collect func() []Counter) *Sampler {
	if every <= 0 {
		every = time.Second
	}
	s := &Sampler{
		collect: collect,
		prev:    make(map[string]int64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.run(every)
	return s
}

func (s *Sampler) run(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	s.sample()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

func (s *Sampler) sample() {
	now := time.Now()
	cs := s.collect()
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := now.Sub(s.prevAt).Seconds()
	first := s.prevAt.IsZero()
	if !first && elapsed > 0 {
		rates := make([]Rate, 0, len(cs))
		for _, c := range cs {
			if prev, ok := s.prev[c.Name]; ok {
				rates = append(rates, Rate{Name: c.Name, PerSec: float64(c.Value-prev) / elapsed})
			}
		}
		s.rates = rates
	}
	for _, c := range cs {
		s.prev[c.Name] = c.Value
	}
	s.prevAt = now
}

// Rates returns a copy of the most recent rate snapshot (nil until two
// samples have landed).
func (s *Sampler) Rates() []Rate {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rates == nil {
		return nil
	}
	out := make([]Rate, len(s.rates))
	copy(out, s.rates)
	return out
}

// Close stops the sampling goroutine and waits for it. Idempotent.
func (s *Sampler) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
