package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Handler builds the observability mux: Prometheus text at /metrics
// (written by the metrics callback per scrape) and an indented JSON
// snapshot at /debug/gupcxx (whatever the debug callback returns).
// Exposed separately from NewServer so tests can drive the endpoints
// through httptest without binding a real listener.
func Handler(metrics func(io.Writer), debug func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics(w)
	})
	mux.HandleFunc("/debug/gupcxx", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(debug())
	})
	return mux
}

// Server is the opt-in observability HTTP listener. It binds eagerly in
// NewServer (so a bad address fails world construction, not a later
// scrape) and shuts down gracefully in Close.
type Server struct {
	ln        net.Listener
	srv       *http.Server
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer listens on addr (host:port; port 0 picks a free port — read
// it back via Addr) and serves Handler(metrics, debug) until Close.
func NewServer(addr string, metrics func(io.Writer), debug func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(metrics, debug),
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// Addr reports the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, drains in-flight requests for up to two
// seconds, then hard-closes stragglers. It blocks until the serve
// goroutine has exited, so goroutine-leak checks pass right after it
// returns. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			_ = s.srv.Close()
		}
	})
	<-s.done
}
