package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of a latency histogram. Bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds (bucket 0 holds the
// zero observations), so the top bucket's lower edge is 2^38 ns ≈ 4.6
// minutes — far past any op latency this runtime produces; everything
// beyond lands in the last bucket.
const HistBuckets = 40

// Hist is a log₂-bucketed latency histogram over int64 nanoseconds:
// a fixed array of atomic counters, observed and snapshotted without
// locks or allocation. The zero value is ready to use.
type Hist struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one latency sample. Allocation-free and safe from any
// goroutine.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0 for 0; k for values in [2^(k-1), 2^k)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count reports the total observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum reports the summed latency in nanoseconds.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Bucket reports bucket i's occupancy.
func (h *Hist) Bucket(i int) int64 { return h.buckets[i].Load() }

// BucketUpperNanos is bucket i's exclusive upper edge in nanoseconds:
// observations counted in buckets 0..i are all < 2^i ns (the last bucket
// is unbounded).
func BucketUpperNanos(i int) int64 { return int64(1) << uint(i) }

// HistVec is a dense rows×cols matrix of histograms — one per
// (operation family, pipeline phase) pair in the runtime's use — backed
// by a single allocation at construction.
type HistVec struct {
	rows, cols int
	h          []Hist
}

// NewHistVec allocates the matrix. All histograms start empty.
func NewHistVec(rows, cols int) *HistVec {
	return &HistVec{rows: rows, cols: cols, h: make([]Hist, rows*cols)}
}

// Observe records ns into the (row, col) histogram. Out-of-range
// coordinates are ignored rather than trusted (the hook seam is public).
func (v *HistVec) Observe(row, col int, ns int64) {
	if row < 0 || row >= v.rows || col < 0 || col >= v.cols {
		return
	}
	v.h[row*v.cols+col].Observe(ns)
}

// At returns the (row, col) histogram for snapshotting, or nil when out
// of range.
func (v *HistVec) At(row, col int) *Hist {
	if row < 0 || row >= v.rows || col < 0 || col >= v.cols {
		return nil
	}
	return &v.h[row*v.cols+col]
}
