// Package serial implements the compact binary wire encoding used by the
// gasnet substrate for active-message payloads on conduits that model a real
// network. The format is little-endian with varint-free fixed-width fields:
// the messages exchanged by the runtime's internal RMA and atomic protocol are
// small and latency-bound, so predictable layout beats space optimization.
//
// The encoder and decoder are deliberately allocation-conscious: an Encoder
// appends into a caller-supplied buffer, and a Decoder reads from a byte slice
// without copying. Both are safe for reuse but not for concurrent use.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a Decoder runs out of input bytes.
var ErrShortBuffer = errors.New("serial: short buffer")

// ErrTrailingBytes is returned by Decoder.Finish when input remains.
var ErrTrailingBytes = errors.New("serial: trailing bytes")

// Encoder appends fixed-width little-endian fields to a buffer.
// The zero value encodes into a fresh buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder {
	return &Encoder{buf: buf[:0]}
}

// Reset discards encoded content, retaining the underlying buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded message. The slice aliases the Encoder's
// internal buffer and is invalidated by further Put calls or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// PutU8 appends a single byte.
func (e *Encoder) PutU8(v uint8) { e.buf = append(e.buf, v) }

// PutU16 appends a 16-bit little-endian value.
func (e *Encoder) PutU16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// PutU32 appends a 32-bit little-endian value.
func (e *Encoder) PutU32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// PutU64 appends a 64-bit little-endian value.
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutI64 appends a 64-bit signed value (two's complement).
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutF64 appends an IEEE-754 binary64 value.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutBytes appends a length-prefixed byte string (u32 length).
func (e *Encoder) PutBytes(b []byte) {
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRaw appends b verbatim with no length prefix. The decoder must know
// the length from context (e.g. a payload that extends to end of message).
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) {
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads fixed-width little-endian fields from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The Decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 decodes a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a 16-bit little-endian value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 decodes a 32-bit little-endian value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 decodes a 64-bit little-endian value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 decodes a 64-bit signed value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 decodes an IEEE-754 binary64 value.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes decodes a length-prefixed byte string. The returned slice aliases
// the Decoder's input.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	return d.take(int(n))
}

// Raw consumes all remaining bytes. The returned slice aliases the input.
func (d *Decoder) Raw() []byte {
	b := d.buf[d.off:]
	d.off = len(d.buf)
	return b
}

// String decodes a length-prefixed UTF-8 string (copying the bytes).
func (d *Decoder) String() string {
	return string(d.Bytes())
}

// Finish reports any decoding error, and ErrTrailingBytes if unconsumed
// input remains.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.buf)-d.off)
	}
	return nil
}
