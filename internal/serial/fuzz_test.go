package serial

import (
	"bytes"
	"testing"
)

// FuzzDecoderNeverPanics feeds arbitrary bytes through a representative
// decode sequence: the Decoder must fail gracefully (sticky error), never
// panic, and never read out of bounds.
func FuzzDecoderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	e := NewEncoder(nil)
	e.PutU8(7)
	e.PutU64(1 << 40)
	e.PutBytes([]byte("seed"))
	e.PutString("s")
	f.Add(append([]byte(nil), e.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.U8()
		d.U16()
		d.U32()
		d.U64()
		d.I64()
		d.F64()
		d.Bytes()
		_ = d.String()
		d.Raw()
		// Finish must return nil or an error, consistently with Err.
		if err := d.Finish(); err == nil && d.Err() != nil {
			t.Fatal("Finish nil but Err set")
		}
	})
}

// FuzzEncodeDecodeRoundTrip: any (u64, bytes, string) tuple round-trips
// exactly.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte{}, "")
	f.Add(uint64(1<<63), []byte{0xff, 0x00}, "héllo")
	f.Fuzz(func(t *testing.T, v uint64, b []byte, s string) {
		e := NewEncoder(nil)
		e.PutU64(v)
		e.PutBytes(b)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		if got := d.U64(); got != v {
			t.Fatalf("u64 %d != %d", got, v)
		}
		if got := d.Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("bytes %v != %v", got, b)
		}
		if got := d.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}
