package serial

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllFields(t *testing.T) {
	e := NewEncoder(nil)
	e.PutU8(7)
	e.PutU16(0xBEEF)
	e.PutU32(0xDEADBEEF)
	e.PutU64(0x0123456789ABCDEF)
	e.PutI64(-42)
	e.PutF64(math.Pi)
	e.PutBytes([]byte("payload"))
	e.PutString("héllo")
	e.PutRaw([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := d.Bytes(); string(v) != "payload" {
		t.Errorf("Bytes = %q", v)
	}
	if v := d.String(); v != "héllo" {
		t.Errorf("String = %q", v)
	}
	if v := d.Raw(); len(v) != 3 || v[2] != 3 {
		t.Errorf("Raw = %v", v)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Errorf("Err = %v", d.Err())
	}
	// Errors are sticky and subsequent reads return zero values.
	if d.U8() != 0 {
		t.Error("read after error should return zero")
	}
	if d.Finish() == nil {
		t.Error("Finish should report the error")
	}
}

func TestTrailingBytes(t *testing.T) {
	e := NewEncoder(nil)
	e.PutU32(1)
	e.PutU8(9)
	d := NewDecoder(e.Bytes())
	d.U32()
	if err := d.Finish(); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("Finish = %v", err)
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(make([]byte, 0, 64))
	e.PutU64(1)
	first := e.Len()
	e.Reset()
	if e.Len() != 0 {
		t.Error("Reset did not clear")
	}
	e.PutU8(2)
	if e.Len() >= first {
		t.Error("reset encoder kept old content")
	}
}

func TestBytesLengthPrefixTruncation(t *testing.T) {
	e := NewEncoder(nil)
	e.PutBytes([]byte{1, 2, 3, 4})
	wire := e.Bytes()
	d := NewDecoder(wire[:5]) // length says 4, only 1 byte present
	if d.Bytes() != nil || d.Err() == nil {
		t.Error("truncated length-prefixed bytes decoded")
	}
}

func TestQuickRoundTripU64Sequences(t *testing.T) {
	f := func(vals []uint64) bool {
		e := NewEncoder(nil)
		for _, v := range vals {
			e.PutU64(v)
		}
		d := NewDecoder(e.Bytes())
		for _, v := range vals {
			if d.U64() != v {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripFloats(t *testing.T) {
	f := func(vals []float64) bool {
		e := NewEncoder(nil)
		for _, v := range vals {
			e.PutF64(v)
		}
		d := NewDecoder(e.Bytes())
		for _, v := range vals {
			got := d.F64()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemaining(t *testing.T) {
	e := NewEncoder(nil)
	e.PutU64(0)
	e.PutU32(0)
	d := NewDecoder(e.Bytes())
	if d.Remaining() != 12 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
	d.U64()
	if d.Remaining() != 4 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}
