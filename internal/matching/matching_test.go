package matching

import (
	"math"
	"math/rand"
	"testing"

	"gupcxx"
	"gupcxx/internal/graph"
)

func TestGreedyTriangle(t *testing.T) {
	// Triangle with distinct weights: greedy picks the heaviest edge only.
	g, err := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	mate, w := Greedy(g)
	if w != 3 {
		t.Errorf("weight = %v, want 3", w)
	}
	if mate[0] != 1 || mate[1] != 0 || mate[2] != Unmatched {
		t.Errorf("mate = %v", mate)
	}
	if _, err := VerifyMatching(g, mate); err != nil {
		t.Error(err)
	}
	if err := MaximalityCheck(g, mate); err != nil {
		t.Error(err)
	}
}

func TestGreedyPath(t *testing.T) {
	// Path 0-1-2-3 with middle edge heaviest: greedy takes only it; the
	// optimum (edges 0-1 and 2-3) is larger — half-approximation in
	// action.
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, w := Greedy(g)
	if w != 3 {
		t.Errorf("weight = %v, want 3", w)
	}
	// Half-approximation bound: 3 >= 4/2.
	if w < 2 {
		t.Error("below half-approximation bound")
	}
}

func TestGreedyTieBreaking(t *testing.T) {
	// All weights equal: the total order must still produce a valid
	// maximal matching deterministically.
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	mate, w := Greedy(g)
	if w != 2 {
		t.Errorf("weight = %v, want 2", w)
	}
	// Smallest pair first: (0,1) then (2,3).
	if mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate = %v", mate)
	}
}

// runDistributed runs the distributed matching and returns the assembled
// global mate array plus the reported weight.
func runDistributed(t *testing.T, g *graph.Graph, cfg gupcxx.Config) ([]int64, float64, int) {
	t.Helper()
	d := graph.NewDist(g.N, cfg.Ranks)
	mate := make([]int64, g.N)
	var weight float64
	var rounds int
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		res, err := Run(r, g, d)
		if err != nil {
			t.Error(err)
			return
		}
		lo, hi := d.Range(r.Me())
		copy(mate[lo:hi], res.Mate)
		if r.Me() == 0 {
			weight = res.Weight
			rounds = res.Rounds
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return mate, weight, rounds
}

func graphs(t *testing.T) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":     graph.Grid3D(5, 5, 8, 9),
		"geo":      graph.Geometric(300, 6, 9),
		"noise":    graph.GeometricNoise(300, 6, 15, 9),
		"powerlaw": graph.PowerLaw(300, 4, 9),
		"er":       graph.ErdosRenyi(150, 400, 9),
	}
}

// TestDistributedEqualsGreedy is the core oracle test: for a shared edge
// total order, the locally-dominant distributed matching must equal the
// sequential greedy matching exactly — same mates, same weight.
func TestDistributedEqualsGreedy(t *testing.T) {
	for name, g := range graphs(t) {
		for _, ranks := range []int{1, 3, 4} {
			for _, ver := range []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
				cfg := gupcxx.Config{
					Ranks: ranks, Conduit: gupcxx.PSHM, Version: ver,
					SegmentBytes: 1 << 20,
				}
				t.Run(name+"/"+ver.Name, func(t *testing.T) {
					wantMate, wantW := Greedy(g)
					mate, w, rounds := runDistributed(t, g, cfg)
					if math.Abs(w-wantW) > 1e-9 {
						t.Errorf("ranks=%d: weight %v, greedy %v", ranks, w, wantW)
					}
					for v := range mate {
						wm := wantMate[v]
						gm := mate[v]
						// Greedy leaves unmatchable vertices Unmatched;
						// the distributed algorithm marks them Dead.
						if wm < 0 && gm < 0 {
							continue
						}
						if wm != gm {
							t.Fatalf("ranks=%d: mate[%d] = %d, greedy %d", ranks, v, gm, wm)
						}
					}
					if _, err := VerifyMatching(g, clampDead(mate)); err != nil {
						t.Error(err)
					}
					if err := MaximalityCheck(g, clampDead(mate)); err != nil {
						t.Error(err)
					}
					if rounds < 1 {
						t.Errorf("suspicious round count %d", rounds)
					}
				})
			}
		}
	}
}

// clampDead maps Dead to Unmatched for the validity checkers.
func clampDead(mate []int64) []int64 {
	out := append([]int64(nil), mate...)
	for i, m := range out {
		if m == Dead {
			out[i] = Unmatched
		}
	}
	return out
}

func TestDistributedCrossNode(t *testing.T) {
	g := graph.GeometricNoise(200, 6, 15, 13)
	wantMate, wantW := Greedy(g)
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.SIM, RanksPerNode: 2, SegmentBytes: 1 << 20}
	mate, w, _ := runDistributed(t, g, cfg)
	if math.Abs(w-wantW) > 1e-9 {
		t.Errorf("weight %v, greedy %v", w, wantW)
	}
	for v := range mate {
		if wantMate[v] < 0 && mate[v] < 0 {
			continue
		}
		if mate[v] != wantMate[v] {
			t.Fatalf("mate[%d] = %d, greedy %d", v, mate[v], wantMate[v])
		}
	}
}

func TestIsolatedAndEmpty(t *testing.T) {
	// Graph with isolated vertices and one edge.
	g, err := graph.FromEdges(5, []graph.Edge{{U: 1, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mate, w, _ := runDistributed(t, g, gupcxx.Config{Ranks: 2, SegmentBytes: 1 << 16})
	if w != 1 || mate[1] != 3 || mate[3] != 1 {
		t.Errorf("mate=%v w=%v", mate, w)
	}
	for _, v := range []int{0, 2, 4} {
		if mate[v] >= 0 {
			t.Errorf("isolated vertex %d matched to %d", v, mate[v])
		}
	}
}

// TestRandomizedOracleSweep: across many random graphs and seeds, the
// distributed matching equals the greedy oracle exactly — the randomized
// form of TestDistributedEqualsGreedy.
func TestRandomizedOracleSweep(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 20}
	for seed := int64(0); seed < 8; seed++ {
		n := 50 + int(seed)*37
		m := n * (2 + int(seed%3))
		g := graph.ErdosRenyi(n, m, seed)
		wantMate, wantW := Greedy(g)
		mate, w, _ := runDistributed(t, g, cfg)
		if math.Abs(w-wantW) > 1e-9 {
			t.Fatalf("seed %d: weight %v != %v", seed, w, wantW)
		}
		for v := range mate {
			if wantMate[v] < 0 && mate[v] < 0 {
				continue
			}
			if mate[v] != wantMate[v] {
				t.Fatalf("seed %d: mate[%d] = %d, want %d", seed, v, mate[v], wantMate[v])
			}
		}
	}
}

// TestHalfApproximationBound: greedy is a half-approximation, so its
// weight must be at least half the weight of ANY matching — checked
// against randomly constructed maximal matchings.
func TestHalfApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ErdosRenyi(80, 300, seed+50)
		_, w := Greedy(g)
		for trial := 0; trial < 10; trial++ {
			// Random maximal matching: scan edges in random order.
			type edge struct {
				u, v int32
				w    float64
			}
			var edges []edge
			for u := int32(0); int(u) < g.N; u++ {
				adj, ws := g.Neighbors(u)
				for i, v := range adj {
					if u < v {
						edges = append(edges, edge{u, v, ws[i]})
					}
				}
			}
			rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
			used := make([]bool, g.N)
			var mw float64
			for _, e := range edges {
				if !used[e.u] && !used[e.v] {
					used[e.u], used[e.v] = true, true
					mw += e.w
				}
			}
			if w < mw/2-1e-9 {
				t.Errorf("seed %d trial %d: greedy %v below half of matching %v", seed, trial, w, mw)
			}
		}
	}
}

func TestRemoteReadsScaleWithCrossEdges(t *testing.T) {
	// A highly non-local graph must issue more RMA reads than a local one
	// of similar size — the structural fact behind Fig. 8.
	grid := graph.Grid3D(8, 8, 8, 21)
	pl := graph.PowerLaw(512, 3, 21)
	reads := func(g *graph.Graph) int64 {
		var total int64
		d := graph.NewDist(g.N, 4)
		err := gupcxx.Launch(gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 20}, func(r *gupcxx.Rank) {
			res, err := Run(r, g, d)
			if err != nil {
				t.Error(err)
				return
			}
			if r.Me() == 0 {
				total = int64(r.SumU64(uint64(res.RemoteReads)))
			} else {
				r.SumU64(uint64(res.RemoteReads))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	rg, rp := reads(grid), reads(pl)
	t.Logf("remote reads: grid=%d powerlaw=%d", rg, rp)
	if rg >= rp {
		t.Errorf("grid (%d) should need fewer remote reads than powerlaw (%d)", rg, rp)
	}
}
