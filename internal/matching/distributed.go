package matching

import (
	"fmt"
	"math"
	"sync/atomic"

	"gupcxx"
	"gupcxx/internal/graph"
)

func errorf(format string, args ...any) error { return fmt.Errorf("matching: "+format, args...) }

// Result summarizes one rank's view of a distributed matching run.
type Result struct {
	// Mate is this rank's block of the mate array (global vertex ids,
	// Unmatched, or Dead).
	Mate []int64
	// Weight is the global matching weight (identical on every rank).
	Weight float64
	// Rounds is the number of BSP rounds to convergence.
	Rounds int
	// RemoteReads counts the RMA gets this rank issued (cross-rank mate
	// and candidate reads) — the operations eager notification optimizes.
	RemoteReads int64
}

// Run executes the distributed locally-dominant matching on rank r. The
// graph g is the full input (read-only, shared by all ranks); d gives the
// block distribution. Collective: every rank calls Run together.
//
// The algorithm is the bulk-synchronous pointer-based half-approximation
// (Manne/Bisseling style, as in the ExaGraph application):
//
//	repeat
//	  phase 1: every live vertex v picks candidate(v) — its heaviest
//	           neighbor still unmatched (reads of mate[]),
//	  phase 2: v matches iff candidate(candidate(v)) == v (reads of
//	           candidate[]),
//	until no live vertices remain anywhere.
//
// State arrays (mate, candidate) live in shared segments. Reads of
// same-rank state are manually localized (direct loads); reads of
// other-rank state use batched RMA gets tracked by a promise — on a
// single node those targets are co-located, which is the case the paper's
// eager notifications accelerate. Writes are to own state only.
//
// The matching produced equals Greedy's for the shared edge total order.
func Run(r *gupcxx.Rank, g *graph.Graph, d graph.Dist) (*Result, error) {
	if d.Ranks != r.N() {
		return nil, errorf("distribution over %d ranks used in a %d-rank world", d.Ranks, r.N())
	}
	lo, hi := d.Range(r.Me())
	nLocal := int(hi - lo)
	block := d.BlockSize()

	mateG, err := gupcxx.AllocArray[int64](r, block)
	if err != nil {
		return nil, err
	}
	candG, err := gupcxx.AllocArray[int64](r, block)
	if err != nil {
		return nil, err
	}
	mates := gupcxx.ExchangePtr(r, mateG)
	cands := gupcxx.ExchangePtr(r, candG)
	mate := mateG.LocalSlice(r, block)
	cand := candG.LocalSlice(r, block)
	for i := 0; i < block; i++ {
		atomic.StoreInt64(&mate[i], Unmatched)
		atomic.StoreInt64(&cand[i], Dead)
	}

	// Remote-read cache, one slot per global vertex, invalidated by round
	// stamp: within a phase each remote vertex is fetched at most once.
	remoteVal := make([]int64, g.N)
	remoteStamp := make([]int32, g.N)
	stamp := int32(0)
	var remoteReads int64

	me := r.Me()
	// scratch receives batched RMA gets; it is sized once for the worst
	// case (one slot per vertex, thanks to the dedupe cache) because the
	// issued gets hold subslices — the backing array must never move.
	scratch := make([]int64, g.N)
	nScratch := 0

	live := make([]int32, 0, nLocal)
	for v := lo; v < hi; v++ {
		if g.Degree(v) > 0 {
			live = append(live, v)
		} else {
			atomic.StoreInt64(&mate[d.Local(v)], Dead)
		}
	}

	result := &Result{}
	r.Barrier()

	for rounds := 0; ; rounds++ {
		globalLive := r.SumU64(uint64(len(live)))
		if globalLive == 0 {
			result.Rounds = rounds
			break
		}

		// ---- Phase 1: gather mate[] of all cross-rank neighbors. ----
		stamp++
		nScratch = 0
		p := r.NewPromise()
		for _, v := range live {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if owner := d.Owner(u); owner != me && remoteStamp[u] != stamp {
					remoteStamp[u] = stamp
					idx := nScratch
					nScratch++
					src := mates[owner].Element(int(d.Local(u)))
					gupcxx.RgetBulk(r, src, scratch[idx:idx+1], gupcxx.OpPromise(p))
					remoteVal[u] = int64(idx) // temporarily: scratch index
					remoteReads++
				}
			}
		}
		p.Finalize().Wait()
		// Resolve scratch indices into values.
		for _, v := range live {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if d.Owner(u) != me && remoteStamp[u] == stamp {
					remoteVal[u] = scratch[remoteVal[u]]
					remoteStamp[u] = -stamp // resolved marker
				}
			}
		}

		// Pick candidates: heaviest neighbor whose mate is Unmatched.
		for _, v := range live {
			adj, ws := g.Neighbors(v)
			bestU := int32(-1)
			bestW := 0.0
			for i, u := range adj {
				var mu int64
				if d.Owner(u) == me {
					mu = atomic.LoadInt64(&mate[d.Local(u)])
				} else {
					mu = remoteVal[u]
				}
				if mu != Unmatched {
					continue
				}
				if bestU < 0 || heavier(ws[i], v, u, bestW, v, bestU) {
					bestU, bestW = u, ws[i]
				}
			}
			if bestU < 0 {
				atomic.StoreInt64(&mate[d.Local(v)], Dead)
				atomic.StoreInt64(&cand[d.Local(v)], Dead)
			} else {
				atomic.StoreInt64(&cand[d.Local(v)], int64(bestU))
			}
		}
		r.Barrier()

		// ---- Phase 2: gather candidate[] of each candidate. ----
		stamp++
		nScratch = 0
		p2 := r.NewPromise()
		for _, v := range live {
			c := atomic.LoadInt64(&cand[d.Local(v)])
			if c < 0 {
				continue
			}
			u := int32(c)
			if owner := d.Owner(u); owner != me && remoteStamp[u] != stamp {
				remoteStamp[u] = stamp
				idx := nScratch
				nScratch++
				src := cands[owner].Element(int(d.Local(u)))
				gupcxx.RgetBulk(r, src, scratch[idx:idx+1], gupcxx.OpPromise(p2))
				remoteVal[u] = int64(idx)
				remoteReads++
			}
		}
		p2.Finalize().Wait()
		for _, v := range live {
			c := atomic.LoadInt64(&cand[d.Local(v)])
			if c < 0 {
				continue
			}
			u := int32(c)
			if d.Owner(u) != me && remoteStamp[u] == stamp {
				remoteVal[u] = scratch[remoteVal[u]]
				remoteStamp[u] = -stamp
			}
		}

		// Match mutual candidates and rebuild the live set.
		next := live[:0]
		for _, v := range live {
			c := atomic.LoadInt64(&cand[d.Local(v)])
			if c < 0 {
				continue // died in phase 1
			}
			u := int32(c)
			var cu int64
			if d.Owner(u) == me {
				cu = atomic.LoadInt64(&cand[d.Local(u)])
			} else {
				cu = remoteVal[u]
			}
			if cu == int64(v) {
				atomic.StoreInt64(&mate[d.Local(v)], int64(u))
			} else {
				next = append(next, v)
			}
		}
		live = next
		r.Barrier()
	}

	// Weight: each matched vertex contributes half its edge weight.
	var local float64
	for v := lo; v < hi; v++ {
		m := atomic.LoadInt64(&mate[d.Local(v)])
		if m >= 0 {
			w, ok := g.EdgeWeight(v, int32(m))
			if !ok {
				return nil, errorf("matched non-edge (%d,%d)", v, m)
			}
			local += w / 2
		}
	}
	result.Weight = sumFloat(r, local)
	result.Mate = append([]int64(nil), mate[:nLocal]...)
	for i := range result.Mate {
		result.Mate[i] = atomic.LoadInt64(&mate[i])
	}
	result.RemoteReads = remoteReads
	r.Barrier()
	return result, nil
}

// sumFloat all-reduces a float64 across ranks via its bit pattern. The
// gathered values are summed in rank order on every rank, so all ranks
// compute the identical result.
func sumFloat(r *gupcxx.Rank, v float64) float64 {
	words := r.ExchangeU64(math.Float64bits(v))
	var s float64
	for _, w := range words {
		s += math.Float64frombits(w)
	}
	return s
}
