// Package matching implements half-approximate maximum-weight graph
// matching: a sequential greedy oracle and the distributed
// locally-dominant-edge algorithm of the ExaGraph application evaluated in
// the paper (§IV-C), written against the gupcxx runtime with RMA reads for
// cross-rank state and manual localization for same-rank state — exactly
// the communication structure whose co-located fraction the eager
// notifications accelerate.
package matching

import (
	"sort"

	"gupcxx/internal/graph"
)

// Unmatched and Dead are the sentinel mate values.
const (
	// Unmatched marks a vertex still seeking a mate.
	Unmatched int64 = -1
	// Dead marks a vertex with no remaining unmatched neighbors.
	Dead int64 = -2
)

// heavier reports whether edge (w1,{a1,b1}) precedes edge (w2,{a2,b2}) in
// the total order used by both the greedy oracle and the distributed
// algorithm: heavier weight first, ties broken by the smaller endpoint
// pair. Both endpoints of an edge compute the same key, so local dominance
// is well defined even with duplicate weights.
func heavier(w1 float64, a1, b1 int32, w2 float64, a2, b2 int32) bool {
	if w1 != w2 {
		return w1 > w2
	}
	if a1 > b1 {
		a1, b1 = b1, a1
	}
	if a2 > b2 {
		a2, b2 = b2, a2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

// Greedy computes the sequential greedy matching: scan edges in the total
// order above, matching both endpoints when still free. Its result is a
// half-approximation of the maximum-weight matching, and — for the shared
// total order — identical to the locally-dominant matching, making it the
// oracle for the distributed implementation.
func Greedy(g *graph.Graph) ([]int64, float64) {
	type edge struct {
		u, v int32
		w    float64
	}
	edges := make([]edge, 0, g.M())
	for u := int32(0); int(u) < g.N; u++ {
		adj, ws := g.Neighbors(u)
		for i, v := range adj {
			if u < v { // each undirected edge once
				edges = append(edges, edge{u, v, ws[i]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		return heavier(a.w, a.u, a.v, b.w, b.u, b.v)
	})
	mate := make([]int64, g.N)
	for i := range mate {
		mate[i] = Unmatched
	}
	var weight float64
	for _, e := range edges {
		if mate[e.u] == Unmatched && mate[e.v] == Unmatched {
			mate[e.u] = int64(e.v)
			mate[e.v] = int64(e.u)
			weight += e.w
		}
	}
	return mate, weight
}

// VerifyMatching checks that mate is a valid matching on g: symmetric,
// edges exist, and no two matched pairs share a vertex. It returns the
// matching's weight.
func VerifyMatching(g *graph.Graph, mate []int64) (float64, error) {
	var weight float64
	for v := int32(0); int(v) < g.N; v++ {
		m := mate[v]
		if m < 0 {
			continue
		}
		u := int32(m)
		if int(u) >= g.N {
			return 0, errorf("vertex %d matched to out-of-range %d", v, u)
		}
		if mate[u] != int64(v) {
			return 0, errorf("asymmetric match: mate[%d]=%d but mate[%d]=%d", v, u, u, mate[u])
		}
		w, ok := g.EdgeWeight(v, u)
		if !ok {
			return 0, errorf("matched pair (%d,%d) is not an edge", v, u)
		}
		if v < u {
			weight += w
		}
	}
	return weight, nil
}

// MaximalityCheck verifies the matching is maximal: no edge has both
// endpoints unmatched (a requirement of any greedy/locally-dominant
// result).
func MaximalityCheck(g *graph.Graph, mate []int64) error {
	for v := int32(0); int(v) < g.N; v++ {
		if mate[v] >= 0 {
			continue
		}
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if mate[u] < 0 {
				return errorf("edge (%d,%d) has both endpoints unmatched", v, u)
			}
		}
	}
	return nil
}
