package core

import "sync/atomic"

// Engine counters and the OpStats matrix are plain int64s owned by the
// rank goroutine — by design: the hot path must not pay atomic traffic
// per op. That makes them unreadable from a metrics scrape running on an
// HTTP goroutine while ranks are live. OpsMirror is the bridge: an
// all-atomic shadow of one engine's counters that the engine itself
// publishes into from its own goroutine (every mirrorFlushEvery progress
// steps, plus once when the rank function returns), and that any
// goroutine may snapshot. The mirror lags the live counters by at most
// one flush interval; it never lies, it is only slightly stale.

// Indices into OpsMirror's engine-counter array. The order is the
// exposition order; EngineStatNames labels each slot.
const (
	statCellAllocs = iota
	statDeferQPushes
	statLPCRuns
	statProgressCalls
	statWhenAllBuilt
	statWhenAllElided
	statReadyHits
	statLegacyAllocs
	statEagerDeliveries
	statOpsFailed
	statDeadlinesArmed
	statDeadlinesExpired
	statContinuationsRun
	statContinuationPanics

	// NumEngineStats is the number of mirrored engine counters.
	NumEngineStats
)

// EngineStatNames labels the mirrored engine counters, in slot order,
// using metric-friendly snake_case.
var EngineStatNames = [NumEngineStats]string{
	statCellAllocs:         "cell_allocs",
	statDeferQPushes:       "deferq_pushes",
	statLPCRuns:            "lpc_runs",
	statProgressCalls:      "progress_calls",
	statWhenAllBuilt:       "whenall_built",
	statWhenAllElided:      "whenall_elided",
	statReadyHits:          "ready_hits",
	statLegacyAllocs:       "legacy_allocs",
	statEagerDeliveries:    "eager_deliveries",
	statOpsFailed:          "ops_failed",
	statDeadlinesArmed:     "deadlines_armed",
	statDeadlinesExpired:   "deadlines_expired",
	statContinuationsRun:   "continuations_run",
	statContinuationPanics: "continuation_panics",
}

// OpsMirror is the race-safe counter shadow described above. The zero
// value is ready; install with Engine.SetMirror.
type OpsMirror struct {
	ops [NumOpKinds][NumPhases]atomic.Int64
	eng [NumEngineStats]atomic.Int64
}

// flush publishes the engine's counters. Runs on the engine goroutine.
func (m *OpsMirror) flush(e *Engine) {
	for k := range e.ops {
		for p := range e.ops[k] {
			m.ops[k][p].Store(e.ops[k][p])
		}
	}
	s := &e.Stats
	m.eng[statCellAllocs].Store(s.CellAllocs)
	m.eng[statDeferQPushes].Store(s.DeferQPushes)
	m.eng[statLPCRuns].Store(s.LPCRuns)
	m.eng[statProgressCalls].Store(s.ProgressCalls)
	m.eng[statWhenAllBuilt].Store(s.WhenAllBuilt)
	m.eng[statWhenAllElided].Store(s.WhenAllElided)
	m.eng[statReadyHits].Store(s.ReadyHits)
	m.eng[statLegacyAllocs].Store(s.LegacyAllocs)
	m.eng[statEagerDeliveries].Store(s.EagerDeliveries)
	m.eng[statOpsFailed].Store(s.OpsFailed)
	m.eng[statDeadlinesArmed].Store(s.DeadlinesArmed)
	m.eng[statDeadlinesExpired].Store(s.DeadlinesExpired)
	m.eng[statContinuationsRun].Store(s.ContinuationsRun)
	m.eng[statContinuationPanics].Store(s.ContinuationPanics)
}

// Ops snapshots the mirrored phase matrix. Safe from any goroutine.
func (m *OpsMirror) Ops() OpStats {
	var s OpStats
	for k := range s {
		for p := range s[k] {
			s[k][p] = m.ops[k][p].Load()
		}
	}
	return s
}

// EngineStat reads one mirrored engine counter by slot (see
// EngineStatNames). Out-of-range slots read zero.
func (m *OpsMirror) EngineStat(i int) int64 {
	if i < 0 || i >= NumEngineStats {
		return 0
	}
	return m.eng[i].Load()
}
