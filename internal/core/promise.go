package core

// Promise is the producer side of a value-less asynchronous result. A
// promise efficiently tracks any number of value-less operations as a
// single dependency counter: registering an operation increments the count
// and each completion decrements it (§II-A). Finalize closes registration
// and returns the future that readies when the count drains.
//
// Like UPC++'s promise<>, a new promise carries one implicit dependency
// that Finalize resolves.
type Promise struct {
	c         *cell
	finalized bool
}

// NewPromise allocates a promise on engine e with one unresolved
// dependency (the finalization dependency).
func NewPromise(e *Engine) *Promise {
	return &Promise{c: e.newCell()}
}

// Require registers n additional expected completions. It panics after
// Finalize, matching UPC++'s contract.
func (p *Promise) Require(n int) {
	if p.finalized {
		panic("gupcxx: Require on finalized promise")
	}
	if n < 0 {
		panic("gupcxx: negative Require")
	}
	p.c.require(int32(n))
}

// Fulfill resolves n previously-required completions.
func (p *Promise) Fulfill(n int) {
	if n < 0 {
		panic("gupcxx: negative Fulfill")
	}
	p.c.fulfill(int32(n))
}

// FulfillError resolves one previously-required completion as a failure:
// the dependency is consumed like Fulfill(1), and the first error recorded
// this way is carried by the promise's future (Future.Err) once the count
// drains. The promise therefore still waits for its other registered
// operations — "everything finished, at least one failed" — unlike a
// future's fail, which short-circuits.
func (p *Promise) FulfillError(err error) {
	if err == nil {
		p.Fulfill(1)
		return
	}
	if !p.c.ready && p.c.err == nil {
		p.c.err = err
	}
	p.c.fulfill(1)
}

// Err returns the first failure recorded on the promise (via
// FulfillError), or nil. It may be non-nil before the future readies.
func (p *Promise) Err() error { return p.c.err }

// Finalize closes registration and returns the promise's future, resolving
// the implicit construction dependency. Finalize is idempotent.
func (p *Promise) Finalize() Future {
	if !p.finalized {
		p.finalized = true
		p.c.fulfill(1)
	}
	return Future{p.c}
}

// Finalized reports whether Finalize has been called.
func (p *Promise) Finalized() bool { return p.finalized }

// Pending reports the number of unresolved dependencies (including the
// finalization dependency while registration is open). Intended for tests
// and diagnostics.
func (p *Promise) Pending() int { return int(p.c.deps) }

// PromiseV is the producer side of an asynchronous result carrying one
// value of type T. Unlike a value-less Promise it can track only a single
// value-producing operation (§III-B) — the limitation that motivates the
// paper's fetch-to-memory atomics.
type PromiseV[T any] struct {
	c         *cellV[T]
	finalized bool
	bound     bool
}

// NewPromiseV allocates a value-carrying promise with one unresolved
// dependency.
func NewPromiseV[T any](e *Engine) *PromiseV[T] {
	e.Stats.CellAllocs++
	return &PromiseV[T]{c: &cellV[T]{cell: cell{eng: e, deps: 1}}}
}

// Bind registers the single value-producing operation. It panics if a
// second operation is registered or if the promise is finalized.
func (p *PromiseV[T]) Bind() {
	if p.finalized {
		panic("gupcxx: Bind on finalized promise")
	}
	if p.bound {
		panic("gupcxx: value promise can track only one value-producing operation")
	}
	p.bound = true
	p.c.require(1)
}

// Deliver stores the operation's value and resolves its dependency.
func (p *PromiseV[T]) Deliver(v T) {
	p.c.v = v
	p.c.fulfill(1)
}

// DeliverDeferred stores the value now but defers the readiness
// notification to the next progress call (legacy deferred semantics).
func (p *PromiseV[T]) DeliverDeferred(v T) {
	p.c.v = v
	p.c.eng.deferFulfill(&p.c.cell)
}

// ValueSlot exposes the promise's value storage so an asynchronous
// operation can have the substrate write the arriving value in place (no
// intermediate per-call cell); pair with DeliverInPlace.
func (p *PromiseV[T]) ValueSlot() *T { return &p.c.v }

// DeliverInPlace resolves the bound operation's dependency for a value
// already written through ValueSlot. It must run on the owning rank's
// goroutine inside the progress engine.
func (p *PromiseV[T]) DeliverInPlace() { p.c.fulfill(1) }

// DeliverError resolves the bound operation's dependency as a failure; the
// promise's future carries err once finalized (FutureV.Err).
func (p *PromiseV[T]) DeliverError(err error) {
	if !p.c.ready && p.c.err == nil {
		p.c.err = err
	}
	p.c.fulfill(1)
}

// Err returns the failure recorded on the promise, or nil.
func (p *PromiseV[T]) Err() error { return p.c.err }

// Finalize closes registration and returns the value future.
func (p *PromiseV[T]) Finalize() FutureV[T] {
	if !p.finalized {
		p.finalized = true
		p.c.fulfill(1)
	}
	return FutureV[T]{c: p.c}
}

// Finalized reports whether Finalize has been called.
func (p *PromiseV[T]) Finalized() bool { return p.finalized }
