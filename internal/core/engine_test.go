package core

import "testing"

// TestIdleSpinThenPark: Idle yields for the first idleSpin idle steps and
// only then invokes the substrate parker; a productive progress step
// resets the streak.
func TestIdleSpinThenPark(t *testing.T) {
	e := NewEngine(0, Eager2021_3_6)
	parks := 0
	e.SetParker(func() { parks++ })
	e.SetPoller(func() int { return 0 })

	for i := 0; i < idleSpin-1; i++ {
		e.Progress()
		e.Idle()
	}
	if parks != 0 {
		t.Fatalf("parked during spin phase: %d", parks)
	}
	e.Idle()
	if parks != 1 {
		t.Fatalf("parks = %d after exceeding spin budget", parks)
	}

	// A productive poll resets the streak.
	productive := true
	e.SetPoller(func() int {
		if productive {
			productive = false
			return 1
		}
		return 0
	})
	e.Progress() // productive
	for i := 0; i < idleSpin-1; i++ {
		e.Progress()
		e.Idle()
	}
	if parks != 1 {
		t.Fatalf("streak not reset by productive progress: parks = %d", parks)
	}
}

// TestIdleWithoutParkerYields: no parker installed means Idle must not
// panic (it falls back to a scheduler yield).
func TestIdleWithoutParkerYields(t *testing.T) {
	e := NewEngine(0, Defer2021_3_6)
	for i := 0; i < idleSpin*2; i++ {
		e.Idle()
	}
}

// TestProgressReentrancyGuard: a nested Progress (from inside a callback)
// polls but leaves queue draining to the outer call, and the outer call
// still drains everything.
func TestProgressReentrancyGuard(t *testing.T) {
	e := NewEngine(0, Defer2021_3_6)
	polls := 0
	e.SetPoller(func() int { polls++; return 0 })

	var nestedSaw int
	f, h := e.NewOpFuture()
	f.Then(func() {
		nestedSaw = e.Progress() // nested: poll only
	})
	h.Defer()
	e.Progress()
	if !f.Ready() {
		t.Fatal("outer progress did not drain")
	}
	if nestedSaw != 0 {
		t.Errorf("nested progress drained queues: %d", nestedSaw)
	}
	if polls < 2 {
		t.Errorf("polls = %d, nested call should still poll", polls)
	}
}
