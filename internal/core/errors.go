package core

import (
	"context"
	"fmt"
)

// ContinuationError reports that a continuation callback (OpContinue)
// panicked while running inside the progress engine. The panic is
// recovered — the progress loop keeps running — and the operation's
// remaining sinks (futures, promises) resolve with this value, mirroring
// how a remote handler panic surfaces as a *RemoteError.
type ContinuationError struct {
	// Rank is the rank whose progress engine ran the continuation.
	Rank int
	// Msg is the recovered panic value, formatted.
	Msg string
}

func (e *ContinuationError) Error() string {
	return fmt.Sprintf("gupcxx: continuation panicked on rank %d: %s", e.Rank, e.Msg)
}

// deadlineError is the concrete type behind ErrDeadlineExceeded. It is a
// distinct sentinel (so errors.Is(err, ErrDeadlineExceeded) keeps
// working) that also matches the stdlib's context.DeadlineExceeded, so
// code written against context-style timeouts — retry helpers, gRPC-ish
// classifiers — recognizes a per-op deadline expiry without knowing this
// package.
type deadlineError struct{}

func (deadlineError) Error() string { return "gupcxx: operation deadline exceeded" }

// Is makes errors.Is(err, context.DeadlineExceeded) true for deadline
// failures.
func (deadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// Timeout reports true, satisfying the net.Error-style timeout probe.
func (deadlineError) Timeout() bool { return true }

// ErrDeadlineExceeded is the failure recorded on an operation whose per-op
// deadline (OpDesc.Deadline / OpDeadline completion) expired before the
// substrate acknowledged it. Test with errors.Is — it matches both this
// sentinel and context.DeadlineExceeded.
var ErrDeadlineExceeded error = deadlineError{}
