package core

import "errors"

// ErrDeadlineExceeded is the failure recorded on an operation whose per-op
// deadline (OpDesc.Deadline / OpDeadline completion) expired before the
// substrate acknowledged it. Test with errors.Is.
var ErrDeadlineExceeded = errors.New("gupcxx: operation deadline exceeded")
