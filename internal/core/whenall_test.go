package core

import (
	"testing"
	"testing/quick"
)

func TestWhenAllEmpty(t *testing.T) {
	for _, ver := range Versions() {
		e := testEngine(ver)
		if !e.WhenAll().Ready() {
			t.Errorf("%s: WhenAll() not ready", ver.Name)
		}
	}
}

func TestWhenAllShortCircuitAllReady(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f := e.WhenAll(e.ReadyFuture(), e.ReadyFuture(), e.ReadyFuture())
	if !f.Ready() {
		t.Fatal("not ready")
	}
	if e.Stats.WhenAllBuilt != 0 {
		t.Error("short-circuit path built a graph node")
	}
	if e.Stats.WhenAllElided != 1 {
		t.Errorf("WhenAllElided = %d", e.Stats.WhenAllElided)
	}
	if e.Stats.CellAllocs != 0 {
		t.Errorf("allocated %d cells", e.Stats.CellAllocs)
	}
}

func TestWhenAllShortCircuitSingleNonReady(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	pending, h := e.NewOpFuture()
	allocsBefore := e.Stats.CellAllocs
	f := e.WhenAll(e.ReadyFuture(), pending, e.ReadyFuture())
	if e.Stats.CellAllocs != allocsBefore {
		t.Error("single-non-ready case should not allocate")
	}
	if f.c != pending.c {
		t.Error("should return the single non-ready input itself")
	}
	h.Fulfill()
	if !f.Ready() {
		t.Error("not readied by the input")
	}
}

func TestWhenAllBuildsGraphWhenNeeded(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f1, h1 := e.NewOpFuture()
	f2, h2 := e.NewOpFuture()
	conj := e.WhenAll(f1, f2)
	if conj.Ready() {
		t.Fatal("ready early")
	}
	if e.Stats.WhenAllBuilt != 1 {
		t.Errorf("WhenAllBuilt = %d", e.Stats.WhenAllBuilt)
	}
	h1.Fulfill()
	if conj.Ready() {
		t.Fatal("ready with one input pending")
	}
	h2.Fulfill()
	if !conj.Ready() {
		t.Fatal("not ready after both")
	}
}

func TestWhenAllLegacyAlwaysBuilds(t *testing.T) {
	e := testEngine(Legacy2021_3_0)
	f := e.WhenAll(e.ReadyFuture(), e.ReadyFuture())
	if !f.Ready() {
		t.Fatal("conjunction of ready futures must be ready")
	}
	if e.Stats.WhenAllBuilt != 1 {
		t.Errorf("legacy should always build: WhenAllBuilt = %d", e.Stats.WhenAllBuilt)
	}
	if e.Stats.WhenAllElided != 0 {
		t.Error("legacy should never elide")
	}
}

// TestWhenAllEquivalenceProperty: for random readiness patterns, the
// optimized and legacy implementations must agree on the result's
// readiness at every step of fulfillment.
func TestWhenAllEquivalenceProperty(t *testing.T) {
	f := func(pattern []bool, fulfilOrder []uint8) bool {
		if len(pattern) == 0 || len(pattern) > 12 {
			return true
		}
		build := func(ver Version) (Future, []FulfillHandle, *Engine) {
			e := testEngine(ver)
			ins := make([]Future, len(pattern))
			var hs []FulfillHandle
			for i, ready := range pattern {
				if ready {
					ins[i] = e.ReadyFuture()
				} else {
					f, h := e.NewOpFuture()
					ins[i] = f
					hs = append(hs, h)
				}
			}
			return e.WhenAll(ins...), hs, e
		}
		opt, hsO, _ := build(Eager2021_3_6)
		leg, hsL, _ := build(Legacy2021_3_0)
		if opt.Ready() != leg.Ready() {
			return false
		}
		for i := range hsO {
			hsO[i].Fulfill()
			hsL[i].Fulfill()
			if opt.Ready() != leg.Ready() {
				return false
			}
		}
		return opt.Ready() && leg.Ready()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhenAllVPassThrough(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	fv := NewReadyFutureV(e, 3.5)
	allocs := e.Stats.CellAllocs
	out := WhenAllV(e, fv, e.ReadyFuture(), e.ReadyFuture())
	if e.Stats.CellAllocs != allocs {
		t.Error("pass-through case allocated")
	}
	if out.c != fv.c {
		t.Error("should return the value future unchanged")
	}
	if out.Value() != 3.5 {
		t.Error("wrong value")
	}
}

func TestWhenAllVBuildsWhenPending(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	fv := NewReadyFutureV(e, 7)
	pending, h := e.NewOpFuture()
	out := WhenAllV(e, fv, pending)
	if out.Ready() {
		t.Fatal("ready early")
	}
	h.Fulfill()
	if !out.Ready() || out.Value() != 7 {
		t.Fatalf("value not propagated: ready=%v", out.Ready())
	}
}

func TestWhenAllVPendingValue(t *testing.T) {
	for _, ver := range Versions() {
		e := testEngine(ver)
		fv, vp, h := NewFutureV[int](e)
		out := WhenAllV(e, fv, e.ReadyFuture())
		if ver.WhenAllShortCircuit {
			// All value-less inputs ready ⇒ pass-through even though the
			// value input is pending.
			if out.c != fv.c {
				t.Errorf("%s: expected pass-through", ver.Name)
			}
		}
		if out.Ready() {
			t.Fatalf("%s: ready early", ver.Name)
		}
		*vp = 11
		h.Fulfill()
		if !out.Ready() || out.Value() != 11 {
			t.Errorf("%s: value lost", ver.Name)
		}
	}
}

// TestConjoiningLoopCost reproduces Fig. 1's cost asymmetry: a conjoining
// loop over eagerly-completed (ready) futures allocates nothing with the
// short-circuit, and one graph node per iteration without it.
func TestConjoiningLoopCost(t *testing.T) {
	run := func(ver Version) (cells int64) {
		e := testEngine(ver)
		f := e.MakeFuture()
		for i := 0; i < 100; i++ {
			f = e.WhenAll(f, e.ReadyFuture())
		}
		if !f.Ready() {
			t.Fatalf("%s: conjunction of ready futures not ready", ver.Name)
		}
		return e.Stats.CellAllocs
	}
	if got := run(Eager2021_3_6); got != 0 {
		t.Errorf("optimized loop allocated %d cells, want 0", got)
	}
	if got := run(Legacy2021_3_0); got < 100 {
		t.Errorf("legacy loop allocated %d cells, want >= 100", got)
	}
}
