package core

import "time"

// This file is the unified operation-lifecycle pipeline (one
// initiation→completion path for every operation family). Before it, each
// family — RMA, atomics, RPC, VIS, collectives — re-implemented the
// paper's §III-A protocol by hand: perform the locality query, branch on
// eager vs deferred notification, wire the substrate acknowledgment back
// into futures/promises. Now a family describes one operation as an
// OpDesc (or OpDescV for value-producing forms) and hands it to
// Engine.Initiate / InitiateV: the pipeline makes the eager-vs-deferred
// decision in exactly one place (Engine.eager), drives data movement
// through conduit-agnostic callbacks, and routes notification to the
// future / promise / callback / into-memory sinks uniformly.
//
// Every phase transition is counted per operation family (OpStats) and
// optionally observed by a PhaseHook — the runtime's op-level
// observability. The counters are plain array increments and the hook is
// nil by default, so the instrumentation adds no allocation and no
// indirect call to the eager fast path.

// OpKind identifies an operation family in the unified pipeline.
type OpKind uint8

const (
	// OpRMA is contiguous one-sided RMA (Rput/Rget and the bulk forms).
	OpRMA OpKind = iota
	// OpAtomic is the remote atomic family (apply, fetch, fetch-into,
	// fetch-promise, in every atomic domain).
	OpAtomic
	// OpRPC is the remote-procedure family (closure RPC, wire RPC,
	// fire-and-forget).
	OpRPC
	// OpVIS is vector/indexed/strided RMA (multi-fragment operations).
	OpVIS
	// OpColl is the collective family (barrier, broadcast, exchange —
	// world and team).
	OpColl

	// NumOpKinds bounds the OpKind space.
	NumOpKinds
)

// String names the operation family.
func (k OpKind) String() string {
	switch k {
	case OpRMA:
		return "rma"
	case OpAtomic:
		return "atomic"
	case OpRPC:
		return "rpc"
	case OpVIS:
		return "vis"
	case OpColl:
		return "coll"
	default:
		return "op(?)"
	}
}

// Phase identifies one stage of an operation's lifecycle.
type Phase uint8

const (
	// PhaseInitiated counts every operation entering the pipeline.
	PhaseInitiated Phase = iota
	// PhaseEagerCompleted counts notifications delivered eagerly at
	// initiation (data movement completed synchronously). An operation
	// with no completion requests counts one eager completion for the
	// operation itself.
	PhaseEagerCompleted
	// PhaseDeferredQueued counts notifications routed through the
	// deferred-notification (or LPC) queue at initiation.
	PhaseDeferredQueued
	// PhaseWireAcked counts asynchronous operations whose completion was
	// fired by the substrate acknowledgment from inside the progress
	// engine (the off-node path; self-RPCs count here too, their
	// completion being likewise delivered by the progress engine).
	PhaseWireAcked
	// PhaseFailed counts operations whose notifications resolved with an
	// error instead of a value: deadline expiry, peer death, remote
	// handler panic. An operation books either wire-acked or failed, never
	// both.
	PhaseFailed

	// NumPhases bounds the Phase space.
	NumPhases
)

// String names the phase as in the design document's phase diagram.
func (p Phase) String() string {
	switch p {
	case PhaseInitiated:
		return "initiated"
	case PhaseEagerCompleted:
		return "eager-completed"
	case PhaseDeferredQueued:
		return "deferred-queued"
	case PhaseWireAcked:
		return "wire-acked"
	case PhaseFailed:
		return "failed"
	default:
		return "phase(?)"
	}
}

// OpStats is the per-family × per-phase counter matrix maintained by the
// pipeline. Index as stats[kind][phase].
type OpStats [NumOpKinds][NumPhases]int64

// Of returns the counter for one family and phase.
func (s *OpStats) Of(k OpKind, p Phase) int64 { return s[k][p] }

// Add accumulates o into s (aggregation across ranks).
func (s *OpStats) Add(o *OpStats) {
	for k := range s {
		for p := range s[k] {
			s[k][p] += o[k][p]
		}
	}
}

// PhaseHook observes pipeline phase transitions. Installed via
// Engine.SetPhaseHook; nil (the default) disables the callback entirely.
// The hook runs on the engine's goroutine and must not block.
//
// elapsedNanos is the time from the operation's initiation to this
// transition, when the pipeline can attribute one: completion phases
// (eager-completed, deferred-queued, wire-acked, failed) carry the
// initiation-to-now latency; the initiated phase itself, and transitions
// with no initiation timestamp (deadline sweeps against recycled state,
// the compatibility DeliverSync entry), report zero. Timestamps are
// captured only while a hook is installed — the nil-hook pipeline reads
// no clock — so the first transitions after installing a hook may still
// report zero.
type PhaseHook func(k OpKind, p Phase, elapsedNanos int64)

// SetPhaseHook installs (or, with nil, removes) the per-phase
// instrumentation hook.
func (e *Engine) SetPhaseHook(fn PhaseHook) { e.hook = fn }

// OpStats returns a snapshot of the pipeline's per-family phase counters.
func (e *Engine) OpStats() OpStats { return e.ops }

// phase records one phase transition: a counter bump, plus the hook when
// one is installed. Transitions without a latency to attribute report
// zero elapsed time.
func (e *Engine) phase(k OpKind, p Phase) {
	e.ops[k][p]++
	if e.hook != nil {
		e.hook(k, p, 0)
	}
}

// phaseSince records a phase transition carrying the latency since t0
// (an initiation timestamp from hookT0; zero means "unknown", and the
// hook then sees zero elapsed). The clock is read only when a hook is
// installed, keeping the nil-hook path free of time syscalls.
func (e *Engine) phaseSince(k OpKind, p Phase, t0 int64) {
	e.ops[k][p]++
	if e.hook != nil {
		var el int64
		if t0 > 0 {
			el = time.Now().UnixNano() - t0
		}
		e.hook(k, p, el)
	}
}

// hookT0 captures an initiation timestamp for latency attribution — but
// only when a phase hook is installed. The nil-hook fast path pays one
// predictable branch and reads no clock, preserving the eager path's
// cost model.
func (e *Engine) hookT0() int64 {
	if e.hook == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// OpDesc describes one value-less operation to the pipeline: which family
// it belongs to, whether its data movement can complete synchronously at
// initiation (the locality query's answer), and the data-movement
// callbacks — exactly one of which the pipeline invokes.
//
// The completion-request set is passed to Initiate separately rather than
// carried in the descriptor: escape analysis is not field-sensitive for
// structs, and the cx set's content genuinely escapes on the deferred
// path, so a Cxs field would drag every closure in the descriptor (and
// their by-reference captures) to the heap — one allocation per eager op.
// Keeping the descriptor closures-and-scalars-only keeps the eager fast
// path allocation-free.
type OpDesc struct {
	// Kind is the operation family (counter bucket, policy selector).
	Kind OpKind

	// Local reports that the target is directly addressable, so Move can
	// complete the data movement synchronously during Initiate. This is
	// the outcome of the caller's locality query (free under
	// ConstexprLocal).
	Local bool

	// Frags is the number of asynchronous substrate transfers a remote
	// operation fans out into (VIS operations move one fragment per
	// transfer). The pipeline fires completion after the last fragment's
	// acknowledgment. Zero is treated as one.
	Frags int

	// Move performs the synchronous data movement; invoked iff Local.
	Move func()

	// ShipRemote delivers the composed remote-completion action for a
	// co-located target (the action must still run on the target rank's
	// progress goroutine, so the runtime layer ships it as an active
	// message). Invoked iff Local and a remote completion was requested.
	ShipRemote func(rfn func(ctx any))

	// Inject launches the asynchronous data movement; invoked iff !Local.
	// rfn is the composed remote-completion action (nil if none), to be
	// delivered at the target after the data is applied. done must be
	// invoked once per fragment, on the initiating rank's goroutine from
	// inside the progress engine (the substrate acknowledgment path); a
	// non-nil error reports that the fragment will never complete (peer
	// unreachable, remote failure), resolving the operation's
	// notifications with that error.
	Inject func(rfn func(ctx any), done func(error))

	// Deadline, when positive, bounds the asynchronous operation's
	// completion time: if the substrate has not acknowledged within it,
	// the notifications resolve with ErrDeadlineExceeded. OpDeadline
	// completion requests compose with it (smallest bound wins).
	Deadline time.Duration

	// Peer is the target rank, consulted by the admission hook; meaningful
	// only when Admit is set (the zero value must stay inert — rank 0 is a
	// real rank, so a bare Peer field without the flag would make it the
	// accidental admission target of every descriptor that leaves it
	// unset).
	Peer int

	// Admit subjects this remote injection to the substrate's per-peer
	// credit admission (Engine.SetAdmitter): a refused operation resolves
	// its completions with the admission error (ErrBackpressure,
	// ErrPeerUnreachable) instead of entering the substrate. Ignored for
	// Local descriptors and when no admitter is installed. Both fields are
	// scalars so the descriptor's escape class — and the eager path's
	// zero-allocation guarantee — is unchanged.
	Admit bool
}

// Initiate runs one value-less operation through the unified pipeline and
// returns the futures its completion requests produced. cxs is the
// completion-request set; empty means the operation delivers no
// notifications (blocking collectives, fire-and-forget RPC).
//
// Synchronous (Local) operations deliver completions on the spot: eager
// requests are satisfied immediately (zero allocation — the crux of the
// paper), deferred ones are queued for the next progress call. The
// eager-vs-deferred resolution for every request happens in Engine.eager,
// the single such branch in the codebase. Asynchronous operations
// register their completion state and launch the substrate transfer(s);
// the last acknowledgment fires notification from inside the progress
// engine.
// Initiate destructures the descriptor into the multi-parameter initiate;
// the wrapper is small enough to inline, and the split keeps the
// data-movement closures out of the descriptor's escape class (initiate
// only ever calls them), so the eager fast path allocates nothing.
func (e *Engine) Initiate(d OpDesc, cxs []Cx) Result {
	return e.initiate(d.Kind, d.Local, cxs, d.Frags, d.Deadline, d.Peer, d.Admit,
		d.Move, d.ShipRemote, d.Inject)
}

func (e *Engine) initiate(k OpKind, local bool, cxs []Cx, frags int, dl time.Duration,
	peer int, admit bool,
	move func(), ship func(rfn func(ctx any)), inject func(rfn func(ctx any), done func(error))) Result {
	t0 := e.hookT0()
	e.phase(k, PhaseInitiated)
	if local {
		if kindLegacyAlloc(k) {
			e.LegacyAlloc()
		}
		if move != nil {
			move()
		}
		if ship != nil {
			if rfn := RemoteFn(cxs); rfn != nil {
				ship(rfn)
			}
		}
		if len(cxs) == 0 {
			// Nothing to notify: the operation itself completed eagerly.
			e.phaseSince(k, PhaseEagerCompleted, t0)
			return Result{}
		}
		return e.deliverSync(k, cxs, t0)
	}
	if len(cxs) == 0 {
		// Fire-and-forget: no completion state at all. A refused admission
		// has no sink to deliver to — the failure is booked and the message
		// dropped, exactly as a send toward a down peer is.
		if admit && e.admit != nil && e.admit(peer, dl) != nil {
			e.Stats.OpsFailed++
			e.phaseSince(k, PhaseFailed, t0)
			return Result{}
		}
		inject(nil, nil)
		return Result{}
	}
	// Credit admission happens before any completion state is built: a
	// refused operation never entered the substrate, so its failure is
	// delivered eagerly as a value (the whole point of surfacing overload
	// at initiation instead of blocking inside rel.send).
	if admit && e.admit != nil {
		if err := e.admit(peer, effectiveDeadline(dl, cxs)); err != nil {
			return e.deliverFailed(k, cxs, err, t0)
		}
	}
	res, ac := e.prepareAsync(k, cxs, t0)
	if frags > 1 {
		ac.frags = frags
	}
	// Arm the deadline before injecting: injection may complete the record
	// synchronously (loopback conduits), but then recycle bumps ac.gen and
	// the armed entry is dropped on the next sweep.
	if d := effectiveDeadline(dl, cxs); d > 0 {
		e.armACDeadline(d, ac)
	}
	inject(RemoteFn(cxs), ac.doneFn)
	return res
}

// effectiveDeadline combines the descriptor's bound with any OpDeadline
// completion requests: the smallest positive one wins.
func effectiveDeadline(dl time.Duration, cxs []Cx) time.Duration {
	if d := DeadlineOf(cxs); d > 0 && (dl <= 0 || d < dl) {
		return d
	}
	return dl
}

// OpDescV describes one value-producing operation (get-class RMA,
// fetching atomics, returning RPC). Its notification discipline is a
// single Mode rather than a Cx list — the value-carrying future or
// promise is the only sink.
type OpDescV[T any] struct {
	// Kind is the operation family.
	Kind OpKind

	// Local reports that MoveV can produce the value synchronously.
	Local bool

	// Mode selects eager/deferred/default notification.
	Mode Mode

	// MoveV performs the synchronous operation and returns the produced
	// value; invoked iff Local.
	MoveV func() T

	// Inject launches the asynchronous operation; invoked iff !Local. The
	// produced value must be written through slot before done is invoked
	// (once, from inside the progress engine); a non-nil error reports
	// that the value will never arrive, failing the future/promise.
	Inject func(slot *T, done func(error))

	// Deadline, when positive, bounds the asynchronous operation's
	// completion time (ErrDeadlineExceeded on expiry).
	Deadline time.Duration

	// Peer / Admit mirror OpDesc: with Admit set, the remote injection is
	// subject to the substrate's per-peer credit admission, and a refusal
	// resolves the returned future (or promise) with the admission error.
	Peer  int
	Admit bool
}

// InitiateV runs one value-producing operation through the unified
// pipeline, delivering the value through the returned future.
//
// The eager local path is allocation-free under the ValueInline version
// knob: the already-available value is carried inline in the returned
// future instead of in a heap cell — the pipeline's answer to §III-B's
// "a ready value future must still allocate".
func InitiateV[T any](e *Engine, d OpDescV[T]) FutureV[T] {
	return initiateV(e, d.Kind, d.Local, d.Mode, d.Deadline, d.Peer, d.Admit, d.MoveV, d.Inject)
}

func initiateV[T any](e *Engine, k OpKind, local bool, m Mode, dl time.Duration,
	peer int, admit bool,
	moveV func() T, inject func(slot *T, done func(error))) FutureV[T] {
	t0 := e.hookT0()
	e.phase(k, PhaseInitiated)
	if local {
		if kindLegacyAlloc(k) {
			e.LegacyAlloc()
		}
		v := moveV()
		if e.eager(m) {
			// Value-producing eager completions are booked in the phase
			// matrix only; Stats.EagerDeliveries tracks the cx-based
			// notifications of DeliverSync, as it always has.
			e.phaseSince(k, PhaseEagerCompleted, t0)
			if e.ver.ValueInline {
				return FutureV[T]{e: e, v: v, inline: true}
			}
			return NewReadyFutureV(e, v)
		}
		e.phaseSince(k, PhaseDeferredQueued, t0)
		fut, vp, h := NewFutureV[T](e)
		*vp = v
		h.Defer()
		return fut
	}
	if admit && e.admit != nil {
		if err := e.admit(peer, dl); err != nil {
			e.Stats.OpsFailed++
			e.phaseSince(k, PhaseFailed, t0)
			return FailedFutureV[T](e, err)
		}
	}
	fut, vp, h := NewFutureV[T](e)
	h.kind = k
	h.c.t0 = t0
	if dl > 0 {
		e.armCellDeadline(dl, k, h.c)
	}
	inject(vp, h.CompleteAcked)
	return fut
}

// InitiateVPromise runs one value-producing operation through the unified
// pipeline, delivering the value through the registered promise p.
func InitiateVPromise[T any](e *Engine, d OpDescV[T], p *PromiseV[T]) {
	initiateVPromise(e, d.Kind, d.Local, d.Mode, d.Deadline, d.Peer, d.Admit, d.MoveV, d.Inject, p)
}

func initiateVPromise[T any](e *Engine, k OpKind, local bool, m Mode, dl time.Duration,
	peer int, admit bool,
	moveV func() T, inject func(slot *T, done func(error)), p *PromiseV[T]) {
	t0 := e.hookT0()
	e.phase(k, PhaseInitiated)
	p.Bind()
	if local {
		if kindLegacyAlloc(k) {
			e.LegacyAlloc()
		}
		v := moveV()
		if e.eager(m) {
			e.phaseSince(k, PhaseEagerCompleted, t0)
			p.Deliver(v)
			return
		}
		e.phaseSince(k, PhaseDeferredQueued, t0)
		p.DeliverDeferred(v)
		return
	}
	if admit && e.admit != nil {
		if err := e.admit(peer, dl); err != nil {
			e.Stats.OpsFailed++
			e.phaseSince(k, PhaseFailed, t0)
			p.DeliverError(err)
			return
		}
	}
	inject(p.ValueSlot(), func(err error) {
		if err != nil {
			e.Stats.OpsFailed++
			e.phaseSince(k, PhaseFailed, t0)
			p.DeliverError(err)
			return
		}
		e.phaseSince(k, PhaseWireAcked, t0)
		p.DeliverInPlace()
	})
}

// kindLegacyAlloc reports whether the 2021.3.0 extra operation-state
// allocation applies to this family: the paper attributes it to RMA on
// directly-addressable global pointers (§IV-A), which covers the
// contiguous and VIS forms but not atomics, RPC, or collectives.
func kindLegacyAlloc(k OpKind) bool { return k == OpRMA || k == OpVIS }
