package core

import (
	"strings"
	"testing"
)

// Metric labels and event payloads are built from these String methods;
// a new enum value that falls through to the "?" default would ship
// unlabeled rows. The completeness sweep walks the full enum range so
// adding a constant without a case fails here, not in a dashboard.

func TestOpKindStringsComplete(t *testing.T) {
	seen := make(map[string]OpKind)
	for k := OpKind(0); k < NumOpKinds; k++ {
		s := k.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("OpKind(%d) has no label: %q", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("OpKind(%d) and OpKind(%d) share label %q", k, prev, s)
		}
		seen[s] = k
	}
	if s := NumOpKinds.String(); !strings.Contains(s, "?") {
		t.Errorf("out-of-range OpKind should print the unknown label, got %q", s)
	}
}

func TestPhaseStringsComplete(t *testing.T) {
	seen := make(map[string]Phase)
	for p := Phase(0); p < NumPhases; p++ {
		s := p.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("Phase(%d) has no label: %q", p, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Phase(%d) and Phase(%d) share label %q", p, prev, s)
		}
		seen[s] = p
	}
	if s := NumPhases.String(); !strings.Contains(s, "?") {
		t.Errorf("out-of-range Phase should print the unknown label, got %q", s)
	}
}

func TestEngineStatNamesComplete(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < NumEngineStats; i++ {
		s := EngineStatNames[i]
		if s == "" {
			t.Errorf("engine stat slot %d has no label", i)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("engine stat slots %d and %d share label %q", i, prev, s)
		}
		seen[s] = i
	}
}

// The mirror must reproduce the engine's counters exactly at a flush
// boundary, and FlushMirror must be the no-op it documents without one.
func TestOpsMirrorFlushSnapshot(t *testing.T) {
	e := NewEngine(0, Eager2021_3_6)
	e.FlushMirror() // no mirror installed: must not panic

	var m OpsMirror
	e.SetMirror(&m)
	e.phase(OpRMA, PhaseInitiated)
	e.phase(OpRMA, PhaseEagerCompleted)
	e.phase(OpRPC, PhaseInitiated)
	e.Stats.ProgressCalls = 7
	e.Stats.OpsFailed = 3
	e.FlushMirror()

	ops := m.Ops()
	if got := ops.Of(OpRMA, PhaseInitiated); got != 1 {
		t.Errorf("mirror rma/initiated = %d, want 1", got)
	}
	if got := ops.Of(OpRMA, PhaseEagerCompleted); got != 1 {
		t.Errorf("mirror rma/eager-completed = %d, want 1", got)
	}
	if got := ops.Of(OpRPC, PhaseInitiated); got != 1 {
		t.Errorf("mirror rpc/initiated = %d, want 1", got)
	}
	if got := m.EngineStat(statProgressCalls); got != 7 {
		t.Errorf("mirror progress_calls = %d, want 7", got)
	}
	if got := m.EngineStat(statOpsFailed); got != 3 {
		t.Errorf("mirror ops_failed = %d, want 3", got)
	}
	if got := m.EngineStat(-1); got != 0 {
		t.Errorf("out-of-range stat slot read %d, want 0", got)
	}
}

// The phase hook's latency attribution: completion phases observed
// through a hook carry a non-negative elapsed time, and the hook sees
// every transition the counter matrix books.
func TestPhaseHookElapsed(t *testing.T) {
	e := NewEngine(0, Eager2021_3_6)
	type obs struct {
		k  OpKind
		p  Phase
		el int64
	}
	var got []obs
	e.SetPhaseHook(func(k OpKind, p Phase, el int64) {
		got = append(got, obs{k, p, el})
	})
	done := false
	e.Initiate(OpDesc{Kind: OpAtomic, Local: true, Move: func() { done = true }}, nil)
	if !done {
		t.Fatal("Move did not run")
	}
	if len(got) != 2 {
		t.Fatalf("hook observed %d transitions, want 2 (initiated, eager-completed): %v", len(got), got)
	}
	if got[0].p != PhaseInitiated || got[1].p != PhaseEagerCompleted {
		t.Fatalf("unexpected phase order: %v", got)
	}
	if got[1].el < 0 {
		t.Errorf("eager-completed elapsed = %d, want >= 0", got[1].el)
	}
}

// SetExpiryHook fires once per expired deadline, on the sweeping
// goroutine, with the operation's family.
func TestExpiryHook(t *testing.T) {
	e := NewEngine(0, Eager2021_3_6)
	var expired []OpKind
	e.SetExpiryHook(func(k OpKind) { expired = append(expired, k) })

	fut := InitiateV(e, OpDescV[uint64]{
		Kind:     OpAtomic,
		Deadline: 1, // 1ns: expires on the first sweep
		Inject:   func(slot *uint64, done func(error)) {},
	})
	for !fut.Ready() {
		e.Progress()
	}
	if err := fut.Err(); err == nil {
		t.Fatal("future resolved without the deadline error")
	}
	if len(expired) != 1 || expired[0] != OpAtomic {
		t.Fatalf("expiry hook observed %v, want [atomic]", expired)
	}
}
