package core

import (
	"math/rand"
	"testing"
)

// Model-based randomized testing of the future DAG: build a random graph
// of op futures, Then chains, and WhenAll conjunctions; fire the ops in
// random order; after each firing compare every node's readiness against
// an independently-computed model (a node is ready iff all op futures in
// its dependency cone have fired). Run under every version so the
// short-circuit optimizations are checked for semantic transparency.

// dagNode pairs a runtime future with its model dependency set.
type dagNode struct {
	fut  Future
	deps map[int]bool // op indices this node transitively depends on
}

func buildRandomDAG(e *Engine, rng *rand.Rand, nOps, nDerived int) ([]FulfillHandle, []dagNode) {
	var handles []FulfillHandle
	var nodes []dagNode

	// Leaves: some pending op futures, some already-ready futures.
	for i := 0; i < nOps; i++ {
		if rng.Intn(4) == 0 {
			nodes = append(nodes, dagNode{fut: e.ReadyFuture(), deps: map[int]bool{}})
			continue
		}
		f, h := e.NewOpFuture()
		idx := len(handles)
		handles = append(handles, h)
		nodes = append(nodes, dagNode{fut: f, deps: map[int]bool{idx: true}})
	}

	// Derived nodes: Then wrappers and WhenAll conjunctions over random
	// earlier nodes.
	for i := 0; i < nDerived; i++ {
		switch rng.Intn(3) {
		case 0: // Then
			src := nodes[rng.Intn(len(nodes))]
			child := dagNode{fut: src.fut.Then(func() {}), deps: cloneSet(src.deps)}
			nodes = append(nodes, child)
		case 1: // ThenF chaining to an existing node's future
			src := nodes[rng.Intn(len(nodes))]
			inner := nodes[rng.Intn(len(nodes))]
			child := dagNode{
				fut:  src.fut.ThenF(func() Future { return inner.fut }),
				deps: unionSet(src.deps, inner.deps),
			}
			nodes = append(nodes, child)
		default: // WhenAll over 1-4 nodes
			k := rng.Intn(4) + 1
			ins := make([]Future, k)
			deps := map[int]bool{}
			for j := 0; j < k; j++ {
				src := nodes[rng.Intn(len(nodes))]
				ins[j] = src.fut
				for d := range src.deps {
					deps[d] = true
				}
			}
			nodes = append(nodes, dagNode{fut: e.WhenAll(ins...), deps: deps})
		}
	}
	return handles, nodes
}

func cloneSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func unionSet(a, b map[int]bool) map[int]bool {
	out := cloneSet(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func TestRandomDAGReadinessModel(t *testing.T) {
	for _, ver := range Versions() {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e := testEngine(ver)
			handles, nodes := buildRandomDAG(e, rng, 8, 25)

			fired := map[int]bool{}
			check := func(stage string) {
				for ni, n := range nodes {
					want := true
					for d := range n.deps {
						if !fired[d] {
							want = false
							break
						}
					}
					// ThenF semantics caveat: a ThenF child whose source
					// was pending at construction resolves its inner
					// dependency only when the callback runs, which is
					// correct but means readiness still matches the cone
					// model — both source and inner must be fired.
					if got := n.fut.Ready(); got != want {
						t.Fatalf("%s seed %d %s: node %d ready=%v want %v (deps %v, fired %v)",
							ver.Name, seed, stage, ni, got, want, n.deps, fired)
					}
				}
			}
			check("initial")

			// Fire ops in random order, checking the whole graph after
			// each.
			order := rng.Perm(len(handles))
			for _, op := range order {
				handles[op].Fulfill()
				fired[op] = true
				check("after fire")
			}
			// Everything must be ready at the end.
			for ni, n := range nodes {
				if !n.fut.Ready() {
					t.Fatalf("%s seed %d: node %d not ready at end", ver.Name, seed, ni)
				}
			}
		}
	}
}

// TestRandomDAGDeferredDelivery: the same graphs, but ops resolve through
// the deferred queue — nothing may become ready before Progress, and one
// Progress call delivers everything queued.
func TestRandomDAGDeferredDelivery(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		e := testEngine(Defer2021_3_6)
		handles, nodes := buildRandomDAG(e, rng, 10, 20)

		// Record which nodes are ready before (some are, via ready
		// leaves and short-circuits over them).
		before := make([]bool, len(nodes))
		for i, n := range nodes {
			before[i] = n.fut.Ready()
		}
		for _, h := range handles {
			h.Defer()
		}
		// Deferred: still nothing new ready.
		for i, n := range nodes {
			if n.fut.Ready() != before[i] {
				t.Fatalf("seed %d: node %d changed readiness before progress", seed, i)
			}
		}
		e.Progress()
		for i, n := range nodes {
			if !n.fut.Ready() {
				t.Fatalf("seed %d: node %d not ready after progress", seed, i)
			}
		}
	}
}
