package core

import (
	"runtime"
	"time"
)

// Engine is one rank's progress engine: the deferred-notification queue,
// the local-procedure-call queue, the substrate poll hook, and the shared
// ready-future cell. All Engine state is owned by the rank's goroutine.
type Engine struct {
	rank int
	ver  Version

	poller func() int // substrate poll (AM dispatch); may be nil in tests
	parker func()     // substrate idle wait; may be nil in tests

	// idleStreak counts consecutive idle progress steps, driving the
	// spin-then-park policy in Idle.
	idleStreak int

	deferq  []*cell  // notifications awaiting the next progress call
	deferq2 []*cell  // double buffer for drain
	lpcq    []func() // local procedure calls awaiting the next progress call
	lpcq2   []func()

	readyCell *cell // shared pre-allocated ready cell (§III-B)

	inProgress bool

	// legacyScratch prevents the compiler from eliding the
	// LegacyExtraAlloc allocation.
	legacyScratch *legacyOpState

	// ops is the unified pipeline's per-family × per-phase counter matrix
	// and hook the optional per-phase observer (op.go).
	ops  OpStats
	hook PhaseHook

	// expiry observes per-op deadline expiries (SetExpiryHook) — the
	// operations plane's seam for deadline-expired events. nil by default.
	expiry func(k OpKind)

	// mirror, when set, is the race-safe shadow of ops and Stats that
	// off-goroutine observers (the metrics endpoint) read. Progress
	// flushes it every mirrorFlushEvery steps; World.Run flushes once more
	// when the rank function returns, so post-run reads are exact.
	mirror     *OpsMirror
	mirrorTick int

	// acFree recycles AsyncCompletion records: an async operation takes one
	// at initiation and its final substrate acknowledgment returns it, so
	// steady-state off-node traffic allocates no completion state.
	acFree []*AsyncCompletion

	// deadlines holds the armed per-op deadlines, swept by Progress. The
	// list is empty unless an operation requested a deadline, so the
	// common case costs one length check per progress step (no clock
	// read).
	deadlines []dlEntry

	// admit is the substrate's credit-based admission hook (SetAdmitter):
	// consulted before injecting a remote operation whose descriptor
	// requests admission, so a full send window surfaces as a completion
	// value (ErrBackpressure) instead of an unbounded block inside the
	// substrate. nil means always admitted.
	admit func(peer int, maxWait time.Duration) error

	// Stats counts allocation- and queue-level events, so tests can assert
	// the cost model the paper describes (e.g. an eager on-node put
	// allocates no cells and touches no queues).
	Stats Stats
}

// Stats tallies completion-machinery events on one engine.
type Stats struct {
	CellAllocs      int64 // internal promise cells heap-allocated
	DeferQPushes    int64 // notifications routed through the deferred queue
	LPCRuns         int64 // local procedure calls executed
	ProgressCalls   int64
	WhenAllBuilt    int64 // dependency-graph nodes constructed by WhenAll
	WhenAllElided   int64 // WhenAll calls short-circuited (§III-C)
	ReadyHits       int64 // ready futures served from the shared cell
	LegacyAllocs    int64 // extra 2021.3.0-style operation-state allocations
	EagerDeliveries int64 // completions delivered eagerly at initiation

	OpsFailed        int64 // operations resolved with an error
	DeadlinesArmed   int64 // per-op deadlines registered
	DeadlinesExpired int64 // deadlines that fired before completion

	ContinuationsRun   int64 // OpContinue callbacks invoked
	ContinuationPanics int64 // continuation callbacks that panicked (contained)
}

// NewEngine constructs rank's progress engine under the given library
// version.
func NewEngine(rank int, ver Version) *Engine {
	e := &Engine{rank: rank, ver: ver}
	e.readyCell = &cell{eng: e, ready: true}
	return e
}

// Rank returns the rank this engine belongs to.
func (e *Engine) Rank() int { return e.rank }

// Version returns the library version the engine is emulating.
func (e *Engine) Version() Version { return e.ver }

// SetPoller installs the substrate poll hook, called at the start of every
// progress step to dispatch inbound active messages.
func (e *Engine) SetPoller(fn func() int) { e.poller = fn }

// SetParker installs the substrate idle-wait hook, used by wait loops
// after an idle Progress to relinquish the CPU until new messages may
// arrive.
func (e *Engine) SetParker(fn func()) { e.parker = fn }

// SetAdmitter installs the substrate's per-peer admission hook, consulted
// by Initiate/InitiateV for remote descriptors that request admission
// (OpDesc.Admit). fn receives the target rank and the operation's
// deadline budget (zero when it has none; the substrate applies its own
// policy bound) and returns nil to admit, or the error — typically
// ErrBackpressure or ErrPeerUnreachable — to deliver through the
// operation's completions. nil removes the hook.
func (e *Engine) SetAdmitter(fn func(peer int, maxWait time.Duration) error) { e.admit = fn }

// SetExpiryHook installs (or, with nil, removes) the deadline-expiry
// observer: fn runs on the engine's goroutine, inside the progress
// engine's deadline sweep, once per expired operation. It must not
// block; the runtime layer uses it to publish deadline-expired events.
func (e *Engine) SetExpiryHook(fn func(k OpKind)) { e.expiry = fn }

// SetMirror installs the engine's race-safe counter shadow (nil
// removes it). Install before the rank goroutine starts: the field is
// read by Progress on the engine's goroutine.
func (e *Engine) SetMirror(m *OpsMirror) { e.mirror = m }

// FlushMirror publishes the engine's current counters into its mirror
// (a no-op without one). Must run on the engine's goroutine.
func (e *Engine) FlushMirror() {
	if e.mirror != nil {
		e.mirror.flush(e)
	}
}

// mirrorFlushEvery is how many Progress steps elapse between mirror
// flushes: ~190 atomic stores every 64 steps keeps the mirror fresh at
// sub-millisecond staleness under load while costing the progress path
// a counter increment per step.
const mirrorFlushEvery = 64

// idleSpin is the number of consecutive idle progress steps a waiter
// yields (cheap, low-latency) before parking on the substrate (cheap for
// long waits). Ping-pong latency paths stay in the yield regime; barrier
// waiters with nothing to do park.
const idleSpin = 128

// Idle relinquishes the CPU after an idle Progress step: a scheduler
// yield while the idle streak is short, the substrate parker once the
// wait looks long.
func (e *Engine) Idle() {
	e.idleStreak++
	if e.parker == nil || e.idleStreak < idleSpin {
		runtime.Gosched()
		return
	}
	e.parker()
}

// Progress runs one step of the progress engine: poll the substrate, fire
// all queued deferred notifications, and run queued LPCs. It returns the
// number of events processed (0 means the step was idle, so callers may
// yield).
//
// Progress may be re-entered from a callback (e.g. a Then body that Waits);
// the nested call polls the substrate but leaves queue draining to the
// outer invocation, mirroring UPC++'s restricted-context rules.
func (e *Engine) Progress() int {
	e.Stats.ProgressCalls++
	n := 0
	if e.poller != nil {
		n += e.poller()
	}
	if n > 0 {
		e.idleStreak = 0
	}
	if e.inProgress {
		return n
	}
	e.inProgress = true
	defer func() { e.inProgress = false }()

	if len(e.deadlines) > 0 {
		n += e.sweepDeadlines()
	}

	// Drain the deferred-notification queue. Firing a notification runs
	// user callbacks, which may initiate new operations and push new
	// deferred notifications; those fire in the same call (they are being
	// delivered "inside the progress engine", which the deferred contract
	// permits), so drain to a fixpoint using a double buffer.
	for len(e.deferq) > 0 {
		q := e.deferq
		e.deferq = e.deferq2[:0]
		e.deferq2 = q // will be reused next swap
		for _, c := range q {
			c.fulfill(1)
		}
		n += len(q)
		clearCells(q)
	}
	for len(e.lpcq) > 0 {
		q := e.lpcq
		e.lpcq = e.lpcq2[:0]
		e.lpcq2 = q
		for _, fn := range q {
			fn()
		}
		n += len(q)
		e.Stats.LPCRuns += int64(len(q))
		clearFns(q)
	}
	if e.mirror != nil {
		e.mirrorTick++
		if e.mirrorTick >= mirrorFlushEvery {
			e.mirrorTick = 0
			e.mirror.flush(e)
		}
	}
	return n
}

func clearCells(q []*cell) {
	for i := range q {
		q[i] = nil
	}
}

func clearFns(q []func()) {
	for i := range q {
		q[i] = nil
	}
}

// dlEntry is one armed per-op deadline: the absolute expiry instant plus
// the completion state it guards — a cell (value-producing and promise
// forms) or an AsyncCompletion record (cx-based forms). AC records are
// recycled, so the entry captures the generation it armed against and is
// dropped on mismatch.
type dlEntry struct {
	at   int64 // expiry, UnixNano
	kind OpKind
	c    *cell
	ac   *AsyncCompletion
	gen  uint32
}

// armCellDeadline registers a deadline that fails c with
// ErrDeadlineExceeded if it has not resolved within d.
func (e *Engine) armCellDeadline(d time.Duration, k OpKind, c *cell) {
	if d <= 0 {
		return
	}
	e.Stats.DeadlinesArmed++
	e.deadlines = append(e.deadlines, dlEntry{at: time.Now().Add(d).UnixNano(), kind: k, c: c})
}

// armACDeadline registers a deadline that fails ac's notifications if the
// final substrate acknowledgment has not arrived within d.
func (e *Engine) armACDeadline(d time.Duration, ac *AsyncCompletion) {
	if d <= 0 {
		return
	}
	e.Stats.DeadlinesArmed++
	e.deadlines = append(e.deadlines, dlEntry{
		at: time.Now().Add(d).UnixNano(), kind: ac.kind, ac: ac, gen: ac.gen,
	})
}

// sweepDeadlines expires overdue deadlines and compacts the list,
// returning the number fired. Entries whose operation already completed
// (ready cell, recycled or failed AC record) are dropped for free.
func (e *Engine) sweepDeadlines() int {
	now := time.Now().UnixNano()
	n := 0
	kept := e.deadlines[:0]
	for _, dl := range e.deadlines {
		switch {
		case dl.c != nil && dl.c.ready:
			// Resolved (either way) before the deadline: drop.
		case dl.ac != nil && (dl.ac.gen != dl.gen || dl.ac.failed):
			// Record recycled (op completed) or already failed: drop.
		case dl.at <= now:
			e.Stats.DeadlinesExpired++
			n++
			if e.expiry != nil {
				e.expiry(dl.kind)
			}
			if dl.c != nil {
				e.Stats.OpsFailed++
				e.phase(dl.kind, PhaseFailed)
				dl.c.fail(ErrDeadlineExceeded)
			} else {
				dl.ac.expire(ErrDeadlineExceeded)
			}
		default:
			kept = append(kept, dl)
		}
	}
	for i := len(kept); i < len(e.deadlines); i++ {
		e.deadlines[i] = dlEntry{}
	}
	e.deadlines = kept
	return n
}

// FailedFuture returns a ready value-less future carrying err — the eager
// form of failure notification.
func (e *Engine) FailedFuture(err error) Future {
	c := e.newCell()
	c.deps = 0
	c.ready = true
	c.err = err
	return Future{c}
}

// deferFulfill schedules one dependency resolution of c for the next
// progress call (the legacy deferred-notification path).
func (e *Engine) deferFulfill(c *cell) {
	e.Stats.DeferQPushes++
	e.deferq = append(e.deferq, c)
}

// EnqueueLPC schedules fn to run at the next progress call on this rank.
func (e *Engine) EnqueueLPC(fn func()) {
	e.lpcq = append(e.lpcq, fn)
}

// ReadyFuture returns a ready value-less future. Under the ReadySingleton
// optimization this is the engine's shared pre-allocated cell and costs no
// allocation; otherwise a fresh ready cell is allocated, reproducing the
// 2021.3.0 cost model.
func (e *Engine) ReadyFuture() Future {
	if e.ver.ReadySingleton {
		e.Stats.ReadyHits++
		return Future{e.readyCell}
	}
	return Future{e.newReadyCell()}
}

// MakeFuture constructs a ready value-less future (the user-visible
// make_future idiom that seeds conjoining loops).
func (e *Engine) MakeFuture() Future { return e.ReadyFuture() }

// NewOpFuture allocates a non-ready future for an asynchronous operation
// and returns it with its fulfillment handle.
func (e *Engine) NewOpFuture() (Future, FulfillHandle) {
	c := e.newCell()
	return Future{c}, FulfillHandle{c: c}
}

// legacyOpState stands in for the operation-state object that UPC++
// 2021.3.0 heap-allocated even for directly-addressable RMA (§IV-A).
type legacyOpState struct {
	_ [4]uint64
}

// LegacyAlloc performs the extra 2021.3.0-style allocation when the
// emulated version calls for it.
func (e *Engine) LegacyAlloc() {
	if e.ver.LegacyExtraAlloc {
		e.Stats.LegacyAllocs++
		e.legacyScratch = &legacyOpState{}
	}
}

// Quiesced reports whether the engine has no queued work (used by tests
// and orderly shutdown).
func (e *Engine) Quiesced() bool {
	return len(e.deferq) == 0 && len(e.lpcq) == 0
}
