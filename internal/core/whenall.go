package core

// WhenAll conjoins value-less futures into a single future that readies
// when all inputs are ready (the when_all combinator of §II-A).
//
// Under Version.WhenAllShortCircuit the §III-C optimizations apply:
//
//   - if every input is ready, the result is a ready future (the shared
//     cell, costing nothing);
//   - if exactly one input is non-ready, that input is returned directly —
//     it is the only contributor to the result's readiness;
//   - otherwise a dependency-graph node is built.
//
// Without the optimization (legacy behaviour) every call constructs a
// graph node, which is what makes future-conjoining loops so expensive
// under deferred notification (Fig. 1 of the paper).
// Error propagation short-circuits in every version: an already-failed
// input yields its failure immediately (no graph node), and a pending
// input that later fails fails the conjunction on the spot — the when_all
// analogue of first-error-wins. Remaining inputs resolving afterwards are
// absorbed silently.
func (e *Engine) WhenAll(fs ...Future) Future {
	for _, f := range fs {
		f.check()
		if f.c.ready && f.c.err != nil {
			return Future{f.c}
		}
	}
	if e.ver.WhenAllShortCircuit {
		nonReady := -1
		n := 0
		for i, f := range fs {
			if !f.c.ready {
				n++
				nonReady = i
			}
		}
		switch n {
		case 0:
			e.Stats.WhenAllElided++
			return e.ReadyFuture()
		case 1:
			e.Stats.WhenAllElided++
			return fs[nonReady]
		}
	}
	e.Stats.WhenAllBuilt++
	conj := e.newCell()
	conj.deps = int32(len(fs)) // replaces the construction dependency
	if conj.deps == 0 {
		conj.ready = true
		return Future{conj}
	}
	for _, f := range fs {
		src := f.c
		src.onReady(func() {
			if src.err != nil {
				conj.fail(src.err)
				return
			}
			conj.fulfill(1)
		})
	}
	return Future{conj}
}

// WhenAllV conjoins one value-carrying future with any number of
// value-less futures, producing a future carrying the same value — the
// §III-C case "all the values come from a single input future". Under the
// short-circuit optimization, if every value-less input is ready the
// value-carrying input is returned unchanged (no allocation, no graph).
func WhenAllV[T any](e *Engine, fv FutureV[T], fs ...Future) FutureV[T] {
	fv.check()
	if !fv.inline && fv.c.ready && fv.c.err != nil {
		return fv
	}
	for _, f := range fs {
		f.check()
		if f.c.ready && f.c.err != nil {
			return FailedFutureV[T](e, f.c.err)
		}
	}
	if e.ver.WhenAllShortCircuit {
		allReady := true
		for _, f := range fs {
			if !f.c.ready {
				allReady = false
				break
			}
		}
		if allReady {
			e.Stats.WhenAllElided++
			return fv
		}
	}
	e.Stats.WhenAllBuilt++
	e.Stats.CellAllocs++
	conj := &cellV[T]{cell: cell{eng: e, deps: int32(1 + len(fs))}}
	if fv.inline {
		conj.v = fv.v
		conj.fulfill(1)
	} else {
		src := fv.c
		fv.c.onReady(func() {
			if src.err != nil {
				conj.fail(src.err)
				return
			}
			conj.v = src.v
			conj.fulfill(1)
		})
	}
	for _, f := range fs {
		src := f.c
		src.onReady(func() {
			if src.err != nil {
				conj.fail(src.err)
				return
			}
			conj.fulfill(1)
		})
	}
	return FutureV[T]{c: conj}
}
