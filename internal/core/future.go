package core

// cell is the internal promise cell backing futures and promises: a
// countdown of outstanding dependencies, a readiness flag, and the list of
// callbacks to cascade when the count drains. Every future references a
// cell; constructing a non-ready future therefore costs one heap
// allocation — the cost the paper's eager notification removes from the
// critical path of synchronously-completed operations.
//
// A cell is owned by the rank that allocated it: all mutation happens on
// that rank's goroutine (initiation, progress, or callbacks run from
// either), so no synchronization is needed — mirroring UPC++'s
// single-persona execution model.
type cell struct {
	eng   *Engine
	deps  int32
	ready bool
	// err is the failure-as-a-value slot: a cell that readies through fail
	// carries the operation's error instead of a successful completion.
	// Once a cell is ready the err is immutable, so consumers (Err, Then
	// chains, WhenAll) read it without further bookkeeping.
	err error
	cbs []func()
	// t0 is the operation's initiation timestamp for latency attribution
	// by the phase hook (set by initiateV while a hook is installed; zero
	// otherwise).
	t0 int64
}

// newCell allocates a cell with one outstanding dependency.
func (e *Engine) newCell() *cell {
	e.Stats.CellAllocs++
	return &cell{eng: e, deps: 1}
}

// newReadyCell allocates an already-ready cell (used when the ready-future
// singleton optimization is disabled).
func (e *Engine) newReadyCell() *cell {
	e.Stats.CellAllocs++
	return &cell{eng: e, ready: true}
}

// fulfill resolves n dependencies; when the count drains to zero the cell
// becomes ready and its callbacks run immediately (the caller is by
// construction either inside the progress engine or at an eager-completion
// initiation point).
func (c *cell) fulfill(n int32) {
	if c.ready {
		if c.err != nil {
			// The cell was short-circuited by fail (deadline expiry, peer
			// death): the substrate's late acknowledgment is expected and
			// must be dropped, not treated as over-fulfillment.
			return
		}
		panic("gupcxx: fulfill on ready future/promise cell")
	}
	c.deps -= n
	if c.deps < 0 {
		panic("gupcxx: dependency count underflow (over-fulfilled promise)")
	}
	if c.deps > 0 {
		return
	}
	c.ready = true
	cbs := c.cbs
	c.cbs = nil
	for _, cb := range cbs {
		cb()
	}
}

// fail resolves the cell immediately with err, regardless of outstanding
// dependencies: the cell becomes ready carrying the error and its
// callbacks run (each callback decides whether to propagate or act). A
// second fail, or a fail after successful fulfillment, is a no-op — the
// first resolution wins. Like fulfill, it must run on the owning rank's
// goroutine.
func (c *cell) fail(err error) {
	if c.ready {
		return
	}
	c.err = err
	c.ready = true
	c.deps = 0
	cbs := c.cbs
	c.cbs = nil
	for _, cb := range cbs {
		cb()
	}
}

// require adds n outstanding dependencies to a not-yet-ready cell.
func (c *cell) require(n int32) {
	if c.ready {
		panic("gupcxx: require on ready promise cell")
	}
	c.deps += n
}

// onReady arranges for fn to run when the cell is ready; if it already is,
// fn runs immediately. Ready cells are never mutated, so the shared ready
// singleton can be handed out freely.
func (c *cell) onReady(fn func()) {
	if c.ready {
		fn()
		return
	}
	c.cbs = append(c.cbs, fn)
}

// Future is the consumer side of a value-less asynchronous result. The
// zero Future is invalid; futures are obtained from communication
// operations, promises, MakeFuture, or WhenAll.
type Future struct {
	c *cell
}

// Valid reports whether the future was actually produced by an operation
// (a completion that was not requested yields an invalid Future).
func (f Future) Valid() bool { return f.c != nil }

// Ready reports whether the future's operation has completed and the
// notification has been delivered.
func (f Future) Ready() bool {
	f.check()
	return f.c.ready
}

func (f Future) check() {
	if f.c == nil {
		panic("gupcxx: use of invalid Future (completion was not requested)")
	}
}

// Err returns the failure the future resolved with, or nil while the
// future is pending or after a successful completion. A non-nil Err
// implies Ready.
func (f Future) Err() error {
	f.check()
	return f.c.err
}

// Wait spins the owning rank's progress engine until the future is ready.
// A future that resolves with a failure is ready too; use WaitErr (or Err
// after Wait) to observe it.
func (f Future) Wait() {
	f.check()
	c := f.c
	for !c.ready {
		if c.eng.Progress() == 0 {
			c.eng.Idle()
		}
	}
}

// WaitErr waits for the future to resolve and returns its failure, or nil
// on success.
func (f Future) WaitErr() error {
	f.Wait()
	return f.c.err
}

// Then registers fn to run when the future becomes ready and returns a
// future representing fn's completion. If the receiver is already ready —
// which can only happen through eager notification or explicit ready-future
// construction — fn runs synchronously during Then, per the paper's relaxed
// semantics.
// A failed receiver skips fn and propagates the error to the returned
// future, so a Then chain behaves like sequential code after a thrown
// error.
func (f Future) Then(fn func()) Future {
	f.check()
	c := f.c
	if c.ready {
		if c.err != nil {
			return Future{c}
		}
		fn()
		return c.eng.ReadyFuture()
	}
	child := c.eng.newCell()
	c.cbs = append(c.cbs, func() {
		if c.err != nil {
			child.fail(c.err)
			return
		}
		fn()
		child.fulfill(1)
	})
	return Future{child}
}

// ThenF chains an asynchronous continuation: fn runs when the receiver
// readies and itself returns a future; the result readies when fn's
// future does. This is the paper's §II chaining idiom
// (rget(...).then(cb-returning-rput-future)). A ready receiver runs fn
// synchronously and returns fn's future directly.
func (f Future) ThenF(fn func() Future) Future {
	f.check()
	c := f.c
	if c.ready {
		if c.err != nil {
			return Future{c}
		}
		inner := fn()
		inner.check()
		return inner
	}
	child := c.eng.newCell()
	c.cbs = append(c.cbs, func() {
		if c.err != nil {
			child.fail(c.err)
			return
		}
		inner := fn()
		inner.check()
		inner.c.onReady(func() {
			if inner.c.err != nil {
				child.fail(inner.c.err)
				return
			}
			child.fulfill(1)
		})
	})
	return Future{child}
}

// cellV is a cell carrying a single value of type T. Ready value-carrying
// futures cannot use the shared singleton — the value must live somewhere —
// so a cell-backed one always costs an allocation (§III-B), which is what
// motivates the paper's fetch-to-memory atomics. The unified pipeline
// additionally sidesteps the cell for eagerly-completed operations by
// storing the value inline in the FutureV struct (ValueInline knob).
type cellV[T any] struct {
	cell
	v T
}

// FutureV is the consumer side of an asynchronous result carrying one value
// of type T.
//
// A FutureV has two representations. The cell-backed one (c != nil) is the
// general case: the value lives in a heap cellV that the producer fills.
// The inline one carries an already-available value in the future struct
// itself — produced by the unified pipeline for eagerly-completed
// value-producing operations under the ValueInline version knob, removing
// the per-call heap cell that §III-B says a ready value future must
// otherwise pay for.
type FutureV[T any] struct {
	c *cellV[T]

	// Inline representation: e is the owning engine (for Then/Drop
	// derivations), v the ready value.
	e      *Engine
	v      T
	inline bool
}

// Valid reports whether the future was produced by an operation.
func (f FutureV[T]) Valid() bool { return f.c != nil || f.inline }

// Ready reports whether the value is available.
func (f FutureV[T]) Ready() bool {
	f.check()
	return f.inline || f.c.ready
}

func (f FutureV[T]) check() {
	if f.c == nil && !f.inline {
		panic("gupcxx: use of invalid FutureV (completion was not requested)")
	}
}

// Err returns the failure the future resolved with, or nil while pending
// or after success. Inline futures are by construction successful.
func (f FutureV[T]) Err() error {
	f.check()
	if f.inline {
		return nil
	}
	return f.c.err
}

// Wait spins the progress engine until the value is available and returns
// it. A failed future is ready with the zero value; use WaitErr to
// distinguish.
func (f FutureV[T]) Wait() T {
	f.check()
	if f.inline {
		return f.v
	}
	c := f.c
	for !c.ready {
		if c.eng.Progress() == 0 {
			c.eng.Idle()
		}
	}
	return c.v
}

// WaitErr waits for the future to resolve and returns the value together
// with the failure (zero value and non-nil error if the operation failed).
func (f FutureV[T]) WaitErr() (T, error) {
	v := f.Wait()
	if f.inline {
		return v, nil
	}
	return v, f.c.err
}

// Value returns the result of a ready future; it panics if the future is
// not ready.
func (f FutureV[T]) Value() T {
	f.check()
	if f.inline {
		return f.v
	}
	if !f.c.ready {
		panic("gupcxx: Value on non-ready future")
	}
	return f.c.v
}

// Then registers fn to receive the value when ready, returning a future for
// fn's completion. A ready receiver runs fn synchronously (eager
// semantics).
// A failed receiver skips fn and propagates the error.
func (f FutureV[T]) Then(fn func(T)) Future {
	f.check()
	if f.inline {
		fn(f.v)
		return f.e.ReadyFuture()
	}
	c := f.c
	if c.ready {
		if c.err != nil {
			return Future{&c.cell}
		}
		fn(c.v)
		return c.eng.ReadyFuture()
	}
	child := c.eng.newCell()
	c.cbs = append(c.cbs, func() {
		if c.err != nil {
			child.fail(c.err)
			return
		}
		fn(c.v)
		child.fulfill(1)
	})
	return Future{child}
}

// ThenF chains an asynchronous continuation receiving the value; the
// result readies when the future fn returns does. See Future.ThenF.
func (f FutureV[T]) ThenF(fn func(T) Future) Future {
	f.check()
	if f.inline {
		inner := fn(f.v)
		inner.check()
		return inner
	}
	if f.c.ready {
		if f.c.err != nil {
			return Future{&f.c.cell}
		}
		inner := fn(f.c.v)
		inner.check()
		return inner
	}
	child := f.c.eng.newCell()
	c := f.c
	c.cbs = append(c.cbs, func() {
		if c.err != nil {
			child.fail(c.err)
			return
		}
		inner := fn(c.v)
		inner.check()
		inner.c.onReady(func() {
			if inner.c.err != nil {
				child.fail(inner.c.err)
				return
			}
			child.fulfill(1)
		})
	})
	return Future{child}
}

// Drop discards the value, viewing the future as value-less. The returned
// Future shares the receiver's readiness (and propagates its failure).
func (f FutureV[T]) Drop() Future {
	f.check()
	if f.inline {
		return f.e.ReadyFuture()
	}
	c := f.c
	if c.ready {
		if c.err != nil {
			return Future{&c.cell}
		}
		return c.eng.ReadyFuture()
	}
	child := c.eng.newCell()
	c.cbs = append(c.cbs, func() {
		if c.err != nil {
			child.fail(c.err)
			return
		}
		child.fulfill(1)
	})
	return Future{child}
}

// NewFutureV allocates a value-carrying future plus its producer hooks:
// setValue stores the result, and the cell is fulfilled through the
// returned cell handle. Used by the runtime layer for value-producing
// operations; not part of the public API surface.
func NewFutureV[T any](e *Engine) (FutureV[T], *T, FulfillHandle) {
	e.Stats.CellAllocs++
	c := &cellV[T]{cell: cell{eng: e, deps: 1}}
	return FutureV[T]{c: c}, &c.v, FulfillHandle{c: &c.cell}
}

// NewReadyFutureV allocates an already-ready future carrying v.
func NewReadyFutureV[T any](e *Engine, v T) FutureV[T] {
	e.Stats.CellAllocs++
	c := &cellV[T]{cell: cell{eng: e, ready: true}, v: v}
	return FutureV[T]{c: c}
}

// FailedFutureV allocates an already-resolved future carrying err — the
// eager form of failure notification, used when an operation is rejected
// at initiation (e.g. targeting a peer already declared down).
func FailedFutureV[T any](e *Engine, err error) FutureV[T] {
	e.Stats.CellAllocs++
	c := &cellV[T]{cell: cell{eng: e, ready: true, err: err}}
	return FutureV[T]{c: c}
}

// FulfillHandle lets the runtime layer resolve a dependency on an internal
// cell without exposing the cell type.
type FulfillHandle struct {
	c *cell

	// kind attributes the wire-acked phase when the handle completes an
	// asynchronous pipeline operation (set by InitiateV).
	kind OpKind
}

// Valid reports whether the handle references a cell.
func (h FulfillHandle) Valid() bool { return h.c != nil }

// Fulfill resolves one dependency immediately. It must be called on the
// owning rank's goroutine, inside the progress engine or at an eager
// initiation point.
func (h FulfillHandle) Fulfill() { h.c.fulfill(1) }

// Fail resolves the cell immediately with err (a no-op if the cell is
// already resolved).
func (h FulfillHandle) Fail(err error) { h.c.fail(err) }

// FulfillAcked is the pipeline's substrate-acknowledgment completion: it
// books the wire-acked phase for the operation's family, then resolves the
// dependency. Like Fulfill, it must run inside the progress engine.
func (h FulfillHandle) FulfillAcked() {
	h.c.eng.phaseSince(h.kind, PhaseWireAcked, h.c.t0)
	h.c.fulfill(1)
}

// CompleteAcked is the error-carrying form of FulfillAcked, the done
// callback the pipeline hands the substrate for value-producing
// operations: a nil err books the wire-acked phase and fulfills; a non-nil
// err books the failed phase and fails the cell. A cell that was already
// resolved (deadline expiry, peer death) absorbs the late acknowledgment
// without further accounting.
func (h FulfillHandle) CompleteAcked(err error) {
	c := h.c
	if c.ready {
		return
	}
	e := c.eng
	if err != nil {
		e.phaseSince(h.kind, PhaseFailed, c.t0)
		e.Stats.OpsFailed++
		c.fail(err)
		return
	}
	e.phaseSince(h.kind, PhaseWireAcked, c.t0)
	c.fulfill(1)
}

// Defer enqueues the resolution on the owning engine's deferred-
// notification queue, to fire at the next progress call.
func (h FulfillHandle) Defer() { h.c.eng.deferFulfill(h.c) }
