package core

import (
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestFailedFuture(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f := e.FailedFuture(errBoom)
	if !f.Ready() {
		t.Fatal("failed future must be ready")
	}
	if !errors.Is(f.Err(), errBoom) {
		t.Errorf("Err = %v", f.Err())
	}
	ran := false
	child := f.Then(func() { ran = true })
	if ran {
		t.Error("Then callback must be skipped on a failed future")
	}
	if !child.Ready() || !errors.Is(child.Err(), errBoom) {
		t.Errorf("Then must propagate the error, got %v", child.Err())
	}

	fv := FailedFutureV[int](e, errBoom)
	if !fv.Ready() {
		t.Fatal("failed value future must be ready")
	}
	if v, err := fv.WaitErr(); v != 0 || !errors.Is(err, errBoom) {
		t.Errorf("WaitErr = %v, %v", v, err)
	}
}

func TestFutureFailViaHandle(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f, h := e.NewOpFuture()
	h.Fail(errBoom)
	if !f.Ready() {
		t.Fatal("failed future not ready")
	}
	if err := f.WaitErr(); !errors.Is(err, errBoom) {
		t.Errorf("WaitErr = %v", err)
	}
}

func TestCompleteAckedRoutesErrors(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	ok, okH := e.NewOpFuture()
	okH.CompleteAcked(nil)
	if !ok.Ready() || ok.Err() != nil {
		t.Errorf("successful ack: ready=%v err=%v", ok.Ready(), ok.Err())
	}

	bad, badH := e.NewOpFuture()
	badH.CompleteAcked(errBoom)
	if !bad.Ready() || !errors.Is(bad.Err(), errBoom) {
		t.Errorf("failed ack: ready=%v err=%v", bad.Ready(), bad.Err())
	}
	// A straggling acknowledgment after failure (e.g. the reply outracing a
	// deadline expiry by a poll) must be absorbed, not double-complete.
	badH.CompleteAcked(nil)
	if !errors.Is(bad.Err(), errBoom) {
		t.Errorf("late ack overwrote the failure: %v", bad.Err())
	}
}

func TestPromiseFulfillError(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	p.Require(2)
	f := p.Finalize()
	p.FulfillError(errBoom)
	if f.Ready() {
		t.Fatal("promise must keep waiting for its other operations after a failure")
	}
	if !errors.Is(p.Err(), errBoom) {
		t.Errorf("Err before drain = %v", p.Err())
	}
	p.Fulfill(1)
	if !f.Ready() {
		t.Fatal("promise future must ready once the count drains")
	}
	if !errors.Is(f.Err(), errBoom) {
		t.Errorf("drained promise future lost the error: %v", f.Err())
	}

	// First error wins.
	p2 := NewPromise(e)
	p2.Require(2)
	p2.FulfillError(errBoom)
	p2.FulfillError(errors.New("second"))
	if !errors.Is(p2.Finalize().Err(), errBoom) {
		t.Errorf("first error must win, got %v", p2.Err())
	}
}

func TestWhenAllShortCircuitsOnError(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	a, ah := e.NewOpFuture()
	b, _ := e.NewOpFuture()
	conj := e.WhenAll(a, b)
	if conj.Ready() {
		t.Fatal("conjunction ready before inputs")
	}
	ah.Fail(errBoom)
	if !conj.Ready() {
		t.Fatal("conjunction must short-circuit on the first input failure")
	}
	if !errors.Is(conj.Err(), errBoom) {
		t.Errorf("conjunction error = %v", conj.Err())
	}

	// A conjunction over an already-failed input short-circuits at build.
	conj2 := e.WhenAll(e.FailedFuture(errBoom), b)
	if !conj2.Ready() || !errors.Is(conj2.Err(), errBoom) {
		t.Errorf("prebuilt failure not short-circuited: ready=%v err=%v",
			conj2.Ready(), conj2.Err())
	}
}

func TestDeadlineExpiresUnackedOp(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	res := e.Initiate(OpDesc{
		Kind:   OpRMA,
		Inject: func(_ func(ctx any), _ func(error)) {}, // ack never arrives
	}, []Cx{OpFuture(), OpDeadline(time.Millisecond)})
	if res.Op.Ready() {
		t.Fatal("op ready before deadline")
	}
	time.Sleep(2 * time.Millisecond)
	e.Progress()
	if !res.Op.Ready() {
		t.Fatal("deadline sweep did not fire")
	}
	if err := res.Op.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("Err = %v, want ErrDeadlineExceeded", err)
	}
	if e.Stats.DeadlinesArmed != 1 || e.Stats.DeadlinesExpired != 1 || e.Stats.OpsFailed != 1 {
		t.Errorf("stats armed=%d expired=%d failed=%d",
			e.Stats.DeadlinesArmed, e.Stats.DeadlinesExpired, e.Stats.OpsFailed)
	}
	ops := e.OpStats()
	if got := ops.Of(OpRMA, PhaseFailed); got != 1 {
		t.Errorf("PhaseFailed = %d", got)
	}
}

func TestDeadlineDroppedWhenAckedInTime(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	var ack func(error)
	res := e.Initiate(OpDesc{
		Kind:   OpRMA,
		Inject: func(_ func(ctx any), done func(error)) { ack = done },
	}, []Cx{OpFuture(), OpDeadline(time.Millisecond)})
	ack(nil)
	if !res.Op.Ready() || res.Op.Err() != nil {
		t.Fatalf("acked op: ready=%v err=%v", res.Op.Ready(), res.Op.Err())
	}
	time.Sleep(2 * time.Millisecond)
	e.Progress()
	if e.Stats.DeadlinesExpired != 0 {
		t.Errorf("deadline fired after completion: expired=%d", e.Stats.DeadlinesExpired)
	}
}

func TestDeadlineOnValueFuture(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f := InitiateV(e, OpDescV[int]{
		Kind:     OpAtomic,
		Deadline: time.Millisecond,
		Inject:   func(_ *int, _ func(error)) {}, // value never arrives
	})
	v, err := f.WaitErr()
	if v != 0 || !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("WaitErr = %v, %v", v, err)
	}
}

func TestFailedInjectFailsValueFuture(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f := InitiateV(e, OpDescV[int]{
		Kind:   OpAtomic,
		Inject: func(_ *int, done func(error)) { done(errBoom) },
	})
	if _, err := f.WaitErr(); !errors.Is(err, errBoom) {
		t.Errorf("WaitErr = %v", err)
	}
	if e.Stats.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", e.Stats.OpsFailed)
	}
}
