package core

import (
	"testing"
)

func testEngine(ver Version) *Engine { return NewEngine(0, ver) }

func TestReadyFutureSingleton(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f1 := e.ReadyFuture()
	f2 := e.ReadyFuture()
	if !f1.Ready() || !f2.Ready() {
		t.Fatal("ready futures not ready")
	}
	if f1.c != f2.c {
		t.Error("ReadySingleton should share one cell")
	}
	if e.Stats.CellAllocs != 0 {
		t.Errorf("singleton path allocated %d cells", e.Stats.CellAllocs)
	}

	legacy := testEngine(Legacy2021_3_0)
	g1 := legacy.ReadyFuture()
	g2 := legacy.ReadyFuture()
	if g1.c == g2.c {
		t.Error("legacy ready futures should be distinct allocations")
	}
	if legacy.Stats.CellAllocs != 2 {
		t.Errorf("legacy allocated %d cells, want 2", legacy.Stats.CellAllocs)
	}
}

func TestFutureWaitOnDeferred(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	f, h := e.NewOpFuture()
	if f.Ready() {
		t.Fatal("fresh op future ready")
	}
	h.Defer()
	if f.Ready() {
		t.Fatal("deferred notification delivered before progress")
	}
	f.Wait() // drives Progress
	if !f.Ready() {
		t.Fatal("not ready after wait")
	}
}

func TestThenOnReadyRunsSynchronously(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	ran := false
	child := e.ReadyFuture().Then(func() { ran = true })
	if !ran {
		t.Error("Then on ready future must run synchronously (eager semantics)")
	}
	if !child.Ready() {
		t.Error("child future of synchronous Then must be ready")
	}
}

func TestThenChainsThroughProgress(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	f, h := e.NewOpFuture()
	order := []int{}
	f2 := f.Then(func() { order = append(order, 1) })
	f3 := f2.Then(func() { order = append(order, 2) })
	h.Defer()
	if len(order) != 0 {
		t.Fatal("callbacks ran before progress")
	}
	f3.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("callback order %v", order)
	}
}

func TestFutureVValueDelivery(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	f, vp, h := NewFutureV[int](e)
	*vp = 42
	h.Defer()
	if f.Ready() {
		t.Fatal("deferred value future ready early")
	}
	if got := f.Wait(); got != 42 {
		t.Errorf("Wait = %d", got)
	}
	if got := f.Value(); got != 42 {
		t.Errorf("Value = %d", got)
	}
}

func TestFutureVThenAndDrop(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	f := NewReadyFutureV(e, "hi")
	var got string
	f.Then(func(s string) { got = s })
	if got != "hi" {
		t.Errorf("Then got %q", got)
	}
	d := f.Drop()
	if !d.Ready() {
		t.Error("Drop of ready future not ready")
	}

	g, vp, h := NewFutureV[int](e)
	*vp = 5
	dg := g.Drop()
	if dg.Ready() {
		t.Error("Drop of pending future ready early")
	}
	h.Fulfill()
	if !dg.Ready() {
		t.Error("Drop not readied by fulfillment")
	}
}

func TestInvalidFuturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wait on invalid future should panic")
		}
	}()
	var f Future
	f.Wait()
}

func TestValueOnPendingPanics(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	f, _, _ := NewFutureV[int](e)
	defer func() {
		if recover() == nil {
			t.Error("Value on pending future should panic")
		}
	}()
	f.Value()
}

func TestOverFulfillPanics(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	_, h := e.NewOpFuture()
	h.Fulfill()
	defer func() {
		if recover() == nil {
			t.Error("double fulfill should panic")
		}
	}()
	h.Fulfill()
}

func TestDeferredQueueFIFOAndCascade(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	var order []int
	f1, h1 := e.NewOpFuture()
	f2, h2 := e.NewOpFuture()
	f1.Then(func() { order = append(order, 1) })
	f2.Then(func() { order = append(order, 2) })
	h1.Defer()
	h2.Defer()
	e.Progress()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("deferred delivery order %v", order)
	}
}

func TestProgressDrainsNotificationsEnqueuedByCallbacks(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	f1, h1 := e.NewOpFuture()
	var inner Future
	f1.Then(func() {
		// A callback initiating a new deferred notification: it must
		// fire within the same progress call (it is being delivered
		// inside the progress engine).
		f, h := e.NewOpFuture()
		h.Defer()
		inner = f
	})
	h1.Defer()
	e.Progress()
	if !inner.Ready() {
		t.Error("nested deferred notification not drained")
	}
}

func TestLPCRunsAtProgress(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	ran := false
	e.EnqueueLPC(func() { ran = true })
	if ran {
		t.Fatal("LPC ran before progress")
	}
	e.Progress()
	if !ran {
		t.Fatal("LPC did not run at progress")
	}
	if e.Stats.LPCRuns != 1 {
		t.Errorf("LPCRuns = %d", e.Stats.LPCRuns)
	}
}

func TestQuiesced(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	if !e.Quiesced() {
		t.Error("fresh engine not quiesced")
	}
	_, h := e.NewOpFuture()
	h.Defer()
	if e.Quiesced() {
		t.Error("engine with queued notification claims quiesced")
	}
	e.Progress()
	if !e.Quiesced() {
		t.Error("engine not quiesced after drain")
	}
}
