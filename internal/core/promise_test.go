package core

import (
	"testing"
	"testing/quick"
)

func TestPromiseCounterSemantics(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	p.Require(3)
	f := p.Finalize()
	if f.Ready() {
		t.Fatal("ready with 3 outstanding")
	}
	p.Fulfill(1)
	p.Fulfill(1)
	if f.Ready() {
		t.Fatal("ready with 1 outstanding")
	}
	p.Fulfill(1)
	if !f.Ready() {
		t.Fatal("not ready after all fulfilled")
	}
}

func TestPromiseFinalizeIdempotent(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	f1 := p.Finalize()
	f2 := p.Finalize()
	if f1.c != f2.c {
		t.Error("Finalize not idempotent")
	}
	if !f1.Ready() {
		t.Error("empty promise should be ready at finalize")
	}
}

func TestPromiseRequireAfterFinalizePanics(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	p.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("Require after Finalize should panic")
		}
	}()
	p.Require(1)
}

func TestPromiseNegativeArgsPanic(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	for _, fn := range []func(){
		func() { p.Require(-1) },
		func() { p.Fulfill(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative arg should panic")
				}
			}()
			fn()
		}()
	}
}

// TestPromiseCountingProperty: for any interleaving of requires and
// fulfills summing to equal totals, the finalized future is ready exactly
// when the counts balance.
func TestPromiseCountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		e := testEngine(Eager2021_3_6)
		p := NewPromise(e)
		outstanding := 0
		for _, op := range ops {
			n := int(op%3) + 1
			if op%2 == 0 {
				p.Require(n)
				outstanding += n
			} else {
				if outstanding < n {
					continue
				}
				p.Fulfill(n)
				outstanding -= n
			}
		}
		fut := p.Finalize()
		if outstanding > 0 {
			if fut.Ready() {
				return false
			}
			p.Fulfill(outstanding)
		}
		return fut.Ready()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPromiseVSingleValue(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	p := NewPromiseV[int](e)
	p.Bind()
	f := p.Finalize()
	if f.Ready() {
		t.Fatal("ready before delivery")
	}
	p.Deliver(9)
	if !f.Ready() || f.Value() != 9 {
		t.Fatalf("bad delivery: ready=%v", f.Ready())
	}
}

func TestPromiseVDeliverDeferred(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	p := NewPromiseV[int](e)
	p.Bind()
	f := p.Finalize()
	p.DeliverDeferred(7)
	if f.Ready() {
		t.Fatal("deferred delivery visible before progress")
	}
	if got := f.Wait(); got != 7 {
		t.Errorf("Wait = %d", got)
	}
}

func TestPromiseVDoubleBindPanics(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromiseV[int](e)
	p.Bind()
	defer func() {
		if recover() == nil {
			t.Error("second Bind should panic (value promise tracks one op)")
		}
	}()
	p.Bind()
}

// TestEagerPromiseElision asserts the paper's §III-A claim: under eager
// delivery of a synchronously-completed op, the registered promise is
// never modified.
func TestEagerPromiseElision(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	before := p.Pending()
	e.DeliverSync([]Cx{OpPromise(p)})
	if p.Pending() != before {
		t.Errorf("eager delivery modified promise: %d -> %d", before, p.Pending())
	}
	if e.Stats.DeferQPushes != 0 {
		t.Error("eager delivery touched the deferred queue")
	}
	if !p.Finalize().Ready() {
		t.Error("promise not ready at finalize")
	}
}

// TestDeferPromiseCounting asserts the deferred path: Require at
// initiation, fulfill at progress.
func TestDeferPromiseCounting(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	p := NewPromise(e)
	e.DeliverSync([]Cx{OpPromise(p)})
	if p.Pending() != 2 { // finalize dep + op dep
		t.Errorf("Pending = %d, want 2", p.Pending())
	}
	f := p.Finalize()
	if f.Ready() {
		t.Fatal("ready before progress")
	}
	e.Progress()
	if !f.Ready() {
		t.Fatal("not ready after progress")
	}
	if e.Stats.DeferQPushes != 1 {
		t.Errorf("DeferQPushes = %d", e.Stats.DeferQPushes)
	}
}
