package core

import (
	"errors"
	"testing"
	"time"
)

var errRefused = errors.New("refused")

// refuser installs an admitter that refuses peer 7 and records what it was
// asked, so tests can assert the peer and deadline budget plumbing.
func refuser(e *Engine) (*int, *time.Duration) {
	var peer int
	var budget time.Duration
	e.SetAdmitter(func(p int, maxWait time.Duration) error {
		peer, budget = p, maxWait
		if p == 7 {
			return errRefused
		}
		return nil
	})
	return &peer, &budget
}

// TestAdmissionRefusalFailsFuture: a refused cx-ful operation never enters
// the substrate — its future resolves eagerly with the admission error and
// the failure is booked.
func TestAdmissionRefusalFailsFuture(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	peer, budget := refuser(e)
	injected := false
	res := e.Initiate(OpDesc{
		Kind: OpRMA, Peer: 7, Admit: true,
		Inject: func(_ func(ctx any), _ func(error)) { injected = true },
	}, []Cx{OpFuture(), OpDeadline(30 * time.Millisecond)})
	if injected {
		t.Fatal("refused operation reached the substrate")
	}
	if !res.Op.Ready() || !errors.Is(res.Op.Err(), errRefused) {
		t.Fatalf("refusal: ready=%v err=%v", res.Op.Ready(), res.Op.Err())
	}
	if *peer != 7 {
		t.Errorf("admitter asked about peer %d", *peer)
	}
	if *budget != 30*time.Millisecond {
		t.Errorf("admitter given budget %v, want the op deadline", *budget)
	}
	if e.Stats.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", e.Stats.OpsFailed)
	}
	ops := e.OpStats()
	if got := ops.Of(OpRMA, PhaseFailed); got != 1 {
		t.Errorf("PhaseFailed = %d", got)
	}
}

// TestAdmissionRefusalRoutesAllCompletionKinds: promise and LPC sinks
// receive the refusal just like futures do.
func TestAdmissionRefusalRoutesAllCompletionKinds(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	refuser(e)
	p := NewPromise(e)
	ran := false
	e.Initiate(OpDesc{
		Kind: OpRMA, Peer: 7, Admit: true,
		Inject: func(_ func(ctx any), _ func(error)) {},
	}, []Cx{OpPromise(p), OpLPC(func() { ran = true })})
	f := p.Finalize()
	e.Progress() // run the LPC
	if !f.Ready() || !errors.Is(f.Err(), errRefused) {
		t.Errorf("promise after refusal: ready=%v err=%v", f.Ready(), f.Err())
	}
	if !ran {
		t.Error("LPC completion not delivered on refusal")
	}
}

// TestAdmissionRefusalValueForms: the value-future and value-promise
// pipelines deliver the refusal through their own channels.
func TestAdmissionRefusalValueForms(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	refuser(e)
	f := InitiateV(e, OpDescV[int]{
		Kind: OpAtomic, Peer: 7, Admit: true,
		Inject: func(_ *int, _ func(error)) { t.Error("refused op injected") },
	})
	if v, err := f.WaitErr(); v != 0 || !errors.Is(err, errRefused) {
		t.Errorf("value future after refusal: %v, %v", v, err)
	}

	pv := NewPromiseV[int](e)
	InitiateVPromise(e, OpDescV[int]{
		Kind: OpAtomic, Peer: 7, Admit: true,
		Inject: func(_ *int, _ func(error)) { t.Error("refused op injected") },
	}, pv)
	if v, err := pv.Finalize().WaitErr(); v != 0 || !errors.Is(err, errRefused) {
		t.Errorf("value promise after refusal: %v, %v", v, err)
	}
	if e.Stats.OpsFailed != 2 {
		t.Errorf("OpsFailed = %d", e.Stats.OpsFailed)
	}
}

// TestAdmissionFireAndForgetDrop: a refused fire-and-forget operation has
// no completion sink; it is booked as failed and dropped, like a send
// toward a down peer.
func TestAdmissionFireAndForgetDrop(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	refuser(e)
	injected := false
	e.Initiate(OpDesc{
		Kind: OpRPC, Peer: 7, Admit: true,
		Inject: func(_ func(ctx any), _ func(error)) { injected = true },
	}, nil)
	if injected {
		t.Error("refused fire-and-forget reached the substrate")
	}
	if e.Stats.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", e.Stats.OpsFailed)
	}
}

// TestAdmissionSkipped: local descriptors, Admit=false, admitted peers,
// and engines without an admitter all bypass the check.
func TestAdmissionSkipped(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	refuser(e)
	// Local: the admitter must not even be consulted for peer 7.
	res := e.Initiate(OpDesc{
		Kind: OpRMA, Local: true, Peer: 7, Admit: true, Move: func() {},
	}, []Cx{OpFuture()})
	if !res.Op.Ready() || res.Op.Err() != nil {
		t.Errorf("local op refused: err=%v", res.Op.Err())
	}
	// Admit unset: zero-value descriptors stay inert even toward peer 7.
	var acked bool
	e.Initiate(OpDesc{
		Kind: OpRMA, Peer: 7,
		Inject: func(_ func(ctx any), done func(error)) { done(nil); acked = true },
	}, []Cx{OpFuture()})
	if !acked {
		t.Error("unadmitted descriptor was gated")
	}
	// Admitted peer passes through.
	ok := InitiateV(e, OpDescV[int]{
		Kind: OpAtomic, Peer: 3, Admit: true,
		Inject: func(slot *int, done func(error)) { *slot = 9; done(nil) },
	})
	if v, err := ok.WaitErr(); v != 9 || err != nil {
		t.Errorf("admitted op: %v, %v", v, err)
	}
	// No admitter installed.
	e.SetAdmitter(nil)
	none := InitiateV(e, OpDescV[int]{
		Kind: OpAtomic, Peer: 7, Admit: true,
		Inject: func(slot *int, done func(error)) { *slot = 1; done(nil) },
	})
	if v, err := none.WaitErr(); v != 1 || err != nil {
		t.Errorf("no-admitter op: %v, %v", v, err)
	}
}
