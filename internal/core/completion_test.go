package core

import (
	"testing"
)

// TestDeliverSyncEagerFuture: the headline fast path — zero allocations,
// zero queue traffic, ready future.
func TestDeliverSyncEagerFuture(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	res := e.DeliverSync([]Cx{OpFuture()})
	if !res.Op.Ready() {
		t.Fatal("eager op future not ready")
	}
	if e.Stats.CellAllocs != 0 || e.Stats.DeferQPushes != 0 {
		t.Errorf("eager path cost: %d allocs, %d defers", e.Stats.CellAllocs, e.Stats.DeferQPushes)
	}
	if e.Stats.EagerDeliveries != 1 {
		t.Errorf("EagerDeliveries = %d", e.Stats.EagerDeliveries)
	}
}

// TestDeliverSyncDeferFuture: the legacy path — one cell, one queue push,
// not ready until progress.
func TestDeliverSyncDeferFuture(t *testing.T) {
	e := testEngine(Defer2021_3_6)
	res := e.DeliverSync([]Cx{OpFuture()})
	if res.Op.Ready() {
		t.Fatal("deferred future ready at initiation")
	}
	if e.Stats.CellAllocs != 1 || e.Stats.DeferQPushes != 1 {
		t.Errorf("deferred path cost: %d allocs, %d defers", e.Stats.CellAllocs, e.Stats.DeferQPushes)
	}
	e.Progress()
	if !res.Op.Ready() {
		t.Fatal("deferred future not ready after progress")
	}
}

// TestModeOverridesVersionDefault: as_eager/as_defer factories beat the
// version default in both directions.
func TestModeOverridesVersionDefault(t *testing.T) {
	eagerLib := testEngine(Eager2021_3_6)
	res := eagerLib.DeliverSync([]Cx{OpDeferFuture()})
	if res.Op.Ready() {
		t.Error("as_defer under eager library must defer")
	}

	deferLib := testEngine(Defer2021_3_6)
	res = deferLib.DeliverSync([]Cx{OpEagerFuture()})
	if !res.Op.Ready() {
		t.Error("as_eager under defer library must be eager")
	}
}

// TestUPCXXDeferCompletionMacro: Eager2021_3_6 with EagerDefault off is
// the UPCXX_DEFER_COMPLETION build — default factories defer again.
func TestUPCXXDeferCompletionMacro(t *testing.T) {
	v := Eager2021_3_6
	v.EagerDefault = false
	e := testEngine(v)
	if e.DeliverSync([]Cx{OpFuture()}).Op.Ready() {
		t.Error("default factory should defer when the macro is set")
	}
	if !e.DeliverSync([]Cx{OpEagerFuture()}).Op.Ready() {
		t.Error("explicit as_eager must still be eager")
	}
}

func TestDeliverSyncSourceAndOp(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	res := e.DeliverSync([]Cx{SourceFuture(), OpFuture()})
	if !res.Source.Valid() || !res.Op.Valid() {
		t.Fatal("both futures should be produced")
	}
	if !res.Source.Ready() || !res.Op.Ready() {
		t.Fatal("both events completed synchronously; futures must be ready")
	}
}

func TestDeliverSyncUnrequestedFutureInvalid(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	res := e.DeliverSync([]Cx{OpPromise(p)})
	if res.Op.Valid() {
		t.Error("no future requested but Result.Op valid")
	}
}

func TestDeliverSyncDuplicateFuturePanics(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	defer func() {
		if recover() == nil {
			t.Error("duplicate op-future request should panic")
		}
	}()
	e.DeliverSync([]Cx{OpFuture(), OpFuture()})
}

func TestDeliverSyncLPCAlwaysDeferred(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	ran := false
	e.DeliverSync([]Cx{OpLPC(func() { ran = true })})
	if ran {
		t.Fatal("LPC must not run at initiation")
	}
	e.Progress()
	if !ran {
		t.Fatal("LPC not run at progress")
	}
}

func TestPrepareAsyncFire(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	p := NewPromise(e)
	lpcRan := false
	res, ac := e.PrepareAsync([]Cx{OpFuture(), OpPromise(p), OpLPC(func() { lpcRan = true })})
	if res.Op.Ready() {
		t.Fatal("async op future ready before fire")
	}
	if p.Pending() != 2 {
		t.Fatalf("promise not required: %d", p.Pending())
	}
	ac.Fire()
	if !res.Op.Ready() {
		t.Error("op future not readied by Fire")
	}
	if !p.Finalize().Ready() {
		t.Error("promise not fulfilled by Fire")
	}
	if lpcRan {
		t.Error("async LPC should wait for progress")
	}
	e.Progress()
	if !lpcRan {
		t.Error("async LPC never ran")
	}
}

// TestPrepareAsyncSourceIsSyncDelivered: source completion of an injected
// operation is delivered by the synchronous rules (buffer copied at
// injection).
func TestPrepareAsyncSourceIsSyncDelivered(t *testing.T) {
	e := testEngine(Eager2021_3_6)
	res, _ := e.PrepareAsync([]Cx{SourceFuture(), OpFuture()})
	if !res.Source.Ready() {
		t.Error("eager source future should be ready at initiation")
	}
	if res.Op.Ready() {
		t.Error("op future must wait for the ack")
	}
}

func TestRemoteFnComposition(t *testing.T) {
	if RemoteFn([]Cx{OpFuture()}) != nil {
		t.Error("no remote cx should yield nil")
	}
	var order []int
	fn := RemoteFn([]Cx{
		RemoteRPC(func() { order = append(order, 1) }),
		OpFuture(),
		RemoteRPCCtx(func(ctx any) { order = append(order, ctx.(int)) }),
	})
	fn(2)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("composition order %v", order)
	}
}

func TestHasOpFuture(t *testing.T) {
	if HasOpFuture([]Cx{SourceFuture()}) {
		t.Error("source future is not an op future")
	}
	if !HasOpFuture([]Cx{SourceFuture(), OpFuture()}) {
		t.Error("op future not detected")
	}
}

func TestLegacyAllocKnob(t *testing.T) {
	legacy := testEngine(Legacy2021_3_0)
	legacy.LegacyAlloc()
	if legacy.Stats.LegacyAllocs != 1 {
		t.Error("legacy version should perform the extra allocation")
	}
	modern := testEngine(Defer2021_3_6)
	modern.LegacyAlloc()
	if modern.Stats.LegacyAllocs != 0 {
		t.Error("2021.3.6 must not perform the extra allocation")
	}
}

func TestVersionLookup(t *testing.T) {
	for _, v := range Versions() {
		got, ok := VersionByName(v.Name)
		if !ok || got.Name != v.Name {
			t.Errorf("VersionByName(%q) failed", v.Name)
		}
	}
	if _, ok := VersionByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestEventAndModeStrings(t *testing.T) {
	if EvOp.String() != "operation" || EvSource.String() != "source" || EvRemote.String() != "remote" {
		t.Error("event names wrong")
	}
}
