// Package core implements the paper's primary contribution: the completion
// machinery of an APGAS runtime — futures, promises, completion requests,
// the per-rank progress engine with its deferred-notification queue — and
// the eager-notification optimization that lets operations whose data
// movement completed synchronously (shared-memory bypass) notify completion
// at initiation time instead of at the next progress call.
//
// Three library behaviours from the paper are reconstructed via Version:
//
//   - Legacy2021_3_0: all notifications deferred; an extra per-operation
//     heap allocation on directly-addressable RMA; no when_all
//     short-circuiting; no shared ready-future cell.
//   - Defer2021_3_6: still deferred notifications, but with the
//     allocation-elimination, when_all, and ready-future optimizations.
//   - Eager2021_3_6: the same snapshot with eager notification as the
//     default completion mode.
package core

// Version captures the implementation knobs distinguishing the three UPC++
// builds compared in the paper (§IV). Fields default to the most
// conservative (legacy) behaviour; use the predefined variables rather than
// constructing Versions by hand.
type Version struct {
	// Name labels benchmark output rows.
	Name string

	// EagerDefault selects eager notification for completions requested
	// with the default-mode factories (the paper's as_future/as_promise
	// under the new implementation; the UPCXX_DEFER_COMPLETION macro
	// corresponds to turning this off).
	EagerDefault bool

	// LegacyExtraAlloc reinstates the additional per-operation heap
	// allocation that 2021.3.0 performed for RMA on directly-addressable
	// global pointers (eliminated in the 2021.3.6 snapshot, §IV-A).
	LegacyExtraAlloc bool

	// WhenAllShortCircuit enables the when_all conjoining optimizations of
	// §III-C (return a single contributing input instead of building a
	// dependency-graph node).
	WhenAllShortCircuit bool

	// ReadySingleton enables construction of ready value-less futures from
	// a shared pre-allocated cell instead of a fresh heap allocation
	// (§III-B).
	ReadySingleton bool

	// ConstexprLocal enables resolving the is_local locality query at
	// compile time on conduits where every rank is co-located (the SMP
	// conduit optimization of §IV-B, new in the 2021.3.6 snapshot).
	ConstexprLocal bool

	// ValueInline lets an eagerly-completed value-producing operation
	// (Rget, fetching atomics) return its value inline in the FutureV
	// struct instead of a heap cell. This is the pipeline's
	// allocation-elision extension of §III-B, where the paper observes a
	// ready value future must otherwise still allocate; it rides the same
	// 2021.3.6 machinery as ReadySingleton.
	ValueInline bool
}

// The three library versions evaluated in the paper.
var (
	Legacy2021_3_0 = Version{
		Name: "2021.3.0",
	}
	Defer2021_3_6 = Version{
		Name:                "2021.3.6-defer",
		WhenAllShortCircuit: true,
		ReadySingleton:      true,
		ConstexprLocal:      true,
		ValueInline:         true,
	}
	Eager2021_3_6 = Version{
		Name:                "2021.3.6-eager",
		EagerDefault:        true,
		WhenAllShortCircuit: true,
		ReadySingleton:      true,
		ConstexprLocal:      true,
		ValueInline:         true,
	}
)

func init() {
	// LegacyExtraAlloc is only meaningful for the 2021.3.0 build.
	Legacy2021_3_0.LegacyExtraAlloc = true
}

// Versions lists the three paper configurations in presentation order.
func Versions() []Version {
	return []Version{Legacy2021_3_0, Defer2021_3_6, Eager2021_3_6}
}

// VersionByName returns the predefined Version with the given Name.
func VersionByName(name string) (Version, bool) {
	for _, v := range Versions() {
		if v.Name == name {
			return v, true
		}
	}
	return Version{}, false
}
