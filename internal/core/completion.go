package core

import (
	"fmt"
	"time"
)

// Event identifies which stage of a communication operation a completion
// notification is attached to (§II-A).
type Event uint8

const (
	// EvOp is operation completion: the whole operation is complete from
	// the initiator's perspective.
	EvOp Event = iota
	// EvSource is source completion: the source buffer may be reused.
	EvSource
	// EvRemote is remote completion: data has arrived at the target (put
	// only); the action runs on the target process.
	EvRemote
)

// String names the event as in the paper.
func (ev Event) String() string {
	switch ev {
	case EvOp:
		return "operation"
	case EvSource:
		return "source"
	case EvRemote:
		return "remote"
	default:
		return fmt.Sprintf("event(%d)", uint8(ev))
	}
}

// Mode selects the notification discipline for a completion request.
type Mode uint8

const (
	// ModeDefault defers to the library version's default (eager for
	// Eager2021_3_6, deferred otherwise) — the as_future/as_promise
	// factories under the UPCXX_DEFER_COMPLETION macro regime.
	ModeDefault Mode = iota
	// ModeEager permits (but does not guarantee) notification at
	// initiation when the data movement completes synchronously
	// (as_eager_future / as_eager_promise).
	ModeEager
	// ModeDefer guarantees notification is deferred to the next progress
	// call, the legacy semantics (as_defer_future / as_defer_promise).
	ModeDefer
)

// Kind identifies the notification mechanism of a completion request.
type Kind uint8

const (
	// KFuture notifies through a returned future.
	KFuture Kind = iota
	// KPromise notifies by fulfilling a registered promise.
	KPromise
	// KLPC notifies by running a local procedure call on the initiator at
	// the next progress call.
	KLPC
	// KRPC notifies by running a procedure on the target after data
	// arrival (remote completion only).
	KRPC
	// KDeadline is not a notification sink: it bounds the operation's
	// completion time (Cx.Dl). It composes with the real sinks and is
	// skipped by the delivery paths.
	KDeadline
	// KContinue notifies by running a continuation callback inline: on
	// the initiating goroutine for synchronously-completed operations, on
	// the progress goroutine at acknowledgment time otherwise. It is the
	// cell-free completion form — no future cell is allocated and the
	// recycled completion record carries the callback.
	KContinue
)

// Cx is a single completion request: an event, a mechanism, and a mode.
// Compose several by passing multiple Cx values to an operation, the
// library analogue of UPC++'s `|` composition of completion factories.
type Cx struct {
	Ev   Event
	Kind Kind
	Mode Mode
	Prom *Promise // KPromise
	Fn   func()   // KLPC and KRPC
	// CtxFn is the KRPC variant receiving the target's runtime context
	// (the *Rank, passed as the substrate endpoint's Ctx) — the analogue
	// of a remote_cx::as_rpc body observing rank_me() == target.
	CtxFn func(ctx any)
	// Cont is the KContinue callback, invoked with the operation's
	// outcome (nil on success).
	Cont func(error)
	// Dl is the completion-time bound for KDeadline requests.
	Dl time.Duration
}

// Completion factories, mirroring the paper's §III-A API.

// OpFuture requests operation completion via a future in the version's
// default mode (operation_cx::as_future).
func OpFuture() Cx { return Cx{Ev: EvOp, Kind: KFuture, Mode: ModeDefault} }

// OpEagerFuture requests operation completion via a future, permitting
// eager notification (operation_cx::as_eager_future).
func OpEagerFuture() Cx { return Cx{Ev: EvOp, Kind: KFuture, Mode: ModeEager} }

// OpDeferFuture requests operation completion via a future with guaranteed
// deferral (operation_cx::as_defer_future).
func OpDeferFuture() Cx { return Cx{Ev: EvOp, Kind: KFuture, Mode: ModeDefer} }

// OpPromise requests operation completion by fulfilling p in the version's
// default mode (operation_cx::as_promise).
func OpPromise(p *Promise) Cx { return Cx{Ev: EvOp, Kind: KPromise, Mode: ModeDefault, Prom: p} }

// OpEagerPromise permits eager fulfillment of p
// (operation_cx::as_eager_promise).
func OpEagerPromise(p *Promise) Cx { return Cx{Ev: EvOp, Kind: KPromise, Mode: ModeEager, Prom: p} }

// OpDeferPromise guarantees deferred fulfillment of p
// (operation_cx::as_defer_promise).
func OpDeferPromise(p *Promise) Cx { return Cx{Ev: EvOp, Kind: KPromise, Mode: ModeDefer, Prom: p} }

// OpLPC requests operation completion by running fn on the initiating rank
// at the next progress call (operation_cx::as_lpc).
func OpLPC(fn func()) Cx { return Cx{Ev: EvOp, Kind: KLPC, Fn: fn} }

// SourceFuture requests source completion via a future in the default mode
// (source_cx::as_future).
func SourceFuture() Cx { return Cx{Ev: EvSource, Kind: KFuture, Mode: ModeDefault} }

// SourceEagerFuture permits eager source-completion notification.
func SourceEagerFuture() Cx { return Cx{Ev: EvSource, Kind: KFuture, Mode: ModeEager} }

// SourceDeferFuture guarantees deferred source-completion notification.
func SourceDeferFuture() Cx { return Cx{Ev: EvSource, Kind: KFuture, Mode: ModeDefer} }

// SourcePromise requests source completion by fulfilling p.
func SourcePromise(p *Promise) Cx {
	return Cx{Ev: EvSource, Kind: KPromise, Mode: ModeDefault, Prom: p}
}

// SourceLPC requests source completion via a local procedure call.
func SourceLPC(fn func()) Cx { return Cx{Ev: EvSource, Kind: KLPC, Fn: fn} }

// RemoteRPC requests remote completion: fn runs on the target rank's
// progress goroutine after the data has been applied
// (remote_cx::as_rpc).
func RemoteRPC(fn func()) Cx { return Cx{Ev: EvRemote, Kind: KRPC, Fn: fn} }

// RemoteRPCCtx requests remote completion with access to the target
// rank's runtime context; the runtime layer supplies the context value.
func RemoteRPCCtx(fn func(ctx any)) Cx { return Cx{Ev: EvRemote, Kind: KRPC, CtxFn: fn} }

// OpContinue requests operation completion via a continuation: fn runs
// with the operation's outcome (nil on success) as soon as that outcome
// is known — inline at initiation for synchronously-completed
// operations, inline on the progress goroutine at acknowledgment time
// for asynchronous ones. Unlike OpLPC it does not wait for the next
// progress call, and unlike OpFuture it allocates nothing: no future
// cell is created and the recycled AsyncCompletion record carries the
// callback, so a steady-state asynchronous put or get completes with
// zero allocations (the MPI-continuations analogue of the paper's eager
// notification: the progress engine notifies, the waiter never polls a
// cell).
//
// fn runs inside the progress engine and must not block; it may initiate
// communication. A panic in fn is contained: the progress loop keeps
// running, the panic is counted (Stats.ContinuationPanics), and the
// operation's remaining sinks — if futures or promises were composed
// alongside the continuation — resolve with a *ContinuationError.
// Mode is ignored: a continuation always fires at the moment of
// completion.
func OpContinue(fn func(error)) Cx { return Cx{Ev: EvOp, Kind: KContinue, Cont: fn} }

// OpDeadline bounds the operation's completion time: if the substrate has
// not acknowledged within d, the operation's notifications resolve with
// ErrDeadlineExceeded. It is not a notification sink — compose it with the
// real sinks (e.g. OpFuture(), OpDeadline(d)). Deadlines apply only to
// genuinely asynchronous operations; a synchronous (local) completion
// trivially beats any positive bound.
func OpDeadline(d time.Duration) Cx { return Cx{Ev: EvOp, Kind: KDeadline, Dl: d} }

// DeadlineOf extracts the effective deadline from a completion-request
// set: the smallest positive bound requested, or zero if none.
func DeadlineOf(cxs []Cx) time.Duration {
	var d time.Duration
	for _, cx := range cxs {
		if cx.Kind == KDeadline && cx.Dl > 0 && (d == 0 || cx.Dl < d) {
			d = cx.Dl
		}
	}
	return d
}

// eager decides whether a request with the given mode is delivered eagerly
// under this engine's version. This is the single eager-vs-deferred branch
// in the codebase: every operation family reaches it through the unified
// pipeline (op.go), so the paper's three versions are knobs on one code
// path rather than scattered conditionals.
func (e *Engine) eager(m Mode) bool {
	switch m {
	case ModeEager:
		return true
	case ModeDefer:
		return false
	default:
		return e.ver.EagerDefault
	}
}

// Result carries the futures produced by an operation's requested
// completions. Futures for events that were not requested are invalid.
type Result struct {
	// Op is the operation-completion future (valid iff an Op future was
	// requested).
	Op Future
	// Source is the source-completion future (valid iff a Source future
	// was requested).
	Source Future
}

// Wait waits on the operation-completion future.
func (r Result) Wait() { r.Op.Wait() }

// DeliverSync delivers the requested completions for an operation whose
// data movement completed synchronously during initiation (the
// shared-memory bypass case). This is the crux of the paper:
//
//   - an eager future request is satisfied by a ready future — under the
//     ReadySingleton optimization, with zero allocation;
//   - an eager promise request elides all modification of the promise;
//   - deferred requests allocate a cell (futures) or register a dependency
//     (promises) and route through the deferred-notification queue, to be
//     delivered at the next progress call;
//   - LPC requests are always queued for the next progress call;
//   - remote (KRPC) requests are not handled here — the caller delivers
//     them at the target.
//
// Both source and operation events fire, since the data movement is fully
// complete.
//
// DeliverSync is the compatibility entry point (it books the phases under
// OpRMA, with no initiation timestamp); the pipeline routes through the
// kind-aware deliverSync.
func (e *Engine) DeliverSync(cxs []Cx) Result { return e.deliverSync(OpRMA, cxs, 0) }

// deliverSync's t0 is the initiation timestamp from hookT0 (zero when no
// phase hook is installed), attributing initiation→delivery latency to
// the completion phases it books.
func (e *Engine) deliverSync(k OpKind, cxs []Cx, t0 int64) Result {
	var res Result
	for _, cx := range cxs {
		if cx.Ev == EvRemote {
			continue
		}
		switch cx.Kind {
		case KFuture:
			var f Future
			if e.eager(cx.Mode) {
				e.Stats.EagerDeliveries++
				e.phaseSince(k, PhaseEagerCompleted, t0)
				f = e.ReadyFuture()
			} else {
				e.phaseSince(k, PhaseDeferredQueued, t0)
				c := e.newCell()
				e.deferFulfill(c)
				f = Future{c}
			}
			res.set(cx.Ev, f)
		case KPromise:
			if e.eager(cx.Mode) {
				e.Stats.EagerDeliveries++
				e.phaseSince(k, PhaseEagerCompleted, t0)
				// Elided entirely: the promise is never touched.
			} else {
				e.phaseSince(k, PhaseDeferredQueued, t0)
				cx.Prom.Require(1)
				e.deferFulfill(cx.Prom.c)
			}
		case KLPC:
			// LPCs are by definition queued for the next progress call.
			e.phaseSince(k, PhaseDeferredQueued, t0)
			e.EnqueueLPC(cx.Fn)
		case KContinue:
			// A continuation fires at the moment of completion — here,
			// inline at initiation. The operation itself already succeeded,
			// so a panic in the callback is contained and counted but books
			// no operation failure.
			e.Stats.EagerDeliveries++
			e.phaseSince(k, PhaseEagerCompleted, t0)
			e.runCont(cx.Cont, nil)
		case KDeadline:
			// A synchronous completion trivially beats any bound.
		default:
			panic(fmt.Sprintf("gupcxx: completion kind %d invalid for event %v", cx.Kind, cx.Ev))
		}
	}
	return res
}

// deliverFailed resolves every requested completion with err at
// initiation — the admission-refused path (ErrBackpressure, down peer):
// the operation never entered the substrate, so its failure is delivered
// the same way a synchronous success would be, as a value. Futures come
// back already failed, promises record the error while keeping their
// counter discipline, LPCs still run at the next progress call (the
// operation is over, just not successfully). Remote and deadline
// requests have nothing to deliver.
func (e *Engine) deliverFailed(k OpKind, cxs []Cx, err error, t0 int64) Result {
	e.Stats.OpsFailed++
	e.phaseSince(k, PhaseFailed, t0)
	var res Result
	for _, cx := range cxs {
		if cx.Ev == EvRemote {
			continue
		}
		switch cx.Kind {
		case KFuture:
			res.set(cx.Ev, e.FailedFuture(err))
		case KPromise:
			cx.Prom.Require(1)
			cx.Prom.FulfillError(err)
		case KLPC:
			e.EnqueueLPC(cx.Fn)
		case KContinue:
			e.runCont(cx.Cont, err)
		case KDeadline:
			// Nothing to bound: the operation already resolved.
		default:
			panic(fmt.Sprintf("gupcxx: completion kind %d invalid for event %v", cx.Kind, cx.Ev))
		}
	}
	return res
}

// set records a produced future in the Result slot for its event.
func (r *Result) set(ev Event, f Future) {
	switch ev {
	case EvOp:
		if r.Op.Valid() {
			panic("gupcxx: duplicate operation-completion future requested")
		}
		r.Op = f
	case EvSource:
		if r.Source.Valid() {
			panic("gupcxx: duplicate source-completion future requested")
		}
		r.Source = f
	}
}

// AsyncCompletion is the initiator-side state for an operation that did
// not complete synchronously: the notifications to deliver when the
// substrate reports source and operation completion. Records are recycled
// through the engine's freelist — taken at initiation, returned by the
// final successful Done — so steady-state off-node traffic allocates no
// completion state.
type AsyncCompletion struct {
	eng  *Engine
	kind OpKind

	// frags is the number of outstanding substrate acknowledgments (VIS
	// operations fan one operation out into several transfers); the last
	// one fires the notifications.
	frags int

	// gen increments each time the record is recycled; armed deadlines
	// capture the generation they observed, so a stale deadline entry
	// (record reused by a later operation) is recognized and dropped.
	gen uint32

	// failed marks a record whose notifications were already resolved with
	// an error (deadline expiry, peer death). Late substrate
	// acknowledgments for a failed record are absorbed; the record is
	// recycled by the last one so it cannot be reused while
	// acknowledgments are still in flight.
	failed bool

	// doneFn caches the Done method value so per-fragment completion
	// callbacks hand the same func(error) to the substrate without
	// allocating a fresh closure per operation.
	doneFn func(error)

	// t0 is the initiation timestamp for latency attribution (hookT0;
	// zero when no phase hook is installed at initiation).
	t0 int64

	opCells []FulfillHandle
	opProms []*Promise
	opLPCs  []func()
	opConts []func(error)
}

// getAC takes an AsyncCompletion record from the freelist (or allocates
// the freelist's steady-state population on first use).
func (e *Engine) getAC(k OpKind) *AsyncCompletion {
	var ac *AsyncCompletion
	if n := len(e.acFree); n > 0 {
		ac = e.acFree[n-1]
		e.acFree[n-1] = nil
		e.acFree = e.acFree[:n-1]
	} else {
		ac = &AsyncCompletion{eng: e}
		ac.doneFn = ac.Done
	}
	ac.kind = k
	ac.frags = 1
	ac.failed = false
	return ac
}

// PrepareAsync builds the completion state for an asynchronous (remote)
// operation and returns the Result futures. Source-event completions are
// delivered immediately via the synchronous path — the substrate copies
// the source buffer at injection, so the buffer is reusable when
// initiation returns (their mode still governs eager vs deferred
// notification). Operation-event completions are registered to fire when
// the substrate acknowledges, which always happens inside the progress
// engine, trivially satisfying both eager and deferred semantics.
//
// PrepareAsync is the compatibility entry point (phases booked under
// OpRMA); the pipeline routes through the kind-aware prepareAsync.
func (e *Engine) PrepareAsync(cxs []Cx) (Result, *AsyncCompletion) {
	return e.prepareAsync(OpRMA, cxs, e.hookT0())
}

func (e *Engine) prepareAsync(k OpKind, cxs []Cx, t0 int64) (Result, *AsyncCompletion) {
	var res Result
	ac := e.getAC(k)
	ac.t0 = t0
	for _, cx := range cxs {
		switch cx.Ev {
		case EvRemote:
			continue // delivered at the target by the substrate
		case EvSource:
			sub := e.deliverSync(k, []Cx{cx}, t0)
			if sub.Source.Valid() {
				res.set(EvSource, sub.Source)
			}
			continue
		}
		switch cx.Kind {
		case KFuture:
			f, h := e.NewOpFuture()
			ac.opCells = append(ac.opCells, h)
			res.set(EvOp, f)
		case KPromise:
			cx.Prom.Require(1)
			ac.opProms = append(ac.opProms, cx.Prom)
		case KLPC:
			ac.opLPCs = append(ac.opLPCs, cx.Fn)
		case KContinue:
			ac.opConts = append(ac.opConts, cx.Cont)
		case KDeadline:
			// Not a sink; Initiate arms the deadline after registering.
		default:
			panic(fmt.Sprintf("gupcxx: completion kind %d invalid for event %v", cx.Kind, cx.Ev))
		}
	}
	return res, ac
}

// Fire consumes one successful substrate acknowledgment (the historical
// entry point; equivalent to Done(nil)).
func (ac *AsyncCompletion) Fire() { ac.Done(nil) }

// Done consumes one substrate acknowledgment; the final one delivers the
// operation-completion notifications and recycles the record. A non-nil
// err fails the notifications immediately — remaining fragments are still
// awaited before recycling, but their outcomes no longer matter. It must
// be called on the initiating rank's goroutine from within the progress
// engine (the substrate's acknowledgment handler).
func (ac *AsyncCompletion) Done(err error) {
	if err != nil && !ac.failed {
		ac.failDeliver(err)
	}
	ac.frags--
	if ac.frags > 0 {
		return
	}
	e := ac.eng
	if !ac.failed {
		// Continuations run first, before the phase is booked: a panic in
		// one fails the operation, and the phase matrix's invariant (an
		// operation books wire-acked XOR failed) must still hold.
		var cerr error
		for _, fn := range ac.opConts {
			if err := e.runCont(fn, nil); err != nil && cerr == nil {
				cerr = err
			}
		}
		if cerr != nil {
			// The wire leg succeeded but the completion action did not: the
			// remaining sinks resolve with the *ContinuationError so the
			// failure is observable, mirroring how a remote handler panic
			// surfaces through the reply path.
			e.Stats.OpsFailed++
			e.phaseSince(ac.kind, PhaseFailed, ac.t0)
			for _, h := range ac.opCells {
				h.Fail(cerr)
			}
			for _, p := range ac.opProms {
				p.FulfillError(cerr)
			}
			for _, fn := range ac.opLPCs {
				e.EnqueueLPC(fn)
			}
		} else {
			e.phaseSince(ac.kind, PhaseWireAcked, ac.t0)
			for _, h := range ac.opCells {
				h.Fulfill()
			}
			for _, p := range ac.opProms {
				p.Fulfill(1)
			}
			for _, fn := range ac.opLPCs {
				e.EnqueueLPC(fn)
			}
		}
	}
	ac.recycle()
}

// failDeliver resolves every registered notification with err and books
// the failure: futures fail (short-circuit), promises record the error
// while keeping their counter discipline, LPCs still run (the operation
// is over, just not successfully).
func (ac *AsyncCompletion) failDeliver(err error) {
	e := ac.eng
	ac.failed = true
	e.Stats.OpsFailed++
	e.phaseSince(ac.kind, PhaseFailed, ac.t0)
	for _, fn := range ac.opConts {
		e.runCont(fn, err)
	}
	for _, h := range ac.opCells {
		h.Fail(err)
	}
	for _, p := range ac.opProms {
		p.FulfillError(err)
	}
	for _, fn := range ac.opLPCs {
		e.EnqueueLPC(fn)
	}
}

// expire fails the record's notifications without consuming a fragment —
// the deadline-expiry path. The record stays out of the freelist until the
// substrate's outstanding acknowledgments drain through Done, which
// absorbs them against the failed flag.
func (ac *AsyncCompletion) expire(err error) {
	if ac.failed {
		return
	}
	ac.failDeliver(err)
}

// recycle clears the record and returns it to the freelist. Only after
// delivery: fulfillment cascades may initiate new operations, and a record
// still being walked must not be handed out. The generation bump
// invalidates any deadline entry still pointing here.
func (ac *AsyncCompletion) recycle() {
	for i := range ac.opCells {
		ac.opCells[i] = FulfillHandle{}
	}
	for i := range ac.opProms {
		ac.opProms[i] = nil
	}
	for i := range ac.opLPCs {
		ac.opLPCs[i] = nil
	}
	for i := range ac.opConts {
		ac.opConts[i] = nil
	}
	ac.opCells = ac.opCells[:0]
	ac.opProms = ac.opProms[:0]
	ac.opLPCs = ac.opLPCs[:0]
	ac.opConts = ac.opConts[:0]
	ac.failed = false
	ac.t0 = 0
	ac.gen++
	ac.eng.acFree = append(ac.eng.acFree, ac)
}

// runCont invokes a continuation callback under the panic-containment
// boundary: a panic is recovered (the progress loop keeps running),
// counted, and returned as a *ContinuationError for the caller to route
// into the operation's remaining sinks. A nil return means the callback
// completed normally.
func (e *Engine) runCont(fn func(error), err error) (cerr error) {
	defer func() {
		if p := recover(); p != nil {
			e.Stats.ContinuationPanics++
			cerr = &ContinuationError{Rank: e.rank, Msg: fmt.Sprint(p)}
		}
	}()
	e.Stats.ContinuationsRun++
	fn(err)
	return nil
}

// RemoteFn extracts the composed remote-completion action from cxs, or nil
// if none was requested. Multiple RemoteRPC/RemoteRPCCtx requests compose
// in order; the action receives the target's runtime context (forwarded
// to CtxFn callbacks, ignored by plain ones).
func RemoteFn(cxs []Cx) func(ctx any) {
	var fns []func(ctx any)
	for _, cx := range cxs {
		if cx.Ev != EvRemote {
			continue
		}
		if cx.Kind != KRPC {
			panic("gupcxx: remote completion supports only RPC notification")
		}
		if cx.CtxFn != nil {
			fns = append(fns, cx.CtxFn)
		} else {
			fn := cx.Fn
			fns = append(fns, func(any) { fn() })
		}
	}
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	default:
		return func(ctx any) {
			for _, fn := range fns {
				fn(ctx)
			}
		}
	}
}

// HasRemote reports whether cxs requests remote completion; get-class
// operations use it to reject the request (remote completion is defined
// only for puts, as in UPC++).
func HasRemote(cxs []Cx) bool {
	for _, cx := range cxs {
		if cx.Ev == EvRemote {
			return true
		}
	}
	return false
}

// HasOpFuture reports whether cxs requests an operation-completion future;
// used by operations to pick a default when no completion is supplied.
func HasOpFuture(cxs []Cx) bool {
	for _, cx := range cxs {
		if cx.Ev == EvOp && cx.Kind == KFuture {
			return true
		}
	}
	return false
}
