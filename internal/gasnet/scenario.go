package gasnet

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Phased network scenarios: a tiny DSL that schedules fault-layer
// reconfigurations against the domain's cached clock, so a whole test run
// — partition at t+2s, heal at t+6s — is described by one string and
// replayed identically by every process of a multiproc world (each process
// parses the same spec and applies the entries whose sender it hosts).
//
// Grammar (phases separated by ';', tokens by whitespace):
//
//	phase     = "at=" duration directive...
//	directive = "partition=" group ("|" group)...   e.g. partition=0,1|2,3
//	          | "heal"                              lift partition + pair overrides
//	          | "fault=" faultSpec                  base distribution, all senders
//	          | "fault@" F ">" T "=" faultSpec      directional override F→T
//	          | "latency=" duration
//	          | "jitter=" duration
//
// durations are Go syntax ("2s", "150ms"); faultSpec is the
// GUPCXX_UDP_FAULT syntax ("drop=0.25,dup=0.05,seed=7"); phase times must
// be nondecreasing. The clock starts when the domain arms the scenario
// (inside NewDomain for the env var, at the StartScenario call otherwise).
// Events fire from the reliability ticker, so a scenario needs the
// sequenced conduit (UDPUnreliable worlds never tick it).

// scenarioEnvVar names the environment variable consulted by UDP-conduit
// domains at construction; a non-empty value arms the scenario it
// describes. Parse errors surface from NewDomain.
const scenarioEnvVar = "GUPCXX_UDP_SCENARIO"

// scenarioEvent is one scheduled reconfiguration: at is the offset from
// arming (ns); apply performs it against the domain's locally-hosted
// senders.
type scenarioEvent struct {
	at    int64
	apply func(d *Domain)
}

// scenario is an armed script. step is called only from the domain
// ticker, so next needs no synchronization; re-arming installs a fresh
// scenario via the domain's atomic pointer.
type scenario struct {
	d      *Domain
	events []scenarioEvent
	start  int64 // cached-clock instant of arming
	next   int
}

// step fires every event whose time has come. Ticker goroutine only.
func (s *scenario) step(now int64) {
	for s.next < len(s.events) && now-s.start >= s.events[s.next].at {
		ev := s.events[s.next]
		s.next++
		ev.apply(s.d)
	}
}

// StartScenario parses spec and arms it against this domain, replacing
// any scenario already armed. The scenario clock starts now; events fire
// from the domain ticker. In a multiproc world every process should arm
// the same spec — each applies the entries whose sending rank it hosts.
func (d *Domain) StartScenario(spec string) error {
	if d.udp == nil {
		return fmt.Errorf("gasnet: StartScenario: not a UDP-conduit domain")
	}
	events, err := parseScenario(spec, d.cfg.Ranks)
	if err != nil {
		return err
	}
	d.scen.Store(&scenario{d: d, events: events, start: clockRefresh()})
	return nil
}

// armScenarioFromEnv arms GUPCXX_UDP_SCENARIO if set. Called from domain
// construction after the transport exists.
func (d *Domain) armScenarioFromEnv() error {
	spec := os.Getenv(scenarioEnvVar)
	if spec == "" {
		return nil
	}
	if err := d.StartScenario(spec); err != nil {
		return fmt.Errorf("%w (from %s)", err, scenarioEnvVar)
	}
	return nil
}

// parseScenario compiles a scenario spec into its event list.
func parseScenario(spec string, ranks int) ([]scenarioEvent, error) {
	var events []scenarioEvent
	var prev int64 = -1
	for _, phase := range strings.Split(spec, ";") {
		tokens := strings.Fields(phase)
		if len(tokens) == 0 {
			continue
		}
		atVal, ok := strings.CutPrefix(tokens[0], "at=")
		if !ok {
			return nil, fmt.Errorf("gasnet: scenario phase %q must start with at=<duration>", strings.TrimSpace(phase))
		}
		at, err := time.ParseDuration(atVal)
		if err != nil {
			return nil, fmt.Errorf("gasnet: scenario at=%q: %w", atVal, err)
		}
		if at < 0 || int64(at) < prev {
			return nil, fmt.Errorf("gasnet: scenario phase times must be nondecreasing (at=%s)", at)
		}
		prev = int64(at)
		if len(tokens) == 1 {
			return nil, fmt.Errorf("gasnet: scenario phase at=%s has no directives", at)
		}
		for _, tok := range tokens[1:] {
			apply, err := parseDirective(tok, ranks)
			if err != nil {
				return nil, err
			}
			events = append(events, scenarioEvent{at: int64(at), apply: apply})
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("gasnet: scenario %q has no phases", spec)
	}
	return events, nil
}

// parseDirective compiles one directive token into its apply function.
// Applies swallow per-rank errors: in a multiproc world most senders are
// not hosted locally, and that is the normal case, not a fault.
func parseDirective(tok string, ranks int) (func(d *Domain), error) {
	switch {
	case tok == "heal":
		return func(d *Domain) { d.healNetwork() }, nil

	case strings.HasPrefix(tok, "partition="):
		groups, err := parseGroups(strings.TrimPrefix(tok, "partition="), ranks)
		if err != nil {
			return nil, err
		}
		return func(d *Domain) { d.SetPartition(groups) }, nil

	case strings.HasPrefix(tok, "fault@"):
		// fault@F>T=<spec>: directional override F→T.
		head, spec, ok := strings.Cut(strings.TrimPrefix(tok, "fault@"), "=")
		if !ok {
			return nil, fmt.Errorf("gasnet: scenario directive %q: want fault@F>T=<spec>", tok)
		}
		fromS, toS, ok := strings.Cut(head, ">")
		if !ok {
			return nil, fmt.Errorf("gasnet: scenario directive %q: want fault@F>T=<spec>", tok)
		}
		from, err1 := parseRank(fromS, ranks)
		to, err2 := parseRank(toS, ranks)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("gasnet: scenario directive %q: bad rank pair", tok)
		}
		cfg, err := parseFaultSpec(spec)
		if err != nil {
			return nil, err
		}
		return func(d *Domain) { d.SetPairFault(from, to, *cfg) }, nil

	case strings.HasPrefix(tok, "fault="):
		cfg, err := parseFaultSpec(strings.TrimPrefix(tok, "fault="))
		if err != nil {
			return nil, err
		}
		return func(d *Domain) {
			for r := 0; r < d.cfg.Ranks; r++ {
				d.SetFault(r, *cfg)
			}
		}, nil

	case strings.HasPrefix(tok, "latency="):
		dur, err := time.ParseDuration(strings.TrimPrefix(tok, "latency="))
		if err != nil || dur < 0 {
			return nil, fmt.Errorf("gasnet: scenario latency %q: bad duration", tok)
		}
		return func(d *Domain) {
			for r := 0; r < d.cfg.Ranks; r++ {
				if fc, err := d.faultShim(r); err == nil {
					fc.mu.Lock()
					fc.delay = int64(dur)
					fc.updateArmed()
					fc.mu.Unlock()
				}
			}
		}, nil

	case strings.HasPrefix(tok, "jitter="):
		dur, err := time.ParseDuration(strings.TrimPrefix(tok, "jitter="))
		if err != nil || dur < 0 {
			return nil, fmt.Errorf("gasnet: scenario jitter %q: bad duration", tok)
		}
		return func(d *Domain) {
			for r := 0; r < d.cfg.Ranks; r++ {
				if fc, err := d.faultShim(r); err == nil {
					fc.mu.Lock()
					fc.jitter = int64(dur)
					fc.updateArmed()
					fc.mu.Unlock()
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("gasnet: scenario has unknown directive %q", tok)
}

// parseGroups parses "0,1|2,3" into rank groups.
func parseGroups(spec string, ranks int) ([][]int, error) {
	var groups [][]int
	for _, gs := range strings.Split(spec, "|") {
		var g []int
		for _, rs := range strings.Split(gs, ",") {
			rs = strings.TrimSpace(rs)
			if rs == "" {
				continue
			}
			r, err := parseRank(rs, ranks)
			if err != nil {
				return nil, fmt.Errorf("gasnet: scenario partition rank %q: %w", rs, err)
			}
			g = append(g, r)
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("gasnet: scenario partition %q has no groups", spec)
	}
	return groups, nil
}

func parseRank(s string, ranks int) (int, error) {
	r, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if r < 0 || r >= ranks {
		return 0, fmt.Errorf("rank %d out of range [0,%d)", r, ranks)
	}
	return r, nil
}
