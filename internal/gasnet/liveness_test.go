package gasnet

import (
	"errors"
	"testing"
	"time"
)

// TestRetransmitExhaustionMarksPeerDown: under total loss, the sender's
// retransmission budget runs out, the destination is declared down, and
// the pending operation resolves with ErrPeerUnreachable instead of
// hanging — the liveness machinery's core contract.
func TestRetransmitExhaustionMarksPeerDown(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12,
		Fault:          &FaultConfig{Seed: 1, Drop: 1.0},
		RelMaxAttempts: 3,
	})
	defer d.Close()
	ep0 := d.Endpoint(0)

	var gotErr error
	hookPeer := -1
	ep0.SetPeerDownHook(func(peer int, err error) { hookPeer = peer })
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { gotErr = err })

	deadline := time.Now().Add(10 * time.Second)
	for gotErr == nil && time.Now().Before(deadline) {
		ep0.Poll()
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(gotErr, ErrPeerUnreachable) {
		t.Fatalf("pending put resolved with %v, want ErrPeerUnreachable", gotErr)
	}
	if !ep0.PeerDown(1) {
		t.Error("peer 1 not marked down")
	}
	if hookPeer != 1 {
		t.Errorf("peer-down hook saw peer %d, want 1", hookPeer)
	}
	if ep0.PendingOps() != 0 {
		t.Errorf("%d ops still pending after peer declared down", ep0.PendingOps())
	}
	s := d.Stats()
	if s.RetransmitExhausted == 0 {
		t.Error("RetransmitExhausted = 0")
	}
	if s.PeersDown == 0 {
		t.Error("PeersDown = 0")
	}
	if s.RemoteOpsFailed == 0 {
		t.Error("RemoteOpsFailed = 0")
	}

	// Operations initiated after the declaration fail at injection: the op
	// table must not accumulate entries no sweep will ever retire.
	var eager error
	ep0.GetRemote(1, 0, 4, make([]byte, 4), func(err error) { eager = err })
	if !errors.Is(eager, ErrPeerUnreachable) {
		t.Errorf("post-down get resolved with %v at injection", eager)
	}
	var amoErr error
	ep0.AmoRemote(1, 0, AmoAdd, 1, 0, func(_ uint64, err error) { amoErr = err })
	if !errors.Is(amoErr, ErrPeerUnreachable) {
		t.Errorf("post-down amo resolved with %v at injection", amoErr)
	}
	if got := d.Stats().DownPeerFails; got < 2 {
		t.Errorf("DownPeerFails = %d, want >= 2", got)
	}
}

// TestHeartbeatsKeepIdlePeersAlive: with a healthy wire and zero
// application traffic, heartbeats alone must hold every peer in the Alive
// state well past the DownAfter silence bound.
func TestHeartbeatsKeepIdlePeersAlive(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		HeartbeatEvery: time.Millisecond,
		SuspectAfter:   5 * time.Millisecond,
		DownAfter:      20 * time.Millisecond,
	})
	defer d.Close()
	time.Sleep(100 * time.Millisecond) // several DownAfter periods of idleness
	for r := 0; r < 2; r++ {
		if down := d.Endpoint(r).DownPeers(); len(down) != 0 {
			t.Errorf("rank %d declared %v down on a healthy idle wire", r, down)
		}
	}
	if s := d.Stats(); s.HeartbeatsSent == 0 {
		t.Error("HeartbeatsSent = 0 after 100ms of 1ms heartbeats")
	}
}

// TestHeartbeatSilenceMarksPeerDown: killing one rank's send path mid-run
// (SetFault Drop:1) silences it; the other side must walk
// Alive→Suspect→Down on heartbeat staleness alone, with no operation
// traffic to trip retransmission.
func TestHeartbeatSilenceMarksPeerDown(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		Fault:          &FaultConfig{}, // shield from any GUPCXX_UDP_FAULT preset
		HeartbeatEvery: time.Millisecond,
		SuspectAfter:   5 * time.Millisecond,
		DownAfter:      20 * time.Millisecond,
	})
	defer d.Close()
	// Let both sides hear each other first.
	time.Sleep(10 * time.Millisecond)
	if d.Endpoint(0).AnyPeerDown() {
		t.Fatal("peer down before the fault was armed")
	}
	// Kill rank 1's outbound path: rank 0 stops hearing it.
	if err := d.SetFault(1, FaultConfig{Drop: 1.0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !d.Endpoint(0).PeerDown(1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !d.Endpoint(0).PeerDown(1) {
		t.Fatal("silent peer never declared down")
	}
	s := d.Stats()
	if s.PeersSuspected == 0 {
		t.Error("PeersSuspected = 0: Down must pass through Suspect")
	}
	// Down is sticky and one-sided: rank 1 still hears rank 0.
	if d.Endpoint(1).PeerDown(0) {
		t.Error("rank 1 declared rank 0 down, but rank 0's sends still flow")
	}
}

// TestLivenessConfigValidation pins the liveness knobs' validation.
func TestLivenessConfigValidation(t *testing.T) {
	t.Setenv(faultEnvVar, "")
	if _, err := NewDomain(Config{Ranks: 2, Conduit: UDP,
		SuspectAfter: 50 * time.Millisecond, DownAfter: 10 * time.Millisecond}); err == nil {
		t.Error("DownAfter < SuspectAfter accepted")
	}
	if _, err := NewDomain(Config{Ranks: 2, Conduit: UDP, RelMaxAttempts: -1}); err == nil {
		t.Error("negative RelMaxAttempts accepted")
	}
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, DisableLiveness: true})
	defer d.Close()
	if d.Endpoint(0).PeerDown(1) || d.Endpoint(0).AnyPeerDown() {
		t.Error("liveness state exists despite DisableLiveness")
	}
	// The fault shim is always interposed: arming faults mid-run needs no
	// construction-time Config.Fault.
	if err := d.SetFault(0, FaultConfig{Drop: 0.5}); err != nil {
		t.Errorf("SetFault on a nil-Fault domain failed: %v", err)
	}
	if err := d.SetFault(2, FaultConfig{}); err == nil {
		t.Error("SetFault accepted an out-of-range rank")
	}
	if err := d.SetFault(0, FaultConfig{Drop: 2}); err == nil {
		t.Error("SetFault accepted an invalid probability")
	}
}
