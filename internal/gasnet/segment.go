package gasnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Segment is one rank's shared-memory segment: a word-aligned arena that
// co-located ranks may access directly and remote ranks reach through the
// AM protocol. All allocation is 8-byte aligned, so any offset handed out
// by Alloc is valid for atomic word access.
//
// This file is the only place in the repository that uses package unsafe;
// every typed view of segment memory is produced here.
type Segment struct {
	mem   []uint64 // backing storage; aligned for 8-byte atomics
	bytes []byte   // byte view of mem
	mu    sync.Mutex
	next  int // bump-allocation cursor, in bytes
	frees int // count of Free calls (allocation is bump-only; see Free)
}

// NewSegment allocates a segment of the given size in bytes (rounded up to
// a multiple of 8).
func NewSegment(sizeBytes int) *Segment {
	words := (sizeBytes + 7) / 8
	if words < 1 {
		words = 1
	}
	mem := make([]uint64, words)
	return &Segment{
		mem:   mem,
		bytes: unsafe.Slice((*byte)(unsafe.Pointer(&mem[0])), words*8),
	}
}

// Size reports the segment capacity in bytes.
func (s *Segment) Size() int { return len(s.bytes) }

// Used reports the number of bytes currently allocated.
func (s *Segment) Used() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Alloc reserves n bytes (rounded up to a multiple of 8) and returns the
// byte offset of the reservation. It returns an error if the segment is
// exhausted.
func (s *Segment) Alloc(n int) (uint32, error) {
	if n < 0 {
		return 0, fmt.Errorf("gasnet: negative allocation %d", n)
	}
	n = (n + 7) &^ 7
	if n == 0 {
		n = 8
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next+n > len(s.bytes) {
		return 0, fmt.Errorf("gasnet: segment exhausted: %d bytes requested, %d free",
			n, len(s.bytes)-s.next)
	}
	off := uint32(s.next)
	s.next += n
	return off, nil
}

// Free records the release of an allocation. The arena is bump-allocated
// (matching the common PGAS pattern of setup-time allocation), so Free does
// not recycle memory; it exists so that callers express intent and tests can
// assert balanced alloc/free discipline.
func (s *Segment) Free(uint32) {
	s.mu.Lock()
	s.frees++
	s.mu.Unlock()
}

// Frees reports the number of Free calls observed.
func (s *Segment) Frees() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frees
}

// Reset discards all allocations, returning the arena to empty. Intended
// for benchmark harnesses that reuse a Domain across iterations. The caller
// must guarantee no outstanding references into the segment.
func (s *Segment) Reset() {
	s.mu.Lock()
	s.next = 0
	s.frees = 0
	s.mu.Unlock()
}

// ValidRange reports whether [off, off+n) is contained in the segment —
// the non-panicking bounds check for wire-supplied addresses. checkRange
// panics because its callers are trusted local code; handlers validating
// untrusted wire input call this first and refuse (counted, nacked) on
// failure. uint64 arguments so callers can pass raw wire words without a
// truncating conversion aliasing an in-bounds offset.
func (s *Segment) ValidRange(off, n uint64) bool {
	end := off + n
	return end >= off && end <= uint64(len(s.bytes))
}

// checkRange panics if [off, off+n) is not contained in the segment.
func (s *Segment) checkRange(off uint32, n int) {
	if int(off)+n > len(s.bytes) {
		panic(fmt.Sprintf("gasnet: segment access [%d,%d) out of range (size %d)",
			off, int(off)+n, len(s.bytes)))
	}
}

// BytesAt returns a byte view of [off, off+n). The view aliases segment
// memory.
func (s *Segment) BytesAt(off uint32, n int) []byte {
	s.checkRange(off, n)
	return s.bytes[off : int(off)+n : int(off)+n]
}

// WordAt returns the address of the 8-byte word at off, which must be
// 8-byte aligned. The returned pointer is valid for sync/atomic access.
func (s *Segment) WordAt(off uint32) *uint64 {
	if off%8 != 0 {
		panic(fmt.Sprintf("gasnet: misaligned word access at offset %d", off))
	}
	s.checkRange(off, 8)
	return &s.mem[off/8]
}

// PointerAt returns an unsafe pointer to the byte at off, for typed views
// constructed by the runtime layer. n is the extent that will be accessed
// through the pointer and is range-checked here.
func (s *Segment) PointerAt(off uint32, n int) unsafe.Pointer {
	s.checkRange(off, n)
	return unsafe.Pointer(&s.bytes[off])
}

// CopyIn copies src into the segment at off. When both the offset and
// length are word-aligned the copy is performed with atomic word stores, so
// concurrent direct accesses by co-located ranks observe only whole-word
// values (torn bytes never appear). Unaligned transfers fall back to a
// plain copy.
func (s *Segment) CopyIn(off uint32, src []byte) {
	s.checkRange(off, len(src))
	if off%8 == 0 && len(src) == 8 {
		atomic.StoreUint64(&s.mem[off/8], leU64(src))
		return
	}
	if off%8 == 0 && len(src)%8 == 0 {
		w := off / 8
		for i := 0; i+8 <= len(src); i += 8 {
			v := leU64(src[i : i+8])
			atomic.StoreUint64(&s.mem[w], v)
			w++
		}
		return
	}
	copy(s.bytes[off:], src)
}

// CopyOut copies [off, off+len(dst)) from the segment into dst, using
// atomic word loads for aligned transfers (mirroring CopyIn).
func (s *Segment) CopyOut(off uint32, dst []byte) {
	s.checkRange(off, len(dst))
	if off%8 == 0 && len(dst) == 8 {
		putLeU64(dst, atomic.LoadUint64(&s.mem[off/8]))
		return
	}
	if off%8 == 0 && len(dst)%8 == 0 {
		w := off / 8
		for i := 0; i+8 <= len(dst); i += 8 {
			putLeU64(dst[i:i+8], atomic.LoadUint64(&s.mem[w]))
			w++
		}
		return
	}
	copy(dst, s.bytes[off:int(off)+len(dst)])
}

// leU64 reads a little-endian uint64 from an 8-byte slice.
func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// putLeU64 writes a little-endian uint64 into an 8-byte slice.
func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
