package gasnet

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gupcxx/internal/obs"
)

// The reliability layer gives the UDP conduit the delivery guarantees the
// rest of the runtime assumes, the way GASNet-EX's UDP conduit implements
// its own acks, retransmission, and duplicate suppression on top of raw
// datagrams. Without it, the conduit is only sound on a lossless, ordered
// loopback; with it, datagrams may be dropped, duplicated, or reordered
// (see fault.go) and every active message is still delivered exactly once,
// in per-peer FIFO order.
//
// Wire format: every payload datagram is wrapped in a sequenced frame
//
//	[frameSeq u8] [sender rank u16 LE] [incarnation u32 LE] [seq u32 LE] [ack u32 LE] [inner]
//
// where inner is a complete frameSingle or frameBatch frame — a coalesced
// burst rides inside one sequenced frame and is retransmitted as a unit.
// seq numbers one sender→receiver stream, starting at 1; seq 0 marks a
// standalone acknowledgment carrying no inner frame. ack cumulatively
// acknowledges the reverse stream: every outgoing datagram piggybacks the
// highest contiguously received sequence number from its destination, and
// a domain-level ticker ships a standalone ack when a receiver has sat on
// a pending ack for longer than relAckDelay with nothing to piggyback it
// on. incarnation is the sender's epoch-stamped identity (liveness.go):
// a frame stamped with a dead incarnation of the sender — a datagram that
// outlived its process — is rejected before any ack or delivery
// processing, so a restarted rank's fresh streams are never corrupted by
// its predecessor's retransmissions.
//
// Sender side, per (sender, peer) pair: datagrams are stamped with the
// next sequence number and retained in a retransmission queue (one buffer
// reference each — see pool.go) until acknowledged. Retransmission timing
// is adaptive: each pair runs a Jacobson/Karels RTT estimator (srtt/rttvar
// updated from the ack timing of never-retransmitted datagrams — Karn's
// rule), and the derived RTO (srtt + 4·rttvar, clamped to
// [relRTOMin, relRTOMax]) seeds every new entry's deadline; per-entry
// exponential backoff still doubles it on each expiry. The queue is
// bounded by an adaptive congestion window run AIMD-style between
// Config.RelWindowMin and Config.RelWindow: an RTO expiry halves it (at
// most once per in-flight window of loss, guarded by a recovery sequence,
// the way TCP's fast-recovery exit works), and each cleanly-acked RTT
// sample grows it back by one. A send beyond the window blocks — bounded:
// the block re-checks the peer's liveness, so a peer declared Down
// mid-block wakes its senders promptly instead of wedging them (the op
// pipeline then fails the operations with ErrPeerUnreachable). Callers
// that must not block at all ask first via admit (credit-based admission,
// surfaced as Endpoint.AdmitSend and core.Engine initiation).
// Exhausting the retransmission budget
// (Config.RelMaxAttempts, default relMaxAttempts) declares the
// destination down via the liveness detector (liveness.go): its queue is
// released, its pending operations fail with ErrPeerUnreachable, and the
// job keeps running. Under Config.DisableLiveness the budget instead
// aborts the job, as GASNet's UDP conduit does on requester timeout.
//
// Receiver side, per pair: the next-expected frame is delivered
// immediately and drains any buffered successors; frames at or below the
// cumulative sequence are duplicates, dropped with an immediate re-ack
// (the sender is clearly retransmitting, so its ack got lost); frames
// beyond the window are dropped (the sender will retransmit once the
// window opens); everything else parks in a reorder buffer bounded both
// by the window (frame count) and by a byte budget
// (Config.RelReorderBytes): parking past the budget sheds the parked
// frame furthest from delivery (highest sequence — the one the sender
// retransmits last), so one peer's burst cannot pin unbounded arena
// memory, and sustained shedding from a peer feeds the liveness
// detector's Alive→Suspect transition. Standalone-ack pacing is also
// RTT-driven: the receiver holds a pending ack for about a quarter RTT
// (clamped) hoping to piggyback it before the ticker ships a standalone
// one.
//
// Sequence numbers are 32-bit and do not wrap: at the conduit's datagram
// rates, exhausting them would take years of continuous traffic.

const (
	// relHeaderLen is the sequenced-frame prefix: tag, sender rank,
	// sender incarnation, seq, ack.
	relHeaderLen = 1 + 2 + 4 + 4 + 4

	// relWindow bounds both the per-pair in-flight (unacked) datagrams and
	// the receive-side reorder buffer.
	relWindow = 256

	// relRTO is the initial retransmission timeout used until the RTT
	// estimator has its first sample — comfortably above a loopback round
	// trip plus the receiver's worst-case ack delay, so a healthy run
	// retransmits (almost) nothing. Once samples arrive the estimator's
	// RTO (clamped to [relRTOMin, relRTOMax]) takes over; per-entry
	// backoff doubles it per attempt up to relRTOMax.
	relRTO    = int64(5 * time.Millisecond)
	relRTOMin = int64(2 * time.Millisecond)
	relRTOMax = int64(100 * time.Millisecond)

	// relWindowMin is the default AIMD floor: the congestion window is
	// never halved below this many datagrams, so even a heavily-lossy pair
	// keeps a minimal pipeline.
	relWindowMin = 8

	// relReorderBytes is the default per-pair byte budget for parked
	// out-of-order frames; parking beyond it sheds the frame furthest
	// from delivery (see receive).
	relReorderBytes = 1 << 20

	// relShedSuspect sheds within one ticker sweep mark the overloading
	// sender Suspect — sustained receive-side pressure is a liveness
	// signal, not just an accounting line.
	relShedSuspect = 4

	// relBPWait is the default bound on blocking admission
	// (Config.BackpressureWait): how long AdmitSend may wait for a window
	// credit before giving up with ErrBackpressure.
	relBPWait = 2 * time.Second

	// relMaxAttempts retransmissions without an ack abort the job: the
	// peer is dead or the network is partitioned, and blocking forever
	// would hide it.
	relMaxAttempts = 64

	// relAckDelay is how long a receiver sits on a pending ack hoping to
	// piggyback it on an outgoing datagram before the ticker ships a
	// standalone one — the default until the RTT estimator has samples,
	// after which the per-pair delay tracks srtt/4 clamped to
	// [relAckDelayMin, relAckDelayMax] (well under the sender's RTO, so
	// pacing never provokes a retransmission).
	relAckDelay    = int64(time.Millisecond)
	relAckDelayMin = int64(250 * time.Microsecond)
	relAckDelayMax = int64(4 * time.Millisecond)

	// relAckEvery forces a standalone ack after this many deliveries since
	// the last shipped ack, so a one-way stream keeps the sender's window
	// open without waiting out relAckDelay each time.
	relAckEvery = 32

	// relTickInterval is the retransmit/standalone-ack ticker period.
	relTickInterval = time.Millisecond
)

// relEntry is one unacknowledged datagram in a pair's retransmission
// queue. The queue holds its own reference on wb (released when the
// cumulative ack covers seq), and after the initial transmission the
// ticker is the only writer of the buffered bytes (it refreshes the
// piggybacked ack before each retransmit).
type relEntry struct {
	seq      uint32
	attempts int
	rto      int64
	deadline int64 // cached-clock time of the next retransmission
	sentAt   int64 // real-clock time of the initial transmission (RTT sampling)
	wb       *wireBuf
}

// relPair is the reliability state rank `local` keeps about rank `peer`:
// the send stream local→peer (sequence counter and retransmission queue)
// and the receive stream peer→local (cumulative sequence, reorder buffer,
// and pending-ack bookkeeping). One mutex covers both halves; it is taken
// by the local rank's send path, by the reader goroutine of local's
// socket, and by the ticker.
type relPair struct {
	mu sync.Mutex

	// Send stream local→peer.
	nextSeq  uint32 // last assigned sequence number (first assigned is 1)
	inflight []relEntry

	// Congestion state for the send stream (Jacobson/Karels estimator +
	// AIMD window, see the package comment). srtt == 0 means no sample
	// yet; rto and cwnd are seeded by newReliability.
	srtt       int64  // smoothed RTT, ns
	rttvar     int64  // RTT mean deviation, ns
	rto        int64  // current estimator RTO, ns (seeds new entries)
	cwnd       int    // adaptive window, in [windowMin, window]
	sendAcked  uint32 // highest cumulative ack the peer has sent us
	recoverSeq uint32 // no second multiplicative decrease until acked past this

	// Receive stream peer→local.
	cumSeq       uint32              // highest contiguously received
	lastAck      uint32              // last cumulative ack shipped to peer
	reorder      map[uint32]*wireBuf // buffered out-of-order frames
	reorderBytes int                 // bytes parked in reorder
	shedRecent   int                 // frames shed since the last ticker sweep
	ackPending   bool
	ackSince     int64 // cached-clock time ackPending was set
	ackDelay     int64 // RTT-paced standalone-ack delay, ns

	// ackHint mirrors ackPending for the poll loop's lock-free glance
	// (flushAcks): armed by the reader alongside ackPending, cleared under
	// the lock once the ack ships or piggybacks. Stale-true costs one
	// mutex acquisition; it is never stale-false.
	ackHint atomic.Bool

	// High-water marks of the window-bounded queues, surfaced through
	// Stats so capacity pressure is observable rather than inferred.
	inflightHW int
	reorderHW  int

	// down marks the send stream as targeting a declared-dead peer: sends
	// are dropped instead of queued, and window-blocked senders drain out.
	down bool

	// bpBlocked tracks whether the last admission attempt on this pair hit
	// a full window, so the ops plane sees backpressure onset/relief as
	// edge events rather than one event per refused admission
	// (backpressure.go).
	bpBlocked bool
}

// reliability is the per-domain instance: the pair grid plus the ticker
// goroutine that drives retransmissions and overdue standalone acks.
type reliability struct {
	d     *Domain
	ranks int
	pairs []relPair // [local*ranks + peer]

	// self restricts the ticker's sweep to one sending rank (a multiproc
	// world, where only Self's send streams exist in this process); -1
	// sweeps every rank's streams (in-process worlds).
	self int

	// window and maxAttempts are the per-domain bounds (Config.RelWindow /
	// Config.RelMaxAttempts; the package constants are their defaults).
	// windowMin is the AIMD floor, reorderBudget the per-pair parked-bytes
	// bound, bpFailFast/bpWait the admission policy (config.go).
	window        int
	windowMin     int
	maxAttempts   int
	reorderBudget int
	bpFailFast    bool
	bpWait        time.Duration

	// lv is the liveness detector driven by this layer's ticker; nil when
	// Config.DisableLiveness is set, restoring abort-on-exhaustion.
	lv *liveness

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newReliability(d *Domain) *reliability {
	r := &reliability{
		d:           d,
		ranks:       d.cfg.Ranks,
		self:        -1,
		pairs:       make([]relPair, d.cfg.Ranks*d.cfg.Ranks),
		window:      d.cfg.RelWindow,
		maxAttempts: d.cfg.RelMaxAttempts,
		lv:          d.lv, // constructed first (initUDP); nil if disabled
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if r.window <= 0 {
		r.window = relWindow
	}
	if r.maxAttempts <= 0 {
		r.maxAttempts = relMaxAttempts
	}
	r.windowMin = d.cfg.RelWindowMin
	if r.windowMin <= 0 || r.windowMin > r.window {
		r.windowMin = relWindowMin
	}
	if r.windowMin > r.window {
		r.windowMin = r.window
	}
	r.reorderBudget = d.cfg.RelReorderBytes
	if r.reorderBudget <= 0 {
		r.reorderBudget = relReorderBytes
	}
	if d.cfg.Multiproc {
		r.self = d.cfg.Self
	}
	r.bpFailFast = d.cfg.Backpressure == BackpressureFailFast
	r.bpWait = d.cfg.BackpressureWait
	if r.bpWait <= 0 {
		r.bpWait = relBPWait
	}
	// Seed every pair's congestion state before the ticker or any sender
	// can touch it: full window (shrink on evidence of loss, like TCP's
	// initial cwnd being generous on a known-short path), default RTO and
	// ack pacing until the estimator has samples.
	for i := range r.pairs {
		p := &r.pairs[i]
		p.cwnd = r.window
		p.rto = relRTO
		p.ackDelay = relAckDelay
	}
	go r.run()
	return r
}

func (r *reliability) pair(local, peer int) *relPair {
	return &r.pairs[local*r.ranks+peer]
}

// parseRelHeader validates a sequenced frame's fixed prefix. The inner
// frame, if any, starts at relHeaderLen.
func parseRelHeader(b []byte) (from uint16, inc, seq, ack uint32, err error) {
	if len(b) < relHeaderLen {
		return 0, 0, 0, 0, fmt.Errorf("gasnet: truncated sequenced frame (%d bytes)", len(b))
	}
	if b[0] != frameSeq {
		return 0, 0, 0, 0, fmt.Errorf("gasnet: sequenced frame has tag %#x", b[0])
	}
	from = binary.LittleEndian.Uint16(b[1:3])
	inc = binary.LittleEndian.Uint32(b[3:7])
	seq = binary.LittleEndian.Uint32(b[7:11])
	ack = binary.LittleEndian.Uint32(b[11:15])
	return from, inc, seq, ack, nil
}

// send stamps wb (whose first relHeaderLen bytes were reserved by the
// caller) with the next sequence number for from→to and the piggybacked
// cumulative ack for to→from, retains it in the retransmission queue, and
// ships it. It blocks while the in-flight congestion window is full —
// but the block is liveness-aware: acks arrive on the socket reader
// goroutine (so credit frees without this goroutine running), and a peer
// declared Down mid-block is re-checked every wakeup, so the sender
// drains out promptly instead of wedging against a peer that will never
// ack. Admission-controlled callers (AdmitSend) normally reserve credit
// before reaching here, so this block is the backstop, not the policy.
func (r *reliability) send(from, to int, wb *wireBuf) {
	spin := 0
	for {
		ok, full := r.trySeal(from, to, wb)
		if ok {
			break
		}
		if !full {
			// Racing shutdown, or a declared-dead destination: the datagram
			// is dropped (the op pipeline fails down-peer operations with
			// ErrPeerUnreachable; stalling the sender here would deadlock
			// it against a peer that will never ack).
			return
		}
		// Momentary fullness resolves within an ack round trip; yield a
		// few times before escalating to real sleeps so a blocked sender
		// costs no CPU while still observing a Down transition within a
		// sleep quantum.
		if spin < 4 {
			spin++
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	r.d.writeDatagram(from, to, wb.b)
}

// trySeal attempts the non-writing half of send: stamp wb with the next
// sequence number and piggybacked ack and retain it in the
// retransmission queue, without blocking and without putting it on the
// wire — the batched send path seals a burst's frames one by one and
// ships them in a single vectorized write. ok reports the frame was
// sealed (the caller must now transmit wb.b exactly once, by any path);
// when ok is false, full distinguishes a momentarily-full congestion
// window (retry after letting acks drain) from a dropped frame
// (shutdown or down peer — the caller still owns its wb reference).
func (r *reliability) trySeal(from, to int, wb *wireBuf) (ok, full bool) {
	p := r.pair(from, to)
	p.mu.Lock()
	if r.closed.Load() || p.down {
		p.mu.Unlock()
		return false, false
	}
	if len(p.inflight) >= p.cwnd {
		p.mu.Unlock()
		return false, true
	}
	p.nextSeq++
	seq := p.nextSeq
	ack := p.cumSeq
	if p.ackPending {
		p.ackPending = false
		r.d.acksPiggybacked.Add(1)
	}
	p.lastAck = ack
	b := wb.b
	b[0] = frameSeq
	binary.LittleEndian.PutUint16(b[1:3], uint16(from))
	binary.LittleEndian.PutUint32(b[3:7], r.d.inc)
	binary.LittleEndian.PutUint32(b[7:11], seq)
	binary.LittleEndian.PutUint32(b[11:15], ack)
	wb.retain(1) // the retransmission queue's reference; released on ack
	rto := p.rto
	p.inflight = append(p.inflight, relEntry{
		seq:      seq,
		rto:      rto,
		deadline: clockNow() + rto,
		sentAt:   clockRefresh(),
		wb:       wb,
	})
	if len(p.inflight) > p.inflightHW {
		p.inflightHW = len(p.inflight)
	}
	p.mu.Unlock()
	return true, false
}

// sampleRTT folds one clean round-trip measurement into the pair's
// Jacobson/Karels estimator and re-derives the RTO and the standalone-ack
// pacing delay. Caller holds p.mu. Only never-retransmitted datagrams are
// sampled (Karn's rule — an ack for a retransmitted datagram is ambiguous
// about which transmission it answers).
func (p *relPair) sampleRTT(rtt int64) {
	if rtt <= 0 {
		return
	}
	if p.srtt == 0 {
		p.srtt = rtt
		p.rttvar = rtt / 2
	} else {
		err := rtt - p.srtt
		p.srtt += err / 8
		if err < 0 {
			err = -err
		}
		p.rttvar += (err - p.rttvar) / 4
	}
	rto := p.srtt + 4*p.rttvar
	if rto < relRTOMin {
		rto = relRTOMin
	}
	if rto > relRTOMax {
		rto = relRTOMax
	}
	p.rto = rto
	ad := p.srtt / 4
	if ad < relAckDelayMin {
		ad = relAckDelayMin
	}
	if ad > relAckDelayMax {
		ad = relAckDelayMax
	}
	p.ackDelay = ad
}

// receive processes one sequenced frame addressed to ep, taking ownership
// of wb: the ack half completes our own send stream toward the frame's
// sender, the seq half delivers, buffers, or drops the inner frame.
// It runs on ep's socket reader goroutine.
func (r *reliability) receive(ep *Endpoint, wb *wireBuf) {
	d := r.d
	from, inc, seq, ack, err := parseRelHeader(wb.b)
	if err != nil || int(from) >= d.cfg.Ranks {
		d.decodeErrors.Add(1)
		wb.release()
		return
	}
	if r.lv != nil {
		// Incarnation gate before ANY processing: a frame from a dead
		// incarnation of the sender must not refresh liveness, complete
		// acks, or deliver — its process is gone and its streams were
		// reset (or will be, on readmission).
		if !r.lv.checkInc(ep.rank, int(from), inc) {
			wb.release()
			return
		}
		// Any sequenced traffic is proof of life; heartbeats only carry
		// the idle case.
		r.lv.heard(ep.rank, int(from))
	}
	p := r.pair(ep.rank, int(from))
	var ackNow bool
	var ackVal uint32

	p.mu.Lock()
	// Ack half: release every in-flight datagram the peer has cumulatively
	// acknowledged (entries are in sequence order; numbers do not wrap).
	// The newest released entry that was never retransmitted yields an RTT
	// sample (Karn's rule), and a clean sample both updates the estimator
	// and grows the congestion window additively back toward the
	// configured maximum.
	n := 0
	cleanSentAt := int64(-1)
	for n < len(p.inflight) && p.inflight[n].seq <= ack {
		if p.inflight[n].attempts == 0 {
			cleanSentAt = p.inflight[n].sentAt
		}
		p.inflight[n].wb.release()
		n++
	}
	if n > 0 {
		rem := copy(p.inflight, p.inflight[n:])
		for i := rem; i < len(p.inflight); i++ {
			p.inflight[i] = relEntry{}
		}
		p.inflight = p.inflight[:rem]
		if ack > p.sendAcked {
			p.sendAcked = ack
		}
		if cleanSentAt >= 0 {
			p.sampleRTT(clockRefresh() - cleanSentAt)
			if p.cwnd < r.window {
				p.cwnd++
				d.windowGrows.Add(1)
				if p.cwnd == r.window {
					// Fully recovered to the configured ceiling — one event
					// per recovery episode, not one per additive step.
					d.emit(obs.EvWindowGrow, ep.rank, int(from), int64(r.window), 0)
				}
			}
		}
		// An ack is a completion signal, not just window bookkeeping: for
		// value-less remote ops (puts) the transport ack IS the op's
		// completion, and a rank parked in Wait would otherwise only notice
		// at the park timeout. Wake it now. (notify is a coalescing
		// non-blocking send; safe under p.mu.)
		ep.notify()
	}

	switch {
	case seq == 0:
		// Standalone ack: nothing to deliver.
		p.mu.Unlock()
		wb.release()
		return
	case seq <= p.cumSeq:
		// Duplicate of something already delivered — the peer is
		// retransmitting, so our ack was lost or late. Re-ack immediately
		// to stop the storm.
		d.dupsDropped.Add(1)
		ackNow, ackVal = true, p.cumSeq
		p.lastAck = p.cumSeq
		p.ackPending = false
		p.mu.Unlock()
		wb.release()
	case seq == p.cumSeq+1:
		// In order: deliver, then drain any buffered successors.
		p.cumSeq = seq
		d.deliverParsed(ep, wb, wb.b[relHeaderLen:])
		for len(p.reorder) > 0 {
			next, ok := p.reorder[p.cumSeq+1]
			if !ok {
				break
			}
			delete(p.reorder, p.cumSeq+1)
			p.reorderBytes -= len(next.b)
			p.cumSeq++
			d.deliverParsed(ep, next, next.b[relHeaderLen:])
		}
		if !p.ackPending {
			p.ackPending = true
			p.ackSince = clockNow()
			p.ackHint.Store(true)
		}
		if p.cumSeq-p.lastAck >= relAckEvery {
			ackNow, ackVal = true, p.cumSeq
			p.lastAck = p.cumSeq
			p.ackPending = false
		}
		p.mu.Unlock()
	default:
		// Future sequence: a gap the sender will retransmit into.
		switch {
		case seq-p.cumSeq > uint32(r.window):
			// Beyond anything a well-behaved sender has in flight.
			d.outOfWindowDrops.Add(1)
			p.mu.Unlock()
			wb.release()
		default:
			if p.reorder == nil {
				p.reorder = make(map[uint32]*wireBuf)
			}
			if _, dup := p.reorder[seq]; dup {
				d.dupsDropped.Add(1)
				p.mu.Unlock()
				wb.release()
				break
			}
			// Byte budget: parking past Config.RelReorderBytes sheds the
			// parked frame furthest from delivery (highest sequence — the
			// sender retransmits it last, so shedding it costs the least
			// recovery time); if the incoming frame is itself the furthest,
			// it is the one shed. Shedding is loss the sender repairs; the
			// budget just refuses to let one peer's burst pin unbounded
			// arena memory.
			for p.reorderBytes+len(wb.b) > r.reorderBudget {
				var hiSeq uint32
				for s := range p.reorder {
					if s > hiSeq {
						hiSeq = s
					}
				}
				if hiSeq <= seq {
					break // incoming frame is the furthest: shed it instead
				}
				victim := p.reorder[hiSeq]
				delete(p.reorder, hiSeq)
				p.reorderBytes -= len(victim.b)
				p.shedRecent++
				d.shedFrames.Add(1)
				d.shedBytes.Add(int64(len(victim.b)))
				victim.release()
			}
			if p.reorderBytes+len(wb.b) > r.reorderBudget {
				p.shedRecent++
				d.shedFrames.Add(1)
				d.shedBytes.Add(int64(len(wb.b)))
				p.mu.Unlock()
				wb.release()
				break
			}
			p.reorder[seq] = wb
			p.reorderBytes += len(wb.b)
			if len(p.reorder) > p.reorderHW {
				p.reorderHW = len(p.reorder)
			}
			p.mu.Unlock()
		}
	}
	if ackNow {
		r.sendAck(ep.rank, int(from), ackVal)
	}
}

// flushAcks ships every pending ack on from's receive streams right away.
// It is the eager half of ack pacing, called from the owner's poll loop
// after a dispatch round: if delivering the inbound frames produced no
// reverse traffic to piggyback on (pure one-sided streams — puts, and
// the target side of gets), the ack leaves now, from the goroutine that
// is actually running, instead of waiting out the ticker's pacing delay.
// The ticker remains the backstop for ranks that stop polling. On
// oversubscribed hosts (more ranks than cores — every process-per-rank
// world on a small machine) the ticker goroutine can be starved past the
// sender's RTO by the very poll loop that just consumed the data;
// flushing here turns that retransmission storm back into one timely ack.
func (r *reliability) flushAcks(from int) {
	for to := 0; to < r.ranks; to++ {
		p := r.pair(from, to)
		if !p.ackHint.Load() {
			continue
		}
		p.mu.Lock()
		if !p.ackPending {
			p.ackHint.Store(false)
			p.mu.Unlock()
			continue
		}
		ack := p.cumSeq
		p.ackPending = false
		p.lastAck = ack
		p.ackHint.Store(false)
		p.mu.Unlock()
		r.sendAck(from, to, ack)
	}
}

// sendAck ships a standalone cumulative acknowledgment (seq 0, no inner
// frame) from→to. Standalone acks are unsequenced and unreliable: a lost
// ack is repaired by the next ack or by the sender's retransmission.
func (r *reliability) sendAck(from, to int, ack uint32) {
	d := r.d
	wb := d.arena.get(relHeaderLen)
	b := wb.b
	b[0] = frameSeq
	binary.LittleEndian.PutUint16(b[1:3], uint16(from))
	binary.LittleEndian.PutUint32(b[3:7], d.inc)
	binary.LittleEndian.PutUint32(b[7:11], 0)
	binary.LittleEndian.PutUint32(b[11:15], ack)
	d.acksStandalone.Add(1)
	d.writeFrame(from, to, b)
	wb.release()
}

// run is the ticker goroutine: it keeps the cached clock fresh and sweeps
// the pair grid for expired retransmissions and overdue standalone acks.
func (r *reliability) run() {
	defer close(r.done)
	t := time.NewTicker(relTickInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			now := clockRefresh()
			r.sweep(now)
			if r.lv != nil {
				r.lv.tick(now)
			}
			// Network-model housekeeping: scenario phases and delayed
			// (latency-injected) datagrams run off the same tick.
			r.d.faultTick(now)
		}
	}
}

// sweep retransmits every in-flight datagram whose deadline passed and
// flushes pending acks older than the pair's RTT-paced delay. An expiry
// is the AIMD loss signal: the congestion window is halved down to the
// floor — at most once per in-flight window of loss (recoverSeq guard, so
// one burst of drops costs one decrease, not one per datagram) — and the
// event is counted as an RTOExpiration. Sustained receive-side shedding
// observed since the last sweep marks the overloading sender Suspect.
func (r *reliability) sweep(now int64) {
	d := r.d
	for from := 0; from < r.ranks; from++ {
		if r.self >= 0 && from != r.self {
			continue // only Self's send streams exist in a multiproc world
		}
		for to := 0; to < r.ranks; to++ {
			p := r.pair(from, to)
			p.mu.Lock()
			if p.down {
				// Down pair. Parked (healable) queues must not retransmit
				// into the partition — healPair re-arms them; released
				// queues are empty anyway.
				p.mu.Unlock()
				continue
			}
			// Deadlines are not sorted once backoff diverges, so scan the
			// whole (window-bounded) queue.
			exhausted := false
			var exhaustedSeq uint32
			expired := false
			for i := range p.inflight {
				e := &p.inflight[i]
				if e.deadline > now {
					continue
				}
				expired = true
				e.attempts++
				if e.attempts > r.maxAttempts {
					if r.lv == nil {
						p.mu.Unlock()
						panic(fmt.Sprintf(
							"gasnet: reliable UDP: rank %d got no ack from rank %d for seq %d after %d retransmits (peer dead or network partitioned)",
							from, to, e.seq, r.maxAttempts))
					}
					// Budget spent: the peer is dead or partitioned.
					// Declare it down instead of aborting — pending
					// operations fail with ErrPeerUnreachable through the
					// liveness sweep, and the job decides what to do.
					exhausted = true
					exhaustedSeq = e.seq
					break
				}
				e.rto *= 2
				if e.rto > relRTOMax {
					e.rto = relRTOMax
				}
				e.deadline = now + e.rto
				// Refresh the piggybacked ack in place: the queue holds
				// the only live reference to these bytes after the
				// initial transmission.
				binary.LittleEndian.PutUint32(e.wb.b[11:15], p.cumSeq)
				p.lastAck = p.cumSeq
				p.ackPending = false
				d.retransmits.Add(1)
				d.writeFrame(from, to, e.wb.b)
			}
			if expired {
				d.rtoExpirations.Add(1)
				if p.sendAcked >= p.recoverSeq {
					// First loss signal since the last decrease took
					// effect: halve, then ignore further expiries until
					// the peer acks past everything currently assigned.
					old := p.cwnd
					p.cwnd /= 2
					if p.cwnd < r.windowMin {
						p.cwnd = r.windowMin
					}
					p.recoverSeq = p.nextSeq
					d.windowShrinks.Add(1)
					d.emit(obs.EvWindowShrink, from, to, int64(old), int64(p.cwnd))
				}
			}
			shedBurst := p.shedRecent >= relShedSuspect
			p.shedRecent = 0
			if exhausted {
				p.mu.Unlock()
				d.retransmitExhausted.Add(1)
				d.emit(obs.EvRetransmitExhausted, from, to, int64(exhaustedSeq), 0)
				r.lv.markDown(from, to, causeNet) // parks or drains the queue
				continue
			}
			if shedBurst && r.lv != nil {
				// The receive half of pair (from, to) is the to→from
				// stream: rank `from` is being flooded by rank `to`
				// faster than it can deliver. That is a health signal
				// about `to`, not just an accounting line.
				r.lv.markSuspect(from, to)
			}
			if p.ackPending && now-p.ackSince >= p.ackDelay {
				ack := p.cumSeq
				p.ackPending = false
				p.lastAck = ack
				p.mu.Unlock()
				r.sendAck(from, to, ack)
				continue
			}
			p.mu.Unlock()
		}
	}
}

// releasePair marks the from→to send stream down and releases its
// retransmission queue: the peer will never ack, so retaining the buffers
// (and the window slots) would stall senders and leak arena capacity.
func (r *reliability) releasePair(from, to int) {
	p := r.pair(from, to)
	p.mu.Lock()
	p.down = true
	for i := range p.inflight {
		p.inflight[i].wb.release()
		p.inflight[i] = relEntry{}
	}
	p.inflight = p.inflight[:0]
	p.mu.Unlock()
}

// parkPair marks the from→to send stream down WITHOUT releasing its
// retransmission queue — the healable-death half of markDown
// (liveness.go). The in-flight entries keep their sequence numbers and
// buffers: they were assigned seqs the receiver's cumulative stream still
// expects, so releasing them would leave gaps no retransmission could
// ever close after a heal. While parked, trySeal drops new sends (no new
// seqs are assigned — no new gaps), the sweep skips the pair (nothing
// retransmits into the partition), and window-blocked senders drain out
// exactly as with releasePair. If the peer turns out to be truly gone,
// Close's drainState returns the parked buffers to the arena.
func (r *reliability) parkPair(from, to int) {
	p := r.pair(from, to)
	p.mu.Lock()
	p.down = true
	p.mu.Unlock()
}

// healPair re-arms a parked pair — the reliability half of liveness.heal,
// called under its mmu with the pair still marked down. Every parked
// entry is reset to a fresh first attempt (backoff cleared, RTO from the
// estimator, deadline now) so the next ticker sweep retransmits it
// immediately: the first post-heal exchange costs O(srtt), not the
// clamped RTO the entries had backed off to when the partition hit.
// recoverSeq moves past everything parked so those forced expiries are
// not misread as fresh congestion, and the window restarts from the AIMD
// floor — the path just proved it can vanish; probe conservatively.
// Estimator state (srtt/rttvar/rto) survives: the pre-partition path is
// the best guess for the post-heal one. The receive half needs nothing:
// cumSeq/reorder kept parity with everything actually delivered.
//
// Note the delivered-late consequence: parked frames whose operations
// were already failed by the down sweep still retransmit and execute at
// the receiver after the heal. That is the same at-most-once-per-seq,
// maybe-after-failure semantics a deadline expiry already has — the
// completion cookie died with the op, so the late ack is a counted
// badCookieDrop, not a double completion.
func (r *reliability) healPair(from, to int) {
	p := r.pair(from, to)
	p.mu.Lock()
	now := clockNow()
	for i := range p.inflight {
		e := &p.inflight[i]
		e.attempts = 0
		e.rto = p.rto
		e.deadline = now
	}
	p.cwnd = r.windowMin
	p.recoverSeq = p.nextSeq
	p.down = false
	p.bpBlocked = false
	p.mu.Unlock()
}

// resetPair returns the from↔to pair to its just-constructed state — both
// halves: the send stream (sequence counter, retransmission queue,
// RTT/RTO estimator, AIMD window) and the receive stream (cumulative
// sequence, reorder buffer, ack pacing). Called on peer readmission
// (liveness.go): the restarted peer starts its streams from scratch, so
// any surviving state on our side — a cumSeq the new incarnation never
// sent, an estimator tuned to the dead process — would silently
// dup-drop or misclock the fresh streams. Both sides reset coherently:
// the joiner's state is fresh by construction, the survivor resets here.
func (r *reliability) resetPair(from, to int) {
	p := r.pair(from, to)
	p.mu.Lock()
	for i := range p.inflight {
		p.inflight[i].wb.release()
		p.inflight[i] = relEntry{}
	}
	p.inflight = p.inflight[:0]
	for seq, wb := range p.reorder {
		wb.release()
		delete(p.reorder, seq)
	}
	p.nextSeq = 0
	p.srtt = 0
	p.rttvar = 0
	p.rto = relRTO
	p.cwnd = r.window
	p.sendAcked = 0
	p.recoverSeq = 0
	p.cumSeq = 0
	p.lastAck = 0
	p.reorderBytes = 0
	p.shedRecent = 0
	p.ackPending = false
	p.ackSince = 0
	p.ackDelay = relAckDelay
	p.ackHint.Store(false)
	p.down = false
	p.bpBlocked = false
	p.mu.Unlock()
}

// shutdown stops the ticker (idempotent) and marks the layer closed so
// window-blocked senders drain out.
func (r *reliability) shutdown() {
	r.stopOnce.Do(func() {
		r.closed.Store(true)
		close(r.stop)
	})
	<-r.done
}

// drainState releases every buffer still held by retransmission queues and
// reorder buffers. Called after the ticker and the socket readers have
// stopped, so no concurrent access remains.
func (r *reliability) drainState() {
	for i := range r.pairs {
		p := &r.pairs[i]
		p.mu.Lock()
		for j := range p.inflight {
			p.inflight[j].wb.release()
			p.inflight[j] = relEntry{}
		}
		p.inflight = p.inflight[:0]
		for seq, wb := range p.reorder {
			wb.release()
			delete(p.reorder, seq)
		}
		p.reorderBytes = 0
		p.mu.Unlock()
	}
}
