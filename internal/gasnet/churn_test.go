package gasnet

// Churn units: epoch-based readmission exercised inside one test process.
// A "restart" here is closeAbrupt (teardown with no goodbye frame — the
// kill -9 shape) followed by a fresh Domain for the same rank under a
// bumped incarnation and the Rejoin flag, exactly what a relaunched
// process gets from the rendezvous server's rejoin path.

import (
	"bytes"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"gupcxx/internal/obs"
)

// newChurnWorld is newMultiprocWorld with the liveness clock sped up for
// kill/restart cycles; it also returns the peer table so restarts can
// splice in a fresh socket. bus, when non-nil, is attached to rank 0 so
// tests can assert the churn event vocabulary.
func newChurnWorld(t testing.TB, n int, bus *obs.Bus) ([]*Domain, []netip.AddrPort) {
	t.Helper()
	conns := make([]*net.UDPConn, n)
	peers := make([]netip.AddrPort, n)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("bind rank %d: %v", i, err)
		}
		conns[i] = c
		peers[i] = c.LocalAddr().(*net.UDPAddr).AddrPort()
	}
	doms := make([]*Domain, n)
	for i := range doms {
		var b *obs.Bus
		if i == 0 {
			b = bus
		}
		doms[i] = newChurnDomain(t, n, i, peers, conns[i], churnEpoch, false, b)
	}
	return doms, peers
}

const churnEpoch = 7

func newChurnDomain(t testing.TB, n, self int, peers []netip.AddrPort, conn *net.UDPConn, epoch uint32, rejoin bool, bus *obs.Bus) *Domain {
	t.Helper()
	d, err := NewDomain(Config{
		Ranks:          n,
		Conduit:        UDP,
		Multiproc:      true,
		Self:           self,
		Epoch:          epoch,
		Rejoin:         rejoin,
		Peers:          peers,
		SelfConn:       conn,
		Events:         bus,
		SegmentBytes:   1 << 16,
		HeartbeatEvery: 2 * time.Millisecond,
		SuspectAfter:   20 * time.Millisecond,
		DownAfter:      80 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("domain rank %d: %v", self, err)
	}
	t.Cleanup(d.Close)
	return d
}

// closeAbrupt tears a domain down without announcing departure — no
// goodbye frame, the in-process stand-in for kill -9. The peers are left
// to discover the death by silence.
func closeAbrupt(d *Domain) {
	if d.rel != nil {
		d.rel.shutdown()
	}
	if d.udp != nil {
		d.udp.close()
	}
	if d.rel != nil {
		d.rel.drainState()
	}
}

// restartRank binds a fresh socket for rank r and boots its replacement
// domain under a bumped incarnation with the Rejoin flag — the in-process
// equivalent of the launcher respawning the process and the rendezvous
// server bumping the epoch.
func restartRank(t testing.TB, n, r int, peers []netip.AddrPort, epoch uint32) (*Domain, []netip.AddrPort) {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("rebind rank %d: %v", r, err)
	}
	np := append([]netip.AddrPort(nil), peers...)
	np[r] = c.LocalAddr().(*net.UDPAddr).AddrPort()
	return newChurnDomain(t, n, r, np, c, epoch, true, nil), np
}

// spinDoms polls the self endpoint of every listed domain until cond
// holds — spinWorld restricted to the domains still alive.
func spinDoms(t testing.TB, doms []*Domain, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("churn spin timed out")
		}
		for _, d := range doms {
			d.Endpoint(d.Config().Self).Poll()
		}
	}
}

// TestChurnReadmission is the core Down→Readmitted cycle: rank 1 dies
// abruptly, rank 0 fails the op in flight against the dead incarnation
// with ErrPeerUnreachable, the restarted rank 1 rejoins under a bumped
// incarnation, rank 0 readmits it (counted, with fully reset pair
// state), and puts flow both directions afterwards.
func TestChurnReadmission(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	doms, peers := newChurnWorld(t, 2, bus)
	ep0 := doms[0].Endpoint(0)

	// Healthy warmup: a put each way proves the pair works.
	var warm bool
	ep0.PutRemote(1, 0, []byte("warm"), nil, func(err error) {
		if err != nil {
			t.Errorf("warmup put: %v", err)
		}
		warm = true
	})
	spinDoms(t, doms, func() bool { return warm })

	// Kill rank 1 without a goodbye, then race an op against the corpse:
	// it must fail with ErrPeerUnreachable once silence buries the peer —
	// never hang, never silently retarget a later incarnation.
	closeAbrupt(doms[1])
	var deadErr error
	var deadDone bool
	ep0.PutRemote(1, 0, []byte("into the void"), nil, func(err error) {
		deadErr = err
		deadDone = true
	})
	alive := doms[:1]
	spinDoms(t, alive, func() bool { return deadDone })
	if !errors.Is(deadErr, ErrPeerUnreachable) {
		t.Fatalf("op against dead incarnation resolved with %v, want ErrPeerUnreachable", deadErr)
	}
	if !ep0.PeerDown(1) {
		t.Fatal("rank 1 not marked down after abrupt death")
	}
	if doms[0].Stats().PeersDown == 0 {
		t.Error("death not counted")
	}

	// Restart rank 1 under a bumped incarnation; its join announcements
	// must clear Down at rank 0 and reset the pair.
	d1b, _ := restartRank(t, 2, 1, peers, churnEpoch+1)
	world := []*Domain{doms[0], d1b}
	spinDoms(t, world, func() bool {
		return !ep0.PeerDown(1) && doms[0].Stats().PeersReadmitted >= 1
	})
	if got := doms[0].IncarnationOf(0, 1); got != churnEpoch+1 {
		t.Errorf("recorded incarnation %d, want %d", got, churnEpoch+1)
	}
	// The transition is an event, payload naming both incarnations.
	evs, ok := waitForEvent(sub, obs.EvPeerReadmitted, nil)
	if !ok {
		t.Fatal("no EvPeerReadmitted on the bus")
	}
	for _, ev := range evs {
		if ev.Kind == obs.EvPeerReadmitted {
			if ev.Peer != 1 || ev.A != churnEpoch+1 || ev.B != churnEpoch {
				t.Errorf("EvPeerReadmitted payload peer=%d A=%d B=%d, want peer=1 A=%d B=%d",
					ev.Peer, ev.A, ev.B, churnEpoch+1, churnEpoch)
			}
			break
		}
	}

	// Post-readmission traffic completes in BOTH directions, landing in
	// the reincarnated segment.
	data := []byte("second life")
	var putDone bool
	ep0.PutRemote(1, 64, data, nil, func(err error) {
		if err != nil {
			t.Errorf("post-readmission put 0->1: %v", err)
		}
		putDone = true
	})
	spinDoms(t, world, func() bool { return putDone })
	got := make([]byte, len(data))
	d1b.Segment(1).CopyOut(64, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("reincarnated segment holds %q, want %q", got, data)
	}
	var backDone bool
	d1b.Endpoint(1).PutRemote(0, 128, []byte("hello back"), nil, func(err error) {
		if err != nil {
			t.Errorf("post-readmission put 1->0: %v", err)
		}
		backDone = true
	})
	spinDoms(t, world, func() bool { return backDone })
}

// TestChurnStaleIncarnationDrops: once a peer is Down, datagrams from its
// dead incarnation — heartbeats included — are dropped and counted, never
// delivered: they must not refresh the silence clock, must not emit
// recovery, and must not resurrect the peer.
func TestChurnStaleIncarnationDrops(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	doms, _ := newChurnWorld(t, 2, bus)
	ep0 := doms[0].Endpoint(0)

	closeAbrupt(doms[1])
	alive := doms[:1]
	spinDoms(t, alive, func() bool { return ep0.PeerDown(1) })

	// Forge the dead incarnation's late datagrams arriving after the
	// declaration: a heartbeat and a sequenced data frame, injected
	// exactly as the reader goroutine would.
	before := doms[0].Stats().StaleIncarnationDrops
	hb := doms[0].arena.get(bufClassSmall)
	hb.b = append(hb.b[:0], frameHB, 1, 0, churnEpoch, 0, 0, 0)
	doms[0].receiveDatagram(ep0, hb)

	m := Msg{Handler: HandlerUserBase, A0: 1}
	wb := doms[0].arena.get(bufClassLarge)
	wire := append(wb.b[:relHeaderLen], frameSingle)
	wire = appendMsg(wire, &m)
	wb.b = wire
	wb.b[0] = frameSeq
	wb.b[1], wb.b[2] = 1, 0 // from rank 1
	putU32(wb.b[3:7], churnEpoch)
	putU32(wb.b[7:11], 1)
	putU32(wb.b[11:15], 0)
	delivered := false
	doms[0].RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { delivered = true })
	doms[0].receiveDatagram(ep0, wb)
	for i := 0; i < 64; i++ {
		ep0.Poll()
	}

	if delivered {
		t.Error("dead incarnation's data frame was delivered")
	}
	if got := doms[0].Stats().StaleIncarnationDrops; got < before+2 {
		t.Errorf("StaleIncarnationDrops = %d, want >= %d", got, before+2)
	}
	if !ep0.PeerDown(1) {
		t.Error("late datagrams resurrected a dead incarnation")
	}
	if _, ok := waitForEvent(sub, obs.EvStaleIncarnation, nil); !ok {
		t.Error("no EvStaleIncarnation on the bus")
	}
}

// TestChurnDownGenScopesSweep: operation generations scope the peer-down
// sweep — an op issued against the readmitted incarnation must survive
// even though the endpoint's sweep for the previous death runs after it
// was registered.
func TestChurnDownGenScopesSweep(t *testing.T) {
	doms, peers := newChurnWorld(t, 2, nil)
	ep0 := doms[0].Endpoint(0)

	closeAbrupt(doms[1])
	spinDoms(t, doms[:1], func() bool { return ep0.PeerDown(1) })
	if gen := ep0.DownGen(1); gen != 1 {
		t.Fatalf("death generation %d after first death, want 1", gen)
	}

	d1b, _ := restartRank(t, 2, 1, peers, churnEpoch+1)
	world := []*Domain{doms[0], d1b}
	spinDoms(t, world, func() bool { return !ep0.PeerDown(1) })

	// New ops stamp the current generation and complete normally; the
	// sweep for death #1 (already consumed or not) must not touch them.
	var done bool
	ep0.PutRemote(1, 0, []byte("post-churn"), nil, func(err error) {
		if err != nil {
			t.Errorf("post-readmission op swept: %v", err)
		}
		done = true
	})
	spinDoms(t, world, func() bool { return done })
}

// TestChurnDisableReadmission: with readmission off, Down is forever —
// join frames from the restarted incarnation are ignored.
func TestChurnDisableReadmission(t *testing.T) {
	conns := make([]*net.UDPConn, 2)
	peers := make([]netip.AddrPort, 2)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		peers[i] = c.LocalAddr().(*net.UDPAddr).AddrPort()
	}
	mk := func(self int, conn *net.UDPConn) *Domain {
		d, err := NewDomain(Config{
			Ranks: 2, Conduit: UDP, Multiproc: true, Self: self,
			Epoch: churnEpoch, Peers: peers, SelfConn: conn,
			SegmentBytes:       1 << 16,
			HeartbeatEvery:     2 * time.Millisecond,
			SuspectAfter:       20 * time.Millisecond,
			DownAfter:          80 * time.Millisecond,
			DisableReadmission: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d
	}
	d0 := mk(0, conns[0])
	d1 := mk(1, conns[1])
	_ = d1
	ep0 := d0.Endpoint(0)

	closeAbrupt(d1)
	spinDoms(t, []*Domain{d0}, func() bool { return ep0.PeerDown(1) })

	d1b, _ := restartRank(t, 2, 1, peers, churnEpoch+1)
	// Give the rejoiner several heartbeat rounds of join announcements;
	// rank 0 must keep ignoring them.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		ep0.Poll()
		d1b.Endpoint(1).Poll()
	}
	if !ep0.PeerDown(1) {
		t.Fatal("DisableReadmission did not keep the peer down")
	}
	if doms := d0.Stats().PeersReadmitted; doms != 0 {
		t.Fatalf("PeersReadmitted = %d with readmission disabled", doms)
	}
}
