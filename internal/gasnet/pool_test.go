package gasnet

import "testing"

func TestArenaRecycles(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	var a bufArena
	wb := a.get(100)
	if len(wb.b) != 100 || cap(wb.b) != bufClassSmall {
		t.Fatalf("len/cap = %d/%d", len(wb.b), cap(wb.b))
	}
	wb.b[0] = 0xAA
	wb.release()
	wb2 := a.get(50)
	if wb2 != wb {
		t.Error("released small buffer not recycled")
	}
	if a.hits.Load() != 1 || a.misses.Load() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", a.hits.Load(), a.misses.Load())
	}
	wb2.release()
}

func TestArenaRefcountedSharing(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	var a bufArena
	wb := a.get(10)
	wb.retain(2) // three messages now alias the buffer
	wb.release()
	wb.release()
	if got := a.get(10); got == wb {
		t.Fatal("buffer recycled while references remain")
	}
	wb.release() // last reference
	// Pool now holds wb plus the buffer from the probing get above; drain
	// both and check wb came back.
	seen := false
	for i := 0; i < 2; i++ {
		if a.get(10) == wb {
			seen = true
		}
	}
	if !seen {
		t.Error("buffer not recycled after last release")
	}
}

func TestArenaSizeClasses(t *testing.T) {
	var a bufArena
	small := a.get(bufClassSmall)
	large := a.get(bufClassSmall + 1)
	if cap(large.b) != bufClassLarge {
		t.Errorf("large cap = %d", cap(large.b))
	}
	huge := a.get(bufClassLarge + 1)
	if huge.class != -1 {
		t.Error("oversize request should be unpooled")
	}
	small.release()
	large.release()
	huge.release() // dropped, not pooled: must not panic
	if a.get(bufClassLarge+1) == huge {
		t.Error("oversize buffer must not be recycled")
	}
}
