package gasnet

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"

	"gupcxx/internal/obs"
)

// ErrPeerUnreachable is the failure delivered to every operation whose
// target rank has been declared down by the liveness machinery: the
// retransmission budget was exhausted, or the peer fell silent past
// Config.DownAfter. Test with errors.Is.
var ErrPeerUnreachable = errors.New("gasnet: peer unreachable")

// Per-peer liveness states. Alive is the zero value; Suspect is a peer
// that has fallen silent past Config.SuspectAfter (recoverable — hearing
// from it restores Alive); Down is reached through silence past
// Config.DownAfter or an exhausted retransmission budget. Down is sticky
// within one incarnation of the peer — ORDINARY late datagrams from a
// declared-dead process never resurrect it — but there are two ways out:
// a restarted peer re-registers under a bumped epoch and is readmitted
// (Down→Alive with fully reset reliability state) when its join frame
// arrives (see handleJoin), and a silence-declared peer that was merely
// partitioned heals (Down→Alive under the SAME incarnation, parked
// reliability state re-armed) when a probe authenticates it (see heal).
// While a peer is Down every operation targeting it fails with
// ErrPeerUnreachable instead of hanging.
const (
	peerAlive int32 = iota
	peerSuspect
	peerDown
)

// Down causes. A Down reached through SILENCE (heartbeat timeout or
// retransmission exhaustion — causeNet) is indistinguishable from a
// network partition, so it is recoverable: the detector keeps sending
// paced probe frames at the dead pair, and authentic same-incarnation
// traffic (a probe or its ack) heals it back to Alive without the
// incarnation machinery. A Down reached through a goodbye frame — or
// installed by readmit to bury a superseded incarnation — is the process
// actually leaving (causeBye) and stays terminal until a join frame from
// a newer incarnation readmits it.
const (
	causeNone int32 = iota
	causeNet
	causeBye
)

// Probe frame: [frameProbe u8] [sender rank u16 LE] [sender incarnation
// u32 LE] [kind u8]. Probes are unsequenced and deliberately bypass
// checkInc — their whole point is authenticating a same-incarnation
// survivor that the incarnation gate would drop as stale — so they carry
// their own gate in handleProbe.
const (
	probeFrameLen  = 8
	probeKindProbe = 0 // "are you there?" — answered with an ack
	probeKindAck   = 1 // "I am" — heals but is never answered
)

// probeGapMax caps the probe backoff at 16 heartbeat rounds per dead
// pair, so a long partition costs a trickle of tiny frames, not a storm.
const probeGapMax = 16

// liveness is the per-domain peer-failure detector, present only on the
// reliable UDP conduit. Detection is pairwise and one-directional: rank
// local tracks what it has heard from rank peer, so an asymmetric fault
// (one rank's sends all dropped) is observed by everyone else while the
// faulty rank still sees its peers as alive.
//
// It is driven entirely by the reliability ticker (reliable.go, 1ms): the
// ticker broadcasts small unsequenced heartbeat frames on behalf of every
// rank each HeartbeatEvery, and sweeps the heardRound grid against the
// suspect/down thresholds. Any received traffic counts as hearing from the
// peer — heartbeats only carry the idle case.
//
// Silence is measured in heartbeat ROUNDS (broadcast opportunities the
// detector itself executed), not wall-clock time. The distinction matters
// under scheduler starvation: on a loaded or single-CPU machine a
// hot-spinning rank can delay the ticker goroutine arbitrarily, and a
// wall-clock detector would then count its own inability to send
// heartbeats as peer silence and declare healthy peers down. Counting
// rounds makes the two clocks cancel — if the ticker cannot run, no
// heartbeats go out, but no silence accrues either; detection latency
// degrades gracefully (rounds × actual tick spacing) instead of going
// false-positive.
//
// All state is atomics: writers are the ticker goroutine (staleness
// transitions, exhaustion-driven markDown via the same goroutine) and the
// per-rank socket reader goroutines (heard); readers are the rank
// goroutines (eager-fail checks, epoch polls).
type liveness struct {
	d     *Domain
	ranks int

	// self restricts the detector to one observing rank (a multiproc
	// world, where only Self's sockets and op tables live in this
	// process); -1 observes on behalf of every rank (in-process worlds).
	self int

	hbEvery       int64 // heartbeat period, ns (gates broadcast rounds)
	suspectRounds int64 // silent rounds before Suspect
	downRounds    int64 // silent rounds before Down

	// round is the number of completed heartbeat broadcast rounds; it is
	// the detector's logical clock. heardRound[local*ranks+peer] is the
	// round during which local last received anything from peer; state is
	// the corresponding peer state.
	round      atomic.Int64
	heardRound []atomic.Int64
	state      []atomic.Int32

	// epoch[local] increments whenever some peer of local goes down; rank
	// goroutines compare it against their last-seen value in Poll and
	// sweep their op tables on change (domain.go).
	epoch []atomic.Uint32

	// peerInc[local*ranks+peer] is the incarnation local currently accepts
	// from peer: the epoch the peer's process registered under. 0 means
	// "never heard" — the first frame from the peer adopts its incarnation
	// (rejoiners boot with an all-zero row, since any subset of the world
	// may have restarted while they were gone). A frame stamped with any
	// other incarnation is rejected by checkInc before ANY processing: no
	// heardRound refresh, no ack completion, no delivery. The recorded
	// incarnation only moves forward through readmit (join frames), never
	// through ordinary traffic — a one-sided adopt would desync the
	// sequenced streams (a reset sender's frames 1..n would be dup-dropped
	// yet re-acked by a receiver whose cumSeq survived).
	peerInc []atomic.Uint32

	// deaths[local*ranks+peer] counts how many times local has declared
	// peer down. Op-table entries are stamped with the count at
	// registration (Endpoint.DownGen); the Poll-time sweep fails exactly
	// the entries whose stamp predates the current count, so operations
	// registered against a readmitted peer survive the sweep that buries
	// its previous incarnation.
	deaths []atomic.Uint32

	// staleEv[local*ranks+peer] edge-limits EvStaleIncarnation: armed on
	// the first stale drop of an episode, cleared on readmission.
	// Stats.StaleIncarnationDrops counts every drop.
	staleEv []atomic.Bool

	// downCause[local*ranks+peer] records WHY the pair is Down (causeNet
	// is healable, causeBye is terminal). Written by the winner of the
	// markDown state transition, cleared by heal/readmit.
	downCause []atomic.Int32

	// Probe pacing per dead pair: probeNext is the round at which the next
	// probe ships; probeGap is the current gap in rounds, doubling to
	// probeGapMax. Both are (re)armed by markDown on a healable death.
	probeGap  []atomic.Int32
	probeNext []atomic.Int64

	// healOff (Config.DisableHealing) restores terminal Down for
	// silence-driven deaths: no probes are sent and incoming probes are
	// ignored (no acks either, so both sides of a partition converge to
	// sticky Down symmetrically).
	healOff bool

	// mmu serializes readmit: join frames can arrive on the socket reader
	// while the ticker is sweeping the same pair, and readmission is a
	// multi-step transition (down-mark, pair reset, incarnation adopt)
	// that must not interleave with itself.
	mmu sync.Mutex

	// rejoin marks this domain as a restarted rank (Config.Rejoin): the
	// ticker announces the new incarnation with join frames each heartbeat
	// round until every live peer has acked new-incarnation traffic.
	// Ticker-goroutine-local after construction.
	rejoin bool

	// readmitOff (Config.DisableReadmission) restores sticky-Down: join
	// frames are ignored and a dead peer stays dead.
	readmitOff bool

	// joinFrame is the prebuilt announcement ([frameJoin][rank u16]
	// [incarnation u32][addr len u8][addr]); built once at construction
	// for the rejoin case.
	joinFrame []byte

	lastHB int64 // ticker-local: cached-clock time of the last heartbeat round
}

func newLiveness(d *Domain, now int64) *liveness {
	hb := int64(d.cfg.HeartbeatEvery)
	lv := &liveness{
		d:             d,
		ranks:         d.cfg.Ranks,
		self:          -1,
		hbEvery:       hb,
		suspectRounds: roundsFor(int64(d.cfg.SuspectAfter), hb),
		downRounds:    roundsFor(int64(d.cfg.DownAfter), hb),
		heardRound:    make([]atomic.Int64, d.cfg.Ranks*d.cfg.Ranks),
		state:         make([]atomic.Int32, d.cfg.Ranks*d.cfg.Ranks),
		epoch:         make([]atomic.Uint32, d.cfg.Ranks),
		peerInc:       make([]atomic.Uint32, d.cfg.Ranks*d.cfg.Ranks),
		deaths:        make([]atomic.Uint32, d.cfg.Ranks*d.cfg.Ranks),
		staleEv:       make([]atomic.Bool, d.cfg.Ranks*d.cfg.Ranks),
		downCause:     make([]atomic.Int32, d.cfg.Ranks*d.cfg.Ranks),
		probeGap:      make([]atomic.Int32, d.cfg.Ranks*d.cfg.Ranks),
		probeNext:     make([]atomic.Int64, d.cfg.Ranks*d.cfg.Ranks),
		readmitOff:    d.cfg.DisableReadmission,
		healOff:       d.cfg.DisableHealing,
	}
	if lv.downRounds <= lv.suspectRounds {
		lv.downRounds = lv.suspectRounds + 1
	}
	if d.cfg.Multiproc {
		lv.self = d.cfg.Self
		lv.rejoin = d.cfg.Rejoin
	}
	if lv.rejoin {
		// A restarted rank cannot assume anything about who else restarted
		// while it was gone: every peer incarnation starts unknown (0) and
		// is adopted from the first frame heard. Its own identity is
		// announced with join frames until acknowledged.
		addr := []byte(d.cfg.Peers[d.cfg.Self].String())
		lv.joinFrame = make([]byte, joinFrameMin+len(addr))
		lv.joinFrame[0] = frameJoin
		binary.LittleEndian.PutUint16(lv.joinFrame[1:3], uint16(d.cfg.Self))
		binary.LittleEndian.PutUint32(lv.joinFrame[3:7], d.inc)
		lv.joinFrame[7] = byte(len(addr))
		copy(lv.joinFrame[joinFrameMin:], addr)
	} else {
		// Everyone registered under the same epoch at the initial barrier:
		// the whole world shares one incarnation until somebody restarts.
		for i := range lv.peerInc {
			lv.peerInc[i].Store(d.inc)
		}
	}
	lv.lastHB = now
	return lv
}

// roundsFor converts a silence duration into heartbeat rounds, rounding
// up; a peer must miss at least two consecutive rounds before any state
// transition so one delayed loopback delivery cannot trip the detector.
func roundsFor(silence, hbEvery int64) int64 {
	r := (silence + hbEvery - 1) / hbEvery
	if r < 2 {
		r = 2
	}
	return r
}

func (lv *liveness) idx(local, peer int) int { return local*lv.ranks + peer }

// heard records that local received traffic from peer, stamping the
// detector's current round. A Suspect peer recovers to Alive; Down is
// sticky — a late datagram from a declared-dead peer must not resurrect
// it after its operations were failed.
func (lv *liveness) heard(local, peer int) {
	if peer < 0 || peer >= lv.ranks || peer == local {
		return
	}
	i := lv.idx(local, peer)
	lv.heardRound[i].Store(lv.round.Load())
	if lv.state[i].CompareAndSwap(peerSuspect, peerAlive) {
		lv.d.emit(obs.EvPeerRecovered, local, peer, 0, 0)
	}
}

// stateOf returns local's current view of peer.
func (lv *liveness) stateOf(local, peer int) int32 {
	return lv.state[lv.idx(local, peer)].Load()
}

// down reports whether local has declared peer down.
func (lv *liveness) down(local, peer int) bool {
	return lv.stateOf(local, peer) == peerDown
}

// epochOf returns local's down-event counter.
func (lv *liveness) epochOf(local int) uint32 { return lv.epoch[local].Load() }

// incOf returns the incarnation local currently accepts from peer (0:
// never heard). A rank's own incarnation is the domain's.
func (lv *liveness) incOf(local, peer int) uint32 {
	if peer == local {
		return lv.d.inc
	}
	return lv.peerInc[lv.idx(local, peer)].Load()
}

// deathsOf returns how many times local has declared peer down — the
// generation stamp for op-table entries (see the deaths field).
func (lv *liveness) deathsOf(local, peer int) uint32 {
	return lv.deaths[lv.idx(local, peer)].Load()
}

// checkInc is the incarnation gate every received frame (sequenced,
// heartbeat, bye) passes before ANY processing. It accepts a frame whose
// stamp matches the recorded incarnation, adopts the stamp when none is
// recorded yet (first contact — common for rejoiners, whose whole row
// starts unknown), and rejects everything else: a mismatched stamp is
// either the dead incarnation's last datagrams draining out of the
// network or a restarted peer that has not yet been readmitted through a
// join frame — in both cases processing it against the current pair
// state would corrupt the sequenced streams. Rejected frames are counted
// (Stats.StaleIncarnationDrops) and edge-reported (EvStaleIncarnation).
// Adopting never resets pair state and never resurrects a Down peer:
// readmission is handleJoin's job, where both sides reset coherently.
func (lv *liveness) checkInc(local, peer int, inc uint32) bool {
	if peer < 0 || peer >= lv.ranks {
		return false
	}
	if peer == local {
		// Self-sends loop through the socket; our own frames are current
		// exactly when they carry our own incarnation.
		return inc == lv.d.inc
	}
	if inc == 0 {
		lv.d.decodeErrors.Add(1) // 0 is never a valid incarnation
		return false
	}
	i := lv.idx(local, peer)
	for {
		rec := lv.peerInc[i].Load()
		if rec == inc {
			if lv.state[i].Load() == peerDown {
				// The recorded incarnation was declared dead: its late
				// datagrams drain out as counted stale drops — they must
				// not refresh the silence clock or look like recovery.
				// Only a join frame from a NEWER incarnation returns.
				lv.noteStale(local, peer, inc, rec)
				return false
			}
			return true
		}
		if rec == 0 {
			if lv.peerInc[i].CompareAndSwap(0, inc) {
				return true
			}
			continue // raced with another adopter; re-read
		}
		lv.noteStale(local, peer, inc, rec)
		return false
	}
}

// noteStale counts one incarnation-mismatch drop and emits
// EvStaleIncarnation on the first drop of an episode (the flag clears on
// readmission). A holds the stamp on the frame, B the recorded one.
func (lv *liveness) noteStale(local, peer int, inc, rec uint32) {
	lv.d.staleIncarnationDrops.Add(1)
	if lv.staleEv[lv.idx(local, peer)].CompareAndSwap(false, true) {
		lv.d.emit(obs.EvStaleIncarnation, local, peer, int64(inc), int64(rec))
	}
}

// markSuspect transitions local's view of peer from Alive to Suspect —
// the overload signal from sustained receive-side shedding (reliable.go
// sweep), sharing the state machine with silence-based suspicion. A
// Suspect peer recovers to Alive through heard; Down peers and already-
// Suspect peers are left alone. Callable from any goroutine.
func (lv *liveness) markSuspect(local, peer int) {
	if peer < 0 || peer >= lv.ranks || peer == local {
		return
	}
	if lv.state[lv.idx(local, peer)].CompareAndSwap(peerAlive, peerSuspect) {
		lv.d.peersSuspected.Add(1)
		lv.d.emit(obs.EvPeerSuspect, local, peer, 0, 0)
	}
}

// markDown transitions local's view of peer to Down (idempotent within
// one incarnation — readmission resets the state and a later death counts
// again) and bumps local's epoch so the rank goroutine sweeps its op
// table at the next Poll. The deaths stamp rises before the epoch so a
// sweep triggered by the epoch change always observes the new
// generation. Callable from any goroutine.
//
// The cause decides what happens to the reliability pair. A terminal
// death (causeBye, or healing disabled) releases it — in-flight buffers
// return to the pool, the stream is gone. A healable death (causeNet)
// PARKS it instead: in-flight frames keep their sequence numbers and
// wait out the partition, because releasing them would leave permanent
// gaps the receiver's cumulative stream could never close after a heal.
// Only the winner of the state transition writes the cause, so a racing
// probe can momentarily read causeNone and skip a heal — the next probe
// repairs that.
func (lv *liveness) markDown(local, peer int, cause int32) {
	i := lv.idx(local, peer)
	for {
		s := lv.state[i].Load()
		if s == peerDown {
			return
		}
		if lv.state[i].CompareAndSwap(s, peerDown) {
			break
		}
	}
	lv.d.peersDown.Add(1)
	lv.d.emit(obs.EvPeerDown, local, peer, 0, 0)
	lv.deaths[i].Add(1)
	lv.epoch[local].Add(1)
	lv.downCause[i].Store(cause)
	healable := cause == causeNet && !lv.healOff
	if r := lv.d.rel; r != nil {
		if healable {
			r.parkPair(local, peer)
		} else {
			r.releasePair(local, peer)
		}
	}
	if healable {
		lv.probeGap[i].Store(1)
		lv.probeNext[i].Store(lv.round.Load() + 1)
		lv.d.emit(obs.EvPartitionSuspected, local, peer, 0, 0)
	}
	// Wake the rank so a parked waiter re-polls and observes the epoch
	// change promptly instead of waiting out parkTimeout.
	lv.d.eps[local].notify()
}

// heal returns a silence-declared-Down peer to Alive under the SAME
// incarnation — the partition-recovery path, distinct from readmission
// (no incarnation change, no address rewrite, no pair reset). Called from
// the socket reader when authentic same-incarnation traffic (a probe or
// its ack) arrives for a pair that is Down with causeNet. The parked
// reliability pair is re-armed (backoff reset, immediate retransmit)
// BEFORE Alive becomes visible, so a sender observing Alive never races a
// still-parked stream. deaths/epoch are left alone: the death already
// happened and was swept; ops issued after the heal carry the bumped
// generation stamp and survive any sweep for the old death (domain.go).
func (lv *liveness) heal(local, peer int) {
	lv.mmu.Lock()
	defer lv.mmu.Unlock()
	i := lv.idx(local, peer)
	if lv.state[i].Load() != peerDown || lv.downCause[i].Load() != causeNet {
		return
	}
	if r := lv.d.rel; r != nil {
		r.healPair(local, peer)
	}
	lv.downCause[i].Store(causeNone)
	lv.heardRound[i].Store(lv.round.Load())
	lv.staleEv[i].Store(false)
	lv.state[i].Store(peerAlive)
	lv.d.peersHealed.Add(1)
	lv.d.emit(obs.EvPeerHealed, local, peer, int64(lv.peerInc[i].Load()), 0)
	// Wake the rank: ops refused while the peer was Down can flow again.
	lv.d.eps[local].notify()
}

// handleProbe processes a probe frame from peer claiming incarnation inc.
// Runs on the socket reader goroutine. Probes bypass checkInc (a Down
// peer's frames are exactly what they authenticate) but carry their own
// gate: only the recorded incarnation heals — an unknown peer is not
// adopted (that is first-contact traffic's job) and a stale stamp is the
// dead process draining out. A probe against an Alive pair is just proof
// of life; that is the asymmetric case — B downed A, A still sees B — in
// which A's acks let B heal and the views reconverge.
func (lv *liveness) handleProbe(local, peer int, inc uint32, kind byte) {
	if lv.healOff || peer < 0 || peer >= lv.ranks || peer == local || inc == 0 {
		return
	}
	i := lv.idx(local, peer)
	rec := lv.peerInc[i].Load()
	if rec == 0 || inc != rec {
		if rec != 0 && inc < rec {
			lv.noteStale(local, peer, inc, rec)
		}
		return
	}
	if lv.state[i].Load() == peerDown {
		if lv.downCause[i].Load() != causeNet {
			return // said goodbye or was superseded: stays dead
		}
		lv.heal(local, peer)
	} else {
		lv.heard(local, peer)
	}
	if kind == probeKindProbe {
		lv.sendProbe(local, peer, probeKindAck)
	}
}

// tick runs one detector step on the reliability ticker. When a heartbeat
// period has elapsed it broadcasts a round, advances the logical clock,
// and sweeps the grid; ticks between rounds (and ticks delayed by the
// scheduler) neither send nor accrue silence — see the type comment.
func (lv *liveness) tick(now int64) {
	if now-lv.lastHB < lv.hbEvery {
		return
	}
	lv.lastHB = now
	lv.broadcast()
	if lv.rejoin {
		lv.sendJoins()
	}
	round := lv.round.Add(1)
	for local := 0; local < lv.ranks; local++ {
		if lv.self >= 0 && local != lv.self {
			continue // only Self observes in a multiproc world
		}
		for peer := 0; peer < lv.ranks; peer++ {
			if peer == local {
				continue
			}
			i := lv.idx(local, peer)
			if lv.peerInc[i].Load() == 0 {
				// Never heard from this peer (we booted as a rejoiner):
				// silence accrues only against a known incarnation, so a
				// rejoining rank cannot spuriously bury survivors it has
				// not met yet. A truly-dead peer is still caught by
				// retransmission exhaustion the moment we send to it.
				continue
			}
			silent := round - lv.heardRound[i].Load()
			switch lv.state[i].Load() {
			case peerAlive:
				if silent >= lv.downRounds {
					lv.markDown(local, peer, causeNet)
				} else if silent >= lv.suspectRounds {
					lv.markSuspect(local, peer)
				}
			case peerSuspect:
				if silent >= lv.downRounds {
					lv.markDown(local, peer, causeNet)
				}
			}
		}
	}
	if !lv.healOff {
		lv.sendProbes(round)
	}
}

// hbFrameLen is the heartbeat frame:
// [frameHB u8] [sender rank u16 LE] [sender incarnation u32 LE].
const hbFrameLen = 7

// joinFrameMin is the fixed prefix of a join announcement:
// [frameJoin u8] [sender rank u16 LE] [sender incarnation u32 LE]
// [addr len u8], followed by the sender's UDP address as text. The
// address rides in the frame because a restarted rank binds a fresh
// socket — survivors' address tables point at the dead port until
// readmission rewrites them.
const joinFrameMin = 8

// broadcast ships one heartbeat from every rank to every non-down peer.
// Heartbeats are unsequenced and unreliable — losing one is exactly the
// signal the detector measures — and they traverse each sender's real
// send path, including the fault-injection shim, so a rank whose sends
// are all dropped goes silent for everyone else.
func (lv *liveness) broadcast() {
	var frame [hbFrameLen]byte
	frame[0] = frameHB
	binary.LittleEndian.PutUint32(frame[3:7], lv.d.inc)
	for from := 0; from < lv.ranks; from++ {
		if lv.self >= 0 && from != lv.self {
			continue // only Self has a socket in a multiproc world
		}
		binary.LittleEndian.PutUint16(frame[1:3], uint16(from))
		for to := 0; to < lv.ranks; to++ {
			if to == from || lv.down(from, to) {
				continue
			}
			lv.d.heartbeatsSent.Add(1)
			lv.d.writeFrame(from, to, frame[:])
		}
	}
}

// sendProbes ships one probe at every silence-declared-Down pair whose
// pacing window has opened, then doubles the pair's gap toward
// probeGapMax. Probes traverse the sender's real send path — fault shim
// included — so during a partition they are cut like everything else and
// the heal fires only once the network actually heals. Ticker goroutine.
func (lv *liveness) sendProbes(round int64) {
	for local := 0; local < lv.ranks; local++ {
		if lv.self >= 0 && local != lv.self {
			continue // only Self has a socket in a multiproc world
		}
		for peer := 0; peer < lv.ranks; peer++ {
			if peer == local {
				continue
			}
			i := lv.idx(local, peer)
			if lv.state[i].Load() != peerDown || lv.downCause[i].Load() != causeNet {
				continue
			}
			if round < lv.probeNext[i].Load() {
				continue
			}
			gap := int64(lv.probeGap[i].Load())
			lv.probeNext[i].Store(round + gap)
			if gap < probeGapMax {
				lv.probeGap[i].Store(int32(min(gap*2, probeGapMax)))
			}
			lv.sendProbe(local, peer, probeKindProbe)
		}
	}
}

// sendProbe ships one probe or probe-ack frame. Any goroutine.
func (lv *liveness) sendProbe(local, peer int, kind byte) {
	var frame [probeFrameLen]byte
	frame[0] = frameProbe
	binary.LittleEndian.PutUint16(frame[1:3], uint16(local))
	binary.LittleEndian.PutUint32(frame[3:7], lv.d.inc)
	frame[7] = kind
	lv.d.probesSent.Add(1)
	lv.d.writeFrame(local, peer, frame[:])
}

// sendJoins announces this rank's new incarnation to every peer that has
// not yet acknowledged traffic from it. Runs on the ticker each heartbeat
// round while rejoin is set — join frames are unsequenced and ride the
// same lossy path as heartbeats, so announcement is retried until the
// proof of readmission arrives: a cumulative ack covering any sequenced
// frame this incarnation sent (the peer's incarnation gate would have
// dropped it otherwise). Idle pairs keep announcing at heartbeat cadence;
// the first acked datagram stops it.
func (lv *liveness) sendJoins() {
	self := lv.self // rejoin implies multiproc, so self >= 0
	pending := false
	for to := 0; to < lv.ranks; to++ {
		if to == self || lv.down(self, to) {
			continue
		}
		if r := lv.d.rel; r != nil {
			p := r.pair(self, to)
			p.mu.Lock()
			acked := p.sendAcked
			p.mu.Unlock()
			if acked > 0 {
				continue // the peer acked new-incarnation traffic: readmitted
			}
		}
		pending = true
		lv.d.joinsSent.Add(1)
		lv.d.writeFrame(self, to, lv.joinFrame)
	}
	if !pending {
		lv.rejoin = false // every live peer has us; stop announcing
	}
}

// handleJoin processes a join announcement from peer claiming incarnation
// inc at addr. Runs on the socket reader goroutine. A duplicate of the
// current incarnation is proof of life (announcement is retried until
// acked); a stamp older than the recorded incarnation is the dead
// process's last frames draining out; anything newer — or a first
// contact — goes through readmit.
func (lv *liveness) handleJoin(local, peer int, inc uint32, addr netip.AddrPort) {
	if lv.readmitOff || peer < 0 || peer >= lv.ranks || peer == local || inc == 0 {
		return
	}
	rec := lv.peerInc[lv.idx(local, peer)].Load()
	switch {
	case rec == inc:
		lv.heard(local, peer)
	case rec != 0 && inc < rec:
		lv.noteStale(local, peer, inc, rec)
	default:
		lv.readmit(local, peer, inc, addr)
	}
}

// readmit installs a new incarnation of peer: the multi-step
// Down→Readmitted transition at the core of elastic membership. If the
// old incarnation was never declared dead (a fast restart, quicker than
// DownAfter), it is declared dead NOW — every op in flight against it
// must fail with ErrPeerUnreachable, never silently retarget the new
// process. Then the pair's reliability state resets on our side (the
// joiner's is fresh by construction — this symmetry is what keeps the
// sequenced streams coherent), the address table learns the new socket,
// and the peer returns to Alive under its new identity. Ordering within:
// the pair must be fully reset before Alive becomes visible, so a sender
// that observes Alive never races a half-buried stream.
func (lv *liveness) readmit(local, peer int, inc uint32, addr netip.AddrPort) {
	lv.mmu.Lock()
	defer lv.mmu.Unlock()
	i := lv.idx(local, peer)
	rec := lv.peerInc[i].Load()
	if rec == inc || (rec != 0 && inc < rec) {
		return // another reader resolved this join while we waited
	}
	hadOld := rec != 0
	wasDown := lv.state[i].Load() == peerDown
	if hadOld && !wasDown {
		// Superseded, not partitioned: bury terminally (no probes, pair
		// released) — the new incarnation gets a fresh stream below.
		lv.markDown(local, peer, causeBye)
		wasDown = true
	}
	if lv.d.udp != nil && addr.IsValid() {
		lv.d.udp.setAddr(peer, addr)
	}
	if r := lv.d.rel; r != nil && (hadOld || wasDown) {
		r.resetPair(local, peer)
	}
	lv.peerInc[i].Store(inc)
	lv.heardRound[i].Store(lv.round.Load())
	lv.staleEv[i].Store(false)
	lv.downCause[i].Store(causeNone)
	lv.state[i].Store(peerAlive)
	if hadOld || wasDown {
		lv.d.peersReadmitted.Add(1)
		lv.d.emit(obs.EvPeerReadmitted, local, peer, int64(inc), int64(rec))
		// Wake the rank: ops refused while the peer was Down can flow again.
		lv.d.eps[local].notify()
	}
}
