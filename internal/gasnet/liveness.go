package gasnet

import (
	"encoding/binary"
	"errors"
	"sync/atomic"

	"gupcxx/internal/obs"
)

// ErrPeerUnreachable is the failure delivered to every operation whose
// target rank has been declared down by the liveness machinery: the
// retransmission budget was exhausted, or the peer fell silent past
// Config.DownAfter. Test with errors.Is.
var ErrPeerUnreachable = errors.New("gasnet: peer unreachable")

// Per-peer liveness states. Alive is the zero value; Suspect is a peer
// that has fallen silent past Config.SuspectAfter (recoverable — hearing
// from it restores Alive); Down is terminal (sticky): silence past
// Config.DownAfter or an exhausted retransmission budget. Once a peer is
// Down every operation targeting it fails with ErrPeerUnreachable instead
// of hanging.
const (
	peerAlive int32 = iota
	peerSuspect
	peerDown
)

// liveness is the per-domain peer-failure detector, present only on the
// reliable UDP conduit. Detection is pairwise and one-directional: rank
// local tracks what it has heard from rank peer, so an asymmetric fault
// (one rank's sends all dropped) is observed by everyone else while the
// faulty rank still sees its peers as alive.
//
// It is driven entirely by the reliability ticker (reliable.go, 1ms): the
// ticker broadcasts small unsequenced heartbeat frames on behalf of every
// rank each HeartbeatEvery, and sweeps the heardRound grid against the
// suspect/down thresholds. Any received traffic counts as hearing from the
// peer — heartbeats only carry the idle case.
//
// Silence is measured in heartbeat ROUNDS (broadcast opportunities the
// detector itself executed), not wall-clock time. The distinction matters
// under scheduler starvation: on a loaded or single-CPU machine a
// hot-spinning rank can delay the ticker goroutine arbitrarily, and a
// wall-clock detector would then count its own inability to send
// heartbeats as peer silence and declare healthy peers down. Counting
// rounds makes the two clocks cancel — if the ticker cannot run, no
// heartbeats go out, but no silence accrues either; detection latency
// degrades gracefully (rounds × actual tick spacing) instead of going
// false-positive.
//
// All state is atomics: writers are the ticker goroutine (staleness
// transitions, exhaustion-driven markDown via the same goroutine) and the
// per-rank socket reader goroutines (heard); readers are the rank
// goroutines (eager-fail checks, epoch polls).
type liveness struct {
	d     *Domain
	ranks int

	// self restricts the detector to one observing rank (a multiproc
	// world, where only Self's sockets and op tables live in this
	// process); -1 observes on behalf of every rank (in-process worlds).
	self int

	hbEvery       int64 // heartbeat period, ns (gates broadcast rounds)
	suspectRounds int64 // silent rounds before Suspect
	downRounds    int64 // silent rounds before Down

	// round is the number of completed heartbeat broadcast rounds; it is
	// the detector's logical clock. heardRound[local*ranks+peer] is the
	// round during which local last received anything from peer; state is
	// the corresponding peer state.
	round      atomic.Int64
	heardRound []atomic.Int64
	state      []atomic.Int32

	// epoch[local] increments whenever some peer of local goes down; rank
	// goroutines compare it against their last-seen value in Poll and
	// sweep their op tables on change (domain.go).
	epoch []atomic.Uint32

	lastHB int64 // ticker-local: cached-clock time of the last heartbeat round
}

func newLiveness(d *Domain, now int64) *liveness {
	hb := int64(d.cfg.HeartbeatEvery)
	lv := &liveness{
		d:             d,
		ranks:         d.cfg.Ranks,
		self:          -1,
		hbEvery:       hb,
		suspectRounds: roundsFor(int64(d.cfg.SuspectAfter), hb),
		downRounds:    roundsFor(int64(d.cfg.DownAfter), hb),
		heardRound:    make([]atomic.Int64, d.cfg.Ranks*d.cfg.Ranks),
		state:         make([]atomic.Int32, d.cfg.Ranks*d.cfg.Ranks),
		epoch:         make([]atomic.Uint32, d.cfg.Ranks),
	}
	if lv.downRounds <= lv.suspectRounds {
		lv.downRounds = lv.suspectRounds + 1
	}
	if d.cfg.Multiproc {
		lv.self = d.cfg.Self
	}
	lv.lastHB = now
	return lv
}

// roundsFor converts a silence duration into heartbeat rounds, rounding
// up; a peer must miss at least two consecutive rounds before any state
// transition so one delayed loopback delivery cannot trip the detector.
func roundsFor(silence, hbEvery int64) int64 {
	r := (silence + hbEvery - 1) / hbEvery
	if r < 2 {
		r = 2
	}
	return r
}

func (lv *liveness) idx(local, peer int) int { return local*lv.ranks + peer }

// heard records that local received traffic from peer, stamping the
// detector's current round. A Suspect peer recovers to Alive; Down is
// sticky — a late datagram from a declared-dead peer must not resurrect
// it after its operations were failed.
func (lv *liveness) heard(local, peer int) {
	if peer < 0 || peer >= lv.ranks || peer == local {
		return
	}
	i := lv.idx(local, peer)
	lv.heardRound[i].Store(lv.round.Load())
	if lv.state[i].CompareAndSwap(peerSuspect, peerAlive) {
		lv.d.emit(obs.EvPeerRecovered, local, peer, 0, 0)
	}
}

// stateOf returns local's current view of peer.
func (lv *liveness) stateOf(local, peer int) int32 {
	return lv.state[lv.idx(local, peer)].Load()
}

// down reports whether local has declared peer down.
func (lv *liveness) down(local, peer int) bool {
	return lv.stateOf(local, peer) == peerDown
}

// epochOf returns local's down-event counter.
func (lv *liveness) epochOf(local int) uint32 { return lv.epoch[local].Load() }

// markSuspect transitions local's view of peer from Alive to Suspect —
// the overload signal from sustained receive-side shedding (reliable.go
// sweep), sharing the state machine with silence-based suspicion. A
// Suspect peer recovers to Alive through heard; Down peers and already-
// Suspect peers are left alone. Callable from any goroutine.
func (lv *liveness) markSuspect(local, peer int) {
	if peer < 0 || peer >= lv.ranks || peer == local {
		return
	}
	if lv.state[lv.idx(local, peer)].CompareAndSwap(peerAlive, peerSuspect) {
		lv.d.peersSuspected.Add(1)
		lv.d.emit(obs.EvPeerSuspect, local, peer, 0, 0)
	}
}

// markDown transitions local's view of peer to Down (idempotent) and bumps
// local's epoch so the rank goroutine sweeps its op table at the next
// Poll. Callable from any goroutine.
func (lv *liveness) markDown(local, peer int) {
	i := lv.idx(local, peer)
	for {
		s := lv.state[i].Load()
		if s == peerDown {
			return
		}
		if lv.state[i].CompareAndSwap(s, peerDown) {
			break
		}
	}
	lv.d.peersDown.Add(1)
	lv.d.emit(obs.EvPeerDown, local, peer, 0, 0)
	lv.epoch[local].Add(1)
	if r := lv.d.rel; r != nil {
		r.releasePair(local, peer)
	}
	// Wake the rank so a parked waiter re-polls and observes the epoch
	// change promptly instead of waiting out parkTimeout.
	lv.d.eps[local].notify()
}

// tick runs one detector step on the reliability ticker. When a heartbeat
// period has elapsed it broadcasts a round, advances the logical clock,
// and sweeps the grid; ticks between rounds (and ticks delayed by the
// scheduler) neither send nor accrue silence — see the type comment.
func (lv *liveness) tick(now int64) {
	if now-lv.lastHB < lv.hbEvery {
		return
	}
	lv.lastHB = now
	lv.broadcast()
	round := lv.round.Add(1)
	for local := 0; local < lv.ranks; local++ {
		if lv.self >= 0 && local != lv.self {
			continue // only Self observes in a multiproc world
		}
		for peer := 0; peer < lv.ranks; peer++ {
			if peer == local {
				continue
			}
			i := lv.idx(local, peer)
			silent := round - lv.heardRound[i].Load()
			switch lv.state[i].Load() {
			case peerAlive:
				if silent >= lv.downRounds {
					lv.markDown(local, peer)
				} else if silent >= lv.suspectRounds {
					lv.markSuspect(local, peer)
				}
			case peerSuspect:
				if silent >= lv.downRounds {
					lv.markDown(local, peer)
				}
			}
		}
	}
}

// hbFrameLen is the heartbeat frame: [frameHB u8] [sender rank u16 LE].
const hbFrameLen = 3

// broadcast ships one heartbeat from every rank to every non-down peer.
// Heartbeats are unsequenced and unreliable — losing one is exactly the
// signal the detector measures — and they traverse each sender's real
// send path, including the fault-injection shim, so a rank whose sends
// are all dropped goes silent for everyone else.
func (lv *liveness) broadcast() {
	var frame [hbFrameLen]byte
	frame[0] = frameHB
	for from := 0; from < lv.ranks; from++ {
		if lv.self >= 0 && from != lv.self {
			continue // only Self has a socket in a multiproc world
		}
		binary.LittleEndian.PutUint16(frame[1:3], uint16(from))
		for to := 0; to < lv.ranks; to++ {
			if to == from || lv.down(from, to) {
				continue
			}
			lv.d.heartbeatsSent.Add(1)
			lv.d.writeFrame(from, to, frame[:])
		}
	}
}
