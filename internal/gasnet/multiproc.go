package gasnet

// Multiproc transport initialization: the process-per-rank shape of the
// UDP conduit. An in-process UDP world binds one loopback socket per rank
// and runs every rank's reader in one address space; a multiproc world is
// one rank of a world whose other ranks are separate OS processes, so this
// process owns exactly one socket — the one the bootstrap exchange
// (internal/boot) bound before publishing its address — and reaches every
// peer through the rank-indexed address table the exchange distributed.
//
// Everything above the socket is unchanged: the same frame formats, the
// same reliability layer (restricted to Self's rows of the pair grid), the
// same liveness detector (observing only on Self's behalf). What changes
// is the locality model — Config.NodeOf makes every non-self rank remote,
// so all RMA/atomic data movement takes the AM wire protocol, and no
// closure can ride a message to another rank.

import (
	"log"
	"net"
	"net/netip"
	"sync/atomic"
)

// initUDPMultiproc adopts the pre-bound socket from the configuration and
// starts its reader goroutine. The transport's rank-indexed slices keep
// their full length — the send path indexes them by rank — but only Self's
// entries are populated; a send "from" any other rank would be a bug the
// nil dereference makes loud.
func (d *Domain) initUDPMultiproc() error {
	self := d.cfg.Self
	tr := &udpTransport{
		conns: make([]*net.UDPConn, d.cfg.Ranks),
		send:  make([]packetConn, d.cfg.Ranks),
		read:  make([]batchConn, d.cfg.Ranks),
		addrs: make([]atomic.Pointer[netip.AddrPort], d.cfg.Ranks),
	}
	for r, a := range d.cfg.Peers {
		tr.setAddr(r, a)
	}
	conn := d.cfg.SelfConn
	// A generous receive buffer, exactly as on the in-process path: in a
	// process-per-rank world one socket absorbs the whole world's traffic
	// toward this rank, so the enlarged buffer matters even more.
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		tr.rbufErr = err
		log.Printf("gasnet: udp conduit: SetReadBuffer(4MiB) failed (%v); "+
			"bursty collectives may drop datagrams on this host", err)
	}
	tr.conns[self] = conn
	bc := newBatchConn(conn, d)
	// The fault shim is always interposed (see initUDP): mid-run arming of
	// faults, partitions, and scenarios needs it, and idle it costs one
	// atomic load per write.
	var cfg FaultConfig
	if d.cfg.Fault != nil {
		cfg = *d.cfg.Fault
	}
	tr.send[self] = newFaultConn(bc, cfg, self, d)
	tr.read[self] = bc
	d.udp = tr
	if err := d.armScenarioFromEnv(); err != nil {
		tr.close()
		return err
	}
	if !d.cfg.UDPUnreliable {
		// Detector before ticker, as on the in-process path: newReliability
		// captures d.lv, and the very first sweep may already need it.
		if !d.cfg.DisableLiveness {
			d.lv = newLiveness(d, clockRefresh())
		}
		d.rel = newReliability(d)
	}
	d.startReader(tr, d.eps[self], bc)
	return nil
}
