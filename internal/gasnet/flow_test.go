package gasnet

import (
	"errors"
	"testing"
	"time"
)

// TestRTTSampleEstimator pins the Jacobson/Karels update rules and the
// clamps on the derived RTO and standalone-ack delay.
func TestRTTSampleEstimator(t *testing.T) {
	p := &relPair{}

	// First sample initializes srtt = rtt, rttvar = rtt/2, RTO = srtt+4var.
	rtt := int64(8 * time.Millisecond)
	p.sampleRTT(rtt)
	if p.srtt != rtt || p.rttvar != rtt/2 {
		t.Errorf("first sample: srtt=%v rttvar=%v", p.srtt, p.rttvar)
	}
	if want := rtt + 4*(rtt/2); p.rto != want {
		t.Errorf("first RTO = %v, want %v", time.Duration(p.rto), time.Duration(want))
	}

	// A steady stream of identical samples decays rttvar, so the RTO
	// converges down toward srtt (never below the floor).
	for i := 0; i < 64; i++ {
		p.sampleRTT(rtt)
	}
	if p.srtt != rtt {
		t.Errorf("converged srtt = %v, want %v", time.Duration(p.srtt), time.Duration(rtt))
	}
	if p.rto >= rtt+4*(rtt/2) || p.rto < relRTOMin {
		t.Errorf("converged RTO = %v not in (floor, first-RTO)", time.Duration(p.rto))
	}

	// A huge sample clamps the RTO to the ceiling, and the ack delay to its
	// own ceiling.
	p.sampleRTT(int64(time.Second))
	if p.rto != relRTOMax {
		t.Errorf("RTO after 1s sample = %v, want clamp %v", time.Duration(p.rto), time.Duration(relRTOMax))
	}
	if p.ackDelay != relAckDelayMax {
		t.Errorf("ackDelay = %v, want clamp %v", time.Duration(p.ackDelay), time.Duration(relAckDelayMax))
	}

	// Tiny samples clamp to the floors.
	q := &relPair{}
	for i := 0; i < 8; i++ {
		q.sampleRTT(int64(10 * time.Microsecond))
	}
	if q.rto != relRTOMin {
		t.Errorf("RTO after tiny samples = %v, want floor %v", time.Duration(q.rto), time.Duration(relRTOMin))
	}
	if q.ackDelay != relAckDelayMin {
		t.Errorf("ackDelay = %v, want floor %v", time.Duration(q.ackDelay), time.Duration(relAckDelayMin))
	}

	// Non-positive samples are ignored (clock anomaly guard).
	before := q.srtt
	q.sampleRTT(0)
	q.sampleRTT(-5)
	if q.srtt != before {
		t.Error("non-positive RTT sample mutated the estimator")
	}
}

// TestFlowStateLiveTraffic: real acked traffic over loopback must feed the
// estimator — a non-zero smoothed RTT, an RTO inside the clamp band, and a
// window at the configured maximum on a clean wire.
func TestFlowStateLiveTraffic(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	delivered := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { delivered++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	const msgs = 100
	for i := 0; i < msgs; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	deadline := time.Now().Add(10 * time.Second)
	for delivered < msgs && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	if delivered != msgs {
		t.Fatalf("delivered %d of %d", delivered, msgs)
	}
	// Acks are processed on rank 0's socket reader; give the last ones a
	// moment to land and be sampled. A slow scheduler (race detector) can
	// retransmit the whole burst before its first ack arrives, leaving no
	// Karn-clean sample — keep offering single-frame round trips until one
	// measures.
	var fs FlowState
	for i := msgs; time.Now().Before(deadline); i++ {
		fs = d.FlowState(0, 1)
		if fs.SRTT > 0 && fs.InFlight == 0 {
			break
		}
		if fs.SRTT == 0 && fs.InFlight == 0 {
			ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
			want := delivered + 1
			for delivered < want && time.Now().Before(deadline) {
				if ep1.Poll() == 0 {
					ep1.Park()
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	if fs.SRTT <= 0 {
		t.Fatalf("SRTT = %v after %d acked datagrams", fs.SRTT, msgs)
	}
	if fs.RTO < time.Duration(relRTOMin) || fs.RTO > time.Duration(relRTOMax) {
		t.Errorf("RTO = %v outside [%v, %v]", fs.RTO,
			time.Duration(relRTOMin), time.Duration(relRTOMax))
	}
	// A slow scheduler (the race detector, a loaded CI box) can expire an
	// RTO mid-burst and legitimately halve the window; only a shrink the
	// counters can't account for is a bug.
	if shrinks := d.rtoExpirations.Load(); shrinks == 0 && fs.Window != relWindow {
		t.Errorf("clean-wire window = %d with no RTO expirations, want the maximum %d",
			fs.Window, relWindow)
	} else if fs.Window < relWindowMin || fs.Window > relWindow {
		t.Errorf("window = %d outside [%d, %d]", fs.Window, relWindowMin, relWindow)
	}
	// Self and conduit-less queries return the zero snapshot.
	if got := d.FlowState(0, 0); got.SRTT != 0 || got.InFlight != 0 {
		t.Errorf("self FlowState = %+v", got)
	}
	smp := newTestDomain(t, Config{Ranks: 2, Conduit: SMP})
	if got := smp.FlowState(0, 1); got != (FlowState{}) {
		t.Errorf("SMP FlowState = %+v, want zero", got)
	}
}

// TestWindowShrinksOnLossGrowsOnRecovery: heavy loss must trip RTO
// expirations and multiplicative decrease; healing the wire must grow the
// window back additively. The AIMD counters make both phases observable.
func TestWindowShrinksOnLossGrowsOnRecovery(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		RelWindow: 32, RelWindowMin: 4,
		Fault: &FaultConfig{Seed: 9, Drop: 0.4},
	})
	defer d.Close()
	delivered := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { delivered++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	const msgs = 150
	for i := 0; i < msgs; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered < msgs && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	if delivered != msgs {
		t.Fatalf("delivered %d of %d under loss", delivered, msgs)
	}
	s := d.Stats()
	if s.RTOExpirations == 0 {
		t.Fatal("RTOExpirations = 0 under 40% drop")
	}
	if s.WindowShrinks == 0 {
		t.Fatal("WindowShrinks = 0 despite RTO expirations")
	}
	growsAfterLoss := s.WindowGrows

	// Heal the wire and run clean traffic: every clean RTT sample below the
	// maximum grows the window by one.
	if err := d.SetFault(0, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetFault(1, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(msgs + i)})
		// Space sends out so each ack event carries a fresh clean sample.
		if i%8 == 7 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	for delivered < msgs+64 && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	for d.Stats().WindowGrows == growsAfterLoss && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().WindowGrows; got == growsAfterLoss {
		t.Errorf("WindowGrows stuck at %d after the wire healed", got)
	}
	if fs := d.FlowState(0, 1); fs.Window < 4 || fs.Window > 32 {
		t.Errorf("window %d escaped [RelWindowMin, RelWindow]", fs.Window)
	}
}

// TestAdmitFailFastBackpressure: with the fail-fast policy and a full
// window, admission must refuse immediately with a *BackpressureError
// carrying the peer rank, and count the refusal.
func TestAdmitFailFastBackpressure(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		RelWindow: 4, RelWindowMin: 4,
		Backpressure: BackpressureFailFast,
		Fault:        &FaultConfig{Seed: 2, Drop: 1.0}, // nothing is ever acked
	})
	defer d.Close()
	ep0 := d.Endpoint(0)
	for i := 0; i < 4; i++ {
		if err := ep0.AdmitSend(1, 0); err != nil {
			t.Fatalf("admission refused at occupancy %d of 4: %v", i, err)
		}
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	start := time.Now()
	err := ep0.AdmitSend(1, 0)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("fail-fast admission took %v", elapsed)
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("full-window admission = %v, want ErrBackpressure", err)
	}
	var bpe *BackpressureError
	if !errors.As(err, &bpe) || bpe.Peer != 1 {
		t.Fatalf("error %v does not carry peer 1", err)
	}
	if got := d.Stats().BackpressureFails; got == 0 {
		t.Error("BackpressureFails = 0 after a refusal")
	}
	// Self-sends and out-of-range targets bypass admission entirely.
	if err := ep0.AdmitSend(0, 0); err != nil {
		t.Errorf("self admission = %v", err)
	}
	if err := ep0.AdmitSend(-1, 0); err != nil {
		t.Errorf("out-of-range admission = %v", err)
	}
}

// TestAdmitBoundedBlockTimesOut: under the default blocking policy a full
// window parks the admitter for the configured bound (or the caller's own
// smaller budget), then refuses — never an unbounded wedge.
func TestAdmitBoundedBlockTimesOut(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		RelWindow: 4, RelWindowMin: 4,
		BackpressureWait: 80 * time.Millisecond,
		Fault:            &FaultConfig{Seed: 3, Drop: 1.0},
	})
	defer d.Close()
	ep0 := d.Endpoint(0)
	for i := 0; i < 4; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}

	start := time.Now()
	err := ep0.AdmitSend(1, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("blocked admission resolved %v, want ErrBackpressure", err)
	}
	if elapsed < 60*time.Millisecond {
		t.Errorf("block lasted %v, want about the 80ms policy bound", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("block lasted %v, far past the bound", elapsed)
	}

	// A caller deadline below the policy bound wins.
	start = time.Now()
	err = ep0.AdmitSend(1, 10*time.Millisecond)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("deadline-bounded admission resolved %v", err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Errorf("10ms caller budget blocked for %v", elapsed)
	}
}

// TestWindowBlockedSendWakesOnPeerDown is the regression for the
// window-block liveness hazard: a sender blocked on a full window toward a
// peer that then gets declared down must wake promptly (the queue is
// drained, the slot freed) rather than wedging forever, and the pending
// operations must resolve with ErrPeerUnreachable.
func TestWindowBlockedSendWakesOnPeerDown(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12,
		RelWindow: 4, RelWindowMin: 4,
		RelMaxAttempts: 3,
		Fault:          &FaultConfig{Seed: 4, Drop: 1.0}, // the peer is dead from the start
	})
	defer d.Close()
	ep0 := d.Endpoint(0)

	// Fill the window: three fire-and-forget frames plus one tracked put
	// whose completion callback observes the failure.
	var gotErr error
	for i := 0; i < 3; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { gotErr = err })

	unblocked := make(chan struct{})
	go func() {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: 99}) // blocks: window full
		close(unblocked)
	}()
	// The send must stay blocked while the peer is merely slow...
	select {
	case <-unblocked:
		t.Fatal("send past a full window did not block")
	case <-time.After(5 * time.Millisecond):
	}
	// ...and wake once retransmission exhaustion declares the peer down.
	select {
	case <-unblocked:
	case <-time.After(30 * time.Second):
		t.Fatal("window-blocked sender wedged after the peer was declared down")
	}
	if !ep0.PeerDown(1) {
		t.Error("peer 1 not marked down after exhaustion")
	}
	deadline := time.Now().Add(10 * time.Second)
	for gotErr == nil && time.Now().Before(deadline) {
		ep0.Poll()
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(gotErr, ErrPeerUnreachable) {
		t.Errorf("pending put resolved %v, want ErrPeerUnreachable", gotErr)
	}
	// Admission toward the dead peer now refuses eagerly.
	if err := ep0.AdmitSend(1, 0); !errors.Is(err, ErrPeerUnreachable) {
		t.Errorf("post-down admission = %v, want ErrPeerUnreachable", err)
	}
	// A silence-driven death parks the pair for a possible heal
	// (DESIGN.md §16): the in-flight frames are retained — with their
	// sequence numbers — rather than drained. What matters for liveness is
	// asserted above: the blocked sender woke and admission refuses; the
	// parked frames hold no one hostage.
	if fs := d.FlowState(0, 1); fs.InFlight != 4 {
		t.Errorf("parked pair holds %d frames, want all 4 retained for a heal", fs.InFlight)
	}
}

// forgeSeqFrame hand-crafts a sequenced data frame from rank 0 carrying
// one user message, exactly as the wire would deliver it.
func forgeSeqFrame(d *Domain, seq uint32, payload []byte) *wireBuf {
	m := Msg{Handler: HandlerUserBase, A0: uint64(seq), Payload: payload}
	wb := d.arena.get(bufClassLarge)
	wire := append(wb.b[:relHeaderLen], frameSingle)
	wire = appendMsg(wire, &m)
	wb.b = wire
	wb.b[0] = frameSeq
	wb.b[1], wb.b[2] = 0, 0 // from rank 0
	putU32(wb.b[3:7], d.inc) // live incarnation: the stale filter must pass it
	putU32(wb.b[7:11], seq)
	putU32(wb.b[11:15], 0)
	return wb
}

// TestReorderShedBudget: parked out-of-order frames are bounded by the
// byte budget — overflow sheds the frame furthest from delivery, the
// budget invariant holds throughout, and in-order recovery still drains
// the surviving contiguous prefix.
func TestReorderShedBudget(t *testing.T) {
	const budget = 600
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP,
		RelReorderBytes: budget,
	})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(_ *Endpoint, m *Msg) { got = append(got, m.A0) })
	ep1 := d.Endpoint(1)

	// Inject seqs 2..12 (seq 1 missing, so everything parks) with payloads
	// large enough that the budget holds only a handful of frames.
	payload := make([]byte, 100)
	for seq := uint32(2); seq <= 12; seq++ {
		d.receiveDatagram(ep1, forgeSeqFrame(d, seq, payload))
		p := d.rel.pair(1, 0)
		p.mu.Lock()
		over := p.reorderBytes > budget
		p.mu.Unlock()
		if over {
			t.Fatalf("reorder buffer exceeded the %d-byte budget at seq %d", budget, seq)
		}
	}
	s := d.Stats()
	if s.ShedFrames == 0 || s.ShedBytes == 0 {
		t.Fatalf("ShedFrames=%d ShedBytes=%d: nothing shed past the budget", s.ShedFrames, s.ShedBytes)
	}

	// The survivors are the lowest sequences (highest are shed first).
	// Delivering the missing seq 1 must drain the full contiguous prefix.
	d.receiveDatagram(ep1, forgeSeqFrame(d, 1, payload))
	deadline := time.Now().Add(5 * time.Second)
	for len(got) == 0 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	for i := 0; ; i++ {
		if ep1.Poll() == 0 && i > 10 {
			break
		}
	}
	if len(got) < 2 {
		t.Fatalf("drained only %d frames after filling the gap", len(got))
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("delivery order broken at %d: got seq %d", i, v)
		}
	}
	t.Logf("shed %d frames (%d bytes), drained %d in order", s.ShedFrames, s.ShedBytes, len(got))
}

// TestShedBurstMarksSuspect: sustained shedding within one ticker sweep is
// a liveness signal — the flooding sender transitions Alive→Suspect, which
// the monotonic PeersSuspected counter records even if later traffic
// restores it to Alive.
func TestShedBurstMarksSuspect(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	p := d.rel.pair(0, 1)
	p.mu.Lock()
	p.shedRecent = relShedSuspect
	p.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PeersSuspected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Stats().PeersSuspected == 0 {
		t.Fatal("a shed burst never marked the flooding peer Suspect")
	}
}
