package gasnet

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// lossyFault is the canonical heavy-fault profile the acceptance criteria
// prescribe: a quarter of all datagrams dropped, plus duplication and
// reordering.
func lossyFault(seed int64) *FaultConfig {
	return &FaultConfig{Seed: seed, Drop: 0.25, Dup: 0.05, Reorder: 0.10}
}

// TestReliableDeliveryUnderLoss: at 25% drop + dup + reorder, every
// message still arrives exactly once and in per-peer FIFO order (a
// guarantee raw UDP never made but the reliability layer does), with the
// retransmission machinery visibly doing the work.
func TestReliableDeliveryUnderLoss(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, Fault: lossyFault(42)})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		got = append(got, m.A0)
		if string(m.Payload) != "lossy wire" {
			t.Errorf("payload %q", m.Payload)
		}
	})
	const msgs = 200
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	for i := 0; i < msgs; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i), Payload: []byte("lossy wire")})
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < msgs && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("FIFO broken at %d: got %d", i, v)
		}
	}
	s := d.Stats()
	if s.FaultsInjected == 0 {
		t.Error("fault shim injected nothing at 40% combined probability")
	}
	if s.Retransmits == 0 {
		t.Error("no retransmissions despite 25% drop")
	}
	t.Logf("stats: %+v", s)
}

// TestReliableBurstUnderLoss: a coalesced batch rides inside one sequenced
// frame, so loss of the datagram retransmits the burst as a unit and
// delivery order within the batch survives.
func TestReliableBurstUnderLoss(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, Fault: lossyFault(7)})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) { got = append(got, m.A0) })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	const rounds, fan = 40, 8
	for r := 0; r < rounds; r++ {
		ep0.BeginBurst()
		for k := 0; k < fan; k++ {
			ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(r*fan + k)})
		}
		ep0.EndBurst()
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < rounds*fan && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	if len(got) != rounds*fan {
		t.Fatalf("delivered %d of %d", len(got), rounds*fan)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("batch order broken at %d: got %d", i, v)
		}
	}
	if s := d.Stats(); s.CoalescedBatches < rounds {
		t.Errorf("CoalescedBatches = %d, want >= %d", s.CoalescedBatches, rounds)
	}
}

// TestReliablePutAckUnderLoss drives the internal protocol's put/ack
// round trip — request datagram out, acknowledgment datagram back —
// across the lossy wire until every operation completes.
func TestReliablePutAckUnderLoss(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12, Fault: lossyFault(11),
	})
	defer d.Close()
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	const puts = 64
	done := 0
	want := make([]byte, 0, puts*16)
	for i := 0; i < puts; i++ {
		val := []byte(fmt.Sprintf("payload-%06d:x", i)) // 16 bytes
		want = append(want, val...)
		ep0.PutRemote(1, uint32(i*16), val, nil, func(error) { done++ })
	}
	deadline := time.Now().Add(30 * time.Second)
	for done < puts && time.Now().Before(deadline) {
		ep1.Poll() // service put requests, emit acks
		ep0.Poll() // complete outstanding ops
	}
	if done != puts {
		t.Fatalf("completed %d of %d puts", done, puts)
	}
	got := make([]byte, len(want))
	d.Segment(1).CopyOut(0, got)
	if !bytes.Equal(got, want) {
		t.Error("target segment bytes corrupted under loss")
	}
	if ep0.PendingOps() != 0 {
		t.Errorf("%d ops still pending", ep0.PendingOps())
	}
	if s := d.Stats(); s.Retransmits == 0 {
		t.Error("no retransmissions despite 25% drop")
	}
}

// TestReliableDupSuppression: heavy duplication, zero loss — every
// duplicate must be swallowed by the receiver, not double-dispatched.
func TestReliableDupSuppression(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, Fault: &FaultConfig{Seed: 3, Dup: 0.5},
	})
	defer d.Close()
	counts := map[uint64]int{}
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) { counts[m.A0]++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	const msgs = 100
	for i := 0; i < msgs; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	total := 0
	deadline := time.Now().Add(20 * time.Second)
	for total < msgs && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
		total = len(counts)
	}
	// Give straggler duplicates a moment to arrive, then check exactness.
	time.Sleep(20 * time.Millisecond)
	ep1.Poll()
	for k, c := range counts {
		if c != 1 {
			t.Errorf("message %d delivered %d times", k, c)
		}
	}
	if len(counts) != msgs {
		t.Fatalf("delivered %d of %d distinct messages", len(counts), msgs)
	}
	if s := d.Stats(); s.DupsDropped == 0 {
		t.Error("DupsDropped = 0 under 50% duplication")
	}
}

// TestReliableReorderDelivery: heavy reordering, zero loss — the reorder
// buffer must restore strict per-peer FIFO.
func TestReliableReorderDelivery(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, Fault: &FaultConfig{Seed: 5, Reorder: 0.5},
	})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) { got = append(got, m.A0) })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	const msgs = 100
	for i := 0; i < msgs; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	deadline := time.Now().Add(20 * time.Second)
	for len(got) < msgs && time.Now().Before(deadline) {
		if ep1.Poll() == 0 {
			ep1.Park()
		}
	}
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order broken at %d: got %d (reorder buffer failed)", i, v)
		}
	}
}

// TestReliableWindowBounds: with a peer that acks nothing (100% drop),
// the sender's in-flight queue stops at relWindow datagrams — bounding
// arena memory — and the next send blocks instead of queueing.
func TestReliableWindowBounds(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, Fault: &FaultConfig{Seed: 1, Drop: 1.0},
	})
	ep0 := d.Endpoint(0)
	for i := 0; i < relWindow; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i)})
	}
	blocked := make(chan struct{})
	go func() {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: relWindow})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Error("send past the in-flight window did not block")
	case <-time.After(50 * time.Millisecond):
		// Expected: the window is full and nothing will ever be acked.
	}
	d.Close() // unblocks the stuck sender (post-Close sends are dropped)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked sender did not drain out on Close")
	}
}

// TestReliableOutOfWindowDrop: a forged sequence far beyond the receive
// window is counted and discarded, never buffered.
func TestReliableOutOfWindowDrop(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	// Hand-craft a sequenced frame from rank 0 with an absurd sequence
	// number and inject it at the receiver, exactly as the reader
	// goroutine would.
	m := Msg{Handler: HandlerUserBase, A0: 99}
	wb := d.arena.get(bufClassLarge)
	wire := append(wb.b[:relHeaderLen], frameSingle)
	wire = appendMsg(wire, &m)
	wb.b = wire
	wb.b[0] = frameSeq
	wb.b[1], wb.b[2] = 0, 0 // from rank 0
	putU32(wb.b[3:7], d.inc) // current incarnation: past the stale filter
	putU32(wb.b[7:11], relWindow+12345)
	putU32(wb.b[11:15], 0)
	d.receiveDatagram(d.Endpoint(1), wb)
	if s := d.Stats(); s.OutOfWindowDrops != 1 {
		t.Errorf("OutOfWindowDrops = %d, want 1", s.OutOfWindowDrops)
	}
}

// TestCorruptDatagramsCountedAndDropped feeds the receive path the malformed
// frames a hostile or broken sender could produce: each must be counted,
// none may panic, and the conduit must keep working afterwards.
func TestCorruptDatagramsCountedAndDropped(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep1 := d.Endpoint(1)
	bad := [][]byte{
		{},                             // empty datagram
		{0xEE},                         // unknown frame tag
		{frameSingle},                  // truncated wire message
		{frameSingle, 1, 2, 3},         // short of the fixed header
		{frameBatch},                   // truncated batch header
		{frameBatch, 0, 0},             // empty batch
		{frameBatch, 2, 0, 9, 0, 0, 0}, // entry length overruns frame
		{frameSeq, 0, 0, 1},            // truncated sequenced header
	}
	for _, b := range bad {
		wb := d.arena.get(bufClassLarge)
		wb.b = append(wb.b[:0], b...)
		d.receiveDatagram(ep1, wb)
	}
	if s := d.Stats(); s.DecodeErrors != int64(len(bad)) {
		t.Errorf("DecodeErrors = %d, want %d", s.DecodeErrors, len(bad))
	}
	// The conduit still works.
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase})
	deadline := time.Now().Add(2 * time.Second)
	for received == 0 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if received != 1 {
		t.Fatal("conduit dead after corrupt datagrams")
	}
}

// TestRbufErrAccessor: the SetReadBuffer breadcrumb is reachable
// programmatically (nil on healthy hosts and non-socket conduits).
func TestRbufErrAccessor(t *testing.T) {
	u := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer u.Close()
	if err := u.RbufErr(); err != nil {
		t.Logf("RbufErr = %v (undersized kernel buffers on this host)", err)
	}
	s := newTestDomain(t, Config{Ranks: 2, Conduit: SMP})
	if err := s.RbufErr(); err != nil {
		t.Errorf("RbufErr = %v on a socketless conduit", err)
	}
}

// TestFaultSpecParsing pins the GUPCXX_UDP_FAULT grammar.
func TestFaultSpecParsing(t *testing.T) {
	f, err := parseFaultSpec("drop=0.25,dup=0.05,reorder=0.10,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if f.Drop != 0.25 || f.Dup != 0.05 || f.Reorder != 0.10 || f.Seed != 7 {
		t.Errorf("parsed %+v", f)
	}
	if _, err := parseFaultSpec("drop=2"); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := parseFaultSpec("drop=0.5,dup=0.4,reorder=0.3"); err == nil {
		t.Error("probabilities summing past 1 accepted")
	}
	if _, err := parseFaultSpec("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := parseFaultSpec("drop"); err == nil {
		t.Error("keyless field accepted")
	}
}

// TestFaultConfigValidation: NewDomain rejects nonsense fault configs and
// ignores fault configs on conduits without sockets.
func TestFaultConfigValidation(t *testing.T) {
	if _, err := NewDomain(Config{Ranks: 2, Conduit: UDP,
		Fault: &FaultConfig{Drop: 1.5}}); err == nil {
		t.Error("Drop = 1.5 accepted")
	}
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SMP,
		Fault: &FaultConfig{Drop: 0.5}})
	if d.Config().Fault != nil {
		t.Error("fault config survived on the SMP conduit")
	}
}

// putU32 is a tiny test helper (avoids importing encoding/binary here).
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
