//go:build race

package gasnet

// raceEnabled reports that this binary was built with -race, under which
// sync.Pool deliberately drops items at random — pool-identity tests must
// skip.
const raceEnabled = true
