package gasnet

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestQueueSpillOverflow: pushing more than the ring's capacity spills the
// excess to the backlog, and a drain still returns everything in FIFO
// order.
func TestQueueSpillOverflow(t *testing.T) {
	var q amQueue
	const total = ringCap + 100
	for i := 0; i < total; i++ {
		q.push(Msg{A0: uint64(i)})
	}
	msgs := q.drain(0)
	if len(msgs) != total {
		t.Fatalf("drained %d of %d", len(msgs), total)
	}
	for i, m := range msgs {
		if m.A0 != uint64(i) {
			t.Fatalf("order broken at %d: %d", i, m.A0)
		}
	}
	if q.fastPushes.Load() != ringCap {
		t.Errorf("fastPushes = %d, want %d", q.fastPushes.Load(), ringCap)
	}
	if q.spills.Load() != 100 {
		t.Errorf("spills = %d, want 100", q.spills.Load())
	}
	if !q.empty() {
		t.Error("queue not empty after full drain")
	}
}

// TestDrainScratchOwnership pins the drain ownership contract: the
// returned slice is owned by the caller only until the next drain — the
// backing array is reused, so holding messages across polls requires a
// copy (as Endpoint.PollInternal's held set does).
func TestDrainScratchOwnership(t *testing.T) {
	var q amQueue
	q.push(Msg{A0: 1})
	first := q.drain(0)
	if len(first) != 1 || first[0].A0 != 1 {
		t.Fatalf("first drain = %v", first)
	}
	q.push(Msg{A0: 2})
	second := q.drain(0)
	if len(second) != 1 || second[0].A0 != 2 {
		t.Fatalf("second drain = %v", second)
	}
	if &first[0] != &second[0] {
		t.Fatal("drain did not reuse its scratch buffer; the ownership " +
			"contract (and this test) should be revisited")
	}
	if first[0].A0 != 2 {
		t.Fatalf("held message survived the next drain (A0 = %d); "+
			"callers relying on this would mask the aliasing hazard", first[0].A0)
	}
}

// TestQueueStressSpillFIFO hammers the queue from 8 producers while the
// consumer's pacing randomly forces ring→backlog→ring transitions, and
// asserts per-producer FIFO order with zero lost or duplicated messages.
// Run under -race, this is the MPSC fast path's memory-model test.
func TestQueueStressSpillFIFO(t *testing.T) {
	var q amQueue
	const producers = 8
	per := 20000
	if testing.Short() {
		per = 2000
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 0; i < per; i++ {
				q.push(Msg{A1: uint64(p), A0: uint64(i)})
			}
		}(p)
	}

	// Let producers overrun the ring before the first drain: total volume
	// far exceeds ringCap, so spills are guaranteed, and the randomized
	// pauses below keep flipping the queue between spilled and fast-path
	// states while pushes race the transitions.
	close(start)
	rng := rand.New(rand.NewSource(1))
	next := make([]uint64, producers)
	delivered := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.Now().Add(30 * time.Second)
	finished := false
	for delivered < producers*per {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: delivered %d of %d", delivered, producers*per)
		}
		if rng.Intn(4) == 0 {
			time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
		}
		for _, m := range q.drain(0) {
			p := m.A1
			if m.A0 != next[p] {
				t.Fatalf("producer %d FIFO broken: got %d, want %d", p, m.A0, next[p])
			}
			next[p]++
			delivered++
		}
		if !finished {
			select {
			case <-done:
				finished = true
			default:
			}
		}
	}
	if !q.empty() {
		t.Error("queue not empty after delivering everything")
	}
	if q.spills.Load() == 0 {
		t.Error("stress run never exercised the backlog spill path")
	}
	if q.fastPushes.Load() == 0 {
		t.Error("stress run never exercised the ring fast path")
	}
	if q.fastPushes.Load()+q.spills.Load() != int64(producers*per) {
		t.Errorf("counter sum %d+%d != %d",
			q.fastPushes.Load(), q.spills.Load(), producers*per)
	}
}
