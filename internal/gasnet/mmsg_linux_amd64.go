//go:build linux && amd64

package gasnet

// sendmmsg/recvmmsg syscall numbers. The standard library's frozen
// amd64 table predates sendmmsg, so both are spelled out here.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
