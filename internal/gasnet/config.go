// Package gasnet implements the communication substrate underneath the
// gupcxx runtime, modeled on GASNet-EX: per-rank shared-memory segments, a
// rank-to-node topology, active-message (AM) endpoints with polling-based
// progress, an AM-based remote RMA/atomic protocol, and pluggable conduits.
//
// Four conduits are provided:
//
//   - SMP: every rank lives on one node; all segments are directly
//     addressable and the locality of a global address is a compile-time
//     fact (the "constexpr is_local" optimization in the paper).
//   - PSHM: models the paper's UDP-conduit-with-process-shared-memory runs:
//     all ranks are co-located and have direct load/store access to each
//     other's segments, but locality is a dynamic property that must be
//     queried per address.
//   - SIM: a message-passing conduit with injected wire latency. Ranks are
//     partitioned into nodes of RanksPerNode ranks each; accesses between
//     nodes travel as serialized active messages and never complete
//     synchronously, exercising the deferred-notification path exactly as a
//     network NIC would.
//   - UDP: like PSHM, but wire-encodable active messages travel over real
//     loopback UDP sockets (see udp.go) — the substrate configuration of
//     the paper's IBM and Marvell runs.
package gasnet

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"gupcxx/internal/obs"
)

// Conduit selects the communication substrate for a Domain.
type Conduit int

const (
	// SMP is the single-node shared-memory conduit with static locality.
	SMP Conduit = iota
	// PSHM is the co-located-processes conduit with dynamic locality.
	PSHM
	// SIM is the simulated-network conduit with cross-node latency.
	SIM
	// UDP is the co-located-processes conduit whose active messages
	// travel over real loopback UDP datagrams (the paper's UDP-conduit
	// runs); RMA data still moves through process-shared memory.
	UDP
)

// String returns the conduit's conventional lower-case name.
func (c Conduit) String() string {
	switch c {
	case SMP:
		return "smp"
	case PSHM:
		return "pshm"
	case SIM:
		return "sim"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("conduit(%d)", int(c))
	}
}

// ParseConduit converts a conduit name ("smp", "pshm", "sim", "udp") to a
// Conduit.
func ParseConduit(s string) (Conduit, error) {
	switch s {
	case "smp":
		return SMP, nil
	case "pshm":
		return PSHM, nil
	case "sim":
		return SIM, nil
	case "udp":
		return UDP, nil
	default:
		return 0, fmt.Errorf("gasnet: unknown conduit %q", s)
	}
}

// DefaultSegmentBytes is the per-rank shared segment size used when
// Config.SegmentBytes is zero.
const DefaultSegmentBytes = 16 << 20

// BackpressurePolicy selects how admission reacts to a full send window
// (see Config.Backpressure).
type BackpressurePolicy int

const (
	// BackpressureBlock (the default) waits — bounded by
	// Config.BackpressureWait and the operation's deadline — for a window
	// credit before failing the operation with ErrBackpressure.
	BackpressureBlock BackpressurePolicy = iota
	// BackpressureFailFast fails the operation with ErrBackpressure
	// immediately when the window is full.
	BackpressureFailFast
)

// Config describes a gasnet job: the number of ranks, how they are grouped
// into nodes, the conduit connecting them, and segment sizing.
type Config struct {
	// Ranks is the total number of ranks in the job. Must be >= 1.
	Ranks int

	// Conduit selects the substrate. The zero value is SMP.
	Conduit Conduit

	// RanksPerNode applies to the SIM conduit only and gives the number of
	// co-located ranks per simulated node. Zero means 1 (every rank on its
	// own node, all traffic remote). SMP and PSHM place all ranks on node 0.
	RanksPerNode int

	// SegmentBytes is the size of each rank's shared segment. Zero selects
	// DefaultSegmentBytes. Rounded up to a multiple of 8.
	SegmentBytes int

	// SimLatency is the one-way wire latency injected by the SIM conduit
	// for cross-node messages. Zero selects 1µs. Ignored by other conduits.
	SimLatency time.Duration

	// Fault arms the UDP conduit's deterministic network model from
	// construction: datagrams are dropped, duplicated, and reordered from
	// a seeded PRNG (see FaultConfig), so the reliability layer is
	// testable in-process without real packet loss. The model's shim is
	// interposed on every UDP send path regardless (idle it costs one
	// atomic load per write), so faults, partitions, and latency can also
	// be armed mid-run (SetFault, SetPartition, SetLatency, the scenario
	// DSL) on a domain built with Fault nil. When nil, the
	// GUPCXX_UDP_FAULT environment variable is consulted (see fault.go),
	// letting whole suites run under loss; an explicit zero FaultConfig
	// shields a domain from that preset. Ignored by other conduits.
	Fault *FaultConfig

	// UDPUnreliable disables the UDP conduit's reliability layer
	// (sequencing, acks, retransmission — see reliable.go), restoring the
	// raw-datagram behaviour that assumes a lossless, ordered loopback.
	// Only sensible for overhead measurement; combined with Fault,
	// messages are genuinely lost. Ignored by other conduits.
	UDPUnreliable bool

	// UDPNoMmsg forces the UDP conduit onto the portable sequential I/O
	// path (one sendto/recvfrom syscall per datagram) even on platforms
	// with sendmmsg/recvmmsg support — for comparative measurement and
	// for exercising the fallback on Linux. The vectorized and sequential
	// paths are semantically identical; only the syscall count (and the
	// Stats Sendmmsg*/Recvmmsg* counters, which stay zero here) differs.
	// Ignored by other conduits.
	UDPNoMmsg bool

	// RelWindow bounds the reliability layer's per-pair in-flight
	// (unacked) datagrams and receive-side reorder buffer. Zero selects
	// the default (256). It is the *maximum* of the adaptive congestion
	// window, which moves AIMD-style between RelWindowMin and this value.
	// Reliable UDP only.
	RelWindow int

	// RelWindowMin is the AIMD floor of the adaptive congestion window:
	// loss signals never halve the window below this. Zero selects the
	// default (8, clamped to RelWindow). Reliable UDP only.
	RelWindowMin int

	// RelReorderBytes bounds, per rank pair, the bytes of out-of-order
	// frames parked in the receive-side reorder buffer. Parking past the
	// budget sheds the parked frame furthest from delivery (the sender
	// retransmits it), so one peer's burst cannot pin unbounded memory.
	// Zero selects the default (1 MiB). Reliable UDP only.
	RelReorderBytes int

	// Backpressure selects the admission policy when an operation targets
	// a peer whose send window is full: BackpressureBlock (the zero value)
	// waits up to BackpressureWait for a credit before failing with
	// ErrBackpressure; BackpressureFailFast fails immediately, surfacing
	// overload as a completion value the caller can react to. Reliable
	// UDP only.
	Backpressure BackpressurePolicy

	// BackpressureWait bounds how long blocking admission
	// (BackpressureBlock) may wait for a window credit. Zero selects the
	// default (2s). The wait is further capped by the operation's own
	// deadline, when it has one. Reliable UDP only.
	BackpressureWait time.Duration

	// RelMaxAttempts is the retransmission budget: this many fruitless
	// retransmits of one datagram exhaust the attempt budget and the
	// destination is declared down (ErrPeerUnreachable for its pending
	// operations) instead of retrying forever. Zero selects the default
	// (64). Reliable UDP only.
	RelMaxAttempts int

	// HeartbeatEvery is the liveness heartbeat period: the reliability
	// ticker ships one small unsequenced heartbeat per rank pair each
	// period, so silence is measurable even on idle ranks. Zero selects
	// 5ms. Reliable UDP only.
	HeartbeatEvery time.Duration

	// SuspectAfter is how long a peer may stay silent before it is marked
	// Suspect (recoverable — any received traffic restores it). Zero
	// selects 10×HeartbeatEvery.
	SuspectAfter time.Duration

	// DownAfter is how long a peer may stay silent before it is declared
	// Down (sticky): its pending operations fail with ErrPeerUnreachable
	// and new operations targeting it fail at injection. Zero selects
	// 40×HeartbeatEvery.
	DownAfter time.Duration

	// DisableLiveness turns the heartbeat/failure-detection machinery off
	// entirely (retransmission exhaustion then aborts the job, the
	// pre-liveness behaviour).
	DisableLiveness bool

	// Multiproc selects the process-per-rank deployment shape on the UDP
	// conduit: this OS process hosts exactly one rank (Self), every other
	// rank is a separate process reached only over the wire, and no
	// segment but Self's exists in this address space. Requires Conduit ==
	// UDP, a bound SelfConn, and a full Peers table (one UDP address per
	// rank, Self's included). In this mode closure-carrying messages to
	// remote ranks cannot be delivered — the runtime layer must gate them
	// before injection — and locality collapses to rank == Self.
	Multiproc bool

	// Self is this process's rank in a Multiproc world. Ignored otherwise.
	Self int

	// Peers is the rank-indexed UDP address table of a Multiproc world,
	// established out-of-band by the bootstrap exchange (internal/boot).
	// len(Peers) must equal Ranks. Ignored unless Multiproc.
	Peers []netip.AddrPort

	// SelfConn is this process's bound UDP socket in a Multiproc world.
	// It must already be bound (the bootstrap exchange binds it before
	// publishing its address so peers' first datagrams are buffered by
	// the kernel rather than refused). The Domain takes ownership and
	// closes it. Ignored unless Multiproc.
	SelfConn *net.UDPConn

	// Epoch is the world incarnation stamp assigned by the bootstrap
	// exchange in a Multiproc world (zero means "unstamped"; the runtime
	// treats that as epoch 1). It is this process's incarnation: every
	// frame it sends is stamped with it, peers reject frames from any
	// other incarnation of this rank, and a restarted rank re-registers
	// under a bumped epoch. Ignored unless Multiproc.
	Epoch uint32

	// Rejoin marks this process as a restarted rank: it re-registered
	// with the rendezvous server and received a bumped epoch, so its
	// peers' record of it is stale. The liveness machine then boots with
	// every peer incarnation unknown (adopted from first contact) and
	// announces this rank's new incarnation with join frames each
	// heartbeat round until the surviving peers readmit it. Ignored
	// unless Multiproc.
	Rejoin bool

	// DisableReadmission restores sticky-Down: join frames from restarted
	// peers are ignored, and a peer once declared down stays down for the
	// life of this process. Reliable UDP only.
	DisableReadmission bool

	// DisableHealing restores terminal Down for silence-declared peers: no
	// partition probes are sent and incoming probes are ignored (no acks
	// either, so both sides of a partition converge to sticky Down
	// symmetrically). Readmission of restarted peers is unaffected.
	// Reliable UDP only.
	DisableHealing bool

	// Events, when non-nil, receives substrate health events: liveness
	// transitions (suspect/down/recovered), backpressure onset and relief,
	// congestion-window shrink and recovery-to-ceiling, and retransmit
	// exhaustion. The bus is non-blocking by contract — a publish with no
	// subscriber attached costs one atomic load — so it is safe to leave
	// wired permanently. The field must be set before NewDomain: the
	// reliability ticker starts during construction and emits from its own
	// goroutine. Events fire on state *transitions* only, never per frame.
	// Only the reliable UDP conduit currently emits.
	Events *obs.Bus
}

// normalized returns a copy of c with defaults filled in, or an error if the
// configuration is invalid.
func (c Config) normalized() (Config, error) {
	if c.Ranks < 1 {
		return c, fmt.Errorf("gasnet: Ranks must be >= 1, got %d", c.Ranks)
	}
	if c.Multiproc {
		if c.Conduit != UDP {
			return c, fmt.Errorf("gasnet: Multiproc requires the UDP conduit, got %v", c.Conduit)
		}
		if c.Self < 0 || c.Self >= c.Ranks {
			return c, fmt.Errorf("gasnet: Multiproc Self %d out of range [0,%d)", c.Self, c.Ranks)
		}
		if len(c.Peers) != c.Ranks {
			return c, fmt.Errorf("gasnet: Multiproc needs %d peer addresses, got %d", c.Ranks, len(c.Peers))
		}
		if c.SelfConn == nil {
			return c, fmt.Errorf("gasnet: Multiproc requires a bound SelfConn")
		}
	} else {
		c.Self = 0
		c.Peers = nil
		c.SelfConn = nil
		c.Epoch = 0
		c.Rejoin = false
	}
	switch c.Conduit {
	case SMP, PSHM, UDP:
		c.RanksPerNode = c.Ranks
		if c.Conduit == UDP {
			if c.Fault == nil && !c.UDPUnreliable {
				f, err := faultFromEnv()
				if err != nil {
					return c, err
				}
				c.Fault = f
			}
			if c.Fault != nil {
				f := *c.Fault // detach from the caller's struct
				if err := f.validate(); err != nil {
					return c, err
				}
				c.Fault = &f
			}
			if c.RelWindow < 0 || c.RelMaxAttempts < 0 {
				return c, fmt.Errorf("gasnet: RelWindow and RelMaxAttempts must be >= 0")
			}
			if c.RelWindow == 0 {
				c.RelWindow = relWindow
			}
			if c.RelMaxAttempts == 0 {
				c.RelMaxAttempts = relMaxAttempts
			}
			if c.RelWindowMin < 0 || c.RelReorderBytes < 0 || c.BackpressureWait < 0 {
				return c, fmt.Errorf("gasnet: RelWindowMin, RelReorderBytes, and BackpressureWait must be >= 0")
			}
			if c.RelWindowMin > c.RelWindow {
				return c, fmt.Errorf("gasnet: RelWindowMin (%d) must be <= RelWindow (%d)",
					c.RelWindowMin, c.RelWindow)
			}
			if c.RelWindowMin == 0 {
				c.RelWindowMin = relWindowMin
				if c.RelWindowMin > c.RelWindow {
					c.RelWindowMin = c.RelWindow
				}
			}
			if c.RelReorderBytes == 0 {
				c.RelReorderBytes = relReorderBytes
			}
			switch c.Backpressure {
			case BackpressureBlock, BackpressureFailFast:
			default:
				return c, fmt.Errorf("gasnet: unknown Backpressure policy %d", c.Backpressure)
			}
			if c.BackpressureWait == 0 {
				c.BackpressureWait = relBPWait
			}
			if c.HeartbeatEvery <= 0 {
				c.HeartbeatEvery = 5 * time.Millisecond
			}
			if c.SuspectAfter <= 0 {
				c.SuspectAfter = 10 * c.HeartbeatEvery
			}
			if c.DownAfter <= 0 {
				c.DownAfter = 40 * c.HeartbeatEvery
			}
			if c.DownAfter < c.SuspectAfter {
				return c, fmt.Errorf("gasnet: DownAfter (%v) must be >= SuspectAfter (%v)",
					c.DownAfter, c.SuspectAfter)
			}
		}
	case SIM:
		if c.RanksPerNode == 0 {
			c.RanksPerNode = 1
		}
		if c.RanksPerNode < 1 {
			return c, fmt.Errorf("gasnet: RanksPerNode must be >= 1, got %d", c.RanksPerNode)
		}
	default:
		return c, fmt.Errorf("gasnet: unknown conduit %v", c.Conduit)
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.SegmentBytes < 8 {
		return c, fmt.Errorf("gasnet: SegmentBytes must be >= 8, got %d", c.SegmentBytes)
	}
	c.SegmentBytes = (c.SegmentBytes + 7) &^ 7
	if c.Conduit == SIM && c.SimLatency == 0 {
		c.SimLatency = time.Microsecond
	}
	if c.Conduit != UDP {
		c.Fault = nil
		c.UDPUnreliable = false
		c.UDPNoMmsg = false
	}
	return c, nil
}

// NodeOf reports which node the given rank resides on under this config.
// In a Multiproc world every rank is its own node: nothing is co-located,
// so every non-self access travels the conduit.
func (c Config) NodeOf(rank int) int {
	if c.Multiproc {
		return rank
	}
	if c.RanksPerNode <= 0 || c.Conduit != SIM {
		return 0
	}
	return rank / c.RanksPerNode
}

// SameNode reports whether two ranks are co-located (and therefore have
// direct load/store access to each other's segments).
func (c Config) SameNode(a, b int) bool {
	return c.NodeOf(a) == c.NodeOf(b)
}

// StaticLocal reports whether locality is a compile-time fact for this
// configuration (true only for the SMP conduit, where the is_local check is
// constexpr in the paper's terms).
func (c Config) StaticLocal() bool { return c.Conduit == SMP }
