package gasnet

import "testing"

// FuzzDecodeMsg: arbitrary datagrams must either decode or error, never
// panic — the UDP conduit's reader trusts decodeMsg with kernel-delivered
// bytes.
func FuzzDecodeMsg(f *testing.F) {
	f.Add([]byte{})
	m := Msg{Handler: 3, From: 1, A0: 9, Payload: []byte("x")}
	f.Add(append([]byte(nil), encodeMsg(nil, &m)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeMsg(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the identical bytes
		// (encode∘decode is the identity on valid wire messages).
		back := encodeMsg(nil, &got)
		if string(back) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", back, data)
		}
	})
}
