package gasnet

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeMsg: arbitrary datagrams must either decode or error, never
// panic — the UDP conduit's reader trusts decodeMsg with kernel-delivered
// bytes.
func FuzzDecodeMsg(f *testing.F) {
	f.Add([]byte{})
	m := Msg{Handler: 3, From: 1, A0: 9, Payload: []byte("x")}
	f.Add(append([]byte(nil), encodeMsg(nil, &m)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeMsg(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the identical bytes
		// (encode∘decode is the identity on valid wire messages).
		back := encodeMsg(nil, &got)
		if string(back) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", back, data)
		}
	})
}

// FuzzDecodeDatagram: arbitrary whole datagrams — any framing tag,
// sequenced or not, truncated anywhere — must be parsed to completion or
// rejected with an error, never panic. This is the exact code path the UDP
// reader goroutine runs on kernel-delivered bytes.
func FuzzDecodeDatagram(f *testing.F) {
	m := Msg{Handler: HandlerUserBase, From: 0, A0: 42, Payload: []byte("fuzz")}

	single := append([]byte{frameSingle}, encodeMsg(nil, &m)...)
	f.Add(append([]byte(nil), single...))

	batch := []byte{frameBatch, 2, 0}
	for i := 0; i < 2; i++ {
		enc := encodeMsg(nil, &m)
		batch = append(batch, byte(len(enc)), byte(len(enc)>>8), byte(len(enc)>>16), byte(len(enc)>>24))
		batch = append(batch, enc...)
	}
	f.Add(append([]byte(nil), batch...))

	seq := make([]byte, relHeaderLen)
	seq[0] = frameSeq
	seq[3] = 1 // incarnation = 1
	seq[7] = 1 // seq = 1
	f.Add(append(seq, single...))

	f.Add([]byte{})
	f.Add([]byte{0xEE, 1, 2, 3})              // unknown tag
	f.Add([]byte{frameBatch, 9, 0, 1})        // count overruns frame
	f.Add(append([]byte(nil), single[:5]...)) // truncated message

	f.Fuzz(func(t *testing.T, data []byte) {
		frame := data
		if len(frame) > 0 && frame[0] == frameSeq {
			if _, _, _, _, err := parseRelHeader(frame); err != nil {
				return
			}
			frame = frame[relHeaderLen:]
		}
		it := parseDatagram(frame)
		n := 0
		for {
			if _, ok := it.next(); !ok {
				break
			}
			if n++; n > 1<<16 {
				t.Fatal("iterator failed to terminate")
			}
		}
		_ = it.err // decode errors are reported, not panicked
	})
}

// FuzzDecodeFrameSeq drives arbitrary datagrams through the complete
// receive path of a live reliable domain — frameSeq header parse, ack
// processing, sequencing (deliver / park / shed / dup-drop), and the
// inner frame walk, including truncated and overlapping batch payloads.
// The contract under fuzz is counted-drop-never-panic: malformed input
// increments DecodeErrors (or one of the drop counters) and the domain
// keeps running. Handlers are neutralized so forged internal-protocol
// messages (puts with hostile offsets) exercise the transport, not the
// segment bounds checks.
func FuzzDecodeFrameSeq(f *testing.F) {
	d := newTestDomain(f, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	for i := range d.handlers {
		d.handlers[i] = func(*Endpoint, *Msg) {}
	}
	ep1 := d.Endpoint(1)

	m := Msg{Handler: HandlerUserBase, From: 0, A0: 7, Payload: []byte("seq")}
	inner := append([]byte{frameSingle}, encodeMsg(nil, &m)...)
	hdr := func(from uint16, inc, seq, ack uint32) []byte {
		b := make([]byte, relHeaderLen)
		b[0] = frameSeq
		binary.LittleEndian.PutUint16(b[1:3], from)
		binary.LittleEndian.PutUint32(b[3:7], inc)
		binary.LittleEndian.PutUint32(b[7:11], seq)
		binary.LittleEndian.PutUint32(b[11:15], ack)
		return b
	}
	// Well-formed in-order frame, a future (parked) frame, a duplicate, a
	// forged out-of-window sequence, and a standalone ack. The in-process
	// domain's incarnation is 1 (epoch 0 normalizes to 1).
	f.Add(append(hdr(0, 1, 1, 0), inner...))
	f.Add(append(hdr(0, 1, 5, 0), inner...))
	f.Add(append(hdr(0, 1, 1, 2), inner...))
	f.Add(append(hdr(0, 1, 1<<30, 0), inner...))
	f.Add(hdr(0, 1, 0, 99))
	// Stale and zero incarnations: dropped and counted, never delivered.
	f.Add(append(hdr(0, 2, 1, 0), inner...))
	f.Add(append(hdr(0, 0, 1, 0), inner...))
	// Bogus sender ranks and truncated headers.
	f.Add(append(hdr(9, 1, 1, 0), inner...))
	f.Add(hdr(0, 1, 3, 0)[:5])
	f.Add(hdr(0, 1, 3, 0)[:9])
	// Batch with overlapping/overrunning entry lengths inside a valid
	// sequenced header.
	enc := encodeMsg(nil, &m)
	batch := []byte{frameBatch, 2, 0}
	batch = append(batch, byte(len(enc)+50), byte((len(enc)+50)>>8), 0, 0)
	batch = append(batch, enc...)
	f.Add(append(hdr(0, 1, 2, 0), batch...))
	// Truncated batch payload: count promises more than the frame holds.
	f.Add(append(hdr(0, 1, 3, 0), frameBatch, 9, 0, 1, 2, 3))
	// Heartbeat and raw frames take the non-sequenced path: a well-formed
	// incarnation-bearing heartbeat, a stale one, and truncated stubs.
	f.Add([]byte{frameHB, 0, 0, 1, 0, 0, 0})
	f.Add([]byte{frameHB, 0, 0, 9, 9, 0, 0})
	f.Add([]byte{frameHB, 0, 0})
	f.Add([]byte{frameHB, 77})
	// Join frames (ignored outside multiproc worlds, but must parse
	// safely): well-formed, bad address, truncated, oversized length byte.
	join := []byte{frameJoin, 0, 0, 2, 0, 0, 0, 14}
	join = append(join, []byte("127.0.0.1:9999")...)
	f.Add(append([]byte(nil), join...))
	f.Add([]byte{frameJoin, 0, 0, 2, 0, 0, 0, 3, 'b', 'a', 'd'})
	f.Add([]byte{frameJoin, 0, 0, 2, 0, 0, 0, 200, 'x'})
	f.Add([]byte{frameJoin, 0, 0})
	// Partition probes: a well-formed probe and ack (current incarnation
	// is 1), a stale incarnation, a zero incarnation, a bogus sender rank,
	// an unknown kind byte, and truncated stubs.
	f.Add([]byte{frameProbe, 0, 0, 1, 0, 0, 0, probeKindProbe})
	f.Add([]byte{frameProbe, 0, 0, 1, 0, 0, 0, probeKindAck})
	f.Add([]byte{frameProbe, 0, 0, 9, 9, 0, 0, probeKindProbe})
	f.Add([]byte{frameProbe, 0, 0, 0, 0, 0, 0, probeKindProbe})
	f.Add([]byte{frameProbe, 9, 0, 1, 0, 0, 0, probeKindAck})
	f.Add([]byte{frameProbe, 0, 0, 1, 0, 0, 0, 0xEE})
	f.Add([]byte{frameProbe, 0, 0})
	f.Add([]byte{frameProbe})
	f.Add(inner)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > bufClassLarge {
			data = data[:bufClassLarge]
		}
		before := d.Stats()
		wb := d.arena.get(bufClassLarge)
		wb.b = append(wb.b[:0], data...)
		d.receiveDatagram(ep1, wb)
		for i := 0; ep1.Poll() > 0 && i < 1<<10; i++ {
		}
		after := d.Stats()
		if after.DecodeErrors < before.DecodeErrors {
			t.Fatal("DecodeErrors went backwards")
		}
	})
}
