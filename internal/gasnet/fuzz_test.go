package gasnet

import "testing"

// FuzzDecodeMsg: arbitrary datagrams must either decode or error, never
// panic — the UDP conduit's reader trusts decodeMsg with kernel-delivered
// bytes.
func FuzzDecodeMsg(f *testing.F) {
	f.Add([]byte{})
	m := Msg{Handler: 3, From: 1, A0: 9, Payload: []byte("x")}
	f.Add(append([]byte(nil), encodeMsg(nil, &m)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeMsg(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the identical bytes
		// (encode∘decode is the identity on valid wire messages).
		back := encodeMsg(nil, &got)
		if string(back) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", back, data)
		}
	})
}

// FuzzDecodeDatagram: arbitrary whole datagrams — any framing tag,
// sequenced or not, truncated anywhere — must be parsed to completion or
// rejected with an error, never panic. This is the exact code path the UDP
// reader goroutine runs on kernel-delivered bytes.
func FuzzDecodeDatagram(f *testing.F) {
	m := Msg{Handler: HandlerUserBase, From: 0, A0: 42, Payload: []byte("fuzz")}

	single := append([]byte{frameSingle}, encodeMsg(nil, &m)...)
	f.Add(append([]byte(nil), single...))

	batch := []byte{frameBatch, 2, 0}
	for i := 0; i < 2; i++ {
		enc := encodeMsg(nil, &m)
		batch = append(batch, byte(len(enc)), byte(len(enc)>>8), byte(len(enc)>>16), byte(len(enc)>>24))
		batch = append(batch, enc...)
	}
	f.Add(append([]byte(nil), batch...))

	seq := make([]byte, relHeaderLen)
	seq[0] = frameSeq
	seq[3] = 1 // seq = 1
	f.Add(append(seq, single...))

	f.Add([]byte{})
	f.Add([]byte{0xEE, 1, 2, 3})          // unknown tag
	f.Add([]byte{frameBatch, 9, 0, 1})    // count overruns frame
	f.Add(append([]byte(nil), single[:5]...)) // truncated message

	f.Fuzz(func(t *testing.T, data []byte) {
		frame := data
		if len(frame) > 0 && frame[0] == frameSeq {
			if _, _, _, err := parseRelHeader(frame); err != nil {
				return
			}
			frame = frame[relHeaderLen:]
		}
		it := parseDatagram(frame)
		n := 0
		for {
			if _, ok := it.next(); !ok {
				break
			}
			if n++; n > 1<<16 {
				t.Fatal("iterator failed to terminate")
			}
		}
		_ = it.err // decode errors are reported, not panicked
	})
}
