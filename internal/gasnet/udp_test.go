package gasnet

import (
	"testing"
	"time"
)

func TestUDPConduitTopology(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 4, Conduit: UDP})
	defer d.Close()
	// All ranks co-located; locality dynamic.
	if !d.Endpoint(0).Local(3) {
		t.Error("UDP ranks must be co-located")
	}
	if d.Config().StaticLocal() {
		t.Error("UDP locality is dynamic")
	}
	if d.Config().Conduit.String() != "udp" {
		t.Error("name wrong")
	}
	if c, err := ParseConduit("udp"); err != nil || c != UDP {
		t.Error("ParseConduit(udp) failed")
	}
}

func TestUDPWireDelivery(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		got = append(got, m.A0)
		if string(m.Payload) != "over the wire" {
			t.Errorf("payload %q", m.Payload)
		}
	})
	for i := uint64(1); i <= 3; i++ {
		d.Endpoint(0).Send(1, Msg{
			Handler: HandlerUserBase,
			A0:      i,
			Payload: []byte("over the wire"),
		})
	}
	ep1 := d.Endpoint(1)
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 3 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d of 3", len(got))
	}
	// Loopback UDP from a single sender socket preserves order in
	// practice; assert all values arrived (set equality) rather than
	// order, since UDP makes no promise.
	seen := map[uint64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("values %v", got)
	}
}

func TestUDPClosureFallback(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	ran := false
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) { m.Fn(ep) })
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase, Fn: func(*Endpoint) { ran = true }})
	deadline := time.Now().Add(time.Second)
	for !ran && time.Now().Before(deadline) {
		d.Endpoint(1).Poll()
	}
	if !ran {
		t.Error("closure message lost on UDP conduit")
	}
}

func TestUDPSelfSend(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 1, Conduit: UDP})
	defer d.Close()
	got := false
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { got = true })
	d.Endpoint(0).Send(0, Msg{Handler: HandlerUserBase})
	deadline := time.Now().Add(time.Second)
	for !got && time.Now().Before(deadline) {
		d.Endpoint(0).Poll()
	}
	if !got {
		t.Error("self-send lost")
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	d.Close()
	d.Close() // must not panic or deadlock
}

func TestUDPOversizedPayloadPanics(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	defer func() {
		if recover() == nil {
			t.Error("oversized payload should panic")
		}
	}()
	d.Endpoint(0).Send(1, Msg{
		Handler: HandlerUserBase,
		Payload: make([]byte, maxUDPPayload+1),
	})
}
