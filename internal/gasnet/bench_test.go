package gasnet

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// seedQueue reimplements the pre-ring inbox (a mutex around a slice, with
// a clock read on every drain, as the seed's poll loop did) so
// BenchmarkAMInjection can compare the lock-free fast path against the
// design it replaced without checking out old commits.
type seedQueue struct {
	mu      sync.Mutex
	pending []Msg
	scratch []Msg
}

func (q *seedQueue) push(m Msg) {
	q.mu.Lock()
	q.pending = append(q.pending, m)
	q.mu.Unlock()
}

func (q *seedQueue) drain(now int64) []Msg {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return nil
	}
	n := 0
	for n < len(q.pending) && q.pending[n].readyAt <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	q.scratch = append(q.scratch[:0], q.pending[:n]...)
	rem := copy(q.pending, q.pending[n:])
	for i := rem; i < len(q.pending); i++ {
		q.pending[i] = Msg{}
	}
	q.pending = q.pending[:rem]
	return q.scratch
}

// BenchmarkAMInjection measures the inbox injection+delivery cycle — the
// cost a rank pays per active message — for the lock-free ring and the
// seed's mutexed slice, in the three shapes the runtime produces:
//
//   - poll: one push, one drain — the latency-critical GUPS issue/poll
//     loop, where the seed paid two lock round trips plus a clock read
//     per message and the ring pays neither. The acceptance comparison.
//   - batch64: 64 pushes per drain — a throughput-bound fan-in.
//   - mpsc8: 8 producer goroutines against the consumer.
//
// The seed variants read the clock per drain exactly as the seed's Poll
// did (drain(nanotime())); the ring variants go through drainNow, which
// skips the clock for queues that never saw a release time.
func BenchmarkAMInjection(b *testing.B) {
	b.Run("ring/poll", func(b *testing.B) {
		var q amQueue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(Msg{A0: uint64(i)})
			q.drainNow()
		}
	})
	b.Run("mutex/poll", func(b *testing.B) {
		var q seedQueue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(Msg{A0: uint64(i)})
			q.drain(nanotime())
		}
	})
	b.Run("ring/batch64", func(b *testing.B) {
		var q amQueue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(Msg{A0: uint64(i)})
			if i&63 == 63 {
				q.drainNow()
			}
		}
		q.drainNow()
	})
	b.Run("mutex/batch64", func(b *testing.B) {
		var q seedQueue
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.push(Msg{A0: uint64(i)})
			if i&63 == 63 {
				q.drain(nanotime())
			}
		}
		q.drain(nanotime())
	})
	b.Run("ring/mpsc8", func(b *testing.B) {
		var q amQueue
		benchMPSC(b, q.push, func() int { return len(q.drainNow()) })
	})
	b.Run("mutex/mpsc8", func(b *testing.B) {
		var q seedQueue
		benchMPSC(b, q.push, func() int { return len(q.drain(nanotime())) })
	})
}

// benchMPSC drives 8 producers against a single consumer until b.N
// messages are delivered. The consumer yields on an empty drain so the
// benchmark measures queue cost rather than scheduler starvation when
// GOMAXPROCS is small.
func benchMPSC(b *testing.B, push func(Msg), drain func() int) {
	const producers = 8
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		n := b.N / producers
		if p < b.N%producers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				push(Msg{A0: uint64(i)})
			}
		}(n)
	}
	delivered := 0
	for delivered < b.N {
		if n := drain(); n > 0 {
			delivered += n
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

// BenchmarkUDPCoalesce measures delivering an 8-message fan-in over the
// UDP conduit, one datagram per message versus one coalesced burst. ns/op
// covers all 8 messages (injection, kernel round trip, dispatch).
func BenchmarkUDPCoalesce(b *testing.B) {
	run := func(b *testing.B, burst bool) {
		d, err := NewDomain(Config{Ranks: 2, Conduit: UDP})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		received := 0
		d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
		ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
		payload := []byte("collective token payload")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if burst {
				ep0.BeginBurst()
			}
			for k := 0; k < 8; k++ {
				ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(k), Payload: payload})
			}
			if burst {
				ep0.EndBurst()
			}
			deadline := time.Now().Add(5 * time.Second)
			for received < (i+1)*8 {
				if ep1.Poll() == 0 {
					// Block on the endpoint's wake channel rather than
					// spinning: a spinning poller keeps the runqueue
					// non-empty, so the scheduler never runs the
					// netpoller and the reader goroutine starves for a
					// whole preemption quantum on small GOMAXPROCS.
					ep1.Park()
					if time.Now().After(deadline) {
						b.Fatalf("iteration %d: delivered %d", i, received)
					}
				}
			}
		}
		b.StopTimer()
		s := d.Stats()
		b.ReportMetric(float64(s.DatagramsSent)/float64(b.N), "datagrams/op")
		// Syscalls per burst, from the vectorized-datapath counters (zero
		// on the sequential fallback): the burst variant's 8→1 datagram
		// coalescing should show up again as syscall amortization.
		b.ReportMetric(float64(s.SendmmsgCalls)/float64(b.N), "sendmmsg/op")
		b.ReportMetric(float64(s.RecvmmsgCalls)/float64(b.N), "recvmmsg/op")
	}
	b.Run("single", func(b *testing.B) { run(b, false) })
	b.Run("burst8", func(b *testing.B) { run(b, true) })
}

// BenchmarkReliableOverhead measures what the reliability layer costs per
// message on a clean wire, and what it delivers on a dirty one:
//
//   - raw: sequencing/acks/retransmission disabled (UDPUnreliable) — the
//     pre-reliability datagram path, the baseline.
//   - reliable: the default sequenced path on a loss-free loopback. The
//     delta against raw is the protocol's steady-state overhead (an 11-byte
//     header, one per-pair mutex crossing per side, ack bookkeeping).
//   - reliable/drop10: the sequenced path with 10% injected drop — ns/op
//     now includes retransmission latency, the price of actual recovery.
func BenchmarkReliableOverhead(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		d, err := NewDomain(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		received := 0
		d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
		ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
		payload := []byte("collective token payload")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i), Payload: payload})
			deadline := time.Now().Add(5 * time.Second)
			for received <= i {
				if ep1.Poll() == 0 {
					ep1.Park()
					if time.Now().After(deadline) {
						b.Fatalf("iteration %d: delivered %d", i, received)
					}
				}
			}
		}
		b.StopTimer()
		s := d.Stats()
		b.ReportMetric(float64(s.Retransmits)/float64(b.N), "retransmits/op")
	}
	b.Run("raw", func(b *testing.B) {
		run(b, Config{Ranks: 2, Conduit: UDP, UDPUnreliable: true})
	})
	b.Run("reliable", func(b *testing.B) {
		run(b, Config{Ranks: 2, Conduit: UDP})
	})
	b.Run("reliable/drop10", func(b *testing.B) {
		run(b, Config{Ranks: 2, Conduit: UDP,
			Fault: &FaultConfig{Seed: 3, Drop: 0.10}})
	})
}
