package gasnet

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestSegmentAllocAlignment(t *testing.T) {
	s := NewSegment(1 << 12)
	var offs []uint32
	for _, n := range []int{1, 8, 3, 16, 24, 7} {
		off, err := s.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		if off%8 != 0 {
			t.Errorf("Alloc(%d) misaligned at %d", n, off)
		}
		offs = append(offs, off)
	}
	// Offsets strictly increasing (bump allocator).
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Errorf("offsets not increasing: %v", offs)
		}
	}
}

func TestSegmentExhaustion(t *testing.T) {
	s := NewSegment(64)
	if _, err := s.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(8); err == nil {
		t.Error("expected exhaustion error")
	}
	s.Reset()
	if _, err := s.Alloc(64); err != nil {
		t.Errorf("Reset did not reclaim: %v", err)
	}
}

func TestSegmentNegativeAlloc(t *testing.T) {
	s := NewSegment(64)
	if _, err := s.Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestSegmentZeroAllocTakesSpace(t *testing.T) {
	s := NewSegment(64)
	a, _ := s.Alloc(0)
	b, _ := s.Alloc(0)
	if a == b {
		t.Error("zero-size allocations must be distinct")
	}
}

func TestCopyInOutRoundTrip(t *testing.T) {
	f := func(data []byte, pad uint8) bool {
		s := NewSegment(len(data) + 64)
		off := uint32(pad%8) * 8
		s.CopyIn(off, data)
		out := make([]byte, len(data))
		s.CopyOut(off, out)
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyUnaligned(t *testing.T) {
	s := NewSegment(128)
	data := []byte{1, 2, 3, 4, 5}
	s.CopyIn(3, data)
	out := make([]byte, 5)
	s.CopyOut(3, out)
	if !bytes.Equal(data, out) {
		t.Errorf("unaligned roundtrip: %v", out)
	}
}

func TestWordAtAndBytesAgree(t *testing.T) {
	s := NewSegment(64)
	*s.WordAt(8) = 0x0123456789abcdef
	b := s.BytesAt(8, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i]) // little-endian readback
	}
	if v != 0x0123456789abcdef {
		t.Errorf("byte view disagrees: %#x", v)
	}
}

func TestWordAtMisalignedPanics(t *testing.T) {
	s := NewSegment(64)
	defer func() {
		if recover() == nil {
			t.Error("misaligned WordAt should panic")
		}
	}()
	s.WordAt(4)
}

func TestRangeCheckPanics(t *testing.T) {
	s := NewSegment(16)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	s.BytesAt(8, 16)
}

// TestCopyInWordAtomicity: concurrent aligned word writes through CopyIn
// never tear — readers see one of the written values.
func TestCopyInWordAtomicity(t *testing.T) {
	s := NewSegment(8)
	vals := [][]byte{
		{0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11},
		{0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22, 0x22},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.CopyIn(0, vals[w])
				}
			}
		}(w)
	}
	bad := false
	for i := 0; i < 10000; i++ {
		out := make([]byte, 8)
		s.CopyOut(0, out)
		if out[0] == 0 {
			continue // initial zero
		}
		for _, b := range out[1:] {
			if b != out[0] {
				bad = true
			}
		}
	}
	close(stop)
	wg.Wait()
	if bad {
		t.Error("torn word observed")
	}
}

func TestFreesCounter(t *testing.T) {
	s := NewSegment(64)
	off, _ := s.Alloc(8)
	s.Free(off)
	if s.Frees() != 1 {
		t.Errorf("Frees = %d", s.Frees())
	}
}

func TestViewAsAndValueBytes(t *testing.T) {
	s := NewSegment(64)
	off, _ := s.Alloc(8)
	p := ViewAs[uint64](s, off)
	*p = 0xdeadbeef
	var out uint64
	s.CopyOut(off, ValueBytes(&out))
	if out != 0xdeadbeef {
		t.Errorf("ViewAs write not visible: %#x", out)
	}
}

func TestViewSlice(t *testing.T) {
	s := NewSegment(64)
	off, _ := s.Alloc(32)
	sl := ViewSlice[uint32](s, off, 8)
	for i := range sl {
		sl[i] = uint32(i * i)
	}
	sl2 := ViewSlice[uint32](s, off, 8)
	for i := range sl2 {
		if sl2[i] != uint32(i*i) {
			t.Errorf("slice view mismatch at %d", i)
		}
	}
	if ViewSlice[uint32](s, off, 0) != nil {
		t.Error("zero-length view should be nil")
	}
}

func TestSliceBytesEmpty(t *testing.T) {
	if SliceBytes[uint64](nil) != nil {
		t.Error("nil slice should give nil bytes")
	}
	b := SliceBytes([]uint32{1, 2})
	if len(b) != 8 {
		t.Errorf("len = %d", len(b))
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf[uint64]() != 8 || SizeOf[uint32]() != 4 || SizeOf[[3]int64]() != 24 {
		t.Error("SizeOf wrong")
	}
}

func TestMisalignedViewPanics(t *testing.T) {
	s := NewSegment(64)
	defer func() {
		if recover() == nil {
			t.Error("misaligned ViewAs should panic")
		}
	}()
	ViewAs[uint64](s, 4)
}
