//go:build linux && (amd64 || arm64)

package gasnet

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Vectorized datagram I/O via raw sendmmsg/recvmmsg syscalls. The Go
// standard library exposes neither (x/net does, but this module carries
// zero dependencies), so the conduit drives them itself through the
// socket's syscall.RawConn: the fd stays registered with the runtime
// netpoller, EAGAIN parks the goroutine exactly as net's own I/O does,
// and the buffers involved are ordinary pooled wireBufs. A burst of N
// staged frames is one sendmmsg; a backlog of N queued datagrams is one
// recvmmsg — the syscall-per-datagram cost the paper's UDP runs pay
// disappears from the amortized path.
//
// Only the real mmsg path bumps the Domain's Sendmmsg*/Recvmmsg*
// counters, so tests (and operators) can assert which datapath is live.

// mmsgAvailable reports whether this build uses the vectorized path
// (subject to Config.UDPNoMmsg). Tests gate syscall-count assertions on
// it.
const mmsgAvailable = true

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// returned datagram length. On both supported 64-bit arches Go pads the
// struct to the kernel's 64-byte layout.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// mmsgConn is the vectorized batchConn: writes and reads move many
// datagrams per syscall. The embedded UDPConn still serves the
// single-frame path (WriteToUDPAddrPort). Write scratch is mutex-guarded
// — the rank goroutine, the retransmit sweep, and heartbeats share the
// send path — while read scratch is owned by the socket's single reader
// goroutine.
type mmsgConn struct {
	*net.UDPConn
	rc syscall.RawConn
	d  *Domain

	wmu   sync.Mutex
	whdrs []mmsghdr
	wiovs []syscall.Iovec
	wsas  []syscall.RawSockaddrInet4

	rhdrs []mmsghdr
	riovs []syscall.Iovec
}

// newBatchConn wraps conn in the vectorized adapter, or the sequential
// fallback when Config.UDPNoMmsg asks for it (or the raw fd is
// unavailable).
func newBatchConn(conn *net.UDPConn, d *Domain) batchConn {
	if d.cfg.UDPNoMmsg {
		return seqConn{conn}
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return seqConn{conn}
	}
	return &mmsgConn{UDPConn: conn, rc: rc, d: d}
}

// maxHW raises an atomic high-water mark to v if it is the new maximum.
func maxHW(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WriteBatch transmits every staged frame in as few sendmmsg calls as
// the kernel allows — one, in the common case. Frame buffers are only
// read during the call; the caller keeps ownership.
func (c *mmsgConn) WriteBatch(frames []batchFrame) error {
	n := len(frames)
	if n == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if cap(c.whdrs) < n {
		c.whdrs = make([]mmsghdr, n)
		c.wiovs = make([]syscall.Iovec, n)
		c.wsas = make([]syscall.RawSockaddrInet4, n)
	}
	hdrs, iovs, sas := c.whdrs[:n], c.wiovs[:n], c.wsas[:n]
	for i := range frames {
		fr := &frames[i]
		a := fr.addr.Addr().Unmap()
		if !a.Is4() {
			// The conduit binds IPv4 loopback sockets, so this is
			// unreachable in practice; write sequentially rather than
			// mis-encode a sockaddr.
			return seqConn{c.UDPConn}.WriteBatch(frames)
		}
		port := fr.addr.Port()
		sas[i] = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: a.As4()}
		sas[i].Port = port<<8 | port>>8 // network byte order
		iovs[i].Base = &fr.b[0]
		iovs[i].SetLen(len(fr.b))
		hdrs[i] = mmsghdr{}
		hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&sas[i]))
		hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(sas[i]))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	sent := 0
	var opErr error
	err := c.rc.Write(func(fd uintptr) bool {
		for sent < n {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(n-sent), 0, 0, 0)
			switch errno {
			case 0:
				c.d.sendmmsgCalls.Add(1)
				c.d.sendBatchFrames.Add(int64(r))
				maxHW(&c.d.sendBatchHW, int64(r))
				sent += int(r)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // socket buffer full: park until writable
			default:
				opErr = errno
				return true
			}
		}
		return true
	})
	runtime.KeepAlive(frames)
	if opErr != nil {
		return opErr
	}
	return err
}

// ReadBatch fills views with up to len(views) queued datagrams in one
// recvmmsg, blocking (parked on the netpoller) until at least one is
// available.
func (c *mmsgConn) ReadBatch(views [][]byte, sizes []int) (int, error) {
	n := len(views)
	if n == 0 {
		return 0, nil
	}
	if cap(c.rhdrs) < n {
		c.rhdrs = make([]mmsghdr, n)
		c.riovs = make([]syscall.Iovec, n)
	}
	hdrs, iovs := c.rhdrs[:n], c.riovs[:n]
	for i := range hdrs {
		iovs[i].Base = &views[i][0]
		iovs[i].SetLen(len(views[i]))
		hdrs[i] = mmsghdr{}
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	got := 0
	var opErr error
	err := c.rc.Read(func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				got = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // nothing queued: park until readable
			default:
				opErr = errno
				return true
			}
		}
	})
	runtime.KeepAlive(views)
	if opErr != nil {
		return 0, opErr
	}
	if err != nil {
		return 0, err
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(hdrs[i].n)
	}
	c.d.recvmmsgCalls.Add(1)
	c.d.recvBatchFrames.Add(int64(got))
	maxHW(&c.d.recvBatchHW, int64(got))
	return got, nil
}
