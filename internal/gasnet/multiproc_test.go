package gasnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// newMultiprocWorld builds an n-rank multiproc world inside this one test
// process: n Domains, each believing it is one rank of a process-per-rank
// world, wired through n real loopback UDP sockets bound here (standing in
// for the bootstrap exchange). Everything below the socket is then exactly
// what separate processes would run — the in-memory handoff is structurally
// unreachable because each Domain holds only its own segment.
func newMultiprocWorld(t testing.TB, n int) []*Domain {
	t.Helper()
	conns := make([]*net.UDPConn, n)
	peers := make([]netip.AddrPort, n)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("bind rank %d: %v", i, err)
		}
		conns[i] = c
		peers[i] = c.LocalAddr().(*net.UDPAddr).AddrPort()
	}
	doms := make([]*Domain, n)
	for i := range doms {
		d, err := NewDomain(Config{
			Ranks:        n,
			Conduit:      UDP,
			Multiproc:    true,
			Self:         i,
			Epoch:        7,
			Peers:        peers,
			SelfConn:     conns[i],
			SegmentBytes: 1 << 16,
		})
		if err != nil {
			t.Fatalf("domain rank %d: %v", i, err)
		}
		doms[i] = d
		t.Cleanup(d.Close)
	}
	return doms
}

// spinWorld polls every domain's self endpoint until cond holds.
func spinWorld(t testing.TB, doms []*Domain, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("multiproc spin timed out")
		}
		for _, d := range doms {
			d.Endpoint(d.Config().Self).Poll()
		}
	}
}

func TestMultiprocTopology(t *testing.T) {
	doms := newMultiprocWorld(t, 3)
	d0 := doms[0]
	ep0 := d0.Endpoint(0)
	if !ep0.Local(0) {
		t.Error("self must be local")
	}
	if ep0.Local(1) || ep0.Local(2) {
		t.Error("multiproc peers must be remote: there is no shared address space")
	}
	if d0.Segment(0) == nil {
		t.Error("self segment missing")
	}
	if d0.Segment(1) != nil || d0.Segment(2) != nil {
		t.Error("peer segments must not exist in this process")
	}
	if d0.Config().StaticLocal() {
		t.Error("multiproc locality must be dynamic")
	}
}

func TestMultiprocConfigValidation(t *testing.T) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	self := c.LocalAddr().(*net.UDPAddr).AddrPort()
	peers := []netip.AddrPort{self, self}
	bad := []Config{
		{Ranks: 2, Conduit: SMP, Multiproc: true, Self: 0, Peers: peers, SelfConn: c},
		{Ranks: 2, Conduit: UDP, Multiproc: true, Self: 2, Peers: peers, SelfConn: c},
		{Ranks: 2, Conduit: UDP, Multiproc: true, Self: 0, Peers: peers[:1], SelfConn: c},
		{Ranks: 2, Conduit: UDP, Multiproc: true, Self: 0, Peers: peers, SelfConn: nil},
	}
	for i, cfg := range bad {
		if _, err := NewDomain(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestMultiprocPutGetAmo(t *testing.T) {
	doms := newMultiprocWorld(t, 2)
	ep0 := doms[0].Endpoint(0)
	seg1 := doms[1].Segment(1)

	// Put crosses the wire into the other domain's segment.
	data := []byte("across process boundaries")
	var putDone bool
	ep0.PutRemote(1, 64, data, nil, func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		putDone = true
	})
	spinWorld(t, doms, func() bool { return putDone })
	got := make([]byte, len(data))
	seg1.CopyOut(64, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("segment holds %q, want %q", got, data)
	}

	// Get reads it back over the wire.
	back := make([]byte, len(data))
	var getDone bool
	ep0.GetRemote(1, 64, len(data), back, func(err error) {
		if err != nil {
			t.Errorf("get: %v", err)
		}
		getDone = true
	})
	spinWorld(t, doms, func() bool { return getDone })
	if !bytes.Equal(back, data) {
		t.Fatalf("get returned %q, want %q", back, data)
	}

	// Atomic fetch-add executes in the target process.
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], 40)
	seg1.CopyIn(128, word[:])
	var old uint64
	var amoDone bool
	ep0.AmoRemote(1, 128, AmoAdd, 2, 0, func(o uint64, err error) {
		if err != nil {
			t.Errorf("amo: %v", err)
		}
		old = o
		amoDone = true
	})
	spinWorld(t, doms, func() bool { return amoDone })
	if old != 40 {
		t.Errorf("fetch-add old = %d, want 40", old)
	}
	seg1.CopyOut(128, word[:])
	if v := binary.LittleEndian.Uint64(word[:]); v != 42 {
		t.Errorf("word after fetch-add = %d, want 42", v)
	}
	if doms[0].Stats().InMemFallbacks != 0 || doms[1].Stats().InMemFallbacks != 0 {
		t.Error("multiproc world took an in-memory shortcut")
	}
}

func TestMultiprocPutNotify(t *testing.T) {
	doms := newMultiprocWorld(t, 2)
	ep0 := doms[0].Endpoint(0)
	var gotID uint32
	var gotArgs []byte
	doms[1].SetNotifyHook(func(_ *Endpoint, id uint32, args []byte) {
		gotID = id
		gotArgs = append([]byte(nil), args...)
	})
	var done bool
	ep0.PutNotifyRemote(1, 0, []byte{1, 2, 3}, 9, []byte("hi"), func(err error) {
		if err != nil {
			t.Errorf("put-notify: %v", err)
		}
		done = true
	})
	spinWorld(t, doms, func() bool { return done && gotID != 0 })
	if gotID != 9 || string(gotArgs) != "hi" {
		t.Errorf("notify delivered id=%d args=%q, want 9/hi", gotID, gotArgs)
	}
}

func TestMultiprocBadAddressRefused(t *testing.T) {
	doms := newMultiprocWorld(t, 2)
	ep0 := doms[0].Endpoint(0)
	segBytes := uint32(doms[1].Config().SegmentBytes)
	var gotErr error
	var done bool
	ep0.PutRemote(1, segBytes-1, []byte("spills past the end"), nil, func(err error) {
		gotErr = err
		done = true
	})
	spinWorld(t, doms, func() bool { return done })
	if !errors.Is(gotErr, ErrBadAddress) {
		t.Fatalf("out-of-segment put resolved with %v, want ErrBadAddress", gotErr)
	}
	if doms[1].Stats().BadAddrDrops == 0 {
		t.Error("target did not count the refused request")
	}
}

func TestMultiprocClosureSendPanics(t *testing.T) {
	doms := newMultiprocWorld(t, 2)
	ep0 := doms[0].Endpoint(0)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("closure to a remote rank in a multiproc world must panic")
		}
		if !strings.Contains(p.(string), "closure message") {
			t.Errorf("panic %v", p)
		}
	}()
	ep0.Send(1, Msg{Handler: HandlerUserBase, Fn: func(*Endpoint) {}})
}

func TestMultiprocGracefulClose(t *testing.T) {
	doms := newMultiprocWorld(t, 2)
	// Close rank 1 first: its goodbye frame should reach rank 0, whose
	// liveness detector then treats the silence as expected (no spurious
	// down declaration while rank 0 drains).
	doms[1].Close()
	doms[0].Close()
}
