package gasnet

import (
	"sync"
	"sync/atomic"
)

// mpscRing is a bounded lock-free multi-producer single-consumer ring of
// active messages — the fast path of an endpoint's inbox. The design is the
// classic bounded MPMC queue of Dmitry Vyukov, restricted to one consumer:
// every cell carries a sequence number that encodes, relative to the
// producers' reservation counter (tail) and the consumer's position (head),
// whether the cell is free, published, or still being written. Producers
// reserve a cell with one CAS on tail and publish with one release-store of
// the cell's sequence; the consumer needs no atomics beyond loads and its
// own head store. Neither side ever blocks, allocates, or touches a mutex.
//
// The ring is intentionally small relative to the messages a run can have
// in flight: when it is full, push fails and the caller (amQueue) spills to
// a mutex-guarded backlog, so the lock-free structure bounds memory without
// ever changing delivery semantics.

// ringBits fixes the ring capacity at 1<<ringBits cells. 512 messages is
// far beyond any in-flight window the internal protocol produces (the op
// table throttles initiators), so spills only happen when a consumer stalls
// under a genuine many-producer burst.
const (
	ringBits = 9
	ringCap  = 1 << ringBits
	ringMask = ringCap - 1
)

// ringCell is one slot: its sequence number and the message payload.
type ringCell struct {
	seq atomic.Uint64
	msg Msg
}

// mpscRing's zero value is not ready for use: cell sequence numbers must be
// initialised to their index. amQueue lazily runs init (via sync.Once) so
// that the enclosing queue keeps a usable zero value.
type mpscRing struct {
	tail atomic.Uint64 // next cell producers will reserve
	_    [56]byte      // keep producers' tail off the consumer's line
	head uint64        // next cell the consumer will inspect; consumer-owned,
	//                    never read by producers (cell seq carries the
	//                    cross-thread ordering), so it needs no atomics
	_     [56]byte
	cells [ringCap]ringCell
}

// init seeds the cell sequence numbers. Must run before first use.
func (r *mpscRing) init() {
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
}

// push publishes m, reporting false when the ring is full (or transiently
// contended to the point of looking full, which the caller treats the same
// way: spill). It never blocks.
func (r *mpscRing) push(m Msg) bool {
	pos := r.tail.Load()
	for {
		cell := &r.cells[pos&ringMask]
		seq := cell.seq.Load()
		switch dif := int64(seq) - int64(pos); {
		case dif == 0:
			// Cell free at our position: try to reserve it.
			if r.tail.CompareAndSwap(pos, pos+1) {
				cell.msg = m
				cell.seq.Store(pos + 1) // publish
				return true
			}
			pos = r.tail.Load()
		case dif < 0:
			// Cell still holds the entry from one lap ago: full.
			return false
		default:
			// Another producer advanced tail past us; chase it.
			pos = r.tail.Load()
		}
	}
}

// pop consumes the message at the head, honouring its release time:
// a published head entry with readyAt > now is left in place and reported
// as blocked, so the FIFO prefix contract of drain holds. The second
// result is true when a message was consumed; the third is true when the
// head holds a published-but-not-yet-deliverable message (the caller must
// not fall through to the backlog's timestamps in that case — but see
// amQueue.drain for why doing so would still be FIFO-safe per producer).
func (r *mpscRing) pop(now int64) (Msg, bool, bool) {
	head := r.head
	cell := &r.cells[head&ringMask]
	seq := cell.seq.Load()
	if seq != head+1 {
		// Empty, or a producer reserved the cell but has not yet
		// published it; either way nothing is consumable at the head.
		return Msg{}, false, false
	}
	if cell.msg.readyAt > now {
		return Msg{}, false, true
	}
	m := cell.msg
	cell.clear()
	cell.seq.Store(head + ringCap)
	r.head = head + 1
	return m, true, false
}

// drainInto appends every deliverable message at the head of the ring to
// dst (at most one full lap) and reports whether it stopped at a
// published-but-not-yet-deliverable entry. It batches the consumer-side
// bookkeeping — one head writeback for the whole sweep — which is what
// makes the per-message delivery cost competitive with a bulk copy out of
// a mutexed slice.
func (r *mpscRing) drainInto(dst []Msg, now int64) ([]Msg, bool) {
	head := r.head
	for n := 0; n < ringCap; n++ {
		cell := &r.cells[head&ringMask]
		if cell.seq.Load() != head+1 {
			break
		}
		if cell.msg.readyAt > now {
			r.head = head
			return dst, true
		}
		dst = append(dst, cell.msg)
		cell.clear()
		cell.seq.Store(head + ringCap)
		head++
	}
	r.head = head
	return dst, false
}

// clear drops the slot's references so the ring never pins payload
// buffers or closures for a full lap. Only the pointer-carrying fields
// need zeroing; the scalars are overwritten by the next push.
func (c *ringCell) clear() {
	c.msg.Payload = nil
	c.msg.Fn = nil
	c.msg.buf = nil
}

// empty reports whether no entries are reserved or published. Consumer
// goroutine only (it reads the plain head), which matches its callers:
// Park and InboxEmpty run on the endpoint's owner.
func (r *mpscRing) empty() bool {
	return r.tail.Load() == r.head
}

// onceRing couples the ring with its lazy initialiser so amQueue's zero
// value stays usable, matching the old mutex queue.
type onceRing struct {
	once sync.Once
	ring mpscRing
}

func (o *onceRing) get() *mpscRing {
	o.once.Do(o.ring.init)
	return &o.ring
}
