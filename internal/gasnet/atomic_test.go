package gasnet

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func amoSeg(t *testing.T) *Segment {
	t.Helper()
	return NewSegment(64)
}

func TestApplyAmoBasics(t *testing.T) {
	s := amoSeg(t)
	const off = 8

	if old := ApplyAmo(s, off, AmoStore, 5, 0); old != 0 {
		t.Errorf("store old = %d", old)
	}
	if v := ApplyAmo(s, off, AmoLoad, 0, 0); v != 5 {
		t.Errorf("load = %d", v)
	}
	if old := ApplyAmo(s, off, AmoAdd, 3, 0); old != 5 {
		t.Errorf("add old = %d", old)
	}
	if old := ApplyAmo(s, off, AmoXor, 0xFF, 0); old != 8 {
		t.Errorf("xor old = %d", old)
	}
	if v := ApplyAmo(s, off, AmoLoad, 0, 0); v != 8^0xFF {
		t.Errorf("after xor = %d", v)
	}
	ApplyAmo(s, off, AmoStore, 0b1100, 0)
	if old := ApplyAmo(s, off, AmoAnd, 0b1010, 0); old != 0b1100 {
		t.Errorf("and old = %b", old)
	}
	if v := ApplyAmo(s, off, AmoLoad, 0, 0); v != 0b1000 {
		t.Errorf("after and = %b", v)
	}
	if old := ApplyAmo(s, off, AmoOr, 0b0011, 0); old != 0b1000 {
		t.Errorf("or old = %b", old)
	}
	if old := ApplyAmo(s, off, AmoSwap, 77, 0); old != 0b1011 {
		t.Errorf("swap old = %b", old)
	}
	if v := ApplyAmo(s, off, AmoLoad, 0, 0); v != 77 {
		t.Errorf("after swap = %d", v)
	}
}

func TestApplyAmoCAS(t *testing.T) {
	s := amoSeg(t)
	ApplyAmo(s, 0, AmoStore, 10, 0)
	// Failed CAS: returns current value, no change.
	if old := ApplyAmo(s, 0, AmoCAS, 11, 99); old != 10 {
		t.Errorf("failed CAS old = %d", old)
	}
	if v := ApplyAmo(s, 0, AmoLoad, 0, 0); v != 10 {
		t.Errorf("failed CAS mutated to %d", v)
	}
	// Successful CAS.
	if old := ApplyAmo(s, 0, AmoCAS, 10, 99); old != 10 {
		t.Errorf("CAS old = %d", old)
	}
	if v := ApplyAmo(s, 0, AmoLoad, 0, 0); v != 99 {
		t.Errorf("CAS did not store: %d", v)
	}
}

func TestApplyAmoInvalidPanics(t *testing.T) {
	s := amoSeg(t)
	defer func() {
		if recover() == nil {
			t.Error("invalid op should panic")
		}
	}()
	ApplyAmo(s, 0, AmoOp(200), 0, 0)
}

func TestAmoOpStrings(t *testing.T) {
	names := map[AmoOp]string{
		AmoLoad: "load", AmoStore: "store", AmoAdd: "add", AmoXor: "xor",
		AmoAnd: "and", AmoOr: "or", AmoSwap: "swap", AmoCAS: "cas",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
		if !op.Valid() {
			t.Errorf("%v not valid", op)
		}
	}
	if AmoOp(99).Valid() {
		t.Error("99 valid")
	}
}

// TestAmoConcurrentAdds: adds from many goroutines sum exactly (atomicity
// under contention).
func TestAmoConcurrentAdds(t *testing.T) {
	s := amoSeg(t)
	const goroutines = 8
	const per = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ApplyAmo(s, 16, AmoAdd, 1, 0)
			}
		}()
	}
	wg.Wait()
	if v := ApplyAmo(s, 16, AmoLoad, 0, 0); v != goroutines*per {
		t.Errorf("sum = %d, want %d", v, goroutines*per)
	}
}

// TestAmoXorInvolution: xor-ing a random stream twice restores the word —
// the property GUPS verification depends on.
func TestAmoXorInvolution(t *testing.T) {
	f := func(init uint64, stream []uint64) bool {
		s := NewSegment(8)
		ApplyAmo(s, 0, AmoStore, init, 0)
		for _, v := range stream {
			ApplyAmo(s, 0, AmoXor, v, 0)
		}
		for _, v := range stream {
			ApplyAmo(s, 0, AmoXor, v, 0)
		}
		return ApplyAmo(s, 0, AmoLoad, 0, 0) == init
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAmoConcurrentCASIncrement: a CAS loop increment from many
// goroutines loses nothing.
func TestAmoConcurrentCASIncrement(t *testing.T) {
	s := amoSeg(t)
	const goroutines = 4
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					old := ApplyAmo(s, 24, AmoLoad, 0, 0)
					if ApplyAmo(s, 24, AmoCAS, old, old+1) == old {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v := ApplyAmo(s, 24, AmoLoad, 0, 0); v != goroutines*per {
		t.Errorf("count = %d, want %d", v, goroutines*per)
	}
}

func TestApplyAmoFloat(t *testing.T) {
	s := amoSeg(t)
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	val := func() float64 { return math.Float64frombits(ApplyAmo(s, 0, AmoLoad, 0, 0)) }

	ApplyAmo(s, 0, AmoStore, bits(2.5), 0)
	if old := ApplyAmo(s, 0, AmoFAdd, bits(0.5), 0); math.Float64frombits(old) != 2.5 {
		t.Errorf("fadd old = %v", math.Float64frombits(old))
	}
	if v := val(); v != 3.0 {
		t.Errorf("after fadd = %v", v)
	}
	ApplyAmo(s, 0, AmoFMin, bits(1.25), 0)
	if v := val(); v != 1.25 {
		t.Errorf("after fmin = %v", v)
	}
	ApplyAmo(s, 0, AmoFMax, bits(9.75), 0)
	if v := val(); v != 9.75 {
		t.Errorf("after fmax = %v", v)
	}
	for _, op := range []AmoOp{AmoFAdd, AmoFMin, AmoFMax} {
		if !op.Valid() || op.String() == "" {
			t.Errorf("op %d metadata wrong", op)
		}
	}
}
