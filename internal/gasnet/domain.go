package gasnet

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gupcxx/internal/obs"
)

// Domain is one gasnet job: the set of segments, endpoints, and the handler
// table shared by all ranks. A Domain is created once and its endpoints are
// then driven concurrently, one goroutine per rank.
type Domain struct {
	cfg      Config
	segs     []*Segment
	eps      []*Endpoint
	handlers [MaxHandlers]HandlerFunc

	// inc is this process's incarnation: the epoch it registered under
	// (normalized so 0 — in-process worlds, which cannot restart — becomes
	// 1). Every frame this domain puts on the wire is stamped with it, and
	// peers reject frames from any other incarnation of this rank
	// (liveness.go). Immutable after construction.
	inc uint32

	// amSends counts cross-endpoint active messages, for tests and
	// instrumentation.
	amSends atomic.Int64

	// arena is the domain's wire-buffer pool (pool.go): encode staging,
	// received datagrams, and RMA payload staging all draw from it.
	arena bufArena

	// Fast-path instrumentation (see Stats).
	datagramsSent    atomic.Int64
	coalescedBatches atomic.Int64
	coalescedMsgs    atomic.Int64

	// Batched-syscall instrumentation (see Stats, mmsg_linux.go). Counted
	// only by the real mmsg path, so the fallback's zeros make the active
	// datapath observable.
	sendmmsgCalls   atomic.Int64
	recvmmsgCalls   atomic.Int64
	sendBatchFrames atomic.Int64
	recvBatchFrames atomic.Int64
	sendBatchHW     atomic.Int64
	recvBatchHW     atomic.Int64

	// Reliability-layer instrumentation (see Stats and reliable.go).
	retransmits      atomic.Int64
	dupsDropped      atomic.Int64
	acksPiggybacked  atomic.Int64
	acksStandalone   atomic.Int64
	outOfWindowDrops atomic.Int64
	faultsInjected   atomic.Int64
	decodeErrors     atomic.Int64

	// Liveness / failure-path instrumentation (see Stats, liveness.go).
	heartbeatsSent      atomic.Int64
	peersSuspected      atomic.Int64
	peersDown           atomic.Int64
	retransmitExhausted atomic.Int64
	downPeerFails       atomic.Int64
	badCookieDrops      atomic.Int64
	badHandlerDrops     atomic.Int64
	handlerPanics       atomic.Int64

	// Churn / readmission instrumentation (see Stats, liveness.go).
	staleIncarnationDrops atomic.Int64
	peersReadmitted       atomic.Int64
	joinsSent             atomic.Int64

	// Partition / healing instrumentation (see Stats, liveness.go,
	// fault.go).
	peersHealed    atomic.Int64
	probesSent     atomic.Int64
	partitionDrops atomic.Int64

	// Flow-control instrumentation (see Stats, reliable.go,
	// backpressure.go).
	backpressureFails atomic.Int64
	windowShrinks     atomic.Int64
	windowGrows       atomic.Int64
	rtoExpirations    atomic.Int64
	shedBytes         atomic.Int64
	shedFrames        atomic.Int64

	// Wire-boundary instrumentation (see Stats): in-memory deliveries that
	// a UDP world silently short-circuited, wire requests refused for an
	// out-of-segment address, datagram send syscalls that failed in a
	// multiproc world (treated as loss), and gptr decodes rejected by the
	// runtime layer's bounds validation (NoteGptrReject).
	inMemFallbacks atomic.Int64
	badAddrDrops   atomic.Int64
	sendErrors     atomic.Int64
	gptrRejects    atomic.Int64

	// notifyHook is the runtime layer's put-with-notify dispatcher
	// (SetNotifyHook): invoked on the receiving rank's goroutine during
	// user-level progress with the registered-handler id and argument
	// bytes a notify-put carried.
	notifyHook func(ep *Endpoint, id uint32, args []byte)

	// udp is the socket transport, present only on the UDP conduit; rel is
	// its reliability layer, absent under Config.UDPUnreliable; lv is the
	// peer-failure detector riding rel's ticker, absent under
	// Config.DisableLiveness.
	udp *udpTransport
	rel *reliability
	lv  *liveness

	// scen is the armed network scenario (scenario.go), stepped by the
	// reliability ticker via faultTick; nil when no scenario is armed.
	scen atomic.Pointer[scenario]

	// bus is the operations plane's event bus (Config.Events); nil when
	// the job runs unobserved. Emission points go through emit, which is
	// nil-safe and non-blocking.
	bus *obs.Bus
}

// emit publishes one substrate health event. Safe to call from any
// goroutine (ticker, socket readers, rank goroutines) and from under a
// relPair mutex: the bus is lock-free and never blocks. Timestamps come
// from the cached clock — event consumers want ordering and rough
// placement, not syscall-fresh precision.
func (d *Domain) emit(k obs.EventKind, rank, peer int, a, b int64) {
	if d.bus == nil {
		return
	}
	d.bus.Publish(obs.Event{
		Kind: k,
		Time: clockNow(),
		Rank: int32(rank),
		Peer: int32(peer),
		A:    a,
		B:    b,
	})
}

// LivenessState reports rank local's current view of peer as a metric
// label: "alive", "suspect", or "down". Conduits without a failure
// detector report every peer alive; a rank's view of itself is "self".
// Race-safe (atomic reads) and callable from any goroutine.
func (d *Domain) LivenessState(local, peer int) string {
	if local == peer {
		return "self"
	}
	if d.lv == nil || local < 0 || local >= d.cfg.Ranks || peer < 0 || peer >= d.cfg.Ranks {
		return "alive"
	}
	switch d.lv.stateOf(local, peer) {
	case peerSuspect:
		return "suspect"
	case peerDown:
		return "down"
	default:
		return "alive"
	}
}

// Incarnation returns this process's epoch-stamped identity: the epoch it
// registered under (1 for in-process worlds, which cannot restart).
func (d *Domain) Incarnation() uint32 { return d.inc }

// IncarnationOf reports rank local's current record of peer's
// incarnation: the stamp it accepts on peer's frames. 0 means local has
// never heard from peer (possible only on a rejoined rank, whose record
// starts empty and adopts from traffic). A rank's view of itself — and
// every view on conduits without a failure detector — is the domain's own
// incarnation. Race-safe; callable from any goroutine.
func (d *Domain) IncarnationOf(local, peer int) uint32 {
	if d.lv == nil || local == peer ||
		local < 0 || local >= d.cfg.Ranks || peer < 0 || peer >= d.cfg.Ranks {
		return d.inc
	}
	return d.lv.incOf(local, peer)
}

// Stats is a snapshot of the substrate's fast-path counters, the wire/queue
// analogue of core.Stats: tests assert the cost model (lock-free pushes,
// zero-allocation buffer recycling, datagram coalescing) against it.
type Stats struct {
	// RingPushes counts inbox messages that took the lock-free MPSC ring
	// (tallied at delivery, so the producer path stays contention-free).
	RingPushes int64
	// BacklogSpills counts inbox messages that overflowed into the
	// mutex-guarded backlog.
	BacklogSpills int64
	// PoolHits / PoolMisses count wire-buffer arena requests served from
	// the pool vs. freshly allocated.
	PoolHits   int64
	PoolMisses int64
	// DatagramsSent counts logical UDP datagrams written (after
	// coalescing, excluding retransmissions and standalone acks, which
	// have their own counters below) — the protocol's decision count, so
	// coalescing economics stay assertable under injected loss.
	DatagramsSent int64
	// CoalescedBatches counts datagrams that carried more than one packed
	// message; CoalescedMsgs counts the messages inside them.
	CoalescedBatches int64
	CoalescedMsgs    int64
	// SendmmsgCalls / RecvmmsgCalls count vectorized I/O syscalls issued
	// by the batched datapath (mmsg_linux.go); SendBatchFrames /
	// RecvBatchFrames count the datagrams they moved, so frames-per-call
	// is derivable; the HighWater fields record the largest single call
	// each way. All six stay zero on the sequential fallback path
	// (non-Linux, Config.UDPNoMmsg), making the active datapath — and the
	// syscall amortization itself — assertable: a coalesced burst of N
	// frames to distinct destinations is N datagrams but one
	// SendmmsgCall.
	SendmmsgCalls      int64
	RecvmmsgCalls      int64
	SendBatchFrames    int64
	RecvBatchFrames    int64
	SendBatchHighWater int64
	RecvBatchHighWater int64
	// Retransmits counts datagrams re-sent by the reliability layer after
	// an ack deadline expired.
	Retransmits int64
	// DupsDropped counts received datagrams suppressed as duplicates
	// (already delivered, or already parked in the reorder buffer).
	DupsDropped int64
	// AcksPiggybacked counts pending acknowledgments that rode on an
	// outgoing payload datagram; AcksStandalone counts dedicated ack
	// datagrams (idle-timeout, ack-every, or duplicate-triggered).
	AcksPiggybacked int64
	AcksStandalone  int64
	// OutOfWindowDrops counts received datagrams discarded because their
	// sequence lies beyond the receive window.
	OutOfWindowDrops int64
	// FaultsInjected counts datagrams dropped, duplicated, or reordered by
	// the fault-injection shim (Config.Fault).
	FaultsInjected int64
	// DecodeErrors counts received datagrams (or packed batch entries)
	// dropped as truncated or corrupt.
	DecodeErrors int64
	// RemoteOpsStarted / RemoteOpsAcked count remote operations
	// registered in the endpoints' completion tables and the
	// acknowledgments that retired them — the substrate half of the
	// runtime's op-lifecycle instrumentation. Started minus acked minus
	// failed is the number of operations still in flight.
	RemoteOpsStarted int64
	RemoteOpsAcked   int64
	// RemoteOpsFailed counts completion-table entries retired with an
	// error instead of an acknowledgment (peer declared down).
	RemoteOpsFailed int64
	// HeartbeatsSent counts liveness heartbeat frames shipped by the
	// detector's ticker (liveness.go).
	HeartbeatsSent int64
	// PeersSuspected / PeersDown count pairwise liveness transitions: a
	// peer falling silent past SuspectAfter, and a peer declared dead
	// (silence past DownAfter or retransmission-budget exhaustion).
	PeersSuspected int64
	PeersDown      int64
	// RetransmitExhausted counts send streams whose retransmission budget
	// (Config.RelMaxAttempts) ran out, each declaring its peer down.
	RetransmitExhausted int64
	// DownPeerFails counts operations failed with ErrPeerUnreachable —
	// completion-table sweeps plus injections refused because the target
	// was already down.
	DownPeerFails int64
	// BadCookieDrops counts acknowledgments discarded because their
	// cookie matched no outstanding operation (stale replies from a
	// declared-dead peer, or corrupt frames); BadHandlerDrops counts
	// messages discarded for an unregistered handler id. Both were fatal
	// before the failure path existed; inbound datagrams are not trusted
	// to crash the job.
	BadCookieDrops  int64
	BadHandlerDrops int64
	// HandlerPanics counts RPC handler panics contained by the runtime
	// layer and serialized into error replies (NoteHandlerPanic).
	HandlerPanics int64
	// StaleIncarnationDrops counts frames rejected because their
	// incarnation stamp did not match the sender's recorded incarnation —
	// the dead process's datagrams draining out of the network, or a
	// restarted peer's traffic arriving ahead of its join announcement.
	// Never delivered, never refreshing liveness.
	StaleIncarnationDrops int64
	// PeersReadmitted counts Down→Readmitted transitions: a restarted
	// peer's join accepted, with the pair's reliability state fully reset.
	PeersReadmitted int64
	// JoinsSent counts incarnation announcements shipped by a restarted
	// rank while rejoining (retried each heartbeat round until peers ack
	// new-incarnation traffic).
	JoinsSent int64
	// PeersHealed counts Down→Healed transitions: a silence-declared
	// (partitioned) peer authenticated by a probe under the SAME
	// incarnation, with the pair's parked reliability state re-armed —
	// recovery without readmission.
	PeersHealed int64
	// ProbesSent counts partition probe and probe-ack frames shipped at
	// silence-declared-Down peers (paced per pair, backing off to
	// probeGapMax heartbeat rounds).
	ProbesSent int64
	// PartitionDrops counts datagrams cut by an armed partition
	// (SetPartition / scenario DSL) — send-side, like FaultsInjected, but
	// counted separately so a test can tell injected loss from a severed
	// link.
	PartitionDrops int64
	// RelInflightHighWater / RelReorderHighWater are the maxima, over all
	// rank pairs, of the reliability layer's in-flight retransmission
	// queue and receive-side reorder buffer — both bounded by
	// Config.RelWindow; the high-water marks make capacity pressure
	// observable.
	RelInflightHighWater int64
	RelReorderHighWater  int64
	// BackpressureFails counts operations refused admission because the
	// target's send window stayed full (ErrBackpressure) — immediately
	// under the fail-fast policy, after the bounded wait under the
	// blocking one.
	BackpressureFails int64
	// WindowShrinks / WindowGrows count AIMD congestion-window moves:
	// multiplicative decreases on RTO expiry (at most one per window of
	// loss) and additive increases on cleanly-sampled acks.
	WindowShrinks int64
	WindowGrows   int64
	// RTOExpirations counts ticker sweeps in which a pair had at least one
	// retransmission deadline expire — the estimator-level loss events, as
	// opposed to Retransmits, which counts datagrams re-sent.
	RTOExpirations int64
	// ShedBytes / ShedFrames count out-of-order frames dropped by the
	// receive-side byte budget (Config.RelReorderBytes); the sender
	// repairs them by retransmission.
	ShedBytes  int64
	ShedFrames int64
	// InMemFallbacks counts messages a UDP-conduit world delivered through
	// the in-memory handoff because they carried a closure the wire cannot
	// encode. Non-zero means a "UDP" run was not fully exercising the wire
	// — exactly the silent short-circuit a multiproc world forbids.
	InMemFallbacks int64
	// BadAddrDrops counts inbound wire requests (put/get/atomic/notify)
	// refused because their target offset or length fell outside this
	// rank's segment, or their atomic op code was invalid. The requester
	// receives an addressing-error reply (ErrBadAddress), never a panic:
	// wire input is untrusted.
	BadAddrDrops int64
	// SendErrors counts datagram writes that failed at the socket in a
	// multiproc world and were treated as wire loss (the reliability layer
	// repairs or, persisting, declares the peer down). In-process worlds
	// still panic on send errors — there a failed loopback write is a
	// program bug, not weather.
	SendErrors int64
	// GptrRejects counts wire-encoded global pointers the runtime layer
	// refused to decode (bad rank, foreign segment id, out-of-segment
	// offset) — counted drops, never panics.
	GptrRejects int64
}

// Stats returns a snapshot of the substrate fast-path counters, aggregated
// over all endpoints.
func (d *Domain) Stats() Stats {
	s := Stats{
		PoolHits:           d.arena.hits.Load(),
		PoolMisses:         d.arena.misses.Load(),
		DatagramsSent:      d.datagramsSent.Load(),
		CoalescedBatches:   d.coalescedBatches.Load(),
		CoalescedMsgs:      d.coalescedMsgs.Load(),
		SendmmsgCalls:      d.sendmmsgCalls.Load(),
		RecvmmsgCalls:      d.recvmmsgCalls.Load(),
		SendBatchFrames:    d.sendBatchFrames.Load(),
		RecvBatchFrames:    d.recvBatchFrames.Load(),
		SendBatchHighWater: d.sendBatchHW.Load(),
		RecvBatchHighWater: d.recvBatchHW.Load(),

		Retransmits:      d.retransmits.Load(),
		DupsDropped:      d.dupsDropped.Load(),
		AcksPiggybacked:  d.acksPiggybacked.Load(),
		AcksStandalone:   d.acksStandalone.Load(),
		OutOfWindowDrops: d.outOfWindowDrops.Load(),
		FaultsInjected:   d.faultsInjected.Load(),
		DecodeErrors:     d.decodeErrors.Load(),

		HeartbeatsSent:      d.heartbeatsSent.Load(),
		PeersSuspected:      d.peersSuspected.Load(),
		PeersDown:           d.peersDown.Load(),
		RetransmitExhausted: d.retransmitExhausted.Load(),
		DownPeerFails:       d.downPeerFails.Load(),
		BadCookieDrops:      d.badCookieDrops.Load(),
		BadHandlerDrops:     d.badHandlerDrops.Load(),
		HandlerPanics:       d.handlerPanics.Load(),

		StaleIncarnationDrops: d.staleIncarnationDrops.Load(),
		PeersReadmitted:       d.peersReadmitted.Load(),
		JoinsSent:             d.joinsSent.Load(),
		PeersHealed:           d.peersHealed.Load(),
		ProbesSent:            d.probesSent.Load(),
		PartitionDrops:        d.partitionDrops.Load(),

		BackpressureFails: d.backpressureFails.Load(),
		WindowShrinks:     d.windowShrinks.Load(),
		WindowGrows:       d.windowGrows.Load(),
		RTOExpirations:    d.rtoExpirations.Load(),
		ShedBytes:         d.shedBytes.Load(),
		ShedFrames:        d.shedFrames.Load(),

		InMemFallbacks: d.inMemFallbacks.Load(),
		BadAddrDrops:   d.badAddrDrops.Load(),
		SendErrors:     d.sendErrors.Load(),
		GptrRejects:    d.gptrRejects.Load(),
	}
	for _, ep := range d.eps {
		s.RingPushes += ep.inbox.fastPushes.Load()
		s.BacklogSpills += ep.inbox.spills.Load()
		s.RemoteOpsStarted += ep.ops.started.Load()
		s.RemoteOpsAcked += ep.ops.acked.Load()
		s.RemoteOpsFailed += ep.ops.failed.Load()
	}
	if d.rel != nil {
		for i := range d.rel.pairs {
			p := &d.rel.pairs[i]
			p.mu.Lock()
			if int64(p.inflightHW) > s.RelInflightHighWater {
				s.RelInflightHighWater = int64(p.inflightHW)
			}
			if int64(p.reorderHW) > s.RelReorderHighWater {
				s.RelReorderHighWater = int64(p.reorderHW)
			}
			p.mu.Unlock()
		}
	}
	return s
}

// NoteBadCookie counts one acknowledgment dropped for an unknown cookie
// (exposed for the runtime layer's own completion tables, which face the
// same stale-reply hazard as the substrate's).
func (d *Domain) NoteBadCookie() { d.badCookieDrops.Add(1) }

// NoteHandlerPanic counts one contained RPC handler panic (the runtime
// layer recovers the panic and serializes it into an error reply; this is
// the substrate-visible tally).
func (d *Domain) NoteHandlerPanic() { d.handlerPanics.Add(1) }

// NoteBadHandler counts one message dropped for an id unknown to the
// runtime layer's own handler registry (the wire-RPC/notify table faces
// the same untrusted-id hazard as the substrate's handler table).
func (d *Domain) NoteBadHandler() { d.badHandlerDrops.Add(1) }

// NoteGptrReject counts one wire-encoded global pointer the runtime layer
// refused to decode (bad rank, foreign segment id, or out-of-segment
// offset) — the decode-side bounds-validation discipline's tally.
func (d *Domain) NoteGptrReject() { d.gptrRejects.Add(1) }

// SetNotifyHook installs the runtime layer's put-with-notify dispatcher:
// when a put request carrying a notify id lands, the data is applied, the
// ack is sent, and fn runs on the receiving rank's goroutine at user-level
// progress with the id and argument bytes the request carried. Must be
// installed before any endpoint is driven. The args slice is only valid
// for the duration of the call.
func (d *Domain) SetNotifyHook(fn func(ep *Endpoint, id uint32, args []byte)) { d.notifyHook = fn }

// NewDomain validates cfg and constructs the job: one segment and one
// endpoint per rank, with the internal RMA/atomic protocol handlers
// installed.
func NewDomain(cfg Config) (*Domain, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	d := &Domain{cfg: cfg, bus: cfg.Events}
	d.inc = cfg.Epoch
	if d.inc == 0 {
		d.inc = 1 // in-process worlds share one permanent incarnation
	}
	d.segs = make([]*Segment, cfg.Ranks)
	d.eps = make([]*Endpoint, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		// In a multiproc world only Self's segment exists in this address
		// space: every other rank's memory lives in another process and is
		// reachable only through the wire protocol. The remaining nil
		// entries are unreachable behind the locality checks (NodeOf makes
		// every non-self rank remote).
		if !cfg.Multiproc || r == cfg.Self {
			d.segs[r] = NewSegment(cfg.SegmentBytes)
		}
		d.eps[r] = &Endpoint{
			dom:  d,
			rank: r,
			node: cfg.NodeOf(r),
			wake: make(chan struct{}, 1),
		}
	}
	d.handlers[hPutReq] = handlePutReq
	d.handlers[hPutAck] = handleAck
	d.handlers[hGetReq] = handleGetReq
	d.handlers[hGetRep] = handleAck
	d.handlers[hAmoReq] = handleAmoReq
	d.handlers[hAmoRep] = handleAck
	d.handlers[hHeldFn] = func(ep *Endpoint, m *Msg) { m.Fn(ep) }
	// Seed the cached clock so the first SIM release time is stamped from
	// a fresh value (drains keep it fresh from then on).
	clockRefresh()
	if cfg.Conduit == UDP {
		if err := d.initUDP(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Config returns the (normalized) configuration the Domain was built with.
func (d *Domain) Config() Config { return d.cfg }

// Ranks reports the number of ranks in the job.
func (d *Domain) Ranks() int { return d.cfg.Ranks }

// Endpoint returns rank r's endpoint.
func (d *Domain) Endpoint(r int) *Endpoint { return d.eps[r] }

// Segment returns rank r's shared segment.
func (d *Domain) Segment(r int) *Segment { return d.segs[r] }

// RegisterHandler installs a user-level AM handler. IDs must be in
// [HandlerUserBase, MaxHandlers). Registration must complete before any
// endpoint is driven.
func (d *Domain) RegisterHandler(id uint8, fn HandlerFunc) {
	if id < HandlerUserBase || int(id) >= MaxHandlers {
		panic(fmt.Sprintf("gasnet: handler id %d outside user range [%d,%d)",
			id, HandlerUserBase, MaxHandlers))
	}
	if d.handlers[id] != nil {
		panic(fmt.Sprintf("gasnet: handler id %d already registered", id))
	}
	d.handlers[id] = fn
}

// AMSends reports the total number of cross-endpoint active messages sent
// so far in this Domain.
func (d *Domain) AMSends() int64 { return d.amSends.Load() }

// RbufErr reports the first failure to enlarge a UDP socket's kernel
// receive buffer at init, or nil when every socket was configured (or the
// conduit has no sockets). A non-nil value means bursty collectives may
// drop datagrams on this host — survivable under the reliability layer,
// but worth surfacing to operators and tests programmatically rather than
// only as a one-shot log line.
func (d *Domain) RbufErr() error {
	if d.udp == nil {
		return nil
	}
	return d.udp.rbufErr
}

// Endpoint is one rank's attachment to the Domain: its inbound AM queue and
// its table of outstanding remote operations. All methods except the
// producer side of message delivery must be called from the owning rank's
// goroutine.
type Endpoint struct {
	dom   *Domain
	rank  int
	node  int
	inbox amQueue
	ops   opTable

	// Ctx is an opaque slot for the runtime layer to attach its per-rank
	// state (the progress engine), so AM handlers can reach it.
	Ctx any

	wirebuf []byte // reused encode buffer for SIM sends

	// burst and co implement sender-side coalescing on the UDP conduit
	// (see udp.go): while burst > 0, wire messages are packed per
	// destination instead of shipped one datagram each. sendq is the
	// staging area for the vectorized flush: sealed per-destination
	// frames accumulate here and ship in one batched write (owner
	// goroutine only, recycled across bursts).
	burst int
	co    *coalescer
	sendq []batchFrame

	// wake is signaled (coalescing) whenever a message is delivered to
	// this endpoint, so an idle waiter can park instead of spinning — a
	// large win when ranks outnumber cores.
	wake      chan struct{}
	parkTimer *time.Timer

	// held carries messages deferred by PollInternal until the next
	// user-level Poll.
	held []Msg

	// lvSeen is the liveness epoch this rank last swept against;
	// deathsSeen[peer] is the per-peer death generation the last sweep
	// caught up to (a readmitted peer can die again — each death is a
	// fresh sweep, and only entries registered before it are failed);
	// onPeerDown is the runtime layer's hook, invoked once per peer death
	// on the owner goroutine during Poll. All three are owner-goroutine
	// state.
	lvSeen     uint32
	deathsSeen []uint32
	onPeerDown func(peer int, err error)
}

// Rank returns this endpoint's rank index.
func (ep *Endpoint) Rank() int { return ep.rank }

// Node returns the node this endpoint resides on.
func (ep *Endpoint) Node() int { return ep.node }

// Domain returns the owning Domain.
func (ep *Endpoint) Domain() *Domain { return ep.dom }

// Segment returns this rank's own shared segment.
func (ep *Endpoint) Segment() *Segment { return ep.dom.segs[ep.rank] }

// Local reports whether this endpoint has direct load/store access to the
// target rank's segment (i.e. the ranks are co-located). This is the
// dynamic locality query behind the paper's is_local.
func (ep *Endpoint) Local(target int) bool {
	return ep.node == ep.dom.cfg.NodeOf(target)
}

// LocalSegment returns the target rank's segment, which the caller may
// access directly only when Local(target) is true.
func (ep *Endpoint) LocalSegment(target int) *Segment {
	return ep.dom.segs[target]
}

// Send delivers an active message to the target rank's endpoint. Co-located
// targets receive the message immediately (in-memory handoff). Cross-node
// targets (SIM conduit) receive a copy that was round-tripped through the
// wire encoding and released only after the configured latency; closure
// messages (Fn != nil) cannot cross nodes.
// A Msg whose buf field is set (pooled payload staging, rma.go) is
// consumed by Send: ownership of the buffer reference transfers to the
// receiver on in-memory delivery, or is released here once the bytes are
// on the wire.
func (ep *Endpoint) Send(to int, m Msg) {
	m.From = int32(ep.rank)
	ep.dom.amSends.Add(1)
	if ep.dom.cfg.Conduit == UDP && m.Fn == nil {
		// Wire-encodable message on the UDP conduit: through the kernel,
		// packed with its burst-mates when a burst is open.
		if ep.burst > 0 {
			ep.coalesce(to, &m)
		} else {
			ep.dom.sendUDP(ep.rank, to, &m)
		}
		m.release()
		return
	}
	if ep.dom.cfg.Multiproc && to != ep.dom.cfg.Self {
		// Backstop: the runtime layer gates closure-carrying operations
		// with ErrNotWireEncodable before injection; reaching here means
		// that gate was bypassed, and there is no process to hand the
		// closure to.
		panic(fmt.Sprintf("gasnet: closure message (handler %d) to remote rank %d in a multiproc world",
			m.Handler, to))
	}
	dst := ep.dom.eps[to]
	if ep.dom.cfg.Conduit == UDP && to != ep.rank {
		// A cross-rank closure message in an in-address-space UDP world:
		// deliverable through shared memory, but the run is then not
		// exercising the wire it claims to. Count it, and announce the
		// first one on the event bus so /debug/gupcxx shows the
		// short-circuit.
		if ep.dom.inMemFallbacks.Add(1) == 1 {
			ep.dom.emit(obs.EvInMemFallback, ep.rank, to, int64(m.Handler), 0)
		}
	}
	if ep.node == dst.node {
		dst.inbox.push(m) // buffer reference (if any) travels with m
		dst.notify()
		return
	}
	// Round-trip through the wire format: this both validates that the
	// internal protocol is serializable and gives the payload copy
	// semantics of a real injection path. Closure payloads (remote
	// completions, user RPC) are reattached out of band — the SIM conduit
	// models wire latency, not address-space separation; see DESIGN.md.
	fn := m.Fn
	m.Fn = nil
	ep.wirebuf = encodeMsg(ep.wirebuf[:0], &m)
	m.release() // staged payload is encoded; drop our reference
	wb := ep.dom.arena.get(len(ep.wirebuf))
	copy(wb.b, ep.wirebuf)
	dm, err := decodeMsg(wb.b)
	if err != nil {
		panic(err) // encode/decode are inverses; this is a runtime bug
	}
	dm.buf = wb
	dm.Fn = fn
	// Stamp from a freshly advanced clock: a stale stamp would release the
	// message early and under-simulate the wire latency. The refresh also
	// keeps the shared cache warm for the receiver's drain gating. (The
	// clock reads the fast path avoids are the per-push and per-untimed-
	// drain ones; one read per simulated cross-node send is the simulation
	// itself.)
	dm.readyAt = clockRefresh() + int64(ep.dom.cfg.SimLatency)
	dst.inbox.push(dm)
	dst.notify()
}

// Poll drains and dispatches all deliverable inbound messages (user-level
// progress), returning the number processed. It must be called from the
// owning rank's goroutine; it is the substrate half of the runtime's
// progress engine. Messages held back by a preceding PollInternal are
// dispatched first, preserving their arrival order.
func (ep *Endpoint) Poll() int {
	if ep.co != nil && ep.burst == 0 && ep.co.pending() {
		// Safety net: a burst left unflushed (a bug in the caller) must
		// not stall peers forever.
		ep.flushSends()
	}
	if lv := ep.dom.lv; lv != nil && lv.epochOf(ep.rank) != ep.lvSeen {
		// A peer of this rank was declared down since the last poll: fail
		// its pending operations here, on the owner goroutine, preserving
		// the op table's no-locking confinement.
		ep.sweepDown(lv)
	}
	n := 0
	if len(ep.held) > 0 {
		held := ep.held
		ep.held = nil
		for i := range held {
			ep.dispatch(&held[i])
			held[i].release()
		}
		n += len(held)
	}
	msgs := ep.inbox.drainNow()
	for i := range msgs {
		ep.dispatch(&msgs[i])
		msgs[i].release()
	}
	if ep.dom.rel != nil {
		// Eager ack flush: anything this dispatch round did not answer
		// with reverse traffic is acknowledged now, not at the ticker's
		// pacing deadline (see reliability.flushAcks).
		ep.dom.rel.flushAcks(ep.rank)
	}
	return n + len(msgs)
}

// dispatch routes one message to its handler. A message bearing an
// out-of-range or unregistered handler id is counted and dropped, not
// trusted to crash the job: on the UDP conduit it came off a socket, and
// the full uint8 id space is wider than the handler table.
func (ep *Endpoint) dispatch(m *Msg) {
	if int(m.Handler) >= len(ep.dom.handlers) {
		ep.dom.badHandlerDrops.Add(1)
		return
	}
	h := ep.dom.handlers[m.Handler]
	if h == nil {
		ep.dom.badHandlerDrops.Add(1)
		return
	}
	h(ep, m)
}

// sweepDown fails the pending operations of every peer whose death
// generation advanced since the last sweep, with ErrPeerUnreachable, and
// runs the runtime layer's peer-down hook. The generation comparison —
// not the current Down state — is what makes the sweep churn-correct: a
// peer may die and be readmitted between two polls, and the operations in
// flight against its dead incarnation must still fail even though the
// peer reads Alive again, while operations registered after readmission
// (stamped with the newer generation by DownGen) must survive. Owner
// goroutine only (called from Poll).
func (ep *Endpoint) sweepDown(lv *liveness) {
	ep.lvSeen = lv.epochOf(ep.rank)
	if ep.deathsSeen == nil {
		ep.deathsSeen = make([]uint32, ep.dom.cfg.Ranks)
	}
	for peer := range ep.deathsSeen {
		cur := lv.deathsOf(ep.rank, peer)
		if peer == ep.rank || cur == ep.deathsSeen[peer] {
			continue
		}
		ep.deathsSeen[peer] = cur
		n := ep.ops.failPeer(int32(peer), cur, ErrPeerUnreachable)
		ep.dom.downPeerFails.Add(int64(n))
		if ep.onPeerDown != nil {
			ep.onPeerDown(peer, ErrPeerUnreachable)
		}
	}
}

// DownGen returns the current death generation of peer as seen by this
// rank: the stamp a new op-table registration should carry so a later
// sweep can tell operations against the current incarnation from ones
// buried with a previous one. Zero without a failure detector.
func (ep *Endpoint) DownGen(peer int) uint32 {
	lv := ep.dom.lv
	if lv == nil || peer < 0 || peer >= ep.dom.cfg.Ranks {
		return 0
	}
	return lv.deathsOf(ep.rank, peer)
}

// SetPeerDownHook installs the runtime layer's peer-death notification,
// invoked on the owner goroutine during Poll, once per declared-dead peer,
// after the endpoint's own pending operations have been failed. Must be
// installed before the endpoint is driven.
func (ep *Endpoint) SetPeerDownHook(fn func(peer int, err error)) { ep.onPeerDown = fn }

// PeerDown reports whether this rank currently declares peer down (always
// false without the liveness detector). Operations targeting a down peer
// fail at injection with ErrPeerUnreachable rather than waiting out a
// deadline. Down is no longer forever: a restarted peer that rejoins
// under a new incarnation is readmitted, and a merely-partitioned peer
// heals back under the same incarnation once probes get through — after
// either, PeerDown reads false again, so callers gating long-lived loops
// should re-check per operation rather than caching the verdict.
func (ep *Endpoint) PeerDown(peer int) bool {
	lv := ep.dom.lv
	return lv != nil && lv.down(ep.rank, peer)
}

// AnyPeerDown cheaply reports whether this rank has EVER declared a peer
// down (one atomic load — the per-rank down epoch is bumped on each
// declaration and never reset), so blocking protocols can test it every
// spin iteration. After a readmission it may read true with no peer
// currently down; callers treat it as a hint and re-check the specific
// peers they depend on (PeerDown), so the stale-true costs a slow-path
// pass, never a wrong answer.
func (ep *Endpoint) AnyPeerDown() bool {
	lv := ep.dom.lv
	return lv != nil && lv.epochOf(ep.rank) != 0
}

// DownPeers returns the ranks this endpoint has declared down, in rank
// order (nil when none).
func (ep *Endpoint) DownPeers() []int {
	lv := ep.dom.lv
	if lv == nil {
		return nil
	}
	var down []int
	for peer := 0; peer < ep.dom.cfg.Ranks; peer++ {
		if peer != ep.rank && lv.down(ep.rank, peer) {
			down = append(down, peer)
		}
	}
	return down
}

// PollInternal performs internal-level progress (the GASNet/UPC++ level
// distinction of §II-B): it services inbound *requests* — remote put, get,
// and atomic operations targeting this rank's segment — so that peers can
// make progress, but delivers no user-observable notification on this
// rank: acknowledgments (which would ready local futures and promises) and
// user-level messages (RPCs, collective tokens) are held for the next
// user-level Poll. Remote-completion callbacks attached to serviced puts
// are likewise held — the data is applied and the ack sent, but the
// callback waits for user-level progress, as remote_cx::as_rpc does in
// UPC++.
func (ep *Endpoint) PollInternal() int {
	msgs := ep.inbox.drainNow()
	n := 0
	for i := range msgs {
		m := &msgs[i]
		switch m.Handler {
		case hPutReq:
			if m.Fn != nil || m.A2 != 0 {
				// Apply the data and ack now; hold the user-level work —
				// the remote-completion closure and/or the wire notify —
				// for Poll.
				if fn, ok := ep.applyPutHeld(m); ok && fn != nil {
					ep.held = append(ep.held, Msg{Handler: hHeldFn, Fn: fn})
				}
				m.release() // payload consumed by CopyIn (or refused)
				n++
				continue
			}
			ep.dispatch(m)
			m.release()
			n++
		case hGetReq, hAmoReq:
			ep.dispatch(m)
			m.release()
			n++
		default:
			// Acks, replies, and user-level messages wait for Poll. Copy:
			// the drain buffer is reused. The copy takes over the buffer
			// reference; the scratch entry must not release it.
			ep.held = append(ep.held, *m)
			m.buf = nil
		}
	}
	return n
}

// InboxEmpty reports whether no messages (deliverable or in flight) are
// queued for this endpoint.
func (ep *Endpoint) InboxEmpty() bool { return ep.inbox.empty() }

// notify signals (coalescing) that a message was delivered.
func (ep *Endpoint) notify() {
	select {
	case ep.wake <- struct{}{}:
	default:
	}
}

// parkTimeout bounds how long Park blocks, so a waiter whose condition is
// satisfied by something other than an inbound message (time passing on
// the SIM conduit, a logic error in user code) re-polls periodically.
const parkTimeout = time.Millisecond

// Park blocks the calling (owner) goroutine until a new message may be
// available for this endpoint, or parkTimeout elapses. Callers use it in
// wait loops after an idle Poll, relinquishing the CPU to other ranks —
// essential when ranks outnumber cores. Spurious returns are expected;
// the caller re-checks its condition.
func (ep *Endpoint) Park() {
	if !ep.inbox.empty() {
		// Messages exist but were not deliverable (SIM wire latency):
		// yield briefly rather than blocking on the wake channel.
		runtime.Gosched()
		return
	}
	// A parked rank is as good a clock keeper as any: refreshing here
	// bounds the cached clock's staleness for SIM release stamping even
	// when every rank is idle.
	clockRefresh()
	if ep.parkTimer == nil {
		ep.parkTimer = time.NewTimer(parkTimeout)
	} else {
		ep.parkTimer.Reset(parkTimeout)
	}
	select {
	case <-ep.wake:
		if !ep.parkTimer.Stop() {
			<-ep.parkTimer.C
		}
	case <-ep.parkTimer.C:
	}
}

// PendingOps reports the number of outstanding remote operations initiated
// by this endpoint that have not yet completed.
func (ep *Endpoint) PendingOps() int { return ep.ops.live() }

// opTable tracks outstanding remote operations by cookie. It is only
// touched by the owning rank's goroutine (initiation, the ack handler,
// and the liveness sweep all run there), so it needs no locking.
// opSlot is one outstanding operation's completion callback plus the rank
// it targets (so a peer-death sweep can find it). Exactly one of the two
// callback fields is set: msg consumes the reply message (gets and
// atomics, whose acknowledgment carries data; a nil Msg with non-nil
// error reports the reply will never come), done is a bare acknowledgment
// (puts). Storing the bare form directly — instead of wrapping it in a
// closure — keeps the put injection path allocation-free: done's
// signature matches the pipeline's cached completion callback.
type opSlot struct {
	msg  func(*Msg, error)
	done func(error)
	// dst, when non-nil on a bare-done slot, is the caller's destination
	// buffer: handleAck copies the reply payload into it before invoking
	// done. This moves the copy a get-class reply needs out of a per-call
	// closure and into the table, keeping steady-state gets
	// allocation-free like puts.
	dst  []byte
	peer int32
	// gen is the peer's death generation at registration (Endpoint.
	// DownGen): a peer-death sweep fails only entries whose gen predates
	// the death, so operations registered against a readmitted peer
	// survive the sweep burying its previous incarnation.
	gen uint32
}

type opTable struct {
	slots []opSlot
	free  []uint32
	n     int

	// Lifetime tallies, surfaced through Stats: started counts every
	// registered remote operation, acked every acknowledgment consumed,
	// failed every entry retired with an error (peer declared down). They
	// are the substrate leg of the runtime's op-lifecycle phase
	// instrumentation (started pairs with initiation, acked with the
	// wire-acked phase, failed with the failed phase). Atomic because
	// Stats() snapshots them from scrape goroutines while the owner
	// goroutine mutates the table.
	started atomic.Int64
	acked   atomic.Int64
	failed  atomic.Int64
}

// add registers a reply-consuming completion callback and returns its
// cookie. gen is the target's death generation at registration
// (Endpoint.DownGen), as for all three registration forms.
func (t *opTable) add(peer int, gen uint32, cb func(*Msg, error)) uint64 {
	return t.register(opSlot{msg: cb, peer: int32(peer), gen: gen})
}

// addDone registers a bare acknowledgment callback and returns its
// cookie.
func (t *opTable) addDone(peer int, gen uint32, done func(error)) uint64 {
	return t.register(opSlot{done: done, peer: int32(peer), gen: gen})
}

// addGet registers a bare acknowledgment callback whose reply payload is
// copied into dst before done runs — the closure-free get-class
// registration. On failure dst is untouched and done receives the error.
func (t *opTable) addGet(peer int, gen uint32, dst []byte, done func(error)) uint64 {
	return t.register(opSlot{done: done, dst: dst, peer: int32(peer), gen: gen})
}

func (t *opTable) register(s opSlot) uint64 {
	t.n++
	t.started.Add(1)
	if len(t.free) > 0 {
		id := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.slots[id] = s
		return uint64(id)
	}
	t.slots = append(t.slots, s)
	return uint64(len(t.slots) - 1)
}

// take removes and returns the callback slot for cookie. An unknown
// cookie — out of range, or already retired (a stale reply from a peer
// whose operations were failed by the liveness sweep) — yields an empty
// slot; the caller must check and drop. Crashing was only acceptable
// while cookies could not outlive their entries.
func (t *opTable) take(cookie uint64) (opSlot, bool) {
	if cookie >= uint64(len(t.slots)) {
		return opSlot{}, false
	}
	s := t.slots[cookie]
	if s.msg == nil && s.done == nil {
		return opSlot{}, false
	}
	t.slots[cookie] = opSlot{}
	t.free = append(t.free, uint32(cookie))
	t.n--
	t.acked.Add(1)
	return s, true
}

// failPeer retires every entry targeting peer whose registration
// generation predates gen (the peer's current death generation), invoking
// its callback with err (nil Msg), and returns the number failed.
// Entries registered at or after gen belong to the peer's readmitted
// incarnation and are left standing. Owner goroutine only.
func (t *opTable) failPeer(peer int32, gen uint32, err error) int {
	n := 0
	for id := range t.slots {
		s := t.slots[id]
		if (s.msg == nil && s.done == nil) || s.peer != peer || s.gen >= gen {
			continue
		}
		t.slots[id] = opSlot{}
		t.free = append(t.free, uint32(id))
		t.n--
		t.failed.Add(1)
		n++
		if s.msg != nil {
			s.msg(nil, err)
		} else {
			s.done(err)
		}
	}
	return n
}

// live reports the number of registered, uncompleted operations.
func (t *opTable) live() int { return t.n }

// ackBadAddr is the A3 status a reply carries when the request was refused
// for an out-of-segment address or invalid op code (A3 zero means success,
// so pre-existing peers' replies decode compatibly). The requester's
// callback receives ErrBadAddress instead of the reply data.
const ackBadAddr = 1

// handleAck completes an outstanding operation: the reply's A0 carries the
// cookie. Shared by put acks, get replies, and atomic replies; the
// registered callback interprets the rest of the message. Unknown cookies
// are counted and dropped (stale replies outliving a peer-death sweep).
func handleAck(ep *Endpoint, m *Msg) {
	s, ok := ep.ops.take(m.A0)
	if !ok {
		ep.dom.badCookieDrops.Add(1)
		return
	}
	if m.A3 != 0 {
		// The target refused the request (bad address or op code): the
		// operation completes with an error, not with reply data.
		if s.msg != nil {
			s.msg(nil, ErrBadAddress)
		} else {
			s.done(ErrBadAddress)
		}
		return
	}
	if s.msg != nil {
		s.msg(m, nil)
	} else {
		if s.dst != nil {
			copy(s.dst, m.Payload)
		}
		s.done(nil)
	}
}
