package gasnet

import (
	"errors"
	"testing"
	"time"

	"gupcxx/internal/obs"
)

// drainEvents polls sub until no new events arrive, returning everything
// collected so far appended to acc.
func drainEvents(sub *obs.Subscription, acc []obs.Event) []obs.Event {
	return sub.Poll(acc)
}

// waitForEvent polls sub until an event of kind k shows up or the
// deadline passes, returning the accumulated events and whether k was
// seen.
func waitForEvent(sub *obs.Subscription, k obs.EventKind, acc []obs.Event) ([]obs.Event, bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		acc = drainEvents(sub, acc)
		for _, ev := range acc {
			if ev.Kind == k {
				return acc, true
			}
		}
		time.Sleep(time.Millisecond)
	}
	return acc, false
}

func hasEvent(evs []obs.Event, k obs.EventKind) bool {
	for _, ev := range evs {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// TestLivenessEvents drives the failure detector's full state walk —
// Alive→Suspect→Alive (recovery) and Alive→Suspect→Down — and asserts
// every transition shows up on the bus exactly as an edge: direct calls
// into the detector, so the event payloads can be pinned precisely.
func TestLivenessEvents(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, Events: bus})
	defer d.Close()

	if got := d.LivenessState(0, 1); got != "alive" {
		t.Fatalf("initial LivenessState(0,1) = %q, want alive", got)
	}
	if got := d.LivenessState(0, 0); got != "self" {
		t.Fatalf("LivenessState(0,0) = %q, want self", got)
	}

	// Alive→Suspect: one event; a second markSuspect is a no-op.
	d.lv.markSuspect(0, 1)
	d.lv.markSuspect(0, 1)
	if got := d.LivenessState(0, 1); got != "suspect" {
		t.Fatalf("LivenessState(0,1) after markSuspect = %q, want suspect", got)
	}
	evs, ok := waitForEvent(sub, obs.EvPeerSuspect, nil)
	if !ok {
		t.Fatal("no peer-suspect event")
	}
	suspects := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvPeerSuspect {
			suspects++
			if ev.Rank != 0 || ev.Peer != 1 {
				t.Errorf("suspect event rank/peer = %d/%d, want 0/1", ev.Rank, ev.Peer)
			}
		}
	}
	if suspects != 1 {
		t.Errorf("%d suspect events for one transition, want 1", suspects)
	}

	// Suspect→Alive on hearing from the peer.
	d.lv.heard(0, 1)
	if got := d.LivenessState(0, 1); got != "alive" {
		t.Fatalf("LivenessState(0,1) after heard = %q, want alive", got)
	}
	if evs, ok = waitForEvent(sub, obs.EvPeerRecovered, evs); !ok {
		t.Fatal("no peer-recovered event")
	}

	// Down is terminal and emits once.
	d.lv.markDown(0, 1, causeBye)
	d.lv.markDown(0, 1, causeBye)
	if got := d.LivenessState(0, 1); got != "down" {
		t.Fatalf("LivenessState(0,1) after markDown = %q, want down", got)
	}
	if evs, ok = waitForEvent(sub, obs.EvPeerDown, evs); !ok {
		t.Fatal("no peer-down event")
	}
	downs := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvPeerDown {
			downs++
		}
	}
	if downs != 1 {
		t.Errorf("%d down events for one transition, want 1", downs)
	}
}

// TestBackpressureEvents pins the edge semantics: the first refused
// admission emits backpressure-on, repeats are silent, and the first
// admission that goes through afterwards emits backpressure-off.
func TestBackpressureEvents(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, Events: bus,
		Backpressure: BackpressureFailFast,
	})
	defer d.Close()

	r := d.rel
	p := r.pair(0, 1)

	// Choke the window to zero: every admission refuses.
	p.mu.Lock()
	savedCwnd := p.cwnd
	p.cwnd = 0
	p.mu.Unlock()

	for i := 0; i < 3; i++ {
		if err := r.admit(0, 1, 0); !errors.Is(err, ErrBackpressure) {
			t.Fatalf("admit under zero window = %v, want ErrBackpressure", err)
		}
	}
	evs := drainEvents(sub, nil)
	on := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvBackpressureOn {
			on++
			if ev.Rank != 0 || ev.Peer != 1 {
				t.Errorf("onset event rank/peer = %d/%d, want 0/1", ev.Rank, ev.Peer)
			}
			if ev.B != 0 {
				t.Errorf("onset event window = %d, want 0", ev.B)
			}
		}
	}
	if on != 1 {
		t.Fatalf("%d backpressure-on events for 3 refusals, want 1", on)
	}
	if hasEvent(evs, obs.EvBackpressureOff) {
		t.Fatal("relief event while still choked")
	}

	// Restore the window: the next admission succeeds and emits relief.
	p.mu.Lock()
	p.cwnd = savedCwnd
	p.mu.Unlock()
	if err := r.admit(0, 1, 0); err != nil {
		t.Fatalf("admit after restore = %v, want nil", err)
	}
	if err := r.admit(0, 1, 0); err != nil {
		t.Fatalf("second admit after restore = %v, want nil", err)
	}
	evs = drainEvents(sub, evs[:0])
	off := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvBackpressureOff {
			off++
		}
	}
	if off != 1 {
		t.Fatalf("%d backpressure-off events for one relief, want 1", off)
	}
}

// TestWindowShrinkAndExhaustionEvents: under total loss the AIMD window
// halves (shrink event) and the retransmission budget then runs out
// (exhaustion event, then peer-down) — the real datapath, end to end.
func TestWindowShrinkAndExhaustionEvents(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12, Events: bus,
		Fault:          &FaultConfig{Seed: 1, Drop: 1.0},
		RelMaxAttempts: 3,
	})
	defer d.Close()
	ep0 := d.Endpoint(0)

	var gotErr error
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { gotErr = err })
	deadline := time.Now().Add(10 * time.Second)
	for gotErr == nil && time.Now().Before(deadline) {
		ep0.Poll()
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(gotErr, ErrPeerUnreachable) {
		t.Fatalf("put resolved with %v, want ErrPeerUnreachable", gotErr)
	}

	evs, ok := waitForEvent(sub, obs.EvRetransmitExhausted, nil)
	if !ok {
		t.Fatal("no retransmit-exhausted event")
	}
	if !hasEvent(evs, obs.EvWindowShrink) {
		t.Error("no window-shrink event despite RTO expirations")
	}
	if evs, ok = waitForEvent(sub, obs.EvPeerDown, evs); !ok {
		t.Fatal("no peer-down event after exhaustion")
	}
	for _, ev := range evs {
		if ev.Kind == obs.EvWindowShrink && ev.B > ev.A {
			t.Errorf("shrink event grew the window: %d -> %d", ev.A, ev.B)
		}
	}
}

// TestWindowGrowEvent: a clean RTT sample that brings the congestion
// window back to the configured ceiling emits exactly one recovery
// event.
func TestWindowGrowEvent(t *testing.T) {
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	defer sub.Close()
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12, Events: bus})
	defer d.Close()

	// Pull the window one below the ceiling so the next clean ack crosses
	// the recovery boundary.
	p := d.rel.pair(0, 1)
	p.mu.Lock()
	p.cwnd = d.rel.window - 1
	p.mu.Unlock()

	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	done := false
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) {
		if err != nil {
			t.Errorf("put failed: %v", err)
		}
		done = true
	})
	deadline := time.Now().Add(10 * time.Second)
	for !done && time.Now().Before(deadline) {
		ep1.Poll()
		ep0.Poll()
		time.Sleep(100 * time.Microsecond)
	}
	if !done {
		t.Fatal("put never completed")
	}
	evs, ok := waitForEvent(sub, obs.EvWindowGrow, nil)
	if !ok {
		t.Fatal("no window-grow event after recovery to the ceiling")
	}
	for _, ev := range evs {
		if ev.Kind == obs.EvWindowGrow && ev.A != int64(d.rel.window) {
			t.Errorf("grow event ceiling = %d, want %d", ev.A, d.rel.window)
		}
	}
}

// TestFlowStateOccupancy pins the extended FlowState fields: the reorder
// budget is always reported, and a retransmission queue holding unacked
// datagrams shows non-zero byte occupancy.
func TestFlowStateOccupancy(t *testing.T) {
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12,
		Fault: &FaultConfig{Seed: 1, Drop: 1.0}, // nothing acks: queue stays full
	})
	defer d.Close()

	fs := d.FlowState(0, 1)
	if fs.ReorderBudget <= 0 {
		t.Errorf("ReorderBudget = %d, want > 0", fs.ReorderBudget)
	}
	if fs.InFlightBytes != 0 || fs.ReorderBytes != 0 {
		t.Errorf("idle pair reports occupancy: inflight=%dB reorder=%dB", fs.InFlightBytes, fs.ReorderBytes)
	}

	d.Endpoint(0).PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(error) {})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fs = d.FlowState(0, 1)
		if fs.InFlightBytes > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fs.InFlight == 0 || fs.InFlightBytes == 0 {
		t.Errorf("unacked put not visible: InFlight=%d InFlightBytes=%d", fs.InFlight, fs.InFlightBytes)
	}
	if fs.InFlightBytes < relHeaderLen {
		t.Errorf("InFlightBytes = %d, smaller than the frame header", fs.InFlightBytes)
	}
	// Zero-flow queries stay zero-valued.
	if z := d.FlowState(0, 0); z != (FlowState{}) {
		t.Errorf("self FlowState = %+v, want zero", z)
	}
}
