package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The UDP conduit models the paper's non-Intel configurations (§IV): the
// job runs on one node with process-shared memory — every rank has direct
// load/store access to every segment, so all RMA and atomic data movement
// is performed through shared memory and completes synchronously — while
// active messages (collective tokens, RPC acknowledgments, and the
// internal protocol, should it ever fire) travel over real UDP datagrams
// on the loopback interface.
//
// One honest deviation from a multi-process runtime is documented in
// DESIGN.md: closure-carrying messages (user RPC bodies, remote
// completions) cannot be serialized onto a socket in Go, so they are
// delivered through the in-memory queue. This is sound because UDP-conduit
// jobs are single-address-space by construction, exactly like the paper's
// single-node UDP runs; wire-encodable messages genuinely round-trip
// through the kernel.
//
// Every datagram starts with a one-byte frame tag. frameSingle carries one
// wire message; frameBatch carries several small messages coalesced by the
// sender (see Endpoint.BeginBurst), packed as:
//
//	[frameBatch u8] [count u16 LE] count × { [len u32 LE] [encodeMsg bytes] }
//
// frameSeq wraps either of the above in the reliability layer's sequenced
// header (see reliable.go) — the default on this conduit; raw frames are
// only emitted under Config.UDPUnreliable. The receiver unpacks a batch
// into individual inbox messages that all share (and reference-count) the
// datagram's pooled buffer.
//
// The receive path never trusts the kernel-delivered bytes: truncated or
// corrupt frames of any kind are counted (Stats.DecodeErrors) and dropped,
// exercised by FuzzDecodeDatagram.

// maxUDPPayload bounds the wire size of one datagram. Collective tokens
// and protocol messages are far below this; oversized payloads are a
// programming error on this conduit.
const maxUDPPayload = 60 << 10

// Datagram frame tags.
const (
	frameSingle = 0x01
	frameBatch  = 0x02
	frameSeq    = 0x03 // reliability framing; see reliable.go
	frameHB     = 0x04 // liveness heartbeat; see liveness.go
	frameBye    = 0x05 // graceful departure (multiproc worlds); see sendBye
	frameJoin   = 0x06 // incarnation announcement (readmission); see liveness.go
	frameProbe  = 0x07 // partition probe/ack (healing); see liveness.go
)

// byeFrameLen is the size of a departure frame:
// [frameBye u8][from u16 LE][incarnation u32 LE]. A peer that announces
// departure is marked Down immediately — a process that exits cleanly
// becomes a Down peer at the speed of one datagram, not after DownAfter
// of silence. The incarnation stamp keeps a late bye from a dead
// incarnation from burying its restarted successor.
const byeFrameLen = 7

// batchHeaderLen is the fixed prefix of a frameBatch datagram; each packed
// message adds a 4-byte length prefix on top of its encoding.
const batchHeaderLen = 1 + 2

// recvBatchSize is how many datagrams one reader wakeup drains in a
// single recvmmsg (each into its own pooled buffer). It bounds the
// pooled memory a parked reader pins at recvBatchSize × bufClassLarge
// per socket.
const recvBatchSize = 8

// batchFrame is one staged datagram in a vectorized send: the wire
// bytes, the destination address, and the pooled buffer owning the bytes
// (nil for frames, like fault-shim holdback releases, whose bytes have
// no pooled owner). The stager holds wb's reference until the batch is
// written; writers must not retain any frame's bytes past the call.
type batchFrame struct {
	b    []byte
	addr netip.AddrPort
	wb   *wireBuf
}

// batchConn extends the send path's packetConn with the vectorized read
// the conduit's reader goroutines use. Constructed per socket by
// newBatchConn: sendmmsg/recvmmsg on capable Linux platforms, the
// sequential seqConn elsewhere (and under Config.UDPNoMmsg). The fault
// shim wraps only the write side — faults are send-side injection, so
// the reader always consumes the unwrapped batchConn.
type batchConn interface {
	packetConn
	// ReadBatch fills views with up to len(views) datagrams, recording
	// each datagram's byte count in sizes, and returns how many arrived.
	// It blocks until at least one datagram is available.
	ReadBatch(views [][]byte, sizes []int) (int, error)
}

// seqConn is the portable batch adapter: one write or read system call
// per frame behind the same interface the mmsg path implements — the
// fallback for platforms without sendmmsg/recvmmsg.
type seqConn struct{ *net.UDPConn }

func (c seqConn) WriteBatch(frames []batchFrame) error {
	for _, fr := range frames {
		if _, err := c.WriteToUDPAddrPort(fr.b, fr.addr); err != nil {
			return err
		}
	}
	return nil
}

func (c seqConn) ReadBatch(views [][]byte, sizes []int) (int, error) {
	n, _, err := c.ReadFromUDPAddrPort(views[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

// udpTransport is the per-domain socket state for the UDP conduit.
type udpTransport struct {
	conns []*net.UDPConn
	// send is the per-rank write path: always the fault shim (fault.go)
	// wrapping the batch-capable socket adapter — idle it forwards behind
	// one atomic load, armed it is the deterministic network model.
	send []packetConn
	// read is the per-rank read path: always the unwrapped batch adapter
	// (the fault shim injects on the send side only).
	read []batchConn
	// addrs holds each rank's socket address behind an atomic pointer:
	// readmission (liveness.go) rewrites a restarted peer's slot — it
	// bound a fresh socket — while send paths are concurrently loading
	// it. Access through addrOf/setAddr.
	addrs []atomic.Pointer[netip.AddrPort]
	wg    sync.WaitGroup

	// rbufErr records the first SetReadBuffer failure (logged once at
	// init, surfaced via Domain.RbufErr): without the enlarged kernel
	// buffer, loopback bursts drop datagrams, and this is the breadcrumb
	// that makes such environments diagnosable.
	rbufErr error

	mu     sync.Mutex
	closed bool
}

// addrOf returns rank to's current socket address.
func (tr *udpTransport) addrOf(to int) netip.AddrPort { return *tr.addrs[to].Load() }

// setAddr installs a new socket address for rank to — at construction,
// and again when a restarted peer announces its fresh socket.
func (tr *udpTransport) setAddr(to int, a netip.AddrPort) { tr.addrs[to].Store(&a) }

// initUDP binds one loopback socket per rank and starts its reader
// goroutine, which decodes datagrams into the owning endpoint's inbox. In
// a multiproc world only this process's rank gets a socket — the one the
// bootstrap exchange already bound — and the peer table comes from the
// configuration (initUDPMultiproc, multiproc.go).
func (d *Domain) initUDP() error {
	if d.cfg.Multiproc {
		return d.initUDPMultiproc()
	}
	tr := &udpTransport{addrs: make([]atomic.Pointer[netip.AddrPort], d.cfg.Ranks)}
	for r := 0; r < d.cfg.Ranks; r++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.close()
			return fmt.Errorf("gasnet: udp conduit: %w", err)
		}
		// A generous receive buffer: collective fan-ins burst many small
		// datagrams at one socket, and loopback UDP drops on overflow.
		if err := conn.SetReadBuffer(4 << 20); err != nil && tr.rbufErr == nil {
			tr.rbufErr = err
			log.Printf("gasnet: udp conduit: SetReadBuffer(4MiB) failed (%v); "+
				"bursty collectives may drop datagrams on this host", err)
		}
		tr.conns = append(tr.conns, conn)
		bc := newBatchConn(conn, d)
		// The fault shim is ALWAYS interposed: idle it costs one atomic
		// load per write, and it is what lets tests and scenarios arm
		// faults, partitions, and latency mid-run (SetFault et al.).
		var cfg FaultConfig
		if d.cfg.Fault != nil {
			cfg = *d.cfg.Fault
		}
		tr.send = append(tr.send, newFaultConn(bc, cfg, r, d))
		tr.read = append(tr.read, bc)
		tr.setAddr(r, conn.LocalAddr().(*net.UDPAddr).AddrPort())
	}
	d.udp = tr
	if err := d.armScenarioFromEnv(); err != nil {
		tr.close()
		return err
	}
	if !d.cfg.UDPUnreliable {
		// The detector must exist before the reliability ticker starts
		// (newReliability captures it), so exhaustion events observed on
		// the very first sweep already have somewhere to go.
		if !d.cfg.DisableLiveness {
			d.lv = newLiveness(d, clockRefresh())
		}
		d.rel = newReliability(d)
	}
	for r := 0; r < d.cfg.Ranks; r++ {
		d.startReader(tr, d.eps[r], tr.read[r])
	}
	return nil
}

// startReader starts the reader goroutine serving one socket, decoding its
// datagrams into the owning endpoint's inbox.
func (d *Domain) startReader(tr *udpTransport, ep *Endpoint, bc batchConn) {
	tr.wg.Add(1)
	go func() {
		defer tr.wg.Done()
		// One ReadBatch drains up to recvBatchSize queued datagrams per
		// wakeup, each read straight into its own pooled buffer: the
		// decoded messages alias the buffer and release it after
		// dispatch, so the steady-state receive path allocates nothing
		// — and a burst of frames costs one recvmmsg instead of one
		// recvfrom per datagram.
		bufs := make([]*wireBuf, recvBatchSize)
		views := make([][]byte, recvBatchSize)
		sizes := make([]int, recvBatchSize)
		for {
			for i := range bufs {
				if bufs[i] == nil {
					bufs[i] = d.arena.get(bufClassLarge)
					views[i] = bufs[i].b
				}
			}
			n, err := bc.ReadBatch(views, sizes)
			if err != nil {
				if errors.Is(err, net.ErrClosed) || tr.isClosed() {
					for _, wb := range bufs {
						if wb != nil {
							wb.release()
						}
					}
					return
				}
				// Transient errors on loopback are unexpected but
				// not fatal; keep serving.
				continue
			}
			for i := 0; i < n; i++ {
				wb := bufs[i]
				bufs[i] = nil
				wb.b = wb.b[:sizes[i]]
				d.receiveDatagram(ep, wb)
			}
		}
	}()
}

// receiveDatagram routes one received datagram (whose bytes are wb.b) to
// the reliability layer or straight to frame delivery, taking ownership
// of wb.
func (d *Domain) receiveDatagram(ep *Endpoint, wb *wireBuf) {
	if len(wb.b) >= 1 && wb.b[0] == frameSeq && d.rel != nil {
		d.rel.receive(ep, wb)
		return
	}
	if len(wb.b) >= 1 && wb.b[0] == frameHB {
		// Heartbeats count as hearing from the peer only when they carry
		// its current incarnation — a dead process's heartbeats lingering
		// in a socket buffer must not keep its ghost alive (checkInc
		// counts and drops them).
		if d.lv != nil && len(wb.b) >= hbFrameLen {
			from := int(binary.LittleEndian.Uint16(wb.b[1:3]))
			inc := binary.LittleEndian.Uint32(wb.b[3:7])
			if from < d.cfg.Ranks && d.lv.checkInc(ep.rank, from, inc) {
				d.lv.heard(ep.rank, from)
			}
		}
		wb.release()
		return
	}
	if len(wb.b) >= 1 && wb.b[0] == frameBye {
		// A peer announced its graceful departure: declare it Down now
		// instead of waiting out DownAfter of silence. Corrupt or
		// self-referential frames are dropped — wire input is untrusted —
		// and so is a bye stamped with a dead incarnation, which would
		// otherwise bury the peer's restarted successor.
		if d.lv != nil && len(wb.b) >= byeFrameLen {
			from := int(binary.LittleEndian.Uint16(wb.b[1:3]))
			inc := binary.LittleEndian.Uint32(wb.b[3:7])
			if from < d.cfg.Ranks && from != ep.rank && d.lv.checkInc(ep.rank, from, inc) {
				d.lv.markDown(ep.rank, from, causeBye)
			}
		}
		wb.release()
		return
	}
	if len(wb.b) >= 1 && wb.b[0] == frameProbe {
		// A partition probe (or its ack): authentic same-incarnation
		// traffic from a peer we may have declared dead. Deliberately NOT
		// gated by checkInc — a Down peer's frames are exactly what a
		// probe authenticates — handleProbe carries its own incarnation
		// gate and heals or acks as appropriate.
		if d.lv != nil && len(wb.b) >= probeFrameLen {
			from := int(binary.LittleEndian.Uint16(wb.b[1:3]))
			inc := binary.LittleEndian.Uint32(wb.b[3:7])
			if from < d.cfg.Ranks {
				d.lv.handleProbe(ep.rank, from, inc, wb.b[7])
			}
		}
		wb.release()
		return
	}
	if len(wb.b) >= 1 && wb.b[0] == frameJoin {
		// A restarted peer announcing its new incarnation and socket.
		// Multiproc worlds only — in-process ranks cannot restart — and
		// the address is untrusted wire input: validate length and parse
		// before it can reach the address table.
		if d.lv != nil && d.cfg.Multiproc && len(wb.b) >= joinFrameMin {
			from := int(binary.LittleEndian.Uint16(wb.b[1:3]))
			inc := binary.LittleEndian.Uint32(wb.b[3:7])
			alen := int(wb.b[7])
			if from >= d.cfg.Ranks || from == ep.rank || len(wb.b) < joinFrameMin+alen {
				d.decodeErrors.Add(1)
			} else if addr, err := netip.ParseAddrPort(string(wb.b[joinFrameMin : joinFrameMin+alen])); err != nil {
				d.decodeErrors.Add(1)
			} else {
				d.lv.handleJoin(ep.rank, from, inc, addr)
			}
		}
		wb.release()
		return
	}
	d.deliverParsed(ep, wb, wb.b)
}

// datagramIter walks the wire messages packed in one frameSingle or
// frameBatch frame without allocating. After next returns false, err
// reports whether the walk ended on a corrupt frame.
type datagramIter struct {
	b      []byte
	off    int
	count  int // messages remaining
	single bool
	err    error
}

// parseDatagram validates a frame header and returns an iterator over its
// messages. It accepts exactly the frames the senders in this file emit
// (after reliability unwrapping); anything else yields an error.
func parseDatagram(frame []byte) datagramIter {
	if len(frame) < 1 {
		return datagramIter{err: errors.New("gasnet: empty datagram")}
	}
	switch frame[0] {
	case frameSingle:
		return datagramIter{b: frame, off: 1, count: 1, single: true}
	case frameBatch:
		if len(frame) < batchHeaderLen {
			return datagramIter{err: errors.New("gasnet: truncated batch datagram")}
		}
		count := int(binary.LittleEndian.Uint16(frame[1:3]))
		if count == 0 {
			return datagramIter{err: errors.New("gasnet: empty batch datagram")}
		}
		return datagramIter{b: frame, off: batchHeaderLen, count: count}
	default:
		return datagramIter{err: fmt.Errorf("gasnet: unknown frame tag %#x", frame[0])}
	}
}

// next decodes the next packed message. The returned message's Payload
// aliases the frame bytes.
func (it *datagramIter) next() (Msg, bool) {
	if it.err != nil || it.count == 0 {
		return Msg{}, false
	}
	var body []byte
	if it.single {
		body = it.b[it.off:]
		it.off = len(it.b)
	} else {
		if it.off+4 > len(it.b) {
			it.err = errors.New("gasnet: truncated batch datagram")
			return Msg{}, false
		}
		l := int(binary.LittleEndian.Uint32(it.b[it.off:]))
		it.off += 4
		if l > len(it.b)-it.off {
			it.err = errors.New("gasnet: truncated batch entry")
			return Msg{}, false
		}
		body = it.b[it.off : it.off+l]
		it.off += l
	}
	m, err := decodeMsg(body)
	if err != nil {
		it.err = err
		return Msg{}, false
	}
	it.count--
	return m, true
}

// deliverParsed decodes one frameSingle/frameBatch frame (whose bytes live
// in wb) and pushes its message(s) into ep's inbox, taking ownership of
// wb. Corrupt frames are counted and dropped — a valid prefix of a batch
// is still delivered; the datagram is already past the kernel, so partial
// delivery is indistinguishable from partial loss, which the reliability
// layer never produces and raw mode never promised against.
func (d *Domain) deliverParsed(ep *Endpoint, wb *wireBuf, frame []byte) {
	it := parseDatagram(frame)
	pushed := 0
	for {
		m, ok := it.next()
		if !ok {
			break
		}
		if pushed > 0 {
			wb.retain(1) // one reference per packed message
		}
		m.buf = wb
		ep.inbox.push(m)
		pushed++
	}
	if it.err != nil {
		d.decodeErrors.Add(1)
	}
	if pushed == 0 {
		wb.release()
		return
	}
	ep.notify()
}

// sendUDP ships one wire message to the target rank's socket as a
// frameSingle datagram (sequenced under the reliability layer), staging
// the encoding in a pooled buffer.
func (d *Domain) sendUDP(from, to int, m *Msg) {
	hdr := 0
	if d.rel != nil {
		hdr = relHeaderLen
	}
	need := hdr + 1 + wireHeaderLen + len(m.Payload)
	if need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := d.arena.get(need)
	wire := append(wb.b[:hdr], frameSingle)
	wire = appendMsg(wire, m)
	wb.b = wire
	if d.rel != nil {
		d.rel.send(from, to, wb)
	} else {
		d.writeDatagram(from, to, wire)
	}
	wb.release()
}

// writeDatagram counts and ships one logical datagram (a first
// transmission). Retransmissions and standalone acks go through writeFrame
// directly and keep their own counters, so DatagramsSent stays the
// coalescing cost model (datagrams the protocol decided to send) rather
// than a wire-traffic tally.
func (d *Domain) writeDatagram(from, to int, frame []byte) {
	d.datagramsSent.Add(1)
	d.writeFrame(from, to, frame)
}

// writeFrame puts one frame on the wire.
func (d *Domain) writeFrame(from, to int, frame []byte) {
	conn := d.udp.send[from]
	if _, err := conn.WriteToUDPAddrPort(frame, d.udp.addrOf(to)); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return // racing shutdown; message loss is fine post-Close
		}
		if d.cfg.Multiproc {
			// A real network: a failed write (a dead peer's ICMP-refused
			// port, transient ENOBUFS) is wire loss — the reliability
			// layer repairs it or, persisting, the liveness machine
			// attributes it. In-process loopback worlds keep the panic: a
			// failed write there is a program bug, not weather.
			d.sendErrors.Add(1)
			return
		}
		panic(fmt.Sprintf("gasnet: udp send failed: %v", err))
	}
}

// writeBatch counts and ships a set of staged first-transmission
// datagrams through the sender's vectorized write path — one sendmmsg on
// capable platforms, however many frames are staged.
func (d *Domain) writeBatch(from int, frames []batchFrame) {
	d.datagramsSent.Add(int64(len(frames)))
	if err := d.udp.send[from].WriteBatch(frames); err != nil {
		if errors.Is(err, net.ErrClosed) || d.udp.isClosed() {
			return // racing shutdown; message loss is fine post-Close
		}
		if d.cfg.Multiproc {
			// Treated as loss of the unwritten tail (see writeFrame): the
			// reliability layer retransmits whatever the peer never saw.
			d.sendErrors.Add(1)
			return
		}
		panic(fmt.Sprintf("gasnet: udp batch send failed: %v", err))
	}
}

// --- sender-side coalescing ---

// coalescer accumulates small wire messages per destination rank during a
// send burst (Endpoint.BeginBurst/EndBurst), packing them into frameBatch
// datagrams so a fan-in of k tokens costs one syscall instead of k. State
// is owned by the endpoint's goroutine, like the rest of the send path.
// Under the reliability layer the whole batch rides inside one sequenced
// frame and is retransmitted as a unit.
type coalescer struct {
	bufs   []*wireBuf // per destination; nil when no pending batch
	counts []int      // messages packed per destination
	dirty  []int      // destinations with pending data, in first-use order
}

func newCoalescer(ranks int) *coalescer {
	return &coalescer{
		bufs:   make([]*wireBuf, ranks),
		counts: make([]int, ranks),
	}
}

// pending reports whether any destination has unflushed messages.
func (c *coalescer) pending() bool { return len(c.dirty) > 0 }

// relHdrLen is the per-datagram framing overhead of the reliability layer
// for this domain (zero in raw mode).
func (d *Domain) relHdrLen() int {
	if d.rel != nil {
		return relHeaderLen
	}
	return 0
}

// add packs m for destination to, flushing the destination first if the
// message would overflow the datagram. Oversized single messages panic,
// matching the non-coalesced path.
func (ep *Endpoint) coalesce(to int, m *Msg) {
	c := ep.co
	hdr := ep.dom.relHdrLen()
	need := 4 + wireHeaderLen + len(m.Payload)
	if hdr+batchHeaderLen+need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := c.bufs[to]
	if wb != nil && (len(wb.b)+need > maxUDPPayload || c.counts[to] == 1<<16-1) {
		// The overflowing split is staged, not written: it rides the same
		// vectorized write as the rest of the burst at EndBurst.
		ep.stageDest(to)
		wb = nil
	}
	if wb == nil {
		wb = ep.dom.arena.get(bufClassLarge)
		// Reserve the (garbage for now) reliability header; the batch
		// count is patched at flush, the header at seqSend.
		wb.b = append(wb.b[:hdr], frameBatch, 0, 0)
		c.bufs[to] = wb
		c.dirty = append(c.dirty, to)
	}
	lenOff := len(wb.b)
	wb.b = append(wb.b, 0, 0, 0, 0)
	wb.b = appendMsg(wb.b, m)
	binary.LittleEndian.PutUint32(wb.b[lenOff:], uint32(len(wb.b)-lenOff-4))
	c.counts[to]++
}

// stageDest seals destination to's pending batch — stamping the batch
// count, and under the reliability layer the sequence header plus a slot
// in the retransmit queue — and stages the frame on the endpoint's send
// queue instead of writing it, so EndBurst ships every destination's
// frame in one vectorized write. The caller's buffer reference travels
// with the staged frame and is released by flushStaged after the write;
// the retransmit queue holds its own reference, exactly as on the
// immediate-write path.
func (ep *Endpoint) stageDest(to int) {
	c := ep.co
	wb := c.bufs[to]
	if wb == nil {
		return
	}
	d := ep.dom
	hdr := d.relHdrLen()
	count := c.counts[to]
	c.bufs[to] = nil
	c.counts[to] = 0
	binary.LittleEndian.PutUint16(wb.b[hdr+1:hdr+3], uint16(count))
	if count > 1 {
		d.coalescedBatches.Add(1)
		d.coalescedMsgs.Add(int64(count))
	}
	if d.rel != nil {
		spin := 0
		for {
			ok, full := d.rel.trySeal(ep.rank, to, wb)
			if ok {
				break
			}
			if !full {
				// Shutdown or down peer: the frame is dropped, exactly as
				// rel.send would drop it.
				wb.release()
				return
			}
			// The congestion window is full — and the frames already
			// staged but unwritten may be why no acknowledgments are
			// coming. Ship them so the window can drain, then wait like
			// rel.send's backstop.
			ep.flushStaged()
			if spin < 4 {
				spin++
				runtime.Gosched()
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	ep.sendq = append(ep.sendq, batchFrame{b: wb.b, addr: d.udp.addrOf(to), wb: wb})
}

// flushStaged ships every staged frame in one vectorized write and
// releases the staged buffer references.
func (ep *Endpoint) flushStaged() {
	if len(ep.sendq) == 0 {
		return
	}
	ep.dom.writeBatch(ep.rank, ep.sendq)
	for i := range ep.sendq {
		ep.sendq[i].wb.release()
		ep.sendq[i] = batchFrame{}
	}
	ep.sendq = ep.sendq[:0]
}

// flushSends stages every pending coalesced batch, then ships the staged
// set in one vectorized write.
func (ep *Endpoint) flushSends() {
	c := ep.co
	if c == nil {
		return
	}
	for _, to := range c.dirty {
		ep.stageDest(to)
	}
	c.dirty = c.dirty[:0]
	ep.flushStaged()
}

// BeginBurst opens an injection burst: until the matching EndBurst, small
// wire messages to a common destination are coalesced into one datagram on
// the UDP conduit. Bursts nest; delivery of the buffered messages happens
// at the outermost EndBurst (in-memory conduits deliver immediately, so
// bursts are free no-ops there). Bursts must not contain polls or blocking
// waits — they bracket pure injection loops, e.g. a collective's fan-out
// of tokens.
func (ep *Endpoint) BeginBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.co == nil {
		ep.co = newCoalescer(ep.dom.cfg.Ranks)
	}
	ep.burst++
}

// EndBurst closes an injection burst, flushing all coalesced messages when
// the outermost burst ends.
func (ep *Endpoint) EndBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.burst == 0 {
		panic("gasnet: EndBurst without matching BeginBurst")
	}
	ep.burst--
	if ep.burst == 0 {
		ep.flushSends()
	}
}

// isClosed reports whether close has begun; the reader and batch-write
// paths use it to distinguish a racing shutdown from a genuine socket
// error.
func (tr *udpTransport) isClosed() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.closed
}

// close shuts down the sockets and waits for the reader goroutines.
func (tr *udpTransport) close() {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.closed = true
	tr.mu.Unlock()
	for _, c := range tr.conns {
		if c != nil {
			c.Close()
		}
	}
	tr.wg.Wait()
}

// sendBye announces this process's graceful departure to every peer it
// still considers alive — best-effort raw departure frames (unsequenced:
// the reliability state is about to be torn down, and a lost bye only
// means the peer falls back to the DownAfter silence timer). Multiproc
// worlds only; in-process worlds tear every rank down together.
func (d *Domain) sendBye() {
	if d.udp == nil || !d.cfg.Multiproc || d.udp.isClosed() {
		return
	}
	self := d.cfg.Self
	var frame [byeFrameLen]byte
	frame[0] = frameBye
	binary.LittleEndian.PutUint16(frame[1:3], uint16(self))
	binary.LittleEndian.PutUint32(frame[3:7], d.inc)
	for to := 0; to < d.cfg.Ranks; to++ {
		if to == self || (d.lv != nil && d.lv.down(self, to)) {
			continue
		}
		d.writeFrame(self, to, frame[:])
	}
}

// Close releases conduit resources: the reliability ticker, the UDP
// sockets and reader goroutines, and any buffers still parked in
// retransmission or reorder queues. It is idempotent and a no-op for the
// in-memory conduits. Endpoints must not be driven after Close. In a
// multiproc world, departure is announced to the surviving peers first
// (sendBye), integrating graceful teardown with the liveness machine.
func (d *Domain) Close() {
	d.sendBye()
	if d.rel != nil {
		d.rel.shutdown()
	}
	if d.udp != nil {
		d.udp.close()
	}
	if d.rel != nil {
		d.rel.drainState()
	}
}
