package gasnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// The UDP conduit models the paper's non-Intel configurations (§IV): the
// job runs on one node with process-shared memory — every rank has direct
// load/store access to every segment, so all RMA and atomic data movement
// is performed through shared memory and completes synchronously — while
// active messages (collective tokens, RPC acknowledgments, and the
// internal protocol, should it ever fire) travel over real UDP datagrams
// on the loopback interface.
//
// One honest deviation from a multi-process runtime is documented in
// DESIGN.md: closure-carrying messages (user RPC bodies, remote
// completions) cannot be serialized onto a socket in Go, so they are
// delivered through the in-memory queue. This is sound because UDP-conduit
// jobs are single-address-space by construction, exactly like the paper's
// single-node UDP runs; wire-encodable messages genuinely round-trip
// through the kernel.

// maxUDPPayload bounds the wire size of one active message. Collective
// tokens and protocol messages are far below this; oversized payloads are
// a programming error on this conduit.
const maxUDPPayload = 60 << 10

// udpTransport is the per-domain socket state for the UDP conduit.
type udpTransport struct {
	conns []*net.UDPConn
	addrs []*net.UDPAddr
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// initUDP binds one loopback socket per rank and starts its reader
// goroutine, which decodes datagrams into the owning endpoint's inbox.
func (d *Domain) initUDP() error {
	tr := &udpTransport{}
	for r := 0; r < d.cfg.Ranks; r++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.close()
			return fmt.Errorf("gasnet: udp conduit: %w", err)
		}
		// A generous receive buffer: collective fan-ins burst many small
		// datagrams at one socket, and loopback UDP drops on overflow.
		_ = conn.SetReadBuffer(4 << 20)
		tr.conns = append(tr.conns, conn)
		tr.addrs = append(tr.addrs, conn.LocalAddr().(*net.UDPAddr))
	}
	for r := 0; r < d.cfg.Ranks; r++ {
		ep := d.eps[r]
		conn := tr.conns[r]
		tr.wg.Add(1)
		go func() {
			defer tr.wg.Done()
			buf := make([]byte, maxUDPPayload+128)
			for {
				n, _, err := conn.ReadFromUDP(buf)
				if err != nil {
					if errors.Is(err, net.ErrClosed) {
						return
					}
					// Transient errors on loopback are unexpected but
					// not fatal; keep serving.
					continue
				}
				wire := make([]byte, n)
				copy(wire, buf[:n])
				m, err := decodeMsg(wire)
				if err != nil {
					panic(fmt.Sprintf("gasnet: udp conduit received undecodable datagram: %v", err))
				}
				ep.inbox.push(m)
				ep.notify()
			}
		}()
	}
	d.udp = tr
	return nil
}

// sendUDP ships a wire message to the target rank's socket.
func (d *Domain) sendUDP(from, to int, m *Msg) {
	wire := encodeMsg(nil, m)
	if len(wire) > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	conn := d.udp.conns[from]
	if _, err := conn.WriteToUDP(wire, d.udp.addrs[to]); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return // racing shutdown; message loss is fine post-Close
		}
		panic(fmt.Sprintf("gasnet: udp send failed: %v", err))
	}
}

// close shuts down the sockets and waits for the reader goroutines.
func (tr *udpTransport) close() {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.closed = true
	tr.mu.Unlock()
	for _, c := range tr.conns {
		if c != nil {
			c.Close()
		}
	}
	tr.wg.Wait()
}

// Close releases conduit resources (UDP sockets and reader goroutines).
// It is idempotent and a no-op for the in-memory conduits. Endpoints must
// not be driven after Close.
func (d *Domain) Close() {
	if d.udp != nil {
		d.udp.close()
	}
}
