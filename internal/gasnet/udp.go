package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
)

// The UDP conduit models the paper's non-Intel configurations (§IV): the
// job runs on one node with process-shared memory — every rank has direct
// load/store access to every segment, so all RMA and atomic data movement
// is performed through shared memory and completes synchronously — while
// active messages (collective tokens, RPC acknowledgments, and the
// internal protocol, should it ever fire) travel over real UDP datagrams
// on the loopback interface.
//
// One honest deviation from a multi-process runtime is documented in
// DESIGN.md: closure-carrying messages (user RPC bodies, remote
// completions) cannot be serialized onto a socket in Go, so they are
// delivered through the in-memory queue. This is sound because UDP-conduit
// jobs are single-address-space by construction, exactly like the paper's
// single-node UDP runs; wire-encodable messages genuinely round-trip
// through the kernel.
//
// Every datagram starts with a one-byte frame tag. frameSingle carries one
// wire message; frameBatch carries several small messages coalesced by the
// sender (see Endpoint.BeginBurst), packed as:
//
//	[frameBatch u8] [count u16 LE] count × { [len u32 LE] [encodeMsg bytes] }
//
// The receiver unpacks a batch into individual inbox messages that all
// share (and reference-count) the datagram's pooled buffer.

// maxUDPPayload bounds the wire size of one datagram. Collective tokens
// and protocol messages are far below this; oversized payloads are a
// programming error on this conduit.
const maxUDPPayload = 60 << 10

// Datagram frame tags.
const (
	frameSingle = 0x01
	frameBatch  = 0x02
)

// batchHeaderLen is the fixed prefix of a frameBatch datagram; each packed
// message adds a 4-byte length prefix on top of its encoding.
const batchHeaderLen = 1 + 2

// udpTransport is the per-domain socket state for the UDP conduit.
type udpTransport struct {
	conns []*net.UDPConn
	// addrs holds each rank's socket address as a value type so the send
	// path (WriteToUDPAddrPort) performs no per-datagram allocation.
	addrs []netip.AddrPort
	wg    sync.WaitGroup

	// rbufErr records the first SetReadBuffer failure (logged once at
	// init): without the enlarged kernel buffer, loopback bursts drop
	// datagrams, and this is the breadcrumb that makes such environments
	// diagnosable.
	rbufErr error

	mu     sync.Mutex
	closed bool
}

// initUDP binds one loopback socket per rank and starts its reader
// goroutine, which decodes datagrams into the owning endpoint's inbox.
func (d *Domain) initUDP() error {
	tr := &udpTransport{}
	for r := 0; r < d.cfg.Ranks; r++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.close()
			return fmt.Errorf("gasnet: udp conduit: %w", err)
		}
		// A generous receive buffer: collective fan-ins burst many small
		// datagrams at one socket, and loopback UDP drops on overflow.
		if err := conn.SetReadBuffer(4 << 20); err != nil && tr.rbufErr == nil {
			tr.rbufErr = err
			log.Printf("gasnet: udp conduit: SetReadBuffer(4MiB) failed (%v); "+
				"bursty collectives may drop datagrams on this host", err)
		}
		tr.conns = append(tr.conns, conn)
		tr.addrs = append(tr.addrs, conn.LocalAddr().(*net.UDPAddr).AddrPort())
	}
	for r := 0; r < d.cfg.Ranks; r++ {
		ep := d.eps[r]
		conn := tr.conns[r]
		tr.wg.Add(1)
		go func() {
			defer tr.wg.Done()
			for {
				// Read straight into a pooled buffer: the decoded
				// messages alias it and release it after dispatch, so
				// the steady-state receive path allocates nothing.
				wb := d.arena.get(bufClassLarge)
				n, _, err := conn.ReadFromUDPAddrPort(wb.b)
				if err != nil {
					wb.release()
					if errors.Is(err, net.ErrClosed) {
						return
					}
					// Transient errors on loopback are unexpected but
					// not fatal; keep serving.
					continue
				}
				d.deliverDatagram(ep, wb, n)
			}
		}()
	}
	d.udp = tr
	return nil
}

// deliverDatagram parses one received datagram (whose bytes live in wb)
// and pushes its message(s) into ep's inbox. Ownership of wb transfers to
// the pushed messages.
func (d *Domain) deliverDatagram(ep *Endpoint, wb *wireBuf, n int) {
	if n < 1 {
		wb.release()
		panic("gasnet: udp conduit received empty datagram")
	}
	b := wb.b[:n]
	switch b[0] {
	case frameSingle:
		m, err := decodeMsg(b[1:])
		if err != nil {
			panic(fmt.Sprintf("gasnet: udp conduit received undecodable datagram: %v", err))
		}
		m.buf = wb
		ep.inbox.push(m)
	case frameBatch:
		if len(b) < batchHeaderLen {
			panic("gasnet: udp conduit received truncated batch datagram")
		}
		count := int(binary.LittleEndian.Uint16(b[1:3]))
		if count == 0 {
			panic("gasnet: udp conduit received empty batch datagram")
		}
		// One reference per packed message (we hold one already).
		wb.retain(int32(count) - 1)
		off := batchHeaderLen
		for i := 0; i < count; i++ {
			if off+4 > len(b) {
				panic("gasnet: udp conduit received truncated batch datagram")
			}
			l := int(binary.LittleEndian.Uint32(b[off : off+4]))
			off += 4
			if off+l > len(b) {
				panic("gasnet: udp conduit received truncated batch datagram")
			}
			m, err := decodeMsg(b[off : off+l])
			if err != nil {
				panic(fmt.Sprintf("gasnet: udp conduit received undecodable batch entry: %v", err))
			}
			off += l
			m.buf = wb
			ep.inbox.push(m)
		}
	default:
		panic(fmt.Sprintf("gasnet: udp conduit received unknown frame tag %#x", b[0]))
	}
	ep.notify()
}

// sendUDP ships one wire message to the target rank's socket as a
// frameSingle datagram, staging the encoding in a pooled buffer.
func (d *Domain) sendUDP(from, to int, m *Msg) {
	need := 1 + wireHeaderLen + len(m.Payload)
	if need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := d.arena.get(need)
	wire := append(wb.b[:0], frameSingle)
	wire = appendMsg(wire, m)
	d.writeDatagram(from, to, wire)
	wb.release()
}

// writeDatagram puts one frame on the wire and counts it.
func (d *Domain) writeDatagram(from, to int, frame []byte) {
	d.datagramsSent.Add(1)
	conn := d.udp.conns[from]
	if _, err := conn.WriteToUDPAddrPort(frame, d.udp.addrs[to]); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return // racing shutdown; message loss is fine post-Close
		}
		panic(fmt.Sprintf("gasnet: udp send failed: %v", err))
	}
}

// --- sender-side coalescing ---

// coalescer accumulates small wire messages per destination rank during a
// send burst (Endpoint.BeginBurst/EndBurst), packing them into frameBatch
// datagrams so a fan-in of k tokens costs one syscall instead of k. State
// is owned by the endpoint's goroutine, like the rest of the send path.
type coalescer struct {
	bufs   []*wireBuf // per destination; nil when no pending batch
	counts []int      // messages packed per destination
	dirty  []int      // destinations with pending data, in first-use order
}

func newCoalescer(ranks int) *coalescer {
	return &coalescer{
		bufs:   make([]*wireBuf, ranks),
		counts: make([]int, ranks),
	}
}

// pending reports whether any destination has unflushed messages.
func (c *coalescer) pending() bool { return len(c.dirty) > 0 }

// add packs m for destination to, flushing the destination first if the
// message would overflow the datagram. Oversized single messages panic,
// matching the non-coalesced path.
func (ep *Endpoint) coalesce(to int, m *Msg) {
	c := ep.co
	need := 4 + wireHeaderLen + len(m.Payload)
	if batchHeaderLen+need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := c.bufs[to]
	if wb != nil && (len(wb.b)+need > maxUDPPayload || c.counts[to] == 1<<16-1) {
		ep.flushDest(to)
		wb = nil
	}
	if wb == nil {
		wb = ep.dom.arena.get(bufClassLarge)
		wb.b = append(wb.b[:0], frameBatch, 0, 0) // count patched at flush
		c.bufs[to] = wb
		c.dirty = append(c.dirty, to)
	}
	lenOff := len(wb.b)
	wb.b = append(wb.b, 0, 0, 0, 0)
	wb.b = appendMsg(wb.b, m)
	binary.LittleEndian.PutUint32(wb.b[lenOff:], uint32(len(wb.b)-lenOff-4))
	c.counts[to]++
}

// flushDest ships destination to's pending batch, if any.
func (ep *Endpoint) flushDest(to int) {
	c := ep.co
	wb := c.bufs[to]
	if wb == nil {
		return
	}
	count := c.counts[to]
	c.bufs[to] = nil
	c.counts[to] = 0
	binary.LittleEndian.PutUint16(wb.b[1:3], uint16(count))
	if count > 1 {
		ep.dom.coalescedBatches.Add(1)
		ep.dom.coalescedMsgs.Add(int64(count))
	}
	ep.dom.writeDatagram(ep.rank, to, wb.b)
	wb.release()
}

// flushSends ships every pending coalesced batch.
func (ep *Endpoint) flushSends() {
	c := ep.co
	if c == nil {
		return
	}
	for _, to := range c.dirty {
		ep.flushDest(to)
	}
	c.dirty = c.dirty[:0]
}

// BeginBurst opens an injection burst: until the matching EndBurst, small
// wire messages to a common destination are coalesced into one datagram on
// the UDP conduit. Bursts nest; delivery of the buffered messages happens
// at the outermost EndBurst (in-memory conduits deliver immediately, so
// bursts are free no-ops there). Bursts must not contain polls or blocking
// waits — they bracket pure injection loops, e.g. a collective's fan-out
// of tokens.
func (ep *Endpoint) BeginBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.co == nil {
		ep.co = newCoalescer(ep.dom.cfg.Ranks)
	}
	ep.burst++
}

// EndBurst closes an injection burst, flushing all coalesced messages when
// the outermost burst ends.
func (ep *Endpoint) EndBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.burst == 0 {
		panic("gasnet: EndBurst without matching BeginBurst")
	}
	ep.burst--
	if ep.burst == 0 {
		ep.flushSends()
	}
}

// close shuts down the sockets and waits for the reader goroutines.
func (tr *udpTransport) close() {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.closed = true
	tr.mu.Unlock()
	for _, c := range tr.conns {
		if c != nil {
			c.Close()
		}
	}
	tr.wg.Wait()
}

// Close releases conduit resources (UDP sockets and reader goroutines).
// It is idempotent and a no-op for the in-memory conduits. Endpoints must
// not be driven after Close.
func (d *Domain) Close() {
	if d.udp != nil {
		d.udp.close()
	}
}
