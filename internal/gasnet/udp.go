package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
)

// The UDP conduit models the paper's non-Intel configurations (§IV): the
// job runs on one node with process-shared memory — every rank has direct
// load/store access to every segment, so all RMA and atomic data movement
// is performed through shared memory and completes synchronously — while
// active messages (collective tokens, RPC acknowledgments, and the
// internal protocol, should it ever fire) travel over real UDP datagrams
// on the loopback interface.
//
// One honest deviation from a multi-process runtime is documented in
// DESIGN.md: closure-carrying messages (user RPC bodies, remote
// completions) cannot be serialized onto a socket in Go, so they are
// delivered through the in-memory queue. This is sound because UDP-conduit
// jobs are single-address-space by construction, exactly like the paper's
// single-node UDP runs; wire-encodable messages genuinely round-trip
// through the kernel.
//
// Every datagram starts with a one-byte frame tag. frameSingle carries one
// wire message; frameBatch carries several small messages coalesced by the
// sender (see Endpoint.BeginBurst), packed as:
//
//	[frameBatch u8] [count u16 LE] count × { [len u32 LE] [encodeMsg bytes] }
//
// frameSeq wraps either of the above in the reliability layer's sequenced
// header (see reliable.go) — the default on this conduit; raw frames are
// only emitted under Config.UDPUnreliable. The receiver unpacks a batch
// into individual inbox messages that all share (and reference-count) the
// datagram's pooled buffer.
//
// The receive path never trusts the kernel-delivered bytes: truncated or
// corrupt frames of any kind are counted (Stats.DecodeErrors) and dropped,
// exercised by FuzzDecodeDatagram.

// maxUDPPayload bounds the wire size of one datagram. Collective tokens
// and protocol messages are far below this; oversized payloads are a
// programming error on this conduit.
const maxUDPPayload = 60 << 10

// Datagram frame tags.
const (
	frameSingle = 0x01
	frameBatch  = 0x02
	frameSeq    = 0x03 // reliability framing; see reliable.go
	frameHB     = 0x04 // liveness heartbeat; see liveness.go
)

// batchHeaderLen is the fixed prefix of a frameBatch datagram; each packed
// message adds a 4-byte length prefix on top of its encoding.
const batchHeaderLen = 1 + 2

// udpTransport is the per-domain socket state for the UDP conduit.
type udpTransport struct {
	conns []*net.UDPConn
	// send is the per-rank write path: the raw socket, or a fault-injecting
	// wrapper around it when Config.Fault is set.
	send []packetConn
	// addrs holds each rank's socket address as a value type so the send
	// path (WriteToUDPAddrPort) performs no per-datagram allocation.
	addrs []netip.AddrPort
	wg    sync.WaitGroup

	// rbufErr records the first SetReadBuffer failure (logged once at
	// init, surfaced via Domain.RbufErr): without the enlarged kernel
	// buffer, loopback bursts drop datagrams, and this is the breadcrumb
	// that makes such environments diagnosable.
	rbufErr error

	mu     sync.Mutex
	closed bool
}

// initUDP binds one loopback socket per rank and starts its reader
// goroutine, which decodes datagrams into the owning endpoint's inbox.
func (d *Domain) initUDP() error {
	tr := &udpTransport{}
	for r := 0; r < d.cfg.Ranks; r++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			tr.close()
			return fmt.Errorf("gasnet: udp conduit: %w", err)
		}
		// A generous receive buffer: collective fan-ins burst many small
		// datagrams at one socket, and loopback UDP drops on overflow.
		if err := conn.SetReadBuffer(4 << 20); err != nil && tr.rbufErr == nil {
			tr.rbufErr = err
			log.Printf("gasnet: udp conduit: SetReadBuffer(4MiB) failed (%v); "+
				"bursty collectives may drop datagrams on this host", err)
		}
		tr.conns = append(tr.conns, conn)
		var pc packetConn = conn
		if d.cfg.Fault != nil {
			pc = newFaultConn(conn, *d.cfg.Fault, r, &d.faultsInjected)
		}
		tr.send = append(tr.send, pc)
		tr.addrs = append(tr.addrs, conn.LocalAddr().(*net.UDPAddr).AddrPort())
	}
	d.udp = tr
	if !d.cfg.UDPUnreliable {
		// The detector must exist before the reliability ticker starts
		// (newReliability captures it), so exhaustion events observed on
		// the very first sweep already have somewhere to go.
		if !d.cfg.DisableLiveness {
			d.lv = newLiveness(d, clockRefresh())
		}
		d.rel = newReliability(d)
	}
	for r := 0; r < d.cfg.Ranks; r++ {
		ep := d.eps[r]
		conn := tr.conns[r]
		tr.wg.Add(1)
		go func() {
			defer tr.wg.Done()
			for {
				// Read straight into a pooled buffer: the decoded
				// messages alias it and release it after dispatch, so
				// the steady-state receive path allocates nothing.
				wb := d.arena.get(bufClassLarge)
				n, _, err := conn.ReadFromUDPAddrPort(wb.b)
				if err != nil {
					wb.release()
					if errors.Is(err, net.ErrClosed) {
						return
					}
					// Transient errors on loopback are unexpected but
					// not fatal; keep serving.
					continue
				}
				wb.b = wb.b[:n]
				d.receiveDatagram(ep, wb)
			}
		}()
	}
	return nil
}

// receiveDatagram routes one received datagram (whose bytes are wb.b) to
// the reliability layer or straight to frame delivery, taking ownership
// of wb.
func (d *Domain) receiveDatagram(ep *Endpoint, wb *wireBuf) {
	if len(wb.b) >= 1 && wb.b[0] == frameSeq && d.rel != nil {
		d.rel.receive(ep, wb)
		return
	}
	if len(wb.b) >= 1 && wb.b[0] == frameHB {
		if d.lv != nil && len(wb.b) >= hbFrameLen {
			from := int(binary.LittleEndian.Uint16(wb.b[1:3]))
			if from < d.cfg.Ranks {
				d.lv.heard(ep.rank, from)
			}
		}
		wb.release()
		return
	}
	d.deliverParsed(ep, wb, wb.b)
}

// datagramIter walks the wire messages packed in one frameSingle or
// frameBatch frame without allocating. After next returns false, err
// reports whether the walk ended on a corrupt frame.
type datagramIter struct {
	b      []byte
	off    int
	count  int // messages remaining
	single bool
	err    error
}

// parseDatagram validates a frame header and returns an iterator over its
// messages. It accepts exactly the frames the senders in this file emit
// (after reliability unwrapping); anything else yields an error.
func parseDatagram(frame []byte) datagramIter {
	if len(frame) < 1 {
		return datagramIter{err: errors.New("gasnet: empty datagram")}
	}
	switch frame[0] {
	case frameSingle:
		return datagramIter{b: frame, off: 1, count: 1, single: true}
	case frameBatch:
		if len(frame) < batchHeaderLen {
			return datagramIter{err: errors.New("gasnet: truncated batch datagram")}
		}
		count := int(binary.LittleEndian.Uint16(frame[1:3]))
		if count == 0 {
			return datagramIter{err: errors.New("gasnet: empty batch datagram")}
		}
		return datagramIter{b: frame, off: batchHeaderLen, count: count}
	default:
		return datagramIter{err: fmt.Errorf("gasnet: unknown frame tag %#x", frame[0])}
	}
}

// next decodes the next packed message. The returned message's Payload
// aliases the frame bytes.
func (it *datagramIter) next() (Msg, bool) {
	if it.err != nil || it.count == 0 {
		return Msg{}, false
	}
	var body []byte
	if it.single {
		body = it.b[it.off:]
		it.off = len(it.b)
	} else {
		if it.off+4 > len(it.b) {
			it.err = errors.New("gasnet: truncated batch datagram")
			return Msg{}, false
		}
		l := int(binary.LittleEndian.Uint32(it.b[it.off:]))
		it.off += 4
		if l > len(it.b)-it.off {
			it.err = errors.New("gasnet: truncated batch entry")
			return Msg{}, false
		}
		body = it.b[it.off : it.off+l]
		it.off += l
	}
	m, err := decodeMsg(body)
	if err != nil {
		it.err = err
		return Msg{}, false
	}
	it.count--
	return m, true
}

// deliverParsed decodes one frameSingle/frameBatch frame (whose bytes live
// in wb) and pushes its message(s) into ep's inbox, taking ownership of
// wb. Corrupt frames are counted and dropped — a valid prefix of a batch
// is still delivered; the datagram is already past the kernel, so partial
// delivery is indistinguishable from partial loss, which the reliability
// layer never produces and raw mode never promised against.
func (d *Domain) deliverParsed(ep *Endpoint, wb *wireBuf, frame []byte) {
	it := parseDatagram(frame)
	pushed := 0
	for {
		m, ok := it.next()
		if !ok {
			break
		}
		if pushed > 0 {
			wb.retain(1) // one reference per packed message
		}
		m.buf = wb
		ep.inbox.push(m)
		pushed++
	}
	if it.err != nil {
		d.decodeErrors.Add(1)
	}
	if pushed == 0 {
		wb.release()
		return
	}
	ep.notify()
}

// sendUDP ships one wire message to the target rank's socket as a
// frameSingle datagram (sequenced under the reliability layer), staging
// the encoding in a pooled buffer.
func (d *Domain) sendUDP(from, to int, m *Msg) {
	hdr := 0
	if d.rel != nil {
		hdr = relHeaderLen
	}
	need := hdr + 1 + wireHeaderLen + len(m.Payload)
	if need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := d.arena.get(need)
	wire := append(wb.b[:hdr], frameSingle)
	wire = appendMsg(wire, m)
	wb.b = wire
	if d.rel != nil {
		d.rel.send(from, to, wb)
	} else {
		d.writeDatagram(from, to, wire)
	}
	wb.release()
}

// writeDatagram counts and ships one logical datagram (a first
// transmission). Retransmissions and standalone acks go through writeFrame
// directly and keep their own counters, so DatagramsSent stays the
// coalescing cost model (datagrams the protocol decided to send) rather
// than a wire-traffic tally.
func (d *Domain) writeDatagram(from, to int, frame []byte) {
	d.datagramsSent.Add(1)
	d.writeFrame(from, to, frame)
}

// writeFrame puts one frame on the wire.
func (d *Domain) writeFrame(from, to int, frame []byte) {
	conn := d.udp.send[from]
	if _, err := conn.WriteToUDPAddrPort(frame, d.udp.addrs[to]); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return // racing shutdown; message loss is fine post-Close
		}
		panic(fmt.Sprintf("gasnet: udp send failed: %v", err))
	}
}

// --- sender-side coalescing ---

// coalescer accumulates small wire messages per destination rank during a
// send burst (Endpoint.BeginBurst/EndBurst), packing them into frameBatch
// datagrams so a fan-in of k tokens costs one syscall instead of k. State
// is owned by the endpoint's goroutine, like the rest of the send path.
// Under the reliability layer the whole batch rides inside one sequenced
// frame and is retransmitted as a unit.
type coalescer struct {
	bufs   []*wireBuf // per destination; nil when no pending batch
	counts []int      // messages packed per destination
	dirty  []int      // destinations with pending data, in first-use order
}

func newCoalescer(ranks int) *coalescer {
	return &coalescer{
		bufs:   make([]*wireBuf, ranks),
		counts: make([]int, ranks),
	}
}

// pending reports whether any destination has unflushed messages.
func (c *coalescer) pending() bool { return len(c.dirty) > 0 }

// relHdrLen is the per-datagram framing overhead of the reliability layer
// for this domain (zero in raw mode).
func (d *Domain) relHdrLen() int {
	if d.rel != nil {
		return relHeaderLen
	}
	return 0
}

// add packs m for destination to, flushing the destination first if the
// message would overflow the datagram. Oversized single messages panic,
// matching the non-coalesced path.
func (ep *Endpoint) coalesce(to int, m *Msg) {
	c := ep.co
	hdr := ep.dom.relHdrLen()
	need := 4 + wireHeaderLen + len(m.Payload)
	if hdr+batchHeaderLen+need > maxUDPPayload {
		panic(fmt.Sprintf("gasnet: AM payload %d bytes exceeds UDP conduit limit %d",
			len(m.Payload), maxUDPPayload))
	}
	wb := c.bufs[to]
	if wb != nil && (len(wb.b)+need > maxUDPPayload || c.counts[to] == 1<<16-1) {
		ep.flushDest(to)
		wb = nil
	}
	if wb == nil {
		wb = ep.dom.arena.get(bufClassLarge)
		// Reserve the (garbage for now) reliability header; the batch
		// count is patched at flush, the header at seqSend.
		wb.b = append(wb.b[:hdr], frameBatch, 0, 0)
		c.bufs[to] = wb
		c.dirty = append(c.dirty, to)
	}
	lenOff := len(wb.b)
	wb.b = append(wb.b, 0, 0, 0, 0)
	wb.b = appendMsg(wb.b, m)
	binary.LittleEndian.PutUint32(wb.b[lenOff:], uint32(len(wb.b)-lenOff-4))
	c.counts[to]++
}

// flushDest ships destination to's pending batch, if any.
func (ep *Endpoint) flushDest(to int) {
	c := ep.co
	wb := c.bufs[to]
	if wb == nil {
		return
	}
	d := ep.dom
	hdr := d.relHdrLen()
	count := c.counts[to]
	c.bufs[to] = nil
	c.counts[to] = 0
	binary.LittleEndian.PutUint16(wb.b[hdr+1:hdr+3], uint16(count))
	if count > 1 {
		d.coalescedBatches.Add(1)
		d.coalescedMsgs.Add(int64(count))
	}
	if d.rel != nil {
		d.rel.send(ep.rank, to, wb)
	} else {
		d.writeDatagram(ep.rank, to, wb.b)
	}
	wb.release()
}

// flushSends ships every pending coalesced batch.
func (ep *Endpoint) flushSends() {
	c := ep.co
	if c == nil {
		return
	}
	for _, to := range c.dirty {
		ep.flushDest(to)
	}
	c.dirty = c.dirty[:0]
}

// BeginBurst opens an injection burst: until the matching EndBurst, small
// wire messages to a common destination are coalesced into one datagram on
// the UDP conduit. Bursts nest; delivery of the buffered messages happens
// at the outermost EndBurst (in-memory conduits deliver immediately, so
// bursts are free no-ops there). Bursts must not contain polls or blocking
// waits — they bracket pure injection loops, e.g. a collective's fan-out
// of tokens.
func (ep *Endpoint) BeginBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.co == nil {
		ep.co = newCoalescer(ep.dom.cfg.Ranks)
	}
	ep.burst++
}

// EndBurst closes an injection burst, flushing all coalesced messages when
// the outermost burst ends.
func (ep *Endpoint) EndBurst() {
	if ep.dom.cfg.Conduit != UDP {
		return
	}
	if ep.burst == 0 {
		panic("gasnet: EndBurst without matching BeginBurst")
	}
	ep.burst--
	if ep.burst == 0 {
		ep.flushSends()
	}
}

// close shuts down the sockets and waits for the reader goroutines.
func (tr *udpTransport) close() {
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.closed = true
	tr.mu.Unlock()
	for _, c := range tr.conns {
		if c != nil {
			c.Close()
		}
	}
	tr.wg.Wait()
}

// Close releases conduit resources: the reliability ticker, the UDP
// sockets and reader goroutines, and any buffers still parked in
// retransmission or reorder queues. It is idempotent and a no-op for the
// in-memory conduits. Endpoints must not be driven after Close.
func (d *Domain) Close() {
	if d.rel != nil {
		d.rel.shutdown()
	}
	if d.udp != nil {
		d.udp.close()
	}
	if d.rel != nil {
		d.rel.drainState()
	}
}
