package gasnet

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Deterministic fault injection for the UDP conduit. The reliability layer
// (reliable.go) only earns its keep if it can be exercised without real
// packet loss, so every socket's send path goes through a packetConn that
// is ALWAYS a faultConn on UDP worlds: idle (no faults armed) it forwards
// writes behind a single atomic load, so the interposition costs nothing
// measurable; armed, it drops, duplicates, reorders, delays, and blocks
// outgoing datagrams from a seeded PRNG. Faults are injected on the send
// side only — the receive path sees exactly the loss pattern a real
// network would present — and everything a faultConn does is driven by the
// wrapped socket's own writes plus the domain ticker (delay-queue drains),
// so runs are reproducible up to goroutine interleaving.
//
// Beyond the uniform per-socket distribution (Config.Fault /
// GUPCXX_UDP_FAULT), the shim is a scriptable network model: per-
// directional-pair fault overrides (SetPairFault — asymmetric one-way
// loss), partition and heal of arbitrary rank groups (SetPartition /
// HealPartition), deterministic latency/jitter, and a phased scenario DSL
// (scenario.go, GUPCXX_UDP_SCENARIO) that drives all of the above on a
// schedule.

// packetConn is the send-path surface of a socket; faultConn implements
// it by interposing on the real (batch-capable) adapter.
type packetConn interface {
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	// WriteBatch transmits a set of staged frames — in one vectorized
	// write (sendmmsg) where the platform allows, one frame at a time
	// otherwise. Implementations must not retain any frame's bytes past
	// the call.
	WriteBatch(frames []batchFrame) error
}

// faultEnvVar names the environment variable consulted by UDP-conduit
// domains whose Config.Fault is nil, so an entire test suite can run under
// injected loss (make test-loss) without per-callsite plumbing. The value
// is a fault spec, e.g. "drop=0.25,dup=0.05,reorder=0.10,seed=7".
const faultEnvVar = "GUPCXX_UDP_FAULT"

// FaultConfig enables deterministic fault injection on the UDP conduit's
// send path. Probabilities are evaluated independently per datagram in the
// order drop, duplicate, reorder; their sum must not exceed 1.
type FaultConfig struct {
	// Seed seeds the per-socket PRNGs (each socket derives its stream from
	// Seed and its rank), making injected fault patterns reproducible.
	Seed int64

	// Drop is the probability that a datagram is silently discarded.
	Drop float64

	// Dup is the probability that a datagram is transmitted twice.
	Dup float64

	// Reorder is the probability that a datagram is held back and released
	// only after a later write on the same socket, delaying and reordering
	// it past its successors.
	Reorder float64
}

// validate reports whether the probabilities form a sensible distribution.
func (f *FaultConfig) validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"Dup", f.Dup}, {"Reorder", f.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("gasnet: fault %s probability %g outside [0,1]", p.name, p.v)
		}
	}
	if sum := f.Drop + f.Dup + f.Reorder; sum > 1 {
		return fmt.Errorf("gasnet: fault probabilities sum to %g > 1", sum)
	}
	return nil
}

// active reports whether the distribution injects anything at all.
func (f *FaultConfig) active() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Reorder > 0
}

// parseFaultSpec parses a "drop=0.25,dup=0.05,reorder=0.10,seed=7" spec.
func parseFaultSpec(spec string) (*FaultConfig, error) {
	f := &FaultConfig{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("gasnet: fault spec field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gasnet: fault spec seed %q: %w", val, err)
			}
			f.Seed = n
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("gasnet: fault spec %s %q: %w", key, val, err)
			}
			switch key {
			case "drop":
				f.Drop = p
			case "dup":
				f.Dup = p
			case "reorder":
				f.Reorder = p
			}
		default:
			return nil, fmt.Errorf("gasnet: fault spec has unknown key %q", key)
		}
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// faultFromEnv returns the FaultConfig described by GUPCXX_UDP_FAULT, or
// nil when the variable is unset or empty.
func faultFromEnv() (*FaultConfig, error) {
	spec := os.Getenv(faultEnvVar)
	if spec == "" {
		return nil, nil
	}
	f, err := parseFaultSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, faultEnvVar)
	}
	return f, nil
}

// faultMaxHeld bounds the reorder holdback queue so a run of reorder
// verdicts cannot strand unbounded copies; beyond it, datagrams pass
// through untouched.
const faultMaxHeld = 8

// faultMaxDelayed bounds the latency queue; past it, datagrams write
// through immediately rather than pile up copies (a saturated sender
// observes its own injected latency collapsing, which is the honest
// failure mode of a bounded delay line).
const faultMaxDelayed = 1024

// heldPkt is one datagram awaiting delayed release. The bytes are copied:
// the caller's buffer is pooled and reused immediately after the write.
type heldPkt struct {
	b    []byte
	addr netip.AddrPort
}

// delayedPkt is one latency-queue entry: a copied datagram due for
// transmission at a cached-clock instant, drained by the domain ticker.
type delayedPkt struct {
	b    []byte
	addr netip.AddrPort
	due  int64
}

// faultConn interposes the deterministic network model on one socket's
// send path. It is installed unconditionally on every UDP socket; the
// armed flag keeps the idle case — no faults, no partition, no latency —
// down to one atomic load and a direct forward, alloc-free. Held
// (reordered) datagrams are flushed after the next non-held write, so they
// arrive behind datagrams sent after them; delayed datagrams are released
// by the domain ticker once their due time passes. Both release paths
// re-check the partition under the lock, so packets captured before a cut
// cannot leak across it.
type faultConn struct {
	inner packetConn
	d     *Domain
	rank  int

	// armed is the fast-path gate: false means the shim is configured to
	// do nothing and writes forward directly. Updated (updateArmed) under
	// mu on every configuration change and queue transition.
	armed atomic.Bool

	mu      sync.Mutex
	cfg     FaultConfig         // base distribution (all destinations)
	pairs   map[int]FaultConfig // per-destination overrides (asymmetric loss)
	blocked map[int]bool        // partitioned destinations: every datagram dropped
	delay   int64               // injected one-way latency, ns
	jitter  int64               // uniform jitter bound on top of delay, ns
	rng     *rand.Rand
	held    []heldPkt
	delayed []delayedPkt
}

func newFaultConn(inner packetConn, cfg FaultConfig, rank int, d *Domain) *faultConn {
	f := &faultConn{
		inner: inner,
		cfg:   cfg,
		d:     d,
		rank:  rank,
		// Derive a distinct, reproducible stream per socket.
		rng: rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(rank)+0x9e3779b97f4a7c15)),
	}
	f.armed.Store(cfg.active())
	return f
}

// updateArmed recomputes the fast-path gate. Caller holds f.mu.
func (f *faultConn) updateArmed() {
	f.armed.Store(f.cfg.active() ||
		len(f.pairs) > 0 || len(f.blocked) > 0 ||
		f.delay > 0 || f.jitter > 0 ||
		len(f.held) > 0 || len(f.delayed) > 0)
}

// setConfig swaps the base fault distribution mid-run; the write path
// reads the config under f.mu, so in-flight sends see either the old or
// the new one.
func (f *faultConn) setConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.updateArmed()
	f.mu.Unlock()
}

// setPairConfig installs (or, with changes, replaces) the per-destination
// override for datagrams toward rank to. A zero config is a valid
// override: it shields the pair from the base distribution.
func (f *faultConn) setPairConfig(to int, cfg FaultConfig) {
	f.mu.Lock()
	if f.pairs == nil {
		f.pairs = make(map[int]FaultConfig)
	}
	f.pairs[to] = cfg
	f.updateArmed()
	f.mu.Unlock()
}

// clearPairConfigs removes every per-destination override.
func (f *faultConn) clearPairConfigs() {
	f.mu.Lock()
	f.pairs = nil
	f.updateArmed()
	f.mu.Unlock()
}

// setBlocked replaces the partitioned-destination set (nil heals).
func (f *faultConn) setBlocked(blocked map[int]bool) {
	f.mu.Lock()
	f.blocked = blocked
	f.updateArmed()
	f.mu.Unlock()
}

// setLatency replaces the injected one-way latency and jitter.
func (f *faultConn) setLatency(delay, jitter time.Duration) {
	f.mu.Lock()
	f.delay = int64(delay)
	f.jitter = int64(jitter)
	f.updateArmed()
	f.mu.Unlock()
}

// destOf resolves addr to a destination rank, or -1. Only consulted when
// a pair override or partition is armed — the resolution is a linear scan
// of the (small) address table.
func (f *faultConn) destOf(addr netip.AddrPort) int {
	if len(f.pairs) == 0 && len(f.blocked) == 0 {
		return -1
	}
	return f.d.rankOfAddr(addr)
}

// cfgFor returns the distribution governing datagrams toward dst. Caller
// holds f.mu.
func (f *faultConn) cfgFor(dst int) FaultConfig {
	if dst >= 0 && len(f.pairs) > 0 {
		if pc, ok := f.pairs[dst]; ok {
			return pc
		}
	}
	return f.cfg
}

// route decides the transmission path of one surviving datagram under
// f.mu: latency armed, it is copied onto the delay queue (drained by the
// domain ticker); otherwise it is appended to out for the caller to write
// after unlocking. copied reports whether b is already a private copy.
func (f *faultConn) route(out []heldPkt, b []byte, addr netip.AddrPort, copied bool) []heldPkt {
	if (f.delay > 0 || f.jitter > 0) && len(f.delayed) < faultMaxDelayed {
		due := clockNow() + f.delay
		if f.jitter > 0 {
			due += f.rng.Int64N(f.jitter)
		}
		if !copied {
			b = append([]byte(nil), b...)
		}
		f.delayed = append(f.delayed, delayedPkt{b: b, addr: addr, due: due})
		return out
	}
	return append(out, heldPkt{b: b, addr: addr})
}

// takeHeld removes and returns the holdback queue. Caller holds f.mu.
func (f *faultConn) takeHeld() []heldPkt {
	held := f.held
	f.held = nil
	return held
}

// flush transmits previously held datagrams. Write errors are ignored:
// a held packet racing socket close is exactly a lost datagram, which is
// the contract of this type.
func (f *faultConn) flush(held []heldPkt) {
	for _, p := range held {
		f.inner.WriteToUDPAddrPort(p.b, p.addr)
	}
}

// drain releases every delay-queue entry whose due time has passed,
// re-checking the partition per destination — a partition armed after
// capture still cuts the packet. Called from the domain ticker
// (Domain.faultTick); the idle case is one atomic load.
func (f *faultConn) drain(now int64) {
	if !f.armed.Load() {
		return
	}
	f.mu.Lock()
	if len(f.delayed) == 0 {
		f.mu.Unlock()
		return
	}
	var due []heldPkt
	rem := f.delayed[:0]
	for _, p := range f.delayed {
		if p.due > now {
			rem = append(rem, p)
			continue
		}
		if len(f.blocked) > 0 && f.blocked[f.d.rankOfAddr(p.addr)] {
			f.d.partitionDrops.Add(1)
			continue
		}
		due = append(due, heldPkt{b: p.b, addr: p.addr})
	}
	for i := len(rem); i < len(f.delayed); i++ {
		f.delayed[i] = delayedPkt{}
	}
	f.delayed = rem
	f.updateArmed()
	f.mu.Unlock()
	f.flush(due)
}

func (f *faultConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	if !f.armed.Load() {
		return f.inner.WriteToUDPAddrPort(b, addr)
	}
	f.mu.Lock()
	dst := f.destOf(addr)
	if len(f.blocked) > 0 && f.blocked[dst] {
		f.mu.Unlock()
		f.d.partitionDrops.Add(1)
		return len(b), nil // severed; the wire reports success
	}
	cfg := f.cfgFor(dst)
	r := f.rng.Float64()
	var out []heldPkt
	switch {
	case r < cfg.Drop:
		f.mu.Unlock()
		f.d.faultsInjected.Add(1)
		return len(b), nil // swallowed; the wire reports success
	case r < cfg.Drop+cfg.Dup:
		f.d.faultsInjected.Add(1)
		out = f.route(out, b, addr, false)
		out = f.route(out, b, addr, false)
		out = append(out, f.takeHeld()...)
	case r < cfg.Drop+cfg.Dup+cfg.Reorder && len(f.held) < faultMaxHeld:
		f.held = append(f.held, heldPkt{b: append([]byte(nil), b...), addr: addr})
		f.updateArmed() // held queue pins the armed state
		f.mu.Unlock()
		f.d.faultsInjected.Add(1)
		return len(b), nil
	default:
		out = f.route(out, b, addr, false)
		out = append(out, f.takeHeld()...) // held arrive after this one: reordered
	}
	f.updateArmed()
	f.mu.Unlock()
	f.flush(out)
	return len(b), nil
}

// WriteBatch applies the network model frame-by-frame — each staged frame
// draws its own verdict, exactly as if it had been written alone — and
// forwards the survivors in one batch, preserving the vectorized write
// underneath. Partitioned frames and dropped frames vanish from the
// batch; duplicated frames appear twice; reorder-held frames are copied
// aside and released behind a later batch's survivors; delayed frames are
// copied onto the latency queue for the domain ticker. The receive path
// needs no counterpart: faults are send-side injection, the wire delivers
// what survives.
func (f *faultConn) WriteBatch(frames []batchFrame) error {
	if !f.armed.Load() {
		return f.inner.WriteBatch(frames)
	}
	// The fault path is for test suites, not the cost model, so the
	// per-call scratch allocation here is acceptable.
	out := make([]batchFrame, 0, len(frames)+faultMaxHeld)
	f.mu.Lock()
	latency := f.delay > 0 || f.jitter > 0
	for _, fr := range frames {
		dst := f.destOf(fr.addr)
		if len(f.blocked) > 0 && f.blocked[dst] {
			f.d.partitionDrops.Add(1)
			continue
		}
		cfg := f.cfgFor(dst)
		r := f.rng.Float64()
		switch {
		case r < cfg.Drop:
			f.d.faultsInjected.Add(1)
		case r < cfg.Drop+cfg.Dup:
			f.d.faultsInjected.Add(1)
			if latency {
				f.route(nil, fr.b, fr.addr, false)
				f.route(nil, fr.b, fr.addr, false)
			} else {
				out = append(out, fr, fr)
			}
		case r < cfg.Drop+cfg.Dup+cfg.Reorder && len(f.held) < faultMaxHeld:
			f.d.faultsInjected.Add(1)
			f.held = append(f.held, heldPkt{b: append([]byte(nil), fr.b...), addr: fr.addr})
		default:
			if latency {
				f.route(nil, fr.b, fr.addr, false)
			} else {
				out = append(out, fr)
			}
		}
	}
	var released []heldPkt
	if len(out) > 0 {
		released = f.takeHeld()
	}
	f.updateArmed()
	f.mu.Unlock()
	for _, p := range released {
		// Held datagrams ride behind this batch's survivors: reordered.
		out = append(out, batchFrame{b: p.b, addr: p.addr})
	}
	if len(out) == 0 {
		return nil
	}
	return f.inner.WriteBatch(out)
}

// rankOfAddr resolves a socket address to its rank, or -1. Linear scan of
// the (rank-count-sized) address table; only the armed fault paths call
// it, and only when a pair override or partition needs the destination.
func (d *Domain) rankOfAddr(addr netip.AddrPort) int {
	tr := d.udp
	if tr == nil {
		return -1
	}
	for r := range tr.addrs {
		if p := tr.addrs[r].Load(); p != nil && *p == addr {
			return r
		}
	}
	return -1
}

// faultShim returns rank's fault layer. Every UDP socket has one; in a
// multiproc world only Self's socket lives in this process, so every
// other rank errors.
func (d *Domain) faultShim(rank int) (*faultConn, error) {
	if d.udp == nil {
		return nil, fmt.Errorf("gasnet: fault injection: not a UDP-conduit domain")
	}
	if rank < 0 || rank >= len(d.udp.send) {
		return nil, fmt.Errorf("gasnet: fault injection: rank %d out of range", rank)
	}
	fc, ok := d.udp.send[rank].(*faultConn)
	if !ok || fc == nil {
		return nil, fmt.Errorf("gasnet: fault injection: rank %d is not hosted by this process", rank)
	}
	return fc, nil
}

// SetFault replaces rank's base send-path fault distribution mid-run
// (e.g. Drop:1 to simulate killing the rank after a healthy start). The
// fault layer is always interposed on UDP worlds — idle it costs one
// atomic load per write — so faults can be armed on any domain without
// pre-arranging Config.Fault.
func (d *Domain) SetFault(rank int, cfg FaultConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	fc, err := d.faultShim(rank)
	if err != nil {
		return err
	}
	fc.setConfig(cfg)
	return nil
}

// SetPairFault installs a directional fault distribution on datagrams
// from→to, overriding the base distribution for that destination only —
// the asymmetric-loss primitive (A's frames toward B all dropped while
// B→A stays clean). A zero config is a valid override: it shields the
// pair from the base distribution. Scenario heal clears all overrides.
func (d *Domain) SetPairFault(from, to int, cfg FaultConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	fc, err := d.faultShim(from)
	if err != nil {
		return err
	}
	if to < 0 || to >= d.cfg.Ranks {
		return fmt.Errorf("gasnet: SetPairFault: destination rank %d out of range", to)
	}
	fc.setPairConfig(to, cfg)
	return nil
}

// SetLatency arms deterministic one-way latency (plus uniform jitter from
// the seeded PRNG) on rank's send path: surviving datagrams are copied
// onto a delay queue and released by the domain ticker once due. Zero
// both to disarm.
func (d *Domain) SetLatency(rank int, delay, jitter time.Duration) error {
	if delay < 0 || jitter < 0 {
		return fmt.Errorf("gasnet: SetLatency: negative duration")
	}
	fc, err := d.faultShim(rank)
	if err != nil {
		return err
	}
	fc.setLatency(delay, jitter)
	return nil
}

// SetPartition severs the network between the given rank groups: every
// datagram (heartbeats and probes included) between ranks in different
// groups is dropped at the sender. Ranks not listed in any group form one
// implicit group of their own. The cut applies to every rank hosted by
// this process — in a multiproc world each process applies its own
// senders' half of the same partition, which is why the scenario DSL
// (scenario.go) is the natural way to coordinate one. HealPartition (or
// SetPartition(nil)) restores the network; the liveness layer then heals
// the pairs the cut drove Down (liveness.go).
func (d *Domain) SetPartition(groups [][]int) error {
	if d.udp == nil {
		return fmt.Errorf("gasnet: SetPartition: not a UDP-conduit domain")
	}
	group := make([]int, d.cfg.Ranks)
	for i := range group {
		group[i] = -1
	}
	for gi, g := range groups {
		for _, r := range g {
			if r < 0 || r >= d.cfg.Ranks {
				return fmt.Errorf("gasnet: SetPartition: rank %d out of range", r)
			}
			if group[r] != -1 {
				return fmt.Errorf("gasnet: SetPartition: rank %d listed twice", r)
			}
			group[r] = gi
		}
	}
	for i := range group {
		if group[i] == -1 {
			group[i] = len(groups) // the implicit group of unlisted ranks
		}
	}
	for from := range d.udp.send {
		fc, ok := d.udp.send[from].(*faultConn)
		if !ok || fc == nil {
			continue // multiproc: only Self's socket lives here
		}
		var blocked map[int]bool
		for to := 0; to < d.cfg.Ranks; to++ {
			if to != from && group[to] != group[from] {
				if blocked == nil {
					blocked = make(map[int]bool)
				}
				blocked[to] = true
			}
		}
		fc.setBlocked(blocked)
	}
	return nil
}

// HealPartition removes the partition installed by SetPartition from
// every rank hosted by this process. Pair-fault overrides (SetPairFault)
// are left in place; the scenario DSL's heal directive clears both.
func (d *Domain) HealPartition() error {
	if d.udp == nil {
		return fmt.Errorf("gasnet: HealPartition: not a UDP-conduit domain")
	}
	for from := range d.udp.send {
		if fc, ok := d.udp.send[from].(*faultConn); ok && fc != nil {
			fc.setBlocked(nil)
		}
	}
	return nil
}

// healNetwork is the scenario engine's heal directive: partition lifted
// AND pair overrides cleared on every locally-hosted sender.
func (d *Domain) healNetwork() {
	if d.udp == nil {
		return
	}
	for from := range d.udp.send {
		if fc, ok := d.udp.send[from].(*faultConn); ok && fc != nil {
			fc.setBlocked(nil)
			fc.clearPairConfigs()
		}
	}
}

// faultTick is the domain ticker's hook into the network model: it steps
// the armed scenario (if any) and drains due latency-queue entries on
// every locally-hosted sender. Idle cost: one pointer load plus one
// atomic load per socket.
func (d *Domain) faultTick(now int64) {
	if s := d.scen.Load(); s != nil {
		s.step(now)
	}
	if d.udp == nil {
		return
	}
	for _, pc := range d.udp.send {
		if fc, ok := pc.(*faultConn); ok && fc != nil {
			fc.drain(now)
		}
	}
}
