package gasnet

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Deterministic fault injection for the UDP conduit. The reliability layer
// (reliable.go) only earns its keep if it can be exercised without real
// packet loss, so every socket's send path goes through a packetConn; when
// Config.Fault is set, the real *net.UDPConn is wrapped in a faultConn
// that drops, duplicates, and reorders outgoing datagrams from a seeded
// PRNG. Faults are injected on the send side only — the receive path sees
// exactly the loss pattern a real network would present — and everything a
// faultConn does is driven by the wrapped socket's own writes, so runs are
// reproducible up to goroutine interleaving.

// packetConn is the send-path surface of a socket; faultConn implements
// it by interposing on the real (batch-capable) adapter.
type packetConn interface {
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	// WriteBatch transmits a set of staged frames — in one vectorized
	// write (sendmmsg) where the platform allows, one frame at a time
	// otherwise. Implementations must not retain any frame's bytes past
	// the call.
	WriteBatch(frames []batchFrame) error
}

// faultEnvVar names the environment variable consulted by UDP-conduit
// domains whose Config.Fault is nil, so an entire test suite can run under
// injected loss (make test-loss) without per-callsite plumbing. The value
// is a fault spec, e.g. "drop=0.25,dup=0.05,reorder=0.10,seed=7".
const faultEnvVar = "GUPCXX_UDP_FAULT"

// FaultConfig enables deterministic fault injection on the UDP conduit's
// send path. Probabilities are evaluated independently per datagram in the
// order drop, duplicate, reorder; their sum must not exceed 1.
type FaultConfig struct {
	// Seed seeds the per-socket PRNGs (each socket derives its stream from
	// Seed and its rank), making injected fault patterns reproducible.
	Seed int64

	// Drop is the probability that a datagram is silently discarded.
	Drop float64

	// Dup is the probability that a datagram is transmitted twice.
	Dup float64

	// Reorder is the probability that a datagram is held back and released
	// only after a later write on the same socket, delaying and reordering
	// it past its successors.
	Reorder float64
}

// validate reports whether the probabilities form a sensible distribution.
func (f *FaultConfig) validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"Dup", f.Dup}, {"Reorder", f.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("gasnet: fault %s probability %g outside [0,1]", p.name, p.v)
		}
	}
	if sum := f.Drop + f.Dup + f.Reorder; sum > 1 {
		return fmt.Errorf("gasnet: fault probabilities sum to %g > 1", sum)
	}
	return nil
}

// parseFaultSpec parses a "drop=0.25,dup=0.05,reorder=0.10,seed=7" spec.
func parseFaultSpec(spec string) (*FaultConfig, error) {
	f := &FaultConfig{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("gasnet: fault spec field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gasnet: fault spec seed %q: %w", val, err)
			}
			f.Seed = n
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("gasnet: fault spec %s %q: %w", key, val, err)
			}
			switch key {
			case "drop":
				f.Drop = p
			case "dup":
				f.Dup = p
			case "reorder":
				f.Reorder = p
			}
		default:
			return nil, fmt.Errorf("gasnet: fault spec has unknown key %q", key)
		}
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// faultFromEnv returns the FaultConfig described by GUPCXX_UDP_FAULT, or
// nil when the variable is unset or empty.
func faultFromEnv() (*FaultConfig, error) {
	spec := os.Getenv(faultEnvVar)
	if spec == "" {
		return nil, nil
	}
	f, err := parseFaultSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, faultEnvVar)
	}
	return f, nil
}

// faultMaxHeld bounds the reorder holdback queue so a run of reorder
// verdicts cannot strand unbounded copies; beyond it, datagrams pass
// through untouched.
const faultMaxHeld = 8

// heldPkt is one datagram awaiting delayed release. The bytes are copied:
// the caller's buffer is pooled and reused immediately after the write.
type heldPkt struct {
	b    []byte
	addr netip.AddrPort
}

// faultConn interposes deterministic faults on one socket's send path.
// Held (reordered) datagrams are flushed after the next non-held write, so
// they arrive behind datagrams sent after them; if traffic stops, the
// reliability layer's retransmissions provide the flushing writes.
type faultConn struct {
	inner    packetConn
	cfg      FaultConfig
	injected *atomic.Int64 // Domain.faultsInjected

	mu   sync.Mutex
	rng  *rand.Rand
	held []heldPkt
}

func newFaultConn(inner packetConn, cfg FaultConfig, rank int, injected *atomic.Int64) *faultConn {
	return &faultConn{
		inner:    inner,
		cfg:      cfg,
		injected: injected,
		// Derive a distinct, reproducible stream per socket.
		rng: rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(rank)+0x9e3779b97f4a7c15)),
	}
}

// setConfig swaps the fault distribution mid-run; the write path reads the
// config under f.mu, so in-flight sends see either the old or the new one.
func (f *faultConn) setConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// SetFault replaces rank's send-path fault distribution mid-run (e.g.
// Drop:1 to simulate killing the rank after a healthy start). The shim
// must have been armed at construction by a non-nil Config.Fault — pass
// &FaultConfig{} for a fault-free start; it cannot be interposed later,
// because the reader goroutines already hold the raw sockets.
func (d *Domain) SetFault(rank int, cfg FaultConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if d.udp == nil {
		return fmt.Errorf("gasnet: SetFault: not a UDP-conduit domain")
	}
	if rank < 0 || rank >= len(d.udp.send) {
		return fmt.Errorf("gasnet: SetFault: rank %d out of range", rank)
	}
	fc, ok := d.udp.send[rank].(*faultConn)
	if !ok {
		return fmt.Errorf("gasnet: SetFault: fault injection not armed (Config.Fault was nil)")
	}
	fc.setConfig(cfg)
	return nil
}

// takeHeld removes and returns the holdback queue. Caller holds f.mu.
func (f *faultConn) takeHeld() []heldPkt {
	held := f.held
	f.held = nil
	return held
}

// flush transmits previously held datagrams. Write errors are ignored:
// a held packet racing socket close is exactly a lost datagram, which is
// the contract of this type.
func (f *faultConn) flush(held []heldPkt) {
	for _, p := range held {
		f.inner.WriteToUDPAddrPort(p.b, p.addr)
	}
}

func (f *faultConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	f.mu.Lock()
	r := f.rng.Float64()
	switch {
	case r < f.cfg.Drop:
		f.mu.Unlock()
		f.injected.Add(1)
		return len(b), nil // swallowed; the wire reports success
	case r < f.cfg.Drop+f.cfg.Dup:
		held := f.takeHeld()
		f.mu.Unlock()
		f.injected.Add(1)
		if _, err := f.inner.WriteToUDPAddrPort(b, addr); err != nil {
			return 0, err
		}
		n, err := f.inner.WriteToUDPAddrPort(b, addr)
		f.flush(held)
		return n, err
	case r < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder && len(f.held) < faultMaxHeld:
		f.held = append(f.held, heldPkt{b: append([]byte(nil), b...), addr: addr})
		f.mu.Unlock()
		f.injected.Add(1)
		return len(b), nil
	default:
		held := f.takeHeld()
		f.mu.Unlock()
		n, err := f.inner.WriteToUDPAddrPort(b, addr)
		f.flush(held) // held datagrams now arrive after this one: reordered
		return n, err
	}
}

// WriteBatch applies the fault distribution frame-by-frame — each staged
// frame draws its own verdict, exactly as if it had been written alone —
// and forwards the survivors in one batch, preserving the vectorized
// write underneath. Dropped frames vanish from the batch; duplicated
// frames appear twice; reorder-held frames are copied aside and released
// behind a later batch's survivors, so they arrive after frames staged
// after them. The receive path needs no counterpart: faults are
// send-side injection, the wire delivers what survives.
func (f *faultConn) WriteBatch(frames []batchFrame) error {
	// The fault path is for test suites, not the cost model, so the
	// per-call scratch allocation here is acceptable.
	out := make([]batchFrame, 0, len(frames)+faultMaxHeld)
	f.mu.Lock()
	for _, fr := range frames {
		r := f.rng.Float64()
		switch {
		case r < f.cfg.Drop:
			f.injected.Add(1)
		case r < f.cfg.Drop+f.cfg.Dup:
			f.injected.Add(1)
			out = append(out, fr, fr)
		case r < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder && len(f.held) < faultMaxHeld:
			f.injected.Add(1)
			f.held = append(f.held, heldPkt{b: append([]byte(nil), fr.b...), addr: fr.addr})
		default:
			out = append(out, fr)
		}
	}
	var released []heldPkt
	if len(out) > 0 {
		released = f.takeHeld()
	}
	f.mu.Unlock()
	for _, p := range released {
		// Held datagrams ride behind this batch's survivors: reordered.
		out = append(out, batchFrame{b: p.b, addr: p.addr})
	}
	if len(out) == 0 {
		return nil
	}
	return f.inner.WriteBatch(out)
}
