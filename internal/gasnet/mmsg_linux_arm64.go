//go:build linux && arm64

package gasnet

// sendmmsg/recvmmsg syscall numbers for the arm64 table.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
