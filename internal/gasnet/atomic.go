package gasnet

import (
	"fmt"
	"math"
	"sync/atomic"
)

// AmoOp identifies an atomic memory operation on a 64-bit segment word.
// Signed operations share opcodes with unsigned ones: two's-complement add,
// swap, and compare-exchange are bit-identical, and the substrate provides
// no ordered comparisons.
type AmoOp uint8

const (
	// AmoLoad reads the word (operands ignored).
	AmoLoad AmoOp = iota
	// AmoStore writes operand1 (returns the previous value).
	AmoStore
	// AmoAdd adds operand1.
	AmoAdd
	// AmoXor xors in operand1.
	AmoXor
	// AmoAnd ands in operand1.
	AmoAnd
	// AmoOr ors in operand1.
	AmoOr
	// AmoSwap exchanges the word with operand1.
	AmoSwap
	// AmoCAS replaces the word with operand2 if it equals operand1.
	AmoCAS
	// AmoFAdd adds operand1 to the word, both interpreted as IEEE-754
	// binary64 (GASNet-EX supports floating-point AMOs; software targets
	// implement them as CAS loops, as here).
	AmoFAdd
	// AmoFMin stores min(word, operand1) under float64 interpretation.
	AmoFMin
	// AmoFMax stores max(word, operand1) under float64 interpretation.
	AmoFMax

	amoOpCount
)

// String returns the operation's conventional name.
func (op AmoOp) String() string {
	switch op {
	case AmoLoad:
		return "load"
	case AmoStore:
		return "store"
	case AmoAdd:
		return "add"
	case AmoXor:
		return "xor"
	case AmoAnd:
		return "and"
	case AmoOr:
		return "or"
	case AmoSwap:
		return "swap"
	case AmoCAS:
		return "cas"
	case AmoFAdd:
		return "fadd"
	case AmoFMin:
		return "fmin"
	case AmoFMax:
		return "fmax"
	default:
		return fmt.Sprintf("amo(%d)", uint8(op))
	}
}

// Valid reports whether op is a defined operation.
func (op AmoOp) Valid() bool { return op < amoOpCount }

// ApplyAmo performs op on the 8-byte-aligned word at off in seg, returning
// the word's previous value. This is the shared-memory execution engine
// used both for direct on-node atomics (the synchronous-completion case the
// paper's eager notifications exploit) and by the AM handler servicing
// cross-node atomic requests — guaranteeing coherence between the two paths
// the same way GASNet-EX must when NIC offload is in play.
func ApplyAmo(seg *Segment, off uint32, op AmoOp, operand1, operand2 uint64) uint64 {
	w := seg.WordAt(off)
	switch op {
	case AmoLoad:
		return atomic.LoadUint64(w)
	case AmoStore, AmoSwap:
		return atomic.SwapUint64(w, operand1)
	case AmoAdd:
		return atomic.AddUint64(w, operand1) - operand1
	case AmoXor:
		for {
			old := atomic.LoadUint64(w)
			if atomic.CompareAndSwapUint64(w, old, old^operand1) {
				return old
			}
		}
	case AmoAnd:
		// Single hardware instruction on targets with LSE/x86 lock-prefixed
		// ops, rather than a CAS retry loop.
		return atomic.AndUint64(w, operand1)
	case AmoOr:
		return atomic.OrUint64(w, operand1)
	case AmoCAS:
		for {
			old := atomic.LoadUint64(w)
			if old != operand1 {
				return old
			}
			if atomic.CompareAndSwapUint64(w, old, operand2) {
				return old
			}
		}
	case AmoFAdd, AmoFMin, AmoFMax:
		f1 := math.Float64frombits(operand1)
		for {
			old := atomic.LoadUint64(w)
			cur := math.Float64frombits(old)
			var next float64
			switch op {
			case AmoFAdd:
				next = cur + f1
			case AmoFMin:
				next = math.Min(cur, f1)
			case AmoFMax:
				next = math.Max(cur, f1)
			}
			if atomic.CompareAndSwapUint64(w, old, math.Float64bits(next)) {
				return old
			}
		}
	default:
		panic(fmt.Sprintf("gasnet: invalid atomic op %d", op))
	}
}
