package gasnet

import (
	"fmt"
	"unsafe"
)

// This file provides the typed views of segment memory used by the runtime
// layer's generic global pointers. Together with segment.go it confines all
// unsafe usage to this package.

// SizeOf reports the in-memory size of T in bytes.
func SizeOf[T any]() int {
	var v T
	return int(unsafe.Sizeof(v))
}

// ViewAs returns a typed pointer to the object of type T at byte offset
// off in seg. The offset must be aligned for T (the segment allocator's
// 8-byte granularity guarantees this for all word-sized-or-smaller
// elements) and the object must lie entirely within the segment.
func ViewAs[T any](s *Segment, off uint32) *T {
	var v T
	size := int(unsafe.Sizeof(v))
	align := uint32(unsafe.Alignof(v))
	if align != 0 && off%align != 0 {
		panic(fmt.Sprintf("gasnet: misaligned view of %T at offset %d (align %d)", v, off, align))
	}
	return (*T)(s.PointerAt(off, size))
}

// ViewSlice returns a typed slice over n elements of type T starting at
// byte offset off in seg.
func ViewSlice[T any](s *Segment, off uint32, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice(ViewAs[T](s, off), n)
}

// ValueBytes returns the raw byte representation of the object at p. The
// returned slice aliases *p.
func ValueBytes[T any](p *T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(p)), unsafe.Sizeof(*p))
}

// SliceBytes returns the raw byte representation of s. The returned slice
// aliases s's backing array; an empty s yields nil.
func SliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}
