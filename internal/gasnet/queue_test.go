package gasnet

import (
	"sync"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	var q amQueue
	for i := uint64(0); i < 5; i++ {
		q.push(Msg{A0: i})
	}
	msgs := q.drain(nanotime())
	if len(msgs) != 5 {
		t.Fatalf("drained %d", len(msgs))
	}
	for i, m := range msgs {
		if m.A0 != uint64(i) {
			t.Errorf("order broken at %d: %d", i, m.A0)
		}
	}
	if !q.empty() {
		t.Error("queue not empty after drain")
	}
}

func TestQueueReleaseTime(t *testing.T) {
	var q amQueue
	now := nanotime()
	q.push(Msg{A0: 1, readyAt: now - 10})
	q.push(Msg{A0: 2, readyAt: now + 1e9})
	msgs := q.drain(now)
	if len(msgs) != 1 || msgs[0].A0 != 1 {
		t.Fatalf("drain = %v", msgs)
	}
	if q.empty() {
		t.Error("in-flight message dropped")
	}
	msgs = q.drain(now + 2e9)
	if len(msgs) != 1 || msgs[0].A0 != 2 {
		t.Fatalf("late drain = %v", msgs)
	}
}

func TestQueueDrainNilWhenNothingDeliverable(t *testing.T) {
	var q amQueue
	if q.drain(nanotime()) != nil {
		t.Error("empty drain should be nil")
	}
	q.push(Msg{readyAt: nanotime() + 1e9})
	if q.drain(nanotime()) != nil {
		t.Error("undeliverable drain should be nil")
	}
}

// TestQueueConcurrentProducers: messages from many producers are all
// delivered exactly once.
func TestQueueConcurrentProducers(t *testing.T) {
	var q amQueue
	const producers = 8
	const per = 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.push(Msg{A0: uint64(p*per + i)})
			}
		}(p)
	}
	seen := make(map[uint64]bool)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, m := range q.drain(nanotime()) {
			if seen[m.A0] {
				t.Errorf("duplicate %d", m.A0)
			}
			seen[m.A0] = true
		}
		select {
		case <-done:
			for _, m := range q.drain(nanotime()) {
				seen[m.A0] = true
			}
			if len(seen) != producers*per {
				t.Fatalf("delivered %d of %d", len(seen), producers*per)
			}
			return
		default:
		}
	}
}
