package gasnet

import (
	"errors"
	"testing"
	"time"
)

// clearNetEnv shields a test from the suite-wide fault/scenario presets
// (make test-loss, GUPCXX_UDP_SCENARIO): partition tests assert exact
// heal counts, which ambient loss would turn into flap counts.
func clearNetEnv(t *testing.T) {
	t.Helper()
	t.Setenv(faultEnvVar, "")
	t.Setenv(scenarioEnvVar, "")
}

// fastHBConfig returns a 2-rank UDP config with tight liveness bounds so
// partition→Down→heal cycles complete in tens of milliseconds.
func fastHBConfig() Config {
	return Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12,
		HeartbeatEvery: time.Millisecond,
		SuspectAfter:   5 * time.Millisecond,
		DownAfter:      20 * time.Millisecond,
	}
}

// TestScenarioParse pins the scenario DSL grammar: phase times, directive
// forms, and the rejection of malformed specs.
func TestScenarioParse(t *testing.T) {
	good := []string{
		"at=0s partition=0,1|2,3",
		"at=2s partition=0,1|2,3; at=6s heal",
		"at=0s partition=0|1,2; at=0s heal", // equal times are nondecreasing
		"at=1s fault=drop=0.5,seed=3",
		"at=1s fault@0>1=drop=1",
		"at=0s latency=5ms jitter=1ms",
		"at=100ms partition=0|3 fault@1>2=dup=0.5; at=1s heal latency=2ms",
		" ; at=1s heal ; ", // empty phases are skipped
	}
	for _, spec := range good {
		if _, err := parseScenario(spec, 4); err != nil {
			t.Errorf("parseScenario(%q) = %v, want nil", spec, err)
		}
	}
	bad := []string{
		"",
		"   ;  ",
		"heal",                        // missing at=
		"at=2s heal; at=1s heal",      // decreasing times
		"at=-1s heal",                 // negative time
		"at=1s",                       // no directives
		"at=1s frobnicate",            // unknown directive
		"at=1s partition=",            // no groups
		"at=1s partition=0|9",         // rank out of range
		"at=1s partition=0|x",         // non-numeric rank
		"at=1s fault=drop=2",          // invalid probability
		"at=1s fault@0>9=drop=1",      // bad destination
		"at=1s fault@01=drop=1",       // missing '>'
		"at=1s latency=-5ms",          // negative duration
		"at=1s jitter=fast",           // unparseable duration
		"at=bogus heal",               // unparseable time
	}
	for _, spec := range bad {
		if _, err := parseScenario(spec, 4); err == nil {
			t.Errorf("parseScenario(%q) accepted, want error", spec)
		}
	}

	clearNetEnv(t)
	smp := newTestDomain(t, Config{Ranks: 2})
	defer smp.Close()
	if err := smp.StartScenario("at=0s heal"); err == nil {
		t.Error("StartScenario accepted on a non-UDP domain")
	}
	udp := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer udp.Close()
	if err := udp.StartScenario("at=0s latency=1ms"); err != nil {
		t.Errorf("StartScenario on a UDP domain: %v", err)
	}
}

// TestSetFaultMidRunArming: the fault layer is always interposed, so a
// domain built with no Config.Fault can still have loss armed mid-run —
// the shim transitions from its idle fast path to injecting.
func TestSetFaultMidRunArming(t *testing.T) {
	clearNetEnv(t)
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12, RelMaxAttempts: 3,
	})
	defer d.Close()
	if got := d.Stats().FaultsInjected; got != 0 {
		t.Fatalf("FaultsInjected = %d before any fault was armed", got)
	}
	if err := d.SetFault(0, FaultConfig{Seed: 1, Drop: 1}); err != nil {
		t.Fatalf("SetFault on a nil-Fault domain: %v", err)
	}
	ep0 := d.Endpoint(0)
	var gotErr error
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { gotErr = err })
	deadline := time.Now().Add(10 * time.Second)
	for gotErr == nil && time.Now().Before(deadline) {
		ep0.Poll()
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(gotErr, ErrPeerUnreachable) {
		t.Fatalf("put under mid-run Drop:1 resolved with %v, want ErrPeerUnreachable", gotErr)
	}
	if got := d.Stats().FaultsInjected; got == 0 {
		t.Error("FaultsInjected = 0 after a put under Drop:1")
	}
}

// TestLatencyInjection: SetLatency holds surviving datagrams on the delay
// queue until the domain ticker releases them, so a put's completion time
// reflects the injected one-way latency.
func TestLatencyInjection(t *testing.T) {
	clearNetEnv(t)
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12})
	defer d.Close()
	if err := d.SetLatency(0, 30*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	done := false
	start := time.Now()
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) {
		if err != nil {
			t.Errorf("put under latency failed: %v", err)
		}
		done = true
	})
	deadline := time.Now().Add(10 * time.Second)
	for !done && time.Now().Before(deadline) {
		ep0.Poll()
		ep1.Poll()
		time.Sleep(time.Millisecond)
	}
	if !done {
		t.Fatal("put under 30ms latency never completed")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("put completed in %v, want >= injected 30ms latency", elapsed)
	}
}

// TestPartitionDownAndHeal is the core recovery walk on one in-process
// domain: a full cut drives both directions Down (victim ops fail fast),
// and lifting it heals both pairs under the same incarnation — zero
// readmissions, and the wire works again in both directions.
func TestPartitionDownAndHeal(t *testing.T) {
	clearNetEnv(t)
	d := newTestDomain(t, fastHBConfig())
	defer d.Close()
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	// Healthy start: one round trip completes.
	done := false
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) {
		if err != nil {
			t.Errorf("pre-cut put failed: %v", err)
		}
		done = true
	})
	deadline := time.Now().Add(10 * time.Second)
	for !done && time.Now().Before(deadline) {
		ep0.Poll()
		ep1.Poll()
		time.Sleep(100 * time.Microsecond)
	}
	if !done {
		t.Fatal("pre-cut put never completed")
	}
	inc01 := d.lv.incOf(0, 1)

	if err := d.SetPartition([][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !(ep0.PeerDown(1) && ep1.PeerDown(0)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !ep0.PeerDown(1) || !ep1.PeerDown(0) {
		t.Fatal("partitioned peers never declared down")
	}
	// Victim-directed ops fail at injection, not hang.
	var eager error
	ep0.GetRemote(1, 0, 4, make([]byte, 4), func(err error) { eager = err })
	if !errors.Is(eager, ErrPeerUnreachable) {
		t.Errorf("op during cut resolved with %v, want ErrPeerUnreachable", eager)
	}
	if got := d.Stats().PartitionDrops; got == 0 {
		t.Error("PartitionDrops = 0 under an armed partition")
	}

	if err := d.HealPartition(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for (ep0.PeerDown(1) || ep1.PeerDown(0)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ep0.PeerDown(1) || ep1.PeerDown(0) {
		t.Fatal("peers never healed after the partition lifted")
	}
	s := d.Stats()
	if s.PeersHealed != 2 {
		t.Errorf("PeersHealed = %d, want 2 (one per direction)", s.PeersHealed)
	}
	if s.PeersReadmitted != 0 {
		t.Errorf("PeersReadmitted = %d, want 0: healing must not change incarnations", s.PeersReadmitted)
	}
	if s.ProbesSent == 0 {
		t.Error("ProbesSent = 0: healing without probes")
	}
	if got := d.lv.incOf(0, 1); got != inc01 {
		t.Errorf("incarnation changed across heal: %d -> %d", inc01, got)
	}

	// The healed wire carries traffic in both directions.
	for _, dir := range []struct{ from, to int }{{0, 1}, {1, 0}} {
		done = false
		var putErr error
		d.Endpoint(dir.from).PutRemote(dir.to, 0, []byte{9, 9, 9, 9}, nil, func(err error) {
			putErr = err
			done = true
		})
		deadline = time.Now().Add(10 * time.Second)
		for !done && time.Now().Before(deadline) {
			ep0.Poll()
			ep1.Poll()
			time.Sleep(100 * time.Microsecond)
		}
		if !done || putErr != nil {
			t.Fatalf("post-heal put %d->%d: done=%v err=%v", dir.from, dir.to, done, putErr)
		}
	}
}

// TestPartitionHealViaScenario drives the same walk purely from the
// GUPCXX_UDP_SCENARIO environment variable: no API calls, the phased
// script cuts and heals the wire on its own schedule.
func TestPartitionHealViaScenario(t *testing.T) {
	t.Setenv(faultEnvVar, "")
	t.Setenv(scenarioEnvVar, "at=0s partition=0|1; at=250ms heal")
	d := newTestDomain(t, fastHBConfig())
	defer d.Close()
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	deadline := time.Now().Add(10 * time.Second)
	for !(ep0.PeerDown(1) && ep1.PeerDown(0)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !ep0.PeerDown(1) || !ep1.PeerDown(0) {
		t.Fatal("scenario partition never declared peers down")
	}
	deadline = time.Now().Add(10 * time.Second)
	for (ep0.PeerDown(1) || ep1.PeerDown(0)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ep0.PeerDown(1) || ep1.PeerDown(0) {
		t.Fatal("peers never healed after the scenario's heal phase")
	}
	s := d.Stats()
	if s.PeersHealed < 2 {
		t.Errorf("PeersHealed = %d, want >= 2", s.PeersHealed)
	}
	if s.PeersReadmitted != 0 {
		t.Errorf("PeersReadmitted = %d, want 0", s.PeersReadmitted)
	}
}

// TestDisableHealingTerminalDown: the kill switch restores the old
// contract — silence-driven Down is terminal, no probes ship, and a
// healed network changes nothing.
func TestDisableHealingTerminalDown(t *testing.T) {
	clearNetEnv(t)
	cfg := fastHBConfig()
	cfg.DisableHealing = true
	d := newTestDomain(t, cfg)
	defer d.Close()
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	if err := d.SetPartition([][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !(ep0.PeerDown(1) && ep1.PeerDown(0)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !ep0.PeerDown(1) || !ep1.PeerDown(0) {
		t.Fatal("partitioned peers never declared down")
	}
	if err := d.HealPartition(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // many DownAfter periods on a healed wire
	if !ep0.PeerDown(1) || !ep1.PeerDown(0) {
		t.Error("peer healed despite DisableHealing")
	}
	s := d.Stats()
	if s.PeersHealed != 0 {
		t.Errorf("PeersHealed = %d with DisableHealing, want 0", s.PeersHealed)
	}
	if s.ProbesSent != 0 {
		t.Errorf("ProbesSent = %d with DisableHealing, want 0", s.ProbesSent)
	}
}

// TestAsymmetricLossHealsTogether: one-way loss (every 0→1 datagram cut,
// 1→0 clean) downs BOTH directions — rank 1 by silence, rank 0 by
// retransmission exhaustion — and clearing the pair override lets both
// heal: rank 0 via rank 1's probes, rank 1 via rank 0's now-delivered
// acks. The converged world carries traffic both ways with zero
// readmissions.
func TestAsymmetricLossHealsTogether(t *testing.T) {
	clearNetEnv(t)
	cfg := fastHBConfig()
	cfg.RelMaxAttempts = 4
	d := newTestDomain(t, cfg)
	defer d.Close()
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	// Healthy start, then sever 0→1 only.
	time.Sleep(10 * time.Millisecond)
	if ep0.AnyPeerDown() || ep1.AnyPeerDown() {
		t.Fatal("peer down before the loss was armed")
	}
	if err := d.SetPairFault(0, 1, FaultConfig{Drop: 1}); err != nil {
		t.Fatal(err)
	}
	// Drive sequenced traffic into the cut so rank 0's retransmission
	// budget exhausts (rank 1's clean heartbeats mean silence alone would
	// never down this direction).
	var putErr error
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { putErr = err })
	saw01, saw10 := false, false // sticky: rank 0's view may flap via rank 1's probes
	deadline := time.Now().Add(10 * time.Second)
	for !(saw01 && saw10) && time.Now().Before(deadline) {
		ep0.Poll()
		ep1.Poll()
		saw01 = saw01 || ep0.PeerDown(1)
		saw10 = saw10 || ep1.PeerDown(0)
		time.Sleep(time.Millisecond)
	}
	if !saw01 || !saw10 {
		t.Fatalf("asymmetric loss: down 0->1 %v, down 1->0 %v, want both", saw01, saw10)
	}
	if !errors.Is(putErr, ErrPeerUnreachable) {
		t.Fatalf("put into the cut resolved with %v, want ErrPeerUnreachable", putErr)
	}

	// A zero pair override is a valid config: the direction is clean again.
	if err := d.SetPairFault(0, 1, FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for (ep0.PeerDown(1) || ep1.PeerDown(0)) && time.Now().Before(deadline) {
		ep0.Poll()
		ep1.Poll()
		time.Sleep(time.Millisecond)
	}
	if ep0.PeerDown(1) || ep1.PeerDown(0) {
		t.Fatal("views never reconverged after the loss cleared")
	}
	s := d.Stats()
	if s.PeersHealed < 2 {
		t.Errorf("PeersHealed = %d, want >= 2 (both directions)", s.PeersHealed)
	}
	if s.PeersReadmitted != 0 {
		t.Errorf("PeersReadmitted = %d, want 0", s.PeersReadmitted)
	}
	for _, dir := range []struct{ from, to int }{{0, 1}, {1, 0}} {
		done := false
		var err2 error
		d.Endpoint(dir.from).PutRemote(dir.to, 0, []byte{7, 7, 7, 7}, nil, func(err error) {
			err2 = err
			done = true
		})
		dl := time.Now().Add(10 * time.Second)
		for !done && time.Now().Before(dl) {
			ep0.Poll()
			ep1.Poll()
			time.Sleep(100 * time.Microsecond)
		}
		if !done || err2 != nil {
			t.Fatalf("post-heal put %d->%d: done=%v err=%v", dir.from, dir.to, done, err2)
		}
	}
}

// TestHealResetsRetransmitBackoff: frames parked behind a long partition
// carry fully backed-off RTOs (clamped at relRTOMax); heal must re-arm
// them — attempts zeroed, RTO reseeded from the estimator, deadline now —
// so the first post-heal exchange costs O(srtt), not O(100ms backoff).
func TestHealResetsRetransmitBackoff(t *testing.T) {
	clearNetEnv(t)
	d := newTestDomain(t, Config{
		Ranks: 2, Conduit: UDP, SegmentBytes: 1 << 12,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   50 * time.Millisecond,
		DownAfter:      300 * time.Millisecond, // long enough for RTO to clamp
	})
	defer d.Close()
	ep0 := d.Endpoint(0)

	if err := d.SetPartition([][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	ep0.PutRemote(1, 0, []byte{1, 2, 3, 4}, nil, func(err error) { gotErr = err })
	deadline := time.Now().Add(20 * time.Second)
	for gotErr == nil && time.Now().Before(deadline) {
		ep0.Poll()
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(gotErr, ErrPeerUnreachable) {
		t.Fatalf("put into the partition resolved with %v, want ErrPeerUnreachable", gotErr)
	}

	// The pair is parked, not released, and its entries backed all the way
	// off while retransmitting into the cut.
	p := d.rel.pair(0, 1)
	p.mu.Lock()
	parked := p.down
	entries := len(p.inflight)
	var maxRTO int64
	for i := range p.inflight {
		if p.inflight[i].rto > maxRTO {
			maxRTO = p.inflight[i].rto
		}
	}
	p.mu.Unlock()
	if !parked {
		t.Fatal("pair not parked after a healable down")
	}
	if entries == 0 {
		t.Fatal("parked pair retained no in-flight entries")
	}
	if maxRTO < relRTOMax {
		t.Fatalf("max parked RTO %v never clamped to %v", time.Duration(maxRTO), time.Duration(relRTOMax))
	}

	// Heal while the wire is still cut, so the re-armed entries can be
	// observed before acks drain them. At most one ticker sweep can slip
	// in between heal and the lock below (one doubling from the reseeded
	// base), which is still far below the clamp.
	d.lv.heal(0, 1)
	p.mu.Lock()
	if p.down {
		t.Error("pair still parked after heal")
	}
	if len(p.inflight) != entries {
		t.Errorf("heal changed the in-flight set: %d -> %d entries", entries, len(p.inflight))
	}
	for i := range p.inflight {
		e := &p.inflight[i]
		if e.attempts > 1 {
			t.Errorf("entry %d attempts = %d after heal, want re-armed (<= 1)", i, e.attempts)
		}
		if e.rto > 4*relRTO {
			t.Errorf("entry %d rto = %v after heal, want reseeded near %v", i, time.Duration(e.rto), time.Duration(relRTO))
		}
	}
	p.mu.Unlock()
	if got := d.Stats().PeersHealed; got != 1 {
		t.Errorf("PeersHealed = %d after one heal, want 1", got)
	}
	// Lift the cut so Close drains a live wire.
	if err := d.HealPartition(); err != nil {
		t.Fatal(err)
	}
}
