package gasnet

import (
	"errors"
	"fmt"
	"time"

	"gupcxx/internal/obs"
)

// ErrBackpressure is the sentinel for admission refused because the
// target peer's send window is full: the peer is alive but cannot absorb
// more traffic right now. Under the fail-fast policy it is returned
// immediately; under the bounded-block policy (the default) it is
// returned only after waiting out the admission bound without a credit.
// The concrete error is a *BackpressureError carrying the peer rank; test
// with errors.Is(err, ErrBackpressure).
var ErrBackpressure = errors.New("gasnet: peer send window full (backpressure)")

// BackpressureError is the typed form of ErrBackpressure: it records
// which peer's window was full, so callers can shed or reroute per
// destination. errors.Is(err, ErrBackpressure) matches it.
type BackpressureError struct {
	Peer int
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("gasnet: send window to rank %d full (backpressure)", e.Peer)
}

// Is makes errors.Is(err, ErrBackpressure) true for every
// *BackpressureError regardless of peer.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// AdmitSend is credit-based admission for one operation targeting rank
// `to`: it answers "may this rank inject toward that peer right now?"
// before any buffer is staged or sequence number assigned. nil means
// admitted. A down peer yields ErrPeerUnreachable; a full congestion
// window yields *BackpressureError — immediately under the fail-fast
// policy, or after a bounded wait for a credit under the default
// blocking policy (the wait is the smaller of Config.BackpressureWait
// and the caller's own deadline budget, passed as maxWait; maxWait <= 0
// means no caller bound).
//
// Admission is an occupancy check, not a reservation: coalescing can pack
// several admitted messages into one datagram, so a reserved-credit
// scheme would leak credits. The residual over-admission is bounded by
// rel.send's own (liveness-aware) window block.
//
// Conduits without a reliability layer (SMP, PSHM, SIM, unreliable UDP)
// and self-sends have no window to fill and are always admitted.
func (ep *Endpoint) AdmitSend(to int, maxWait time.Duration) error {
	d := ep.dom
	if d.rel == nil || to == ep.rank || to < 0 || to >= d.cfg.Ranks {
		return nil
	}
	if ep.PeerDown(to) {
		d.downPeerFails.Add(1)
		return ErrPeerUnreachable
	}
	return d.rel.admit(ep.rank, to, maxWait)
}

// admit implements AdmitSend's window check against the from→to pair.
//
// Admission outcomes double as the ops plane's backpressure signal, as
// EDGES rather than levels: the first refused admission on an idle pair
// emits EvBackpressureOn, the first successful one afterwards emits
// EvBackpressureOff, and everything in between is silent (p.bpBlocked
// tracks the edge under p.mu). A pair that times out of the bounded
// block stays "on" — relief is only ever declared by an admission that
// actually went through.
func (r *reliability) admit(from, to int, maxWait time.Duration) error {
	p := r.pair(from, to)
	p.mu.Lock()
	if len(p.inflight) < p.cwnd {
		r.noteRelief(p, from, to)
		p.mu.Unlock()
		return nil
	}
	if r.bpFailFast {
		r.noteOnset(p, from, to)
		p.mu.Unlock()
		r.d.backpressureFails.Add(1)
		return &BackpressureError{Peer: to}
	}
	r.noteOnset(p, from, to)
	// Bounded block: wait for a credit, a Down transition, or the bound.
	// Acks are processed on the socket reader goroutines, so credits free
	// even though this goroutine is parked — the wait cannot deadlock the
	// pair against itself. Deadlines use the real clock: this path is
	// already off the fast path by definition.
	wait := r.bpWait
	if maxWait > 0 && maxWait < wait {
		wait = maxWait
	}
	deadline := time.Now().Add(wait)
	for {
		if r.closed.Load() {
			// Racing shutdown: admit; send will drop the datagram.
			p.mu.Unlock()
			return nil
		}
		if p.down {
			// Down supersedes backpressure; clear the edge without a
			// relief event (the liveness transition tells the story).
			p.bpBlocked = false
			p.mu.Unlock()
			r.d.downPeerFails.Add(1)
			return ErrPeerUnreachable
		}
		if len(p.inflight) < p.cwnd {
			r.noteRelief(p, from, to)
			p.mu.Unlock()
			return nil
		}
		p.mu.Unlock()
		if time.Now().After(deadline) {
			r.d.backpressureFails.Add(1)
			return &BackpressureError{Peer: to}
		}
		time.Sleep(50 * time.Microsecond)
		p.mu.Lock()
	}
}

// noteOnset records the idle→blocked backpressure edge. Caller holds p.mu.
func (r *reliability) noteOnset(p *relPair, from, to int) {
	if p.bpBlocked {
		return
	}
	p.bpBlocked = true
	r.d.emit(obs.EvBackpressureOn, from, to, int64(len(p.inflight)), int64(p.cwnd))
}

// noteRelief records the blocked→idle backpressure edge. Caller holds p.mu.
func (r *reliability) noteRelief(p *relPair, from, to int) {
	if !p.bpBlocked {
		return
	}
	p.bpBlocked = false
	r.d.emit(obs.EvBackpressureOff, from, to, int64(len(p.inflight)), int64(p.cwnd))
}

// FlowState is a snapshot of one pair's congestion-control state, for
// observability and tests: the smoothed RTT estimate, the current
// retransmission timeout, the adaptive window and its occupancy in
// datagrams and bytes, and the receive side's reorder-buffer occupancy
// against its byte budget.
type FlowState struct {
	SRTT          time.Duration
	RTO           time.Duration
	Window        int
	InFlight      int
	InFlightBytes int // bytes retained in the retransmission queue
	ReorderBytes  int // bytes parked out-of-order on the receive side
	ReorderBudget int // Config.RelReorderBytes bound on ReorderBytes
}

// FlowState reports rank local's congestion state toward peer. The zero
// FlowState is returned for conduits without a reliability layer, for
// self-queries, and for out-of-range ranks (there is no flow to report).
func (d *Domain) FlowState(local, peer int) FlowState {
	if d.rel == nil || local == peer ||
		local < 0 || local >= d.cfg.Ranks || peer < 0 || peer >= d.cfg.Ranks {
		return FlowState{}
	}
	p := d.rel.pair(local, peer)
	p.mu.Lock()
	fs := FlowState{
		SRTT:          time.Duration(p.srtt),
		RTO:           time.Duration(p.rto),
		Window:        p.cwnd,
		InFlight:      len(p.inflight),
		ReorderBytes:  p.reorderBytes,
		ReorderBudget: d.rel.reorderBudget,
	}
	for i := range p.inflight {
		fs.InFlightBytes += len(p.inflight[i].wb.b)
	}
	p.mu.Unlock()
	return fs
}
