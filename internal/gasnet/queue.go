package gasnet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// amQueue is a multi-producer single-consumer queue of inbound active
// messages for one endpoint. Producers are any rank's goroutine (plus the
// UDP conduit's reader goroutine); the sole consumer is the owning rank's
// progress engine.
//
// The fast path is a bounded lock-free ring (ring.go): a push costs one CAS
// and two stores, no mutex, no allocation, no clock read. When the ring is
// full the push spills to a mutex-guarded backlog slice; a sticky spill
// flag then routes *every* producer to the backlog until the consumer has
// drained it, which is what preserves per-producer FIFO order across the
// ring→backlog→ring transitions (a producer's later message may never
// overtake its earlier one by landing in the ring while the earlier one
// still waits in the backlog).
//
// Messages may carry a readyAt release time (SIM conduit wire latency); a
// message is not delivered before that time. Because every sender-receiver
// pair experiences the same constant latency and release times are stamped
// from a monotone cached clock, they are monotone in arrival order per
// producer and a FIFO prefix scan suffices. Queues that have never seen a
// timed message (every conduit but SIM) skip clock reads entirely: drain
// compares against a literal zero.
type amQueue struct {
	ring onceRing

	// timed is set (sticky) by the first push carrying a release time;
	// until then drains never read the clock.
	timed atomic.Bool

	// spilled is true while the backlog holds messages; it routes all
	// producers to the backlog, preserving per-producer FIFO.
	spilled atomic.Bool

	mu      sync.Mutex
	backlog []Msg

	scratch []Msg // drain buffer, reused across polls; see drain's contract

	// fastPushes counts messages delivered through the lock-free ring;
	// spills counts messages that overflowed into the backlog. fastPushes
	// is tallied on the consumer side (batched per drain) so the producer
	// fast path carries no shared counter traffic.
	fastPushes atomic.Int64
	spills     atomic.Int64
}

// push enqueues a message. It is the producer side of message delivery and
// may be called from any goroutine.
func (q *amQueue) push(m Msg) {
	if m.readyAt != 0 && !q.timed.Load() {
		q.timed.Store(true)
	}
	if !q.spilled.Load() && q.ring.get().push(m) {
		return
	}
	q.spills.Add(1)
	q.mu.Lock()
	q.backlog = append(q.backlog, m)
	q.spilled.Store(true)
	q.mu.Unlock()
}

// drain moves all deliverable messages (readyAt <= now) into the returned
// slice. It returns nil when nothing is deliverable.
//
// Ownership contract: the returned slice and the Msg values in it are
// owned by the caller ONLY until the next drain call on this queue — the
// backing array is reused. Callers that keep a message beyond that point
// (Endpoint.PollInternal's held set, collective matching tables) must copy
// the Msg value, and anything retaining Payload bytes past the enclosing
// dispatch must copy those too (the payload may alias a pooled wire
// buffer that is recycled after dispatch). TestDrainScratchOwnership
// pins this contract.
func (q *amQueue) drain(now int64) []Msg {
	q.scratch = q.scratch[:0]
	r := q.ring.get()
	var blocked bool
	q.scratch, blocked = r.drainInto(q.scratch, now)
	if n := len(q.scratch); n > 0 {
		q.fastPushes.Add(int64(n))
	}
	// The backlog holds messages appended after their producers' earlier
	// ring messages were published; only consult it once those are
	// collected. If the head of the ring is merely not deliverable yet
	// (blocked), the backlog's messages cannot be deliverable either for
	// the same producer, and skipping it keeps the reasoning simple for
	// all producers.
	if !blocked && q.spilled.Load() {
		q.mu.Lock()
		// Overflow-ordering fence: the sweep above may have raced ahead
		// of a publication that nonetheless happened before some backlog
		// append (producer order: ring push, then — once full — spill).
		// Under the lock, which excludes new backlog appends, sweep again
		// up to the tail observed now, waiting out any reservation that
		// is mid-publication, so the backlog can never overtake a ring
		// message from the same producer.
		tail := r.tail.Load()
		for !blocked && r.head != tail {
			m, ok, stalled := r.pop(now)
			switch {
			case ok:
				q.scratch = append(q.scratch, m)
				q.fastPushes.Add(1)
			case stalled:
				blocked = true
			default:
				runtime.Gosched() // producer mid-publish; finite wait
			}
		}
		if !blocked {
			n := 0
			for n < len(q.backlog) && q.backlog[n].readyAt <= now {
				n++
			}
			if n > 0 {
				q.scratch = append(q.scratch, q.backlog[:n]...)
				rem := copy(q.backlog, q.backlog[n:])
				for i := rem; i < len(q.backlog); i++ {
					q.backlog[i] = Msg{}
				}
				q.backlog = q.backlog[:rem]
			}
			if len(q.backlog) == 0 {
				// Producers may return to the ring: everything they had
				// enqueued before is in flight to the consumer already.
				q.spilled.Store(false)
			}
		}
		q.mu.Unlock()
	}
	if len(q.scratch) == 0 {
		return nil
	}
	return q.scratch
}

// drainNow drains using the cheapest clock that is correct for this
// queue's history: queues that never carried a release time compare
// against zero (no clock read at all); timed queues refresh the shared
// cached clock once per drain.
func (q *amQueue) drainNow() []Msg {
	if !q.timed.Load() {
		return q.drain(0)
	}
	return q.drain(clockRefresh())
}

// empty reports whether the queue holds no messages at all (deliverable or
// not).
func (q *amQueue) empty() bool {
	if !q.ring.get().empty() {
		return false
	}
	return !q.spilled.Load()
}

// --- cached wall clock ---

// wallClock caches time.Now().UnixNano() so that hot paths (SIM release
// stamping) read an atomic instead of making a clock syscall per push. It
// only ever advances. Consumers refresh it: every drain of a timed queue,
// every Park, and Domain construction. The staleness window is therefore
// one poll interval — release times stamped from a slightly stale clock
// release slightly early, which is a simulation-accuracy blip, never a
// correctness issue (delivery order per producer is preserved because the
// cache is monotone).
var wallClock atomic.Int64

// clockNow returns the cached clock, initialising it on first use.
func clockNow() int64 {
	if t := wallClock.Load(); t != 0 {
		return t
	}
	return clockRefresh()
}

// clockRefresh advances the cached clock to the real time (monotone: it
// never moves the cache backwards) and returns the freshest value known.
func clockRefresh() int64 {
	t := time.Now().UnixNano()
	for {
		cur := wallClock.Load()
		if cur >= t {
			return cur
		}
		if wallClock.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// nanotime returns the current time in nanoseconds. Tests use it to build
// explicit release times; the runtime paths prefer clockNow/clockRefresh.
func nanotime() int64 { return time.Now().UnixNano() }
