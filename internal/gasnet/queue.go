package gasnet

import (
	"sync"
	"time"
)

// amQueue is a multi-producer single-consumer queue of inbound active
// messages for one endpoint. Producers are any rank's goroutine; the sole
// consumer is the owning rank's progress engine.
//
// Messages may carry a readyAt release time (SIM conduit wire latency); a
// message is not delivered before that time. Because every sender-receiver
// pair experiences the same constant latency, release times are monotone in
// arrival order and a simple FIFO scan suffices.
type amQueue struct {
	mu      sync.Mutex
	pending []Msg
	scratch []Msg // drain buffer, reused across polls
}

// push enqueues a message.
func (q *amQueue) push(m Msg) {
	q.mu.Lock()
	q.pending = append(q.pending, m)
	q.mu.Unlock()
}

// drain moves all deliverable messages (readyAt in the past) into the
// returned slice, which is owned by the caller until the next drain call.
// It returns nil when nothing is deliverable.
func (q *amQueue) drain(now int64) []Msg {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return nil
	}
	// Find the prefix of deliverable messages.
	n := 0
	for n < len(q.pending) && q.pending[n].readyAt <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	q.scratch = q.scratch[:0]
	q.scratch = append(q.scratch, q.pending[:n]...)
	// Shift the remainder down, releasing references in the tail.
	rem := copy(q.pending, q.pending[n:])
	for i := rem; i < len(q.pending); i++ {
		q.pending[i] = Msg{}
	}
	q.pending = q.pending[:rem]
	return q.scratch
}

// empty reports whether the queue holds no messages at all (deliverable or
// not).
func (q *amQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) == 0
}

// nanotime returns the current monotonic-ish time in nanoseconds used for
// SIM-conduit message release.
func nanotime() int64 { return time.Now().UnixNano() }
