package gasnet

import (
	"testing"
	"time"
)

// TestPollInternalServicesRequests: a peer blocked on a remote get makes
// progress when the target runs only internal-level polls.
func TestPollInternalServicesRequests(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)
	ApplyAmo(seg1, off, AmoStore, 424242, 0)

	dst := make([]byte, 8)
	done := false
	d.Endpoint(0).GetRemote(1, off, 8, dst, func(error) { done = true })
	deadline := time.Now().Add(2 * time.Second)
	for !done {
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		d.Endpoint(1).PollInternal() // target: internal progress only
		d.Endpoint(0).Poll()         // initiator: user-level
	}
	if leU64(dst) != 424242 {
		t.Errorf("get = %d", leU64(dst))
	}
}

// TestPollInternalHoldsAcks: the initiator's own internal progress must
// not complete its operations — acks wait for user-level Poll.
func TestPollInternalHoldsAcks(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)

	done := false
	ep0 := d.Endpoint(0)
	ep0.PutRemote(1, off, []byte{1, 0, 0, 0, 0, 0, 0, 0}, nil, func(error) { done = true })
	// Let the target service the request and the ack arrive.
	deadline := time.Now().Add(time.Second)
	for ep0.InboxEmpty() && time.Now().Before(deadline) {
		d.Endpoint(1).Poll()
	}
	// Internal progress on the initiator: ack must be held.
	for i := 0; i < 10; i++ {
		ep0.PollInternal()
	}
	if done {
		t.Fatal("internal progress delivered an operation completion")
	}
	if ep0.PendingOps() != 1 {
		t.Fatalf("pending = %d", ep0.PendingOps())
	}
	// User-level progress delivers it.
	ep0.Poll()
	if !done {
		t.Fatal("user-level progress did not deliver the held ack")
	}
}

// TestPollInternalHoldsRemoteCompletion: a serviced put's data is applied
// and acked under internal progress, but its remote-completion callback
// waits for user-level progress on the target.
func TestPollInternalHoldsRemoteCompletion(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)

	remoteRan := false
	acked := false
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	ep0.PutRemote(1, off, []byte{7, 0, 0, 0, 0, 0, 0, 0},
		func(*Endpoint) { remoteRan = true },
		func(error) { acked = true })

	deadline := time.Now().Add(time.Second)
	for !acked {
		if time.Now().After(deadline) {
			t.Fatal("timeout: put not acked under internal progress")
		}
		ep1.PollInternal()
		ep0.Poll()
	}
	// Data applied, op complete — but the remote callback must not have
	// run under internal-only progress at the target.
	if v := ApplyAmo(seg1, off, AmoLoad, 0, 0); v != 7 {
		t.Errorf("data not applied: %d", v)
	}
	if remoteRan {
		t.Fatal("remote completion ran under internal progress")
	}
	ep1.Poll()
	if !remoteRan {
		t.Fatal("remote completion lost")
	}
}

// TestPollInternalHoldsUserMessages: user-level AMs survive internal
// polls in order.
func TestPollInternalHoldsUserMessages(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: PSHM})
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		got = append(got, m.A0)
	})
	ep1 := d.Endpoint(1)
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase, A0: 1})
	ep1.PollInternal()
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase, A0: 2})
	if len(got) != 0 {
		t.Fatal("user message delivered by internal poll")
	}
	ep1.Poll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("order after hold: %v", got)
	}
}
