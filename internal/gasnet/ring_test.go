package gasnet

import "testing"

func TestRingFillAndDrain(t *testing.T) {
	var r onceRing
	q := r.get()
	for i := 0; i < ringCap; i++ {
		if !q.push(Msg{A0: uint64(i)}) {
			t.Fatalf("push %d rejected before capacity", i)
		}
	}
	if q.push(Msg{A0: 999}) {
		t.Fatal("push beyond capacity accepted")
	}
	for i := 0; i < ringCap; i++ {
		m, ok, _ := q.pop(0)
		if !ok || m.A0 != uint64(i) {
			t.Fatalf("pop %d = (%v, %v)", i, m.A0, ok)
		}
	}
	if _, ok, _ := q.pop(0); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if !q.empty() {
		t.Fatal("drained ring not empty")
	}
}

func TestRingWraparound(t *testing.T) {
	var r onceRing
	q := r.get()
	// Cycle far more messages than the capacity through the ring to
	// exercise the sequence-number wraparound logic.
	next := uint64(0)
	for i := 0; i < 10*ringCap; i++ {
		if !q.push(Msg{A0: uint64(i)}) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
		if i%3 == 2 { // drain in small batches to slide head and tail
			for j := 0; j < 3; j++ {
				m, ok, _ := q.pop(0)
				if !ok || m.A0 != next {
					t.Fatalf("pop = (%v, %v), want %d", m.A0, ok, next)
				}
				next++
			}
		}
	}
}

func TestRingReadyAtBlocksHead(t *testing.T) {
	var r onceRing
	q := r.get()
	q.push(Msg{A0: 1, readyAt: 100})
	q.push(Msg{A0: 2, readyAt: 200})
	if _, ok, blocked := q.pop(50); ok || !blocked {
		t.Fatal("future message must block, not deliver")
	}
	m, ok, _ := q.pop(150)
	if !ok || m.A0 != 1 {
		t.Fatalf("pop at 150 = (%v, %v)", m.A0, ok)
	}
	if _, ok, blocked := q.pop(150); ok || !blocked {
		t.Fatal("second message not yet due")
	}
	if m, ok, _ := q.pop(250); !ok || m.A0 != 2 {
		t.Fatal("second message lost")
	}
}
