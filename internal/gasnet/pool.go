package gasnet

import (
	"sync"
	"sync/atomic"
)

// The wire-buffer arena removes per-message heap allocation from the
// substrate's injection and delivery paths: every encoded datagram, every
// received datagram, and every staged RMA payload lives in a recycled,
// size-classed buffer. Ownership is reference-counted because one received
// datagram may carry several coalesced messages that are dispatched (and
// possibly held across polls) independently.
//
// Ownership rules (see also DESIGN.md §7):
//
//   - arena.get returns a buffer with one reference, owned by the caller.
//   - A Msg whose buf field is set owns one reference; whoever consumes the
//     message (the dispatch loop, after the handler returns) releases it.
//   - Handlers therefore may read Msg.Payload for the duration of the call
//     only; retaining the bytes requires a copy.
//   - The reliability layer's retransmission queue (reliable.go) holds one
//     reference on every sequenced datagram it may need to re-send,
//     released when the peer's cumulative ack covers it; the receive-side
//     reorder buffer likewise holds its parked datagrams' references until
//     delivery or duplicate/out-of-window drop.
//   - A buffer reaching zero references returns to its pool; its bytes may
//     be reused by any later get, on any goroutine.

// Buffer size classes. Small covers the entire internal protocol (a wire
// message is 37 header bytes plus payload; puts/gets/AMOs move at most a
// few words on the AM path) and typical RPC arguments; large covers a full
// UDP datagram, which is also the ceiling for any single wire message.
const (
	bufClassSmall = 512
	bufClassLarge = maxUDPPayload + 256
)

// wireBuf is one pooled buffer plus its reference count. The refs field
// only matters for buffers shared by several messages (a coalesced
// datagram); the common case is get → use → release with refs pinned at 1.
type wireBuf struct {
	b     []byte
	arena *bufArena
	class int8 // 0 small, 1 large, -1 unpooled (oversize)
	refs  atomic.Int32
}

// retain adds n references (used when one datagram fans out into n
// messages).
func (wb *wireBuf) retain(n int32) { wb.refs.Add(n) }

// release drops one reference, recycling the buffer when it was the last.
func (wb *wireBuf) release() {
	if wb.refs.Add(-1) == 0 && wb.arena != nil {
		wb.arena.put(wb)
	}
}

// bufArena is a per-Domain pool of wire buffers with hit/miss accounting.
type bufArena struct {
	small sync.Pool
	large sync.Pool

	hits   atomic.Int64
	misses atomic.Int64
}

// get returns a buffer of length n with one reference. Requests beyond the
// large class fall back to a plain allocation that release simply drops.
func (a *bufArena) get(n int) *wireBuf {
	var p *sync.Pool
	var class int8
	var size int
	switch {
	case n <= bufClassSmall:
		p, class, size = &a.small, 0, bufClassSmall
	case n <= bufClassLarge:
		p, class, size = &a.large, 1, bufClassLarge
	default:
		a.misses.Add(1)
		wb := &wireBuf{b: make([]byte, n), arena: a, class: -1}
		wb.refs.Store(1)
		return wb
	}
	if v := p.Get(); v != nil {
		wb := v.(*wireBuf)
		a.hits.Add(1)
		wb.b = wb.b[:n]
		wb.refs.Store(1)
		return wb
	}
	a.misses.Add(1)
	wb := &wireBuf{b: make([]byte, size)[:n], arena: a, class: class}
	wb.refs.Store(1)
	return wb
}

// put returns wb to its pool. Oversize buffers are dropped for the GC.
func (a *bufArena) put(wb *wireBuf) {
	switch wb.class {
	case 0:
		wb.b = wb.b[:cap(wb.b)]
		a.small.Put(wb)
	case 1:
		wb.b = wb.b[:cap(wb.b)]
		a.large.Put(wb)
	}
}
