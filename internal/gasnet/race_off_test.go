//go:build !race

package gasnet

const raceEnabled = false
