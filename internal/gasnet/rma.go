package gasnet

// This file implements the AM-based remote RMA and atomic protocol: the
// code path taken when the target segment is NOT directly addressable by
// the initiator. Each operation is a request/reply pair; the reply carries
// the initiator-side cookie that locates the completion callback in the
// endpoint's outstanding-op table. Completion callbacks therefore always
// run inside the initiator's Poll — i.e. remote operations never complete
// synchronously, which is exactly why the paper's eager-notification
// optimization is a no-op (one predicted-untaken branch) off-node.
//
// Every completion callback carries an error: nil on the reply path, or
// ErrPeerUnreachable when the target was declared down — either at
// injection (the peer is already down, so the request is refused on the
// spot) or later, when the liveness sweep retires the pending entry.

// nopDone is installed when the caller passes a nil completion callback.
func nopDone(*Msg, error) {}

// nopAck is the bare-acknowledgment equivalent.
func nopAck(error) {}

// refuseDown eagerly fails an operation targeting an already-declared-dead
// peer, reporting whether it did. Failing at injection keeps the op table
// free of entries the (already completed) sweep would never retire.
func (ep *Endpoint) refuseDown(to int) bool {
	if !ep.PeerDown(to) {
		return false
	}
	ep.dom.downPeerFails.Add(1)
	return true
}

// PutRemote initiates a put of data into the target rank's segment at byte
// offset off. remoteFn, if non-nil, is executed on the target's progress
// goroutine after the data is applied (the paper's remote completion /
// remote_cx::as_rpc). onDone, if non-nil, runs on the initiating rank's
// goroutine once the target has acknowledged (operation completion, nil
// error) or the target is declared unreachable. data is copied at
// injection time, so the caller may reuse the buffer immediately (source
// completion is synchronous).
func (ep *Endpoint) PutRemote(to int, off uint32, data []byte, remoteFn func(*Endpoint), onDone func(error)) {
	// Registered in its bare form: a func(*Msg, error) wrapper here would
	// cost one closure allocation per put.
	if onDone == nil {
		onDone = nopAck
	}
	if ep.refuseDown(to) {
		onDone(ErrPeerUnreachable)
		return
	}
	cookie := ep.ops.addDone(to, onDone)
	// Stage the payload in a pooled buffer: Send consumes the reference
	// (transferring it to the receiver in-memory, or dropping it once the
	// bytes are on the wire), so steady-state puts allocate nothing.
	wb := ep.dom.arena.get(len(data))
	copy(wb.b, data)
	ep.Send(to, Msg{
		Handler: hPutReq,
		A0:      cookie,
		A1:      uint64(off),
		Payload: wb.b,
		Fn:      remoteFn,
		buf:     wb,
	})
}

func handlePutReq(ep *Endpoint, m *Msg) {
	ep.Segment().CopyIn(uint32(m.A1), m.Payload)
	if m.Fn != nil {
		m.Fn(ep)
	}
	ep.Send(int(m.From), Msg{Handler: hPutAck, A0: m.A0})
}

// GetRemote initiates a get of n bytes from the target rank's segment at
// byte offset off into dst (which must have length >= n). onDone runs on
// the initiating rank's goroutine during a later Poll, after the data has
// been stored into dst (nil error) or the target is declared unreachable
// (dst untouched).
func (ep *Endpoint) GetRemote(to int, off uint32, n int, dst []byte, onDone func(error)) {
	if ep.refuseDown(to) {
		if onDone != nil {
			onDone(ErrPeerUnreachable)
		}
		return
	}
	// Registered closure-free: the table copies the reply into dst before
	// invoking onDone (opTable.addGet), so a steady-state get allocates
	// nothing on the initiator.
	if onDone == nil {
		onDone = nopAck
	}
	cookie := ep.ops.addGet(to, dst, onDone)
	ep.Send(to, Msg{
		Handler: hGetReq,
		A0:      cookie,
		A1:      uint64(off),
		A2:      uint64(n),
	})
}

func handleGetReq(ep *Endpoint, m *Msg) {
	n := int(m.A2)
	wb := ep.dom.arena.get(n)
	ep.Segment().CopyOut(uint32(m.A1), wb.b)
	ep.Send(int(m.From), Msg{Handler: hGetRep, A0: m.A0, Payload: wb.b, buf: wb})
}

// AmoRemote initiates an atomic op on the 8-byte word at off in the target
// rank's segment. onOld, if non-nil, receives the word's previous value
// (and a nil error) on the initiating rank's goroutine during a later
// Poll, or a zero value with ErrPeerUnreachable if the target is declared
// down. Non-fetching callers pass an onOld that ignores its value (or
// nil).
func (ep *Endpoint) AmoRemote(to int, off uint32, op AmoOp, operand1, operand2 uint64, onOld func(old uint64, err error)) {
	if ep.refuseDown(to) {
		if onOld != nil {
			onOld(0, ErrPeerUnreachable)
		}
		return
	}
	cb := nopDone
	if onOld != nil {
		cb = func(m *Msg, err error) {
			if err != nil {
				onOld(0, err)
				return
			}
			onOld(m.A1, nil)
		}
	}
	cookie := ep.ops.add(to, cb)
	ep.Send(to, Msg{
		Handler: hAmoReq,
		A0:      cookie,
		A1:      uint64(off) | uint64(op)<<32,
		A2:      operand1,
		A3:      operand2,
	})
}

func handleAmoReq(ep *Endpoint, m *Msg) {
	off := uint32(m.A1)
	op := AmoOp(m.A1 >> 32)
	old := ApplyAmo(ep.Segment(), off, op, m.A2, m.A3)
	ep.Send(int(m.From), Msg{Handler: hAmoRep, A0: m.A0, A1: old})
}
