package gasnet

import "errors"

// ErrBadAddress reports that a remote operation named memory outside the
// target rank's segment (or an invalid atomic op code): the target refused
// the request and replied with an addressing-error status instead of
// touching its memory. Before process-per-rank worlds this was a panic —
// both sides shared one trusted address space. Wire input is untrusted, so
// it is now a completion value, counted in Stats.BadAddrDrops on the
// target.
var ErrBadAddress = errors.New("gasnet: remote address outside target segment")

// This file implements the AM-based remote RMA and atomic protocol: the
// code path taken when the target segment is NOT directly addressable by
// the initiator. Each operation is a request/reply pair; the reply carries
// the initiator-side cookie that locates the completion callback in the
// endpoint's outstanding-op table. Completion callbacks therefore always
// run inside the initiator's Poll — i.e. remote operations never complete
// synchronously, which is exactly why the paper's eager-notification
// optimization is a no-op (one predicted-untaken branch) off-node.
//
// Every completion callback carries an error: nil on the reply path, or
// ErrPeerUnreachable when the target was declared down — either at
// injection (the peer is already down, so the request is refused on the
// spot) or later, when the liveness sweep retires the pending entry.

// nopDone is installed when the caller passes a nil completion callback.
func nopDone(*Msg, error) {}

// nopAck is the bare-acknowledgment equivalent.
func nopAck(error) {}

// refuseDown eagerly fails an operation targeting an already-declared-dead
// peer, reporting whether it did. Failing at injection keeps the op table
// free of entries the (already completed) sweep would never retire.
func (ep *Endpoint) refuseDown(to int) bool {
	if !ep.PeerDown(to) {
		return false
	}
	ep.dom.downPeerFails.Add(1)
	return true
}

// PutRemote initiates a put of data into the target rank's segment at byte
// offset off. remoteFn, if non-nil, is executed on the target's progress
// goroutine after the data is applied (the paper's remote completion /
// remote_cx::as_rpc). onDone, if non-nil, runs on the initiating rank's
// goroutine once the target has acknowledged (operation completion, nil
// error) or the target is declared unreachable. data is copied at
// injection time, so the caller may reuse the buffer immediately (source
// completion is synchronous).
func (ep *Endpoint) PutRemote(to int, off uint32, data []byte, remoteFn func(*Endpoint), onDone func(error)) {
	// Registered in its bare form: a func(*Msg, error) wrapper here would
	// cost one closure allocation per put.
	if onDone == nil {
		onDone = nopAck
	}
	if ep.refuseDown(to) {
		onDone(ErrPeerUnreachable)
		return
	}
	cookie := ep.ops.addDone(to, ep.DownGen(to), onDone)
	// Stage the payload in a pooled buffer: Send consumes the reference
	// (transferring it to the receiver in-memory, or dropping it once the
	// bytes are on the wire), so steady-state puts allocate nothing.
	wb := ep.dom.arena.get(len(data))
	copy(wb.b, data)
	ep.Send(to, Msg{
		Handler: hPutReq,
		A0:      cookie,
		A1:      uint64(off),
		Payload: wb.b,
		Fn:      remoteFn,
		buf:     wb,
	})
}

// PutNotifyRemote initiates a put that lands data at off in the target
// rank's segment and then runs the target's registered notify handler id
// with args during its user-level progress — the wire-encodable form of
// remote completion (no closure crosses the wire, so it works across
// address spaces; see Domain.SetNotifyHook). The request packs the notify
// id into A2 (biased by one so zero keeps meaning "no notify") and the
// argument length into A3; args ride behind the data in the payload.
// onDone follows PutRemote's contract.
func (ep *Endpoint) PutNotifyRemote(to int, off uint32, data []byte, id uint32, args []byte, onDone func(error)) {
	if onDone == nil {
		onDone = nopAck
	}
	if ep.refuseDown(to) {
		onDone(ErrPeerUnreachable)
		return
	}
	cookie := ep.ops.addDone(to, ep.DownGen(to), onDone)
	wb := ep.dom.arena.get(len(data) + len(args))
	copy(wb.b, data)
	copy(wb.b[len(data):], args)
	ep.Send(to, Msg{
		Handler: hPutReq,
		A0:      cookie,
		A1:      uint64(off),
		A2:      uint64(id) + 1,
		A3:      uint64(len(args)),
		Payload: wb.b,
		buf:     wb,
	})
}

// splitPut validates a put request's addressing and splits its payload
// into the data to land and the notify-argument bytes riding behind it
// (A3 is the argument length; zero for plain puts, so pre-notify senders
// decode unchanged). An invalid request — argument length exceeding the
// payload, or a destination range outside this rank's segment — is
// counted, nacked with an addressing-error ack, and refused.
func splitPut(ep *Endpoint, m *Msg) (data, args []byte, ok bool) {
	if m.A3 <= uint64(len(m.Payload)) {
		cut := uint64(len(m.Payload)) - m.A3
		data, args = m.Payload[:cut], m.Payload[cut:]
		if ep.Segment().ValidRange(m.A1, uint64(len(data))) {
			return data, args, true
		}
	}
	ep.dom.badAddrDrops.Add(1)
	ep.Send(int(m.From), Msg{Handler: hPutAck, A0: m.A0, A3: ackBadAddr})
	return nil, nil, false
}

// runNotify dispatches a put's notify (if the request carried one) to the
// runtime layer's hook. Runs on the target rank's goroutine; args must not
// be retained past the call.
func (ep *Endpoint) runNotify(m *Msg, args []byte) {
	if m.A2 == 0 {
		return
	}
	if hook := ep.dom.notifyHook; hook != nil {
		hook(ep, uint32(m.A2-1), args)
	}
}

func handlePutReq(ep *Endpoint, m *Msg) {
	data, args, ok := splitPut(ep, m)
	if !ok {
		return
	}
	ep.Segment().CopyIn(uint32(m.A1), data)
	if m.Fn != nil {
		m.Fn(ep)
	}
	ep.runNotify(m, args)
	ep.Send(int(m.From), Msg{Handler: hPutAck, A0: m.A0})
}

// applyPutHeld services a put request that carries user-level work (an
// in-memory remote-completion closure or a wire notify id) at
// internal-level progress: it validates and applies the data and sends the
// ack immediately, but returns the user-level work as a closure for the
// endpoint to hold until the next Poll — remote_cx::as_rpc semantics. ok
// is false when the request was refused (nack already sent); fn is nil
// when the request carried no user-level work after all.
func (ep *Endpoint) applyPutHeld(m *Msg) (fn func(*Endpoint), ok bool) {
	data, args, ok := splitPut(ep, m)
	if !ok {
		return nil, false
	}
	ep.Segment().CopyIn(uint32(m.A1), data)
	ep.Send(int(m.From), Msg{Handler: hPutAck, A0: m.A0})
	fn = m.Fn
	if m.A2 != 0 {
		if hook := ep.dom.notifyHook; hook != nil {
			// The drain buffer is recycled before Poll runs the held work,
			// so the notify arguments must be detached. The allocation is
			// confined to the held path — Poll-serviced notifies (the
			// common case) pass the payload through without copying.
			id := uint32(m.A2 - 1)
			argsCopy := append([]byte(nil), args...)
			if inner := fn; inner != nil {
				fn = func(ep *Endpoint) { inner(ep); hook(ep, id, argsCopy) }
			} else {
				fn = func(ep *Endpoint) { hook(ep, id, argsCopy) }
			}
		}
	}
	return fn, true
}

// GetRemote initiates a get of n bytes from the target rank's segment at
// byte offset off into dst (which must have length >= n). onDone runs on
// the initiating rank's goroutine during a later Poll, after the data has
// been stored into dst (nil error) or the target is declared unreachable
// (dst untouched).
func (ep *Endpoint) GetRemote(to int, off uint32, n int, dst []byte, onDone func(error)) {
	if ep.refuseDown(to) {
		if onDone != nil {
			onDone(ErrPeerUnreachable)
		}
		return
	}
	// Registered closure-free: the table copies the reply into dst before
	// invoking onDone (opTable.addGet), so a steady-state get allocates
	// nothing on the initiator.
	if onDone == nil {
		onDone = nopAck
	}
	cookie := ep.ops.addGet(to, ep.DownGen(to), dst, onDone)
	ep.Send(to, Msg{
		Handler: hGetReq,
		A0:      cookie,
		A1:      uint64(off),
		A2:      uint64(n),
	})
}

func handleGetReq(ep *Endpoint, m *Msg) {
	// Wire-supplied offset and length are untrusted: a request outside the
	// segment — or one whose reply could never fit a datagram, which would
	// otherwise be a remote-triggerable panic at the reply send — is
	// counted and nacked, never applied.
	if !ep.Segment().ValidRange(m.A1, m.A2) ||
		(ep.dom.cfg.Conduit == UDP && m.A2 > maxUDPPayload) {
		ep.dom.badAddrDrops.Add(1)
		ep.Send(int(m.From), Msg{Handler: hGetRep, A0: m.A0, A3: ackBadAddr})
		return
	}
	n := int(m.A2)
	wb := ep.dom.arena.get(n)
	ep.Segment().CopyOut(uint32(m.A1), wb.b)
	ep.Send(int(m.From), Msg{Handler: hGetRep, A0: m.A0, Payload: wb.b, buf: wb})
}

// AmoRemote initiates an atomic op on the 8-byte word at off in the target
// rank's segment. onOld, if non-nil, receives the word's previous value
// (and a nil error) on the initiating rank's goroutine during a later
// Poll, or a zero value with ErrPeerUnreachable if the target is declared
// down. Non-fetching callers pass an onOld that ignores its value (or
// nil).
func (ep *Endpoint) AmoRemote(to int, off uint32, op AmoOp, operand1, operand2 uint64, onOld func(old uint64, err error)) {
	if ep.refuseDown(to) {
		if onOld != nil {
			onOld(0, ErrPeerUnreachable)
		}
		return
	}
	cb := nopDone
	if onOld != nil {
		cb = func(m *Msg, err error) {
			if err != nil {
				onOld(0, err)
				return
			}
			onOld(m.A1, nil)
		}
	}
	cookie := ep.ops.add(to, ep.DownGen(to), cb)
	ep.Send(to, Msg{
		Handler: hAmoReq,
		A0:      cookie,
		A1:      uint64(off) | uint64(op)<<32,
		A2:      operand1,
		A3:      operand2,
	})
}

func handleAmoReq(ep *Endpoint, m *Msg) {
	off := uint32(m.A1)
	op := AmoOp(m.A1 >> 32)
	// ApplyAmo panics on invalid input by contract (trusted callers); a
	// wire request is not a trusted caller, so validate the op code,
	// alignment, and bounds first and nack instead.
	if !op.Valid() || off%8 != 0 || !ep.Segment().ValidRange(uint64(off), 8) {
		ep.dom.badAddrDrops.Add(1)
		ep.Send(int(m.From), Msg{Handler: hAmoRep, A0: m.A0, A3: ackBadAddr})
		return
	}
	old := ApplyAmo(ep.Segment(), off, op, m.A2, m.A3)
	ep.Send(int(m.From), Msg{Handler: hAmoRep, A0: m.A0, A1: old})
}
