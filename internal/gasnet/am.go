package gasnet

import (
	"fmt"

	"gupcxx/internal/serial"
)

// Handler identifiers for the substrate's internal protocol. User-level
// layers (the gupcxx runtime) register additional handlers starting at
// HandlerUserBase.
const (
	hPutReq uint8 = iota // put request: apply payload at offset, reply ack
	hPutAck              // put acknowledgment: complete outstanding op
	hGetReq              // get request: read range, reply with data
	hGetRep              // get reply: deliver data, complete outstanding op
	hAmoReq              // atomic request: apply op, reply with old value
	hAmoRep              // atomic reply: deliver old value, complete op
	hHeldFn              // held remote-completion closure (PollInternal)

	// HandlerUserBase is the first handler ID available to higher layers.
	HandlerUserBase = 16

	// MaxHandlers bounds the handler table size.
	MaxHandlers = 64
)

// Msg is an active message. Internal-protocol messages are fully described
// by (Handler, A0..A3, Payload) and are round-trippable through the serial
// wire encoding; Fn is an in-memory extension used for closure-carrying
// user-level RPC on co-located ranks (a network conduit for separate address
// spaces would instead require registered handlers, which is exactly what
// the internal protocol demonstrates).
type Msg struct {
	Handler uint8
	From    int32 // sender rank
	A0      uint64
	A1      uint64
	A2      uint64
	A3      uint64
	Payload []byte
	Fn      func(*Endpoint) // closure payload; nil for wire messages

	readyAt int64 // SIM conduit release time (0 = immediately deliverable)
}

// HandlerFunc processes one delivered active message on the receiving
// endpoint's progress goroutine.
type HandlerFunc func(ep *Endpoint, m *Msg)

// encodeMsg serializes a wire message (one with Fn == nil) into buf,
// returning the encoded bytes.
func encodeMsg(buf []byte, m *Msg) []byte {
	e := serial.NewEncoder(buf)
	e.PutU8(m.Handler)
	e.PutU32(uint32(m.From))
	e.PutU64(m.A0)
	e.PutU64(m.A1)
	e.PutU64(m.A2)
	e.PutU64(m.A3)
	e.PutRaw(m.Payload) // extends to end of message
	return e.Bytes()
}

// decodeMsg parses a wire message produced by encodeMsg. The returned
// message's Payload aliases b.
func decodeMsg(b []byte) (Msg, error) {
	d := serial.NewDecoder(b)
	var m Msg
	m.Handler = d.U8()
	m.From = int32(d.U32())
	m.A0 = d.U64()
	m.A1 = d.U64()
	m.A2 = d.U64()
	m.A3 = d.U64()
	m.Payload = d.Raw()
	if err := d.Err(); err != nil {
		return Msg{}, fmt.Errorf("gasnet: bad wire message: %w", err)
	}
	return m, nil
}
