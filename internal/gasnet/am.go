package gasnet

import (
	"encoding/binary"
	"fmt"

	"gupcxx/internal/serial"
)

// Handler identifiers for the substrate's internal protocol. User-level
// layers (the gupcxx runtime) register additional handlers starting at
// HandlerUserBase.
const (
	hPutReq uint8 = iota // put request: apply payload at offset, reply ack
	hPutAck              // put acknowledgment: complete outstanding op
	hGetReq              // get request: read range, reply with data
	hGetRep              // get reply: deliver data, complete outstanding op
	hAmoReq              // atomic request: apply op, reply with old value
	hAmoRep              // atomic reply: deliver old value, complete op
	hHeldFn              // held remote-completion closure (PollInternal)

	// HandlerUserBase is the first handler ID available to higher layers.
	HandlerUserBase = 16

	// MaxHandlers bounds the handler table size.
	MaxHandlers = 64
)

// Msg is an active message. Internal-protocol messages are fully described
// by (Handler, A0..A3, Payload) and are round-trippable through the serial
// wire encoding; Fn is an in-memory extension used for closure-carrying
// user-level RPC on co-located ranks (a network conduit for separate address
// spaces would instead require registered handlers, which is exactly what
// the internal protocol demonstrates).
type Msg struct {
	Handler uint8
	From    int32 // sender rank
	A0      uint64
	A1      uint64
	A2      uint64
	A3      uint64
	Payload []byte
	Fn      func(*Endpoint) // closure payload; nil for wire messages

	readyAt int64 // SIM conduit release time (0 = immediately deliverable)

	// buf, when set, is the pooled wire buffer Payload aliases; the Msg
	// owns one reference on it, dropped by release after dispatch. See
	// pool.go for the ownership rules.
	buf *wireBuf
}

// release drops the message's reference on its pooled wire buffer, if any.
// After release, Payload must not be read.
func (m *Msg) release() {
	if wb := m.buf; wb != nil {
		m.buf = nil
		wb.release()
	}
}

// HandlerFunc processes one delivered active message on the receiving
// endpoint's progress goroutine.
type HandlerFunc func(ep *Endpoint, m *Msg)

// encodeMsg serializes a wire message (one with Fn == nil) into buf,
// returning the encoded bytes.
func encodeMsg(buf []byte, m *Msg) []byte {
	e := serial.NewEncoder(buf)
	e.PutU8(m.Handler)
	e.PutU32(uint32(m.From))
	e.PutU64(m.A0)
	e.PutU64(m.A1)
	e.PutU64(m.A2)
	e.PutU64(m.A3)
	e.PutRaw(m.Payload) // extends to end of message
	return e.Bytes()
}

// wireHeaderLen is the encoded size of a wire message's fixed fields
// (handler, from, A0..A3); the payload follows to the end of the frame.
const wireHeaderLen = 1 + 4 + 4*8

// appendMsg appends m's wire encoding to dst (which, unlike encodeMsg, is
// not reset first) — the building block of coalesced datagrams.
func appendMsg(dst []byte, m *Msg) []byte {
	dst = append(dst, m.Handler)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint64(dst, m.A0)
	dst = binary.LittleEndian.AppendUint64(dst, m.A1)
	dst = binary.LittleEndian.AppendUint64(dst, m.A2)
	dst = binary.LittleEndian.AppendUint64(dst, m.A3)
	return append(dst, m.Payload...)
}

// decodeMsg parses a wire message produced by encodeMsg. The returned
// message's Payload aliases b.
func decodeMsg(b []byte) (Msg, error) {
	d := serial.NewDecoder(b)
	var m Msg
	m.Handler = d.U8()
	m.From = int32(d.U32())
	m.A0 = d.U64()
	m.A1 = d.U64()
	m.A2 = d.U64()
	m.A3 = d.U64()
	m.Payload = d.Raw()
	if err := d.Err(); err != nil {
		return Msg{}, fmt.Errorf("gasnet: bad wire message: %w", err)
	}
	return m, nil
}
