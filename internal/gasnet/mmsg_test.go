package gasnet

import (
	"net/netip"
	"testing"
	"time"
)

// bigBurst sends a burst of three oversized payloads from ep0 to rank 1:
// each 40KiB payload forces its own datagram (TestUDPBurstSplitsOversizedBatch
// pins the split), so the burst stages exactly three frames for one
// vectorized write at EndBurst.
func bigBurst(ep0 *Endpoint) {
	big := make([]byte, 40<<10)
	ep0.BeginBurst()
	for i := 0; i < 3; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, Payload: big})
	}
	ep0.EndBurst()
}

// TestBatchSyscallAmortization pins the tentpole claim: a burst of N
// staged frames costs one sendmmsg on the way out, and the receive side
// drains multiple queued datagrams per recvmmsg — asserted through the
// Stats counters, which only the vectorized datapath bumps.
func TestBatchSyscallAmortization(t *testing.T) {
	if !mmsgAvailable {
		t.Skip("vectorized datapath not available on this platform")
	}
	// The explicit zero-probability FaultConfig shields the exact syscall
	// counts from GUPCXX_UDP_FAULT (make test-loss), which would otherwise
	// drop or duplicate staged frames and perturb the batch sizes.
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, Fault: &FaultConfig{}})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)

	before := d.Stats()
	bigBurst(ep0)
	after := d.Stats()
	// Send side, checked before any polling so no ack traffic interferes:
	// three datagrams, one syscall.
	if n := after.DatagramsSent - before.DatagramsSent; n != 3 {
		t.Fatalf("burst sent %d datagrams, want 3", n)
	}
	if n := after.SendmmsgCalls - before.SendmmsgCalls; n != 1 {
		t.Errorf("3-frame burst cost %d sendmmsg calls, want 1", n)
	}
	if after.SendBatchHighWater < 3 {
		t.Errorf("SendBatchHighWater = %d, want >= 3", after.SendBatchHighWater)
	}

	// Receive side: the reader goroutine drains the socket on its own
	// schedule, so a single burst may be split across wakeups. Flood with
	// back-to-back three-frame bursts until one recvmmsg observes at least
	// two queued datagrams.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().RecvBatchHighWater < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no recvmmsg ever drained more than one datagram")
		}
		bigBurst(ep0)
		ep1.Poll() // drain the inbox so pooled buffers recycle
	}
	s := d.Stats()
	if s.RecvmmsgCalls == 0 {
		t.Error("RecvmmsgCalls = 0 with the vectorized path live")
	}
	// At least one call drained >= 2 frames and every call drains >= 1,
	// so the syscall count must run strictly behind the datagram count:
	// the amortization itself.
	if s.RecvmmsgCalls >= s.RecvBatchFrames {
		t.Errorf("no receive amortization: %d recvmmsg calls for %d frames",
			s.RecvmmsgCalls, s.RecvBatchFrames)
	}
}

// TestBatchFallbackSequential: Config.UDPNoMmsg forces the portable
// one-at-a-time adapter behind the same interface — traffic still flows,
// and the mmsg counters stay zero, proving which datapath served it.
func TestBatchFallbackSequential(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, UDPNoMmsg: true})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	bigBurst(ep0)
	deadline := time.Now().Add(2 * time.Second)
	for received < 3 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if received != 3 {
		t.Fatalf("delivered %d of 3", received)
	}
	s := d.Stats()
	if s.DatagramsSent != 3 {
		t.Errorf("DatagramsSent = %d, want 3", s.DatagramsSent)
	}
	if s.SendmmsgCalls != 0 || s.RecvmmsgCalls != 0 {
		t.Errorf("sequential fallback bumped mmsg counters: send %d, recv %d",
			s.SendmmsgCalls, s.RecvmmsgCalls)
	}
}

// recordingConn captures every write for inspection, standing in for the
// real socket adapter under the fault shim.
type recordingConn struct {
	batches [][][]byte // one inner slice of frame-byte copies per WriteBatch
	singles [][]byte
}

func (r *recordingConn) WriteToUDPAddrPort(b []byte, _ netip.AddrPort) (int, error) {
	r.singles = append(r.singles, append([]byte(nil), b...))
	return len(b), nil
}

func (r *recordingConn) WriteBatch(frames []batchFrame) error {
	var batch [][]byte
	for _, fr := range frames {
		batch = append(batch, append([]byte(nil), fr.b...))
	}
	r.batches = append(r.batches, batch)
	return nil
}

// frames builds a batch of single-byte frames with the given tags.
func testFrames(tags ...byte) []batchFrame {
	out := make([]batchFrame, len(tags))
	for i, tag := range tags {
		out[i] = batchFrame{b: []byte{tag}}
	}
	return out
}

// TestFaultConnWriteBatch pins the per-frame fault semantics of the
// vectorized write: each staged frame draws its own verdict exactly as if
// written alone — drops vanish from the batch, duplicates appear twice,
// reorder-held frames release behind a later batch's survivors.
func TestFaultConnWriteBatch(t *testing.T) {
	fd := &Domain{} // counters only; no transport behind it

	t.Run("drop", func(t *testing.T) {
		rec := &recordingConn{}
		fc := newFaultConn(rec, FaultConfig{Drop: 1}, 0, fd)
		if err := fc.WriteBatch(testFrames(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
		if len(rec.batches) != 0 || len(rec.singles) != 0 {
			t.Errorf("dropped batch still reached the wire: %v", rec.batches)
		}
	})

	t.Run("dup", func(t *testing.T) {
		rec := &recordingConn{}
		fc := newFaultConn(rec, FaultConfig{Dup: 1}, 0, fd)
		if err := fc.WriteBatch(testFrames(1, 2)); err != nil {
			t.Fatal(err)
		}
		if len(rec.batches) != 1 {
			t.Fatalf("got %d batches, want 1", len(rec.batches))
		}
		want := []byte{1, 1, 2, 2}
		got := rec.batches[0]
		if len(got) != len(want) {
			t.Fatalf("duplicated batch has %d frames, want %d", len(got), len(want))
		}
		for i, fr := range got {
			if fr[0] != want[i] {
				t.Errorf("frame %d = %d, want %d (each frame twice, in order)", i, fr[0], want[i])
			}
		}
	})

	t.Run("reorder", func(t *testing.T) {
		rec := &recordingConn{}
		fc := newFaultConn(rec, FaultConfig{Reorder: 1}, 0, fd)
		// All three frames are held: nothing survives, nothing is written.
		if err := fc.WriteBatch(testFrames(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
		if len(rec.batches) != 0 {
			t.Fatalf("held frames written immediately: %v", rec.batches)
		}
		// A later fault-free batch flushes the holdback behind its own
		// survivors: [4, 1, 2, 3].
		fc.setConfig(FaultConfig{})
		if err := fc.WriteBatch(testFrames(4)); err != nil {
			t.Fatal(err)
		}
		if len(rec.batches) != 1 {
			t.Fatalf("got %d batches, want 1", len(rec.batches))
		}
		want := []byte{4, 1, 2, 3}
		got := rec.batches[0]
		if len(got) != len(want) {
			t.Fatalf("release batch has %d frames, want %d", len(got), len(want))
		}
		for i, fr := range got {
			if fr[0] != want[i] {
				t.Errorf("frame %d = %d, want %d (held frames ride behind survivors)", i, fr[0], want[i])
			}
		}
	})

	t.Run("holdback-bound", func(t *testing.T) {
		rec := &recordingConn{}
		fc := newFaultConn(rec, FaultConfig{Reorder: 1}, 0, fd)
		// Ten frames against a holdback bound of faultMaxHeld (8): the
		// first eight are held, the overflow passes through — and passing
		// through releases the held eight behind it, all in one batch.
		if err := fc.WriteBatch(testFrames(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)); err != nil {
			t.Fatal(err)
		}
		if len(rec.batches) != 1 {
			t.Fatalf("got %d batches, want 1", len(rec.batches))
		}
		want := []byte{9, 10, 1, 2, 3, 4, 5, 6, 7, 8}
		got := rec.batches[0]
		if len(got) != len(want) {
			t.Fatalf("batch has %d frames, want %d", len(got), len(want))
		}
		for i, fr := range got {
			if fr[0] != want[i] {
				t.Errorf("frame %d = %d, want %d", i, fr[0], want[i])
			}
		}
	})
}

// TestBatchDeliveryCorruptFrame drives a multi-frame vectorized write
// containing a corrupt datagram through real sockets: the valid frames
// must be delivered, the corrupt one counted and dropped — the
// kernel-facing half of the FuzzDecodeDatagram contract, now under
// recvmmsg delivery.
func TestBatchDeliveryCorruptFrame(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP, UDPUnreliable: true})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(_ *Endpoint, m *Msg) { got = append(got, m.A0) })
	ep1 := d.Endpoint(1)

	valid := func(a0 uint64) []byte {
		m := Msg{Handler: HandlerUserBase, From: 0, A0: a0}
		return append([]byte{frameSingle}, encodeMsg(nil, &m)...)
	}
	frames := []batchFrame{
		{b: valid(1), addr: d.udp.addrOf(1)},
		{b: []byte{0xEE, 0xBA, 0xD0}, addr: d.udp.addrOf(1)}, // unknown tag
		{b: valid(2), addr: d.udp.addrOf(1)},
	}
	if err := d.udp.send[0].WriteBatch(frames); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivered %v, want [1 2]", got)
	}
	if n := d.Stats().DecodeErrors; n != 1 {
		t.Errorf("DecodeErrors = %d, want 1", n)
	}
}
