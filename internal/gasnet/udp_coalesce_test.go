package gasnet

import (
	"testing"
	"time"
)

func TestUDPCoalesceBurst(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		got = append(got, m.A0)
		if string(m.Payload) != "batched" {
			t.Errorf("payload %q", m.Payload)
		}
	})
	ep0 := d.Endpoint(0)
	ep0.BeginBurst()
	for i := 0; i < 8; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: uint64(i), Payload: []byte("batched")})
	}
	if n := d.Stats().DatagramsSent; n != 0 {
		t.Errorf("%d datagrams escaped before EndBurst", n)
	}
	ep0.EndBurst()
	ep1 := d.Endpoint(1)
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 8 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d of 8", len(got))
	}
	// One datagram carries the whole burst, and unpacking preserves the
	// injection order (a single sender, a single frame).
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
	s := d.Stats()
	if s.DatagramsSent != 1 {
		t.Errorf("DatagramsSent = %d, want 1", s.DatagramsSent)
	}
	if s.CoalescedBatches != 1 || s.CoalescedMsgs != 8 {
		t.Errorf("coalescing stats = %d batches / %d msgs, want 1/8",
			s.CoalescedBatches, s.CoalescedMsgs)
	}
	// The coalesced burst must also be one vectorized write: 8 messages,
	// 1 datagram, 1 sendmmsg. Gated on the fault shim being unarmed —
	// under GUPCXX_UDP_FAULT a dropped frame legitimately skips the write.
	if mmsgAvailable && d.cfg.Fault == nil && s.SendmmsgCalls != 1 {
		t.Errorf("SendmmsgCalls = %d, want 1", s.SendmmsgCalls)
	}
}

func TestUDPBurstNesting(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep0 := d.Endpoint(0)
	ep0.BeginBurst()
	ep0.Send(1, Msg{Handler: HandlerUserBase})
	ep0.BeginBurst() // nested: must not flush at the inner EndBurst
	ep0.Send(1, Msg{Handler: HandlerUserBase})
	ep0.EndBurst()
	if n := d.Stats().DatagramsSent; n != 0 {
		t.Errorf("inner EndBurst flushed %d datagrams", n)
	}
	ep0.EndBurst()
	ep1 := d.Endpoint(1)
	deadline := time.Now().Add(2 * time.Second)
	for received < 2 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if received != 2 {
		t.Fatalf("delivered %d of 2", received)
	}
	if n := d.Stats().DatagramsSent; n != 1 {
		t.Errorf("DatagramsSent = %d, want 1", n)
	}
}

func TestUDPBurstSplitsOversizedBatch(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep0 := d.Endpoint(0)
	// Three payloads of 40KiB cannot share a 60KiB datagram: the burst
	// must split rather than overflow.
	big := make([]byte, 40<<10)
	ep0.BeginBurst()
	for i := 0; i < 3; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, Payload: big})
	}
	ep0.EndBurst()
	ep1 := d.Endpoint(1)
	deadline := time.Now().Add(2 * time.Second)
	for received < 3 && time.Now().Before(deadline) {
		ep1.Poll()
	}
	if received != 3 {
		t.Fatalf("delivered %d of 3", received)
	}
	if n := d.Stats().DatagramsSent; n != 3 {
		t.Errorf("DatagramsSent = %d, want 3", n)
	}
}

func TestUDPEndBurstWithoutBeginPanics(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	defer func() {
		if recover() == nil {
			t.Error("unmatched EndBurst should panic")
		}
	}()
	d.Endpoint(0).EndBurst()
}

// TestUDPPoolRecycling: the steady-state send/receive path is served from
// the wire-buffer arena rather than the heap.
func TestUDPPoolRecycling(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	d := newTestDomain(t, Config{Ranks: 2, Conduit: UDP})
	defer d.Close()
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 50; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, Payload: []byte("recycled")})
		for received <= i && time.Now().Before(deadline) {
			ep1.Poll()
		}
	}
	if received != 50 {
		t.Fatalf("delivered %d of 50", received)
	}
	s := d.Stats()
	if s.PoolHits == 0 {
		t.Errorf("50 sequential roundtrips never hit the buffer pool (misses %d)", s.PoolMisses)
	}
}

// TestStatsRingFastPath: in-memory delivery goes through the lock-free
// ring and the Stats counters see it.
func TestStatsRingFastPath(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SMP})
	received := 0
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) { received++ })
	for i := 0; i < 10; i++ {
		d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase})
	}
	d.Endpoint(1).Poll()
	if received != 10 {
		t.Fatalf("delivered %d of 10", received)
	}
	s := d.Stats()
	if s.RingPushes < 10 {
		t.Errorf("RingPushes = %d, want >= 10", s.RingPushes)
	}
	if s.BacklogSpills != 0 {
		t.Errorf("BacklogSpills = %d, want 0", s.BacklogSpills)
	}
}
