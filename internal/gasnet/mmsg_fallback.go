//go:build !linux || !(amd64 || arm64)

package gasnet

import "net"

// Portable fallback: no vectorized syscalls on this platform; every
// batch write or read degrades to one syscall per datagram behind the
// same batchConn interface (seqConn, udp.go). The Sendmmsg*/Recvmmsg*
// Stats counters stay zero here.
const mmsgAvailable = false

func newBatchConn(conn *net.UDPConn, d *Domain) batchConn {
	return seqConn{conn}
}
