package gasnet

import (
	"sync"
	"testing"
	"time"
)

func newTestDomain(t testing.TB, cfg Config) *Domain {
	t.Helper()
	d, err := NewDomain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDomain(Config{Ranks: 0}); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := NewDomain(Config{Ranks: 2, Conduit: Conduit(9)}); err == nil {
		t.Error("bad conduit accepted")
	}
	if _, err := NewDomain(Config{Ranks: 2, SegmentBytes: 4}); err == nil {
		t.Error("tiny segment accepted")
	}
	d := newTestDomain(t, Config{Ranks: 2})
	if d.Config().SegmentBytes != DefaultSegmentBytes {
		t.Error("segment default not applied")
	}
	if d.Config().Conduit != SMP {
		t.Error("default conduit should be SMP")
	}
}

func TestParseConduit(t *testing.T) {
	for _, name := range []string{"smp", "pshm", "sim", "udp"} {
		c, err := ParseConduit(name)
		if err != nil || c.String() != name {
			t.Errorf("ParseConduit(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ParseConduit("ibv"); err == nil {
		t.Error("unknown conduit accepted")
	}
}

func TestTopology(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 6, Conduit: SIM, RanksPerNode: 2})
	wantNodes := []int{0, 0, 1, 1, 2, 2}
	for r, want := range wantNodes {
		if d.Endpoint(r).Node() != want {
			t.Errorf("rank %d on node %d, want %d", r, d.Endpoint(r).Node(), want)
		}
	}
	ep0 := d.Endpoint(0)
	if !ep0.Local(1) || ep0.Local(2) {
		t.Error("locality wrong")
	}
	// PSHM: everyone co-located, but not statically.
	p := newTestDomain(t, Config{Ranks: 4, Conduit: PSHM})
	if !p.Endpoint(0).Local(3) {
		t.Error("PSHM ranks must be co-located")
	}
	if p.Config().StaticLocal() {
		t.Error("PSHM locality is dynamic")
	}
	if !newTestDomain(t, Config{Ranks: 2, Conduit: SMP}).Config().StaticLocal() {
		t.Error("SMP locality is static")
	}
}

func TestHandlerRegistration(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 1})
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) {})
	for _, bad := range []func(){
		func() { d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) {}) }, // dup
		func() { d.RegisterHandler(0, func(*Endpoint, *Msg) {}) },               // reserved
		func() { d.RegisterHandler(MaxHandlers, func(*Endpoint, *Msg) {}) },     // range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration accepted")
				}
			}()
			bad()
		}()
	}
}

func TestSendPollSameNode(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: PSHM})
	var got []uint64
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		got = append(got, m.A0)
	})
	ep0, ep1 := d.Endpoint(0), d.Endpoint(1)
	for i := uint64(1); i <= 3; i++ {
		ep0.Send(1, Msg{Handler: HandlerUserBase, A0: i})
	}
	if n := ep1.Poll(); n != 3 {
		t.Fatalf("Poll = %d", n)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("delivery order %v", got)
	}
	if d.AMSends() != 3 {
		t.Errorf("AMSends = %d", d.AMSends())
	}
}

func TestSendCrossNodeLatencyAndWireRoundTrip(t *testing.T) {
	lat := 5 * time.Millisecond
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: lat})
	var got *Msg
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		cp := *m
		got = &cp
	})
	payload := []byte("hello wire")
	d.Endpoint(0).Send(1, Msg{
		Handler: HandlerUserBase,
		A0:      1, A1: 2, A2: 3, A3: 4,
		Payload: payload,
	})
	ep1 := d.Endpoint(1)
	if n := ep1.Poll(); n != 0 {
		t.Fatal("message delivered before wire latency elapsed")
	}
	deadline := time.Now().Add(time.Second)
	for got == nil && time.Now().Before(deadline) {
		ep1.Poll()
		time.Sleep(time.Millisecond)
	}
	if got == nil {
		t.Fatal("message never delivered")
	}
	if got.A0 != 1 || got.A1 != 2 || got.A2 != 3 || got.A3 != 4 {
		t.Errorf("args corrupted: %+v", got)
	}
	if string(got.Payload) != "hello wire" {
		t.Errorf("payload corrupted: %q", got.Payload)
	}
	if got.From != 0 {
		t.Errorf("From = %d", got.From)
	}
}

func TestCrossNodeClosureReattached(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	ran := false
	d.RegisterHandler(HandlerUserBase, func(ep *Endpoint, m *Msg) {
		m.Fn(ep)
	})
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase, Fn: func(*Endpoint) { ran = true }})
	deadline := time.Now().Add(time.Second)
	for !ran && time.Now().Before(deadline) {
		d.Endpoint(1).Poll()
	}
	if !ran {
		t.Error("closure lost across simulated wire")
	}
}

func TestUnknownHandlerCountedDrop(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2})
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase + 7})
	d.Endpoint(1).Poll()
	if got := d.Stats().BadHandlerDrops; got != 1 {
		t.Errorf("BadHandlerDrops = %d, want 1", got)
	}
}

func TestPutGetAmoRemote(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	ep0 := d.Endpoint(0)
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)

	// Put with remote completion and op completion.
	putDone, remoteRan := false, false
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ep0.PutRemote(1, off, data, func(*Endpoint) { remoteRan = true }, func(error) { putDone = true })
	spinBoth(t, d, func() bool { return putDone })
	if !remoteRan {
		t.Error("remote completion did not run")
	}
	out := make([]byte, 8)
	seg1.CopyOut(off, out)
	if string(out) != string(data) {
		t.Errorf("put data %v", out)
	}
	if ep0.PendingOps() != 0 {
		t.Errorf("pending ops = %d", ep0.PendingOps())
	}

	// Get.
	dst := make([]byte, 8)
	getDone := false
	ep0.GetRemote(1, off, 8, dst, func(error) { getDone = true })
	spinBoth(t, d, func() bool { return getDone })
	if string(dst) != string(data) {
		t.Errorf("get data %v", dst)
	}

	// Atomic fetch-add.
	var old uint64
	amoDone := false
	ep0.AmoRemote(1, off, AmoAdd, 10, 0, func(o uint64, _ error) { old = o; amoDone = true })
	spinBoth(t, d, func() bool { return amoDone })
	want := leU64(data)
	if old != want {
		t.Errorf("amo old = %#x, want %#x", old, want)
	}
	if v := ApplyAmo(seg1, off, AmoLoad, 0, 0); v != want+10 {
		t.Errorf("amo result = %#x", v)
	}
}

// spinBoth drives both endpoints' progress until cond holds.
func spinBoth(t *testing.T, d *Domain, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		for r := 0; r < d.Ranks(); r++ {
			d.Endpoint(r).Poll()
		}
	}
}

func TestPutSourceBufferReusableImmediately(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: SIM, SimLatency: time.Nanosecond})
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)
	buf := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	done := false
	d.Endpoint(0).PutRemote(1, off, buf, nil, func(error) { done = true })
	// Clobber the source immediately: injection must have copied.
	for i := range buf {
		buf[i] = 0
	}
	spinBoth(t, d, func() bool { return done })
	out := make([]byte, 8)
	seg1.CopyOut(off, out)
	for _, b := range out {
		if b != 9 {
			t.Fatalf("source reuse corrupted transfer: %v", out)
		}
	}
}

func TestOpTableRecycling(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: PSHM})
	ep0 := d.Endpoint(0)
	seg1 := d.Segment(1)
	off, _ := seg1.Alloc(8)
	for i := 0; i < 100; i++ {
		done := false
		ep0.AmoRemote(1, off, AmoAdd, 1, 0, func(uint64, error) { done = true })
		spinBoth(t, d, func() bool { return done })
	}
	if ep0.PendingOps() != 0 {
		t.Errorf("pending = %d", ep0.PendingOps())
	}
	if got := len(ep0.ops.slots); got > 2 {
		t.Errorf("op table grew to %d slots despite recycling", got)
	}
}

func TestParkWakesOnMessage(t *testing.T) {
	d := newTestDomain(t, Config{Ranks: 2, Conduit: PSHM})
	d.RegisterHandler(HandlerUserBase, func(*Endpoint, *Msg) {})
	ep1 := d.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(1)
	woke := make(chan time.Duration, 1)
	go func() {
		defer wg.Done()
		start := time.Now()
		ep1.Park()
		woke <- time.Since(start)
	}()
	time.Sleep(2 * time.Millisecond) // let it park (beyond one timeout is fine)
	d.Endpoint(0).Send(1, Msg{Handler: HandlerUserBase})
	wg.Wait()
	<-woke // parked at most parkTimeout regardless; just ensure no deadlock
	if n := ep1.Poll(); n != 1 {
		t.Errorf("Poll after wake = %d", n)
	}
}

func TestMsgWireEncodeDecode(t *testing.T) {
	m := Msg{Handler: 3, From: 7, A0: 1, A1: 1 << 60, A2: 42, A3: ^uint64(0), Payload: []byte{0, 255, 7}}
	wire := encodeMsg(nil, &m)
	got, err := decodeMsg(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Handler != m.Handler || got.From != m.From || got.A0 != m.A0 ||
		got.A1 != m.A1 || got.A2 != m.A2 || got.A3 != m.A3 || string(got.Payload) != string(m.Payload) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	if _, err := decodeMsg(wire[:10]); err == nil {
		t.Error("truncated message decoded")
	}
}
