package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{40, 10, 30, 20}
	s := Summarize(samples, 2)
	if s.N != 4 || s.Min != 10 || s.Max != 40 {
		t.Errorf("bad extrema: %+v", s)
	}
	if s.Mean != 25 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.TopKMean != 15 { // (10+20)/2
		t.Errorf("TopKMean = %v", s.TopKMean)
	}
	if s.TopK != 2 {
		t.Errorf("TopK = %d", s.TopK)
	}
}

func TestSummarizeEmptyAndClamp(t *testing.T) {
	if s := Summarize(nil, 10); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := Summarize([]time.Duration{5, 15}, 10)
	if s.TopK != 2 || s.TopKMean != 10 {
		t.Errorf("clamped summary %+v", s)
	}
	s = Summarize([]time.Duration{5, 15}, 0)
	if s.TopK != 2 {
		t.Errorf("topK=0 should mean all: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	Summarize(in, 2)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

// TestTopKMeanProperty: the top-k mean is ≤ the overall mean and ≥ the
// minimum, and equals the mean of the k smallest by construction.
func TestTopKMeanProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) + 1
		}
		k := int(kRaw)%len(samples) + 1
		s := Summarize(samples, k)
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted[:k] {
			sum += d
		}
		want := time.Duration(float64(sum) / float64(k))
		diff := s.TopKMean - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1 && s.TopKMean <= s.Mean+1 && s.TopKMean >= s.Min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	i := 0
	out := Sample(5, func() time.Duration {
		i++
		return time.Duration(i)
	})
	if len(out) != 5 || out[0] != 1 || out[4] != 5 {
		t.Errorf("Sample = %v", out)
	}
}

func TestPaperMethodology(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Paper(func() time.Duration {
		return time.Duration(100 + rng.Intn(100))
	})
	if s.N != 20 || s.TopK != 10 {
		t.Errorf("Paper = %+v", s)
	}
	if s.TopKMean > s.Mean {
		t.Error("top-k mean above mean")
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(200, 100) != "2.00x" {
		t.Errorf("Ratio = %s", Ratio(200, 100))
	}
	if Ratio(100, 0) != "inf" {
		t.Error("zero denominator")
	}
	if got := PercentFaster(150, 100); got != "+50.0%" {
		t.Errorf("PercentFaster = %s", got)
	}
	if PercentFaster(0, 100) != "n/a" {
		t.Error("zero old")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b") // short row padded
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("rule %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "alpha  1") {
		t.Errorf("row %q", lines[2])
	}
}
