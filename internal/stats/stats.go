// Package stats provides the measurement methodology of the paper's
// evaluation (§IV): repeated sampling of a timed region with the reported
// figure being the mean of the best k of n samples ("running twenty
// samples, taking the average of the top ten"), plus small formatting
// helpers for emitting result tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes a set of duration samples.
type Summary struct {
	N        int
	Min      time.Duration
	Max      time.Duration
	Mean     time.Duration
	TopK     int           // number of best samples averaged for TopKMean
	TopKMean time.Duration // mean of the TopK smallest samples
	StdDev   time.Duration
}

// Summarize computes a Summary over samples, averaging the best topK
// (smallest durations). If topK <= 0 or exceeds len(samples), all samples
// are used.
func Summarize(samples []time.Duration, topK int) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if topK <= 0 || topK > len(s) {
		topK = len(s)
	}
	var sum, sumAll float64
	for i, d := range s {
		if i < topK {
			sum += float64(d)
		}
		sumAll += float64(d)
	}
	mean := sumAll / float64(len(s))
	var varAcc float64
	for _, d := range s {
		dev := float64(d) - mean
		varAcc += dev * dev
	}
	return Summary{
		N:        len(s),
		Min:      s[0],
		Max:      s[len(s)-1],
		Mean:     time.Duration(mean),
		TopK:     topK,
		TopKMean: time.Duration(sum / float64(topK)),
		StdDev:   time.Duration(math.Sqrt(varAcc / float64(len(s)))),
	}
}

// Sample times fn n times and returns the samples in collection order.
func Sample(n int, fn func() time.Duration) []time.Duration {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fn())
	}
	return out
}

// Paper runs the paper's default methodology: 20 samples, mean of the best
// 10 (§IV). For noisy experiments the paper raised this to 60/10; callers
// can use Sample+Summarize directly for that.
func Paper(fn func() time.Duration) Summary {
	return Summarize(Sample(20, fn), 10)
}

// Ratio formats new relative to old as the paper reports improvements:
// "1.25x" speedup factors (old/new for durations, where smaller is
// better).
func Ratio(old, new time.Duration) string {
	if new <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(old)/float64(new))
}

// PercentFaster formats the relative time reduction of new vs old as a
// percentage speedup, the paper's other reporting convention.
func PercentFaster(old, new time.Duration) string {
	if old <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(old)-float64(new))/float64(new))
}

// Table accumulates rows of string cells and renders them column-aligned,
// for the cmd/ harnesses that regenerate the paper's figures as text.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table, column-aligned, to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}
