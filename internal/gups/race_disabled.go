//go:build !race

package gups

// RaceEnabled reports whether the race detector is active; see
// race_enabled.go.
const RaceEnabled = false
