//go:build race

package gups

// RaceEnabled reports whether the race detector is active. The Raw and
// ManualLocal variants intentionally perform unsynchronized concurrent
// updates (HPCC RandomAccess permits lost updates), which the detector
// rightly flags; multi-rank tests of those variants are skipped under
// -race.
const RaceEnabled = true
