// Package gups implements the HPC Challenge RandomAccess benchmark (GUPS)
// over the gupcxx runtime, in the five variants evaluated by the paper
// (§IV-B) plus the raw upper bound:
//
//   - Raw: pure Go updates through direct pointers to every co-located
//     segment, bypassing the runtime entirely (single-node upper bound);
//   - ManualLocal: per-update is_local check + downcast, falling back to
//     RMA for remote targets (the §II-C manual-localization idiom);
//   - RMAPromise / RMAFuture: straightforward RMA on every update,
//     ignoring locality — a batch of gets, a wait, then a batch of puts —
//     tracked by one promise or by conjoined futures;
//   - AMOPromise / AMOFuture: one remote atomic xor per update, tracked by
//     a promise or conjoined futures.
//
// The random stream and verification follow the HPCC reference: the
// update value/index generator is the period-(2^63 − 1) LFSR over the
// primitive polynomial x^63 + x^2 + x + 1, and correctness is checked by
// re-applying the stream (xor is an involution) and counting table slots
// that fail to return to their initial value; the benchmark tolerates up
// to 1% errors for the unsynchronized variants.
package gups

import (
	"fmt"

	"gupcxx"
)

// poly is the primitive polynomial of the HPCC random stream (x^63 + x^2 +
// x + 1), applied on sign-bit overflow.
const poly = 0x0000000000000007

// RNG is the HPCC RandomAccess number stream.
type RNG struct {
	state uint64
}

// Next advances the stream and returns the next value.
func (g *RNG) Next() uint64 {
	v := g.state
	hi := v >> 63
	v <<= 1
	if hi != 0 {
		v ^= poly
	}
	g.state = v
	return v
}

// Starts returns the stream value at position n (mod 2^63 − 1), the HPCC
// HPCC_starts function: it lets each rank jump to its slice of the global
// update stream in O(log n) time using precomputed powers of the step
// matrix (here, shift-and-reduce doubling).
func Starts(n int64) uint64 {
	const period = int64((uint64(1) << 63) - 1)
	for n < 0 {
		n += period
	}
	for n > period {
		n -= period
	}
	if n == 0 {
		return 1
	}
	var m2 [64]uint64
	temp := uint64(1)
	for i := 0; i < 64; i++ {
		m2[i] = temp
		temp = step(step(temp))
	}
	i := 62
	for i >= 0 && n&(1<<uint(i)) == 0 {
		i--
	}
	ran := uint64(2)
	for i > 0 {
		temp = 0
		for j := 0; j < 64; j++ {
			if ran&(1<<uint(j)) != 0 {
				temp ^= m2[j]
			}
		}
		ran = temp
		i--
		if n&(1<<uint(i)) != 0 {
			ran = step(ran)
		}
	}
	return ran
}

// step advances an LFSR value by one position.
func step(v uint64) uint64 {
	hi := v >> 63
	v <<= 1
	if hi != 0 {
		v ^= poly
	}
	return v
}

// Variant names one of the benchmark implementations.
type Variant int

const (
	// Raw bypasses the runtime with direct pointers (single node only).
	Raw Variant = iota
	// ManualLocal checks locality per update and downcasts when possible.
	ManualLocal
	// RMAPromise uses pure RMA with a promise tracking completion.
	RMAPromise
	// RMAFuture uses pure RMA with conjoined futures.
	RMAFuture
	// AMOPromise uses remote atomics with a promise.
	AMOPromise
	// AMOFuture uses remote atomics with conjoined futures.
	AMOFuture

	variantCount
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Raw:
		return "raw"
	case ManualLocal:
		return "manual-localization"
	case RMAPromise:
		return "rma-promises"
	case RMAFuture:
		return "rma-futures"
	case AMOPromise:
		return "amo-promises"
	case AMOFuture:
		return "amo-futures"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Variants lists all implementations in presentation order.
func Variants() []Variant {
	return []Variant{Raw, ManualLocal, RMAPromise, RMAFuture, AMOPromise, AMOFuture}
}

// DefaultBatch is the number of in-flight updates per batch for the
// batched variants, following the HPCC look-ahead convention.
const DefaultBatch = 512

// Config parameterizes a GUPS run.
type Config struct {
	// LogTableSize is log2 of the total number of table words across all
	// ranks.
	LogTableSize int
	// UpdatesPerRank is the number of updates each rank performs. Zero
	// selects the HPCC default of 4×(table words)/ranks.
	UpdatesPerRank int64
	// Batch is the update look-ahead depth (default DefaultBatch).
	Batch int
	// StreamOffset positions the job in the global HPCC stream. The LFSR
	// state reached from seed 1 stays sparse for thousands of steps, so
	// early indices are badly skewed at the small table sizes this
	// reproduction uses; starting deep in the (single, well-defined) HPCC
	// stream restores uniformity. Zero selects DefaultStreamOffset; use a
	// negative value for the true stream origin.
	StreamOffset int64
}

// DefaultStreamOffset positions runs deep enough in the HPCC stream that
// the LFSR state is dense.
const DefaultStreamOffset = int64(1) << 40

func (c Config) withDefaults(ranks int) Config {
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.StreamOffset == 0 {
		c.StreamOffset = DefaultStreamOffset
	} else if c.StreamOffset < 0 {
		c.StreamOffset = 0
	}
	if c.UpdatesPerRank == 0 {
		c.UpdatesPerRank = 4 * (int64(1) << c.LogTableSize) / int64(ranks)
	}
	return c
}

// Bench is one rank's handle on a prepared GUPS table.
type Bench struct {
	r       *gupcxx.Rank
	cfg     Config
	tabSize int64 // total words
	perRank int64 // words per rank
	mask    uint64
	tables  []gupcxx.GlobalPtr[uint64] // base pointer per rank
	local   []uint64                   // this rank's slice (direct view)
	ad      *gupcxx.AtomicDomain[uint64]

	// rawViews are direct views of every co-located rank's slice, built
	// once for the Raw variant — the "factored out of the update loop"
	// amortization the paper describes.
	rawViews [][]uint64
}

// New prepares the distributed table on the calling rank. Collective: all
// ranks must call it together. The table size must be divisible by the
// rank count.
func New(r *gupcxx.Rank, cfg Config) (*Bench, error) {
	cfg = cfg.withDefaults(r.N())
	tabSize := int64(1) << cfg.LogTableSize
	if tabSize%int64(r.N()) != 0 {
		return nil, fmt.Errorf("gups: table size 2^%d not divisible by %d ranks",
			cfg.LogTableSize, r.N())
	}
	perRank := tabSize / int64(r.N())
	base, err := gupcxx.AllocArray[uint64](r, int(perRank))
	if err != nil {
		return nil, err
	}
	b := &Bench{
		r:       r,
		cfg:     cfg,
		tabSize: tabSize,
		perRank: perRank,
		mask:    uint64(tabSize - 1),
		tables:  gupcxx.ExchangePtr(r, base),
		local:   base.LocalSlice(r, int(perRank)),
		ad:      gupcxx.NewAtomicDomain[uint64](r),
	}
	b.Reset()
	if allLocal(r) {
		b.rawViews = make([][]uint64, r.N())
		for t := 0; t < r.N(); t++ {
			b.rawViews[t] = b.tables[t].LocalSlice(r, int(perRank))
		}
	}
	r.Barrier()
	return b, nil
}

// allLocal reports whether every rank is co-located with the caller — the
// condition under which the benchmark's raw-C++-style bypass is legal.
func allLocal(r *gupcxx.Rank) bool {
	for t := 0; t < r.N(); t++ {
		if !r.LocalTo(t) {
			return false
		}
	}
	return true
}

// Reset reinitializes this rank's slice to table[i] = global index i, the
// HPCC initial condition. Collective with Run (call on all ranks, then
// Barrier happens inside Run's harness).
func (b *Bench) Reset() {
	lo := int64(b.r.Me()) * b.perRank
	for i := range b.local {
		b.local[i] = uint64(lo + int64(i))
	}
}

// Rank decomposition of a global index.
func (b *Bench) owner(idx uint64) (rank int, off int64) {
	return int(int64(idx) / b.perRank), int64(idx) % b.perRank
}

// Run performs this rank's share of the update stream using the given
// variant. Collective: all ranks call together; internal barriers bracket
// the timed region externally (the caller times around Run).
func (b *Bench) Run(v Variant) error {
	switch v {
	case Raw:
		return b.runRaw()
	case ManualLocal:
		b.runManual()
	case RMAPromise:
		b.runRMAPromise()
	case RMAFuture:
		b.runRMAFuture()
	case AMOPromise:
		b.runAMOPromise()
	case AMOFuture:
		b.runAMOFuture()
	default:
		return fmt.Errorf("gups: unknown variant %v", v)
	}
	return nil
}

// stream returns this rank's RNG positioned at the start of its share of
// the global update stream.
func (b *Bench) stream() RNG {
	return RNG{state: Starts(b.cfg.StreamOffset + b.cfg.UpdatesPerRank*int64(b.r.Me()))}
}

// runRaw is the pure-Go upper bound: direct pointers to all segments,
// plain (unsynchronized) read-xor-write updates. Only valid when all
// ranks are co-located.
func (b *Bench) runRaw() error {
	if b.rawViews == nil {
		return fmt.Errorf("gups: raw variant requires a single-node world")
	}
	rng := b.stream()
	per := b.perRank
	for i := int64(0); i < b.cfg.UpdatesPerRank; i++ {
		ran := rng.Next()
		idx := int64(ran & b.mask)
		b.rawViews[idx/per][idx%per] ^= ran
	}
	return nil
}

// runManual performs the §II-C manual-localization idiom: one locality
// check per update, downcast when local, RMA otherwise.
func (b *Bench) runManual() {
	r := b.r
	rng := b.stream()
	for i := int64(0); i < b.cfg.UpdatesPerRank; i++ {
		ran := rng.Next()
		rank, off := b.owner(ran & b.mask)
		dest := b.tables[rank].Element(int(off))
		if dest.IsLocal(r) {
			p := dest.Local(r)
			*p ^= ran
		} else {
			old := gupcxx.Rget(r, dest).Wait()
			gupcxx.Rput(r, old^ran, dest).Wait()
		}
	}
}

// runRMAPromise is the paper's "pure RMA w/promises": for each batch,
// launch RMA gets of all targets with one promise, wait, xor locally,
// launch RMA puts with a second promise, wait.
func (b *Bench) runRMAPromise() {
	r := b.r
	rng := b.stream()
	batch := int64(b.cfg.Batch)
	vals := make([]uint64, batch)
	rans := make([]uint64, batch)
	dests := make([]gupcxx.GlobalPtr[uint64], batch)
	for done := int64(0); done < b.cfg.UpdatesPerRank; {
		n := batch
		if rem := b.cfg.UpdatesPerRank - done; rem < n {
			n = rem
		}
		getP := r.NewPromise()
		for j := int64(0); j < n; j++ {
			ran := rng.Next()
			rans[j] = ran
			rank, off := b.owner(ran & b.mask)
			dests[j] = b.tables[rank].Element(int(off))
			gupcxx.RgetBulk(r, dests[j], vals[j:j+1], gupcxx.OpPromise(getP))
		}
		getP.Finalize().Wait()
		putP := r.NewPromise()
		for j := int64(0); j < n; j++ {
			gupcxx.Rput(r, vals[j]^rans[j], dests[j], gupcxx.OpPromise(putP))
		}
		putP.Finalize().Wait()
		done += n
	}
}

// runRMAFuture is "pure RMA w/futures": identical data movement, but
// completion tracked by conjoining each operation's future with when_all.
func (b *Bench) runRMAFuture() {
	r := b.r
	rng := b.stream()
	batch := int64(b.cfg.Batch)
	vals := make([]uint64, batch)
	rans := make([]uint64, batch)
	dests := make([]gupcxx.GlobalPtr[uint64], batch)
	for done := int64(0); done < b.cfg.UpdatesPerRank; {
		n := batch
		if rem := b.cfg.UpdatesPerRank - done; rem < n {
			n = rem
		}
		f := r.MakeFuture()
		for j := int64(0); j < n; j++ {
			ran := rng.Next()
			rans[j] = ran
			rank, off := b.owner(ran & b.mask)
			dests[j] = b.tables[rank].Element(int(off))
			res := gupcxx.RgetBulk(r, dests[j], vals[j:j+1])
			f = r.WhenAll(f, res.Op)
		}
		f.Wait()
		f = r.MakeFuture()
		for j := int64(0); j < n; j++ {
			res := gupcxx.Rput(r, vals[j]^rans[j], dests[j])
			f = r.WhenAll(f, res.Op)
		}
		f.Wait()
		done += n
	}
}

// runAMOPromise is "atomics w/promises": one atomic xor per update,
// batched on a promise.
func (b *Bench) runAMOPromise() {
	r := b.r
	rng := b.stream()
	batch := int64(b.cfg.Batch)
	for done := int64(0); done < b.cfg.UpdatesPerRank; {
		n := batch
		if rem := b.cfg.UpdatesPerRank - done; rem < n {
			n = rem
		}
		p := r.NewPromise()
		for j := int64(0); j < n; j++ {
			ran := rng.Next()
			rank, off := b.owner(ran & b.mask)
			b.ad.Xor(b.tables[rank].Element(int(off)), ran, gupcxx.OpPromise(p))
		}
		p.Finalize().Wait()
		done += n
	}
}

// runAMOFuture is "atomics w/futures": one atomic xor per update, futures
// conjoined with when_all.
func (b *Bench) runAMOFuture() {
	r := b.r
	rng := b.stream()
	batch := int64(b.cfg.Batch)
	for done := int64(0); done < b.cfg.UpdatesPerRank; {
		n := batch
		if rem := b.cfg.UpdatesPerRank - done; rem < n {
			n = rem
		}
		f := r.MakeFuture()
		for j := int64(0); j < n; j++ {
			ran := rng.Next()
			rank, off := b.owner(ran & b.mask)
			res := b.ad.Xor(b.tables[rank].Element(int(off)), ran)
			f = r.WhenAll(f, res.Op)
		}
		f.Wait()
		done += n
	}
}

// Verify re-applies this rank's update stream with atomic xors (exactly
// once semantics) and then counts local table slots that differ from the
// initial condition, returning the local error count. Because xor is an
// involution, a lossless first pass leaves zero errors; the unsynchronized
// variants may show up to the HPCC-tolerated 1%. Collective: all ranks
// call together, with barriers inside.
func (b *Bench) Verify() int64 {
	r := b.r
	r.Barrier()
	// Undo pass, applied atomically so the undo itself is lossless.
	rng := b.stream()
	p := r.NewPromise()
	inFlight := 0
	for i := int64(0); i < b.cfg.UpdatesPerRank; i++ {
		ran := rng.Next()
		rank, off := b.owner(ran & b.mask)
		b.ad.Xor(b.tables[rank].Element(int(off)), ran, gupcxx.OpPromise(p))
		if inFlight++; inFlight >= b.cfg.Batch {
			// Bound outstanding ops without closing the promise.
			r.Progress()
			inFlight = 0
		}
	}
	p.Finalize().Wait()
	r.Barrier()
	lo := int64(b.r.Me()) * b.perRank
	var errs int64
	for i, v := range b.local {
		if v != uint64(lo+int64(i)) {
			errs++
		}
	}
	return errs
}

// TableWords reports the total table size in words.
func (b *Bench) TableWords() int64 { return b.tabSize }

// Updates reports the per-rank update count.
func (b *Bench) Updates() int64 { return b.cfg.UpdatesPerRank }

// SetUpdatesPerRank rescales the per-rank update count (benchmark
// harnesses calibrate sample lengths against a probe run; GUP/s is a rate,
// so the count does not affect comparability). Collective: every rank
// must set the same value, since it also positions each rank's slice of
// the global update stream.
func (b *Bench) SetUpdatesPerRank(n int64) {
	if n < 1 {
		panic("gups: updates per rank must be >= 1")
	}
	b.cfg.UpdatesPerRank = n
}
