package gups

import (
	"strings"
	"testing"

	"gupcxx"
)

func TestVariantStringsAndList(t *testing.T) {
	want := map[Variant]string{
		Raw:         "raw",
		ManualLocal: "manual-localization",
		RMAPromise:  "rma-promises",
		RMAFuture:   "rma-futures",
		AMOPromise:  "amo-promises",
		AMOFuture:   "amo-futures",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), name)
		}
	}
	vs := Variants()
	if len(vs) != len(want) {
		t.Errorf("Variants() has %d entries", len(vs))
	}
	if !strings.Contains(Variant(99).String(), "variant(") {
		t.Error("unknown variant string")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{LogTableSize: 10}.withDefaults(4)
	if c.Batch != DefaultBatch {
		t.Errorf("Batch = %d", c.Batch)
	}
	if c.UpdatesPerRank != 4*(1<<10)/4 {
		t.Errorf("UpdatesPerRank = %d", c.UpdatesPerRank)
	}
	if c.StreamOffset != DefaultStreamOffset {
		t.Errorf("StreamOffset = %d", c.StreamOffset)
	}
	// Negative offset selects the true stream origin.
	c = Config{LogTableSize: 10, StreamOffset: -1}.withDefaults(4)
	if c.StreamOffset != 0 {
		t.Errorf("negative offset not mapped to origin: %d", c.StreamOffset)
	}
}

func TestBenchAccessorsAndRescale(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 18},
		func(r *gupcxx.Rank) {
			b, err := New(r, Config{LogTableSize: 10, UpdatesPerRank: 100})
			if err != nil {
				t.Error(err)
				return
			}
			if b.TableWords() != 1024 {
				t.Errorf("TableWords = %d", b.TableWords())
			}
			if b.Updates() != 100 {
				t.Errorf("Updates = %d", b.Updates())
			}
			b.SetUpdatesPerRank(500)
			if b.Updates() != 500 {
				t.Errorf("after rescale Updates = %d", b.Updates())
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("SetUpdatesPerRank(0) should panic")
					}
				}()
				b.SetUpdatesPerRank(0)
			}()
			// A rescaled run still verifies exactly for atomics.
			r.Barrier()
			if err := b.Run(AMOPromise); err != nil {
				t.Error(err)
			}
			errs := r.SumU64(uint64(b.Verify()))
			if errs != 0 {
				t.Errorf("verification errors after rescale: %d", errs)
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGUPSNoAMsOnSharedMemoryPath: on a co-located world, the GUPS update
// loops move data purely through shared memory — the only active messages
// are collective tokens (the paper's "all communication takes place via
// shared memory" configuration).
func TestGUPSNoAMsOnSharedMemoryPath(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var before, after int64
	err = w.Run(func(r *gupcxx.Rank) {
		b, err := New(r, Config{LogTableSize: 12, UpdatesPerRank: 2048, Batch: 64})
		if err != nil {
			t.Error(err)
			return
		}
		r.Barrier()
		if r.Me() == 0 {
			before = w.Domain().AMSends()
		}
		r.Barrier()
		if err := b.Run(RMAPromise); err != nil {
			t.Error(err)
		}
		if err := b.Run(AMOFuture); err != nil {
			t.Error(err)
		}
		r.Barrier()
		if r.Me() == 0 {
			after = w.Domain().AMSends()
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The two barriers inside the window cost O(n log n) tokens; the
	// 8192 RMA + 8192 AMO updates must contribute none.
	delta := after - before
	if delta > 64 {
		t.Errorf("shared-memory GUPS sent %d AMs; data path is leaking onto the conduit", delta)
	}
}
