package gups

import (
	"testing"
	"testing/quick"

	"gupcxx"
)

// TestRNGPeriodicityBasics checks the LFSR stream against first-principles
// properties: Starts(0) is the stream seed, Starts(n) equals n manual
// steps, and values are nonzero (the all-zero state is not on the cycle).
func TestRNGStartsMatchesStepping(t *testing.T) {
	g := RNG{state: Starts(0)}
	for n := int64(1); n <= 300; n++ {
		v := g.Next()
		if want := Starts(n); v != want {
			t.Fatalf("Starts(%d) = %#x, stepping gives %#x", n, want, v)
		}
		if v == 0 {
			t.Fatalf("stream hit zero at %d", n)
		}
	}
}

func TestRNGStartsJumpConsistency(t *testing.T) {
	f := func(a uint16, d uint8) bool {
		n := int64(a)
		k := int64(d)
		g := RNG{state: Starts(n)}
		for i := int64(0); i < k; i++ {
			g.Next()
		}
		return g.state == Starts(n+k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStartsNegativeAndZero(t *testing.T) {
	if Starts(0) != 1 {
		t.Errorf("Starts(0) = %d, want 1", Starts(0))
	}
	// Period wraparound: Starts(-1) must equal Starts(period-1).
	const period = int64((uint64(1) << 63) - 1)
	if Starts(-1) != Starts(period-1) {
		t.Errorf("Starts(-1) != Starts(period-1)")
	}
}

// runVariant runs GUPS end-to-end on a small table and verifies the error
// count. Lossless variants must verify exactly; unsynchronized ones are
// held to the HPCC 1% bound.
func runVariant(t *testing.T, v Variant, cfg gupcxx.Config, exact bool) {
	t.Helper()
	// The HPCC 1% error budget assumes HPCC-scale proportions: the loss
	// rate of the batched variants grows like ranks×batch/table, so keep
	// the table comfortably larger than the total in-flight window.
	gcfg := Config{LogTableSize: 16, UpdatesPerRank: 1 << 13, Batch: 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		b, err := New(r, gcfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.Run(v); err != nil {
			t.Error(err)
			return
		}
		errs := b.Verify()
		total := r.SumU64(uint64(errs))
		if exact && total != 0 {
			t.Errorf("%v: %d verification errors, want 0", v, total)
		}
		limit := uint64(b.TableWords()) / 100
		if !exact && total > limit {
			t.Errorf("%v: %d verification errors exceeds 1%% bound %d", v, total, limit)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVariantsVerifySingleRank(t *testing.T) {
	// With one rank there is no concurrency. Read-modify-write variants
	// (raw, manual localization) and atomics must verify exactly; the
	// batched RMA variants lose in-batch duplicate updates even serially
	// (the get phase reads stale values for repeated indices), which the
	// benchmark's 1% error budget exists to absorb.
	cfg := gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 20}
	for _, v := range []Variant{Raw, ManualLocal, AMOPromise, AMOFuture} {
		runVariant(t, v, cfg, true)
	}
	for _, v := range []Variant{RMAPromise, RMAFuture} {
		runVariant(t, v, cfg, false)
	}
}

func TestAtomicVariantsVerifyExactly(t *testing.T) {
	// Atomic updates are applied exactly once even under concurrency.
	for _, v := range []Variant{AMOPromise, AMOFuture} {
		for _, ver := range []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Eager2021_3_6} {
			cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 20}
			runVariant(t, v, cfg, true)
		}
	}
}

func TestUnsynchronizedVariantsWithinBound(t *testing.T) {
	variants := []Variant{RMAPromise, RMAFuture}
	if !RaceEnabled {
		// Raw and ManualLocal update shared words with plain (HPCC-style
		// unsynchronized) operations; the race detector rightly flags
		// them, so exercise them concurrently only in non-race runs.
		variants = append(variants, Raw, ManualLocal)
	}
	for _, v := range variants {
		cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 20}
		runVariant(t, v, cfg, false)
	}
}

func TestCrossNodeGUPS(t *testing.T) {
	// Two simulated nodes: RMA and AMO variants must still verify; the
	// raw variant must refuse to run.
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.SIM, RanksPerNode: 2, SegmentBytes: 1 << 20}
	gcfg := Config{LogTableSize: 10, UpdatesPerRank: 256, Batch: 32}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		b, err := New(r, gcfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.Run(Raw); err == nil {
			t.Error("raw variant should fail on a multi-node world")
		}
		r.Barrier()
		if err := b.Run(AMOPromise); err != nil {
			t.Error(err)
		}
		errs := b.Verify()
		if total := r.SumU64(uint64(errs)); total != 0 {
			t.Errorf("cross-node AMO: %d verification errors", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsIndivisibleTable(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 3, SegmentBytes: 1 << 16}, func(r *gupcxx.Rank) {
		if _, err := New(r, Config{LogTableSize: 8}); err == nil {
			t.Error("want error for 256 words over 3 ranks")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
