package boot

// The rendezvous exchange: a TCP endpoint, run by the launcher, that
// collects every rank's freshly-bound UDP address and broadcasts the
// complete rank-indexed table — stamped with the world epoch — back to
// all of them at once. The broadcast IS the startup barrier: it happens
// only after all N ranks have registered, and registration happens only
// after each rank's UDP socket is bound, so every address a rank learns
// already has a live socket behind it.
//
// Wire protocol, line-oriented text over one TCP connection per rank:
//
//	rank → server:  "<rank> <udp-addr>\n"
//	server → rank:  "<epoch> <addr-0> <addr-1> ... <addr-N-1>\n"
//
// The server answers every connection with the same table line and
// closes. Duplicate or out-of-range rank registrations poison the
// exchange: every waiting rank receives an error line ("! <reason>\n")
// and the launch fails loudly rather than assembling a world with two
// processes claiming one rank.
//
// After the barrier the server stays up and serves RE-registrations: a
// restarted rank dials the same endpoint and sends the same registration
// line, and the server bumps the world epoch, records the rank's new
// address, and replies with the full (updated) table under the bumped
// epoch. A reply whose epoch differs from the spec's launch epoch is how
// a restarted process learns it is rejoining an existing world rather
// than booting a fresh one. Malformed re-registrations fail only their
// own connection — they cannot poison the running world.

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// rendezvousTimeout bounds how long the exchange may sit incomplete — a
// rank that never starts should fail the launch, not hang it.
const rendezvousTimeout = 60 * time.Second

// dialRetry is how long a joining rank keeps retrying the rendezvous
// endpoint by default; children racing the launcher's listener need a
// grace window, and a restarted rank may be retrying while the launcher
// is still reaping its predecessor. Spec.JoinWait overrides it.
const dialRetry = 10 * time.Second

// Join retry backoff: the first redial comes quickly (the common race is
// the launcher's listener appearing microseconds late), then doubles up
// to a cap so a long outage doesn't hammer the endpoint.
const (
	joinBackoffMin = 25 * time.Millisecond
	joinBackoffMax = time.Second
)

// rejoinConnTimeout bounds one re-registration conversation after the
// barrier; a stuck dialer must not wedge the serve loop.
const rejoinConnTimeout = 10 * time.Second

// Rendezvous is the launcher-side exchange endpoint.
type Rendezvous struct {
	ln    net.Listener
	ranks int
	epoch uint32
	done  chan error
}

// NewRendezvous listens on addr (host:port; ":0" picks a free port) and
// starts serving the exchange for a world of the given size in the
// background. Serve's outcome is reported by Wait.
func NewRendezvous(addr string, ranks int, epoch uint32) (*Rendezvous, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("boot: rendezvous needs >= 1 rank, got %d", ranks)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("boot: rendezvous listen: %w", err)
	}
	rv := &Rendezvous{ln: ln, ranks: ranks, epoch: epoch, done: make(chan error, 1)}
	go rv.serve()
	return rv, nil
}

// Addr returns the endpoint address joining ranks should dial.
func (rv *Rendezvous) Addr() string { return rv.ln.Addr().String() }

// Wait blocks until the initial exchange completes (every rank
// registered and received the table) or fails. The server keeps running
// after a successful barrier, serving re-registrations, until Close.
func (rv *Rendezvous) Wait() error { return <-rv.done }

// Close tears the listener down; an incomplete exchange fails, and a
// completed one stops accepting re-registrations.
func (rv *Rendezvous) Close() error { return rv.ln.Close() }

// serve runs the initial barrier exchange, reports its outcome on
// rv.done, and — if the barrier succeeded — stays in serveRejoins until
// the listener closes.
func (rv *Rendezvous) serve() {
	addrs := make([]string, rv.ranks)
	if err := rv.barrier(addrs); err != nil {
		rv.ln.Close()
		rv.done <- err
		return
	}
	rv.done <- nil
	rv.serveRejoins(addrs)
	rv.ln.Close()
}

// barrier is the launch-time exchange: exactly ranks registrations, then
// the table broadcast. Any protocol violation poisons every waiting rank.
func (rv *Rendezvous) barrier(addrs []string) error {
	deadline := time.Now().Add(rendezvousTimeout)
	type reg struct {
		conn net.Conn
		rank int
	}
	conns := make([]reg, 0, rv.ranks)
	seen := make([]bool, rv.ranks)
	fail := func(reason string) error {
		for _, r := range conns {
			fmt.Fprintf(r.conn, "! %s\n", reason)
			r.conn.Close()
		}
		return fmt.Errorf("boot: rendezvous: %s", reason)
	}
	for n := 0; n < rv.ranks; n++ {
		if d, ok := rv.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := rv.ln.Accept()
		if err != nil {
			return fail(fmt.Sprintf("accept: %v", err))
		}
		conn.SetDeadline(deadline)
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			return fail(fmt.Sprintf("registration read: %v", err))
		}
		rankStr, addr, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			conn.Close()
			return fail(fmt.Sprintf("malformed registration %q", strings.TrimSpace(line)))
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 || rank >= rv.ranks {
			conn.Close()
			return fail(fmt.Sprintf("registration names rank %q of %d", rankStr, rv.ranks))
		}
		if seen[rank] {
			conn.Close()
			return fail(fmt.Sprintf("rank %d registered twice", rank))
		}
		if _, err := netip.ParseAddrPort(addr); err != nil {
			conn.Close()
			return fail(fmt.Sprintf("rank %d registered bad address %q: %v", rank, addr, err))
		}
		seen[rank] = true
		addrs[rank] = addr
		conns = append(conns, reg{conn: conn, rank: rank})
	}
	// All ranks registered with live sockets: broadcast the table. This is
	// the startup barrier.
	table := fmt.Sprintf("%d %s\n", rv.epoch, strings.Join(addrs, " "))
	var firstErr error
	for _, r := range conns {
		if _, err := r.conn.Write([]byte(table)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("boot: rendezvous: table send to rank %d: %w", r.rank, err)
		}
		r.conn.Close()
	}
	return firstErr
}

// serveRejoins is the post-barrier phase: each accepted connection is one
// restarted rank re-registering. The epoch is bumped per re-registration
// so every readmission is distinguishable, the rank's table slot is
// rewritten, and the full table is sent back under the new epoch. Errors
// are per-connection — a malformed registration gets "! <reason>\n" and a
// closed conn, and the loop keeps serving. The loop exits when the
// listener closes (Close, or process exit).
func (rv *Rendezvous) serveRejoins(addrs []string) {
	if d, ok := rv.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Time{}) // the barrier's deadline no longer applies
	}
	epoch := rv.epoch
	for {
		conn, err := rv.ln.Accept()
		if err != nil {
			return
		}
		conn.SetDeadline(time.Now().Add(rejoinConnTimeout))
		refuse := func(reason string) {
			fmt.Fprintf(conn, "! %s\n", reason)
			conn.Close()
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			continue
		}
		rankStr, addr, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			refuse(fmt.Sprintf("malformed registration %q", strings.TrimSpace(line)))
			continue
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 || rank >= rv.ranks {
			refuse(fmt.Sprintf("registration names rank %q of %d", rankStr, rv.ranks))
			continue
		}
		if _, err := netip.ParseAddrPort(addr); err != nil {
			refuse(fmt.Sprintf("rank %d registered bad address %q: %v", rank, addr, err))
			continue
		}
		epoch++
		addrs[rank] = addr
		fmt.Fprintf(conn, "%d %s\n", epoch, strings.Join(addrs, " "))
		conn.Close()
	}
}

// joinRendezvous is the rank side of the exchange: dial (with retry —
// children may beat the launcher's listener, and a restarted rank may be
// redialing while the launcher reaps its predecessor), register the
// bound UDP address, and block until the table reply arrives. Dial
// failures back off exponentially from joinBackoffMin to joinBackoffMax
// and give up after Spec.JoinWait (dialRetry when unset) — a dead
// endpoint fails the join loudly instead of spinning forever.
func joinRendezvous(spec Spec, udpAddr string) (epoch uint32, peers []netip.AddrPort, err error) {
	var conn net.Conn
	wait := spec.JoinWait
	if wait <= 0 {
		wait = dialRetry
	}
	dialUntil := time.Now().Add(wait)
	backoff := joinBackoffMin
	for {
		conn, err = net.DialTimeout("tcp", spec.Rendezvous, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(dialUntil) {
			return 0, nil, fmt.Errorf("boot: rendezvous dial %s (gave up after %v): %w", spec.Rendezvous, wait, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > joinBackoffMax {
			backoff = joinBackoffMax
		}
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(rendezvousTimeout))
	if _, err := fmt.Fprintf(conn, "%d %s\n", spec.Rank, udpAddr); err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous register: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous table read: %w", err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "!") {
		return 0, nil, fmt.Errorf("boot: rendezvous refused: %s", strings.TrimSpace(line[1:]))
	}
	fields := strings.Fields(line)
	if len(fields) != 1+spec.Ranks {
		return 0, nil, fmt.Errorf("boot: rendezvous table has %d fields, want %d", len(fields), 1+spec.Ranks)
	}
	e, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous epoch %q: %v", fields[0], err)
	}
	peers = make([]netip.AddrPort, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		ap, err := netip.ParseAddrPort(fields[1+r])
		if err != nil {
			return 0, nil, fmt.Errorf("boot: rendezvous table rank %d address %q: %v", r, fields[1+r], err)
		}
		peers[r] = ap
	}
	return uint32(e), peers, nil
}
