package boot

// The rendezvous exchange: a TCP endpoint, run by the launcher, that
// collects every rank's freshly-bound UDP address and broadcasts the
// complete rank-indexed table — stamped with the world epoch — back to
// all of them at once. The broadcast IS the startup barrier: it happens
// only after all N ranks have registered, and registration happens only
// after each rank's UDP socket is bound, so every address a rank learns
// already has a live socket behind it.
//
// Wire protocol, line-oriented text over one TCP connection per rank:
//
//	rank → server:  "<rank> <udp-addr>\n"
//	server → rank:  "<epoch> <addr-0> <addr-1> ... <addr-N-1>\n"
//
// The server answers every connection with the same table line and
// closes. Duplicate or out-of-range rank registrations poison the
// exchange: every waiting rank receives an error line ("! <reason>\n")
// and the launch fails loudly rather than assembling a world with two
// processes claiming one rank.

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// rendezvousTimeout bounds how long the exchange may sit incomplete — a
// rank that never starts should fail the launch, not hang it.
const rendezvousTimeout = 60 * time.Second

// dialRetry is how long a joining rank keeps retrying the rendezvous
// endpoint; children racing the launcher's listener need a grace window.
const dialRetry = 10 * time.Second

// Rendezvous is the launcher-side exchange endpoint.
type Rendezvous struct {
	ln    net.Listener
	ranks int
	epoch uint32
	done  chan error
}

// NewRendezvous listens on addr (host:port; ":0" picks a free port) and
// starts serving the exchange for a world of the given size in the
// background. Serve's outcome is reported by Wait.
func NewRendezvous(addr string, ranks int, epoch uint32) (*Rendezvous, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("boot: rendezvous needs >= 1 rank, got %d", ranks)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("boot: rendezvous listen: %w", err)
	}
	rv := &Rendezvous{ln: ln, ranks: ranks, epoch: epoch, done: make(chan error, 1)}
	go func() { rv.done <- rv.serve() }()
	return rv, nil
}

// Addr returns the endpoint address joining ranks should dial.
func (rv *Rendezvous) Addr() string { return rv.ln.Addr().String() }

// Wait blocks until the exchange completes (every rank registered and
// received the table) or fails.
func (rv *Rendezvous) Wait() error { return <-rv.done }

// Close tears the listener down; an incomplete exchange fails.
func (rv *Rendezvous) Close() error { return rv.ln.Close() }

func (rv *Rendezvous) serve() error {
	defer rv.ln.Close()
	deadline := time.Now().Add(rendezvousTimeout)
	type reg struct {
		conn net.Conn
		rank int
	}
	conns := make([]reg, 0, rv.ranks)
	addrs := make([]string, rv.ranks)
	seen := make([]bool, rv.ranks)
	fail := func(reason string) error {
		for _, r := range conns {
			fmt.Fprintf(r.conn, "! %s\n", reason)
			r.conn.Close()
		}
		return fmt.Errorf("boot: rendezvous: %s", reason)
	}
	for n := 0; n < rv.ranks; n++ {
		if d, ok := rv.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := rv.ln.Accept()
		if err != nil {
			return fail(fmt.Sprintf("accept: %v", err))
		}
		conn.SetDeadline(deadline)
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			return fail(fmt.Sprintf("registration read: %v", err))
		}
		rankStr, addr, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			conn.Close()
			return fail(fmt.Sprintf("malformed registration %q", strings.TrimSpace(line)))
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 || rank >= rv.ranks {
			conn.Close()
			return fail(fmt.Sprintf("registration names rank %q of %d", rankStr, rv.ranks))
		}
		if seen[rank] {
			conn.Close()
			return fail(fmt.Sprintf("rank %d registered twice", rank))
		}
		if _, err := netip.ParseAddrPort(addr); err != nil {
			conn.Close()
			return fail(fmt.Sprintf("rank %d registered bad address %q: %v", rank, addr, err))
		}
		seen[rank] = true
		addrs[rank] = addr
		conns = append(conns, reg{conn: conn, rank: rank})
	}
	// All ranks registered with live sockets: broadcast the table. This is
	// the startup barrier.
	table := fmt.Sprintf("%d %s\n", rv.epoch, strings.Join(addrs, " "))
	var firstErr error
	for _, r := range conns {
		if _, err := r.conn.Write([]byte(table)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("boot: rendezvous: table send to rank %d: %w", r.rank, err)
		}
		r.conn.Close()
	}
	return firstErr
}

// joinRendezvous is the rank side of the exchange: dial (with retry —
// children may beat the launcher's listener), register the bound UDP
// address, and block until the table broadcast arrives.
func joinRendezvous(spec Spec, udpAddr string) (epoch uint32, peers []netip.AddrPort, err error) {
	var conn net.Conn
	dialUntil := time.Now().Add(dialRetry)
	for {
		conn, err = net.DialTimeout("tcp", spec.Rendezvous, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(dialUntil) {
			return 0, nil, fmt.Errorf("boot: rendezvous dial %s: %w", spec.Rendezvous, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(rendezvousTimeout))
	if _, err := fmt.Fprintf(conn, "%d %s\n", spec.Rank, udpAddr); err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous register: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous table read: %w", err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "!") {
		return 0, nil, fmt.Errorf("boot: rendezvous refused: %s", strings.TrimSpace(line[1:]))
	}
	fields := strings.Fields(line)
	if len(fields) != 1+spec.Ranks {
		return 0, nil, fmt.Errorf("boot: rendezvous table has %d fields, want %d", len(fields), 1+spec.Ranks)
	}
	e, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("boot: rendezvous epoch %q: %v", fields[0], err)
	}
	peers = make([]netip.AddrPort, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		ap, err := netip.ParseAddrPort(fields[1+r])
		if err != nil {
			return 0, nil, fmt.Errorf("boot: rendezvous table rank %d address %q: %v", r, fields[1+r], err)
		}
		peers[r] = ap
	}
	return uint32(e), peers, nil
}
