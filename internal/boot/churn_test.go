package boot

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestSpecJoinWaitRoundTrip: the joinwait key survives the Env/ParseEnv
// round trip and rejects garbage.
func TestSpecJoinWaitRoundTrip(t *testing.T) {
	want := Spec{Ranks: 2, Rank: 1, Epoch: 3, Rendezvous: "127.0.0.1:41234", JoinWait: 1500 * time.Millisecond}
	got, err := ParseEnv(want.Env())
	if err != nil {
		t.Fatalf("ParseEnv(%q): %v", want.Env(), err)
	}
	if got.JoinWait != want.JoinWait {
		t.Errorf("JoinWait round trip: got %v, want %v", got.JoinWait, want.JoinWait)
	}
	if _, err := ParseEnv("ranks=2;rank=0;rendezvous=h:1;joinwait=soon"); err == nil {
		t.Error("malformed joinwait accepted")
	}
}

// TestRendezvousRejoin: after the barrier the server keeps serving — a
// re-registration for an existing rank gets the full table back under a
// bumped epoch with its own slot rewritten, and each further
// re-registration bumps again.
func TestRendezvousRejoin(t *testing.T) {
	const ranks, epoch = 3, 5
	rv, err := NewRendezvous("127.0.0.1:0", ranks, epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	done := make(chan error, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			spec := Spec{Ranks: ranks, Rank: r, Rendezvous: rv.Addr()}
			_, _, err := joinRendezvous(spec, localUDPAddr(t, r))
			done <- err
		}(r)
	}
	for i := 0; i < ranks; i++ {
		if err := <-done; err != nil {
			t.Fatalf("barrier join: %v", err)
		}
	}
	if err := rv.Wait(); err != nil {
		t.Fatalf("barrier: %v", err)
	}

	// Rank 1 "restarts" on a new port: same spec epoch, new address.
	spec := Spec{Ranks: ranks, Rank: 1, Rendezvous: rv.Addr()}
	e, peers, err := joinRendezvous(spec, "127.0.0.1:9999")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if e != epoch+1 {
		t.Errorf("rejoin epoch %d, want %d", e, epoch+1)
	}
	if got := peers[1].String(); got != "127.0.0.1:9999" {
		t.Errorf("rejoin table slot 1 = %s, want the new address", got)
	}
	if got := peers[0].String(); got != localUDPAddr(t, 0) {
		t.Errorf("rejoin table slot 0 = %s, want the surviving address", got)
	}

	// A second restart bumps again — every readmission is distinguishable.
	e2, _, err := joinRendezvous(spec, "127.0.0.1:9998")
	if err != nil {
		t.Fatalf("second rejoin: %v", err)
	}
	if e2 != epoch+2 {
		t.Errorf("second rejoin epoch %d, want %d", e2, epoch+2)
	}
}

// TestRendezvousRejoinBadRegistration: a malformed re-registration fails
// only its own connection — the server keeps serving good ones.
func TestRendezvousRejoinBadRegistration(t *testing.T) {
	rv, err := NewRendezvous("127.0.0.1:0", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	spec := Spec{Ranks: 1, Rank: 0, Rendezvous: rv.Addr()}
	if _, _, err := joinRendezvous(spec, localUDPAddr(t, 0)); err != nil {
		t.Fatalf("barrier join: %v", err)
	}
	if err := rv.Wait(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range rank, then bad address: both refused per-connection.
	if _, _, err := joinRendezvous(Spec{Ranks: 1, Rank: 0, Rendezvous: rv.Addr()}, "not-an-addr"); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Errorf("bad rejoin address resolved as %v, want refusal", err)
	}
	// The server survived: a well-formed rejoin still works.
	if _, _, err := joinRendezvous(spec, "127.0.0.1:9777"); err != nil {
		t.Errorf("rejoin after a refused registration: %v", err)
	}
}

// TestJoinBackoffDeadline: a dead rendezvous endpoint fails the join
// within the JoinWait budget (plus backoff slack), not the 10s default.
func TestJoinBackoffDeadline(t *testing.T) {
	spec := Spec{Ranks: 2, Rank: 0, Rendezvous: "127.0.0.1:1", JoinWait: 300 * time.Millisecond}
	start := time.Now()
	_, _, err := joinRendezvous(spec, "127.0.0.1:9000")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("join against a dead endpoint succeeded")
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Errorf("error %v does not report the deadline", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("join took %v, want bounded near the 300ms JoinWait", elapsed)
	}
}

// TestRestartRank: the launcher kills, reaps, and respawns one rank with
// the identical environment; the replacement is a different process and
// the world refuses restarts after Kill.
func TestRestartRank(t *testing.T) {
	sleep, err := exec.LookPath("sleep")
	if err != nil {
		t.Skip("no sleep binary")
	}
	lw, err := LaunchLocal(2, 1, []string{sleep, "60"}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	oldPid := lw.Procs[1].Process.Pid
	if err := lw.RestartRank(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	newPid := lw.Procs[1].Process.Pid
	if newPid == oldPid {
		t.Errorf("restart reused pid %d", oldPid)
	}
	if err := lw.RestartRank(5); err == nil {
		t.Error("out-of-range restart accepted")
	}
	lw.Kill()
	if err := lw.RestartRank(0); err == nil {
		t.Error("restart after Kill accepted")
	}
}
