// Package boot is the bootstrap subsystem for process-per-rank worlds:
// the GUPCXX_WORLD environment contract a launched rank reads, the
// rendezvous exchange that turns "I am rank r" into a rank-indexed UDP
// address table stamped with a world epoch, the static-peer-list
// alternative for containerized deployments where addresses are known
// up front, and the local launcher (LaunchLocal) that cmd/gupcxxrun and
// the cross-process test suite share.
//
// The exchange doubles as the startup barrier. Every rank binds its UDP
// socket BEFORE publishing its address, so by the time any rank learns a
// peer's address, that peer's socket exists and the kernel buffers early
// datagrams — no rank can send into a connection-refused void. In
// rendezvous mode the barrier is the server's table broadcast (sent only
// after all N ranks registered); in static mode, where addresses are
// preassigned and nothing serializes startup, a hello exchange supplies
// the same guarantee.
package boot

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable carrying a launched rank's world
// membership. cmd/gupcxxrun sets it on every child; worker-mode binaries
// (cmd/gups, cmd/matching, cmd/microbench) and WorldFromEnv read it.
const EnvVar = "GUPCXX_WORLD"

// Spec is one rank's view of the world it is joining: how many ranks, which
// one it is, the world epoch, and how to find its peers — a rendezvous
// endpoint (the launcher's exchange server) or a static rank-indexed
// address list (containerized deployments with service-name addressing).
// Exactly one of Rendezvous and Peers must be set.
type Spec struct {
	// Ranks is the world size.
	Ranks int
	// Rank is this process's rank, in [0, Ranks).
	Rank int
	// Epoch is the world incarnation stamp. In rendezvous mode the
	// server's value wins (the spec's is advisory); in static mode this
	// value is the world's epoch. Zero is treated as 1 by the runtime.
	Epoch uint32
	// Rendezvous is the host:port of the launcher's exchange endpoint.
	Rendezvous string
	// JoinWait bounds how long joining the rendezvous endpoint may retry
	// (exponential backoff between attempts) before the join fails. Zero
	// means the default grace window. Restart-heavy deployments raise it
	// so a rank restarted during a launcher hiccup still gets in.
	JoinWait time.Duration
	// Peers is the static rank-indexed UDP address table ("host:port" per
	// rank). This rank binds Peers[Rank].
	Peers []string
}

// ParseEnv parses the GUPCXX_WORLD value: semicolon-separated key=value
// pairs — ranks, rank, epoch, one of rendezvous or peers (peers is a
// comma-separated rank-indexed address list), and an optional joinwait
// (a Go duration bounding the rendezvous join retry). Example:
//
//	ranks=4;rank=2;epoch=7;rendezvous=127.0.0.1:41234
//	ranks=2;rank=0;epoch=3;peers=node0:9400,node1:9400
func ParseEnv(s string) (Spec, error) {
	var spec Spec
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("boot: malformed %s field %q", EnvVar, field)
		}
		switch key {
		case "ranks":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("boot: bad ranks %q: %v", val, err)
			}
			spec.Ranks = n
		case "rank":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("boot: bad rank %q: %v", val, err)
			}
			spec.Rank = n
		case "epoch":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Spec{}, fmt.Errorf("boot: bad epoch %q: %v", val, err)
			}
			spec.Epoch = uint32(n)
		case "rendezvous":
			spec.Rendezvous = val
		case "joinwait":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Spec{}, fmt.Errorf("boot: bad joinwait %q: %v", val, err)
			}
			spec.JoinWait = d
		case "peers":
			spec.Peers = strings.Split(val, ",")
		default:
			return Spec{}, fmt.Errorf("boot: unknown %s key %q", EnvVar, key)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Env serializes the spec back into the GUPCXX_WORLD value ParseEnv
// accepts — the launcher side of the contract.
func (s Spec) Env() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranks=%d;rank=%d;epoch=%d", s.Ranks, s.Rank, s.Epoch)
	if s.Rendezvous != "" {
		fmt.Fprintf(&b, ";rendezvous=%s", s.Rendezvous)
	}
	if s.JoinWait > 0 {
		fmt.Fprintf(&b, ";joinwait=%s", s.JoinWait)
	}
	if len(s.Peers) > 0 {
		fmt.Fprintf(&b, ";peers=%s", strings.Join(s.Peers, ","))
	}
	return b.String()
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.Ranks < 1 {
		return fmt.Errorf("boot: ranks must be >= 1, got %d", s.Ranks)
	}
	if s.Rank < 0 || s.Rank >= s.Ranks {
		return fmt.Errorf("boot: rank %d out of range [0,%d)", s.Rank, s.Ranks)
	}
	hasRv, hasPeers := s.Rendezvous != "", len(s.Peers) > 0
	if hasRv == hasPeers {
		return fmt.Errorf("boot: exactly one of rendezvous and peers must be set")
	}
	if hasPeers && len(s.Peers) != s.Ranks {
		return fmt.Errorf("boot: peers lists %d addresses for %d ranks", len(s.Peers), s.Ranks)
	}
	return nil
}
