package boot

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// LocalWorld is a process-per-rank world launched on this host: the
// rendezvous endpoint plus one child process per rank, each carrying its
// GUPCXX_WORLD membership in the environment. cmd/gupcxxrun and the
// cross-process test suite share this launcher, so the test suite
// exercises the same code path operators use.
type LocalWorld struct {
	Procs []*exec.Cmd
	rv    *Rendezvous

	// Launch parameters, kept so RestartRank can respawn a rank with the
	// exact environment its predecessor had. The respawned process carries
	// the ORIGINAL launch epoch in GUPCXX_WORLD; the rendezvous server's
	// bumped-epoch reply is what tells it it is rejoining.
	ranks    int
	epoch    uint32
	argv     []string
	extraEnv []string
	stdout   io.Writer
	stderr   io.Writer

	mu       sync.Mutex
	killed   bool
	waitErrs []error
}

// LaunchLocal starts a world of n ranks on this host: a rendezvous
// endpoint on loopback, then one child per rank running argv[0] with
// argv[1:], its environment extended with the GUPCXX_WORLD membership
// (and extraEnv). Child stdout/stderr go to the provided writers (nil
// means inherit this process's). The children bootstrap among themselves;
// call Wait to collect them.
func LaunchLocal(n int, epoch uint32, argv []string, extraEnv []string, stdout, stderr io.Writer) (*LocalWorld, error) {
	if n < 1 {
		return nil, fmt.Errorf("boot: launch needs >= 1 rank, got %d", n)
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("boot: launch needs a program to run")
	}
	rv, err := NewRendezvous("127.0.0.1:0", n, epoch)
	if err != nil {
		return nil, err
	}
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	lw := &LocalWorld{rv: rv, ranks: n, epoch: epoch, argv: argv, extraEnv: extraEnv, stdout: stdout, stderr: stderr}
	for r := 0; r < n; r++ {
		cmd := lw.command(r)
		if err := cmd.Start(); err != nil {
			lw.Kill()
			rv.Close()
			return nil, fmt.Errorf("boot: launch rank %d: %w", r, err)
		}
		lw.Procs = append(lw.Procs, cmd)
	}
	return lw, nil
}

// command builds the exec.Cmd for one rank from the stored launch
// parameters. Every spawn — initial or restart — goes through here, so a
// restarted rank is bit-identical to its predecessor's launch.
func (lw *LocalWorld) command(r int) *exec.Cmd {
	spec := Spec{Ranks: lw.ranks, Rank: r, Epoch: lw.epoch, Rendezvous: lw.rv.Addr()}
	cmd := exec.Command(lw.argv[0], lw.argv[1:]...)
	cmd.Env = append(os.Environ(), EnvVar+"="+spec.Env())
	cmd.Env = append(cmd.Env, lw.extraEnv...)
	cmd.Stdout = lw.stdout
	cmd.Stderr = lw.stderr
	return cmd
}

// Wait collects every child and the rendezvous outcome, returning the
// first failure (a child's non-zero exit, or an incomplete exchange).
// Wait after Kill reports the children's deaths — callers that killed the
// world on purpose should expect an error.
func (lw *LocalWorld) Wait() error {
	var firstErr error
	for r, cmd := range lw.Procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("boot: rank %d: %w", r, err)
		}
	}
	if err := lw.rv.Wait(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Kill forcibly terminates every child (idempotent). The rendezvous
// endpoint is closed too, failing any rank still waiting in its exchange.
func (lw *LocalWorld) Kill() {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.killed {
		return
	}
	lw.killed = true
	for _, cmd := range lw.Procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	lw.rv.Close()
}

// KillRank forcibly terminates one rank's process — the fault-injection
// hook the cross-process suite uses to verify that survivors observe the
// death as ErrPeerUnreachable rather than a hang.
func (lw *LocalWorld) KillRank(r int) error {
	if r < 0 || r >= len(lw.Procs) {
		return fmt.Errorf("boot: kill rank %d of %d", r, len(lw.Procs))
	}
	p := lw.Procs[r].Process
	if p == nil {
		return fmt.Errorf("boot: rank %d not started", r)
	}
	return p.Kill()
}

// RestartRank kills rank r's process, reaps it, and spawns a replacement
// with the identical launch environment — the churn-injection hook the
// kill/restart fault suite drives. The replacement carries the ORIGINAL
// launch epoch; it discovers it is rejoining when the (still running)
// rendezvous server replies with a bumped epoch, and from there the
// runtime's join/readmission protocol takes over. Refused after Kill:
// a deliberately destroyed world stays destroyed.
func (lw *LocalWorld) RestartRank(r int) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.killed {
		return fmt.Errorf("boot: restart rank %d: world already killed", r)
	}
	if r < 0 || r >= len(lw.Procs) {
		return fmt.Errorf("boot: restart rank %d of %d", r, len(lw.Procs))
	}
	old := lw.Procs[r]
	if old.Process == nil {
		return fmt.Errorf("boot: rank %d not started", r)
	}
	old.Process.Kill()
	old.Wait() // reap; a kill-induced exit error is expected, not reportable
	cmd := lw.command(r)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("boot: restart rank %d: %w", r, err)
	}
	lw.Procs[r] = cmd
	return nil
}
