package boot

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// LocalWorld is a process-per-rank world launched on this host: the
// rendezvous endpoint plus one child process per rank, each carrying its
// GUPCXX_WORLD membership in the environment. cmd/gupcxxrun and the
// cross-process test suite share this launcher, so the test suite
// exercises the same code path operators use.
type LocalWorld struct {
	Procs []*exec.Cmd
	rv    *Rendezvous

	mu       sync.Mutex
	killed   bool
	waitErrs []error
}

// LaunchLocal starts a world of n ranks on this host: a rendezvous
// endpoint on loopback, then one child per rank running argv[0] with
// argv[1:], its environment extended with the GUPCXX_WORLD membership
// (and extraEnv). Child stdout/stderr go to the provided writers (nil
// means inherit this process's). The children bootstrap among themselves;
// call Wait to collect them.
func LaunchLocal(n int, epoch uint32, argv []string, extraEnv []string, stdout, stderr io.Writer) (*LocalWorld, error) {
	if n < 1 {
		return nil, fmt.Errorf("boot: launch needs >= 1 rank, got %d", n)
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("boot: launch needs a program to run")
	}
	rv, err := NewRendezvous("127.0.0.1:0", n, epoch)
	if err != nil {
		return nil, err
	}
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	lw := &LocalWorld{rv: rv}
	for r := 0; r < n; r++ {
		spec := Spec{Ranks: n, Rank: r, Epoch: epoch, Rendezvous: rv.Addr()}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), EnvVar+"="+spec.Env())
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			lw.Kill()
			rv.Close()
			return nil, fmt.Errorf("boot: launch rank %d: %w", r, err)
		}
		lw.Procs = append(lw.Procs, cmd)
	}
	return lw, nil
}

// Wait collects every child and the rendezvous outcome, returning the
// first failure (a child's non-zero exit, or an incomplete exchange).
// Wait after Kill reports the children's deaths — callers that killed the
// world on purpose should expect an error.
func (lw *LocalWorld) Wait() error {
	var firstErr error
	for r, cmd := range lw.Procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("boot: rank %d: %w", r, err)
		}
	}
	if err := lw.rv.Wait(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Kill forcibly terminates every child (idempotent). The rendezvous
// endpoint is closed too, failing any rank still waiting in its exchange.
func (lw *LocalWorld) Kill() {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.killed {
		return
	}
	lw.killed = true
	for _, cmd := range lw.Procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	lw.rv.Close()
}

// KillRank forcibly terminates one rank's process — the fault-injection
// hook the cross-process suite uses to verify that survivors observe the
// death as ErrPeerUnreachable rather than a hang.
func (lw *LocalWorld) KillRank(r int) error {
	if r < 0 || r >= len(lw.Procs) {
		return fmt.Errorf("boot: kill rank %d of %d", r, len(lw.Procs))
	}
	p := lw.Procs[r].Process
	if p == nil {
		return fmt.Errorf("boot: rank %d not started", r)
	}
	return p.Kill()
}
