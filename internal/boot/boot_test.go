package boot

import (
	"fmt"
	"strings"
	"testing"
)

// TestSpecEnvRoundTrip: every spec the launcher emits must parse back
// identically — the two halves of the GUPCXX_WORLD contract.
func TestSpecEnvRoundTrip(t *testing.T) {
	specs := []Spec{
		{Ranks: 4, Rank: 2, Epoch: 7, Rendezvous: "127.0.0.1:41234"},
		{Ranks: 1, Rank: 0, Epoch: 1, Rendezvous: "[::1]:9"},
		{Ranks: 2, Rank: 0, Epoch: 3, Peers: []string{"node0:9400", "node1:9400"}},
		{Ranks: 3, Rank: 2, Peers: []string{"a:1", "b:2", "c:3"}},
	}
	for _, want := range specs {
		got, err := ParseEnv(want.Env())
		if err != nil {
			t.Fatalf("ParseEnv(%q): %v", want.Env(), err)
		}
		if got.Ranks != want.Ranks || got.Rank != want.Rank || got.Epoch != want.Epoch ||
			got.Rendezvous != want.Rendezvous || strings.Join(got.Peers, ",") != strings.Join(want.Peers, ",") {
			t.Errorf("round trip of %q: got %+v, want %+v", want.Env(), got, want)
		}
	}
}

func TestSpecParseRejects(t *testing.T) {
	bad := []string{
		"",                               // no ranks
		"ranks=4;rank=4;rendezvous=h:1",  // rank out of range
		"ranks=4;rank=-1;rendezvous=h:1", // negative rank
		"ranks=2;rank=0",                 // neither rendezvous nor peers
		"ranks=2;rank=0;rendezvous=h:1;peers=a:1,b:2", // both
		"ranks=2;rank=0;peers=a:1",                    // peer count mismatch
		"ranks=two;rank=0;rendezvous=h:1",             // unparseable int
		"ranks=2;rank=0;rendezvous=h:1;bogus=1",       // unknown key
		"ranks=2;rank=0;rendezvous",                   // field without '='
	}
	for _, s := range bad {
		if _, err := ParseEnv(s); err == nil {
			t.Errorf("ParseEnv(%q) accepted a malformed spec", s)
		}
	}
}

// TestRendezvousExchange: N concurrent joiners each register a distinct
// rank and must all receive the identical epoch-stamped address table.
func TestRendezvousExchange(t *testing.T) {
	const ranks, epoch = 4, 9
	rv, err := NewRendezvous("127.0.0.1:0", ranks, epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	type result struct {
		rank  int
		epoch uint32
		peers string
		err   error
	}
	results := make(chan result, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			spec := Spec{Ranks: ranks, Rank: r, Rendezvous: rv.Addr()}
			e, peers, err := joinRendezvous(spec, localUDPAddr(t, r))
			var b strings.Builder
			for _, p := range peers {
				b.WriteString(p.String())
				b.WriteString(" ")
			}
			results <- result{r, e, b.String(), err}
		}(r)
	}
	var table string
	for i := 0; i < ranks; i++ {
		res := <-results
		if res.err != nil {
			t.Fatalf("rank %d join: %v", res.rank, res.err)
		}
		if res.epoch != epoch {
			t.Errorf("rank %d got epoch %d, want %d", res.rank, res.epoch, epoch)
		}
		if table == "" {
			table = res.peers
		} else if res.peers != table {
			t.Errorf("rank %d table %q differs from %q", res.rank, res.peers, table)
		}
	}
	if err := rv.Wait(); err != nil {
		t.Fatalf("exchange: %v", err)
	}
}

// TestRendezvousDuplicateRankPoisons: two processes claiming one rank
// must fail the whole launch, not assemble a broken world.
func TestRendezvousDuplicateRankPoisons(t *testing.T) {
	rv, err := NewRendezvous("127.0.0.1:0", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			spec := Spec{Ranks: 2, Rank: 0, Rendezvous: rv.Addr()}
			_, _, err := joinRendezvous(spec, localUDPAddr(t, i))
			errs <- err
		}(i)
	}
	if err := rv.Wait(); err == nil || !strings.Contains(err.Error(), "registered twice") {
		t.Fatalf("duplicate registration resolved as %v", err)
	}
	// At least the second joiner must see the poison line; the first may
	// race the failure either way, but neither may succeed silently with
	// a table.
	sawErr := 0
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			sawErr++
		}
	}
	if sawErr == 0 {
		t.Error("both duplicate joiners reported success")
	}
}

// localUDPAddr mints a distinct, well-formed host:port registration
// value; the exchange validates syntax, not reachability.
func localUDPAddr(t *testing.T, r int) string {
	t.Helper()
	return fmt.Sprintf("127.0.0.1:%d", 9000+r)
}
