package boot

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"
)

// helloTag is the static-mode hello datagram: [0x7F][rank u16 LE]. The
// value sits far above the conduit's frame tags (0x01..0x05), so a stray
// late hello arriving after the Domain has taken over the socket is an
// unknown-frame decode drop — counted, never fatal. Conversely the hello
// barrier treats ANY datagram from a peer's address as proof of life, so
// a peer that has already moved on to real traffic still satisfies the
// barrier.
const helloTag = 0x7F

const helloFrameLen = 3

// helloEvery is the static-mode hello retransmission period; helloTimeout
// bounds the whole barrier — a peer that never binds fails the launch.
const (
	helloEvery   = 20 * time.Millisecond
	helloTimeout = 10 * time.Second
)

// Bootstrapped is the outcome of the exchange: this rank's bound UDP
// socket, the world's rank-indexed peer address table, and the stamped
// epoch — exactly the three multiproc fields gasnet.Config needs. The
// Domain takes ownership of Conn.
type Bootstrapped struct {
	Conn  *net.UDPConn
	Peers []netip.AddrPort
	Epoch uint32
	// Rejoin is true when this process registered into an already-running
	// world: the rendezvous server answered with an epoch different from
	// the spec's launch epoch, which only happens after the server has
	// served a post-barrier re-registration (the epoch is bumped per
	// readmission). A rejoining rank must announce itself to the
	// survivors — the runtime turns this into join-frame broadcasts until
	// every live peer has readmitted it. Static-peer worlds never rejoin:
	// with no exchange there is nothing to bump.
	Rejoin bool
}

// FromEnv reads and parses the GUPCXX_WORLD environment variable. ok is
// false when the variable is unset — the process was not launched as a
// world member and should run standalone.
func FromEnv() (spec Spec, ok bool, err error) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return Spec{}, false, nil
	}
	spec, err = ParseEnv(v)
	if err != nil {
		return Spec{}, false, err
	}
	return spec, true, nil
}

// Bootstrap performs this rank's side of the world exchange: bind the UDP
// socket first (so peers' earliest datagrams land in kernel buffers, never
// a refused port), then learn the peer table — from the rendezvous
// endpoint, whose table broadcast is the startup barrier, or from the
// static peer list, where a hello exchange supplies the barrier instead.
// On return every peer address is backed by a bound socket.
func Bootstrap(spec Spec) (*Bootstrapped, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Rendezvous != "" {
		return bootstrapRendezvous(spec)
	}
	return bootstrapStatic(spec)
}

func bootstrapRendezvous(spec Spec) (*Bootstrapped, error) {
	// Loopback: the rendezvous launcher runs all ranks on one host.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("boot: bind: %w", err)
	}
	self := conn.LocalAddr().(*net.UDPAddr).AddrPort()
	epoch, peers, err := joinRendezvous(spec, self.String())
	if err != nil {
		conn.Close()
		return nil, err
	}
	if peers[spec.Rank] != self {
		conn.Close()
		return nil, fmt.Errorf("boot: rendezvous table lists %v for rank %d, but this process bound %v",
			peers[spec.Rank], spec.Rank, self)
	}
	return &Bootstrapped{Conn: conn, Peers: peers, Epoch: epoch, Rejoin: epoch != spec.Epoch}, nil
}

func bootstrapStatic(spec Spec) (*Bootstrapped, error) {
	peers := make([]netip.AddrPort, spec.Ranks)
	for r, s := range spec.Peers {
		// Resolve through the system resolver: static tables in
		// containerized deployments name peers by service name.
		ua, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("boot: peer %d address %q: %w", r, s, err)
		}
		peers[r] = ua.AddrPort()
	}
	selfAddr := net.UDPAddrFromAddrPort(peers[spec.Rank])
	// Bind the wildcard on this rank's assigned port: the table may name
	// this host by an external address the kernel will not let us bind.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{Port: selfAddr.Port})
	if err != nil {
		return nil, fmt.Errorf("boot: bind %v: %w", peers[spec.Rank], err)
	}
	if err := helloBarrier(conn, spec.Rank, peers); err != nil {
		conn.Close()
		return nil, err
	}
	return &Bootstrapped{Conn: conn, Peers: peers, Epoch: spec.Epoch}, nil
}

// helloBarrier is the static-mode startup barrier: every rank sends hello
// datagrams to every peer each helloEvery until it has received traffic
// from all of them, then sends a final round (so slower peers hear from
// it even after it stops listening for hellos) and returns. Any datagram
// whose source address matches a peer's table entry counts — a peer that
// raced ahead into heartbeats or real traffic still proves itself. Real
// protocol frames consumed here are lost, which the conduit's reliability
// layer repairs by retransmission; hellos themselves are garbage to the
// conduit and become counted decode drops if one straggles in late.
func helloBarrier(conn *net.UDPConn, self int, peers []netip.AddrPort) error {
	var hello [helloFrameLen]byte
	hello[0] = helloTag
	binary.LittleEndian.PutUint16(hello[1:3], uint16(self))
	heard := make([]bool, len(peers))
	heard[self] = true
	need := len(peers) - 1
	sendRound := func() {
		for r, ap := range peers {
			if r == self {
				continue
			}
			conn.WriteToUDPAddrPort(hello[:], ap) // best-effort; resent every round
		}
	}
	buf := make([]byte, 2048)
	deadline := time.Now().Add(helloTimeout)
	for need > 0 {
		if time.Now().After(deadline) {
			missing := []int{}
			for r, h := range heard {
				if !h {
					missing = append(missing, r)
				}
			}
			return fmt.Errorf("boot: hello barrier timed out after %v waiting for ranks %v",
				helloTimeout, missing)
		}
		sendRound()
		conn.SetReadDeadline(time.Now().Add(helloEvery))
		for {
			_, from, err := conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				break // read deadline: next hello round
			}
			for r, ap := range peers {
				if !heard[r] && sameEndpoint(from, ap) {
					heard[r] = true
					need--
				}
			}
		}
	}
	conn.SetReadDeadline(time.Time{})
	// Final round: peers still inside their barrier hear from us even
	// though we stop reading hellos now.
	sendRound()
	return nil
}

// sameEndpoint compares a datagram's source against a peer table entry,
// unwrapping IPv4-mapped IPv6 forms (a wildcard-bound socket reports
// sources as ::ffff:a.b.c.d).
func sameEndpoint(a, b netip.AddrPort) bool {
	return a.Port() == b.Port() && a.Addr().Unmap() == b.Addr().Unmap()
}
