package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 0.75}, {0, 3, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Errorf("M = %d, want 4", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 2 {
		t.Errorf("bad degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if w, ok := g.EdgeWeight(3, 0); !ok || w != 1.0 {
		t.Errorf("EdgeWeight(3,0) = %v,%v", w, ok)
	}
	if g.HasEdge(0, 2) {
		t.Error("spurious edge 0-2")
	}
	if got := g.TotalWeight(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("TotalWeight = %v, want 2.5", got)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{1, 1, 0.1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 3, 0.1}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 1, 0.1}, {1, 0, 0.2}}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestGeneratorsValidateAndAreDeterministic(t *testing.T) {
	gens := map[string]func(seed int64) *Graph{
		"grid3d":    func(s int64) *Graph { return Grid3D(6, 5, 4, s) },
		"geometric": func(s int64) *Graph { return Geometric(400, 6, s) },
		"geonoise":  func(s int64) *Graph { return GeometricNoise(400, 6, 15, s) },
		"powerlaw":  func(s int64) *Graph { return PowerLaw(300, 4, s) },
		"er":        func(s int64) *Graph { return ErdosRenyi(200, 500, s) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a := gen(42)
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			if a.M() == 0 {
				t.Fatal("empty graph")
			}
			b := gen(42)
			if a.N != b.N || a.M() != b.M() {
				t.Fatalf("nondeterministic size: %d/%d vs %d/%d", a.N, a.M(), b.N, b.M())
			}
			for i := range a.Adj {
				if a.Adj[i] != b.Adj[i] || a.W[i] != b.W[i] {
					t.Fatalf("nondeterministic content at %d", i)
				}
			}
			c := gen(43)
			same := a.M() == c.M()
			if same {
				diff := false
				for i := range a.W {
					if i < len(c.W) && a.W[i] != c.W[i] {
						diff = true
						break
					}
				}
				if !diff {
					t.Error("seed has no effect")
				}
			}
		})
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(3, 3, 3, 1)
	if g.N != 27 {
		t.Fatalf("N = %d", g.N)
	}
	// 3-D mesh edge count: 3 directions × 2×3×3 cuts.
	want := int64(2*3*3) * 3
	if g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
	// Corner vertex has degree 3, center has 6.
	if g.Degree(0) != 3 {
		t.Errorf("corner degree = %d, want 3", g.Degree(0))
	}
	center := int32(1 + 3*(1+3*1))
	if g.Degree(center) != 6 {
		t.Errorf("center degree = %d, want 6", g.Degree(center))
	}
}

func TestGeometricDegreeNearTarget(t *testing.T) {
	g := Geometric(2000, 8, 7)
	avg := float64(len(g.Adj)) / float64(g.N)
	if avg < 5 || avg > 11 {
		t.Errorf("average degree %.2f far from target 8", avg)
	}
}

func TestGeometricNoiseAddsEdges(t *testing.T) {
	base := Geometric(500, 6, 11)
	noisy := GeometricNoise(500, 6, 15, 11)
	if noisy.M() <= base.M() {
		t.Errorf("noise added no edges: %d vs %d", noisy.M(), base.M())
	}
	extra := noisy.M() - base.M()
	want := base.M() * 15 / 100
	if extra < want-2 || extra > want+2 {
		t.Errorf("noise edges = %d, want ≈ %d", extra, want)
	}
}

func TestPowerLawDegreeSkew(t *testing.T) {
	g := PowerLaw(3000, 3, 5)
	maxDeg := 0
	for v := int32(0); int(v) < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(len(g.Adj)) / float64(g.N)
	if float64(maxDeg) < 8*avg {
		t.Errorf("max degree %d not heavy-tailed (avg %.1f)", maxDeg, avg)
	}
}

func TestDistPartition(t *testing.T) {
	f := func(nRaw uint16, ranksRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		ranks := int(ranksRaw)%16 + 1
		d := NewDist(n, ranks)
		// Every vertex owned by exactly the rank whose range contains it.
		for trial := 0; trial < 50; trial++ {
			v := int32(rand.Intn(n))
			o := d.Owner(v)
			lo, hi := d.Range(o)
			if v < lo || v >= hi {
				return false
			}
			if d.Local(v) != v-lo {
				return false
			}
		}
		// Ranges tile [0, n).
		covered := 0
		for r := 0; r < ranks; r++ {
			lo, hi := d.Range(r)
			covered += int(hi - lo)
		}
		return covered == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLocalityOrdering checks the property Fig. 8 relies on: the
// generators span the locality axis in the intended order under a
// 16-rank block distribution.
func TestLocalityOrdering(t *testing.T) {
	const ranks = 16
	// Orient the mesh so block distribution cuts along the long (z)
	// dimension, as the channel-500x100x100 input is laid out.
	// Plane size (8×8=64) divides the 256-vertex blocks, so rank cuts
	// align with mesh planes; at paper scale (500×100×100 over 16 ranks)
	// the same alignment gives near-total locality.
	grid := Grid3D(8, 8, 64, 3)
	geo := Geometric(4000, 8, 3)
	noise := GeometricNoise(4000, 8, 15, 3)
	pl := PowerLaw(4000, 6, 3)

	loc := func(g *Graph) float64 {
		return MeasureLocality(g, NewDist(g.N, ranks)).SameRank
	}
	lg, le, ln, lp := loc(grid), loc(geo), loc(noise), loc(pl)
	t.Logf("locality: grid=%.3f geometric=%.3f geo+noise=%.3f powerlaw=%.3f", lg, le, ln, lp)
	if !(lg > le && le > ln && ln > lp) {
		t.Errorf("locality ordering violated: grid=%.3f geo=%.3f noise=%.3f powerlaw=%.3f",
			lg, le, ln, lp)
	}
	if lg < 0.9 {
		t.Errorf("grid locality %.3f too low for a channel-like input", lg)
	}
	if lp > 0.3 {
		t.Errorf("powerlaw locality %.3f too high for a youtube-like input", lp)
	}
}

func TestNeighborsAndDegreeConsistency(t *testing.T) {
	g := ErdosRenyi(60, 150, 77)
	var total int
	for v := int32(0); int(v) < g.N; v++ {
		adj, ws := g.Neighbors(v)
		if len(adj) != g.Degree(v) || len(ws) != len(adj) {
			t.Fatalf("vertex %d: inconsistent neighbor lengths", v)
		}
		total += len(adj)
		for i, u := range adj {
			w, ok := g.EdgeWeight(v, u)
			if !ok || w != ws[i] {
				t.Fatalf("edge (%d,%d): weight lookup mismatch", v, u)
			}
		}
	}
	if int64(total) != 2*g.M() {
		t.Errorf("degree sum %d != 2M %d", total, 2*g.M())
	}
}

func TestMeasureLocalityEdgeCases(t *testing.T) {
	empty, err := FromEdges(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loc := MeasureLocality(empty, NewDist(4, 2)); loc.SameRank != 1 {
		t.Errorf("empty graph locality = %v", loc.SameRank)
	}
	// Single rank: everything local.
	g := ErdosRenyi(20, 40, 1)
	if loc := MeasureLocality(g, NewDist(g.N, 1)); loc.SameRank != 1 || loc.CrossRank != 0 {
		t.Errorf("single-rank locality = %+v", loc)
	}
}
