// Package graph provides the weighted undirected graphs used by the
// matching application: a CSR representation, deterministic synthetic
// generators spanning the locality spectrum of the paper's inputs (§IV-C),
// and block distribution across ranks with locality metrics.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected graph in compressed-sparse-row form.
// Every undirected edge {u,v} is stored twice (u→v and v→u) with equal
// weights. Self-loops are disallowed.
type Graph struct {
	// N is the vertex count; vertices are 0..N-1.
	N int
	// XAdj has N+1 entries; vertex v's neighbors occupy
	// Adj[XAdj[v]:XAdj[v+1]].
	XAdj []int64
	// Adj holds neighbor vertex ids.
	Adj []int32
	// W holds edge weights, parallel to Adj.
	W []float64
}

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns vertex v's neighbor count.
func (g *Graph) Degree(v int32) int {
	return int(g.XAdj[v+1] - g.XAdj[v])
}

// Neighbors returns vertex v's neighbor ids and edge weights. The slices
// alias the graph's storage.
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.XAdj[v], g.XAdj[v+1]
	return g.Adj[lo:hi], g.W[lo:hi]
}

// Edge is one endpoint pair with weight, used by builders.
type Edge struct {
	U, V int32
	W    float64
}

// FromEdges builds a CSR graph over n vertices from an undirected edge
// list (each edge listed once). Duplicate edges and self-loops are
// rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside 0..%d", e.U, e.V, n-1)
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	g := &Graph{N: n, XAdj: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		g.XAdj[v+1] = g.XAdj[v] + deg[v+1]
	}
	m2 := g.XAdj[n]
	g.Adj = make([]int32, m2)
	g.W = make([]float64, m2)
	cursor := make([]int64, n)
	copy(cursor, g.XAdj[:n])
	place := func(u, v int32, w float64) {
		i := cursor[u]
		g.Adj[i] = v
		g.W[i] = w
		cursor[u]++
	}
	for _, e := range edges {
		place(e.U, e.V, e.W)
		place(e.V, e.U, e.W)
	}
	// Sort each adjacency list for deterministic iteration and fast
	// duplicate detection.
	for v := 0; v < n; v++ {
		lo, hi := g.XAdj[v], g.XAdj[v+1]
		idx := g.Adj[lo:hi]
		ws := g.W[lo:hi]
		sort.Sort(&adjSorter{idx, ws})
		for i := 1; i < len(idx); i++ {
			if idx[i] == idx[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, idx[i])
			}
		}
	}
	return g, nil
}

type adjSorter struct {
	idx []int32
	w   []float64
}

func (s *adjSorter) Len() int           { return len(s.idx) }
func (s *adjSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *adjSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// Validate checks CSR structural invariants: monotone XAdj, in-range
// neighbor ids, no self-loops, sorted duplicate-free adjacency, and
// symmetry (u∈adj(v) ⇔ v∈adj(u) with equal weight).
func (g *Graph) Validate() error {
	if len(g.XAdj) != g.N+1 {
		return fmt.Errorf("graph: XAdj length %d, want %d", len(g.XAdj), g.N+1)
	}
	if g.XAdj[0] != 0 || g.XAdj[g.N] != int64(len(g.Adj)) || len(g.Adj) != len(g.W) {
		return fmt.Errorf("graph: inconsistent arrays")
	}
	for v := int32(0); int(v) < g.N; v++ {
		lo, hi := g.XAdj[v], g.XAdj[v+1]
		if hi < lo {
			return fmt.Errorf("graph: XAdj not monotone at %d", v)
		}
		var prev int32 = -1
		for i := lo; i < hi; i++ {
			u := g.Adj[i]
			if u < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: adjacency of %d not sorted/unique", v)
			}
			prev = u
			if w, ok := g.weight(u, v); !ok || w != g.W[i] {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// weight looks up the weight of directed edge u→v by binary search.
func (g *Graph) weight(u, v int32) (float64, bool) {
	lo, hi := g.XAdj[u], g.XAdj[u+1]
	idx := g.Adj[lo:hi]
	i := sort.Search(len(idx), func(i int) bool { return idx[i] >= v })
	if i < len(idx) && idx[i] == v {
		return g.W[lo+int64(i)], true
	}
	return 0, false
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := g.weight(u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u,v}; ok is false if absent.
func (g *Graph) EdgeWeight(u, v int32) (float64, bool) { return g.weight(u, v) }

// TotalWeight returns the sum of all undirected edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, w := range g.W {
		s += w
	}
	return s / 2
}
