package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Synthetic generators standing in for the paper's SuiteSparse inputs.
// What matters for Fig. 8 is each input's *locality* — the fraction of
// edges whose endpoints land on the same rank under block distribution —
// because eager notification only accelerates updates to co-located (but
// not same-rank) memory. The generators below span that axis:
//
//	Grid3D          ("channel"): 3-D mesh, nearly all edges local
//	Geometric       ("delaunay"/"venturi"): random geometric graph with
//	                 spatially sorted ids, moderately local
//	GeometricNoise  ("random"): geometric plus a fraction of arbitrary
//	                 pairs, the paper's own synthetic input (15 noise edges
//	                 per 100 geometric)
//	PowerLaw        ("youtube"): preferential attachment, highly non-local
//	ErdosRenyi      (tests): uniform random
//
// All generators are deterministic in (parameters, seed). Edge weights are
// drawn uniformly from (0,1); ties are broken by endpoint ids in the
// matching code, so exact duplicates are harmless.

// Grid3D builds an nx×ny×nz 6-point mesh with random weights — the
// "channel" analog. Vertex ids are x-fastest, so block distribution cuts
// the mesh into contiguous slabs and almost all edges stay within a rank.
func Grid3D(nx, ny, nz int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	id := func(x, y, z int) int32 { return int32(x + nx*(y+ny*z)) }
	var edges []Edge
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := id(x, y, z)
				if x+1 < nx {
					edges = append(edges, Edge{u, id(x+1, y, z), rng.Float64()})
				}
				if y+1 < ny {
					edges = append(edges, Edge{u, id(x, y+1, z), rng.Float64()})
				}
				if z+1 < nz {
					edges = append(edges, Edge{u, id(x, y, z+1), rng.Float64()})
				}
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph: Grid3D internal error: %v", err))
	}
	return g
}

// Geometric builds a random geometric graph: n points in the unit square,
// an edge between every pair within the radius that yields the target
// average degree. Vertex ids are assigned in spatial (cell-major) order,
// giving the moderate locality of mesh-like inputs ("delaunay",
// "venturi").
func Geometric(n int, avgDegree float64, seed int64) *Graph {
	g, _ := geometric(n, avgDegree, 0, seed)
	return g
}

// GeometricNoise builds a geometric graph plus noisePer100 random
// long-range edges per 100 geometric edges — the construction the paper
// used for its "random" input (--p 15 ⇒ 15 per 100).
func GeometricNoise(n int, avgDegree float64, noisePer100 int, seed int64) *Graph {
	g, _ := geometric(n, avgDegree, noisePer100, seed)
	return g
}

func geometric(n int, avgDegree float64, noisePer100 int, seed int64) (*Graph, int) {
	rng := rand.New(rand.NewSource(seed))
	// Expected degree = π r² (n-1) ⇒ r.
	r := math.Sqrt(avgDegree / (math.Pi * float64(n-1)))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Sort points into cell-major order so vertex ids reflect spatial
	// position (block distribution then yields locality).
	cells := int(math.Ceil(1 / r))
	if cells < 1 {
		cells = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] / r)
		cy := int(ys[i] / r)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	sort.Slice(order, func(a, b int) bool {
		ax, ay := cellOf(order[a])
		bx, by := cellOf(order[b])
		if ay != by {
			return ay < by
		}
		if ax != bx {
			return ax < bx
		}
		return order[a] < order[b]
	})
	newID := make([]int32, n)
	for rank, old := range order {
		newID[old] = int32(rank)
	}
	// Bucket points by cell for neighbor search.
	bucket := make(map[[2]int][]int)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		bucket[[2]int{cx, cy}] = append(bucket[[2]int{cx, cy}], i)
	}
	var edges []Edge
	r2 := r * r
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, Edge{newID[i], newID[j], rng.Float64()})
					}
				}
			}
		}
	}
	geoEdges := len(edges)
	// Long-range noise: noisePer100 random pairs per 100 geometric edges.
	want := geoEdges * noisePer100 / 100
	have := make(map[[2]int32]bool, len(edges)+want)
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		have[[2]int32{a, b}] = true
	}
	for added := 0; added < want; {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if have[[2]int32{a, b}] {
			continue
		}
		have[[2]int32{a, b}] = true
		edges = append(edges, Edge{a, b, rng.Float64()})
		added++
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph: geometric internal error: %v", err))
	}
	return g, geoEdges
}

// PowerLaw builds a Barabási–Albert preferential-attachment graph: each
// new vertex attaches to m distinct existing vertices chosen proportional
// to degree — the heavy-tailed, locality-free structure of social graphs
// ("youtube").
func PowerLaw(n, m int, seed int64) *Graph {
	if n <= m {
		panic(fmt.Sprintf("graph: PowerLaw needs n > m, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	// repeated-endpoints list: picking a uniform element is
	// degree-proportional sampling.
	targets := make([]int32, 0, 2*m*(n-m))
	var edges []Edge
	// Seed clique-ish core: connect vertex i to i-1 for the first m+1.
	for v := 1; v <= m; v++ {
		edges = append(edges, Edge{int32(v), int32(v - 1), rng.Float64()})
		targets = append(targets, int32(v), int32(v-1))
	}
	chosen := make(map[int32]bool, m)
	picked := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		clear(chosen)
		picked = picked[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if !chosen[t] {
				chosen[t] = true
				picked = append(picked, t)
			}
		}
		// Deterministic weight assignment: attach in pick order, not map
		// iteration order.
		for _, t := range picked {
			edges = append(edges, Edge{int32(v), t, rng.Float64()})
			targets = append(targets, int32(v), t)
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph: PowerLaw internal error: %v", err))
	}
	return g
}

// ErdosRenyi builds a uniform random graph with exactly m distinct edges.
func ErdosRenyi(n int, m int, seed int64) *Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: ErdosRenyi m=%d exceeds max %d", m, maxEdges))
	}
	rng := rand.New(rand.NewSource(seed))
	have := make(map[[2]int32]bool, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if have[[2]int32{a, b}] {
			continue
		}
		have[[2]int32{a, b}] = true
		edges = append(edges, Edge{a, b, rng.Float64()})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph: ErdosRenyi internal error: %v", err))
	}
	return g
}
