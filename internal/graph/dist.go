package graph

import "fmt"

// Dist is a block distribution of a graph's vertices across ranks:
// contiguous id ranges of (nearly) equal size, the distribution the
// matching application uses.
type Dist struct {
	N     int
	Ranks int
	per   int // block size (ceil division)
}

// NewDist builds the block distribution of n vertices over ranks.
func NewDist(n, ranks int) Dist {
	if ranks < 1 || n < 0 {
		panic(fmt.Sprintf("graph: invalid distribution n=%d ranks=%d", n, ranks))
	}
	per := (n + ranks - 1) / ranks
	if per == 0 {
		per = 1
	}
	return Dist{N: n, Ranks: ranks, per: per}
}

// Owner returns the rank owning vertex v.
func (d Dist) Owner(v int32) int {
	return int(v) / d.per
}

// Range returns the [lo, hi) vertex-id range owned by rank.
func (d Dist) Range(rank int) (lo, hi int32) {
	l := rank * d.per
	h := l + d.per
	if l > d.N {
		l = d.N
	}
	if h > d.N {
		h = d.N
	}
	return int32(l), int32(h)
}

// Local converts a global vertex id to its offset within the owner's
// block.
func (d Dist) Local(v int32) int32 {
	return v - int32(d.Owner(v)*d.per)
}

// BlockSize returns the per-rank block size.
func (d Dist) BlockSize() int { return d.per }

// Locality summarizes how a graph's edges fall relative to a
// distribution; it is the property Fig. 8's speedups track.
type Locality struct {
	// SameRank is the fraction of directed edges whose endpoints share a
	// rank (updates the application manually localizes).
	SameRank float64
	// CrossRank is 1 − SameRank: edges requiring communication, which on
	// one node means RMA to co-located processes — the operations eager
	// notification accelerates.
	CrossRank float64
}

// MeasureLocality computes edge locality of g under d.
func MeasureLocality(g *Graph, d Dist) Locality {
	if len(g.Adj) == 0 {
		return Locality{SameRank: 1}
	}
	var same int64
	for v := int32(0); int(v) < g.N; v++ {
		ov := d.Owner(v)
		lo, hi := g.XAdj[v], g.XAdj[v+1]
		for _, u := range g.Adj[lo:hi] {
			if d.Owner(u) == ov {
				same++
			}
		}
	}
	f := float64(same) / float64(len(g.Adj))
	return Locality{SameRank: f, CrossRank: 1 - f}
}
