// Package worker implements the rank-process side of a process-per-rank
// world: the glue that lets the same binaries serve both as front-ends
// (orchestrating in-process worlds) and as rank processes under
// cmd/gupcxxrun. A launched child finds its world contract in the
// GUPCXX_WORLD environment variable (internal/boot); a command that may
// be launched this way calls Maybe early in main, after flag parsing —
// if the contract is present the process joins the world, runs the
// command's worker workload on its one local rank, and exits.
package worker

import (
	"fmt"
	"os"

	"gupcxx"
	"gupcxx/internal/boot"
)

// Maybe joins the process-per-rank world described by GUPCXX_WORLD and
// never returns: the process runs fn on its one local rank and exits
// (status 0, or 1 after printing the error). When the variable is unset
// Maybe returns immediately and the command proceeds with its normal
// in-process orchestration.
//
// cfg is consulted with the world's rank count before bootstrap, so the
// workload can size segments to the world it is joining; the contract
// fields (Ranks, Conduit, Multiproc, Self, Epoch, Peers, SelfConn) of
// its result are overwritten by WorldFromEnv.
func Maybe(name string, cfg func(ranks int) gupcxx.Config, fn func(*gupcxx.Rank)) {
	spec, ok, err := boot.FromEnv()
	if err != nil {
		fatal(name, err)
	}
	if !ok {
		return
	}
	w, ok, err := gupcxx.WorldFromEnv(cfg(spec.Ranks))
	if err != nil {
		fatal(name, fmt.Errorf("rank %d: %w", spec.Rank, err))
	}
	if !ok {
		// FromEnv saw the contract; WorldFromEnv re-reads the same
		// environment, so this cannot happen short of a concurrent unsetenv.
		fatal(name, fmt.Errorf("rank %d: %s vanished between parse and bootstrap", spec.Rank, boot.EnvVar))
	}
	runErr := w.Run(fn)
	w.Close()
	if runErr != nil {
		fatal(name, fmt.Errorf("rank %d: %w", spec.Rank, runErr))
	}
	os.Exit(0)
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s (worker): %v\n", name, err)
	os.Exit(1)
}
