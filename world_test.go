package gupcxx_test

import (
	"testing"
	"time"

	"gupcxx"
)

// TestManualDrive exercises the single-goroutine driving mode: a World
// whose ranks are stepped by the caller rather than Run.
func TestManualDrive(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	r := w.Rank(0)
	p := gupcxx.New[int64](r)
	gupcxx.Rput(r, 5, p).Wait()
	if got := gupcxx.Rget(r, p).Wait(); got != 5 {
		t.Errorf("got %d", got)
	}
	if w.Ranks() != 1 || w.Version().Name != gupcxx.Eager2021_3_6.Name {
		t.Error("world accessors wrong")
	}
	if w.Domain() == nil {
		t.Error("domain accessor nil")
	}
}

func TestDefaultVersionIsEager(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Version().EagerDefault {
		t.Error("zero-value Config should select the eager version (the paper's proposed default)")
	}
}

func TestSimLatencyIsEnforced(t *testing.T) {
	lat := 3 * time.Millisecond
	cfg := gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, SimLatency: lat, SegmentBytes: 1 << 12,
	}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		if r.Me() == 0 {
			start := time.Now()
			gupcxx.Rput(r, 1, ptrs[1]).Wait()
			if d := time.Since(start); d < 2*lat {
				t.Errorf("round trip %v < 2×latency %v", d, 2*lat)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineStatsAcrossVersions is the cost-model integration test: the
// same program exhibits the per-version completion costs the paper
// describes, observed end-to-end through the public API.
func TestEngineStatsAcrossVersions(t *testing.T) {
	const ops = 100
	run := func(ver gupcxx.Version) (cellAllocs, deferPushes, legacy, eager int64) {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 16},
			func(r *gupcxx.Rank) {
				p := gupcxx.New[uint64](r)
				ptrs := gupcxx.ExchangePtr(r, p)
				r.Barrier()
				if r.Me() == 0 {
					base := r.Engine().Stats
					for i := 0; i < ops; i++ {
						gupcxx.Rput(r, uint64(i), ptrs[1]).Wait()
					}
					st := r.Engine().Stats
					cellAllocs = st.CellAllocs - base.CellAllocs
					deferPushes = st.DeferQPushes - base.DeferQPushes
					legacy = st.LegacyAllocs - base.LegacyAllocs
					eager = st.EagerDeliveries - base.EagerDeliveries
				}
				r.Barrier()
			})
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	cells, defers, legacy, eager := run(gupcxx.Eager2021_3_6)
	if cells != 0 || defers != 0 || legacy != 0 || eager != int64(ops) {
		t.Errorf("eager: cells=%d defers=%d legacy=%d eager=%d", cells, defers, legacy, eager)
	}
	cells, defers, legacy, eager = run(gupcxx.Defer2021_3_6)
	if cells != int64(ops) || defers != int64(ops) || legacy != 0 || eager != 0 {
		t.Errorf("defer: cells=%d defers=%d legacy=%d eager=%d", cells, defers, legacy, eager)
	}
	cells, defers, legacy, _ = run(gupcxx.Legacy2021_3_0)
	if cells != int64(ops) || defers != int64(ops) || legacy != int64(ops) {
		t.Errorf("legacy: cells=%d defers=%d legacy=%d", cells, defers, legacy)
	}
}

// TestProgressInternal: internal-level progress never readies local
// futures, while a peer restricted to internal progress still serves our
// requests.
func TestProgressInternal(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		*p.Local(r) = int64(r.Me() + 40)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		switch r.Me() {
		case 0:
			f := gupcxx.Rget(r, ptrs[1])
			// Drive only internal progress for a while: the value
			// arrives (the reply sits held) but the future must not
			// ready.
			for i := 0; i < 2000; i++ {
				r.ProgressInternal()
			}
			if f.Ready() {
				t.Error("future readied by internal progress")
			}
			if got := f.Wait(); got != 41 {
				t.Errorf("value %d", got)
			}
		case 1:
			// Serve rank 0 with internal progress only until it finishes
			// (signaled via the barrier below — spin on internal +
			// occasional user poll for the barrier token itself).
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitInsideCallback: a Then callback that initiates and waits on a
// further (remote) operation must complete (nested progress polls the
// substrate).
func TestWaitInsideCallback(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		if r.Me() == 0 {
			done := false
			// Off-node put; its (deferred-by-nature) completion runs a
			// callback that performs a blocking get.
			gupcxx.Rput(r, 9, ptrs[1]).Op.Then(func() {
				if got := gupcxx.Rget(r, ptrs[1]).Wait(); got != 9 {
					t.Errorf("nested get = %d", got)
				}
				done = true
			})
			for !done {
				r.Progress()
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorldStatsAggregation: the aggregate counters reflect the cost
// model across all ranks.
func TestWorldStatsAggregation(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		gupcxx.Rput(r, 1, ptrs[(r.Me()+1)%r.N()]).Wait()
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.EagerDeliveries != 2 {
		t.Errorf("EagerDeliveries = %d, want 2 (one per rank)", st.EagerDeliveries)
	}
	if st.DeferQPushes != 0 {
		t.Errorf("DeferQPushes = %d", st.DeferQPushes)
	}
	if st.ProgressCalls == 0 {
		t.Error("no progress recorded")
	}
}
