package gupcxx_test

// Unified-pipeline guards: allocation bounds for the eager fast path
// (including the value-carrying operations, whose per-call cell the
// pipeline's inline value futures remove) and the op-level latency/alloc
// benchmarks recorded as BENCH_3.json (make bench-pipeline).

import (
	"runtime"
	"testing"
	"time"

	"gupcxx"
)

// TestOpPipelineValueAllocationFree pins the allocation contract of the
// unified pipeline's eager path, value-producing operations included:
// under the inline-value version knob an eagerly-completed Rget or
// fetching atomic returns its value inside the future struct itself, so
// the §III-B per-call cell allocation is gone. The value-less forms were
// already allocation-free and must stay so.
func TestOpPipelineValueAllocationFree(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			ad := gupcxx.NewAtomicDomain[uint64](r)
			var sink uint64
			// The destination buffer lives outside the measured closure:
			// the remote branch of RgetBulk retains it until the reply, so
			// a per-iteration buffer would be charged one escape per run.
			var buf [1]uint64
			cases := []struct {
				name string
				op   func()
			}{
				{"rget", func() { sink += gupcxx.Rget(r, tgts[1]).Wait() }},
				{"fetchadd", func() { sink += ad.FetchAdd(tgts[1], 1).Wait() }},
				{"load", func() { sink += ad.Load(tgts[1]).Wait() }},
				{"rgetbulk", func() { gupcxx.RgetBulk(r, tgts[1], buf[:]).Wait() }},
			}
			for _, c := range cases {
				if avg := testing.AllocsPerRun(1000, c.op); avg != 0 {
					t.Errorf("eager on-node %s allocates %.2f objects/op, want 0", c.name, avg)
				}
			}
			benchSinkU64 = sink
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpPipelineAsyncRecycling guards the asynchronous leg: steady-state
// off-node-style traffic (SIM conduit) must recycle its completion
// records through the engine freelist rather than allocating one per
// operation. The bound is loose (the substrate's arena warms up during
// the run) but catches a per-op completion-state regression.
func TestOpPipelineAsyncRecycling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, RanksPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			// Warm the freelists and wire-buffer pools.
			for i := 0; i < 64; i++ {
				gupcxx.Rput(r, uint64(i), tgts[1]).Wait()
			}
			avg := testing.AllocsPerRun(500, func() {
				gupcxx.Rput(r, 1, tgts[1]).Wait()
			})
			// The future cell for the async completion is the one
			// irreducible allocation; the AsyncCompletion record itself
			// must come from the freelist.
			if avg > 1 {
				t.Errorf("steady-state off-node put allocates %.2f objects/op, want <= 1", avg)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpPipelineObservedAllocationFree pins the operations plane's cost
// contract on the eager fast path: a world with the full plane active —
// event bus wired into the substrate, counter mirrors flushing, metrics
// listener bound — must keep eager ops at 0 allocs/op while the phase
// hook is nil, and installing the latency sampler (PhaseSampler) must add
// clock reads but still no allocations.
func TestOpPipelineObservedAllocationFree(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, mode := range []string{"observed", "sampled"} {
		if mode == "sampled" {
			w.EnablePhaseSampling()
		}
		err = w.Run(func(r *gupcxx.Rank) {
			tgt := gupcxx.New[uint64](r)
			tgts := gupcxx.ExchangePtr(r, tgt)
			r.Barrier()
			if r.Me() == 0 {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				var sink uint64
				cases := []struct {
					name string
					op   func()
				}{
					{"put", func() { gupcxx.Rput(r, 1, tgts[1]).Wait() }},
					{"get", func() { sink += gupcxx.Rget(r, tgts[1]).Wait() }},
					{"fetchadd", func() { sink += ad.FetchAdd(tgts[1], 1).Wait() }},
				}
				for _, c := range cases {
					if avg := testing.AllocsPerRun(1000, c.op); avg != 0 {
						t.Errorf("%s eager %s allocates %.2f objects/op, want 0", mode, c.name, avg)
					}
				}
				benchSinkU64 = sink
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if mc := w.LatencyHist(gupcxx.OpRMA, gupcxx.PhaseEagerCompleted).Count(); mc == 0 {
		t.Error("sampled pass recorded no rma/eager-completed latencies")
	}
}

// TestOpPipelineObservedAsyncContinuation extends the guard to the
// asynchronous continuation leg: off-node-style continuation ops under an
// active operations plane must stay allocation-free in steady state, just
// as they are unobserved (scripts/check_bench5.sh's contract).
func TestOpPipelineObservedAsyncContinuation(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, RanksPerNode: 1, SimLatency: time.Nanosecond,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			for i := 0; i < 64; i++ { // warm freelists and wire pools
				gupcxx.Rput(r, uint64(i), tgts[1]).Wait()
			}
			fired, issued := 0, 0
			cx := []gupcxx.Cx{gupcxx.OpContinue(func(error) { fired++ })}
			avg := testing.AllocsPerRun(500, func() {
				gupcxx.Rput(r, 1, tgts[1], cx...)
				issued++
				progressUntil(r, func() bool { return fired >= issued })
			})
			if avg != 0 {
				t.Errorf("observed async continuation put allocates %.2f objects/op, want 0", avg)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkOpPipeline measures per-op latency and allocations through the
// unified pipeline for the paper's microbenchmark families, per library
// version. Recorded as BENCH_3.json; the eager value-less rows must stay
// at 0 allocs/op (scripts/check_bench3.sh enforces this when the record
// is regenerated).
func BenchmarkOpPipeline(b *testing.B) {
	type bench struct {
		name string
		run  func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64])
	}
	benches := []bench{
		{"put", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			for i := 0; i < b.N; i++ {
				gupcxx.Rput(r, uint64(i), t).Wait()
			}
		}},
		{"get", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += gupcxx.Rget(r, t).Wait()
			}
			benchSinkU64 = sink
		}},
		{"getbulk", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var buf [1]uint64
			for i := 0; i < b.N; i++ {
				gupcxx.RgetBulk(r, t, buf[:]).Wait()
			}
		}},
		{"fetchadd", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			ad := gupcxx.NewAtomicDomain[uint64](r)
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += ad.FetchAdd(t, 1).Wait()
			}
			benchSinkU64 = sink
		}},
		{"rpc", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			for i := 0; i < b.N; i++ {
				gupcxx.RPC(r, 1, func(*gupcxx.Rank) {}).Wait()
			}
		}},
	}
	for _, bm := range benches {
		b.Run(bm.name, func(b *testing.B) {
			for _, ver := range benchVersions {
				b.Run(ver.Name, func(b *testing.B) {
					b.ReportAllocs()
					microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
						b.ResetTimer()
						bm.run(b, r, t)
					})
				})
			}
		})
	}
}

// obsBenchWorld is the operations-plane harness for BENCH_6: the same
// on-node eager world as microWorld, but with the observability surface
// fully active — metrics listener bound, counter mirrors flushing, event
// bus wired into the substrate — and, when sampled is set, the latency
// hook (World.PhaseSampler) installed on every rank.
func obsBenchWorld(b *testing.B, sampled bool, fn func(r *gupcxx.Rank, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        2,
		Conduit:      gupcxx.PSHM,
		Version:      gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 16,
		MetricsAddr:  "127.0.0.1:0",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if sampled {
		w.EnablePhaseSampling()
	}
	err = w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, targets[1])
		}
		r.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchObsPipeline reruns the eager pipeline families under an active
// operations plane. Observed mode (nil hook) is the overhead proof: the
// rows must match the unobserved baseline within the check_bench6.sh
// tolerance and stay at 0 allocs/op. Sampled mode adds two clock reads
// per op (hook timestamping) — real latency, paid only by opted-in
// worlds — and must still allocate nothing.
func benchObsPipeline(b *testing.B, sampled bool) {
	type bench struct {
		name string
		run  func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64])
	}
	benches := []bench{
		{"put", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			for i := 0; i < b.N; i++ {
				gupcxx.Rput(r, uint64(i), t).Wait()
			}
		}},
		{"get", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += gupcxx.Rget(r, t).Wait()
			}
			benchSinkU64 = sink
		}},
		{"getbulk", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var buf [1]uint64
			for i := 0; i < b.N; i++ {
				gupcxx.RgetBulk(r, t, buf[:]).Wait()
			}
		}},
		{"fetchadd", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			ad := gupcxx.NewAtomicDomain[uint64](r)
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += ad.FetchAdd(t, 1).Wait()
			}
			benchSinkU64 = sink
		}},
	}
	for _, bm := range benches {
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			obsBenchWorld(b, sampled, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				bm.run(b, r, t)
			})
		})
	}
}

// BenchmarkOpPipelineObserved: eager families with the operations plane
// active and a nil phase hook. Recorded in BENCH_6.json next to the
// BenchmarkOpPipeline baseline rows; check_bench6.sh bounds the geomean
// latency overhead and pins 0 allocs/op.
func BenchmarkOpPipelineObserved(b *testing.B) { benchObsPipeline(b, false) }

// BenchmarkOpPipelineSampled: the same families with the latency sampler
// hook installed. check_bench6.sh pins these rows at 0 allocs/op (the
// clock reads cost real nanoseconds and are not latency-bounded).
func BenchmarkOpPipelineSampled(b *testing.B) { benchObsPipeline(b, true) }

// asyncBenchWorld is the off-node (SIM) harness for the asynchronous
// pipeline benchmarks: two single-rank nodes under the eager version with
// nanosecond wire latency (the CPU path is the measurement), with a wire
// RPC echo handler registered so the rpcwire rows have a target.
func asyncBenchWorld(b *testing.B, fn func(r *gupcxx.Rank, echo gupcxx.RPCHandlerID, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        2,
		Conduit:      gupcxx.SIM,
		RanksPerNode: 1,
		SimLatency:   time.Nanosecond,
		Version:      gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	echo := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte { return args })
	err = w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, echo, targets[1])
		}
		r.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// progressUntil drains the initiator's engine until done reports true,
// yielding to the peer rank's goroutine when no work is available (the
// same discipline Future.Wait applies through Engine.Idle).
func progressUntil(r *gupcxx.Rank, done func() bool) {
	for !done() {
		if r.Progress() == 0 {
			runtime.Gosched()
		}
	}
}

// BenchmarkOpPipelineAsync measures the asynchronous (off-node) leg of the
// pipeline per completion form: the future forms pay the one irreducible
// cell escape per op, the continuation forms run cell-free — 0 allocs/op
// for put and getbulk, and the pooled wire-RPC call record holds the
// rpcwire continuation row at <= 2 (args copy + reply view). Recorded as
// BENCH_5.json; scripts/check_bench5.sh fails a regenerated record whose
// continuation rows regress (make bench-syscall).
func BenchmarkOpPipelineAsync(b *testing.B) {
	type bench struct {
		name string
		run  func(b *testing.B, r *gupcxx.Rank, echo gupcxx.RPCHandlerID, t gupcxx.GlobalPtr[uint64])
	}
	benches := []bench{
		{"put/future", func(b *testing.B, r *gupcxx.Rank, _ gupcxx.RPCHandlerID, t gupcxx.GlobalPtr[uint64]) {
			for i := 0; i < b.N; i++ {
				gupcxx.Rput(r, uint64(i), t).Wait()
			}
		}},
		{"put/cont", func(b *testing.B, r *gupcxx.Rank, _ gupcxx.RPCHandlerID, t gupcxx.GlobalPtr[uint64]) {
			fired, issued := 0, 0
			cx := []gupcxx.Cx{gupcxx.OpContinue(func(error) { fired++ })}
			for i := 0; i < b.N; i++ {
				gupcxx.Rput(r, uint64(i), t, cx...)
				issued++
				progressUntil(r, func() bool { return fired >= issued })
			}
		}},
		{"getbulk/cont", func(b *testing.B, r *gupcxx.Rank, _ gupcxx.RPCHandlerID, t gupcxx.GlobalPtr[uint64]) {
			fired, issued := 0, 0
			cx := []gupcxx.Cx{gupcxx.OpContinue(func(error) { fired++ })}
			var buf [1]uint64
			for i := 0; i < b.N; i++ {
				gupcxx.RgetBulk(r, t, buf[:], cx...)
				issued++
				progressUntil(r, func() bool { return fired >= issued })
			}
		}},
		{"rpc/future", func(b *testing.B, r *gupcxx.Rank, _ gupcxx.RPCHandlerID, _ gupcxx.GlobalPtr[uint64]) {
			fn := func(*gupcxx.Rank) {}
			for i := 0; i < b.N; i++ {
				gupcxx.RPC(r, 1, fn).Wait()
			}
		}},
		{"rpc/cont", func(b *testing.B, r *gupcxx.Rank, _ gupcxx.RPCHandlerID, _ gupcxx.GlobalPtr[uint64]) {
			fired, issued := 0, 0
			cx := []gupcxx.Cx{gupcxx.OpContinue(func(error) { fired++ })}
			fn := func(*gupcxx.Rank) {}
			for i := 0; i < b.N; i++ {
				gupcxx.RPC(r, 1, fn, cx...)
				issued++
				progressUntil(r, func() bool { return fired >= issued })
			}
		}},
		{"rpcwire/future", func(b *testing.B, r *gupcxx.Rank, echo gupcxx.RPCHandlerID, _ gupcxx.GlobalPtr[uint64]) {
			args := []byte{1, 2, 3, 4}
			for i := 0; i < b.N; i++ {
				gupcxx.RPCWire(r, 1, echo, args).Wait()
			}
		}},
		{"rpcwire/cont", func(b *testing.B, r *gupcxx.Rank, echo gupcxx.RPCHandlerID, _ gupcxx.GlobalPtr[uint64]) {
			fired, issued := 0, 0
			cont := func([]byte, error) { fired++ }
			args := []byte{1, 2, 3, 4}
			for i := 0; i < b.N; i++ {
				gupcxx.RPCWireContinue(r, 1, echo, args, cont)
				issued++
				progressUntil(r, func() bool { return fired >= issued })
			}
		}},
	}
	for _, bm := range benches {
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			asyncBenchWorld(b, func(r *gupcxx.Rank, echo gupcxx.RPCHandlerID, t gupcxx.GlobalPtr[uint64]) {
				// Warm the completion freelists and wire-buffer pools so the
				// record reflects the steady state, not arena growth.
				for i := 0; i < 64; i++ {
					gupcxx.Rput(r, uint64(i), t).Wait()
				}
				b.ResetTimer()
				bm.run(b, r, echo, t)
			})
		})
	}
}
