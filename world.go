// Package gupcxx is a Go library implementing the Asynchronous Partitioned
// Global Address Space (APGAS) programming model of UPC++, built to
// reproduce the SC'21 paper "Optimization of Asynchronous Communication
// Operations through Eager Notifications" (Kamil & Bonachea).
//
// A job is a World of SPMD ranks, each with a private memory plus a shared
// segment; the union of the segments forms the global address space.
// Ranks address each other's segments through typed global pointers
// (GlobalPtr) and communicate with one-sided RMA (Rput/Rget), remote
// atomics (AtomicDomain), and remote procedure calls (RPC). Asynchronous
// operations notify completion through futures, promises, and callbacks,
// composed via the completion factories re-exported from internal/core.
//
// The headline feature is the eager-notification completion mode: under
// Eager2021_3_6 (the default version), an operation that completes its
// data movement synchronously — because the target is co-located and
// reached by shared-memory bypass — may return an already-ready future
// (with no heap allocation) or skip fulfilling a registered promise
// entirely, removing the progress-queue round trip that the legacy
// deferred semantics impose. See DESIGN.md for the full mapping to the
// paper.
//
// A minimal program:
//
//	cfg := gupcxx.Config{Ranks: 4}
//	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
//		ptr := gupcxx.New[int64](r)            // allocate in my segment
//		ptrs := gupcxx.ExchangePtr(r, ptr)     // allgather the pointers
//		next := ptrs[(r.Me()+1)%r.N()]
//		gupcxx.Rput(r, int64(r.Me()), next).Wait()
//		r.Barrier()
//		fmt.Println(r.Me(), *ptr.Local(r))
//	})
package gupcxx

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"strconv"
	"sync"
	"time"

	"gupcxx/internal/boot"
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
	"gupcxx/internal/obs"
)

// Version selects which of the paper's three library behaviours the
// runtime emulates; see internal/core.Version.
type Version = core.Version

// The three library versions evaluated in the paper (§IV).
var (
	Legacy2021_3_0 = core.Legacy2021_3_0
	Defer2021_3_6  = core.Defer2021_3_6
	Eager2021_3_6  = core.Eager2021_3_6
)

// Conduit selects the communication substrate; see internal/gasnet.
type Conduit = gasnet.Conduit

// Available conduits.
const (
	SMP  = gasnet.SMP
	PSHM = gasnet.PSHM
	SIM  = gasnet.SIM
	UDP  = gasnet.UDP
)

// ParseConduit converts a conduit name ("smp", "pshm", "sim", "udp") to a
// Conduit.
func ParseConduit(s string) (Conduit, error) { return gasnet.ParseConduit(s) }

// FaultConfig configures the UDP conduit's deterministic fault-injection
// shim; see internal/gasnet/fault.go.
type FaultConfig = gasnet.FaultConfig

// BackpressurePolicy selects how admission reacts to a full per-peer send
// window (Config.Backpressure).
type BackpressurePolicy = gasnet.BackpressurePolicy

// Backpressure policies.
const (
	// BackpressureBlock waits — bounded by Config.BackpressureWait and the
	// operation's deadline — for a window credit before failing with
	// ErrBackpressure.
	BackpressureBlock = gasnet.BackpressureBlock
	// BackpressureFailFast fails the operation with ErrBackpressure
	// immediately when the window is full.
	BackpressureFailFast = gasnet.BackpressureFailFast
)

// FlowState is a snapshot of one peer pair's congestion-control state
// (Rank.Flow): smoothed RTT, current retransmission timeout, adaptive
// window, its occupancy in datagrams and bytes, and the receive-side
// reorder-buffer occupancy against its byte budget.
type FlowState = gasnet.FlowState

// Completion type and factory re-exports: completions are composed by
// passing several Cx values to an operation, the analogue of UPC++'s
// `operation_cx::as_future() | remote_cx::as_rpc(...)`.
type (
	// Cx is a single completion request.
	Cx = core.Cx
	// Future is a value-less asynchronous result.
	Future = core.Future
	// FutureV is an asynchronous result carrying a value.
	FutureV[T any] = core.FutureV[T]
	// Promise tracks completion of any number of value-less operations.
	Promise = core.Promise
	// PromiseV tracks a single value-producing operation.
	PromiseV[T any] = core.PromiseV[T]
	// Result carries the futures produced by an operation.
	Result = core.Result
	// Mode selects eager/deferred/default notification.
	Mode = core.Mode
)

// Completion factory re-exports (§III-A).
var (
	OpFuture       = core.OpFuture
	OpEagerFuture  = core.OpEagerFuture
	OpDeferFuture  = core.OpDeferFuture
	OpPromise      = core.OpPromise
	OpEagerPromise = core.OpEagerPromise
	OpDeferPromise = core.OpDeferPromise
	OpLPC          = core.OpLPC
	// OpContinue is the cell-free completion form: the callback runs
	// inline the moment the operation's outcome is known (at initiation
	// when synchronous, on the progress goroutine at ack time when not),
	// with no future cell allocated — see TUTORIAL.md on continuations
	// vs futures.
	OpContinue = core.OpContinue

	SourceFuture      = core.SourceFuture
	SourceEagerFuture = core.SourceEagerFuture
	SourceDeferFuture = core.SourceDeferFuture
	SourcePromise     = core.SourcePromise
	SourceLPC         = core.SourceLPC

	RemoteRPC = core.RemoteRPC
)

// RemoteRPCOn requests remote completion with the target Rank handle:
// fn runs on the target rank's progress goroutine after data arrival,
// with full access to target-side state.
func RemoteRPCOn(fn func(*Rank)) Cx {
	return core.RemoteRPCCtx(func(ctx any) { fn(ctx.(*Rank)) })
}

// Notification modes for the value-producing operations (Rget, fetching
// atomics), which cannot take a Cx list because their future carries the
// value.
const (
	ModeDefault = core.ModeDefault
	ModeEager   = core.ModeEager
	ModeDefer   = core.ModeDefer
)

// Op-lifecycle instrumentation re-exports: the operation families and
// pipeline phases indexing the Rank.OpStats counter matrix.
type (
	OpKind = core.OpKind
	Phase  = core.Phase
)

const (
	OpRMA    = core.OpRMA
	OpAtomic = core.OpAtomic
	OpRPC    = core.OpRPC
	OpVIS    = core.OpVIS
	OpColl   = core.OpColl

	PhaseInitiated      = core.PhaseInitiated
	PhaseEagerCompleted = core.PhaseEagerCompleted
	PhaseDeferredQueued = core.PhaseDeferredQueued
	PhaseWireAcked      = core.PhaseWireAcked
	PhaseFailed         = core.PhaseFailed
)

// OpDeadline requests that an asynchronous operation's notifications
// resolve with ErrDeadlineExceeded if the substrate has not acknowledged
// within d. It composes with the other completion requests
// (OpFuture() | OpDeadline(d)); the smallest positive bound wins.
var OpDeadline = core.OpDeadline

// Config describes a World.
type Config struct {
	// Ranks is the number of SPMD ranks. Must be >= 1.
	Ranks int

	// Conduit selects the substrate; the zero value is SMP (single node,
	// static locality). Use PSHM for the paper's dynamic-locality
	// single-node runs and SIM for multi-node simulations.
	Conduit Conduit

	// RanksPerNode groups ranks into nodes under the SIM conduit
	// (default 1). Ignored by SMP and PSHM, which are single-node.
	RanksPerNode int

	// SegmentBytes sizes each rank's shared segment
	// (default gasnet.DefaultSegmentBytes).
	SegmentBytes int

	// SimLatency is the one-way cross-node latency injected by the SIM
	// conduit (default 1µs).
	SimLatency time.Duration

	// Fault, when non-nil on the UDP conduit, injects deterministic
	// datagram drop/duplication/reordering from a seeded PRNG on the send
	// path, exercising the conduit's reliability layer (sequencing, acks,
	// retransmission). Collectives and RPCs still complete — slower, with
	// Stats.Retransmits counting the recoveries. Ignored by other
	// conduits. When nil, the GUPCXX_UDP_FAULT environment variable
	// ("drop=0.25,dup=0.05,reorder=0.10,seed=7") is consulted instead.
	Fault *FaultConfig

	// RelWindow bounds the UDP reliability layer's per-pair in-flight
	// datagrams and reorder buffer (default 256). It is the ceiling of the
	// adaptive congestion window, which moves AIMD-style between
	// RelWindowMin and this value as loss is observed.
	RelWindow int

	// RelWindowMin is the congestion window's AIMD floor: loss never
	// halves the window below it (default 8, clamped to RelWindow).
	RelWindowMin int

	// RelReorderBytes bounds, per rank pair, the memory parked in the UDP
	// receive-side reorder buffer; frames past the budget are shed and
	// repaired by retransmission (default 1 MiB).
	RelReorderBytes int

	// Backpressure selects what happens when an operation targets a peer
	// whose send window is full: BackpressureBlock (default) waits up to
	// BackpressureWait for a credit, then fails the operation with
	// ErrBackpressure; BackpressureFailFast fails it immediately.
	Backpressure BackpressurePolicy

	// BackpressureWait bounds the blocking admission wait (default 2s);
	// an operation's own deadline caps it further.
	BackpressureWait time.Duration

	// RelMaxAttempts is the UDP retransmission budget per datagram;
	// exhausting it declares the destination down instead of retrying
	// forever (default 64).
	RelMaxAttempts int

	// HeartbeatEvery is the UDP liveness heartbeat period (default 5ms).
	HeartbeatEvery time.Duration

	// SuspectAfter is the silence bound before a peer is marked Suspect
	// (recoverable; default 10×HeartbeatEvery).
	SuspectAfter time.Duration

	// DownAfter is the silence bound before a peer is declared Down: its
	// pending and future operations fail with ErrPeerUnreachable (default
	// 40×HeartbeatEvery). Down holds until the peer's NEXT incarnation
	// announces itself through the join/readmission protocol — the dead
	// incarnation itself can never return.
	DownAfter time.Duration

	// DisableLiveness turns the UDP heartbeat/failure-detection machinery
	// off (retransmission exhaustion then aborts the job).
	DisableLiveness bool

	// Version selects the emulated library behaviour. The zero value
	// selects Eager2021_3_6, the paper's proposed default.
	Version Version

	// MetricsAddr, when non-empty, starts the operations-plane HTTP
	// listener on the given host:port (port 0 picks a free port — read it
	// back via World.MetricsAddr), serving Prometheus text at /metrics
	// and a JSON debug snapshot at /debug/gupcxx. A bind failure fails
	// NewWorld. The empty default leaves the listener off; the event bus
	// and counter mirrors run either way and cost nothing measurable
	// unobserved.
	//
	// In a Multiproc world a fixed (non-zero) port is offset by Self, so
	// one configuration gives every rank of a co-hosted world its own
	// listener: "127.0.0.1:9500" puts rank 0 on 9500, rank 1 on 9501, ….
	// Port 0 is left alone — each rank picks its own free port.
	MetricsAddr string

	// Multiproc selects the process-per-rank deployment shape: this
	// process hosts exactly one rank (Self) of a world whose other ranks
	// are separate OS processes reached over the UDP conduit. Requires
	// Conduit == UDP, a bound SelfConn, and a full Peers table. Normally
	// these four fields are filled by WorldFromEnv from the GUPCXX_WORLD
	// contract rather than by hand. In this mode only Self's Rank exists
	// in this World (Rank(i) is nil for every other i), closure RPC to
	// remote ranks fails with ErrNotWireEncodable, and every pointer
	// crossing the wire must use the EncodePtr/DecodePtr form.
	Multiproc bool

	// Self is this process's rank in a Multiproc world.
	Self int

	// Epoch is this process's incarnation stamp, distributed by the
	// bootstrap exchange: the launch epoch for first-boot ranks, a bumped
	// value for a rank readmitted through the rendezvous server's rejoin
	// path. It rides every conduit frame (stale-incarnation filtering) and
	// seeds the segment-id field of wire-encoded global pointers (see
	// EncodePtr). Zero is treated as 1.
	Epoch uint32

	// Rejoin marks this process as a restarted rank joining an
	// already-running world (WorldFromEnv sets it from the bootstrap
	// outcome). A rejoining rank broadcasts join frames each heartbeat
	// round until every live peer has readmitted it; without the flag a
	// restarted rank would wait on peers that silently drop its
	// new-incarnation frames. Only meaningful with Multiproc.
	Rejoin bool

	// DisableReadmission makes Down permanent again: join frames from
	// restarted peers are ignored, restoring the pre-churn "Down is
	// forever" contract for deployments that replace failed ranks by
	// relaunching the whole world.
	DisableReadmission bool

	// DisableHealing makes silence-driven Down terminal again: a peer
	// declared dead because the network went quiet (a partition, not a
	// goodbye) is never probed and never healed back to Alive. Readmission
	// of genuinely restarted ranks is unaffected.
	DisableHealing bool

	// Peers is the rank-indexed UDP address table of a Multiproc world.
	Peers []netip.AddrPort

	// SelfConn is this rank's bound UDP socket (the bootstrap exchange
	// binds it before publishing its address). The World takes ownership.
	SelfConn *net.UDPConn
}

// World is one job instance: the substrate domain plus per-rank runtime
// state. Create it with NewWorld and drive it with Run, or use Launch.
type World struct {
	dom   *gasnet.Domain
	ranks []*Rank
	ver   Version

	// multiproc mirrors Config.Multiproc. Wire-encoded pointers stamp the
	// target rank's incarnation-derived segment id (gptrwire.go).
	multiproc bool

	// rpcHandlers is the registry of wire-safe RPC procedures (see
	// rpcwire.go); append-only, fixed before Run.
	rpcHandlers []RPCHandler

	// Operations plane (obs.go): the always-on event bus and per-rank
	// counter mirrors, the per-family×phase latency histograms fed by
	// PhaseSampler, and — only when Config.MetricsAddr is set — the HTTP
	// export surface, its rate sampler, and the world-owned
	// recent-events subscription backing the debug snapshot.
	bus     *obs.Bus
	mirrors []*core.OpsMirror
	hists   *obs.HistVec
	obsSrv  *obs.Server
	sampler *obs.Sampler
	evmu    sync.Mutex // guards evsub draining and the recent ring
	evsub   *obs.Subscription
	recent  []obs.Event
}

// NewWorld validates cfg and constructs the job.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Version.Name == "" {
		cfg.Version = Eager2021_3_6
	}
	bus := obs.NewBus(0)
	dom, err := gasnet.NewDomain(gasnet.Config{
		Ranks:            cfg.Ranks,
		Conduit:          cfg.Conduit,
		RanksPerNode:     cfg.RanksPerNode,
		SegmentBytes:     cfg.SegmentBytes,
		SimLatency:       cfg.SimLatency,
		Fault:            cfg.Fault,
		RelWindow:        cfg.RelWindow,
		RelWindowMin:     cfg.RelWindowMin,
		RelReorderBytes:  cfg.RelReorderBytes,
		Backpressure:     cfg.Backpressure,
		BackpressureWait: cfg.BackpressureWait,
		RelMaxAttempts:   cfg.RelMaxAttempts,
		HeartbeatEvery:   cfg.HeartbeatEvery,
		SuspectAfter:     cfg.SuspectAfter,
		DownAfter:        cfg.DownAfter,
		DisableLiveness:  cfg.DisableLiveness,
		Multiproc:        cfg.Multiproc,
		Self:             cfg.Self,
		Peers:            cfg.Peers,
		SelfConn:         cfg.SelfConn,
		Epoch:            cfg.Epoch,
		Rejoin:           cfg.Rejoin,
		DisableReadmission: cfg.DisableReadmission,
		DisableHealing:     cfg.DisableHealing,
		Events:           bus,
	})
	if err != nil {
		return nil, err
	}
	w := &World{
		dom:       dom,
		ver:       cfg.Version,
		multiproc: cfg.Multiproc,
		bus:       bus,
		hists:     obs.NewHistVec(int(core.NumOpKinds), int(core.NumPhases)),
	}
	dom.RegisterHandler(hRPCExec, handleRPCExec)
	dom.RegisterHandler(hColl, handleColl)
	dom.RegisterHandler(hRPCWireReq, handleRPCWireReq)
	dom.RegisterHandler(hRPCWireRep, handleRPCWireRep)
	// The put-with-notify dispatcher: a notify-put's data has been applied
	// and acked by the substrate; the carried handler id and argument
	// bytes resolve against the world's wire-RPC registry on the receiving
	// rank's goroutine. Unknown ids and handler panics are counted and
	// contained — a notify has no reply path to carry the failure.
	dom.SetNotifyHook(func(ep *gasnet.Endpoint, id uint32, args []byte) {
		nr := rankOf(ep)
		if int(id) >= len(w.rpcHandlers) {
			dom.NoteBadHandler()
			return
		}
		nr.runContained(func(hr *Rank) { w.rpcHandlers[id](hr, args) })
	})
	w.ranks = make([]*Rank, cfg.Ranks)
	staticLocal := dom.Config().StaticLocal() && cfg.Version.ConstexprLocal
	for i := 0; i < cfg.Ranks; i++ {
		if cfg.Multiproc && i != cfg.Self {
			// Remote ranks live in other processes: no Rank handle exists
			// for them here. The slice keeps its full length so rank
			// indices stay meaningful.
			continue
		}
		ep := dom.Endpoint(i)
		r := &Rank{
			w:           w,
			ep:          ep,
			eng:         core.NewEngine(i, cfg.Version),
			staticLocal: staticLocal,
			coll:        newCollState(),
		}
		r.eng.SetPoller(ep.Poll)
		r.eng.SetParker(ep.Park)
		ep.Ctx = r
		// When the substrate declares a peer dead it fails its own op-table
		// entries; the hook extends the sweep to the runtime layer's
		// wire-RPC calls, which track their cookies outside the op table.
		// The death generation scopes the sweep to calls issued against the
		// incarnation that just died — calls already retargeting a
		// readmitted successor survive.
		ep.SetPeerDownHook(func(peer int, err error) {
			r.wire.failPeer(peer, ep.DownGen(peer), err)
		})
		// Credit-based admission: remote descriptors that set Admit are
		// checked against the target's send window before injecting, so a
		// saturated peer surfaces as ErrBackpressure (a completion value)
		// instead of an unbounded block inside the reliability layer.
		r.eng.SetAdmitter(ep.AdmitSend)
		// Each engine publishes its plain-int64 counters into an
		// all-atomic mirror every few progress steps, so the metrics
		// endpoint can read a live world without racing the hot path.
		m := &core.OpsMirror{}
		r.eng.SetMirror(m)
		w.mirrors = append(w.mirrors, m)
		// Deadline expiries happen on the rank goroutine during sweep;
		// surface them on the event bus with the op family as payload
		// (there is no single peer to blame, hence Peer: -1).
		rank := int32(i)
		r.eng.SetExpiryHook(func(k core.OpKind) {
			bus.Publish(obs.Event{
				Kind: obs.EvDeadlineExpired, Rank: rank, Peer: -1, A: int64(k),
			})
		})
		w.ranks[i] = r
	}
	if cfg.MetricsAddr != "" {
		addr := cfg.MetricsAddr
		if cfg.Multiproc {
			addr, err = offsetPort(addr, cfg.Self)
			if err != nil {
				dom.Close()
				return nil, fmt.Errorf("gupcxx: metrics listener: %w", err)
			}
		}
		if err := w.startObsServer(addr); err != nil {
			dom.Close()
			return nil, fmt.Errorf("gupcxx: metrics listener: %w", err)
		}
	}
	return w, nil
}

// offsetPort rewrites host:port to host:(port+by), leaving port 0 (pick a
// free port) alone — the per-rank listener spacing a Multiproc world
// applies to one shared MetricsAddr configuration.
func offsetPort(addr string, by int) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("port %q: %w", portStr, err)
	}
	if port == 0 {
		return addr, nil
	}
	port += by
	if port > 65535 {
		return "", fmt.Errorf("port %d+%d exceeds 65535", port-by, by)
	}
	return net.JoinHostPort(host, strconv.Itoa(port)), nil
}

// WorldFromEnv joins the process-per-rank world named by the GUPCXX_WORLD
// environment variable: it runs the bootstrap exchange (bind the UDP
// socket, learn the epoch-stamped peer table, pass the startup barrier)
// and constructs the one-rank-per-process World on top. ok is false — with
// the cfg-built standalone World NOT constructed and a nil *World — when
// the variable is unset: the caller decides what a standalone run means.
// cfg supplies everything the world contract does not (version, segment
// size, timeouts, MetricsAddr, …); its Ranks/Conduit/Multiproc fields are
// overwritten from the contract.
func WorldFromEnv(cfg Config) (w *World, ok bool, err error) {
	spec, ok, err := boot.FromEnv()
	if err != nil || !ok {
		return nil, false, err
	}
	bs, err := boot.Bootstrap(spec)
	if err != nil {
		return nil, false, err
	}
	cfg.Ranks = spec.Ranks
	cfg.Conduit = UDP
	cfg.Multiproc = true
	cfg.Self = spec.Rank
	cfg.Epoch = bs.Epoch
	cfg.Rejoin = bs.Rejoin
	cfg.Peers = bs.Peers
	cfg.SelfConn = bs.Conn
	w, err = NewWorld(cfg)
	if err != nil {
		bs.Conn.Close()
		return nil, false, err
	}
	return w, true, nil
}

// Ranks reports the number of ranks in the world.
func (w *World) Ranks() int { return w.dom.Ranks() }

// Version reports the emulated library version.
func (w *World) Version() Version { return w.ver }

// Rank returns rank i's handle. Outside of Run, a Rank may be driven
// manually from a single goroutine (used by tests and single-rank tools);
// concurrent use of one Rank is not allowed. In a Multiproc world only
// Self's handle exists; every other index returns nil.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Self returns this process's Rank handle in a Multiproc world, or nil
// for in-process worlds (where every rank is equally "self").
func (w *World) Self() *Rank {
	if !w.multiproc {
		return nil
	}
	return w.ranks[w.dom.Config().Self]
}

// Multiproc reports whether this World is one rank of a process-per-rank
// world.
func (w *World) Multiproc() bool { return w.multiproc }

// Rejoined reports whether this process joined an already-running world
// as a restarted rank (the bootstrap exchange answered with a bumped
// epoch). A rejoined world announces its new incarnation to the
// survivors until readmitted; application code can use this to skip
// launch-time collectives the surviving ranks will not re-run.
func (w *World) Rejoined() bool { return w.dom.Config().Rejoin }

// Incarnation returns this process's incarnation stamp: the normalized
// world epoch, bumped for readmitted ranks. In-process worlds report 1
// unless Config.Epoch was set.
func (w *World) Incarnation() uint32 { return w.dom.Incarnation() }

// Domain exposes the underlying substrate domain (instrumentation and
// tests).
func (w *World) Domain() *gasnet.Domain { return w.dom }

// Run executes fn once per rank, each on its own goroutine, SPMD-style,
// and returns after all ranks complete. A panic on any rank is captured
// and returned as an error after the surviving ranks are abandoned (the
// World must not be reused after a panic). In a Multiproc world only
// Self's rank exists in this process, so Run executes fn exactly once —
// the SPMD fan-out is the launcher's job there (one process per rank),
// not this World's.
func (w *World) Run(fn func(*Rank)) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.ranks))
	for i, r := range w.ranks {
		if r == nil {
			continue // multiproc: rank lives in another process
		}
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			// Publish the final counter state: the periodic mirror flush
			// runs every few progress steps, so without this tail flush a
			// scrape after Run could miss the last interval's ops.
			defer r.eng.FlushMirror()
			defer func() {
				if p := recover(); p != nil {
					if ab, ok := p.(rankAbort); ok {
						// A deliberate unwind out of a blocking protocol
						// (collective abort on peer death): surface the
						// carried error with its errors.Is chain intact.
						errs[i] = fmt.Errorf("rank %d: %w", i, ab.err)
						return
					}
					buf := make([]byte, 16<<10)
					buf = buf[:runtime.Stack(buf, false)]
					errs[i] = fmt.Errorf("rank %d panicked: %v\n%s", i, p, buf)
				}
			}()
			fn(r)
			if w.multiproc {
				w.drainWire(r)
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// drainWire quiesces a multiproc rank between fn returning and the world
// closing. A rank can complete its side of a final collective while the
// tokens it sent are still unacknowledged — or lost, needing a
// retransmission only this process can provide. Closing immediately
// would announce departure (the goodbye frame marks this rank Down at
// its peers on receipt) while a slower peer is still waiting on one of
// those frames, turning a clean SPMD exit into a spurious collective
// abort there. So: keep driving progress until the reliability layer
// reports nothing in flight toward any live peer — everything this rank
// ever sent is then known-delivered, and nothing a correct peer waits on
// can depend on us staying up. Down peers are excluded (their acks will
// never come) and a deadline backstops the loop against a peer that dies
// without detection mid-drain.
func (w *World) drainWire(r *Rank) {
	self := w.dom.Config().Self
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		pending := r.ep.PendingOps()
		for p := 0; p < w.Ranks() && pending == 0; p++ {
			if p == self || r.ep.PeerDown(p) {
				continue
			}
			pending += w.dom.FlowState(self, p).InFlight
		}
		if pending == 0 {
			return
		}
		r.Serve()
	}
}

// Stats aggregates the completion-machinery statistics of every rank's
// progress engine. Call it only when no rank is actively running (after
// Run returns) — the counters are owned by the rank goroutines.
func (w *World) Stats() core.Stats {
	var total core.Stats
	for _, r := range w.ranks {
		if r == nil {
			continue
		}
		s := r.eng.Stats
		total.CellAllocs += s.CellAllocs
		total.DeferQPushes += s.DeferQPushes
		total.LPCRuns += s.LPCRuns
		total.ProgressCalls += s.ProgressCalls
		total.WhenAllBuilt += s.WhenAllBuilt
		total.WhenAllElided += s.WhenAllElided
		total.ReadyHits += s.ReadyHits
		total.LegacyAllocs += s.LegacyAllocs
		total.EagerDeliveries += s.EagerDeliveries
	}
	return total
}

// OpStats aggregates the op-lifecycle counters of every rank: the phase
// matrices and engine statistics sum across ranks, and the substrate
// snapshot (domain-wide already) is included once. Call it only when no
// rank is actively running.
func (w *World) OpStats() OpStats {
	var total OpStats
	for _, r := range w.ranks {
		if r == nil {
			continue
		}
		ops := r.eng.OpStats()
		total.Ops.Add(&ops)
	}
	total.Engine = w.Stats()
	total.Substrate = w.dom.Stats()
	return total
}

// SetFault replaces rank's UDP send-path fault distribution mid-run
// (e.g. Drop:1 to simulate killing the rank after a healthy start). The
// fault layer is always interposed on UDP worlds — idle it costs one
// atomic load per write — so no construction-time arming is needed.
func (w *World) SetFault(rank int, cfg FaultConfig) error {
	return w.dom.SetFault(rank, cfg)
}

// SetPairFault installs a directional fault distribution on datagrams
// from→to only — the asymmetric-loss primitive. See Domain.SetPairFault.
func (w *World) SetPairFault(from, to int, cfg FaultConfig) error {
	return w.dom.SetPairFault(from, to, cfg)
}

// SetPartition severs the network between the given rank groups at the
// senders this process hosts: every datagram (heartbeats and partition
// probes included) between ranks in different groups is dropped. Ranks
// not listed form an implicit group of their own. The liveness machine
// then declares the cut pairs Down; HealPartition restores the network
// and lets them heal back to Alive under the same incarnation (unless
// Config.DisableHealing). In a multiproc world each process applies its
// own senders' half — coordinate with the GUPCXX_UDP_SCENARIO DSL.
func (w *World) SetPartition(groups [][]int) error {
	return w.dom.SetPartition(groups)
}

// HealPartition removes the partition installed by SetPartition.
func (w *World) HealPartition() error {
	return w.dom.HealPartition()
}

// StartScenario arms a phased network scenario against this world's
// senders, e.g. "at=2s partition=0,1|2,3; at=6s heal". See the scenario
// DSL grammar in DESIGN.md §16; GUPCXX_UDP_SCENARIO arms the same thing
// at construction.
func (w *World) StartScenario(spec string) error {
	return w.dom.StartScenario(spec)
}

// Close releases substrate resources (the UDP conduit's sockets and
// reader goroutines) and tears down the observability surface (metrics
// listener, rate sampler); it is idempotent. Ranks must not be driven
// after Close. Event subscriptions obtained from SubscribeEvents stay
// drainable — Close stops the event sources, not the consumers.
func (w *World) Close() {
	w.closeObs()
	w.dom.Close()
}

// Launch is the one-call entry point: construct a World from cfg, Run fn
// on every rank, and Close the world.
func Launch(cfg Config, fn func(*Rank)) error {
	w, err := NewWorld(cfg)
	if err != nil {
		return err
	}
	defer w.Close()
	return w.Run(fn)
}
