package gupcxx_test

import (
	"testing"

	"gupcxx"
)

func TestWorldTeamSingleton(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 3, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			a := r.WorldTeam()
			b := r.WorldTeam()
			if a != b {
				t.Error("WorldTeam not cached")
			}
			if a.N() != r.N() || a.Rank() != r.Me() {
				t.Errorf("world team shape: N=%d rank=%d", a.N(), a.Rank())
			}
			a.Barrier()
			b.Barrier() // same seq space — must still match across ranks
			if got := a.SumU64(1); got != uint64(r.N()) {
				t.Errorf("team sum = %d", got)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamSplitEvenOdd(t *testing.T) {
	const ranks = 6
	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			world := r.WorldTeam()
			color := r.Me() % 2
			sub := world.Split(color, r.Me())
			if sub == nil {
				t.Error("nil subteam for non-negative color")
				return
			}
			if sub.N() != ranks/2 {
				t.Errorf("subteam size %d", sub.N())
			}
			if sub.WorldRank(sub.Rank()) != r.Me() {
				t.Error("WorldRank inverse broken")
			}
			// Members ordered by key = world rank.
			for i := 0; i < sub.N(); i++ {
				if want := 2*i + color; sub.WorldRank(i) != want {
					t.Errorf("member %d = %d, want %d", i, sub.WorldRank(i), want)
				}
			}
			// Team collectives stay within the team.
			sum := sub.SumU64(uint64(r.Me()))
			want := uint64(0)
			for i := color; i < ranks; i += 2 {
				want += uint64(i)
			}
			if sum != want {
				t.Errorf("team sum = %d, want %d", sum, want)
			}
			// Broadcast from team rank 0.
			v := sub.BroadcastU64(0, uint64(100+sub.WorldRank(0)))
			if v != uint64(100+color) {
				t.Errorf("team bcast = %d", v)
			}
			sub.Barrier()
			world.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamSplitReverseKeyOrder(t *testing.T) {
	const ranks = 4
	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			sub := r.WorldTeam().Split(0, -r.Me())
			// Keys are negated world ranks: order reverses.
			if sub.WorldRank(sub.Rank()) != r.Me() {
				t.Error("self lookup broken")
			}
			if sub.Rank() != ranks-1-r.Me() {
				t.Errorf("team rank %d, want %d", sub.Rank(), ranks-1-r.Me())
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamSplitOptOut(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			color := 0
			if r.Me() == 3 {
				color = -1 // opt out
			}
			sub := r.WorldTeam().Split(color, 0)
			if r.Me() == 3 {
				if sub != nil {
					t.Error("opted-out rank got a team")
				}
				return
			}
			if sub.N() != 3 {
				t.Errorf("team size %d", sub.N())
			}
			sub.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplits(t *testing.T) {
	const ranks = 8
	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			world := r.WorldTeam()
			half := world.Split(r.Me()/4, r.Me()) // two teams of 4
			quarter := half.Split(half.Rank()/2, half.Rank())
			if quarter.N() != 2 {
				t.Errorf("quarter size %d", quarter.N())
			}
			// Concurrent collectives on sibling teams must not
			// cross-match: every quarter sums its members.
			sum := quarter.SumU64(uint64(r.Me()))
			base := (r.Me() / 2) * 2
			if sum != uint64(base+base+1) {
				t.Errorf("quarter sum = %d (me %d)", sum, r.Me())
			}
			// Distinct sibling teams have distinct ids; parent/child too.
			if quarter.ID() == half.ID() || half.ID() == world.ID() {
				t.Error("team ids collide")
			}
			world.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistObject(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 4, Conduit: conduit, SegmentBytes: 1 << 12},
			func(r *gupcxx.Rank) {
				type payload struct {
					Rank  int
					Words []string
				}
				d := gupcxx.NewDistObject(r, payload{
					Rank:  r.Me(),
					Words: []string{"hello", "from"},
				})
				r.Barrier()
				for tgt := 0; tgt < r.N(); tgt++ {
					got := d.Fetch(tgt).Wait()
					if got.Rank != tgt || len(got.Words) != 2 {
						t.Errorf("fetch(%d) = %+v", tgt, got)
					}
				}
				if d.Local().Rank != r.Me() {
					t.Error("Local wrong")
				}
				r.Barrier()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistObjectMultipleInstancesMatchByOrder(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 3, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			a := gupcxx.NewDistObject(r, 10+r.Me())
			b := gupcxx.NewDistObject(r, 100+r.Me())
			r.Barrier()
			next := (r.Me() + 1) % r.N()
			if got := a.Fetch(next).Wait(); got != 10+next {
				t.Errorf("a.Fetch = %d", got)
			}
			if got := b.Fetch(next).Wait(); got != 100+next {
				t.Errorf("b.Fetch = %d", got)
			}
			r.Barrier() // all first-round fetches done before mutation
			b.SetLocal(999)
			r.Barrier()
			if got := a.Fetch(next).Wait(); got != 10+next {
				t.Errorf("a.Fetch after SetLocal = %d", got)
			}
			if got := b.Fetch(next).Wait(); got != 999 {
				t.Errorf("b.Fetch after SetLocal = %d", got)
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThenFChaining(t *testing.T) {
	// The §II chaining example: rget → then(callback initiating rput) →
	// wait on the chained future.
	for _, ver := range []gupcxx.Version{gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 14},
			func(r *gupcxx.Rank) {
				p := gupcxx.New[int64](r)
				*p.Local(r) = int64(r.Me() * 10)
				ptrs := gupcxx.ExchangePtr(r, p)
				r.Barrier()
				if r.Me() == 0 {
					tgt := ptrs[1]
					done := gupcxx.Rget(r, tgt).ThenF(func(val int64) gupcxx.Future {
						return gupcxx.Rput(r, val+1, tgt).Op
					})
					done.Wait()
					if got := gupcxx.Rget(r, tgt).Wait(); got != 11 {
						t.Errorf("%s: chained value = %d", ver.Name, got)
					}
				}
				r.Barrier()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTeamsAcrossNodes: team collectives work over the SIM conduit, where
// members span simulated nodes (tokens are wire messages).
func TestTeamsAcrossNodes(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 6, Conduit: gupcxx.SIM, RanksPerNode: 2, SegmentBytes: 1 << 12}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		// Teams by node parity: members on different nodes.
		sub := r.WorldTeam().Split(r.Me()%2, r.Me())
		sub.Barrier()
		sum := sub.SumU64(uint64(r.Me()))
		want := uint64(0)
		for i := r.Me() % 2; i < 6; i += 2 {
			want += uint64(i)
		}
		if sum != want {
			t.Errorf("rank %d: team sum = %d, want %d", r.Me(), sum, want)
		}
		if v := sub.BroadcastU64(0, 7); v != 7 {
			t.Errorf("bcast = %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesOverUDP: world collectives ride datagrams on the UDP
// conduit.
func TestCollectivesOverUDP(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		for i := 0; i < 5; i++ {
			r.Barrier()
			if s := r.SumU64(1); s != uint64(r.N()) {
				t.Errorf("sum = %d", s)
			}
			data := r.BroadcastBytes(i%r.N(), []byte("udp payload"))
			if string(data) != "udp payload" {
				t.Errorf("bcast bytes %q", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
