package gupcxx

import (
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"time"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
	"gupcxx/internal/obs"
)

// Operations-plane re-exports: the event bus types and the event kinds a
// running world publishes. Subscribe with World.SubscribeEvents; each
// subscription owns a bounded ring that sheds its oldest events (counted
// in Dropped) if the subscriber stalls — publishers never block on a slow
// consumer.
type (
	// RuntimeEvent is one substrate health transition: liveness changes,
	// backpressure edges, congestion-window moves, retransmission
	// exhaustion, deadline expiry.
	RuntimeEvent = obs.Event
	// RuntimeEventKind discriminates RuntimeEvent payloads.
	RuntimeEventKind = obs.EventKind
	// EventBus is the world's bounded non-blocking event bus.
	EventBus = obs.Bus
	// EventSubscription is one subscriber's drainable view of the bus.
	EventSubscription = obs.Subscription
)

// The event kinds; see internal/obs for per-kind payload conventions.
const (
	EvPeerSuspect         = obs.EvPeerSuspect
	EvPeerDown            = obs.EvPeerDown
	EvPeerRecovered       = obs.EvPeerRecovered
	EvBackpressureOn      = obs.EvBackpressureOn
	EvBackpressureOff     = obs.EvBackpressureOff
	EvWindowShrink        = obs.EvWindowShrink
	EvWindowGrow          = obs.EvWindowGrow
	EvRetransmitExhausted = obs.EvRetransmitExhausted
	EvDeadlineExpired     = obs.EvDeadlineExpired
	EvInMemFallback       = obs.EvInMemFallback
	EvPeerReadmitted      = obs.EvPeerReadmitted
	EvStaleIncarnation    = obs.EvStaleIncarnation
)

// debugRecentCap bounds the world-owned recent-events ring surfaced in
// the /debug/gupcxx snapshot.
const debugRecentCap = 256

// Events exposes the world's event bus (always present; publishing to it
// costs nothing measurable while nobody subscribes).
func (w *World) Events() *EventBus { return w.bus }

// SubscribeEvents attaches a new subscription to the world's event bus.
// Drain it with Poll from any goroutine and Close it when done. The
// subscription survives until Close — a World.Close does not detach it,
// it only stops the sources.
func (w *World) SubscribeEvents() *EventSubscription { return w.bus.Subscribe() }

// MetricsAddr reports the observability listener's bound address (useful
// with a :0 port in Config.MetricsAddr), or "" when the listener is off.
func (w *World) MetricsAddr() string {
	if w.obsSrv == nil {
		return ""
	}
	return w.obsSrv.Addr()
}

// MetricsHandler returns the observability HTTP handler (/metrics,
// /debug/gupcxx) without requiring a bound listener, so tests and
// embedders can mount it on their own server.
func (w *World) MetricsHandler() http.Handler {
	return obs.Handler(w.writeMetrics, w.debugSnapshot)
}

// PhaseSampler returns a phase hook that feeds the world's per-family ×
// per-phase latency histograms. Install it per rank with SetPhaseHook
// (before Run): sampling is opt-in because a hooked pipeline reads the
// clock per phase transition; the hook itself is allocation-free.
func (w *World) PhaseSampler() core.PhaseHook {
	return func(k OpKind, p Phase, elapsedNanos int64) {
		w.hists.Observe(int(k), int(p), elapsedNanos)
	}
}

// EnablePhaseSampling installs PhaseSampler on every rank. Call before
// Run; the engines' hook fields are owned by the rank goroutines once
// they start.
func (w *World) EnablePhaseSampling() {
	hook := w.PhaseSampler()
	for _, r := range w.ranks {
		if r == nil {
			continue
		}
		r.SetPhaseHook(hook)
	}
}

// LatencyHist exposes the (family, phase) latency histogram filled by
// PhaseSampler, or nil out of range. Counts accumulate only while the
// sampler hook is installed on at least one rank.
func (w *World) LatencyHist(k OpKind, p Phase) *obs.Hist {
	return w.hists.At(int(k), int(p))
}

// startObsServer brings up the opt-in export surface: the world-owned
// recent-events subscription, the rate sampler, and the HTTP listener.
// A bind failure aborts world construction (NewWorld).
func (w *World) startObsServer(addr string) error {
	w.evsub = w.bus.Subscribe()
	w.sampler = obs.NewSampler(time.Second, w.collectCounters)
	srv, err := obs.NewServer(addr, w.writeMetrics, w.debugSnapshot)
	if err != nil {
		w.sampler.Close()
		w.evsub.Close()
		w.sampler, w.evsub = nil, nil
		return err
	}
	w.obsSrv = srv
	return nil
}

// closeObs tears the export surface down before the domain stops:
// listener first (no scrapes against a dying world), then the sampler
// goroutine, then the internal subscription. Nil-safe and idempotent.
func (w *World) closeObs() {
	if w.obsSrv != nil {
		w.obsSrv.Close()
	}
	if w.sampler != nil {
		w.sampler.Close()
	}
	if w.evsub != nil {
		w.evsub.Close()
	}
}

// mirrorOps sums every rank's mirrored phase matrix. Race-safe: the
// mirrors are all-atomic shadows flushed by the rank goroutines.
func (w *World) mirrorOps() core.OpStats {
	var total core.OpStats
	for _, m := range w.mirrors {
		ops := m.Ops()
		total.Add(&ops)
	}
	return total
}

// writeMetrics renders one Prometheus text-format scrape. Everything read
// here is atomic or mirror-backed, so scraping a live world is safe; op
// counters lag the hot path by at most one mirror flush interval.
func (w *World) writeMetrics(out io.Writer) {
	p := obs.NewPromWriter(out)
	ranks := len(w.ranks)

	p.Meta("gupcxx_ranks", "number of SPMD ranks in the world", "gauge")
	p.Int("gupcxx_ranks", "", int64(ranks))

	ops := w.mirrorOps()
	p.Meta("gupcxx_ops_total", "op pipeline phase transitions by operation family", "counter")
	for k := OpKind(0); k < core.NumOpKinds; k++ {
		for ph := Phase(0); ph < core.NumPhases; ph++ {
			p.Int("gupcxx_ops_total",
				`family="`+k.String()+`",phase="`+ph.String()+`"`, ops.Of(k, ph))
		}
	}

	p.Meta("gupcxx_engine_total", "completion-machinery counters summed over ranks", "counter")
	for i := 0; i < core.NumEngineStats; i++ {
		var total int64
		for _, m := range w.mirrors {
			total += m.EngineStat(i)
		}
		p.Int("gupcxx_engine_total", `counter="`+core.EngineStatNames[i]+`"`, total)
	}

	p.Meta("gupcxx_substrate_total", "substrate wire and queue counters, domain-wide", "counter")
	for _, c := range substrateCounters(w.dom.Stats()) {
		p.Int("gupcxx_substrate_total", `counter="`+c.Name+`"`, c.Value)
	}

	p.Meta("gupcxx_events_published_total", "events published on the operations-plane bus", "counter")
	p.Int("gupcxx_events_published_total", "", w.bus.Published())
	p.Meta("gupcxx_events_dropped_total", "events shed by stalled bus subscribers", "counter")
	p.Int("gupcxx_events_dropped_total", "", w.bus.Dropped())

	if w.dom.Config().Conduit == UDP && ranks > 1 {
		p.Meta("gupcxx_peer_state", "liveness view of peer from rank: 0 alive, 1 suspect, 2 down", "gauge")
		p.Meta("gupcxx_flow_srtt_seconds", "smoothed RTT of the rank->peer send stream", "gauge")
		p.Meta("gupcxx_flow_window", "adaptive congestion window, datagrams", "gauge")
		p.Meta("gupcxx_flow_inflight", "unacknowledged datagrams in flight", "gauge")
		p.Meta("gupcxx_flow_inflight_bytes", "bytes retained in the retransmission queue", "gauge")
		p.Meta("gupcxx_flow_reorder_bytes", "bytes parked out-of-order on the receive side", "gauge")
		for local := 0; local < ranks; local++ {
			for peer := 0; peer < ranks; peer++ {
				if peer == local {
					continue
				}
				labels := `rank="` + strconv.Itoa(local) + `",peer="` + strconv.Itoa(peer) + `"`
				p.Int("gupcxx_peer_state", labels, peerStateValue(w.dom.LivenessState(local, peer)))
				fs := w.dom.FlowState(local, peer)
				p.Sample("gupcxx_flow_srtt_seconds", labels, fs.SRTT.Seconds())
				p.Int("gupcxx_flow_window", labels, int64(fs.Window))
				p.Int("gupcxx_flow_inflight", labels, int64(fs.InFlight))
				p.Int("gupcxx_flow_inflight_bytes", labels, int64(fs.InFlightBytes))
				p.Int("gupcxx_flow_reorder_bytes", labels, int64(fs.ReorderBytes))
			}
		}
	}

	for k := OpKind(0); k < core.NumOpKinds; k++ {
		for ph := Phase(0); ph < core.NumPhases; ph++ {
			h := w.hists.At(int(k), int(ph))
			if h == nil || h.Count() == 0 {
				continue
			}
			p.Meta("gupcxx_op_phase_latency_seconds",
				"sampled op latency from initiation to the given phase", "histogram")
			p.Histogram("gupcxx_op_phase_latency_seconds",
				`family="`+k.String()+`",phase="`+ph.String()+`"`, h)
		}
	}

	if w.sampler != nil {
		rates := w.sampler.Rates()
		if len(rates) > 0 {
			p.Meta("gupcxx_rate_per_second", "per-second rates delta-sampled from the counters", "gauge")
			for _, r := range rates {
				p.Sample("gupcxx_rate_per_second", `counter="`+r.Name+`"`, r.PerSec)
			}
		}
	}
}

// peerStateValue maps a LivenessState label to its gauge encoding.
func peerStateValue(s string) int64 {
	switch s {
	case "suspect":
		return 1
	case "down":
		return 2
	default:
		return 0
	}
}

// debugSnapshot assembles the /debug/gupcxx JSON document: identity,
// counters, the liveness matrix, per-pair flow state, recent events, and
// sampled rates. Same race-safety story as writeMetrics.
func (w *World) debugSnapshot() any {
	ranks := len(w.ranks)
	ops := w.mirrorOps()
	opsDoc := map[string]map[string]int64{}
	for k := OpKind(0); k < core.NumOpKinds; k++ {
		row := map[string]int64{}
		for ph := Phase(0); ph < core.NumPhases; ph++ {
			row[ph.String()] = ops.Of(k, ph)
		}
		opsDoc[k.String()] = row
	}
	engDoc := map[string]int64{}
	for i := 0; i < core.NumEngineStats; i++ {
		var total int64
		for _, m := range w.mirrors {
			total += m.EngineStat(i)
		}
		engDoc[core.EngineStatNames[i]] = total
	}
	subDoc := map[string]int64{}
	for _, c := range substrateCounters(w.dom.Stats()) {
		subDoc[c.Name] = c.Value
	}

	liveness := make([][]string, ranks)
	for local := 0; local < ranks; local++ {
		liveness[local] = make([]string, ranks)
		for peer := 0; peer < ranks; peer++ {
			liveness[local][peer] = w.dom.LivenessState(local, peer)
		}
	}

	type flowRow struct {
		Rank          int   `json:"rank"`
		Peer          int   `json:"peer"`
		SRTTNanos     int64 `json:"srtt_ns"`
		RTONanos      int64 `json:"rto_ns"`
		Window        int   `json:"window"`
		InFlight      int   `json:"in_flight"`
		InFlightBytes int   `json:"in_flight_bytes"`
		ReorderBytes  int   `json:"reorder_bytes"`
		ReorderBudget int   `json:"reorder_budget"`
	}
	var flows []flowRow
	if w.dom.Config().Conduit == UDP {
		for local := 0; local < ranks; local++ {
			for peer := 0; peer < ranks; peer++ {
				if peer == local {
					continue
				}
				fs := w.dom.FlowState(local, peer)
				flows = append(flows, flowRow{
					Rank: local, Peer: peer,
					SRTTNanos: int64(fs.SRTT), RTONanos: int64(fs.RTO),
					Window: fs.Window, InFlight: fs.InFlight,
					InFlightBytes: fs.InFlightBytes,
					ReorderBytes:  fs.ReorderBytes,
					ReorderBudget: fs.ReorderBudget,
				})
			}
		}
	}

	type recentEvent struct {
		Kind      string `json:"kind"`
		TimeNanos int64  `json:"time_ns"`
		Rank      int32  `json:"rank"`
		Peer      int32  `json:"peer"`
		A         int64  `json:"a"`
		B         int64  `json:"b"`
	}
	var recent []recentEvent
	for _, ev := range w.recentEvents() {
		recent = append(recent, recentEvent{
			Kind: ev.Kind.String(), TimeNanos: ev.Time,
			Rank: ev.Rank, Peer: ev.Peer, A: ev.A, B: ev.B,
		})
	}

	ratesDoc := map[string]float64{}
	if w.sampler != nil {
		for _, r := range w.sampler.Rates() {
			ratesDoc[r.Name] = r.PerSec
		}
	}

	return map[string]any{
		"conduit":   w.dom.Config().Conduit.String(),
		"ranks":     ranks,
		"version":   w.ver.Name,
		"ops":       opsDoc,
		"engine":    engDoc,
		"substrate": subDoc,
		"liveness":  liveness,
		"flows":     flows,
		"events": map[string]any{
			"published": w.bus.Published(),
			"dropped":   w.bus.Dropped(),
			"recent":    recent,
		},
		"rates": ratesDoc,
	}
}

// recentEvents drains the world-owned subscription into the bounded
// recent ring and returns a copy of its tail. Empty when the export
// surface is off (no internal subscription exists then).
func (w *World) recentEvents() []RuntimeEvent {
	w.evmu.Lock()
	defer w.evmu.Unlock()
	if w.evsub == nil {
		return nil
	}
	w.recent = w.evsub.Poll(w.recent)
	if n := len(w.recent); n > debugRecentCap {
		copy(w.recent, w.recent[n-debugRecentCap:])
		w.recent = w.recent[:debugRecentCap]
	}
	out := make([]RuntimeEvent, len(w.recent))
	copy(out, w.recent)
	return out
}

// collectCounters feeds the rate sampler: every substrate counter plus
// per-family initiation counts and the bus totals, all readable from the
// sampler's goroutine.
func (w *World) collectCounters() []obs.Counter {
	cs := substrateCounters(w.dom.Stats())
	ops := w.mirrorOps()
	for k := OpKind(0); k < core.NumOpKinds; k++ {
		cs = append(cs, obs.Counter{
			Name:  "ops_" + k.String() + "_initiated",
			Value: ops.Of(k, PhaseInitiated),
		})
	}
	cs = append(cs, obs.Counter{Name: "events_published", Value: w.bus.Published()})
	return cs
}

// substrateCounters flattens a gasnet.Stats snapshot into named counters
// via reflection, so new substrate counters surface in /metrics without
// another hand-written enumeration to keep in sync.
func substrateCounters(s gasnet.Stats) []obs.Counter {
	v := reflect.ValueOf(s)
	t := v.Type()
	cs := make([]obs.Counter, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int64 {
			continue
		}
		cs = append(cs, obs.Counter{Name: snakeCase(t.Field(i).Name), Value: v.Field(i).Int()})
	}
	return cs
}

// snakeCase converts a Go exported identifier to snake_case, keeping
// acronym runs intact: RTOExpirations -> rto_expirations, PoolHits ->
// pool_hits, SendmmsgCalls -> sendmmsg_calls.
func snakeCase(s string) string {
	rs := []rune(s)
	var b strings.Builder
	b.Grow(len(rs) + 4)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				prevLower := rs[i-1] >= 'a' && rs[i-1] <= 'z' || rs[i-1] >= '0' && rs[i-1] <= '9'
				acronymEnd := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z' &&
					rs[i-1] >= 'A' && rs[i-1] <= 'Z'
				if prevLower || acronymEnd {
					b.WriteByte('_')
				}
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
