package gupcxx_test

import (
	"strings"
	"testing"

	"gupcxx"
	"gupcxx/internal/serial"
)

func TestRPCWireRoundTrip(t *testing.T) {
	// On the UDP conduit the request and reply genuinely cross the
	// kernel; on PSHM/SIM the same code path uses in-memory delivery.
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM, gupcxx.UDP} {
		w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 3, Conduit: conduit, SegmentBytes: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
			e := serial.NewEncoder(nil)
			e.PutU32(uint32(r.Me()))
			e.PutBytes(args)
			return append([]byte(nil), e.Bytes()...)
		})
		sum := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
			d := serial.NewDecoder(args)
			a, b := d.U64(), d.U64()
			e := serial.NewEncoder(nil)
			e.PutU64(a + b)
			return append([]byte(nil), e.Bytes()...)
		})
		err = w.Run(func(r *gupcxx.Rank) {
			target := (r.Me() + 1) % r.N()
			reply := gupcxx.RPCWire(r, target, echo, []byte("ping")).Wait()
			d := serial.NewDecoder(reply)
			if who := d.U32(); int(who) != target {
				t.Errorf("%v: echo from %d, want %d", conduit, who, target)
			}
			if string(d.Bytes()) != "ping" {
				t.Errorf("%v: payload corrupted", conduit)
			}

			e := serial.NewEncoder(nil)
			e.PutU64(40)
			e.PutU64(2)
			reply = gupcxx.RPCWire(r, target, sum, e.Bytes()).Wait()
			if got := serial.NewDecoder(reply).U64(); got != 42 {
				t.Errorf("%v: sum = %d", conduit, got)
			}
			r.Barrier()
		})
		w.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRPCWireSelfAndConcurrent(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	bump := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append(args, byte(r.Me()))
	})
	err = w.Run(func(r *gupcxx.Rank) {
		// Many outstanding calls at once (exercises cookie recycling).
		var futs []gupcxx.FutureV[[]byte]
		for i := 0; i < 50; i++ {
			futs = append(futs, gupcxx.RPCWire(r, i%r.N(), bump, []byte{byte(i)}))
		}
		for i, f := range futs {
			got := f.Wait()
			if len(got) != 2 || got[0] != byte(i) || got[1] != byte(i%r.N()) {
				t.Errorf("call %d: reply %v", i, got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRPCWireUnregisteredFails(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		_, werr := gupcxx.RPCWire(r, 0, gupcxx.RPCHandlerID(99), nil).WaitErr()
		if werr == nil || !strings.Contains(werr.Error(), "unregistered") {
			t.Errorf("unregistered handler id should fail the future, got %v", werr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
