package gupcxx_test

// Continuation-completion (OpContinue) contract: inline firing for
// synchronous completions, ack-time ordered firing on the progress
// goroutine for asynchronous ones, panic containment that keeps the
// progress loop alive, failure delivery as a value, and the
// zero-allocation steady state — the cell-free half of this library's
// completion story (see docs/TUTORIAL.md, "Continuations vs futures").

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gupcxx"
)

// TestContinuationSyncEager: a continuation on a synchronously-completed
// (on-node) operation fires inline, before initiation returns — no future
// cell is produced, no progress call is needed.
func TestContinuationSyncEager(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			fired := false
			gotErr := errors.New("callback never ran")
			res := gupcxx.Rput(r, uint64(7), tgts[1],
				gupcxx.OpContinue(func(err error) { fired, gotErr = true, err }))
			if !fired {
				t.Error("continuation did not fire inline on a synchronous put")
			}
			if gotErr != nil {
				t.Errorf("continuation got err %v, want nil", gotErr)
			}
			if res.Op.Valid() {
				t.Error("OpContinue produced a future; the form is cell-free")
			}
			if n := r.OpStats().Engine.ContinuationsRun; n < 1 {
				t.Errorf("ContinuationsRun = %d, want >= 1", n)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContinuationAsyncOrder: asynchronous continuations fire in
// acknowledgment order, on the initiating rank's progress goroutine. The
// recording slice is deliberately unsynchronized — under -race this also
// proves the callbacks never run concurrently with the spinning rank.
func TestContinuationAsyncOrder(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, RanksPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			const n = 32
			var order []int
			for i := 0; i < n; i++ {
				i := i
				gupcxx.Rput(r, uint64(i), tgts[1],
					gupcxx.OpContinue(func(err error) {
						if err != nil {
							t.Errorf("put %d failed: %v", i, err)
						}
						order = append(order, i)
					}))
			}
			deadline := time.Now().Add(5 * time.Second)
			for len(order) < n && time.Now().Before(deadline) {
				if r.Progress() == 0 {
					runtime.Gosched()
				}
			}
			if len(order) != n {
				t.Fatalf("%d of %d continuations fired", len(order), n)
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("ack order broken at %d: got %d (full order %v)", i, v, order)
				}
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContinuationPanicContained: a panicking continuation must not
// unwind the progress loop. The panic is counted, co-registered sinks
// resolve with a *ContinuationError, and the engine keeps completing
// later operations.
func TestContinuationPanicContained(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, RanksPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			res := gupcxx.Rput(r, uint64(1), tgts[1],
				gupcxx.OpContinue(func(error) { panic("continuation boom") }),
				gupcxx.OpFuture())
			werr := res.Op.WaitErr()
			var ce *gupcxx.ContinuationError
			if !errors.As(werr, &ce) {
				t.Fatalf("co-registered future resolved as %v, want *ContinuationError", werr)
			}
			if ce.Rank != 0 || !strings.Contains(ce.Msg, "continuation boom") {
				t.Errorf("ContinuationError = {Rank: %d, Msg: %q}", ce.Rank, ce.Msg)
			}
			st := r.OpStats().Engine
			if st.ContinuationPanics != 1 {
				t.Errorf("ContinuationPanics = %d, want 1", st.ContinuationPanics)
			}
			// The progress loop survived: later operations still complete,
			// through both forms.
			if werr := gupcxx.Rput(r, uint64(2), tgts[1]).Op.WaitErr(); werr != nil {
				t.Errorf("put after contained panic failed: %v", werr)
			}
			fired := false
			gupcxx.Rput(r, uint64(3), tgts[1],
				gupcxx.OpContinue(func(error) { fired = true }))
			deadline := time.Now().Add(5 * time.Second)
			for !fired && time.Now().Before(deadline) {
				if r.Progress() == 0 {
					runtime.Gosched()
				}
			}
			if !fired {
				t.Error("continuation after contained panic never fired")
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContinuationEagerPanic: on the synchronous path the operation has
// already succeeded when the continuation runs, so a panic is contained
// and counted but books no failure — and initiation returns normally.
func TestContinuationEagerPanic(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			gupcxx.Rput(r, uint64(1), tgts[1],
				gupcxx.OpContinue(func(error) { panic("eager boom") }))
			st := r.OpStats()
			if st.Engine.ContinuationPanics != 1 {
				t.Errorf("ContinuationPanics = %d, want 1", st.Engine.ContinuationPanics)
			}
			// The put itself succeeded: no failure was booked.
			if st.Engine.OpsFailed != 0 {
				t.Errorf("OpsFailed = %d after an eager continuation panic, want 0", st.Engine.OpsFailed)
			}
			if got := gupcxx.Rget(r, tgts[1]).Wait(); got != 1 {
				t.Errorf("target = %d after put, want 1", got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContinuationDeadlineFailure: failure reaches a continuation as a
// value, at the moment the outcome is known — here, deadline expiry far
// ahead of the slow wire's acknowledgment.
func TestContinuationDeadlineFailure(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, SimLatency: 200 * time.Millisecond,
		SegmentBytes: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		ptr := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, ptr)
		dst := ptrs[(r.Me()+1)%r.N()]
		var gotErr error
		fired := false
		gupcxx.Rput(r, int64(7), dst,
			gupcxx.OpContinue(func(err error) { fired, gotErr = true, err }),
			gupcxx.OpDeadline(5*time.Millisecond))
		deadline := time.Now().Add(5 * time.Second)
		for !fired && time.Now().Before(deadline) {
			if r.Progress() == 0 {
				runtime.Gosched()
			}
		}
		if !fired {
			t.Fatal("continuation never fired on deadline expiry")
		}
		if !errors.Is(gotErr, gupcxx.ErrDeadlineExceeded) {
			t.Errorf("continuation got %v, want ErrDeadlineExceeded", gotErr)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRPCWireContinue: the cell-free wire-RPC form delivers the reply
// bytes (zero-copy, call-duration contract), routes remote panics back as
// *RemoteError values, and fails unregistered handlers inline.
func TestRPCWireContinue(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte {
		return append([]byte("re:"), args...)
	})
	boom := w.RegisterRPC(func(*gupcxx.Rank, []byte) []byte { panic("wire boom") })
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 0 {
			wait := func(done *bool, what string) {
				deadline := time.Now().Add(10 * time.Second)
				for !*done && time.Now().Before(deadline) {
					if r.Progress() == 0 {
						runtime.Gosched()
					}
				}
				if !*done {
					t.Fatalf("%s: continuation never fired", what)
				}
			}

			var reply string
			var gotErr error
			done := false
			gupcxx.RPCWireContinue(r, 1, echo, []byte("ping"), func(rep []byte, err error) {
				// The reply aliases a pooled buffer, valid only for this
				// call: copy what outlives it.
				reply, gotErr, done = string(rep), err, true
			})
			wait(&done, "echo")
			if gotErr != nil || reply != "re:ping" {
				t.Errorf("echo continuation got (%q, %v), want (\"re:ping\", nil)", reply, gotErr)
			}

			done = false
			var panicReply []byte
			gupcxx.RPCWireContinue(r, 1, boom, nil, func(rep []byte, err error) {
				panicReply, gotErr, done = rep, err, true
			})
			wait(&done, "panic")
			var re *gupcxx.RemoteError
			if !errors.As(gotErr, &re) || re.Rank != 1 || !strings.Contains(re.Msg, "wire boom") {
				t.Errorf("panic continuation got err %v, want *RemoteError from rank 1", gotErr)
			}
			if panicReply != nil {
				t.Errorf("failed call delivered reply %q, want nil", panicReply)
			}

			// Unregistered handler: the failure is known at initiation, so
			// the continuation runs inline.
			done = false
			gupcxx.RPCWireContinue(r, 0, gupcxx.RPCHandlerID(99), nil, func(rep []byte, err error) {
				gotErr, done = err, true
			})
			if !done {
				t.Fatal("unregistered-handler continuation did not fire inline")
			}
			if gotErr == nil || !strings.Contains(gotErr.Error(), "unregistered") {
				t.Errorf("unregistered handler resolved as %v", gotErr)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContinuationAllocationFree pins the tentpole allocation contract:
// with a prebuilt completion set, a steady-state asynchronous put or
// bulk get completes through a continuation with zero allocations per
// operation — the future form's one irreducible cell is gone — and the
// cell-free wire RPC stays within its two-allocation budget.
func TestContinuationAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, Version: gupcxx.Eager2021_3_6,
		SegmentBytes: 1 << 14, RanksPerNode: 1,
		SimLatency: time.Nanosecond, // isolate the CPU path, not wire time
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte { return args })
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			// Warm the engine freelists and the substrate's arenas.
			for i := 0; i < 64; i++ {
				gupcxx.Rput(r, uint64(i), tgts[1]).Wait()
			}
			// The completion sets and callbacks live outside the measured
			// closures: the continuation form's contract is that the
			// per-operation path allocates nothing, not that building a
			// fresh closure per call is free.
			fired, issued := 0, 0
			putCx := []gupcxx.Cx{gupcxx.OpContinue(func(err error) {
				if err != nil {
					t.Errorf("put failed: %v", err)
				}
				fired++
			})}
			var buf [1]uint64
			getCx := []gupcxx.Cx{gupcxx.OpContinue(func(err error) {
				if err != nil {
					t.Errorf("get failed: %v", err)
				}
				fired++
			})}
			wireDone := 0
			wireCont := func(_ []byte, err error) {
				if err != nil {
					t.Errorf("wire RPC failed: %v", err)
				}
				wireDone++
			}
			args := []byte("payload")

			cases := []struct {
				name  string
				limit float64
				op    func()
			}{
				{"put-continue", 0, func() {
					issued++
					gupcxx.Rput(r, 1, tgts[1], putCx...)
					for fired < issued {
						if r.Progress() == 0 {
							runtime.Gosched()
						}
					}
				}},
				{"getbulk-continue", 0, func() {
					issued++
					gupcxx.RgetBulk(r, tgts[1], buf[:], getCx...)
					for fired < issued {
						if r.Progress() == 0 {
							runtime.Gosched()
						}
					}
				}},
				{"rpcwire-continue", 2, func() {
					wireDone--
					gupcxx.RPCWireContinue(r, 1, echo, args, wireCont)
					for wireDone < 0 {
						if r.Progress() == 0 {
							runtime.Gosched()
						}
					}
				}},
			}
			for _, c := range cases {
				// One untimed round warms the op family's own pools.
				c.op()
				if avg := testing.AllocsPerRun(500, c.op); avg > c.limit {
					t.Errorf("steady-state %s allocates %.2f objects/op, want <= %v",
						c.name, avg, c.limit)
				}
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRPCWireContinueArgsLifetime documents the call-duration reply
// contract the hard way: the bytes observed inside the callback are the
// handler's, and retaining them requires a copy (here, fmt.Sprintf's).
func TestRPCWireContinueArgsLifetime(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sum := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte {
		var s byte
		for _, b := range args {
			s += b
		}
		return []byte{s}
	})
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 0 {
			var got string
			done := false
			gupcxx.RPCWireContinue(r, 1, sum, []byte{1, 2, 3}, func(rep []byte, err error) {
				got, done = fmt.Sprintf("%v/%v", rep, err), true
			})
			deadline := time.Now().Add(10 * time.Second)
			for !done && time.Now().Before(deadline) {
				if r.Progress() == 0 {
					runtime.Gosched()
				}
			}
			if !done || got != "[6]/<nil>" {
				t.Errorf("sum continuation observed %q, want \"[6]/<nil>\"", got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
