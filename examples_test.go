package gupcxx_test

// Integration test for the example programs: each one is a complete,
// self-verifying application (they exit non-zero on any check failure),
// so running them end-to-end doubles as a system test of the public API.
// Skipped in -short mode (they compile and run real workloads).

import (
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run real workloads")
	}
	for _, ex := range []string{"quickstart", "histogram", "stencil", "samplesort", "dht"} {
		t.Run(ex, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+ex)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
		})
	}
}
