package gupcxx_test

import (
	"sync/atomic"
	"testing"

	"gupcxx"
	"gupcxx/internal/gasnet"
)

func TestBarrierOrdering(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.SMP, gupcxx.PSHM, gupcxx.SIM} {
		for _, ranks := range []int{1, 2, 5, 8} {
			cfg := gupcxx.Config{Ranks: ranks, Conduit: conduit, RanksPerNode: 3, SegmentBytes: 1 << 12}
			var phase atomic.Int64
			err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
				for round := int64(1); round <= 5; round++ {
					phase.Add(1)
					r.Barrier()
					// After the barrier every rank must have bumped phase.
					if got := phase.Load(); got < round*int64(ranks) {
						t.Errorf("%v/%d: phase %d < %d after barrier", conduit, ranks, got, round*int64(ranks))
					}
					r.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 5, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		// Word broadcast from each root in turn.
		for root := 0; root < r.N(); root++ {
			got := r.BroadcastU64(root, uint64(1000+root))
			if got != uint64(1000+root) {
				t.Errorf("rank %d: bcast from %d = %d", r.Me(), root, got)
			}
		}
		// Byte broadcast.
		var data []byte
		if r.Me() == 2 {
			data = []byte("payload from two")
		}
		out := r.BroadcastBytes(2, data)
		if string(out) != "payload from two" {
			t.Errorf("rank %d: bytes = %q", r.Me(), out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeAndReduce(t *testing.T) {
	for _, ranks := range []int{1, 2, 7} {
		cfg := gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			vec := r.ExchangeU64(uint64(r.Me() * 10))
			if len(vec) != r.N() {
				t.Fatalf("exchange len %d", len(vec))
			}
			for i, v := range vec {
				if v != uint64(i*10) {
					t.Errorf("vec[%d] = %d", i, v)
				}
			}
			n := uint64(r.N())
			if s := r.SumU64(uint64(r.Me())); s != n*(n-1)/2 {
				t.Errorf("sum = %d", s)
			}
			if m := r.MaxU64(uint64(r.Me())); m != n-1 {
				t.Errorf("max = %d", m)
			}
			if m := r.MinU64(uint64(r.Me() + 5)); m != 5 {
				t.Errorf("min = %d", m)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangePtrRoundTrip(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		*p.Local(r) = int64(r.Me())
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		for i, q := range ptrs {
			if q.Rank() != i {
				t.Errorf("ptr %d has rank %d", i, q.Rank())
			}
			if got := gupcxx.Rget(r, q).Wait(); got != int64(i) {
				t.Errorf("deref ptr %d = %d", i, got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesInterleaved: back-to-back different collectives must not
// cross-match (sequence numbering correctness).
func TestCollectivesInterleaved(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 3, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		for i := 0; i < 10; i++ {
			r.Barrier()
			v := r.BroadcastU64(i%3, uint64(i))
			if v != uint64(i) {
				t.Errorf("iter %d: bcast %d", i, v)
			}
			s := r.SumU64(1)
			if s != uint64(r.N()) {
				t.Errorf("iter %d: sum %d", i, s)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicCaptured(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 0}); err == nil {
		t.Error("0 ranks accepted")
	}
}

// TestExchangeCoalescesOnUDP pins the datagram economics of the
// binomial-tree allgather on the UDP conduit with 8 ranks. The tree's
// interior vertices (2, 4, 6) forward their subtrees inside one send
// burst each, so exactly three coalesced batch datagrams carry eight of
// the contributions; the all-to-all it replaced needed 56 datagrams for
// the gather phase alone.
func TestExchangeCoalescesOnUDP(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 8, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12}
	var captured gasnet.Stats
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		vec := r.ExchangeU64(uint64(100 + r.Me()))
		for i, v := range vec {
			if v != uint64(100+i) {
				t.Errorf("rank %d: vec[%d] = %d", r.Me(), i, v)
			}
		}
		r.Barrier() // every rank's sends are on the wire and counted
		if r.Me() == 0 {
			captured = r.World().Domain().Stats()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if captured.CoalescedBatches != 3 {
		t.Errorf("CoalescedBatches = %d, want 3 (vertices 2, 4, 6)", captured.CoalescedBatches)
	}
	if captured.CoalescedMsgs != 8 {
		t.Errorf("CoalescedMsgs = %d, want 8 (2+4+2 forwarded contributions)", captured.CoalescedMsgs)
	}
	if saved := captured.CoalescedMsgs - captured.CoalescedBatches; saved < 5 {
		t.Errorf("coalescing saved only %d datagrams", saved)
	}
}
