package gupcxx_test

// Shape tests: the paper's qualitative claims, asserted end-to-end with
// deliberately generous thresholds (the quantitative reproduction lives in
// cmd/benchall + EXPERIMENTS.md; these tests exist so a regression that
// destroys an effect — e.g. the eager path starting to allocate — fails
// `go test`). Skipped in -short mode.

import (
	"testing"
	"time"

	"gupcxx"
	"gupcxx/internal/gups"
	"gupcxx/internal/stats"
)

// timePerOp measures the best-of-5 mean time per operation of fn(iter
// count) on rank 0 of a two-rank world.
func timePerOp(t *testing.T, cfg gupcxx.Config, iters int, fn func(r *gupcxx.Rank, tgt gupcxx.GlobalPtr[uint64], n int)) time.Duration {
	t.Helper()
	w, err := gupcxx.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var samples []time.Duration
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, tgts[1], iters/5+1) // warmup
			for s := 0; s < 5; s++ {
				start := time.Now()
				fn(r, tgts[1], iters)
				samples = append(samples, time.Since(start))
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats.Summarize(samples, 3).TopKMean / time.Duration(iters)
}

// minSpeedup is the eager-vs-defer ratio the wall-clock shape tests
// assert. The effect is ~7x in a plain build; race-detector
// instrumentation taxes every memory access on both sides and compresses
// the measured ratio toward 2x on a single-CPU host, so the bar drops
// there — still far above parity, so a destroyed effect keeps failing.
func minSpeedup() float64 {
	if raceEnabled {
		return 1.4
	}
	return 2
}

func putLoop(r *gupcxx.Rank, tgt gupcxx.GlobalPtr[uint64], n int) {
	for i := 0; i < n; i++ {
		gupcxx.Rput(r, uint64(i), tgt).Wait()
	}
}

// TestShapeOnNodeEagerWins: on-node puts under eager must be at least 2×
// faster than deferred (the paper reports ~90%+ op-rate improvements; we
// observe ~7×).
func TestShapeOnNodeEagerWins(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	const iters = 100_000
	base := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	eager, deferred := base, base
	eager.Version = gupcxx.Eager2021_3_6
	deferred.Version = gupcxx.Defer2021_3_6
	te := timePerOp(t, eager, iters, putLoop)
	td := timePerOp(t, deferred, iters, putLoop)
	t.Logf("on-node put: eager %v/op, defer %v/op", te, td)
	if float64(td) < minSpeedup()*float64(te) {
		t.Errorf("eager (%v) not ≥%.1fx faster than defer (%v) on-node", te, minSpeedup(), td)
	}
}

// TestShapeLegacyExtraAllocCosts: 2021.3.0 must be slower than
// 2021.3.6-defer on local RMA (the allocation-elimination optimization).
func TestShapeLegacyExtraAllocCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	const iters = 100_000
	base := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14}
	legacy, deferred := base, base
	legacy.Version = gupcxx.Legacy2021_3_0
	deferred.Version = gupcxx.Defer2021_3_6
	tl := timePerOp(t, legacy, iters, putLoop)
	td := timePerOp(t, deferred, iters, putLoop)
	t.Logf("on-node put: legacy %v/op, defer %v/op", tl, td)
	if tl <= td {
		t.Errorf("legacy (%v) should be slower than 2021.3.6-defer (%v)", tl, td)
	}
}

// TestShapeOffNodeParity: off-node, eager and defer must be within 2× of
// each other (the paper: statistically indistinguishable; our 1-core
// hosts add scheduling noise, hence the loose bound).
func TestShapeOffNodeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	const iters = 5_000
	base := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SimLatency: 1, SegmentBytes: 1 << 14}
	eager, deferred := base, base
	eager.Version = gupcxx.Eager2021_3_6
	deferred.Version = gupcxx.Defer2021_3_6
	te := timePerOp(t, eager, iters, putLoop)
	td := timePerOp(t, deferred, iters, putLoop)
	t.Logf("off-node put: eager %v/op, defer %v/op", te, td)
	if te > 2*td || td > 2*te {
		t.Errorf("off-node parity violated: eager %v vs defer %v", te, td)
	}
}

// TestShapeGUPSFutureConjoining: the headline result — GUPS with
// conjoined futures must speed up by at least 2× under eager (paper:
// 2.4–13.5×).
func TestShapeGUPSFutureConjoining(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	run := func(ver gupcxx.Version) time.Duration {
		w, err := gupcxx.NewWorld(gupcxx.Config{
			Ranks: 4, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 4 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		cfg := gups.Config{LogTableSize: 16, UpdatesPerRank: 1 << 13, Batch: 64}
		var best time.Duration
		err = w.Run(func(r *gupcxx.Rank) {
			b, err := gups.New(r, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < 3; s++ {
				r.Barrier()
				start := time.Now()
				if err := b.Run(gups.RMAFuture); err != nil {
					t.Error(err)
				}
				r.Barrier()
				if r.Me() == 0 {
					d := time.Since(start)
					if best == 0 || d < best {
						best = d
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return best
	}
	te := run(gupcxx.Eager2021_3_6)
	td := run(gupcxx.Defer2021_3_6)
	t.Logf("GUPS rma-futures: eager %v, defer %v (%.1fx)", te, td, float64(td)/float64(te))
	if float64(td) < minSpeedup()*float64(te) {
		t.Errorf("future-conjoining speedup below %.1fx: eager %v, defer %v", minSpeedup(), te, td)
	}
}

// TestShapeEagerAllocationFree: the allocation claim, measured with the
// allocator rather than wall clock: an on-node eager put performs zero
// heap allocations.
func TestShapeEagerAllocationFree(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6, SegmentBytes: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		tgt := gupcxx.New[uint64](r)
		tgts := gupcxx.ExchangePtr(r, tgt)
		r.Barrier()
		if r.Me() == 0 {
			avg := testing.AllocsPerRun(1000, func() {
				gupcxx.Rput(r, 1, tgts[1]).Wait()
			})
			if avg != 0 {
				t.Errorf("eager on-node put allocates %.2f objects/op, want 0", avg)
			}
			avgAmo := testing.AllocsPerRun(1000, func() {
				// Non-fetching atomic — also allocation-free.
				gupcxx.NewAtomicDomain[uint64](r).Add(tgts[1], 1).Wait()
			})
			// One allocation for the AtomicDomain handle itself is
			// created outside the measured path in real code; construct
			// it in-loop here and tolerate exactly that one.
			if avgAmo > 1 {
				t.Errorf("eager non-fetching atomic allocates %.2f objects/op, want ≤ 1", avgAmo)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
