GO ?= go

.PHONY: build test race vet staticcheck bench bench-json test-loss test-fault test-soak bench-reliable bench-pipeline bench-syscall check-bench5 bench-obs check-bench6 test-obs test-multiproc bench-multiproc check-bench7 test-churn test-partition ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 race coverage: the substrate (MPSC inbox, UDP conduit), the
# operations plane (event bus, histograms, export server), plus the
# runtime facade. -p 1 serializes the packages: the root package holds
# wall-clock shape assertions (eager vs defer ratios) that lose their
# margin when another package's stress tests compete for the CPU under
# the race detector.
race:
	$(GO) test -race -p 1 ./internal/gasnet/ ./internal/obs/ .

vet:
	$(GO) vet ./...

# Deep static analysis. Skips gracefully when the tool is not on PATH so
# offline checkouts can still run `make ci`; CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# Substrate fast-path microbenchmarks (ring vs seed mutex queue, wire
# coalescing, collective exchange). The full paper-figure suite lives in
# cmd/benchall.
BENCH_PATTERN = BenchmarkAMInjection|BenchmarkUDPCoalesce
bench:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count 3 ./internal/gasnet/
	$(GO) test -run XXX -bench BenchmarkCollectiveExchange -benchmem -count 3 .

# Re-record the benchmark baseline (BENCH_1.json holds the checked-in one).
bench-json:
	{ $(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count 3 ./internal/gasnet/ ; \
	  $(GO) test -run XXX -bench BenchmarkCollectiveExchange -benchmem -count 3 . ; } \
	| ./scripts/bench2json.sh > BENCH_1.json

# Run the UDP-touching test packages with deterministic fault injection on
# every domain: 25% drop + duplication + reordering from a fixed seed. The
# reliability layer (DESIGN.md §8) must make every test pass regardless.
test-loss:
	GUPCXX_UDP_FAULT="drop=0.25,dup=0.05,reorder=0.10,seed=7" \
		$(GO) test -count 1 ./internal/gasnet/ .

# Failure-path suite under adversarial wire presets (DESIGN.md §10):
# heavy loss, then a duplication/reordering storm. Exercises the liveness
# detector (no false peer-down under loss), retransmit exhaustion,
# deadline expiry, panic containment, and collective abort. Tests that
# arm an explicit FaultConfig keep their deterministic faults; every
# other UDP domain inherits the preset from the environment.
FAULT_TESTS = 'TestPeerKilledMidRun|TestBarrierAbortsOnPeerDeath|TestWireRPCHandlerPanicContained|TestClosureRPCPanicContained|TestOpDeadlineOnSlowWire|TestRPCWireUnregisteredFails|TestRetransmitExhaustionMarksPeerDown|TestHeartbeat'
test-fault:
	GUPCXX_UDP_FAULT="drop=0.40,seed=11" \
		$(GO) test -count 1 -run $(FAULT_TESTS) ./internal/gasnet/ .
	GUPCXX_UDP_FAULT="drop=0.10,dup=0.20,reorder=0.25,seed=23" \
		$(GO) test -count 1 -run $(FAULT_TESTS) ./internal/gasnet/ .

# Thirty seconds of mixed RMA/RPC/collective churn from four ranks over a
# 25%-drop wire with a deliberately starved send window, under the race
# detector. Exercises the flow-control machinery end to end (DESIGN.md
# §11): RTT estimation, AIMD window moves, credit admission, bounded
# backpressure, reorder-budget shedding. Every op must resolve with a
# value or a typed error, and teardown must leave no goroutines behind.
test-soak:
	GUPCXX_SOAK_SECONDS=30 GUPCXX_UDP_FAULT="drop=0.25,seed=7" \
		$(GO) test -count 1 -race -run TestSoakMixedChurn -timeout 10m .

# Reliability-layer overhead: sequenced vs raw datagrams on a clean wire,
# plus recovery cost at 10% drop. BENCH_2.json holds the checked-in record.
bench-reliable:
	$(GO) test -run XXX -bench BenchmarkReliableOverhead -benchmem -count 3 ./internal/gasnet/ \
		| ./scripts/bench2json.sh > BENCH_2.json

# Unified-pipeline op latency/allocs per version (put/get/fetchadd/rpc).
# BENCH_3.json holds the checked-in record; check_bench3.sh fails the
# target if any eager-version row regressed to allocating.
bench-pipeline:
	$(GO) test -run XXX -bench 'BenchmarkOpPipeline$$' -benchmem -count 3 . \
		| ./scripts/bench2json.sh > BENCH_3.json
	./scripts/check_bench3.sh BENCH_3.json

# Same pipeline suite re-recorded after the flow-control work (BENCH_4.json
# is the checked-in record): admission sits on the initiation path, so this
# is the proof it costs nothing on-node — the eager rows must still show
# zero allocations, enforced by the same gate as BENCH_3.
bench-flow:
	$(GO) test -run XXX -bench 'BenchmarkOpPipeline$$' -benchmem -count 3 . \
		| ./scripts/bench2json.sh > BENCH_4.json
	./scripts/check_bench3.sh BENCH_4.json

# Vectorized-datapath record: per-version pipeline rows plus the
# asynchronous completion-form rows (future vs continuation) and the UDP
# coalescing bench with its syscalls-per-burst metrics. BENCH_5.json is
# the checked-in record; check_bench5.sh fails the regeneration if a
# continuation row allocates or an eager row regresses.
bench-syscall:
	{ $(GO) test -run XXX -bench 'BenchmarkOpPipeline$$|BenchmarkOpPipelineAsync$$' -benchmem -count 3 . ; \
	  $(GO) test -run XXX -bench BenchmarkUDPCoalesce -benchmem -count 3 ./internal/gasnet/ ; } \
	| ./scripts/bench2json.sh > BENCH_5.json
	./scripts/check_bench5.sh BENCH_5.json

# Validate the checked-in BENCH_5 record without re-running the benches —
# cheap enough for every CI run; bench-syscall re-records and re-checks.
check-bench5:
	./scripts/check_bench5.sh BENCH_5.json

# Operations-plane overhead record: the eager pipeline baseline next to
# the same families with the metrics plane active (Observed = listener
# bound, nil phase hook; Sampled = latency hook installed on every
# rank). BENCH_6.json is the checked-in record; check_bench6.sh pins
# both new row sets at 0 allocs/op and bounds the nil-observer latency
# overhead against the baseline at 3% geomean.
bench-obs:
	$(GO) test -run XXX -bench 'BenchmarkOpPipeline($$|Observed|Sampled)' -benchmem -count 3 . \
		| ./scripts/bench2json.sh > BENCH_6.json
	./scripts/check_bench6.sh BENCH_6.json

# Validate the checked-in BENCH_6 record without re-running the benches.
check-bench6:
	./scripts/check_bench6.sh BENCH_6.json

# Operations-plane test suite: the bus/histogram/export unit tests plus
# the root integration tests (live scrape, handler mount, lifecycle,
# event drain after Close, observed-pipeline allocation contract).
test-obs:
	$(GO) test ./internal/obs/
	$(GO) test -run 'TestMetrics|TestWorldCloseWithActiveSubscribers|TestOpPipelineObserved|TestEvent' .

# Process-per-rank acceptance: the boot package's rendezvous/launcher
# units, the gptr wire-encoding contract, and the os/exec suites that
# spawn real rank processes over loopback UDP (4-rank smoke world, abrupt
# peer death, launcher fault injection) — all under the race detector.
# Then the real thing: gupcxxrun launching the microbench driver as a
# 4-process world.
test-multiproc:
	$(GO) test -race -count 1 ./internal/boot/
	$(GO) test -race -count 1 -run 'TestGptrWire|FuzzDecodeGptr|TestMultiproc' ./internal/gasnet/ .
	$(GO) build -o bin/gupcxxrun ./cmd/gupcxxrun
	$(GO) build -o bin/microbench ./cmd/microbench
	./bin/gupcxxrun -n 4 -- ./bin/microbench -samples 2 -topk 1 -iters 2000

# Churn suite (DESIGN.md §15): epoch-based peer readmission end to end.
# The in-process units (incarnation gating, stale-datagram drops,
# generation-scoped sweeps, the DisableReadmission escape hatch), the
# boot-layer units (restartable rendezvous, join backoff, RestartRank),
# then the kill/restart soak: a 4-rank process world under 25% injected
# loss where one rank is SIGKILLed and relaunched three times — each
# incarnation must be readmitted by every survivor and the world must
# finish cleanly. All under the race detector.
test-churn:
	$(GO) test -race -count 1 -run 'TestChurn' ./internal/gasnet/
	$(GO) test -race -count 1 -run 'TestSpecJoinWait|TestRendezvousRejoin|TestJoinBackoffDeadline|TestRestartRank' ./internal/boot/
	$(GO) test -race -count 1 -run 'TestMultiprocChurn' -timeout 10m .

# Partition suite (DESIGN.md §16): the scenario engine and
# same-incarnation healing end to end. The in-process units (scenario DSL
# parsing, mid-run fault arming, latency injection, partition→Down→heal,
# asymmetric one-way loss, retransmit-backoff re-arm on heal, the
# DisableHealing kill switch), then the split-brain soak: a 4-rank
# process world cut 2|2 by GUPCXX_UDP_SCENARIO, held apart long past
# DownAfter, and healed — every severed pair must return to Alive under
# the same incarnation with zero readmissions. All under the race
# detector.
test-partition:
	$(GO) test -race -count 1 -run 'TestScenarioParse|TestSetFaultMidRunArming|TestLatencyInjection|TestPartition|TestDisableHealing|TestAsymmetricLoss|TestHealResets' ./internal/gasnet/
	$(GO) test -race -count 1 -run 'TestMultiprocPartition' -timeout 10m .

# Cross-process record: the op-pipeline families on an in-process UDP
# world (wire armed, locality resolves to memory) next to the same
# families crossing a real process boundary over loopback (rank 1 is a
# spawned child). BENCH_7.json is the checked-in record; check_bench7.sh
# pins the in-process eager rows at 0 allocs/op and requires all four
# cross-process families to be present.
bench-multiproc:
	$(GO) test -run XXX -bench 'BenchmarkOpPipelineUDP$$|BenchmarkOpPipelineMultiproc$$' -benchmem . \
		| ./scripts/bench2json.sh > BENCH_7.json
	./scripts/check_bench7.sh BENCH_7.json

# Validate the checked-in BENCH_7 record without re-running the benches.
check-bench7:
	./scripts/check_bench7.sh BENCH_7.json

# Everything CI runs, in CI's order.
ci: build test race vet staticcheck check-bench5 check-bench6 check-bench7 test-obs test-loss test-fault test-soak test-multiproc test-churn test-partition
