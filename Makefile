GO ?= go

.PHONY: build test race vet bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 race coverage: the substrate (MPSC inbox, UDP conduit) plus the
# runtime facade.
race:
	$(GO) test -race ./internal/gasnet/ .

vet:
	$(GO) vet ./...

# Substrate fast-path microbenchmarks (ring vs seed mutex queue, wire
# coalescing, collective exchange). The full paper-figure suite lives in
# cmd/benchall.
BENCH_PATTERN = BenchmarkAMInjection|BenchmarkUDPCoalesce
bench:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count 3 ./internal/gasnet/
	$(GO) test -run XXX -bench BenchmarkCollectiveExchange -benchmem -count 3 .

# Re-record the benchmark baseline (BENCH_1.json holds the checked-in one).
bench-json:
	{ $(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count 3 ./internal/gasnet/ ; \
	  $(GO) test -run XXX -bench BenchmarkCollectiveExchange -benchmem -count 3 . ; } \
	| ./scripts/bench2json.sh > BENCH_1.json
