package gupcxx

import (
	"errors"
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Failure is a value in this runtime, not a control-flow event: an
// asynchronous operation that cannot complete resolves its futures and
// promises with an error instead of hanging or crashing the process.
// Wait() still returns the value (zero on failure) for compatibility;
// callers that care inspect Future.Err / WaitErr, or receive the error
// through their promise.

// Sentinel errors surfaced by the operation pipeline. They originate in
// the internal layers (or here), so errors.Is works across the API
// boundary.
var (
	// ErrPeerUnreachable resolves operations targeting a rank the
	// substrate's liveness detector has declared down (UDP conduit):
	// retransmission exhaustion or heartbeat silence beyond DownAfter.
	ErrPeerUnreachable = gasnet.ErrPeerUnreachable

	// ErrDeadlineExceeded resolves operations whose OpDeadline (or
	// descriptor deadline) elapsed before the substrate acknowledgment.
	// It also matches context.DeadlineExceeded under errors.Is, so
	// stdlib-style timeout classification works unchanged.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded

	// ErrBackpressure resolves operations refused admission because the
	// target rank's send window stayed full: the peer is alive but
	// overloaded. The concrete error is a *BackpressureError carrying the
	// peer rank; match the class with errors.Is(err, ErrBackpressure) and
	// extract the rank with errors.As.
	ErrBackpressure = gasnet.ErrBackpressure

	// ErrBadAddress resolves wire operations the target rank refused
	// because the requested offset or length fell outside its shared
	// segment (or an atomic carried an invalid op code). It is the
	// initiator-side face of the decode-side bounds validation every
	// process-per-rank world applies to untrusted wire input; the target
	// counts the refusal (Stats.BadAddrDrops) and keeps running.
	ErrBadAddress = gasnet.ErrBadAddress
)

// ErrNotWireEncodable resolves operations that would require shipping a
// Go closure to another process: closure RPC (RPC, RPCCall,
// RPCFireAndForget) and remote completions built from closures
// (RemoteRPC, RemoteRPCOn) target ranks outside this address space only
// in wire-encodable form. In a multiproc world such operations fail
// loudly — eagerly, at initiation — instead of silently short-circuiting
// through memory the way a single-process UDP world does (counted there
// as Stats.InMemFallbacks). Use the registered-handler forms (RPCWire,
// RPCWireContinue, RputNotify) instead: their invocations are data,
// not code.
var ErrNotWireEncodable = errors.New(
	"gupcxx: operation carries a closure, which cannot cross process boundaries; use a registered wire handler")

// BackpressureError is the typed form of ErrBackpressure, recording which
// peer's send window was full.
type BackpressureError = gasnet.BackpressureError

// RemoteError reports that a remotely-executed procedure (wire RPC
// handler or shipped closure) panicked on the target rank. The panic is
// recovered there — the target keeps running — and its text travels back
// in the reply frame to resolve the initiator's future.
type RemoteError struct {
	// Rank is the rank on which the procedure panicked.
	Rank int
	// Msg is the serialized panic value.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("gupcxx: remote procedure panicked on rank %d: %s", e.Rank, e.Msg)
}

// ContinuationError reports that an OpContinue callback panicked inside
// the progress engine. The panic is recovered — the progress loop keeps
// running, the panic is counted (core Stats.ContinuationPanics) — and
// any futures or promises composed alongside the continuation resolve
// with this value, the continuation-side mirror of *RemoteError.
type ContinuationError = core.ContinuationError

// contain runs fn, converting a panic into a *RemoteError attributed to
// rank. This is the containment boundary for user code executed from a
// progress engine: the panic must not unwind into the Poll loop.
func contain(rank int, fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &RemoteError{Rank: rank, Msg: fmt.Sprint(p)}
		}
	}()
	fn()
	return nil
}

// rankAbort carries an error out of a blocking protocol that cannot
// return one (collectives, spin-waits): the rank's SPMD function is
// unwound via panic and Run converts the abort into an ordinary error,
// preserving errors.Is/As chains.
type rankAbort struct{ err error }

// abortRank unwinds the current rank with err; recovered by Run.
func abortRank(err error) {
	panic(rankAbort{err: err})
}
