package gupcxx_test

import (
	"testing"

	"gupcxx"
	"gupcxx/internal/gasnet"
	"gupcxx/internal/serial"
)

// lossyFault is the acceptance-criteria fault profile: 25% of datagrams
// dropped, plus duplication and reordering, all from a fixed seed so runs
// are reproducible.
func lossyFault(seed int64) *gupcxx.FaultConfig {
	return &gupcxx.FaultConfig{Seed: seed, Drop: 0.25, Dup: 0.05, Reorder: 0.10}
}

// TestExchangeU64UnderInjectedLoss: the full binomial-tree allgather —
// coalesced bursts, forwarding vertices, barriers — over a wire that
// drops a quarter of everything. The reliability layer must make every
// round converge with correct vectors, visibly retransmitting.
func TestExchangeU64UnderInjectedLoss(t *testing.T) {
	cfg := gupcxx.Config{
		Ranks: 8, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
		Fault: lossyFault(42),
	}
	var captured gasnet.Stats
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		for round := 0; round < 10; round++ {
			vec := r.ExchangeU64(uint64(1000*round + r.Me()))
			for i, v := range vec {
				if v != uint64(1000*round+i) {
					t.Errorf("round %d rank %d: vec[%d] = %d", round, r.Me(), i, v)
				}
			}
		}
		r.Barrier()
		if r.Me() == 0 {
			captured = r.World().Domain().Stats()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if captured.FaultsInjected == 0 {
		t.Error("fault shim injected nothing")
	}
	if captured.Retransmits == 0 {
		t.Error("Retransmits = 0: the exchange cannot have survived 25% drop without recovery")
	}
	t.Logf("faults=%d retransmits=%d dups=%d piggybacked=%d standalone=%d",
		captured.FaultsInjected, captured.Retransmits, captured.DupsDropped,
		captured.AcksPiggybacked, captured.AcksStandalone)
}

// TestRPCWireUnderLoss: request/reply RPCs — two dependent wire crossings
// per call — complete exactly once under drop + dup + reorder.
func TestRPCWireUnderLoss(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 4, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
		Fault: lossyFault(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		e := serial.NewEncoder(nil)
		e.PutU32(uint32(r.Me()))
		e.PutBytes(args)
		return append([]byte(nil), e.Bytes()...)
	})
	err = w.Run(func(r *gupcxx.Rank) {
		for round := 0; round < 5; round++ {
			target := (r.Me() + 1 + round) % r.N()
			reply := gupcxx.RPCWire(r, target, echo, []byte("ping over loss")).Wait()
			d := serial.NewDecoder(reply)
			if who := d.U32(); who != uint32(target) {
				t.Errorf("rank %d round %d: reply from %d, want %d", r.Me(), round, who, target)
			}
			if got := string(d.Bytes()); got != "ping over loss" {
				t.Errorf("rank %d round %d: args %q", r.Me(), round, got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Domain().Stats(); s.Retransmits == 0 {
		t.Error("Retransmits = 0 under 25% drop")
	}
}
