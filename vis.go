package gupcxx

import (
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Vector/Indexed/Strided (VIS) RMA, the analogue of UPC++'s
// rput_strided/rput_irregular family: one logical operation moving a
// non-contiguous set of elements, with a single set of completion
// notifications. The fragments of a co-located transfer all move
// synchronously, so the whole operation is eager-eligible exactly like a
// contiguous one; remote fragments become individual substrate transfers,
// described to the pipeline via OpDesc.Frags — the last acknowledgment
// fires the operation completion.

// Strided2D describes a 2-D regular section: Rows runs of RunLen
// consecutive elements each, with runs starting Stride elements apart.
// (Higher dimensionalities compose from 2-D sections; the paper's
// workloads need at most 2-D.)
type Strided2D struct {
	// Rows is the number of contiguous runs.
	Rows int
	// RunLen is the number of elements per run.
	RunLen int
	// Stride is the element distance between the starts of consecutive
	// runs (≥ RunLen for non-overlapping sections).
	Stride int
}

// validate panics on degenerate sections.
func (s Strided2D) validate() {
	if s.Rows < 0 || s.RunLen < 0 || s.Stride < 0 {
		panic(fmt.Sprintf("gupcxx: negative strided section %+v", s))
	}
}

// Elems returns the number of elements the section covers.
func (s Strided2D) Elems() int { return s.Rows * s.RunLen }

// RputStrided writes src (laid out contiguously, row-major) into the
// strided section anchored at dst: run i lands at dst.Element(i*Stride).
// len(src) must equal sec.Elems(). Completions cover the whole section.
func RputStrided[T any](r *Rank, src []T, dst GlobalPtr[T], sec Strided2D, cxs ...Cx) Result {
	sec.validate()
	if len(src) != sec.Elems() {
		panic(fmt.Sprintf("gupcxx: RputStrided src length %d != section %d", len(src), sec.Elems()))
	}
	cxs = cxsOrDefault(cxs)
	if sec.Elems() == 0 || r.localTo(dst.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpVIS,
			Local: true,
			Move: func() {
				seg := r.w.dom.Segment(int(dst.rank))
				for row := 0; row < sec.Rows && sec.RunLen > 0; row++ {
					run := src[row*sec.RunLen : (row+1)*sec.RunLen]
					seg.CopyIn(dst.Element(row*sec.Stride).off, gasnet.SliceBytes(run))
				}
			},
			ShipRemote: func(rfn func(ctx any)) { r.shipRemote(dst.rank, rfn) },
		}, cxs)
	}
	if r.wireOnly(int(dst.rank)) && core.HasRemote(cxs) {
		return failNotWireEncodable(r, core.OpVIS, int(dst.rank), cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpVIS,
		Frags: sec.Rows,
		// One admission covers the whole fragment fan-out: admission is an
		// overload signal, not a per-frame reservation, and rel.send bounds
		// any residual burst against the peer's window.
		Peer:  int(dst.rank),
		Admit: true,
		Inject: func(rfn func(ctx any), done func(error)) {
			var remoteFn func(*gasnet.Endpoint)
			if rfn != nil {
				// Remote completion fires once, after the last fragment
				// lands. Every fragment targets the same rank, so the
				// counter is only touched by that rank's progress goroutine.
				remaining := sec.Rows
				remoteFn = func(ep *gasnet.Endpoint) {
					remaining--
					if remaining == 0 {
						rfn(ep.Ctx)
					}
				}
			}
			for row := 0; row < sec.Rows; row++ {
				run := src[row*sec.RunLen : (row+1)*sec.RunLen]
				r.ep.PutRemote(int(dst.rank), dst.Element(row*sec.Stride).off,
					gasnet.SliceBytes(run), remoteFn, done)
			}
		},
	}, cxs)
}

// RgetStrided reads the strided section anchored at src into dst
// (contiguous, row-major). len(dst) must equal sec.Elems().
func RgetStrided[T any](r *Rank, src GlobalPtr[T], sec Strided2D, dst []T, cxs ...Cx) Result {
	sec.validate()
	if len(dst) != sec.Elems() {
		panic(fmt.Sprintf("gupcxx: RgetStrided dst length %d != section %d", len(dst), sec.Elems()))
	}
	cxs = cxsOrDefault(cxs)
	rejectRemoteCx(cxs, "RgetStrided")
	if sec.Elems() == 0 || r.localTo(src.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpVIS,
			Local: true,
			Move: func() {
				seg := r.w.dom.Segment(int(src.rank))
				for row := 0; row < sec.Rows && sec.RunLen > 0; row++ {
					run := dst[row*sec.RunLen : (row+1)*sec.RunLen]
					seg.CopyOut(src.Element(row*sec.Stride).off, gasnet.SliceBytes(run))
				}
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpVIS,
		Frags: sec.Rows,
		Peer:  int(src.rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			elemSize := gasnet.SizeOf[T]()
			for row := 0; row < sec.Rows; row++ {
				run := dst[row*sec.RunLen : (row+1)*sec.RunLen]
				r.ep.GetRemote(int(src.rank), src.Element(row*sec.Stride).off,
					sec.RunLen*elemSize, gasnet.SliceBytes(run), done)
			}
		},
	}, cxs)
}

// RputIndexed writes vals[i] to dsts[i] for each i, as one logical
// operation: a single completion set covers all transfers (the
// rput_irregular analogue). Locality is resolved per destination.
func RputIndexed[T any](r *Rank, vals []T, dsts []GlobalPtr[T], cxs ...Cx) Result {
	if len(vals) != len(dsts) {
		panic(fmt.Sprintf("gupcxx: RputIndexed %d values for %d destinations", len(vals), len(dsts)))
	}
	cxs = cxsOrDefault(cxs)
	if core.RemoteFn(cxs) != nil {
		// The destinations may span ranks, so "the target" of a remote
		// completion is ill-defined; UPC++'s rput_irregular has the same
		// restriction in spirit (its fragments share one affinity).
		panic("gupcxx: remote completion is not supported for indexed operations")
	}
	// Count asynchronous fragments first: if every destination is
	// co-located the whole operation is synchronous and eager-eligible.
	remote := 0
	for _, d := range dsts {
		if !r.localTo(d.rank) {
			remote++
		}
	}
	if remote == 0 {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpVIS,
			Local: true,
			Move: func() {
				for i, d := range dsts {
					r.w.dom.Segment(int(d.rank)).CopyIn(d.off, gasnet.ValueBytes(&vals[i]))
				}
			},
		}, cxs)
	}
	// Destinations may span ranks; admission is checked against the first
	// remote one — an advisory overload probe, with rel.send bounding the
	// rest against each peer's own window.
	admitPeer := -1
	for _, d := range dsts {
		if !r.localTo(d.rank) {
			admitPeer = int(d.rank)
			break
		}
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpVIS,
		Frags: remote,
		Peer:  admitPeer,
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			for i, d := range dsts {
				if r.localTo(d.rank) {
					r.w.dom.Segment(int(d.rank)).CopyIn(d.off, gasnet.ValueBytes(&vals[i]))
					continue
				}
				r.ep.PutRemote(int(d.rank), d.off, gasnet.ValueBytes(&vals[i]), nil, done)
			}
		},
	}, cxs)
}

// RgetIndexed reads srcs[i] into out[i] for each i as one logical
// operation with a single completion set.
func RgetIndexed[T any](r *Rank, srcs []GlobalPtr[T], out []T, cxs ...Cx) Result {
	if len(out) != len(srcs) {
		panic(fmt.Sprintf("gupcxx: RgetIndexed %d outputs for %d sources", len(out), len(srcs)))
	}
	cxs = cxsOrDefault(cxs)
	rejectRemoteCx(cxs, "RgetIndexed")
	remote := 0
	for _, s := range srcs {
		if !r.localTo(s.rank) {
			remote++
		}
	}
	if remote == 0 {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpVIS,
			Local: true,
			Move: func() {
				for i, s := range srcs {
					r.w.dom.Segment(int(s.rank)).CopyOut(s.off, gasnet.ValueBytes(&out[i]))
				}
			},
		}, cxs)
	}
	admitPeer := -1
	for _, s := range srcs {
		if !r.localTo(s.rank) {
			admitPeer = int(s.rank)
			break
		}
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpVIS,
		Frags: remote,
		Peer:  admitPeer,
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			elemSize := gasnet.SizeOf[T]()
			for i, s := range srcs {
				if r.localTo(s.rank) {
					r.w.dom.Segment(int(s.rank)).CopyOut(s.off, gasnet.ValueBytes(&out[i]))
					continue
				}
				r.ep.GetRemote(int(s.rank), s.off, elemSize, gasnet.ValueBytes(&out[i]), done)
			}
		},
	}, cxs)
}
