package gupcxx_test

import (
	"testing"

	"gupcxx"
)

// pairWorld runs fn on rank 0 with a pointer into rank 1's segment.
func pairWorld(t *testing.T, cfg gupcxx.Config, fn func(r *gupcxx.Rank, remote gupcxx.GlobalPtr[int64])) {
	t.Helper()
	if cfg.Ranks == 0 {
		cfg.Ranks = 2
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 1 << 16
	}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		*p.Local(r) = 0
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, ptrs[1])
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRputDefaultCompletion(t *testing.T) {
	pairWorld(t, gupcxx.Config{}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		res := gupcxx.Rput(r, 99, p)
		if !res.Op.Valid() {
			t.Fatal("default completion should produce an op future")
		}
		res.Wait()
		if got := gupcxx.Rget(r, p).Wait(); got != 99 {
			t.Errorf("readback = %d", got)
		}
	})
}

func TestRputSourceAndOpFutures(t *testing.T) {
	pairWorld(t, gupcxx.Config{Conduit: gupcxx.PSHM}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		res := gupcxx.Rput(r, 5, p, gupcxx.SourceFuture(), gupcxx.OpFuture())
		res.Source.Wait()
		res.Op.Wait()
	})
}

func TestRputUnrequestedFutureInvalid(t *testing.T) {
	pairWorld(t, gupcxx.Config{}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		prom := r.NewPromise()
		res := gupcxx.Rput(r, 5, p, gupcxx.OpPromise(prom))
		if res.Op.Valid() {
			t.Error("Op future should be invalid when not requested")
		}
		prom.Finalize().Wait()
	})
}

func TestRputLPCCompletion(t *testing.T) {
	pairWorld(t, gupcxx.Config{}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		ran := false
		prom := r.NewPromise()
		gupcxx.Rput(r, 5, p, gupcxx.OpLPC(func() { ran = true }), gupcxx.OpPromise(prom))
		if ran {
			t.Error("LPC ran at initiation")
		}
		prom.Finalize().Wait()
		r.Progress()
		if !ran {
			t.Error("LPC never ran")
		}
	})
}

// TestRemoteCompletionRPC: the remote_cx callback runs on the target rank
// after data arrival, for both co-located and cross-node targets.
func TestRemoteCompletionRPC(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 16}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			flag := gupcxx.New[int64](r)
			*flag.Local(r) = 0
			ptrs := gupcxx.ExchangePtr(r, p)
			flags := gupcxx.ExchangePtr(r, flag)
			r.Barrier()
			if r.Me() == 0 {
				target := ptrs[1]
				// The RPC body runs on rank 1: it can check the arrived
				// data via its own local pointer and set a local flag.
				gupcxx.Rput(r, 123, target,
					gupcxx.OpFuture(),
					gupcxx.RemoteRPC(func() {
						// runs on rank 1's progress goroutine
					}),
				).Wait()
				// Now instruct rank 1 via RPC to validate arrival order.
				ok := gupcxx.RPCCall(r, 1, func(tr *gupcxx.Rank) bool {
					return *ptrs[1].Local(tr) == 123
				}).Wait()
				if !ok {
					t.Errorf("%v: data not visible at target after op completion", conduit)
				}
				_ = flags
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoteCompletionRunsOnTarget verifies the remote callback executes
// on the target rank's goroutine (it can see target-rank state).
func TestRemoteCompletionRunsOnTarget(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		if r.Me() == 0 {
			seen := make(chan int, 1)
			gupcxx.Rput(r, 7, ptrs[1],
				gupcxx.OpFuture(),
				gupcxx.RemoteRPC(func() { seen <- 1 }),
			).Wait()
			// The remote rank must make progress for the RPC to run; it is
			// spinning at the barrier below, which drives its engine.
			<-seen
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRgetModes(t *testing.T) {
	pairWorld(t, gupcxx.Config{Conduit: gupcxx.PSHM, Version: gupcxx.Eager2021_3_6},
		func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
			gupcxx.Rput(r, 31, p).Wait()
			fe := gupcxx.Rget(r, p, gupcxx.ModeEager)
			if !fe.Ready() {
				t.Error("eager local rget should be ready at initiation")
			}
			fd := gupcxx.Rget(r, p, gupcxx.ModeDefer)
			if fd.Ready() {
				t.Error("deferred rget ready at initiation")
			}
			if fe.Value() != 31 || fd.Wait() != 31 {
				t.Error("bad values")
			}
		})
}

func TestRgetPromise(t *testing.T) {
	for _, ver := range []gupcxx.Version{gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
		pairWorld(t, gupcxx.Config{Version: ver, Conduit: gupcxx.PSHM},
			func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
				gupcxx.Rput(r, 17, p).Wait()
				pv := gupcxx.NewPromiseV[int64](r)
				gupcxx.RgetPromise(r, p, pv)
				if got := pv.Finalize().Wait(); got != 17 {
					t.Errorf("%s: promise value %d", ver.Name, got)
				}
			})
	}
}

func TestBulkTransfers(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 18}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			arr := gupcxx.NewArray[int64](r, 128)
			ptrs := gupcxx.ExchangePtr(r, arr)
			r.Barrier()
			if r.Me() == 0 {
				src := make([]int64, 128)
				for i := range src {
					src[i] = int64(i * 3)
				}
				gupcxx.RputBulk(r, src, ptrs[1]).Wait()
				dst := make([]int64, 128)
				gupcxx.RgetBulk(r, ptrs[1], dst).Wait()
				for i := range dst {
					if dst[i] != int64(i*3) {
						t.Fatalf("%v: dst[%d] = %d", conduit, i, dst[i])
					}
				}
				// Partial get with element arithmetic.
				part := make([]int64, 4)
				gupcxx.RgetBulk(r, ptrs[1].Element(10), part).Wait()
				if part[0] != 30 || part[3] != 39 {
					t.Errorf("%v: partial get %v", conduit, part)
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSourceCompletionBufferReuse: after source completion the buffer may
// be clobbered without affecting the transfer.
func TestSourceCompletionBufferReuse(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[int64](r, 8)
		ptrs := gupcxx.ExchangePtr(r, arr)
		r.Barrier()
		if r.Me() == 0 {
			buf := []int64{1, 2, 3, 4, 5, 6, 7, 8}
			res := gupcxx.RputBulk(r, buf, ptrs[1], gupcxx.SourceFuture(), gupcxx.OpFuture())
			res.Source.Wait()
			for i := range buf {
				buf[i] = -1
			}
			res.Op.Wait()
			dst := make([]int64, 8)
			gupcxx.RgetBulk(r, ptrs[1], dst).Wait()
			if dst[0] != 1 || dst[7] != 8 {
				t.Errorf("buffer reuse corrupted put: %v", dst)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestListing1Semantics reproduces the paper's Listing 1: under deferred
// notification the Then callback must not run before the wait, even for a
// local target; under eager it runs during Then.
func TestListing1Semantics(t *testing.T) {
	check := func(ver gupcxx.Version, wantSync bool) {
		pairWorld(t, gupcxx.Config{Version: ver, Conduit: gupcxx.PSHM},
			func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
				ran := false
				f := gupcxx.Rput(r, 42, p).Op
				f2 := f.Then(func() { ran = true })
				if ran != wantSync {
					t.Errorf("%s: callback ran=%v at Then, want %v", ver.Name, ran, wantSync)
				}
				f2.Wait()
				if !ran {
					t.Errorf("%s: callback never ran", ver.Name)
				}
			})
	}
	check(gupcxx.Defer2021_3_6, false)
	check(gupcxx.Legacy2021_3_0, false)
	check(gupcxx.Eager2021_3_6, true)
}

// TestConjoiningLoopAcrossRanks: the §II-A conjoining idiom works across
// versions and both completes all puts.
func TestConjoiningLoop(t *testing.T) {
	for _, ver := range []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 16}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			arr := gupcxx.NewArray[int64](r, 10)
			ptrs := gupcxx.ExchangePtr(r, arr)
			r.Barrier()
			if r.Me() == 0 {
				f := r.MakeFuture()
				for i := 0; i < 10; i++ {
					f = r.WhenAll(f, gupcxx.Rput(r, int64(i), ptrs[1].Element(i)).Op)
				}
				f.Wait()
				got := make([]int64, 10)
				gupcxx.RgetBulk(r, ptrs[1], got).Wait()
				for i, v := range got {
					if v != int64(i) {
						t.Errorf("%s: slot %d = %d", ver.Name, i, v)
					}
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossNodePutGet(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.SIM, RanksPerNode: 2, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		*p.Local(r) = int64(100 + r.Me())
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		// Rank 0 reads everyone, writes everyone.
		if r.Me() == 0 {
			for tgt := 0; tgt < r.N(); tgt++ {
				if got := gupcxx.Rget(r, ptrs[tgt]).Wait(); got != int64(100+tgt) {
					t.Errorf("rget(%d) = %d", tgt, got)
				}
			}
			// Off-node futures are never ready at initiation.
			f := gupcxx.Rput(r, 7, ptrs[3])
			if f.Op.Ready() {
				t.Error("cross-node put future ready at initiation")
			}
			f.Wait()
			if got := gupcxx.Rget(r, ptrs[3]).Wait(); got != 7 {
				t.Errorf("cross-node readback = %d", got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetsRejectRemoteCompletion(t *testing.T) {
	pairWorld(t, gupcxx.Config{}, func(r *gupcxx.Rank, p gupcxx.GlobalPtr[int64]) {
		for name, fn := range map[string]func(){
			"bulk": func() {
				var buf [1]int64
				gupcxx.RgetBulk(r, p, buf[:], gupcxx.RemoteRPC(func() {}))
			},
			"strided": func() {
				var buf [1]int64
				gupcxx.RgetStrided(r, p, gupcxx.Strided2D{Rows: 1, RunLen: 1, Stride: 1},
					buf[:], gupcxx.RemoteRPC(func() {}))
			},
			"indexed": func() {
				var buf [1]int64
				gupcxx.RgetIndexed(r, []gupcxx.GlobalPtr[int64]{p}, buf[:],
					gupcxx.RemoteRPC(func() {}))
			},
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s get with remote cx should panic", name)
					}
				}()
				fn()
			}()
		}
	})
}
