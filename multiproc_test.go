package gupcxx_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gupcxx"
	"gupcxx/internal/boot"
)

// The cross-process acceptance suite: real OS processes, real UDP
// sockets, nothing shared. The parent test re-execs this test binary
// through boot.LaunchLocal — the same launcher cmd/gupcxxrun uses — with
// GUPCXX_TEST_WORKER naming a scenario; the children narrow themselves to
// TestMultiprocWorkerProcess via -test.run, join the world through
// WorldFromEnv, and report success as a WORKER_OK marker line the parent
// counts.

const workerEnv = "GUPCXX_TEST_WORKER"

// TestMultiprocWorkerProcess is the rank-process entry point. Under a
// normal `go test` invocation it skips; in a child process it runs one
// scenario and exits non-zero on failure (scenario code panics; Run
// converts panics to errors).
func TestMultiprocWorkerProcess(t *testing.T) {
	scenario := os.Getenv(workerEnv)
	if scenario == "" {
		t.Skip("worker entry: runs only in children spawned by the multiproc suite")
	}
	if err := multiprocWorker(scenario); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: %v\n", scenario, err)
		os.Exit(1)
	}
	fmt.Printf("WORKER_OK scenario=%s\n", scenario)
}

func multiprocWorker(scenario string) error {
	var notifies atomic.Int64
	cfg := gupcxx.Config{
		SegmentBytes:   1 << 20,
		HeartbeatEvery: 2 * time.Millisecond,
		SuspectAfter:   20 * time.Millisecond,
		DownAfter:      80 * time.Millisecond,
		DisableHealing: os.Getenv(disableHealEnv) != "",
	}
	if strings.HasPrefix(scenario, "partition") {
		// The partition workers assert heal counts and liveness states on
		// HEALTHY links. On an oversubscribed host (CI runners, the race
		// detector, 4 rank processes on few cores) an 80ms heartbeat gap is
		// ordinary scheduling noise, and a spurious down/heal flap of an
		// intra-group pair would poison those assertions. Wider margins keep
		// the detector honest about actual cuts — the scenario holds the
		// partition for many DownAfter periods regardless.
		cfg.HeartbeatEvery = 5 * time.Millisecond
		cfg.SuspectAfter = 100 * time.Millisecond
		cfg.DownAfter = 400 * time.Millisecond
	}
	w, ok, err := gupcxx.WorldFromEnv(cfg)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("worker spawned without a world contract")
	}
	defer w.Close()
	echo := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte {
		return append([]byte("echo:"), args...)
	})
	bump := w.RegisterRPC(func(_ *gupcxx.Rank, args []byte) []byte {
		notifies.Add(int64(len(args)))
		return nil
	})
	return w.Run(func(r *gupcxx.Rank) {
		switch scenario {
		case "smoke":
			smokeScenario(r, echo, bump, &notifies)
		case "death":
			deathScenario(r, echo, bump, &notifies)
		case "churn":
			churnScenario(w, r, echo, bump, &notifies)
		case "partition":
			partitionScenario(w, r, echo, bump, &notifies, false)
		case "partition-terminal":
			partitionScenario(w, r, echo, bump, &notifies, true)
		case "serve":
			serveScenario(r)
		case "bench":
			benchServeScenario(r)
		default:
			panic("unknown worker scenario " + scenario)
		}
	})
}

// smokeScenario exercises every wire-encodable op family across process
// boundaries: segment-relative puts/gets through exchanged pointers,
// remote atomics, wire RPC with reply, the ErrNotWireEncodable gate on
// closure RPC, put-with-notify, and the allgather collective.
func smokeScenario(r *gupcxx.Rank, echo, bump gupcxx.RPCHandlerID, notifies *atomic.Int64) {
	me, n := r.Me(), r.N()
	next, prev := (me+1)%n, (me+n-1)%n

	word := gupcxx.New[uint64](r)
	words := gupcxx.ExchangePtr(r, word)
	counter := gupcxx.New[uint64](r)
	counters := gupcxx.ExchangePtr(r, counter)
	r.Barrier()

	// One-sided put into another process's segment, then read it back.
	gupcxx.Rput(r, uint64(1000+me), words[next]).Wait()
	r.Barrier()
	if got := *word.Local(r); got != uint64(1000+prev) {
		panic(fmt.Sprintf("put: rank %d holds %d, want %d", me, got, 1000+prev))
	}
	if got := gupcxx.Rget(r, words[next]).Wait(); got != uint64(1000+me) {
		panic(fmt.Sprintf("get: read %d from rank %d, want %d", got, next, 1000+me))
	}

	// Remote atomics: every rank bumps rank 0's counter once.
	ad := gupcxx.NewAtomicDomain[uint64](r)
	ad.FetchAdd(counters[0], 1).Wait()
	r.Barrier()
	if me == 0 {
		if got := *counter.Local(r); got != uint64(n) {
			panic(fmt.Sprintf("fetch-add: counter %d, want %d", got, n))
		}
	}

	// Wire RPC round trip.
	tag := []byte{byte('a' + me)}
	reply, werr := gupcxx.RPCWire(r, next, echo, tag).WaitErr()
	if werr != nil || string(reply) != "echo:"+string(tag) {
		panic(fmt.Sprintf("wire RPC: %q, %v", reply, werr))
	}

	// Closure RPC cannot cross a process boundary — loudly.
	if werr := gupcxx.RPC(r, next, func(*gupcxx.Rank) {}).WaitErr(); !errors.Is(werr, gupcxx.ErrNotWireEncodable) {
		panic(fmt.Sprintf("closure RPC resolved as %v, want ErrNotWireEncodable", werr))
	}

	// Put-with-notify: each rank receives exactly one 3-byte notify.
	gupcxx.RputNotify(r, uint64(7), words[next], bump, []byte{1, 2, 3}).Wait()
	deadline := time.Now().Add(10 * time.Second)
	for notifies.Load() < 3 {
		if time.Now().After(deadline) {
			panic("notify handler never ran")
		}
		r.Serve()
	}

	// Allgather: the collective every world bootstraps its pointers with.
	vec := r.ExchangeU64(uint64(me * 7))
	for i, v := range vec {
		if v != uint64(i*7) {
			panic(fmt.Sprintf("allgather slot %d = %d, want %d", i, v, i*7))
		}
	}
	r.Barrier()
}

// deathScenario: after a healthy exchange, rank 2 dies abruptly
// (os.Exit — no goodbye frame, the process-kill case). Survivors must
// observe ErrPeerUnreachable within the detection budget while staying
// reachable to each other. No barriers after the death: collectives
// include the corpse.
func deathScenario(r *gupcxx.Rank, echo, done gupcxx.RPCHandlerID, dones *atomic.Int64) {
	const victim = 2
	me := r.Me()
	word := gupcxx.New[uint64](r)
	words := gupcxx.ExchangePtr(r, word)
	r.Barrier()
	gupcxx.Rput(r, uint64(me), words[(me+1)%r.N()]).Wait()
	r.Barrier()
	if me == victim {
		// Drain our in-flight frames first: under injected loss the
		// barrier token we just sent may need a retransmission only this
		// process can provide, and the scenario tests death DETECTION,
		// not lost-data recovery. The exit stays abrupt — no goodbye
		// frame, the liveness detector does the work.
		drain := time.Now().Add(10 * time.Second)
		for time.Now().Before(drain) {
			inflight := 0
			for p := 0; p < r.N(); p++ {
				if p != me {
					inflight += r.Flow(p).InFlight
				}
			}
			if inflight == 0 {
				break
			}
			r.Serve()
		}
		os.Exit(3)
	}
	start := time.Now()
	for {
		_, werr := gupcxx.RPCWire(r, victim, echo, []byte("ping")).WaitErr()
		if werr != nil {
			if !errors.Is(werr, gupcxx.ErrPeerUnreachable) {
				panic(fmt.Sprintf("victim death resolved as %v, want ErrPeerUnreachable", werr))
			}
			break
		}
		if time.Since(start) > 20*time.Second {
			panic("operations to the killed rank never failed")
		}
	}
	if !r.PeerDown(victim) {
		panic("victim not marked down")
	}
	peer := (me + 1) % r.N()
	if peer == victim {
		peer = (peer + 1) % r.N()
	}
	if _, werr := gupcxx.RPCWire(r, peer, echo, []byte("alive")).WaitErr(); werr != nil {
		panic(fmt.Sprintf("surviving pair %d->%d broken: %v", me, peer, werr))
	}
	// Subset barrier over the survivors: the world barrier would include
	// the corpse, so each survivor marks completion at every other
	// survivor and serves progress until both marks arrive — nobody tears
	// down its RPC service while a peer is still mid-check. (Death
	// detection is asynchronous; without this, the fastest survivor's
	// exit looks like a second death to the slowest.)
	for p := 0; p < r.N(); p++ {
		if p == me || p == victim {
			continue
		}
		if _, werr := gupcxx.RPCWire(r, p, done, []byte{1}).WaitErr(); werr != nil {
			panic(fmt.Sprintf("survivor barrier %d->%d: %v", me, p, werr))
		}
	}
	barrier := time.Now().Add(20 * time.Second)
	for dones.Load() < int64(r.N()-2) {
		if time.Now().After(barrier) {
			panic("survivor barrier never completed")
		}
		r.Serve()
	}
}

// serveScenario parks every rank in a progress loop until some peer is
// declared down — the shape the parent's KillRank test needs: it kills
// one child externally and expects the survivors to notice and exit
// cleanly.
func serveScenario(r *gupcxx.Rank) {
	r.Barrier()
	fmt.Printf("WORKER_READY rank=%d\n", r.Me())
	deadline := time.Now().Add(30 * time.Second)
	for len(r.DownPeers()) == 0 {
		if time.Now().After(deadline) {
			panic("no peer died within the serve window")
		}
		r.Serve()
	}
}

// benchServeScenario is rank 1 of BenchmarkOpPipelineMultiproc: publish
// the target word the bench rank hammers, then serve progress until the
// bench rank departs (its goodbye after the exit drain marks it down
// here). Benchmarks run long, so the window is generous.
func benchServeScenario(r *gupcxx.Rank) {
	word := gupcxx.New[uint64](r)
	gupcxx.ExchangePtr(r, word)
	r.Barrier()
	deadline := time.Now().Add(10 * time.Minute)
	for len(r.DownPeers()) == 0 {
		if time.Now().After(deadline) {
			panic("bench rank never departed")
		}
		r.Serve()
	}
}

// syncBuffer serializes the concurrent writes of several children's
// stdout copy goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// workerArgv re-execs this test binary narrowed to the worker entry.
func workerArgv() []string {
	return []string{os.Args[0], "-test.run", "^TestMultiprocWorkerProcess$", "-test.count=1"}
}

// TestMultiprocSmokeWorld is the tentpole acceptance test: a 4-rank
// process-per-rank world launched exactly the way cmd/gupcxxrun does,
// running the full wire-encodable op suite.
func TestMultiprocSmokeWorld(t *testing.T) {
	defer leakCheck(t)()
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(4, 7, workerArgv(), []string{workerEnv + "=smoke"}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	if err := lw.Wait(); err != nil {
		t.Fatalf("world failed: %v\noutput:\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=smoke"); got != 4 {
		t.Errorf("%d of 4 ranks reported success; output:\n%s", got, out.String())
	}
}

// TestMultiprocPeerDeath: one rank of a 4-rank world exits abruptly
// mid-run; the launcher reports the corpse, and every survivor reports
// having observed the death as ErrPeerUnreachable.
func TestMultiprocPeerDeath(t *testing.T) {
	defer leakCheck(t)()
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(4, 9, workerArgv(), []string{workerEnv + "=death"}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	werr := lw.Wait()
	if werr == nil {
		t.Fatalf("the victim's exit(3) did not fail the wait; output:\n%s", out.String())
	}
	if !strings.Contains(werr.Error(), "rank 2") {
		t.Errorf("wait error %v does not name the victim", werr)
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=death"); got != 3 {
		t.Errorf("%d of 3 survivors reported success; wait err %v; output:\n%s", got, werr, out.String())
	}
}

// TestMultiprocKillRank drives the launcher's fault-injection hook: the
// parent SIGKILLs one child once all ranks report ready; the survivors'
// liveness detectors notice and the processes exit cleanly.
func TestMultiprocKillRank(t *testing.T) {
	defer leakCheck(t)()
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(3, 11, workerArgv(), []string{workerEnv + "=serve"}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	ready := time.Now().Add(30 * time.Second)
	for strings.Count(out.String(), "WORKER_READY") < 3 {
		if time.Now().After(ready) {
			t.Fatalf("ranks never reported ready; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lw.KillRank(2); err != nil {
		t.Fatal(err)
	}
	werr := lw.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "rank 2") {
		t.Errorf("wait error %v does not report the killed rank", werr)
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=serve"); got != 2 {
		t.Errorf("%d of 2 survivors exited cleanly; output:\n%s", got, out.String())
	}
}
