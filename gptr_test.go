package gupcxx_test

import (
	"strings"
	"testing"
	"testing/quick"

	"gupcxx"
)

func TestGlobalPtrBasics(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14},
		func(r *gupcxx.Rank) {
			var null gupcxx.GlobalPtr[int64]
			if !null.Null() {
				t.Error("zero pointer not null")
			}
			p := gupcxx.New[int64](r)
			if p.Null() {
				t.Error("allocated pointer is null")
			}
			if p.Rank() != r.Me() {
				t.Errorf("rank = %d", p.Rank())
			}
			if !p.IsLocal(r) {
				t.Error("own allocation not local")
			}
			*p.Local(r) = 5
			if *p.Local(r) != 5 {
				t.Error("local store lost")
			}
			if !strings.Contains(p.String(), "gptr") {
				t.Errorf("String = %q", p.String())
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElementArithmetic(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 14}, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[int32](r, 16)
		sl := arr.LocalSlice(r, 16)
		for i := range sl {
			sl[i] = int32(i)
		}
		for i := 0; i < 16; i++ {
			if got := *arr.Element(i).Local(r); got != int32(i) {
				t.Errorf("element %d = %d", i, got)
			}
		}
		// Element size respected: int32 stride is 4 bytes.
		if arr.Element(2).Offset()-arr.Offset() != 8 {
			t.Errorf("stride wrong: %d", arr.Element(2).Offset()-arr.Offset())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElementArithmeticProperty(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 20}, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[uint64](r, 1024)
		f := func(i uint16, j uint16) bool {
			a := int(i) % 1024
			b := int(j) % 1024
			// Element is associative: (p+a)+b == p+(a+b).
			return arr.Element(a).Element(b).Offset() == arr.Element(a+b).Offset()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalOnRemotePanics(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SegmentBytes: 1 << 12}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, p)
		r.Barrier()
		if r.Me() == 0 {
			if ptrs[1].IsLocal(r) {
				t.Error("cross-node pointer claims local")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Local() on remote pointer should panic")
					}
				}()
				ptrs[1].Local(r)
			}()
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 64}, func(r *gupcxx.Rank) {
		if _, err := gupcxx.AllocArray[uint64](r, 1024); err == nil {
			t.Error("exhaustion not reported")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New should panic on exhaustion")
				}
			}()
			gupcxx.NewArray[uint64](r, 1024)
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroOffsetReserved(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12},
		func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			if r.Me() == 0 {
				// Rank 0's first allocation skips offset 0 so the zero
				// GlobalPtr stays unambiguous.
				if p.Offset() == 0 {
					t.Error("rank 0 handed out offset 0")
				}
				if p.Null() {
					t.Error("valid allocation is null")
				}
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStructGlobalPtr(t *testing.T) {
	type pair struct {
		A int64
		B float64
	}
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14},
		func(r *gupcxx.Rank) {
			p := gupcxx.New[pair](r)
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				gupcxx.Rput(r, pair{A: 4, B: 2.5}, ptrs[1]).Wait()
				got := gupcxx.Rget(r, ptrs[1]).Wait()
				if got.A != 4 || got.B != 2.5 {
					t.Errorf("struct roundtrip %+v", got)
				}
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12}, func(r *gupcxx.Rank) {
		p := gupcxx.New[int64](r)
		gupcxx.Delete(r, p) // records intent; must not panic
	})
	if err != nil {
		t.Fatal(err)
	}
}
